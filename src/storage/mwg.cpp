#include "storage/mwg.hpp"

#include <cstring>
#include <limits>

namespace manywalks {

namespace {

template <class T>
void write_raw(std::ofstream& out, const T* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

}  // namespace

MwgWriter::MwgWriter(std::string path, Vertex num_vertices)
    : path_(std::move(path)),
      out_(path_, std::ios::binary | std::ios::trunc),
      n_(num_vertices) {
  MW_REQUIRE(num_vertices != kInvalidVertex, "mwg vertex count too large");
  if (!out_.good()) {
    throw MwgIoError("cannot open '" + path_ + "' for writing");
  }
  offsets_.reserve(static_cast<std::size_t>(n_) + 1);
  offsets_.push_back(0);
  // Targets stream to their final position; the header and offsets are
  // written by finish(), so an abandoned file keeps a zeroed header that
  // every loader rejects.
  out_.seekp(static_cast<std::streamoff>(mwg_targets_begin(n_)));
  MW_REQUIRE(out_.good(), "seek failed on '" << path_ << "'");
}

void MwgWriter::append_row(std::span<const Vertex> sorted_neighbors) {
  MW_REQUIRE(!finished_, "append_row after finish()");
  MW_REQUIRE(rows_ < n_, "more rows than the declared " << n_ << " vertices");
  const Vertex v = rows_;
  Vertex prev = 0;
  for (std::size_t i = 0; i < sorted_neighbors.size(); ++i) {
    const Vertex u = sorted_neighbors[i];
    MW_REQUIRE(u < n_, "row " << v << ": neighbor " << u
                              << " out of range (n=" << n_ << ")");
    MW_REQUIRE(i == 0 || prev <= u,
               "row " << v << " not sorted ascending at position " << i);
    prev = u;
    if (u == v) ++loops_;
  }
  write_raw(out_, sorted_neighbors.data(), sorted_neighbors.size());
  const auto degree = static_cast<Vertex>(sorted_neighbors.size());
  min_degree_ = std::min(min_degree_, degree);
  max_degree_ = std::max(max_degree_, degree);
  offsets_.push_back(offsets_.back() + degree);
  ++rows_;
}

void MwgWriter::finish() {
  MW_REQUIRE(!finished_, "finish() called twice");
  MW_REQUIRE(rows_ == n_,
             "finish() after " << rows_ << " of " << n_ << " rows");
  MwgHeader header{};
  std::memcpy(header.magic, kMwgMagic, sizeof(kMwgMagic));
  header.endian = kMwgEndianTag;
  header.version = kMwgVersion;
  header.num_vertices = n_;
  header.num_arcs = offsets_.back();
  header.num_loops = loops_;
  header.min_degree = n_ > 0 ? min_degree_ : 0;
  header.max_degree = max_degree_;

  out_.seekp(0);
  write_raw(out_, &header, 1);
  write_raw(out_, offsets_.data(), offsets_.size());
  out_.flush();
  MW_REQUIRE(out_.good(), "write failed on '" << path_ << "'");
  out_.close();
  finished_ = true;
}

void write_mwg(const std::string& path, const Graph& g) {
  MwgWriter writer(path, g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    writer.append_row(g.neighbors(v));
  }
  writer.finish();
}

}  // namespace manywalks
