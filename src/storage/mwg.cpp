#include "storage/mwg.hpp"

#include <cstring>
#include <limits>

namespace manywalks {

namespace {

template <class T>
void write_raw(std::ofstream& out, const T* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

}  // namespace

MwgWriter::MwgWriter(std::string path, Vertex num_vertices,
                     std::uint32_t block_bits)
    : path_(std::move(path)),
      out_(path_, std::ios::binary | std::ios::trunc),
      n_(num_vertices),
      block_bits_(block_bits) {
  MW_REQUIRE(num_vertices != kInvalidVertex, "mwg vertex count too large");
  MW_REQUIRE(block_bits_ <= kMwgMaxBlockBits,
             "block_bits " << block_bits_ << " exceeds the maximum "
                           << kMwgMaxBlockBits);
  if (!out_.good()) {
    throw MwgIoError("cannot open '" + path_ + "' for writing");
  }
  offsets_.reserve(static_cast<std::size_t>(n_) + 1);
  offsets_.push_back(0);
  if (block_bits_ > 0) {
    block_max_degree_.assign(mwg_num_blocks(n_, block_bits_), 0);
  }
  // Targets stream to their final position; the header and offsets are
  // written by finish(), so an abandoned file keeps a zeroed header that
  // every loader rejects.
  out_.seekp(static_cast<std::streamoff>(mwg_targets_begin(n_)));
  MW_REQUIRE(out_.good(), "seek failed on '" << path_ << "'");
}

void MwgWriter::append_row(std::span<const Vertex> sorted_neighbors) {
  MW_REQUIRE(!finished_, "append_row after finish()");
  MW_REQUIRE(rows_ < n_, "more rows than the declared " << n_ << " vertices");
  const Vertex v = rows_;
  Vertex prev = 0;
  for (std::size_t i = 0; i < sorted_neighbors.size(); ++i) {
    const Vertex u = sorted_neighbors[i];
    MW_REQUIRE(u < n_, "row " << v << ": neighbor " << u
                              << " out of range (n=" << n_ << ")");
    MW_REQUIRE(i == 0 || prev <= u,
               "row " << v << " not sorted ascending at position " << i);
    prev = u;
    if (u == v) ++loops_;
  }
  write_raw(out_, sorted_neighbors.data(), sorted_neighbors.size());
  const auto degree = static_cast<Vertex>(sorted_neighbors.size());
  min_degree_ = std::min(min_degree_, degree);
  max_degree_ = std::max(max_degree_, degree);
  if (block_bits_ > 0) {
    Vertex& block_max = block_max_degree_[v >> block_bits_];
    block_max = std::max(block_max, degree);
  }
  offsets_.push_back(offsets_.back() + degree);
  ++rows_;
}

void MwgWriter::finish() {
  MW_REQUIRE(!finished_, "finish() called twice");
  MW_REQUIRE(rows_ == n_,
             "finish() after " << rows_ << " of " << n_ << " rows");
  MwgHeader header{};
  std::memcpy(header.magic, kMwgMagic, sizeof(kMwgMagic));
  header.endian = kMwgEndianTag;
  header.version = block_bits_ > 0 ? kMwgVersionBlockIndex : kMwgVersion;
  header.num_vertices = n_;
  header.num_arcs = offsets_.back();
  header.num_loops = loops_;
  header.min_degree = n_ > 0 ? min_degree_ : 0;
  header.max_degree = max_degree_;
  header.reserved[0] = block_bits_;

  if (block_bits_ > 0) {
    // The put position sits at the end of the targets array; pad to the
    // 8-aligned index begin, then emit block_arc_begin (derived from the
    // offsets array) and the per-block max degrees.
    const std::uint64_t targets_end = mwg_file_bytes(n_, offsets_.back());
    const std::uint64_t index_begin = mwg_block_index_begin(n_, offsets_.back());
    const char pad[8] = {};
    out_.write(pad, static_cast<std::streamsize>(index_begin - targets_end));
    const std::uint64_t blocks = mwg_num_blocks(n_, block_bits_);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const std::uint64_t first_vertex = b << block_bits_;
      write_raw(out_, &offsets_[first_vertex], 1);
    }
    write_raw(out_, &offsets_.back(), 1);
    write_raw(out_, block_max_degree_.data(), block_max_degree_.size());
  }

  out_.seekp(0);
  write_raw(out_, &header, 1);
  write_raw(out_, offsets_.data(), offsets_.size());
  out_.flush();
  MW_REQUIRE(out_.good(), "write failed on '" << path_ << "'");
  out_.close();
  finished_ = true;
}

void write_mwg(const std::string& path, const Graph& g,
               std::uint32_t block_bits) {
  MwgWriter writer(path, g.num_vertices(), block_bits);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    writer.append_row(g.neighbors(v));
  }
  writer.finish();
}

}  // namespace manywalks
