// Memory-mapped, zero-copy loader for mwg v1/v2 files (storage/mwg.hpp).
//
// MappedGraph maps the whole file read-only and exposes the CSR arrays as
// spans pointing INTO the mapping — nothing is copied to the heap, and the
// kernel pages adjacency in on demand, so `manywalks graph info` on a
// 10^6-vertex file never faults the targets region at all.
//
// Lifetime/alignment rules (docs/ARCHITECTURE.md "Storage"):
//   * the mapping lives exactly as long as the MappedGraph (move-only
//     RAII); every span, pointer, and substrate() handed out dangles once
//     it is destroyed — the same outlives-the-engine contract as a Graph
//     behind CsrSubstrate;
//   * the 64-byte header keeps the offsets array 8-byte aligned and the
//     targets array 4-byte aligned in any mapping (mmap bases are
//     page-aligned), so the spans are directly dereferenceable;
//   * files are native-endian; a foreign-endian file is rejected at load
//     via the header tag, never silently misread.
//
// Validation: loading always checks the header (magic, endianness tag,
// version, exact file size) and scans the offsets array (monotone, starts
// at 0, ends at num_arcs, degree extremes match the header) — O(n) over
// pages the stats queries touch anyway. Validate::kDeep additionally
// checks every target is in range and every row is sorted — O(m), pages
// in the whole adjacency, and is meant for foreign files (`manywalks
// graph info --deep`), not the hot load path.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/graph.hpp"
#include "graph/substrate.hpp"
#include "storage/mwg.hpp"

namespace manywalks {

/// Page-cache advice for a byte extent of a mapping. All madvise-family
/// calls in the tree live behind this (and the block store's extents) so
/// one subsystem's advice never silently reshapes another's mapping —
/// manywalks-lint bans direct mmap/madvise outside src/storage/.
enum class ExtentAdvice {
  kNormal,      ///< default kernel readahead
  kRandom,      ///< no readahead (pointer-chasing access)
  kSequential,  ///< aggressive readahead (one front-to-back scan)
  kWillNeed,    ///< prefetch now
  kDontNeed,    ///< drop cached pages
};

class MappedGraph {
 public:
  enum class Validate {
    kStructure,  ///< header + offsets scan (default; never touches targets)
    kDeep,       ///< + targets in range, rows sorted (pages in everything)
  };

  /// Maps `path` read-only and validates. Throws std::invalid_argument on
  /// any open/map/format failure.
  explicit MappedGraph(const std::string& path,
                       Validate validate = Validate::kStructure);
  ~MappedGraph();

  MappedGraph(MappedGraph&& other) noexcept;
  MappedGraph& operator=(MappedGraph&& other) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;

  Vertex num_vertices() const noexcept {
    return static_cast<Vertex>(header_.num_vertices);
  }
  std::uint64_t num_arcs() const noexcept { return header_.num_arcs; }
  std::uint64_t num_loops() const noexcept { return header_.num_loops; }
  /// Undirected edges: each self loop one edge, parallel edges separate.
  std::uint64_t num_edges() const noexcept {
    return (header_.num_arcs - header_.num_loops) / 2 + header_.num_loops;
  }
  Vertex min_degree() const noexcept { return header_.min_degree; }
  Vertex max_degree() const noexcept { return header_.max_degree; }
  bool is_regular() const noexcept {
    return header_.min_degree == header_.max_degree;
  }
  Vertex degree(Vertex v) const noexcept {
    return static_cast<Vertex>(offsets_[v + 1] - offsets_[v]);
  }

  /// The mapped CSR arrays — views into the file mapping, valid only
  /// while this MappedGraph is alive.
  std::span<const std::uint64_t> offsets() const noexcept {
    return {offsets_, static_cast<std::size_t>(header_.num_vertices) + 1};
  }
  std::span<const Vertex> targets() const noexcept {
    return {targets_, static_cast<std::size_t>(header_.num_arcs)};
  }

  /// Binds the mapped arrays to the walk engine's CSR substrate — the
  /// exact type an in-core Graph binds through, so WalkEngineT runs
  /// zero-copy off the file with bit-identical streams in both rng modes.
  /// Requires min_degree >= 1 (walkable), like every substrate.
  CsrSubstrate substrate() const {
    return CsrSubstrate(offsets_, targets_, num_vertices(), min_degree(),
                        max_degree());
  }

  const std::string& path() const noexcept { return path_; }
  std::uint64_t file_bytes() const noexcept { return mapped_bytes_; }
  std::uint32_t version() const noexcept { return header_.version; }

  // --- v2 block index (empty/0 on v1 files) ---------------------------
  bool has_block_index() const noexcept { return block_bits_ > 0; }
  std::uint32_t block_bits() const noexcept { return block_bits_; }
  std::uint64_t num_blocks() const noexcept {
    return block_bits_ > 0 ? mwg_num_blocks(header_.num_vertices, block_bits_)
                           : 0;
  }
  /// First arc of each block; num_blocks()+1 entries, last == num_arcs.
  std::span<const std::uint64_t> block_arc_begin() const noexcept {
    return {block_arc_begin_,
            static_cast<std::size_t>(block_bits_ > 0 ? num_blocks() + 1 : 0)};
  }
  std::span<const Vertex> block_max_degree() const noexcept {
    return {block_max_degree_, static_cast<std::size_t>(num_blocks())};
  }

  /// Applies page-cache advice to the byte extent [byte_begin, byte_end)
  /// of the mapping (file-relative offsets; page-aligned and clamped
  /// internally; best-effort — advice failures are ignored).
  void advise(std::uint64_t byte_begin, std::uint64_t byte_end,
              ExtentAdvice advice) const noexcept;

 private:
  void unmap() noexcept;

  std::string path_;
  void* base_ = nullptr;
  std::uint64_t mapped_bytes_ = 0;
  MwgHeader header_{};
  const std::uint64_t* offsets_ = nullptr;
  const Vertex* targets_ = nullptr;
  std::uint32_t block_bits_ = 0;
  const std::uint64_t* block_arc_begin_ = nullptr;
  const Vertex* block_max_degree_ = nullptr;
};

/// Materializes a mapped graph as an in-core Graph (copies the arrays;
/// validation as in Graph::from_csr). For callers that need Graph-only
/// algorithms (BFS starts, spectra) on a stored graph.
Graph to_graph(const MappedGraph& mapped, bool validate = true);

}  // namespace manywalks
