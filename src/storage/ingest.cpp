#include "storage/ingest.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <utility>

#include "graph/properties.hpp"
#include "util/check.hpp"
#include "util/parse.hpp"

namespace manywalks {

namespace {

/// Dense id for external id `id` via binary search in the sorted unique
/// id table (relabeling by ascending original id).
Vertex dense_id(const std::vector<std::uint64_t>& ids, std::uint64_t id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  return static_cast<Vertex>(it - ids.begin());
}

}  // namespace

EdgeListIngestResult ingest_edge_list(std::istream& is,
                                      const EdgeListIngestOptions& options) {
  EdgeListIngestResult out;
  EdgeListIngestStats& stats = out.stats;

  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  std::string line;
  while (std::getline(is, line)) {
    ++stats.lines;
    const char* p = line.data();
    const char* const end = p + line.size();
    p = skip_field_space(p, end);
    if (p == end || *p == '#' || *p == '%') {
      ++stats.comment_lines;
      continue;
    }
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    MW_REQUIRE(parse_u64_field(p, end, u),
               "bad edge on line " << stats.lines << ": '" << line << "'");
    p = skip_field_space(p, end);
    MW_REQUIRE(parse_u64_field(p, end, v),
               "bad edge on line " << stats.lines << ": '" << line << "'");
    p = skip_field_space(p, end);
    MW_REQUIRE(p == end, "trailing garbage '"
                             << first_field_token(p, end) << "' on line "
                             << stats.lines << ": '" << line << "'");
    ++stats.edges_parsed;
    if (u == v && options.drop_self_loops) {
      ++stats.self_loops_dropped;
      continue;
    }
    // Normalize to (min,max): an undirected edge listed in either (or
    // both) directions becomes the same pair, which is what dedup keys on.
    edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  MW_REQUIRE(!edges.empty(), "edge list has no usable edges ("
                                 << stats.lines << " lines, "
                                 << stats.self_loops_dropped
                                 << " self loops dropped)");

  std::sort(edges.begin(), edges.end());
  if (options.dedup) {
    const auto last = std::unique(edges.begin(), edges.end());
    stats.duplicates_dropped =
        static_cast<std::uint64_t>(edges.end() - last);
    edges.erase(last, edges.end());
  }

  // Relabel by ascending external id — deterministic for a given edge
  // multiset, independent of the file's row order.
  std::vector<std::uint64_t>& ids = out.original_ids;
  ids.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    ids.push_back(u);
    ids.push_back(v);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  stats.distinct_ids = ids.size();
  MW_REQUIRE(ids.size() < kInvalidVertex,
             "edge list has " << ids.size()
                              << " distinct ids; the 32-bit vertex limit is "
                              << kInvalidVertex - 1);

  GraphBuilder builder(static_cast<Vertex>(ids.size()));
  for (const auto& [u, v] : edges) {
    builder.add_edge(dense_id(ids, u), dense_id(ids, v));
  }
  GraphBuilder::BuildOptions build;
  build.duplicates = GraphBuilder::DuplicatePolicy::kKeep;  // already deduped
  build.loops = GraphBuilder::LoopPolicy::kKeep;
  out.graph = builder.build(build);

  const ComponentDecomposition components = connected_components(out.graph);
  stats.num_components = components.num_components;
  stats.vertices_outside_largest =
      out.graph.num_vertices() - components.sizes[components.largest];
  if (options.largest_component && components.num_components > 1) {
    InducedSubgraph induced = extract_largest_component(out.graph);
    std::vector<std::uint64_t> kept_ids;
    kept_ids.reserve(induced.new_to_old.size());
    for (Vertex old_id : induced.new_to_old) kept_ids.push_back(ids[old_id]);
    out.graph = std::move(induced.graph);
    out.original_ids = std::move(kept_ids);
  }
  return out;
}

EdgeListIngestResult ingest_edge_list_file(
    const std::string& path, const EdgeListIngestOptions& options) {
  std::ifstream in(path);
  MW_REQUIRE(in.good(), "cannot open edge list '" << path << "'");
  return ingest_edge_list(in, options);
}

}  // namespace manywalks
