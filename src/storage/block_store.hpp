// Out-of-core access to mwg v2 files: metadata-resident graph handle,
// RAII file extents, and an LRU extent cache with an explicit byte
// budget.
//
// MappedGraph (mapped_graph.hpp) maps the WHOLE file and trusts the page
// cache; once the CSR outgrows memory the walk hot path degenerates to
// random 4 KB faults. BlockedGraph instead maps only the metadata — the
// header + offsets array up front and the v2 block index at the tail —
// and hands out adjacency as explicit extents:
//
//   * `map_extent(byte_begin, byte_end)` maps one file extent (RAII,
//     page-aligned internally) and prefetches it as a sequential read;
//   * `ExtentCache` keeps an LRU of mapped extents bounded by an
//     explicit byte budget (`--mem-budget`), so the resident set is a
//     scheduling decision, not a page-cache accident. At least one
//     extent stays resident even when it alone exceeds the budget.
//
// The budget shapes ONLY eviction — never which extents are requested in
// what order — which is what keeps the block engine's schedule (and so
// its streams) budget-invariant (determinism contract v4, see
// docs/ARCHITECTURE.md "Out-of-core scheduling").
//
// All mmap/madvise calls in the tree live in src/storage/ — consumers
// (the block engine, benches) go through this API, enforced by the
// manywalks-lint rule `manywalks-mmap-outside-storage`.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <span>
#include <string>

#include "graph/graph.hpp"
#include "storage/mapped_graph.hpp"
#include "storage/mwg.hpp"

namespace manywalks {

/// One read-only mapping of a file byte extent. Move-only RAII; `data()`
/// points at `byte_begin` (the mapping itself is page-aligned
/// internally). Produced by BlockedGraph::map_extent.
class MappedExtent {
 public:
  MappedExtent() = default;
  ~MappedExtent();

  MappedExtent(MappedExtent&& other) noexcept;
  MappedExtent& operator=(MappedExtent&& other) noexcept;
  MappedExtent(const MappedExtent&) = delete;
  MappedExtent& operator=(const MappedExtent&) = delete;

  bool empty() const noexcept { return base_ == nullptr; }
  /// First byte of the requested extent (file offset `byte_begin`).
  const std::byte* data() const noexcept {
    return reinterpret_cast<const std::byte*>(
               static_cast<const char*>(base_)) +
           lead_;
  }
  /// Bytes actually mapped (requested extent plus page-alignment lead).
  std::uint64_t mapped_bytes() const noexcept { return mapped_bytes_; }

 private:
  friend class BlockedGraph;
  MappedExtent(int fd, std::uint64_t byte_begin, std::uint64_t byte_end,
               const std::string& path);

  void* base_ = nullptr;
  std::uint64_t mapped_bytes_ = 0;
  std::uint64_t lead_ = 0;  // byte_begin - page-aligned mapping start
};

/// Metadata-resident handle on an mwg v2 file. Maps the header + offsets
/// array and the block index; the adjacency region is NEVER mapped as a
/// whole — callers pull it in through map_extent / ExtentCache. Rejects
/// v1 files (no block index to schedule by) with an upgrade hint.
class BlockedGraph {
 public:
  explicit BlockedGraph(const std::string& path);
  ~BlockedGraph();

  BlockedGraph(BlockedGraph&& other) noexcept;
  BlockedGraph& operator=(BlockedGraph&& other) noexcept;
  BlockedGraph(const BlockedGraph&) = delete;
  BlockedGraph& operator=(const BlockedGraph&) = delete;

  Vertex num_vertices() const noexcept {
    return static_cast<Vertex>(header_.num_vertices);
  }
  std::uint64_t num_arcs() const noexcept { return header_.num_arcs; }
  std::uint64_t num_loops() const noexcept { return header_.num_loops; }
  Vertex min_degree() const noexcept { return header_.min_degree; }
  Vertex max_degree() const noexcept { return header_.max_degree; }
  Vertex degree(Vertex v) const noexcept {
    return static_cast<Vertex>(offsets_[v + 1] - offsets_[v]);
  }
  /// The resident offsets array (n+1 entries) — valid while this
  /// BlockedGraph is alive.
  std::span<const std::uint64_t> offsets() const noexcept {
    return {offsets_, static_cast<std::size_t>(header_.num_vertices) + 1};
  }

  // --- block geometry -------------------------------------------------
  std::uint32_t block_bits() const noexcept { return block_bits_; }
  std::uint64_t num_blocks() const noexcept {
    return mwg_num_blocks(header_.num_vertices, block_bits_);
  }
  std::uint64_t block_of(Vertex v) const noexcept { return v >> block_bits_; }
  Vertex block_first_vertex(std::uint64_t b) const noexcept {
    return static_cast<Vertex>(b << block_bits_);
  }
  std::uint64_t block_arc_begin(std::uint64_t b) const noexcept {
    return block_arc_begin_[b];
  }
  Vertex block_max_degree(std::uint64_t b) const noexcept {
    return block_max_degree_[b];
  }

  // --- file extents ---------------------------------------------------
  std::uint64_t targets_byte_begin() const noexcept {
    return mwg_targets_begin(header_.num_vertices);
  }
  /// Byte extent of arc `a`'s target word.
  std::uint64_t arc_byte(std::uint64_t a) const noexcept {
    return targets_byte_begin() + a * sizeof(Vertex);
  }
  /// Byte extent holding block b's slice of the targets array.
  std::uint64_t block_byte_begin(std::uint64_t b) const noexcept {
    return arc_byte(block_arc_begin_[b]);
  }
  std::uint64_t block_byte_end(std::uint64_t b) const noexcept {
    return arc_byte(block_arc_begin_[b + 1]);
  }
  std::uint64_t file_bytes() const noexcept { return file_bytes_; }
  const std::string& path() const noexcept { return path_; }

  /// Maps the file extent [byte_begin, byte_end) read-only and prefetches
  /// it as one sequential read. Throws MwgIoError on mmap failure (e.g.
  /// an address-space limit) — the caller-visible symptom of a budget the
  /// machine cannot honor.
  MappedExtent map_extent(std::uint64_t byte_begin,
                          std::uint64_t byte_end) const;

 private:
  void close_all() noexcept;

  std::string path_;
  int fd_ = -1;
  std::uint64_t file_bytes_ = 0;
  MwgHeader header_{};
  std::uint32_t block_bits_ = 0;
  // Two metadata mappings: [0, targets_begin) and the tail block index.
  void* meta_base_ = nullptr;
  std::uint64_t meta_bytes_ = 0;
  void* index_base_ = nullptr;
  std::uint64_t index_bytes_ = 0;
  const std::uint64_t* offsets_ = nullptr;
  const std::uint64_t* block_arc_begin_ = nullptr;
  const Vertex* block_max_degree_ = nullptr;
};

/// LRU cache of mapped extents bounded by an explicit byte budget. The
/// budget counts requested extent bytes; eviction drops the
/// least-recently-acquired extent until the cache fits, always keeping
/// the most recent one resident (a single extent larger than the budget
/// still loads — it just evicts everything else).
///
/// Pointers returned by acquire() are valid until a LATER acquire()
/// evicts that extent; the block engine's contract is to finish with a
/// block's pointer before acquiring the next block.
class ExtentCache {
 public:
  struct Stats {
    std::uint64_t loads = 0;       ///< extents mapped (cache misses)
    std::uint64_t hits = 0;        ///< acquires served resident
    std::uint64_t evictions = 0;   ///< extents dropped for budget
    std::uint64_t bytes_loaded = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t peak_resident_bytes = 0;
  };

  ExtentCache(const BlockedGraph& graph, std::uint64_t budget_bytes);

  /// The extent's first byte, mapping it on miss (and evicting LRU
  /// extents past the budget). A given byte_begin must always be paired
  /// with the same byte_end.
  const std::byte* acquire(std::uint64_t byte_begin, std::uint64_t byte_end);

  std::uint64_t budget_bytes() const noexcept { return budget_; }
  const Stats& stats() const noexcept { return stats_; }

  /// Zeroes the traffic counters (loads/hits/evictions/bytes_loaded) so
  /// callers can attribute cache behavior to one phase or trial. Residency
  /// is real state, not a counter: resident_bytes is kept and the peak
  /// restarts from it.
  void reset_stats() noexcept {
    const std::uint64_t resident = stats_.resident_bytes;
    stats_ = Stats{};
    stats_.resident_bytes = resident;
    stats_.peak_resident_bytes = resident;
  }

 private:
  struct Entry {
    std::uint64_t begin;
    std::uint64_t end;
    MappedExtent extent;
  };

  const BlockedGraph* graph_;
  std::uint64_t budget_;
  std::list<Entry> lru_;  // front = most recently acquired
  std::map<std::uint64_t, std::list<Entry>::iterator> by_begin_;
  Stats stats_;
};

}  // namespace manywalks
