#include "storage/mapped_graph.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include "util/check.hpp"

namespace manywalks {

namespace {

constexpr std::uint32_t byte_swap32(std::uint32_t x) noexcept {
  return ((x & 0x000000ffu) << 24) | ((x & 0x0000ff00u) << 8) |
         ((x & 0x00ff0000u) >> 8) | ((x & 0xff000000u) >> 24);
}

/// Thread-safe strerror: std::strerror's static buffer is flagged by
/// concurrency-mt-unsafe, and MappedGraph loads can legitimately race
/// (e.g. a future `manywalks serve` opening graphs from worker threads).
std::string errno_message(int err) {
  return std::error_code(err, std::generic_category()).message();
}

}  // namespace

MappedGraph::MappedGraph(const std::string& path, Validate validate)
    : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw MwgIoError("cannot open '" + path + "': " + errno_message(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw MwgIoError("cannot stat '" + path + "': " + errno_message(err));
  }
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kMwgHeaderBytes) {
    ::close(fd);
    MW_REQUIRE(false, "'" << path << "' is not an mwg file: " << file_bytes
                          << " bytes is smaller than the " << kMwgHeaderBytes
                          << "-byte header");
  }
  void* base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping keeps its own reference to the file
  if (base == MAP_FAILED) {
    throw MwgIoError("mmap of '" + path +
                     "' failed: " + errno_message(map_err));
  }
  base_ = base;
  mapped_bytes_ = file_bytes;

  std::memcpy(&header_, base_, sizeof(MwgHeader));
  // Validate before touching anything the header points at; the destructor
  // unmaps on throw (MappedGraph is fully constructed member-wise by now,
  // but MW_REQUIRE throws from the constructor body — unmap explicitly).
  try {
    MW_REQUIRE(std::memcmp(header_.magic, kMwgMagic, sizeof(kMwgMagic)) == 0,
               "'" << path << "' is not an mwg file (bad magic)");
    MW_REQUIRE(header_.endian != byte_swap32(kMwgEndianTag),
               "'" << path << "' was written on a machine with the opposite "
                   "byte order; regenerate it natively");
    MW_REQUIRE(header_.endian == kMwgEndianTag,
               "'" << path << "' has an unrecognized endianness tag");
    MW_REQUIRE(header_.version == kMwgVersion ||
                   header_.version == kMwgVersionBlockIndex,
               "'" << path << "' is mwg version " << header_.version
                   << "; this build reads versions " << kMwgVersion << " and "
                   << kMwgVersionBlockIndex);
    MW_REQUIRE(header_.num_vertices < kInvalidVertex,
               "'" << path << "' vertex count " << header_.num_vertices
                   << " exceeds the 32-bit vertex limit");
    // Size consistency, derived FROM the file size rather than by
    // multiplying header fields (num_arcs * 4 from a hostile header could
    // wrap modulo 2^64 and "match" a file with no adjacency at all).
    // n < 2^32 keeps mwg_targets_begin itself overflow-free.
    MW_REQUIRE(file_bytes >= mwg_targets_begin(header_.num_vertices),
               "'" << path << "' is truncated: " << file_bytes
                   << " bytes cannot hold the header and "
                   << header_.num_vertices + 1 << " row offsets");
    if (header_.version == kMwgVersion) {
      const std::uint64_t adjacency_bytes =
          file_bytes - mwg_targets_begin(header_.num_vertices);
      MW_REQUIRE(adjacency_bytes % sizeof(Vertex) == 0 &&
                     adjacency_bytes / sizeof(Vertex) == header_.num_arcs,
                 "'" << path << "' is truncated or padded: header claims "
                     << header_.num_arcs << " arcs, file has "
                     << adjacency_bytes << " adjacency bytes");
    } else {
      // v2: the file carries a trailing block index. Bound num_arcs by the
      // file size first so mwg_file_bytes_v2 below cannot overflow on a
      // hostile header, then require the exact v2 size.
      block_bits_ = static_cast<std::uint32_t>(header_.reserved[0]);
      MW_REQUIRE(header_.reserved[0] >= 1 &&
                     header_.reserved[0] <= kMwgMaxBlockBits,
                 "'" << path << "': v2 block_bits " << header_.reserved[0]
                     << " outside [1," << kMwgMaxBlockBits << "]");
      MW_REQUIRE(header_.reserved[1] == 0,
                 "'" << path << "': v2 reserved field is nonzero");
      MW_REQUIRE(header_.num_arcs <= file_bytes / sizeof(Vertex),
                 "'" << path << "' is truncated: header claims "
                     << header_.num_arcs << " arcs, file has only "
                     << file_bytes << " bytes");
      const std::uint64_t expected = mwg_file_bytes_v2(
          header_.num_vertices, header_.num_arcs, block_bits_);
      MW_REQUIRE(file_bytes == expected,
                 "'" << path << "' is truncated or padded: a v2 file with "
                     << header_.num_arcs << " arcs and block_bits "
                     << block_bits_ << " must be " << expected
                     << " bytes, file has " << file_bytes);
    }

    const auto* bytes = static_cast<const char*>(base_);
    offsets_ = reinterpret_cast<const std::uint64_t*>(bytes +
                                                      mwg_offsets_begin());
    targets_ = reinterpret_cast<const Vertex*>(
        bytes + mwg_targets_begin(header_.num_vertices));
    if (block_bits_ > 0) {
      const std::uint64_t index_begin =
          mwg_block_index_begin(header_.num_vertices, header_.num_arcs);
      block_arc_begin_ =
          reinterpret_cast<const std::uint64_t*>(bytes + index_begin);
      block_max_degree_ = reinterpret_cast<const Vertex*>(
          bytes + index_begin +
          (mwg_num_blocks(header_.num_vertices, block_bits_) + 1) *
              sizeof(std::uint64_t));
    }

    // Structure scan: offsets only — never faults the targets region.
    const std::uint64_t n = header_.num_vertices;
    MW_REQUIRE(offsets_[0] == 0, "'" << path << "': offsets must start at 0");
    MW_REQUIRE(offsets_[n] == header_.num_arcs,
               "'" << path << "': offsets end at " << offsets_[n]
                   << ", header claims " << header_.num_arcs << " arcs");
    Vertex min_deg = n > 0 ? kInvalidVertex : 0;
    Vertex max_deg = 0;
    Vertex block_max = 0;  // running max inside the current v2 block
    for (std::uint64_t v = 0; v < n; ++v) {
      MW_REQUIRE(offsets_[v] <= offsets_[v + 1],
                 "'" << path << "': offsets not monotone at vertex " << v);
      const std::uint64_t degree = offsets_[v + 1] - offsets_[v];
      MW_REQUIRE(degree < kInvalidVertex,
                 "'" << path << "': degree of vertex " << v << " overflows");
      min_deg = std::min(min_deg, static_cast<Vertex>(degree));
      max_deg = std::max(max_deg, static_cast<Vertex>(degree));
      if (block_bits_ > 0) {
        // Fused block-index validation: at each block's first vertex the
        // index must agree with the offsets array, and at its last vertex
        // the cached max degree must match what the scan saw.
        const std::uint64_t b = v >> block_bits_;
        if ((v & ((std::uint64_t{1} << block_bits_) - 1)) == 0) {
          MW_REQUIRE(block_arc_begin_[b] == offsets_[v],
                     "'" << path << "': block index claims block " << b
                         << " starts at arc " << block_arc_begin_[b]
                         << ", offsets say " << offsets_[v]);
          block_max = 0;
        }
        block_max = std::max(block_max, static_cast<Vertex>(degree));
        if (v + 1 == n || ((v + 1) >> block_bits_) != b) {
          MW_REQUIRE(block_max_degree_[b] == block_max,
                     "'" << path << "': block index claims block " << b
                         << " max degree " << block_max_degree_[b]
                         << ", offsets say " << block_max);
        }
      }
    }
    MW_REQUIRE(min_deg == header_.min_degree && max_deg == header_.max_degree,
               "'" << path << "': header degree range [" << header_.min_degree
                   << "," << header_.max_degree
                   << "] does not match the offsets array [" << min_deg << ","
                   << max_deg << "]");
    if (block_bits_ > 0) {
      MW_REQUIRE(block_arc_begin_[num_blocks()] == header_.num_arcs,
                 "'" << path << "': block index ends at arc "
                     << block_arc_begin_[num_blocks()] << ", header claims "
                     << header_.num_arcs);
    }

    const std::uint64_t targets_byte_begin =
        mwg_targets_begin(header_.num_vertices);
    const std::uint64_t targets_byte_end =
        targets_byte_begin + header_.num_arcs * sizeof(Vertex);
    if (validate == Validate::kDeep) {
      // The deep scan walks the adjacency region front to back; let the
      // kernel read ahead aggressively for this one pass. Advice is
      // scoped to the targets extent — a mapping-wide flip would also
      // reshape the offsets/index pages other subsystems (the block
      // scheduler above all) rely on streaming sequentially.
      advise(targets_byte_begin, targets_byte_end, ExtentAdvice::kSequential);
      std::uint64_t loops = 0;
      for (std::uint64_t v = 0; v < n; ++v) {
        for (std::uint64_t a = offsets_[v]; a < offsets_[v + 1]; ++a) {
          const Vertex u = targets_[a];
          MW_REQUIRE(u < n, "'" << path << "': target " << u
                                << " out of range in row " << v);
          MW_REQUIRE(a == offsets_[v] || targets_[a - 1] <= u,
                     "'" << path << "': row " << v << " not sorted");
          if (u == v) ++loops;
        }
      }
      MW_REQUIRE(loops == header_.num_loops,
                 "'" << path << "': header claims " << header_.num_loops
                     << " loops, adjacency has " << loops);
    }
  } catch (...) {
    unmap();
    throw;
  }

  // The walk hot path touches arcs in random order; tell the kernel not
  // to waste read-ahead on sequential speculation. Scoped to the targets
  // extent: the offsets (and v2 block index) are scanned linearly and
  // keep default readahead.
  advise(mwg_targets_begin(header_.num_vertices),
         mwg_targets_begin(header_.num_vertices) +
             header_.num_arcs * sizeof(Vertex),
         ExtentAdvice::kRandom);
}

void MappedGraph::advise(std::uint64_t byte_begin, std::uint64_t byte_end,
                         ExtentAdvice advice) const noexcept {
  if (base_ == nullptr) return;
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  byte_begin = (byte_begin / page) * page;
  byte_end = std::min(byte_end, mapped_bytes_);
  if (byte_begin >= byte_end) return;
  int native = POSIX_MADV_NORMAL;
  switch (advice) {
    case ExtentAdvice::kNormal: native = POSIX_MADV_NORMAL; break;
    case ExtentAdvice::kRandom: native = POSIX_MADV_RANDOM; break;
    case ExtentAdvice::kSequential: native = POSIX_MADV_SEQUENTIAL; break;
    case ExtentAdvice::kWillNeed: native = POSIX_MADV_WILLNEED; break;
    case ExtentAdvice::kDontNeed: native = POSIX_MADV_DONTNEED; break;
  }
  ::posix_madvise(static_cast<char*>(base_) + byte_begin,
                  byte_end - byte_begin, native);
}

MappedGraph::~MappedGraph() { unmap(); }

MappedGraph::MappedGraph(MappedGraph&& other) noexcept
    : path_(std::move(other.path_)),
      base_(std::exchange(other.base_, nullptr)),
      mapped_bytes_(std::exchange(other.mapped_bytes_, 0)),
      header_(other.header_),
      offsets_(std::exchange(other.offsets_, nullptr)),
      targets_(std::exchange(other.targets_, nullptr)),
      block_bits_(std::exchange(other.block_bits_, 0)),
      block_arc_begin_(std::exchange(other.block_arc_begin_, nullptr)),
      block_max_degree_(std::exchange(other.block_max_degree_, nullptr)) {}

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this != &other) {
    unmap();
    path_ = std::move(other.path_);
    base_ = std::exchange(other.base_, nullptr);
    mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
    header_ = other.header_;
    offsets_ = std::exchange(other.offsets_, nullptr);
    targets_ = std::exchange(other.targets_, nullptr);
    block_bits_ = std::exchange(other.block_bits_, 0);
    block_arc_begin_ = std::exchange(other.block_arc_begin_, nullptr);
    block_max_degree_ = std::exchange(other.block_max_degree_, nullptr);
  }
  return *this;
}

void MappedGraph::unmap() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, mapped_bytes_);
    base_ = nullptr;
    mapped_bytes_ = 0;
    offsets_ = nullptr;
    targets_ = nullptr;
    block_bits_ = 0;
    block_arc_begin_ = nullptr;
    block_max_degree_ = nullptr;
  }
}

Graph to_graph(const MappedGraph& mapped, bool validate) {
  const auto offsets = mapped.offsets();
  const auto targets = mapped.targets();
  return Graph::from_csr(
      std::vector<std::uint64_t>(offsets.begin(), offsets.end()),
      std::vector<Vertex>(targets.begin(), targets.end()), validate);
}

}  // namespace manywalks
