#include "storage/block_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <system_error>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace manywalks {

namespace {

std::string errno_message(int err) {
  return std::error_code(err, std::generic_category()).message();
}

std::uint64_t page_size() noexcept {
  return static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
}

constexpr std::uint32_t byte_swap32(std::uint32_t x) noexcept {
  return ((x & 0x000000ffu) << 24) | ((x & 0x0000ff00u) << 8) |
         ((x & 0x00ff0000u) >> 8) | ((x & 0xff000000u) >> 24);
}

}  // namespace

// --- MappedExtent -----------------------------------------------------

MappedExtent::MappedExtent(int fd, std::uint64_t byte_begin,
                           std::uint64_t byte_end, const std::string& path) {
  MW_REQUIRE(byte_begin < byte_end, "empty extent [" << byte_begin << ","
                                                     << byte_end << ")");
  const std::uint64_t page = page_size();
  const std::uint64_t map_begin = (byte_begin / page) * page;
  const std::uint64_t len = byte_end - map_begin;
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd,
                      static_cast<off_t>(map_begin));
  if (base == MAP_FAILED) {
    throw MwgIoError("mmap of extent [" + std::to_string(byte_begin) + "," +
                     std::to_string(byte_end) + ") of '" + path +
                     "' failed: " + errno_message(errno));
  }
  base_ = base;
  mapped_bytes_ = len;
  lead_ = byte_begin - map_begin;
  // One extent = one sequential read: prefetch the whole range now so the
  // block's walkers hit warm pages instead of faulting one by one.
  ::posix_madvise(base_, mapped_bytes_, POSIX_MADV_WILLNEED);
}

MappedExtent::~MappedExtent() {
  if (base_ != nullptr) ::munmap(base_, mapped_bytes_);
}

MappedExtent::MappedExtent(MappedExtent&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      mapped_bytes_(std::exchange(other.mapped_bytes_, 0)),
      lead_(std::exchange(other.lead_, 0)) {}

MappedExtent& MappedExtent::operator=(MappedExtent&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, mapped_bytes_);
    base_ = std::exchange(other.base_, nullptr);
    mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
    lead_ = std::exchange(other.lead_, 0);
  }
  return *this;
}

// --- BlockedGraph -----------------------------------------------------

BlockedGraph::BlockedGraph(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw MwgIoError("cannot open '" + path + "': " + errno_message(errno));
  }
  try {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
      throw MwgIoError("cannot stat '" + path + "': " + errno_message(errno));
    }
    file_bytes_ = static_cast<std::uint64_t>(st.st_size);
    MW_REQUIRE(file_bytes_ >= kMwgHeaderBytes,
               "'" << path << "' is not an mwg file: " << file_bytes_
                   << " bytes is smaller than the " << kMwgHeaderBytes
                   << "-byte header");

    // Header first, via a plain read — the metadata mapping size depends
    // on the vertex count it declares.
    if (::pread(fd_, &header_, sizeof(MwgHeader), 0) !=
        static_cast<ssize_t>(sizeof(MwgHeader))) {
      throw MwgIoError("cannot read the header of '" + path + "': " +
                       errno_message(errno));
    }
    MW_REQUIRE(std::memcmp(header_.magic, kMwgMagic, sizeof(kMwgMagic)) == 0,
               "'" << path << "' is not an mwg file (bad magic)");
    MW_REQUIRE(header_.endian != byte_swap32(kMwgEndianTag),
               "'" << path << "' was written on a machine with the opposite "
                   "byte order; regenerate it natively");
    MW_REQUIRE(header_.endian == kMwgEndianTag,
               "'" << path << "' has an unrecognized endianness tag");
    MW_REQUIRE(header_.version == kMwgVersionBlockIndex,
               "'" << path << "' is mwg version " << header_.version
                   << "; out-of-core block scheduling needs the v2 block "
                      "index — upgrade with `manywalks graph convert --in="
                   << path << " --out=...`");
    MW_REQUIRE(header_.num_vertices < kInvalidVertex,
               "'" << path << "' vertex count " << header_.num_vertices
                   << " exceeds the 32-bit vertex limit");
    block_bits_ = static_cast<std::uint32_t>(header_.reserved[0]);
    MW_REQUIRE(header_.reserved[0] >= 1 &&
                   header_.reserved[0] <= kMwgMaxBlockBits,
               "'" << path << "': v2 block_bits " << header_.reserved[0]
                   << " outside [1," << kMwgMaxBlockBits << "]");
    MW_REQUIRE(header_.reserved[1] == 0,
               "'" << path << "': v2 reserved field is nonzero");
    MW_REQUIRE(header_.num_arcs <= file_bytes_ / sizeof(Vertex),
               "'" << path << "' is truncated: header claims "
                   << header_.num_arcs << " arcs, file has only "
                   << file_bytes_ << " bytes");
    const std::uint64_t expected = mwg_file_bytes_v2(
        header_.num_vertices, header_.num_arcs, block_bits_);
    MW_REQUIRE(file_bytes_ == expected,
               "'" << path << "' is truncated or padded: a v2 file with "
                   << header_.num_arcs << " arcs and block_bits "
                   << block_bits_ << " must be " << expected
                   << " bytes, file has " << file_bytes_);

    // Metadata mapping 1: header + offsets (never the targets).
    meta_bytes_ = mwg_targets_begin(header_.num_vertices);
    void* meta = ::mmap(nullptr, meta_bytes_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (meta == MAP_FAILED) {
      throw MwgIoError("mmap of the metadata of '" + path +
                       "' failed: " + errno_message(errno));
    }
    meta_base_ = meta;
    offsets_ = reinterpret_cast<const std::uint64_t*>(
        static_cast<const char*>(meta_base_) + mwg_offsets_begin());

    // Metadata mapping 2: the tail block index (page-aligned down).
    const std::uint64_t index_begin =
        mwg_block_index_begin(header_.num_vertices, header_.num_arcs);
    const std::uint64_t page = page_size();
    const std::uint64_t index_map_begin = (index_begin / page) * page;
    index_bytes_ = file_bytes_ - index_map_begin;
    void* index = ::mmap(nullptr, index_bytes_, PROT_READ, MAP_PRIVATE, fd_,
                         static_cast<off_t>(index_map_begin));
    if (index == MAP_FAILED) {
      throw MwgIoError("mmap of the block index of '" + path +
                       "' failed: " + errno_message(errno));
    }
    index_base_ = index;
    const char* index_bytes_base =
        static_cast<const char*>(index_base_) + (index_begin - index_map_begin);
    block_arc_begin_ = reinterpret_cast<const std::uint64_t*>(index_bytes_base);
    block_max_degree_ = reinterpret_cast<const Vertex*>(
        index_bytes_base + (num_blocks() + 1) * sizeof(std::uint64_t));

    // Structure scan over the resident metadata — the same fused
    // offsets + block-index validation MappedGraph runs, minus anything
    // that would touch the (unmapped) targets.
    const std::uint64_t n = header_.num_vertices;
    MW_REQUIRE(offsets_[0] == 0, "'" << path << "': offsets must start at 0");
    MW_REQUIRE(offsets_[n] == header_.num_arcs,
               "'" << path << "': offsets end at " << offsets_[n]
                   << ", header claims " << header_.num_arcs << " arcs");
    MW_REQUIRE(block_arc_begin_[num_blocks()] == header_.num_arcs,
               "'" << path << "': block index ends at arc "
                   << block_arc_begin_[num_blocks()] << ", header claims "
                   << header_.num_arcs);
    Vertex min_deg = n > 0 ? kInvalidVertex : 0;
    Vertex max_deg = 0;
    Vertex block_max = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
      MW_REQUIRE(offsets_[v] <= offsets_[v + 1],
                 "'" << path << "': offsets not monotone at vertex " << v);
      const std::uint64_t degree = offsets_[v + 1] - offsets_[v];
      MW_REQUIRE(degree < kInvalidVertex,
                 "'" << path << "': degree of vertex " << v << " overflows");
      min_deg = std::min(min_deg, static_cast<Vertex>(degree));
      max_deg = std::max(max_deg, static_cast<Vertex>(degree));
      const std::uint64_t b = v >> block_bits_;
      if ((v & ((std::uint64_t{1} << block_bits_) - 1)) == 0) {
        MW_REQUIRE(block_arc_begin_[b] == offsets_[v],
                   "'" << path << "': block index claims block " << b
                       << " starts at arc " << block_arc_begin_[b]
                       << ", offsets say " << offsets_[v]);
        block_max = 0;
      }
      block_max = std::max(block_max, static_cast<Vertex>(degree));
      if (v + 1 == n || ((v + 1) >> block_bits_) != b) {
        MW_REQUIRE(block_max_degree_[b] == block_max,
                   "'" << path << "': block index claims block " << b
                       << " max degree " << block_max_degree_[b]
                       << ", offsets say " << block_max);
      }
    }
    MW_REQUIRE(min_deg == header_.min_degree && max_deg == header_.max_degree,
               "'" << path << "': header degree range [" << header_.min_degree
                   << "," << header_.max_degree
                   << "] does not match the offsets array [" << min_deg << ","
                   << max_deg << "]");
  } catch (...) {
    close_all();
    throw;
  }
}

BlockedGraph::~BlockedGraph() { close_all(); }

BlockedGraph::BlockedGraph(BlockedGraph&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      file_bytes_(std::exchange(other.file_bytes_, 0)),
      header_(other.header_),
      block_bits_(std::exchange(other.block_bits_, 0)),
      meta_base_(std::exchange(other.meta_base_, nullptr)),
      meta_bytes_(std::exchange(other.meta_bytes_, 0)),
      index_base_(std::exchange(other.index_base_, nullptr)),
      index_bytes_(std::exchange(other.index_bytes_, 0)),
      offsets_(std::exchange(other.offsets_, nullptr)),
      block_arc_begin_(std::exchange(other.block_arc_begin_, nullptr)),
      block_max_degree_(std::exchange(other.block_max_degree_, nullptr)) {}

BlockedGraph& BlockedGraph::operator=(BlockedGraph&& other) noexcept {
  if (this != &other) {
    close_all();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    file_bytes_ = std::exchange(other.file_bytes_, 0);
    header_ = other.header_;
    block_bits_ = std::exchange(other.block_bits_, 0);
    meta_base_ = std::exchange(other.meta_base_, nullptr);
    meta_bytes_ = std::exchange(other.meta_bytes_, 0);
    index_base_ = std::exchange(other.index_base_, nullptr);
    index_bytes_ = std::exchange(other.index_bytes_, 0);
    offsets_ = std::exchange(other.offsets_, nullptr);
    block_arc_begin_ = std::exchange(other.block_arc_begin_, nullptr);
    block_max_degree_ = std::exchange(other.block_max_degree_, nullptr);
  }
  return *this;
}

void BlockedGraph::close_all() noexcept {
  if (meta_base_ != nullptr) {
    ::munmap(meta_base_, meta_bytes_);
    meta_base_ = nullptr;
  }
  if (index_base_ != nullptr) {
    ::munmap(index_base_, index_bytes_);
    index_base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  offsets_ = nullptr;
  block_arc_begin_ = nullptr;
  block_max_degree_ = nullptr;
}

MappedExtent BlockedGraph::map_extent(std::uint64_t byte_begin,
                                      std::uint64_t byte_end) const {
  MW_REQUIRE(byte_end <= file_bytes_,
             "extent [" << byte_begin << "," << byte_end
                        << ") past the end of '" << path_ << "' ("
                        << file_bytes_ << " bytes)");
  return MappedExtent(fd_, byte_begin, byte_end, path_);
}

// --- ExtentCache ------------------------------------------------------

ExtentCache::ExtentCache(const BlockedGraph& graph, std::uint64_t budget_bytes)
    : graph_(&graph), budget_(budget_bytes) {
  MW_REQUIRE(budget_ > 0, "extent-cache budget must be positive");
}

const std::byte* ExtentCache::acquire(std::uint64_t byte_begin,
                                      std::uint64_t byte_end) {
  const auto it = by_begin_.find(byte_begin);
  if (it != by_begin_.end()) {
    MW_REQUIRE(it->second->end == byte_end,
               "extent at " << byte_begin << " re-acquired with end "
                            << byte_end << " != cached " << it->second->end);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    if (obs::RunObserver* const o = obs::observer();
        o != nullptr && o->metrics != nullptr) {
      obs::thread_counters().add(obs::Metric::kCacheHits, 1);
    }
    return lru_.front().extent.data();
  }
  lru_.push_front(
      Entry{byte_begin, byte_end, graph_->map_extent(byte_begin, byte_end)});
  by_begin_.emplace(byte_begin, lru_.begin());
  const std::uint64_t bytes = byte_end - byte_begin;
  ++stats_.loads;
  stats_.bytes_loaded += bytes;
  stats_.resident_bytes += bytes;
  // Evict LRU extents past the budget, but never the one just acquired:
  // a single over-budget extent still loads (and pins the cache floor).
  std::uint64_t evicted = 0;
  while (stats_.resident_bytes > budget_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    stats_.resident_bytes -= victim.end - victim.begin;
    ++stats_.evictions;
    ++evicted;
    by_begin_.erase(victim.begin);
    lru_.pop_back();
  }
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  // Observability: misses and evictions are cache-churn events (coarse by
  // construction — one per extent mapped, never per walk step). Counters
  // go to the calling thread's scratch; trace events go straight to the
  // (mutex-protected) writer.
  if (obs::RunObserver* const o = obs::observer(); o != nullptr) {
    if (o->metrics != nullptr) {
      obs::WorkerCounters& scratch = obs::thread_counters();
      scratch.add(obs::Metric::kCacheLoads, 1);
      scratch.add(obs::Metric::kCacheBytesLoaded, bytes);
      scratch.add(obs::Metric::kCacheEvictions, evicted);
    }
    if (o->trace != nullptr) {
      std::string args = "\"begin\":" + std::to_string(byte_begin) +
                         ",\"bytes\":" + std::to_string(bytes);
      if (evicted > 0) args += ",\"evicted\":" + std::to_string(evicted);
      o->trace->instant("extent-load", "cache", 0, std::move(args));
    }
  }
  return lru_.front().extent.data();
}

}  // namespace manywalks
