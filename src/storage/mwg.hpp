// The `mwg` on-disk graph format: binary CSR with a fixed 64-byte
// header, written once and memory-mapped forever after.
//
// Layout (all fields in the PRODUCER's native byte order; the header's
// endianness tag lets a consumer on a foreign-endian machine reject the
// file instead of silently misreading it):
//
//   offset 0    MwgHeader            64 bytes (8-byte aligned fields)
//   offset 64   offsets[n + 1]       (n+1) x uint64  row offsets into targets
//   offset 64 + (n+1)*8
//               targets[num_arcs]    num_arcs x uint32 (Vertex) adjacency
//
// v2 appends an OPTIONAL block-index section after the targets (plus 0-4
// zero bytes of padding so the section is 8-byte aligned). Blocks are
// vertex-contiguous: with `block_bits` = B stored in header.reserved[0],
// block b covers vertices [b << B, min(n, (b+1) << B)); there are
// ceil(n / 2^B) blocks. The section is
//
//   block_arc_begin[num_blocks + 1]   uint64  first arc of each block
//                                     (== offsets[first vertex]; the last
//                                     entry is num_arcs)
//   block_max_degree[num_blocks]      uint32  max degree inside each block
//
// so an out-of-core scheduler can map block b's targets as the byte
// extent [targets_begin + 4*block_arc_begin[b],
// targets_begin + 4*block_arc_begin[b+1]) — a pure sequential read —
// and size its per-block walk buffers from the cached max degree. v1
// files (version 1, reserved[0] == 0) remain valid and loadable; the
// index is derivable, so `manywalks graph convert` upgrades them.
//
// The arrays are exactly Graph's CSR arrays (same arc conventions: a
// non-loop edge is two arcs, a self loop one; rows sorted ascending), so a
// mapped file binds to the walk engine through the same CsrSubstrate as an
// in-core Graph — zero copies, bit-identical streams. The header caches
// num_loops and min/max degree so `manywalks graph info` and substrate
// binding never have to scan the adjacency.
//
// MwgWriter is STREAMING: it needs the vertex count up front, then takes
// one adjacency row at a time and holds only the O(n) offsets array in
// memory — a generator (or an implicit substrate) can emit a graph far
// larger than an in-core CSR would allow. The header is written last, by
// finish(): a crashed or abandoned write leaves a zeroed header that every
// loader rejects, never a plausible-looking truncated graph.
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "graph/graph.hpp"
#include "graph/substrate.hpp"
#include "util/check.hpp"

namespace manywalks {

/// Environmental I/O failure on an mwg file: missing path, permission
/// denied, stat/mmap failure. Distinct from the std::invalid_argument that
/// MW_REQUIRE throws for *content* problems (bad magic, truncation, header
/// lies) so callers — the CLI above all — can show the message as-is
/// without the requirement-violated diagnostics prefix: these are user
/// errors, not bugs, and need no file:line breadcrumb.
class MwgIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kMwgMagic[8] = {'M', 'W', 'G', 'R', 'A', 'P', 'H', '1'};
/// Written in the producer's native order; a consumer that reads it
/// byte-swapped knows the file crossed an endianness boundary.
inline constexpr std::uint32_t kMwgEndianTag = 0x01020304u;
inline constexpr std::uint32_t kMwgVersion = 1;
/// v2 = v1 + trailing block-index section; header.reserved[0] holds
/// block_bits (1..31).
inline constexpr std::uint32_t kMwgVersionBlockIndex = 2;
inline constexpr std::size_t kMwgHeaderBytes = 64;
/// Widest legal block granularity: 2^31 vertices per block covers any
/// 32-bit vertex id in one block.
inline constexpr std::uint32_t kMwgMaxBlockBits = 31;

struct MwgHeader {
  char magic[8];               // kMwgMagic
  std::uint32_t endian;        // kMwgEndianTag, producer byte order
  std::uint32_t version;       // kMwgVersion
  std::uint64_t num_vertices;  // n (fits Vertex)
  std::uint64_t num_arcs;      // adjacency entries (2*edges - loops)
  std::uint64_t num_loops;     // self-loop arcs
  std::uint32_t min_degree;    // cached degree extremes (0 for n == 0)
  std::uint32_t max_degree;
  std::uint64_t reserved[2];   // v1: zero; v2: reserved[0] = block_bits
};
static_assert(sizeof(MwgHeader) == kMwgHeaderBytes);
static_assert(std::is_trivially_copyable_v<MwgHeader>);

/// Byte offset of the offsets array (== header size).
constexpr std::uint64_t mwg_offsets_begin() noexcept { return kMwgHeaderBytes; }

/// Byte offset of the targets array for an n-vertex file.
constexpr std::uint64_t mwg_targets_begin(std::uint64_t n) noexcept {
  return kMwgHeaderBytes + (n + 1) * sizeof(std::uint64_t);
}

/// Total file size for an (n, num_arcs) v1 graph.
constexpr std::uint64_t mwg_file_bytes(std::uint64_t n,
                                       std::uint64_t num_arcs) noexcept {
  return mwg_targets_begin(n) + num_arcs * sizeof(Vertex);
}

/// Rounds up to the next multiple of 8 (block-index alignment).
constexpr std::uint64_t mwg_align8(std::uint64_t x) noexcept {
  return (x + 7) & ~std::uint64_t{7};
}

/// Number of vertex blocks for an n-vertex graph at 2^block_bits
/// vertices per block.
constexpr std::uint64_t mwg_num_blocks(std::uint64_t n,
                                       std::uint32_t block_bits) noexcept {
  return n == 0 ? 0 : ((n - 1) >> block_bits) + 1;
}

/// Byte offset of the v2 block-index section (8-aligned, directly after
/// the targets array).
constexpr std::uint64_t mwg_block_index_begin(std::uint64_t n,
                                              std::uint64_t num_arcs) noexcept {
  return mwg_align8(mwg_file_bytes(n, num_arcs));
}

/// Total file size for an (n, num_arcs) v2 graph at block_bits.
constexpr std::uint64_t mwg_file_bytes_v2(std::uint64_t n,
                                          std::uint64_t num_arcs,
                                          std::uint32_t block_bits) noexcept {
  const std::uint64_t blocks = mwg_num_blocks(n, block_bits);
  return mwg_block_index_begin(n, num_arcs) +
         (blocks + 1) * sizeof(std::uint64_t) + blocks * sizeof(Vertex);
}

/// Default block granularity for an n-vertex graph: the smallest
/// block_bits >= 12 (4096-vertex blocks) that keeps the index at or
/// under 1024 blocks — small graphs get one block, huge graphs get
/// proportionally larger blocks so the index stays tiny.
constexpr std::uint32_t mwg_default_block_bits(std::uint64_t n) noexcept {
  std::uint32_t bits = 12;
  while (bits < kMwgMaxBlockBits && mwg_num_blocks(n, bits) > 1024) ++bits;
  return bits;
}

/// Streams one graph into an mwg file: construct with the vertex count,
/// append every row in vertex order (sorted ascending, like Graph rows),
/// then finish(). Holds only the offsets array (O(n)) in memory.
///
/// `block_bits` == 0 writes a v1 file (no block index — byte-identical
/// to the historical format); 1..kMwgMaxBlockBits writes a v2 file with
/// a block index at that granularity.
class MwgWriter {
 public:
  MwgWriter(std::string path, Vertex num_vertices,
            std::uint32_t block_bits = 0);

  MwgWriter(const MwgWriter&) = delete;
  MwgWriter& operator=(const MwgWriter&) = delete;

  /// Appends the adjacency row of the next vertex (rows_appended() so
  /// far). Neighbors must be sorted ascending — the CSR row order every
  /// substrate binding and golden stream is defined against.
  void append_row(std::span<const Vertex> sorted_neighbors);

  /// Writes the offsets array and the header, and closes the file. Must be
  /// called after exactly num_vertices() rows; throws if the stream failed
  /// anywhere along the way.
  void finish();

  Vertex num_vertices() const noexcept { return n_; }
  Vertex rows_appended() const noexcept { return rows_; }
  std::uint64_t arcs_appended() const noexcept { return offsets_.back(); }
  std::uint32_t block_bits() const noexcept { return block_bits_; }

 private:
  std::string path_;
  std::ofstream out_;
  Vertex n_;
  std::uint32_t block_bits_;  // 0 = v1, no block index
  Vertex rows_ = 0;
  std::vector<std::uint64_t> offsets_;  // cumulative; offsets_[rows_] is next
  std::vector<Vertex> block_max_degree_;  // v2 only; per-block running max
  std::uint64_t loops_ = 0;
  Vertex min_degree_ = kInvalidVertex;
  Vertex max_degree_ = 0;
  bool finished_ = false;
};

/// Writes an in-core Graph to `path`; block_bits == 0 gives mwg v1.
void write_mwg(const std::string& path, const Graph& g,
               std::uint32_t block_bits = 0);

/// Writes any substrate to `path` by enumerating its rows — the way to
/// produce an mwg file bigger than an in-core CSR could be (e.g. a 10^7
/// cycle straight from CycleSubstrate). Rows whose substrate enumeration
/// is not ascending (the hypercube's bit order) are sorted per row, so the
/// file always matches the canonical CSR of the same graph.
template <Substrate S>
void write_mwg(const std::string& path, const S& substrate,
               std::uint32_t block_bits = 0) {
  const Vertex n = substrate.num_vertices();
  MwgWriter writer(path, n, block_bits);
  std::vector<Vertex> row;
  for (Vertex v = 0; v < n; ++v) {
    const Vertex degree = substrate.degree(v);
    row.resize(degree);
    for (Vertex i = 0; i < degree; ++i) row[i] = substrate.neighbor(v, i);
    std::sort(row.begin(), row.end());
    writer.append_row(row);
  }
  writer.finish();
}

}  // namespace manywalks
