// Ingestion of headerless external edge lists (SNAP-style) into a Graph.
//
// Real-world graph dumps are whitespace-separated "<u> <v>" pairs with
// `#`/`%` comment lines, arbitrary (sparse, 64-bit) vertex ids, and the
// usual dirt: both edge directions listed, duplicate rows, self loops,
// and disconnected fragments. ingest_edge_list parses that shape with the
// from_chars scanner, relabels ids to dense 0..n-1 (by ascending original
// id — deterministic regardless of edge order), and applies the cleanup
// the walk engine's substrate contract needs (dedup, loop drop,
// largest-connected-component extraction), reporting what it did.
//
// This is the `manywalks graph convert` backend; the repo's own
// `# manywalks-graph` format keeps its stricter reader in graph/io.hpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace manywalks {

struct EdgeListIngestOptions {
  /// Collapse duplicate undirected edges (u,v)==(v,u). SNAP files list
  /// both directions of each edge; without dedup those become parallel
  /// edges (doubling every degree), so collapsing is the default.
  bool dedup = true;
  /// Drop self loops (u,u). Kept loops follow the library convention: one
  /// arc, degree +1.
  bool drop_self_loops = true;
  /// Keep only the largest connected component (relabeled again to dense
  /// ids). Off by default so `convert` is lossless unless asked.
  bool largest_component = false;
};

struct EdgeListIngestStats {
  std::uint64_t lines = 0;             ///< total lines read
  std::uint64_t comment_lines = 0;     ///< `#`/`%` and blank lines
  std::uint64_t edges_parsed = 0;      ///< well-formed "<u> <v>" rows
  std::uint64_t self_loops_dropped = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t distinct_ids = 0;      ///< external ids seen on kept edges
  Vertex num_components = 0;           ///< of the relabeled graph
  /// Vertices outside the largest component (dropped when
  /// largest_component is set, merely reported otherwise).
  std::uint64_t vertices_outside_largest = 0;
};

struct EdgeListIngestResult {
  Graph graph;
  /// new (dense) vertex id -> original external id.
  std::vector<std::uint64_t> original_ids;
  EdgeListIngestStats stats;
};

/// Parses a headerless edge list from `is`. Throws std::invalid_argument
/// (with the 1-based line number) on malformed rows, and if no edges
/// survive the cleanup.
EdgeListIngestResult ingest_edge_list(std::istream& is,
                                      const EdgeListIngestOptions& options = {});

/// Convenience: ingest_edge_list over a file path.
EdgeListIngestResult ingest_edge_list_file(
    const std::string& path, const EdgeListIngestOptions& options = {});

}  // namespace manywalks
