// Implicit graph substrates: the scale-out layer under the walk engine.
//
// A CSR `Graph` caps every experiment at the memory of an explicit edge
// list (a 10^8-vertex cycle is ~1.6 GB of CSR) long before the paper's
// asymptotics are visible. A Substrate is the minimal adjacency interface
// the walk hot path actually needs — num_vertices / degree / neighbor —
// and the families with closed-form adjacency (cycle, 2-d torus,
// hypercube, complete graph) implement it in O(1) space, so the only O(n)
// allocation left in a cover trial is the n/8-byte visit tracker.
//
// Binding contract (see docs/ARCHITECTURE.md "Substrates"):
//   * substrates are small trivially-copyable value types, stored by value
//     in WalkEngineT and compared with == for cache rebinding;
//   * `neighbor(v, i)` for 0 <= i < degree(v) enumerates the same arc
//     multiset as the equivalent CSR graph, so the simple random walk has
//     the identical law. Cycle/torus/complete additionally enumerate in
//     CSR (ascending) order, making their engines RNG-stream bit-identical
//     to the CSR instantiation; the hypercube uses bit order (a per-vertex
//     permutation of the CSR row — same walk law, different stream);
//   * every substrate is walkable by construction (min degree >= 1), so
//     engines skip the per-trial walkability re-validation a raw Graph
//     needs.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <span>
#include <type_traits>

#include "graph/graph.hpp"
#include "util/check.hpp"
#include "util/prefetch.hpp"

namespace manywalks {

/// The adjacency interface of the walk hot path. Trivial copyability keeps
/// `Graph` itself out of the overload set (samplers take substrates by
/// value) and lets the engine's inner loop hold a register-resident copy.
template <class S>
concept Substrate =
    std::is_trivially_copyable_v<S> && std::equality_comparable<S> &&
    requires(const S s, Vertex v, Vertex i) {
      { s.num_vertices() } -> std::convertible_to<Vertex>;
      { s.degree(v) } -> std::convertible_to<Vertex>;
      { s.neighbor(v, i) } -> std::convertible_to<Vertex>;
    };

// --- optional lane-kernel traits ---------------------------------------------
//
// The lane-mode walk kernel (walk/engine.hpp) specializes on two optional
// substrate advertisements. Both are pure fast-path declarations: they
// never change the walk law, only how the kernel draws and prefetches.

/// Substrates whose every vertex has the same degree advertise
/// `static constexpr bool uniform_degree = true`; the lane kernel then
/// hoists the degree (and the power-of-two check behind the mask draw)
/// out of the round loop entirely.
template <class S>
concept UniformDegreeSubstrate =
    Substrate<S> && static_cast<bool>(S::uniform_degree);

/// Uniform-degree substrates whose degree is a power of two for EVERY
/// parameterization additionally advertise
/// `static constexpr bool pow2_degree = true`; the lane kernel replaces
/// Lemire's multiply with a single mask of the raw 64-bit word at compile
/// time. (The hypercube's degree is its dimension, a power of two only for
/// some instances, so it advertises uniform_degree and gets the mask path
/// through the kernel's hoisted runtime check instead.)
template <class S>
concept Pow2DegreeSubstrate =
    UniformDegreeSubstrate<S> && static_cast<bool>(S::pow2_degree);

/// Substrates backed by in-memory adjacency arrays expose their arc
/// addressing so the lane kernel can split "resolve the arc" from "load
/// the neighbor" and prefetch between the two — the pipelining that turns
/// k independent lanes into k memory requests in flight. regular_stride()
/// additionally reports a uniform row stride (the degree of a regular
/// graph, 0 otherwise), which removes the offset-row load from the
/// kernel's per-step dependency chain entirely: arc = stride*v + draw.
template <class S>
concept ArcAddressableSubstrate =
    Substrate<S> && requires(const S s, Vertex v, Vertex i, std::uint64_t a) {
      s.prefetch_degree_row(v);
      { s.arc_index(v, i) } -> std::convertible_to<std::uint64_t>;
      s.prefetch_arc(a);
      { s.arc_target(a) } -> std::convertible_to<Vertex>;
      { s.regular_stride() } -> std::convertible_to<Vertex>;
    };

/// Wraps a Graph's live CSR arrays (pointers, not a copy — the Graph must
/// outlive the substrate, exactly like the historical WalkEngine binding).
/// Equality compares the array identities, so a cached engine can never
/// silently run against a different graph.
class CsrSubstrate {
 public:
  explicit CsrSubstrate(const Graph& g)
      : CsrSubstrate(g.offsets().data(), g.targets().data(), g.num_vertices(),
                     g.num_vertices() > 0 ? g.min_degree() : 0,
                     g.num_vertices() > 0 ? g.max_degree() : 0) {}

  /// Binds raw CSR arrays directly — the zero-copy path a memory-mapped
  /// graph (storage/mapped_graph.hpp) uses. `row` must hold
  /// num_vertices+1 offsets and `adj` the full arc array; both must
  /// outlive the substrate, exactly like the Graph overload's arrays. The
  /// degree extremes come from the caller (the mwg header caches them) so
  /// binding stays O(1).
  CsrSubstrate(const std::uint64_t* row, const Vertex* adj,
               Vertex num_vertices, Vertex min_degree, Vertex max_degree)
      : row_(row),
        adj_(adj),
        num_vertices_(num_vertices),
        regular_stride_(min_degree == max_degree ? min_degree : 0) {
    // Uphold the substrate invariant (walkable by construction): a
    // degree-0 vertex would make neighbor() read past its empty row.
    MW_REQUIRE(num_vertices_ >= 1, "CSR substrate needs at least one vertex");
    MW_REQUIRE(min_degree >= 1,
               "CSR substrate needs min degree >= 1 (isolated vertex)");
  }

  Vertex num_vertices() const noexcept { return num_vertices_; }
  Vertex degree(Vertex v) const noexcept {
    return static_cast<Vertex>(row_[v + 1] - row_[v]);
  }
  Vertex neighbor(Vertex v, Vertex i) const noexcept {
    return adj_[row_[v] + i];
  }

  // Arc addressing for the lane kernel's prefetch pipeline. arc_index
  // resolves an (offset-row) load, arc_target a (targets-array) load; the
  // kernel prefetches each one a stage ahead of its use.
  void prefetch_degree_row(Vertex v) const noexcept { mw_prefetch(row_ + v); }
  std::uint64_t arc_index(Vertex v, Vertex i) const noexcept {
    return row_[v] + i;
  }
  void prefetch_arc(std::uint64_t arc) const noexcept {
    mw_prefetch(adj_ + arc);
  }
  Vertex arc_target(std::uint64_t arc) const noexcept { return adj_[arc]; }
  /// Degree of a regular graph (every row the same length, so
  /// arc_index(v, i) == stride*v + i with no row load), 0 otherwise.
  Vertex regular_stride() const noexcept { return regular_stride_; }

  /// The live offsets array (n+1 entries) — what stationary-start
  /// sampling binary-searches. Exposed because a CsrSubstrate can be the
  /// ONLY handle on a graph: a memory-mapped file never materializes a
  /// Graph (storage/mapped_graph.hpp).
  std::span<const std::uint64_t> offsets() const noexcept {
    return {row_, static_cast<std::size_t>(num_vertices_) + 1};
  }

  /// True iff this substrate reads exactly g's live CSR arrays. A pure
  /// comparison (never throws), unlike constructing a CsrSubstrate from g
  /// — so WalkEngine::bound_to stays a query even for invalid graphs.
  bool reads_arrays_of(const Graph& g) const noexcept {
    return row_ == g.offsets().data() && adj_ == g.targets().data() &&
           num_vertices_ == g.num_vertices();
  }

  bool operator==(const CsrSubstrate&) const noexcept = default;

 private:
  const std::uint64_t* row_;  // |V|+1 entries, from Graph::offsets()
  const Vertex* adj_;         // num_arcs entries, from Graph::targets()
  Vertex num_vertices_;
  Vertex regular_stride_;     // degree if regular, else 0
};

/// Cycle L_n in O(1) space. Neighbor order matches make_cycle's sorted CSR
/// rows, so cover samples are bit-identical to the CSR engine per stream.
class CycleSubstrate {
 public:
  explicit CycleSubstrate(Vertex n) : n_(n) {
    MW_REQUIRE(n >= 3, "cycle substrate needs n >= 3, got " << n);
  }

  static constexpr bool uniform_degree = true;
  static constexpr bool pow2_degree = true;  // degree 2 everywhere

  Vertex num_vertices() const noexcept { return n_; }
  Vertex degree(Vertex) const noexcept { return 2; }
  Vertex neighbor(Vertex v, Vertex i) const noexcept {
    const Vertex prev = v == 0 ? n_ - 1 : v - 1;
    const Vertex next = v + 1 == n_ ? 0 : v + 1;
    const Vertex lo = std::min(prev, next);
    const Vertex hi = std::max(prev, next);
    return i == 0 ? lo : hi;
  }

  bool operator==(const CycleSubstrate&) const noexcept = default;

 private:
  Vertex n_;
};

/// side x side 2-d torus (make_grid_2d's row-major indexing: v = x*side+y).
/// The four wrap-around neighbors are returned in ascending (CSR) order.
class TorusSubstrate {
 public:
  explicit TorusSubstrate(Vertex side)
      : side_(side), n_(side * side) {
    MW_REQUIRE(side >= 3, "torus substrate needs side >= 3, got " << side);
    MW_REQUIRE(n_ / side == side, "torus side " << side << " overflows Vertex");
  }

  static constexpr bool uniform_degree = true;
  static constexpr bool pow2_degree = true;  // degree 4 everywhere

  Vertex side() const noexcept { return side_; }
  Vertex num_vertices() const noexcept { return n_; }
  Vertex degree(Vertex) const noexcept { return 4; }
  Vertex neighbor(Vertex v, Vertex i) const noexcept {
    const Vertex x = v / side_;
    const Vertex y = v - x * side_;
    const Vertex xm = x == 0 ? side_ - 1 : x - 1;
    const Vertex xp = x + 1 == side_ ? 0 : x + 1;
    const Vertex ym = y == 0 ? side_ - 1 : y - 1;
    const Vertex yp = y + 1 == side_ ? 0 : y + 1;
    Vertex a = xm * side_ + y;
    Vertex b = xp * side_ + y;
    Vertex c = x * side_ + ym;
    Vertex d = x * side_ + yp;
    // 5-exchange sorting network; side >= 3 keeps all four distinct.
    if (a > b) std::swap(a, b);
    if (c > d) std::swap(c, d);
    if (a > c) std::swap(a, c);
    if (b > d) std::swap(b, d);
    if (b > c) std::swap(b, c);
    const Vertex sorted[4] = {a, b, c, d};
    return sorted[i];
  }

  bool operator==(const TorusSubstrate&) const noexcept = default;

 private:
  Vertex side_;
  Vertex n_;
};

/// Hypercube on 2^dimension vertices: neighbor i flips bit i. That is a
/// per-vertex permutation of the sorted CSR row — the walk law matches
/// make_hypercube exactly, but streams are not bit-comparable to CSR.
class HypercubeSubstrate {
 public:
  explicit HypercubeSubstrate(unsigned dimension) : dimension_(dimension) {
    MW_REQUIRE(dimension >= 1 && dimension < 32,
               "hypercube substrate needs dimension in [1,32), got "
                   << dimension);
  }

  // Degree = dimension, the same at every vertex but a power of two only
  // for some dimensions; the lane kernel's hoisted runtime check promotes
  // pow2 instances to the mask draw.
  static constexpr bool uniform_degree = true;

  unsigned dimension() const noexcept { return dimension_; }
  Vertex num_vertices() const noexcept { return Vertex{1} << dimension_; }
  Vertex degree(Vertex) const noexcept {
    return static_cast<Vertex>(dimension_);
  }
  Vertex neighbor(Vertex v, Vertex i) const noexcept {
    return v ^ (Vertex{1} << i);
  }

  bool operator==(const HypercubeSubstrate&) const noexcept = default;

 private:
  unsigned dimension_;
};

/// Complete graph K_n (no self loops): neighbor list of v is every other
/// vertex in ascending order, matching make_complete's CSR rows.
class CompleteSubstrate {
 public:
  explicit CompleteSubstrate(Vertex n) : n_(n) {
    MW_REQUIRE(n >= 2, "complete substrate needs n >= 2, got " << n);
  }

  static constexpr bool uniform_degree = true;  // n-1, rarely a power of two

  Vertex num_vertices() const noexcept { return n_; }
  Vertex degree(Vertex) const noexcept { return n_ - 1; }
  Vertex neighbor(Vertex v, Vertex i) const noexcept {
    return i + (i >= v ? 1 : 0);
  }

  bool operator==(const CompleteSubstrate&) const noexcept = default;

 private:
  Vertex n_;
};

static_assert(Substrate<CsrSubstrate>);
static_assert(Substrate<CycleSubstrate>);
static_assert(Substrate<TorusSubstrate>);
static_assert(Substrate<HypercubeSubstrate>);
static_assert(Substrate<CompleteSubstrate>);
static_assert(!Substrate<Graph>, "Graph must go through CsrSubstrate");

static_assert(ArcAddressableSubstrate<CsrSubstrate>);
static_assert(!ArcAddressableSubstrate<CycleSubstrate>);
static_assert(Pow2DegreeSubstrate<CycleSubstrate>);
static_assert(Pow2DegreeSubstrate<TorusSubstrate>);
static_assert(UniformDegreeSubstrate<HypercubeSubstrate> &&
              !Pow2DegreeSubstrate<HypercubeSubstrate>);
static_assert(UniformDegreeSubstrate<CompleteSubstrate> &&
              !Pow2DegreeSubstrate<CompleteSubstrate>);
static_assert(!UniformDegreeSubstrate<CsrSubstrate>);

}  // namespace manywalks
