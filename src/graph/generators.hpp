// Generators for every graph family studied in the paper (Table 1 and §6/§7)
// plus a few classics used by tests and examples.
//
// Vertex numbering conventions are documented per generator because the
// experiments need canonical starting vertices (e.g. the barbell center).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace manywalks {

// ---------------------------------------------------------------------------
// Deterministic families
// ---------------------------------------------------------------------------

/// Cycle L_n (the paper's ring), n >= 3. Vertex i ~ i±1 (mod n).
Graph make_cycle(Vertex n);

/// Path on n vertices (0-1-2-...-n-1), n >= 2.
Graph make_path(Vertex n);

/// Complete graph K_n, n >= 2. `with_self_loops` adds one loop per vertex
/// (the convention used in the paper's Lemma 12 / expander discussion).
Graph make_complete(Vertex n, bool with_self_loops = false);

/// Complete bipartite K_{a,b}; vertices 0..a-1 on the left.
Graph make_complete_bipartite(Vertex a, Vertex b);

/// Star S_n: vertex 0 is the hub, 1..n-1 are leaves; n >= 2.
Graph make_star(Vertex n);

enum class GridTopology {
  kTorus,  ///< wrap-around neighbors (vertex-transitive; used in Thm 8/24)
  kOpen,   ///< no wrap-around (boundary vertices have lower degree)
};

/// d-dimensional grid with side lengths `dims` (each >= 1). Torus topology
/// skips wrap edges along dimensions of length < 3 (avoiding duplicates).
/// Vertex index is row-major: index = sum_i coord[i] * stride[i].
Graph make_grid(const std::vector<Vertex>& dims,
                GridTopology topology = GridTopology::kTorus);

/// Convenience: side x side 2-D grid.
Graph make_grid_2d(Vertex side, GridTopology topology = GridTopology::kTorus);

/// Convenience: d-dimensional torus with equal sides.
Graph make_torus(Vertex side, unsigned dimensions);

/// Hypercube on 2^dimension vertices; u ~ v iff they differ in one bit.
Graph make_hypercube(unsigned dimension);

/// Complete `arity`-ary tree of the given height (height 0 = single root).
/// Root is vertex 0; children of v are arity*v+1 .. arity*v+arity.
/// This is the paper's "d-regular balanced tree" family (internal degree
/// arity+1).
Graph make_balanced_tree(unsigned arity, unsigned height);

/// The paper's barbell B_n (§7): n odd, two cliques of size (n-1)/2 joined
/// by a path of length 2 through the center vertex. Vertices 0..(n-3)/2-1 =
/// left bell, (n-3)/2 = left port, then center, then the right side
/// mirrored. Use `barbell_center()` for the canonical start.
Graph make_barbell(Vertex n);

/// Center vertex index of make_barbell(n).
Vertex barbell_center(Vertex n);

/// Two cliques of `clique_size` joined by a path with `path_interior`
/// interior vertices (path length = path_interior + 1 edges on each ... the
/// full bridge has path_interior vertices strictly between the two cliques).
Graph make_generalized_barbell(Vertex clique_size, Vertex path_interior);

/// Lollipop graph: clique on ceil(2n/3) vertices with a path of the
/// remaining vertices attached (the Θ(n³) worst case for cover time).
/// Vertex n-1 is the far end of the path; vertex 0 is in the clique.
Graph make_lollipop(Vertex n);

// ---------------------------------------------------------------------------
// Expanders
// ---------------------------------------------------------------------------

/// Margulis–Gabber–Galil expander on Z_m x Z_m: 8-regular multigraph on
/// n = side^2 vertices. Vertex (x,y) has ports to (x±2y, y), (x±(2y+1), y),
/// (x, y±2x), (x, y±(2x+1)) (mod side). All non-trivial eigenvalues of the
/// adjacency matrix satisfy |λ| <= 5·sqrt(2) < 8, so this is an (n, 8, λ)
/// expander for every side. Contains self loops and parallel edges by
/// construction; every vertex has degree exactly 8.
Graph make_margulis_expander(Vertex side);

// ---------------------------------------------------------------------------
// Random families
// ---------------------------------------------------------------------------

/// Erdős–Rényi G(n, p). Simple graph; may be disconnected (use
/// `make_erdos_renyi_connected` or extract_largest_component for walks).
/// Uses geometric skipping, O(n + m) expected time.
Graph make_erdos_renyi(Vertex n, double p, Rng& rng);

/// Resamples G(n, p) until connected (at most `max_attempts` draws).
/// Throws if all attempts fail — choose p >= c·ln(n)/n with c > 1.
Graph make_erdos_renyi_connected(Vertex n, double p, Rng& rng,
                                 unsigned max_attempts = 64);

/// Random d-regular simple graph via the configuration model with
/// restarts (rejecting pairings that create loops/multi-edges). Requires
/// n*d even, d < n. Expected O(m) per attempt, O(1) attempts for fixed d.
Graph make_random_regular(Vertex n, Vertex degree, Rng& rng,
                          unsigned max_attempts = 1000);

/// Random geometric graph: n points uniform in the unit square, edge iff
/// Euclidean distance <= radius. Grid-bucketed, O(n + m) expected.
/// The paper cites RGGs (with radius above the connectivity threshold
/// ~ sqrt(ln n / n)) as a family where Matthews' bound is tight.
Graph make_random_geometric(Vertex n, double radius, Rng& rng);

/// Radius giving connectivity w.h.p.: sqrt(c * ln(n) / n), default c = 2.
double random_geometric_connectivity_radius(Vertex n, double c = 2.0);

}  // namespace manywalks
