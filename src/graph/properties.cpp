#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace manywalks {

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(source < n, "bfs source out of range");
  std::vector<std::uint32_t> dist(n, kUnreachable);
  std::vector<Vertex> frontier{source};
  std::vector<Vertex> next;
  dist[source] = 0;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (Vertex v : frontier) {
      for (Vertex u : g.neighbors(v)) {
        if (dist[u] == kUnreachable) {
          dist[u] = depth;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

bool is_connected(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (n <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

ComponentDecomposition connected_components(const Graph& g) {
  const Vertex n = g.num_vertices();
  ComponentDecomposition out;
  out.component_of.assign(n, kInvalidVertex);
  std::vector<Vertex> stack;
  for (Vertex root = 0; root < n; ++root) {
    if (out.component_of[root] != kInvalidVertex) continue;
    const Vertex id = out.num_components++;
    out.sizes.push_back(0);
    stack.push_back(root);
    out.component_of[root] = id;
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      ++out.sizes[id];
      for (Vertex u : g.neighbors(v)) {
        if (out.component_of[u] == kInvalidVertex) {
          out.component_of[u] = id;
          stack.push_back(u);
        }
      }
    }
  }
  if (out.num_components > 0) {
    out.largest = static_cast<Vertex>(
        std::max_element(out.sizes.begin(), out.sizes.end()) -
        out.sizes.begin());
  }
  return out;
}

InducedSubgraph extract_largest_component(const Graph& g) {
  const auto comps = connected_components(g);
  const Vertex n = g.num_vertices();
  InducedSubgraph out;
  out.old_to_new.assign(n, kInvalidVertex);
  for (Vertex v = 0; v < n; ++v) {
    if (comps.component_of[v] == comps.largest) {
      out.old_to_new[v] = static_cast<Vertex>(out.new_to_old.size());
      out.new_to_old.push_back(v);
    }
  }
  GraphBuilder b(static_cast<Vertex>(out.new_to_old.size()));
  for (Vertex v : out.new_to_old) {
    for (Vertex u : g.neighbors(v)) {
      // Keep each undirected edge once: loops directly, others when v <= u.
      if (u == v || v < u) {
        if (u == v) {
          b.add_edge(out.old_to_new[v], out.old_to_new[v]);
        } else {
          b.add_edge(out.old_to_new[v], out.old_to_new[u]);
        }
      }
    }
  }
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kKeep;
  options.loops = GraphBuilder::LoopPolicy::kKeep;
  out.graph = b.build(options);
  return out;
}

std::uint32_t eccentricity(const Graph& g, Vertex v) {
  const auto dist = bfs_distances(g, v);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter_exact(const Graph& g) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(n >= 1, "diameter of empty graph");
  std::uint32_t best = 0;
  for (Vertex v = 0; v < n; ++v) {
    const std::uint32_t ecc = eccentricity(g, v);
    if (ecc == kUnreachable) return kUnreachable;
    best = std::max(best, ecc);
  }
  return best;
}

std::uint32_t diameter_lower_bound(const Graph& g, Rng& rng, unsigned sweeps) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(n >= 1, "diameter of empty graph");
  std::uint32_t best = 0;
  Vertex probe = rng.uniform_below(n);
  for (unsigned s = 0; s < sweeps; ++s) {
    const auto dist = bfs_distances(g, probe);
    Vertex far = probe;
    std::uint32_t far_d = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (dist[v] != kUnreachable && dist[v] >= far_d) {
        far_d = dist[v];
        far = v;
      }
    }
    best = std::max(best, far_d);
    probe = far;  // double sweep: restart from the farthest vertex found
  }
  return best;
}

bool is_bipartite(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (g.num_loops() > 0) return false;
  std::vector<std::uint8_t> color(n, 2);  // 2 = uncolored
  std::vector<Vertex> stack;
  for (Vertex root = 0; root < n; ++root) {
    if (color[root] != 2) continue;
    color[root] = 0;
    stack.push_back(root);
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (Vertex u : g.neighbors(v)) {
        if (color[u] == 2) {
          color[u] = static_cast<std::uint8_t>(1 - color[v]);
          stack.push_back(u);
        } else if (color[u] == color[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const Vertex n = g.num_vertices();
  if (n == 0) return stats;
  stats.min = g.min_degree();
  stats.max = g.max_degree();
  stats.mean = static_cast<double>(g.num_arcs()) / static_cast<double>(n);
  stats.regular = stats.min == stats.max;
  return stats;
}

}  // namespace manywalks
