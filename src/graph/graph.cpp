#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace manywalks {

bool Graph::has_edge(Vertex u, Vertex v) const {
  MW_REQUIRE(u < num_vertices() && v < num_vertices(),
             "has_edge: vertex out of range");
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

Vertex Graph::edge_multiplicity(Vertex u, Vertex v) const {
  MW_REQUIRE(u < num_vertices() && v < num_vertices(),
             "edge_multiplicity: vertex out of range");
  const auto row = neighbors(u);
  const auto [lo, hi] = std::equal_range(row.begin(), row.end(), v);
  const auto arcs = static_cast<Vertex>(hi - lo);
  return arcs;  // for loops, one arc == one loop edge by our convention
}

Vertex Graph::min_degree() const {
  MW_REQUIRE(num_vertices() > 0, "min_degree of empty graph");
  return min_degree_;
}

Vertex Graph::max_degree() const {
  MW_REQUIRE(num_vertices() > 0, "max_degree of empty graph");
  return max_degree_;
}

bool Graph::is_regular() const {
  return num_vertices() == 0 || min_degree_ == max_degree_;
}

bool Graph::is_simple() const {
  if (num_loops_ != 0) return false;
  for (Vertex v = 0; v < num_vertices(); ++v) {
    const auto row = neighbors(v);
    for (std::size_t i = 1; i < row.size(); ++i) {
      if (row[i] == row[i - 1]) return false;
    }
  }
  return true;
}

Graph Graph::from_csr(std::vector<std::uint64_t> offsets,
                      std::vector<Vertex> targets, bool validate) {
  MW_REQUIRE(!offsets.empty(), "offsets must have at least one entry");
  MW_REQUIRE(offsets.front() == 0, "offsets must start at 0");
  MW_REQUIRE(offsets.back() == targets.size(),
             "offsets must end at targets.size()");
  Graph g;
  g.offsets_ = std::move(offsets);
  g.targets_ = std::move(targets);
  const Vertex n = g.num_vertices();
  std::uint64_t loops = 0;
  Vertex min_deg = n > 0 ? kInvalidVertex : 0;
  Vertex max_deg = 0;
  for (Vertex v = 0; v < n; ++v) {
    MW_REQUIRE(g.offsets_[v] <= g.offsets_[v + 1], "offsets not monotone");
    const auto row = g.neighbors(v);
    min_deg = std::min(min_deg, static_cast<Vertex>(row.size()));
    max_deg = std::max(max_deg, static_cast<Vertex>(row.size()));
    for (std::size_t i = 0; i < row.size(); ++i) {
      MW_REQUIRE(row[i] < n, "target out of range");
      if (validate && i > 0) {
        MW_REQUIRE(row[i - 1] <= row[i], "row " << v << " not sorted");
      }
      if (row[i] == v) ++loops;
    }
  }
  g.num_loops_ = loops;
  g.min_degree_ = min_deg;
  g.max_degree_ = max_deg;
  if (validate) {
    // Symmetry: multiplicity(u->v) == multiplicity(v->u) for all pairs.
    for (Vertex v = 0; v < n; ++v) {
      const auto row = g.neighbors(v);
      std::size_t i = 0;
      while (i < row.size()) {
        std::size_t j = i;
        while (j < row.size() && row[j] == row[i]) ++j;
        const Vertex u = row[i];
        if (u != v) {
          const auto other = g.neighbors(u);
          const auto [lo, hi] = std::equal_range(other.begin(), other.end(), v);
          MW_REQUIRE(static_cast<std::size_t>(hi - lo) == j - i,
                     "arc multiset not symmetric between " << v << " and " << u);
        }
        i = j;
      }
    }
  }
  return g;
}

GraphBuilder::GraphBuilder(Vertex num_vertices) : num_vertices_(num_vertices) {
  MW_REQUIRE(num_vertices != kInvalidVertex, "vertex count too large");
}

GraphBuilder& GraphBuilder::add_edge(Vertex u, Vertex v) {
  MW_REQUIRE(u < num_vertices_ && v < num_vertices_,
             "add_edge(" << u << "," << v << ") out of range (n=" << num_vertices_
                         << ")");
  arcs_.emplace_back(u, v);
  if (u != v) arcs_.emplace_back(v, u);
  return *this;
}

GraphBuilder& GraphBuilder::add_arc(Vertex u, Vertex v) {
  MW_REQUIRE(u < num_vertices_ && v < num_vertices_,
             "add_arc(" << u << "," << v << ") out of range");
  arcs_.emplace_back(u, v);
  return *this;
}

Graph GraphBuilder::build(const BuildOptions& options) {
  const Vertex n = num_vertices_;

  // Sort arcs by (source, target); this both builds CSR rows and makes
  // duplicate handling a linear scan.
  std::sort(arcs_.begin(), arcs_.end());

  if (options.duplicates == DuplicatePolicy::kDedupe) {
    arcs_.erase(std::unique(arcs_.begin(), arcs_.end()), arcs_.end());
  }

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Vertex> targets;
  targets.reserve(arcs_.size());

  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    const auto [u, v] = arcs_[i];
    if (u == v) {
      MW_REQUIRE(options.loops == LoopPolicy::kKeep,
                 "self loop at vertex " << u << " rejected by policy");
    }
    if (options.duplicates == DuplicatePolicy::kReject && i > 0) {
      MW_REQUIRE(arcs_[i] != arcs_[i - 1],
                 "parallel edge (" << u << "," << v << ") rejected by policy");
    }
    ++offsets[static_cast<std::size_t>(u) + 1];
    targets.push_back(v);
  }
  for (Vertex v = 0; v < n; ++v) offsets[static_cast<std::size_t>(v) + 1] += offsets[v];

  arcs_.clear();
  arcs_.shrink_to_fit();

  // from_csr validates symmetry, which catches asymmetric add_arc usage.
  return Graph::from_csr(std::move(offsets), std::move(targets),
                         /*validate=*/true);
}

std::string describe(const Graph& g) {
  std::ostringstream os;
  os << "Graph(n=" << g.num_vertices() << ", m=" << g.num_edges();
  if (g.num_vertices() > 0) {
    os << ", deg∈[" << g.min_degree() << "," << g.max_degree() << "]";
    if (g.num_loops() > 0) os << ", loops=" << g.num_loops();
  }
  os << ")";
  return os.str();
}

}  // namespace manywalks
