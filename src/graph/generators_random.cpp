// Random graph families: Erdős–Rényi, random regular (Steger–Wormald
// pairing), random geometric.
#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/check.hpp"

namespace manywalks {

namespace {

/// Packs an undirected vertex pair (u < v) into a 64-bit key.
std::uint64_t edge_key(Vertex u, Vertex v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph make_erdos_renyi(Vertex n, double p, Rng& rng) {
  MW_REQUIRE(n >= 2, "G(n,p) needs n >= 2");
  MW_REQUIRE(p >= 0.0 && p <= 1.0, "G(n,p) needs p in [0,1]");
  GraphBuilder b(n);
  if (p == 0.0) return b.build();
  if (p == 1.0) return make_complete(n);

  // Geometric skipping over the lexicographic enumeration of pairs (u < v):
  // instead of flipping a coin per pair, jump ahead by Geometric(p) pairs.
  const double log1mp = std::log1p(-p);
  const std::uint64_t total_pairs =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  // Current linear pair index in [0, total_pairs).
  std::uint64_t pos = 0;
  bool first = true;
  for (;;) {
    // Draw the gap to the next edge: floor(log(U)/log(1-p)) (+1 after the
    // first edge so we move strictly forward).
    double u01 = rng.uniform01();
    while (u01 <= 0.0) u01 = rng.uniform01();
    const double skip = std::floor(std::log(u01) / log1mp);
    MW_REQUIRE(skip >= 0.0, "geometric skip underflow");
    const auto gap = skip >= 1e18 ? static_cast<std::uint64_t>(1) << 62
                                  : static_cast<std::uint64_t>(skip);
    pos += gap + (first ? 0 : 1);
    first = false;
    if (pos >= total_pairs) break;

    // Invert the linear index into (u, v) with u < v. Row u starts at
    // offset(u) = u*n - u*(u+1)/2. Solve by a descending scan amortized by
    // the monotonicity of pos across iterations — but a direct closed form
    // is simpler and O(1) via the quadratic formula.
    const double nn = static_cast<double>(n);
    const double discriminant =
        (2.0 * nn - 1.0) * (2.0 * nn - 1.0) - 8.0 * static_cast<double>(pos);
    auto u = static_cast<std::uint64_t>(
        std::floor((2.0 * nn - 1.0 - std::sqrt(discriminant)) / 2.0));
    // Guard against floating point rounding at row boundaries.
    auto row_start = [n](std::uint64_t row) {
      return row * n - row * (row + 1) / 2;
    };
    while (u > 0 && row_start(u) > pos) --u;
    while (row_start(u + 1) <= pos) ++u;
    const std::uint64_t v = u + 1 + (pos - row_start(u));
    MW_ASSERT(v < n);
    b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return b.build();
}

Graph make_erdos_renyi_connected(Vertex n, double p, Rng& rng,
                                 unsigned max_attempts) {
  MW_REQUIRE(max_attempts >= 1, "need at least one attempt");
  Graph last;
  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    last = make_erdos_renyi(n, p, rng);
    if (is_connected(last)) return last;
  }
  // Diagnose from the last draw: how fragmented it actually was tells the
  // caller whether p is hopeless or merely unlucky.
  const ComponentDecomposition components = connected_components(last);
  MW_REQUIRE(false, "G(" << n << "," << p << ") not connected after "
                         << max_attempts << " attempts (last draw: "
                         << components.num_components
                         << " components, largest "
                         << components.sizes[components.largest] << " of " << n
                         << " vertices); raise p above ln(n)/n");
  return Graph{};  // unreachable
}

Graph make_random_regular(Vertex n, Vertex degree, Rng& rng,
                          unsigned max_attempts) {
  MW_REQUIRE(degree >= 1 && degree < n,
             "random regular graph needs 1 <= d < n");
  MW_REQUIRE((static_cast<std::uint64_t>(n) * degree) % 2 == 0,
             "n*d must be even");
  const std::uint64_t num_stubs = static_cast<std::uint64_t>(n) * degree;

  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    // Steger–Wormald pairing: repeatedly match two random free stubs,
    // rejecting loops and parallel edges. For d = O(n^(1/3)) this succeeds
    // with probability 1 - o(1) and is asymptotically uniform.
    std::vector<Vertex> stubs;
    stubs.reserve(num_stubs);
    for (Vertex v = 0; v < n; ++v) {
      for (Vertex i = 0; i < degree; ++i) stubs.push_back(v);
    }
    std::unordered_set<std::uint64_t> edges;
    edges.reserve(num_stubs);
    GraphBuilder b(n);

    std::uint64_t consecutive_failures = 0;
    bool stuck = false;
    while (!stubs.empty()) {
      const auto size32 = static_cast<std::uint32_t>(stubs.size());
      const std::uint32_t i = rng.uniform_below(size32);
      std::uint32_t j = rng.uniform_below(size32);
      while (j == i) j = rng.uniform_below(size32);
      const Vertex u = stubs[i];
      const Vertex v = stubs[j];
      if (u == v || edges.contains(edge_key(u, v))) {
        // As the pool shrinks, valid pairs may vanish; bail out and restart
        // rather than looping forever.
        if (++consecutive_failures > 64 + 16 * stubs.size()) {
          stuck = true;
          break;
        }
        continue;
      }
      consecutive_failures = 0;
      edges.insert(edge_key(u, v));
      b.add_edge(u, v);
      // Remove both stubs by swap-with-back, larger index first so the
      // smaller index is still valid after the first pop.
      const std::uint32_t hi = std::max(i, j);
      const std::uint32_t lo = std::min(i, j);
      stubs[hi] = stubs.back();
      stubs.pop_back();
      stubs[lo] = stubs.back();
      stubs.pop_back();
    }
    if (!stuck) return b.build();
  }
  MW_REQUIRE(false, "random regular pairing failed after "
                        << max_attempts << " attempts (n=" << n
                        << ", d=" << degree << ")");
  return Graph{};  // unreachable
}

double random_geometric_connectivity_radius(Vertex n, double c) {
  MW_REQUIRE(n >= 2, "need n >= 2");
  return std::sqrt(c * std::log(static_cast<double>(n)) /
                   static_cast<double>(n));
}

Graph make_random_geometric(Vertex n, double radius, Rng& rng) {
  MW_REQUIRE(n >= 2, "RGG needs n >= 2");
  MW_REQUIRE(radius > 0.0 && radius <= std::sqrt(2.0),
             "RGG radius must be in (0, sqrt(2)]");
  std::vector<double> xs(n), ys(n);
  for (Vertex v = 0; v < n; ++v) {
    xs[v] = rng.uniform01();
    ys[v] = rng.uniform01();
  }

  // Bucket the unit square into cells of side >= radius; only points in the
  // 3x3 cell neighborhood can be within distance radius.
  const auto cells =
      static_cast<std::uint32_t>(std::max(1.0, std::floor(1.0 / radius)));
  std::vector<std::vector<Vertex>> bucket(
      static_cast<std::size_t>(cells) * cells);
  const auto cell_of = [&](double coord) {
    auto c = static_cast<std::uint32_t>(coord * cells);
    return std::min(c, cells - 1);
  };
  for (Vertex v = 0; v < n; ++v) {
    bucket[static_cast<std::size_t>(cell_of(xs[v])) * cells + cell_of(ys[v])]
        .push_back(v);
  }

  GraphBuilder b(n);
  const double r2 = radius * radius;
  for (Vertex v = 0; v < n; ++v) {
    const std::uint32_t cx = cell_of(xs[v]);
    const std::uint32_t cy = cell_of(ys[v]);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
        const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (Vertex u : bucket[static_cast<std::size_t>(nx) * cells +
                               static_cast<std::size_t>(ny)]) {
          if (u <= v) continue;  // add each pair once
          const double ddx = xs[u] - xs[v];
          const double ddy = ys[u] - ys[v];
          if (ddx * ddx + ddy * ddy <= r2) b.add_edge(v, u);
        }
      }
    }
  }
  return b.build();
}

}  // namespace manywalks
