// Plain-text edge-list serialization.
//
// Format:
//   # manywalks-graph 1
//   <num_vertices>
//   <u> <v>      (one line per undirected edge; loops as "v v";
//                 parallel edges repeated)
#pragma once

#include <iosfwd>

#include "graph/graph.hpp"

namespace manywalks {

/// Writes the graph in edge-list format.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses a graph written by write_edge_list. Throws std::invalid_argument
/// on malformed input.
Graph read_edge_list(std::istream& is);

}  // namespace manywalks
