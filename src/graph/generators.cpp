// Deterministic graph families (cycle, grids, hypercube, trees, barbells,
// Margulis expander).
#include "graph/generators.hpp"

#include <cstdint>

#include "util/check.hpp"

namespace manywalks {

Graph make_cycle(Vertex n) {
  MW_REQUIRE(n >= 3, "cycle needs n >= 3, got " << n);
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

Graph make_path(Vertex n) {
  MW_REQUIRE(n >= 2, "path needs n >= 2, got " << n);
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph make_complete(Vertex n, bool with_self_loops) {
  MW_REQUIRE(n >= 2, "complete graph needs n >= 2, got " << n);
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    if (with_self_loops) b.add_edge(u, u);
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  GraphBuilder::BuildOptions options;
  options.loops = with_self_loops ? GraphBuilder::LoopPolicy::kKeep
                                  : GraphBuilder::LoopPolicy::kReject;
  return b.build(options);
}

Graph make_complete_bipartite(Vertex a, Vertex b) {
  MW_REQUIRE(a >= 1 && b >= 1, "complete bipartite needs both sides nonempty");
  GraphBuilder builder(a + b);
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = 0; v < b; ++v) builder.add_edge(u, a + v);
  }
  return builder.build();
}

Graph make_star(Vertex n) {
  MW_REQUIRE(n >= 2, "star needs n >= 2, got " << n);
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph make_grid(const std::vector<Vertex>& dims, GridTopology topology) {
  MW_REQUIRE(!dims.empty(), "grid needs at least one dimension");
  std::uint64_t n64 = 1;
  for (Vertex len : dims) {
    MW_REQUIRE(len >= 1, "grid dimensions must be >= 1");
    n64 *= len;
    MW_REQUIRE(n64 < kInvalidVertex, "grid too large for 32-bit vertices");
  }
  const auto n = static_cast<Vertex>(n64);
  MW_REQUIRE(n >= 2, "grid needs at least 2 vertices");

  // Row-major strides: stride of the last dimension is 1.
  std::vector<std::uint64_t> stride(dims.size());
  std::uint64_t s = 1;
  for (std::size_t d = dims.size(); d-- > 0;) {
    stride[d] = s;
    s *= dims[d];
  }

  GraphBuilder b(n);
  std::vector<Vertex> coord(dims.size(), 0);
  for (Vertex v = 0; v < n; ++v) {
    for (std::size_t d = 0; d < dims.size(); ++d) {
      const Vertex len = dims[d];
      if (coord[d] + 1 < len) {
        b.add_edge(v, static_cast<Vertex>(v + stride[d]));
      } else if (topology == GridTopology::kTorus && len >= 3) {
        // wrap edge from the last coordinate back to 0
        b.add_edge(v, static_cast<Vertex>(v - stride[d] * (len - 1)));
      }
    }
    // Advance the mixed-radix coordinate counter.
    for (std::size_t d = dims.size(); d-- > 0;) {
      if (++coord[d] < dims[d]) break;
      coord[d] = 0;
    }
  }
  return b.build();
}

Graph make_grid_2d(Vertex side, GridTopology topology) {
  return make_grid({side, side}, topology);
}

Graph make_torus(Vertex side, unsigned dimensions) {
  MW_REQUIRE(dimensions >= 1, "torus needs >= 1 dimension");
  return make_grid(std::vector<Vertex>(dimensions, side), GridTopology::kTorus);
}

Graph make_hypercube(unsigned dimension) {
  MW_REQUIRE(dimension >= 1 && dimension < 31, "hypercube dimension in [1,30]");
  const Vertex n = Vertex{1} << dimension;
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) {
    for (unsigned bit = 0; bit < dimension; ++bit) {
      const Vertex u = v ^ (Vertex{1} << bit);
      if (u > v) b.add_edge(v, u);
    }
  }
  return b.build();
}

Graph make_balanced_tree(unsigned arity, unsigned height) {
  MW_REQUIRE(arity >= 1, "tree arity must be >= 1");
  std::uint64_t n64 = 1;
  std::uint64_t level = 1;
  for (unsigned h = 0; h < height; ++h) {
    level *= arity;
    n64 += level;
    MW_REQUIRE(n64 < kInvalidVertex, "tree too large for 32-bit vertices");
  }
  const auto n = static_cast<Vertex>(n64);
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) {
    b.add_edge(v, (v - 1) / arity);
  }
  return b.build();
}

Vertex barbell_center(Vertex n) {
  MW_REQUIRE(n >= 7 && n % 2 == 1, "barbell needs odd n >= 7, got " << n);
  return (n - 1) / 2;
}

Graph make_barbell(Vertex n) {
  MW_REQUIRE(n >= 7 && n % 2 == 1, "barbell needs odd n >= 7, got " << n);
  const Vertex bell = (n - 1) / 2;  // size of each clique
  const Vertex center = barbell_center(n);
  GraphBuilder b(n);
  // Left bell: vertices 0..bell-1, port = bell-1.
  for (Vertex u = 0; u < bell; ++u) {
    for (Vertex v = u + 1; v < bell; ++v) b.add_edge(u, v);
  }
  // Right bell: vertices center+1..n-1, port = center+1.
  for (Vertex u = center + 1; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  // Path of length 2 through the center.
  b.add_edge(bell - 1, center);
  b.add_edge(center, center + 1);
  return b.build();
}

Graph make_generalized_barbell(Vertex clique_size, Vertex path_interior) {
  MW_REQUIRE(clique_size >= 2, "generalized barbell needs cliques of size >= 2");
  const std::uint64_t n64 =
      2ULL * clique_size + static_cast<std::uint64_t>(path_interior);
  MW_REQUIRE(n64 < kInvalidVertex, "generalized barbell too large");
  const auto n = static_cast<Vertex>(n64);
  GraphBuilder b(n);
  // Left clique 0..c-1 (port c-1), interior path c..c+p-1, right clique
  // c+p..n-1 (port c+p).
  const Vertex c = clique_size;
  for (Vertex u = 0; u < c; ++u) {
    for (Vertex v = u + 1; v < c; ++v) b.add_edge(u, v);
  }
  for (Vertex u = c + path_interior; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  for (Vertex v = c - 1; v < c + path_interior; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph make_lollipop(Vertex n) {
  MW_REQUIRE(n >= 4, "lollipop needs n >= 4, got " << n);
  const Vertex clique = std::max<Vertex>(3, (2 * n) / 3);
  GraphBuilder b(n);
  for (Vertex u = 0; u < clique; ++u) {
    for (Vertex v = u + 1; v < clique; ++v) b.add_edge(u, v);
  }
  // Path attached to the clique at vertex clique-1.
  for (Vertex v = clique - 1; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph make_margulis_expander(Vertex side) {
  MW_REQUIRE(side >= 2, "Margulis expander needs side >= 2");
  const std::uint64_t n64 = static_cast<std::uint64_t>(side) * side;
  MW_REQUIRE(n64 < kInvalidVertex, "Margulis expander too large");
  const auto n = static_cast<Vertex>(n64);
  const std::uint64_t m = side;

  GraphBuilder b(n);
  const auto idx = [m](std::uint64_t x, std::uint64_t y) {
    return static_cast<Vertex>((x % m) * m + (y % m));
  };
  for (std::uint64_t x = 0; x < m; ++x) {
    for (std::uint64_t y = 0; y < m; ++y) {
      const Vertex v = idx(x, y);
      // The four Gabber–Galil maps and their inverses, one arc per port.
      // Additions stay in uint64 range; subtractions go through +k*m.
      b.add_arc(v, idx(x + 2 * y, y));
      b.add_arc(v, idx(x + 2 * (m - y), y));          // x - 2y
      b.add_arc(v, idx(x + 2 * y + 1, y));
      b.add_arc(v, idx(x + 2 * (m - y) + (m - 1), y));  // x - 2y - 1
      b.add_arc(v, idx(x, y + 2 * x));
      b.add_arc(v, idx(x, y + 2 * (m - x)));          // y - 2x
      b.add_arc(v, idx(x, y + 2 * x + 1));
      b.add_arc(v, idx(x, y + 2 * (m - x) + (m - 1)));  // y - 2x - 1
    }
  }
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kKeep;
  options.loops = GraphBuilder::LoopPolicy::kKeep;
  return b.build(options);
}

}  // namespace manywalks
