// Immutable undirected graph in compressed sparse row (CSR) form.
//
// Conventions (chosen to match random-walk semantics in the paper):
//   * The graph stores "arcs": directed adjacency entries forming a
//     symmetric multiset. A non-loop undirected edge contributes two arcs
//     (u->v and v->u); a self-loop edge contributes ONE arc (v->v).
//   * degree(v) is the number of arcs out of v, i.e. the number of equally
//     likely moves of a simple random walk at v. A self loop therefore adds
//     one to the degree and gives the walk probability 1/deg(v) of staying.
//   * Parallel edges are allowed (each contributes its own arcs) so exact
//     d-regular multigraph constructions such as the Margulis–Gabber–Galil
//     expander keep degree exactly d everywhere.
//   * The stationary distribution of the simple random walk is
//     pi(v) = degree(v) / num_arcs().
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace manywalks {

using Vertex = std::uint32_t;

/// Sentinel for "no vertex" (unreachable targets, unset parents, ...).
inline constexpr Vertex kInvalidVertex = static_cast<Vertex>(-1);

class Graph {
 public:
  /// Empty graph (0 vertices).
  Graph() = default;

  Vertex num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<Vertex>(offsets_.size() - 1);
  }

  /// Total adjacency entries (2·#non-loop-edges + #loop-edges).
  std::uint64_t num_arcs() const noexcept { return targets_.size(); }

  /// Number of undirected edges, counting each self loop as one edge and
  /// each parallel edge separately.
  std::uint64_t num_edges() const noexcept {
    return (num_arcs() - num_loops_) / 2 + num_loops_;
  }

  /// Number of self-loop edges.
  std::uint64_t num_loops() const noexcept { return num_loops_; }

  Vertex degree(Vertex v) const {
    return static_cast<Vertex>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v (sorted ascending; parallel edges appear repeatedly).
  std::span<const Vertex> neighbors(Vertex v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// i-th neighbor of v, 0 <= i < degree(v). The random-walk hot path.
  Vertex neighbor(Vertex v, Vertex i) const { return targets_[offsets_[v] + i]; }

  /// True if at least one (u,v) edge exists (binary search, O(log deg)).
  bool has_edge(Vertex u, Vertex v) const;

  /// Multiplicity of edge (u,v): number of parallel (u,v) edges; for u==v,
  /// the number of self-loop edges at u.
  Vertex edge_multiplicity(Vertex u, Vertex v) const;

  /// Extremal degrees, precomputed at construction (O(1) to query, so
  /// per-trial walkability checks are free).
  Vertex min_degree() const;
  Vertex max_degree() const;
  /// True when every vertex has the same degree.
  bool is_regular() const;
  /// True when the graph has no self loops and no parallel edges.
  bool is_simple() const;

  /// Raw CSR access for performance-critical code and serialization.
  std::span<const std::uint64_t> offsets() const noexcept { return offsets_; }
  std::span<const Vertex> targets() const noexcept { return targets_; }

  /// Constructs directly from CSR arrays. `validate` checks structural
  /// invariants (sorted rows, symmetric arc multiset) in O(arcs log deg).
  static Graph from_csr(std::vector<std::uint64_t> offsets,
                        std::vector<Vertex> targets, bool validate = true);

 private:
  friend class GraphBuilder;

  std::vector<std::uint64_t> offsets_;  // size num_vertices()+1
  std::vector<Vertex> targets_;         // size num_arcs(), each row sorted
  std::uint64_t num_loops_ = 0;
  Vertex min_degree_ = 0;
  Vertex max_degree_ = 0;
};

/// Accumulates edges/arcs, then produces a validated CSR graph.
class GraphBuilder {
 public:
  enum class DuplicatePolicy {
    kReject,  ///< parallel edges are an error (default)
    kDedupe,  ///< collapse parallel edges into one
    kKeep,    ///< keep parallel edges (multigraph)
  };
  enum class LoopPolicy {
    kReject,  ///< self loops are an error (default)
    kKeep,    ///< keep self loops
  };

  struct BuildOptions {
    DuplicatePolicy duplicates = DuplicatePolicy::kReject;
    LoopPolicy loops = LoopPolicy::kReject;
  };

  explicit GraphBuilder(Vertex num_vertices);

  /// Adds an undirected edge. u == v adds a self loop (one arc).
  GraphBuilder& add_edge(Vertex u, Vertex v);

  /// Adds a single directed adjacency entry. The final arc multiset must be
  /// symmetric or build() throws. Used by constructions (e.g. Margulis
  /// expander) that enumerate walk "ports" per vertex directly.
  GraphBuilder& add_arc(Vertex u, Vertex v);

  Vertex num_vertices() const noexcept { return num_vertices_; }
  std::uint64_t num_arcs_added() const noexcept { return arcs_.size(); }

  /// Builds the CSR graph; consumes the accumulated edges.
  /// (Two overloads rather than a defaulted argument: GCC rejects `= {}`
  /// for a nested aggregate with member initializers inside the enclosing
  /// class body.)
  Graph build() { return build(BuildOptions{}); }
  Graph build(const BuildOptions& options);

 private:
  Vertex num_vertices_;
  std::vector<std::pair<Vertex, Vertex>> arcs_;
};

/// Human-readable one-line description, e.g. "Graph(n=100, m=200, d∈[2,4])".
std::string describe(const Graph& g);

}  // namespace manywalks
