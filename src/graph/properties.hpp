// Structural graph algorithms: BFS, connectivity, components, diameter,
// bipartiteness, degree statistics.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace manywalks {

/// Sentinel distance for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// BFS hop distances from `source` (kUnreachable where disconnected).
std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source);

/// True iff the graph is connected (vacuously true for n <= 1).
bool is_connected(const Graph& g);

struct ComponentDecomposition {
  std::vector<Vertex> component_of;  ///< component id per vertex (0-based)
  Vertex num_components = 0;
  /// Sizes indexed by component id.
  std::vector<Vertex> sizes;
  /// Id of a largest component.
  Vertex largest = 0;
};

ComponentDecomposition connected_components(const Graph& g);

/// Result of extracting an induced subgraph.
struct InducedSubgraph {
  Graph graph;
  /// old vertex id -> new id (kInvalidVertex if dropped).
  std::vector<Vertex> old_to_new;
  /// new vertex id -> old id.
  std::vector<Vertex> new_to_old;
};

/// Induced subgraph on the largest connected component (keeps loops and
/// parallel edges).
InducedSubgraph extract_largest_component(const Graph& g);

/// Max BFS distance from v to any vertex; kUnreachable if disconnected.
std::uint32_t eccentricity(const Graph& g, Vertex v);

/// Exact diameter via all-sources BFS, O(n·m) — intended for n ≲ 10^4.
/// Returns kUnreachable for disconnected graphs.
std::uint32_t diameter_exact(const Graph& g);

/// Lower bound on the diameter via `sweeps` double-sweep BFS probes.
std::uint32_t diameter_lower_bound(const Graph& g, Rng& rng,
                                   unsigned sweeps = 4);

/// True iff the graph is bipartite (no odd cycle; self loops make a graph
/// non-bipartite).
bool is_bipartite(const Graph& g);

struct DegreeStats {
  Vertex min = 0;
  Vertex max = 0;
  double mean = 0.0;
  bool regular = false;
};

DegreeStats degree_stats(const Graph& g);

}  // namespace manywalks
