#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "util/check.hpp"
#include "util/parse.hpp"

namespace manywalks {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# manywalks-graph 1\n" << g.num_vertices() << "\n";
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (Vertex u : g.neighbors(v)) {
      if (v <= u) os << v << ' ' << u << '\n';  // each edge once; loops once
    }
  }
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  MW_REQUIRE(std::getline(is, line), "empty graph stream");
  MW_REQUIRE(line.rfind("# manywalks-graph", 0) == 0,
             "missing manywalks-graph header, got '" << line << "'");
  MW_REQUIRE(std::getline(is, line), "missing vertex count");
  std::uint64_t n = 0;
  {
    const char* p = line.data();
    const char* const end = p + line.size();
    p = skip_field_space(p, end);
    MW_REQUIRE(parse_u64_field(p, end, n), "bad vertex count '" << line << "'");
    p = skip_field_space(p, end);
    MW_REQUIRE(p == end, "trailing garbage '"
                             << first_field_token(p, end)
                             << "' after vertex count on line 2: '" << line
                             << "'");
    MW_REQUIRE(n < kInvalidVertex, "vertex count too large");
  }
  GraphBuilder b(static_cast<Vertex>(n));
  std::uint64_t line_no = 2;
  while (std::getline(is, line)) {
    ++line_no;
    const char* p = line.data();
    const char* const end = p + line.size();
    p = skip_field_space(p, end);
    if (p == end || *p == '#') continue;
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    const bool edge_ok = parse_u64_field(p, end, u) &&
                         (p = skip_field_space(p, end), true) &&
                         parse_u64_field(p, end, v);
    MW_REQUIRE(edge_ok, "bad edge on line " << line_no << ": '" << line << "'");
    p = skip_field_space(p, end);
    MW_REQUIRE(p == end, "trailing garbage '"
                             << first_field_token(p, end) << "' on line "
                             << line_no << ": '" << line << "'");
    MW_REQUIRE(u < n && v < n, "edge endpoint out of range on line " << line_no);
    b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kKeep;
  options.loops = GraphBuilder::LoopPolicy::kKeep;
  return b.build(options);
}

}  // namespace manywalks
