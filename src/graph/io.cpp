#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace manywalks {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# manywalks-graph 1\n" << g.num_vertices() << "\n";
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (Vertex u : g.neighbors(v)) {
      if (v <= u) os << v << ' ' << u << '\n';  // each edge once; loops once
    }
  }
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  MW_REQUIRE(std::getline(is, line), "empty graph stream");
  MW_REQUIRE(line.rfind("# manywalks-graph", 0) == 0,
             "missing manywalks-graph header, got '" << line << "'");
  MW_REQUIRE(std::getline(is, line), "missing vertex count");
  std::uint64_t n = 0;
  {
    std::istringstream ls(line);
    MW_REQUIRE(static_cast<bool>(ls >> n), "bad vertex count '" << line << "'");
    std::string trailing;
    MW_REQUIRE(!(ls >> trailing), "trailing garbage '"
                                      << trailing
                                      << "' after vertex count on line 2: '"
                                      << line << "'");
    MW_REQUIRE(n < kInvalidVertex, "vertex count too large");
  }
  GraphBuilder b(static_cast<Vertex>(n));
  std::uint64_t line_no = 2;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    MW_REQUIRE(static_cast<bool>(ls >> u >> v),
               "bad edge on line " << line_no << ": '" << line << "'");
    std::string trailing;
    MW_REQUIRE(!(ls >> trailing), "trailing garbage '"
                                      << trailing << "' on line " << line_no
                                      << ": '" << line << "'");
    MW_REQUIRE(u < n && v < n, "edge endpoint out of range on line " << line_no);
    b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kKeep;
  options.loops = GraphBuilder::LoopPolicy::kKeep;
  return b.build(options);
}

}  // namespace manywalks
