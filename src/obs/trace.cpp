#include "obs/trace.hpp"

#include <cstring>
#include <fstream>

#include "util/json.hpp"

namespace manywalks::obs {

namespace {

/// High-frequency categories — the only ones the buffer cap may drop.
/// Structural spans (experiment/trial/batch, cats "cli"/"mc") are emitted
/// at most a few thousand times per run AND close last (RAII), so dropping
/// them at the cap would hollow out exactly the outer hierarchy a trace
/// exists to show; block-category spans and extent-cache instants are the
/// events that actually balloon on a long OOC run.
bool droppable_at_cap(const char* cat) {
  return std::strcmp(cat, "block") == 0 || std::strcmp(cat, "cache") == 0;
}

}  // namespace

TraceWriter::TraceWriter(std::string path, std::size_t max_events)
    : path_(std::move(path)),
      max_events_(max_events),
      epoch_(std::chrono::steady_clock::now()) {
  events_.reserve(max_events_ < 4096 ? max_events_ : 4096);
}

std::uint64_t TraceWriter::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void TraceWriter::push(Event event) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_ && droppable_at_cap(event.cat)) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceWriter::complete(const char* name, const char* cat,
                           std::uint32_t tid, std::uint64_t ts_us,
                           std::uint64_t dur_us, std::string args_json) {
  push(Event{name, cat, 'X', tid, ts_us, dur_us, 0, std::move(args_json)});
}

void TraceWriter::instant(const char* name, const char* cat,
                          std::uint32_t tid, std::string args_json) {
  push(Event{name, cat, 'i', tid, now_us(), 0, 0, std::move(args_json)});
}

void TraceWriter::counter(const char* name, std::uint64_t value) {
  push(Event{name, "counter", 'C', 0, now_us(), 0, value, {}});
}

std::size_t TraceWriter::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceWriter::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceWriter::render() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& event : events_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"";
    out += json_escaped(event.name);
    out += "\",\"cat\":\"";
    out += json_escaped(event.cat);
    out += "\",\"ph\":\"";
    out += event.ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"ts\":";
    out += std::to_string(event.ts);
    if (event.ph == 'X') {
      out += ",\"dur\":";
      out += std::to_string(event.dur);
    }
    if (event.ph == 'i') {
      out += ",\"s\":\"t\"";
    }
    if (event.ph == 'C') {
      out += ",\"args\":{\"value\":";
      out += std::to_string(event.cval);
      out += '}';
    } else if (!event.args.empty()) {
      out += ",\"args\":{";
      out += event.args;
      out += '}';
    }
    out += '}';
  }
  if (!first) out += '\n';
  out += "],\"displayTimeUnit\":\"ms\"";
  if (dropped_ > 0) {
    out += ",\"metadata\":{\"dropped_events\":";
    out += std::to_string(dropped_);
    out += '}';
  }
  out += "}\n";
  return out;
}

bool TraceWriter::write() const {
  std::ofstream os(path_, std::ios::binary);
  if (!os.good()) return false;
  os << render();
  return os.good();
}

}  // namespace manywalks::obs
