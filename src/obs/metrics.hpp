// MetricsRegistry: typed counters/gauges/histograms for the observability
// layer (ISSUE 10). Hot paths never touch atomics — updates are plain
// uint64_t arithmetic performed only at deterministic single-writer points:
//
//   * the Monte-Carlo reduction loop (index-ordered over trial outcomes,
//     always on the coordinating thread),
//   * shard worker 0 of a sharded cover run, which per contract v3 IS the
//     calling thread (parallel_for_static runs chunk 0 on the caller and
//     run_shard_team mirrors that),
//   * the block engine's horizon loop (deliberately serial under v4),
//   * per-worker WorkerCounters scratch merged index-ordered after the
//     thread team joins.
//
// That single-writer discipline is what makes the layer observably inert:
// no locks or fences appear in kernel loops, so instrumentation cannot
// perturb a contract v2-v4 schedule. The concurrent path is WorkerCounters:
// each worker owns one, fills it with plain increments, and the coordinator
// merges them in worker-index order after the join — the join is the
// synchronization, not the registry.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace manywalks::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Well-known metrics get fixed slots so hot paths index an array instead
/// of hashing names. `metric_name()` is the registered-by-name surface the
/// snapshot/manifest renderers expose.
enum class Metric : std::size_t {
  kSteps = 0,         // lane-steps advanced (rounds x k)
  kRounds,            // cover/walk rounds completed
  kMerges,            // sharded rounds that ran the index-ordered merge
  kMergeStalls,       // sharded rounds that skipped the merge (bound < target)
  kBucketPasses,      // block engine: passes over the bucket list
  kBlockVisits,       // block engine: per-block visits
  kBucketMigrations,  // walkers re-bucketed to another block after a visit
  kReplayedRounds,    // exact-cover replay rounds after a horizon snapshot
  kCacheLoads,        // extent-cache misses that mapped an extent
  kCacheHits,
  kCacheEvictions,
  kCacheBytesLoaded,
  kTrialsStarted,     // Monte-Carlo trials dispatched
  kTrialsDone,        // trial outcomes reduced
  kTrialsCensored,    // outcomes that hit the step cap
  kPoolQueuePeak,     // gauge: deepest thread-pool queue sampled
  kTrialRounds,       // histogram: rounds per finished trial (log2 buckets)
  kCount
};

inline constexpr std::size_t kMetricCount =
    static_cast<std::size_t>(Metric::kCount);

const char* metric_name(Metric metric);
MetricKind metric_kind(Metric metric);

/// Log2 bucket index for histogram observations: value v lands in bucket
/// floor(log2(v)) + 1, zero in bucket 0. 64 buckets cover all of uint64.
std::size_t histogram_bucket(std::uint64_t value);

/// Process CPU seconds (user + system, summed over all threads) for the
/// run manifest. Lives in src/obs so the manywalks-raw-clock lint rule
/// keeps every clock read fenced inside the observability layer.
double process_cpu_seconds();

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;                 // counter total / gauge level
  std::vector<std::uint64_t> buckets;      // histograms only (log2 buckets)
};

class MetricsRegistry;

/// Per-worker scratch counters. A worker fills its own WorkerCounters with
/// plain increments while the team runs; after the join the coordinator
/// calls MetricsRegistry::merge() on each, in worker-index order.
class WorkerCounters {
 public:
  void add(Metric metric, std::uint64_t delta) {
    counts_[static_cast<std::size_t>(metric)] += delta;
  }
  /// Gauge sample: keeps the high-water mark (merged with max, not sum).
  void note_max(Metric metric, std::uint64_t level) {
    auto& slot = counts_[static_cast<std::size_t>(metric)];
    if (level > slot) slot = level;
  }
  std::uint64_t count(Metric metric) const {
    return counts_[static_cast<std::size_t>(metric)];
  }
  void reset() { counts_ = {}; }

 private:
  friend class MetricsRegistry;
  std::array<std::uint64_t, kMetricCount> counts_{};
};

/// The calling thread's scratch. EVERY engine-side counter update goes
/// here — never to the registry — so instrumented engine runs on thread-
/// pool workers (kTrials Monte-Carlo) are race-free by construction. The
/// scratch registers itself under a mutex on first touch (cold path); hot
/// increments stay plain uint64_t adds.
WorkerCounters& thread_counters();

/// Merges every thread's scratch into `registry` (in scratch-registration
/// order — counters are commutative sums and gauges max-merge, so order
/// cannot change the result) and zeroes them. The caller must be the
/// coordinating thread at a quiesced point: no other thread may be running
/// instrumented code (e.g. right after a parallel_for rendezvous, after a
/// shard-team join, or after the pool idles). Counters from threads that
/// exited earlier (a destroyed pool) are preserved and drained too.
void drain_thread_counters(MetricsRegistry& registry);

class MetricsRegistry {
 public:
  MetricsRegistry();

  // --- hot-path updates (single deterministic writer, see header note) ---
  void add(Metric metric, std::uint64_t delta) {
    values_[static_cast<std::size_t>(metric)] += delta;
  }
  /// Gauges record the high-water mark of a sampled level.
  void gauge_max(Metric metric, std::uint64_t level) {
    auto& slot = values_[static_cast<std::size_t>(metric)];
    if (level > slot) slot = level;
  }
  void observe(Metric metric, std::uint64_t value);

  /// Index-ordered merge of one worker's batched counters.
  void merge(const WorkerCounters& worker);

  // --- dynamic registration (bench/tests extension metrics) ---
  std::size_t register_metric(std::string name, MetricKind kind);
  void add_id(std::size_t id, std::uint64_t delta);
  std::uint64_t value_id(std::size_t id) const;

  std::uint64_t value(Metric metric) const {
    return values_[static_cast<std::size_t>(metric)];
  }

  /// Fixed metrics in enum order, then dynamic metrics in registration
  /// order — a deterministic snapshot for the run manifest.
  std::vector<MetricSnapshot> snapshot() const;

  void reset();

 private:
  struct Dynamic {
    std::string name;
    MetricKind kind;
    std::uint64_t value = 0;
    std::vector<std::uint64_t> buckets;
  };
  std::array<std::uint64_t, kMetricCount> values_{};
  std::vector<std::vector<std::uint64_t>> histograms_;  // per fixed histogram
  std::vector<Dynamic> dynamic_;
};

}  // namespace manywalks::obs
