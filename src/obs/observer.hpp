// RunObserver: the process-wide observability switchboard (ISSUE 10).
//
// A RunObserver bundles the three optional sinks — MetricsRegistry,
// TraceWriter, ProgressReporter — behind one plain pointer. The pointer is
// null by default, so every instrumentation site costs exactly one
// predictable branch when observability is off and the engines keep their
// measured steps/s (gated by `bench_engine --obs_guard` at <= 3% overhead
// even with metrics ON).
//
// Install/uninstall discipline: the CLI (or a test) installs an observer
// BEFORE spawning or dispatching to worker threads and uninstalls it AFTER
// joining them. Thread creation/join orders the pointer write against every
// reader, so no atomics are needed — and manywalks-stray-atomic bans them
// here anyway. Never install or swap an observer while a run is in flight.
//
// Inertness rule (pinned by goldens in tests/test_obs.cpp): instrumentation
// may count, time, and print, but may never draw RNG, never branch on
// timing in a way that changes a walk/merge/block schedule, and never
// reorder contract v2-v4 work.
#pragma once

#include <cstdint>

namespace manywalks::obs {

class MetricsRegistry;
class ProgressReporter;
class TraceWriter;

struct RunObserver {
  MetricsRegistry* metrics = nullptr;
  TraceWriter* trace = nullptr;
  ProgressReporter* progress = nullptr;
};

/// The installed observer, or nullptr (the default: observability off).
RunObserver* observer();

/// Installs `obs` (nullptr to uninstall). Must be called from the main
/// thread while no worker threads are running instrumented code.
void install_observer(RunObserver* obs);

/// RAII installer for scoped runs (CLI driver, tests).
class ScopedObserver {
 public:
  explicit ScopedObserver(RunObserver* obs) { install_observer(obs); }
  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;
  ~ScopedObserver() { install_observer(nullptr); }
};

}  // namespace manywalks::obs
