#include "obs/observer.hpp"

namespace manywalks::obs {

namespace {

// Plain pointer by design: writes happen only on the main thread while no
// instrumented worker is running (see header), so thread creation/join is
// the synchronization. manywalks-stray-atomic keeps it honest.
RunObserver* g_observer = nullptr;

}  // namespace

RunObserver* observer() { return g_observer; }

void install_observer(RunObserver* obs) { g_observer = obs; }

}  // namespace manywalks::obs
