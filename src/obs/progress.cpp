#include "obs/progress.hpp"

#include <cstdio>
#include <iostream>
#include <string>

#include "obs/metrics.hpp"

namespace manywalks::obs {

namespace {

/// Compact human form: 1234567 -> "1.2M". Counters only; heartbeats are
/// for eyeballs, the manifest carries the exact values.
std::string human_count(double value) {
  const char* suffix = "";
  if (value >= 1e9) {
    value /= 1e9;
    suffix = "G";
  } else if (value >= 1e6) {
    value /= 1e6;
    suffix = "M";
  } else if (value >= 1e3) {
    value /= 1e3;
    suffix = "K";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), *suffix == '\0' ? "%.0f%s" : "%.1f%s",
                value, suffix);
  return buffer;
}

std::string human_seconds(double seconds) {
  char buffer[48];
  if (seconds >= 3600) {
    std::snprintf(buffer, sizeof(buffer), "%.0fh%02.0fm", seconds / 3600,
                  (seconds - 3600 * static_cast<int>(seconds / 3600)) / 60);
  } else if (seconds >= 60) {
    std::snprintf(buffer, sizeof(buffer), "%.0fm%02.0fs", seconds / 60,
                  seconds - 60 * static_cast<int>(seconds / 60));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0fs", seconds);
  }
  return buffer;
}

}  // namespace

ProgressReporter::ProgressReporter(double interval_seconds,
                                   const MetricsRegistry* metrics,
                                   std::ostream* out)
    : metrics_(metrics),
      out_(out != nullptr ? out : &std::cerr),
      interval_seconds_(interval_seconds < 0 ? 0 : interval_seconds),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_) {}

void ProgressReporter::tick() {
  const auto now = std::chrono::steady_clock::now();
  const double since_last =
      std::chrono::duration<double>(now - last_print_).count();
  if (lines_ > 0 && since_last < interval_seconds_) return;
  // First tick with a nonzero interval: wait one interval before speaking
  // so short runs stay silent.
  const double elapsed = std::chrono::duration<double>(now - start_).count();
  if (lines_ == 0 && elapsed < interval_seconds_) return;
  last_print_ = now;
  print_line(elapsed, /*final_line=*/false);
}

void ProgressReporter::finish() {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - start_).count();
  print_line(elapsed, /*final_line=*/true);
}

void ProgressReporter::print_line(double elapsed_seconds, bool final_line) {
  ++lines_;
  std::ostream& os = *out_;
  os << (final_line ? "[manywalks] done:" : "[manywalks]");
  if (metrics_ != nullptr) {
    // Live view: the registry plus THIS thread's undrained scratch. Ticks
    // come from the thread doing the work (coordinator, shard worker 0,
    // the serial block engine), so its scratch holds the freshest counts;
    // other threads' scratches surface at the next drain point.
    const WorkerCounters& scratch = thread_counters();
    const auto live = [&](Metric m) {
      return metrics_->value(m) + scratch.count(m);
    };
    const std::uint64_t done = live(Metric::kTrialsDone);
    const std::uint64_t rounds = live(Metric::kRounds);
    const std::uint64_t steps = live(Metric::kSteps);
    os << ' ' << done;
    // The total is an upper bound when a CI target stops a run early;
    // showing it on the final line would read as "unfinished".
    if (total_trials_ > 0 && (!final_line || done == total_trials_)) {
      os << '/' << total_trials_;
    }
    os << " trials | " << human_count(static_cast<double>(rounds))
       << " rounds";
    if (elapsed_seconds > 0) {
      os << " | "
         << human_count(static_cast<double>(steps) / elapsed_seconds)
         << " steps/s";
    }
    const std::uint64_t hits = live(Metric::kCacheHits);
    const std::uint64_t loads = live(Metric::kCacheLoads);
    if (hits + loads > 0) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.1f%%",
                    100.0 * static_cast<double>(hits) /
                        static_cast<double>(hits + loads));
      os << " | cache " << buffer;
    }
    if (!final_line && total_trials_ > 0 && done > 0 && done < total_trials_) {
      const double eta =
          elapsed_seconds * static_cast<double>(total_trials_ - done) /
          static_cast<double>(done);
      os << " | ETA " << human_seconds(eta);
    }
  }
  os << " | " << human_seconds(elapsed_seconds) << " elapsed\n";
  os.flush();
}

}  // namespace manywalks::obs
