// TraceWriter: Chrome trace-event JSON for Perfetto / chrome://tracing.
//
// Spans are coarse by design — experiment, trial, horizon (round-chunk),
// block-visit, extent-cache load/evict — never per walk step, so recording
// stays off the kernel hot path. Events buffer in memory behind a mutex
// (spans are emitted at most a few thousand times per second; contention is
// nil because almost every emitter runs on the coordinating thread) and the
// file is written once at the end of the run.
//
// This file and progress.hpp are the only places outside src/util/timer.hpp
// and bench/ allowed to touch <chrono>: manywalks-lint's raw-clock rule
// fences clock reads into the observability layer so timing can never leak
// into a contract v2-v4 schedule decision.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace manywalks::obs {

class TraceWriter {
 public:
  /// Buffered events are capped so block-visit spans from a long OOC run
  /// cannot balloon the file. The cap applies only to the high-frequency
  /// "block"/"cache" categories (counted as dropped past it); structural
  /// spans (experiment/trial/batch, cats "cli"/"mc") are always admitted —
  /// they are few, and they close LAST, so a blind cap would drop exactly
  /// the outer hierarchy the trace exists to show.
  static constexpr std::size_t kDefaultMaxEvents = 1u << 19;

  explicit TraceWriter(std::string path,
                       std::size_t max_events = kDefaultMaxEvents);

  /// Microseconds since this writer was constructed (steady clock).
  std::uint64_t now_us() const;

  /// Complete span (ph "X"). `name`/`cat` must be string literals or
  /// otherwise outlive the writer. `args_json` is a pre-rendered JSON
  /// object body (no braces), e.g. "\"trial\":3".
  void complete(const char* name, const char* cat, std::uint32_t tid,
                std::uint64_t ts_us, std::uint64_t dur_us,
                std::string args_json = {});
  /// Instant event (ph "i", thread scope).
  void instant(const char* name, const char* cat, std::uint32_t tid,
               std::string args_json = {});
  /// Counter track (ph "C") with a single series named after the event.
  void counter(const char* name, std::uint64_t value);

  std::size_t event_count() const;
  std::size_t dropped() const;
  const std::string& path() const { return path_; }

  /// The full trace document (for tests).
  std::string render() const;
  /// Renders and writes to path(); returns false on I/O failure.
  bool write() const;

 private:
  struct Event {
    const char* name;
    const char* cat;
    char ph;
    std::uint32_t tid;
    std::uint64_t ts;
    std::uint64_t dur;    // ph == 'X' only
    std::uint64_t cval;   // ph == 'C' only
    std::string args;
  };

  void push(Event event);

  std::string path_;
  std::size_t max_events_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;
};

/// RAII span: records the start time at construction and emits one complete
/// event at destruction. A null writer makes every operation a no-op, so
/// instrumentation sites write `TraceSpan span(o ? o->trace : nullptr, ...)`
/// unconditionally.
class TraceSpan {
 public:
  TraceSpan(TraceWriter* writer, const char* name, const char* cat,
            std::uint32_t tid = 0)
      : writer_(writer), name_(name), cat_(cat), tid_(tid) {
    if (writer_ != nullptr) start_us_ = writer_->now_us();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (writer_ == nullptr) return;
    const std::uint64_t end_us = writer_->now_us();
    writer_->complete(name_, cat_, tid_, start_us_,
                      end_us > start_us_ ? end_us - start_us_ : 0,
                      std::move(args_));
  }

  /// Attaches a pre-rendered JSON object body to the span.
  void set_args(std::string args_json) {
    if (writer_ != nullptr) args_ = std::move(args_json);
  }

 private:
  TraceWriter* writer_;
  const char* name_;
  const char* cat_;
  std::uint32_t tid_;
  std::uint64_t start_us_ = 0;
  std::string args_;
};

}  // namespace manywalks::obs
