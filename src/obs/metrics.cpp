#include "obs/metrics.hpp"

#include <bit>
#include <ctime>
#include <mutex>

#include "util/check.hpp"

namespace manywalks::obs {

namespace {

struct MetricInfo {
  const char* name;
  MetricKind kind;
};

constexpr MetricInfo kMetricInfo[kMetricCount] = {
    {"walk.steps", MetricKind::kCounter},
    {"walk.rounds", MetricKind::kCounter},
    {"shard.merges", MetricKind::kCounter},
    {"shard.merge_stalls", MetricKind::kCounter},
    {"block.bucket_passes", MetricKind::kCounter},
    {"block.block_visits", MetricKind::kCounter},
    {"block.bucket_migrations", MetricKind::kCounter},
    {"block.replayed_rounds", MetricKind::kCounter},
    {"cache.loads", MetricKind::kCounter},
    {"cache.hits", MetricKind::kCounter},
    {"cache.evictions", MetricKind::kCounter},
    {"cache.bytes_loaded", MetricKind::kCounter},
    {"mc.trials_started", MetricKind::kCounter},
    {"mc.trials_done", MetricKind::kCounter},
    {"mc.trials_censored", MetricKind::kCounter},
    {"pool.queue_peak", MetricKind::kGauge},
    {"mc.trial_rounds", MetricKind::kHistogram},
};

// --- thread-local scratch registry -----------------------------------
//
// Each thread's scratch lives in a thread_local handle that registers its
// pointer under the scratch mutex on first touch and unregisters at thread
// exit, folding any unmerged counts into the orphan bucket so a pool that
// is destroyed before the next drain loses nothing. The mutex guards only
// registration, unregistration, and drains — all cold paths.

std::mutex& scratch_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<WorkerCounters*>& scratch_list() {
  static std::vector<WorkerCounters*> list;
  return list;
}

WorkerCounters& orphan_counters() {
  static WorkerCounters orphans;
  return orphans;
}

struct ScratchHandle {
  WorkerCounters counters;
  ScratchHandle() {
    const std::lock_guard<std::mutex> lock(scratch_mutex());
    scratch_list().push_back(&counters);
  }
  ~ScratchHandle() {
    const std::lock_guard<std::mutex> lock(scratch_mutex());
    auto& list = scratch_list();
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i] == &counters) {
        list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      const auto metric = static_cast<Metric>(i);
      if (metric_kind(metric) == MetricKind::kGauge) {
        orphan_counters().note_max(metric, counters.count(metric));
      } else {
        orphan_counters().add(metric, counters.count(metric));
      }
    }
  }
};

}  // namespace

WorkerCounters& thread_counters() {
  thread_local ScratchHandle handle;
  return handle.counters;
}

void drain_thread_counters(MetricsRegistry& registry) {
  const std::lock_guard<std::mutex> lock(scratch_mutex());
  for (WorkerCounters* scratch : scratch_list()) {
    registry.merge(*scratch);
    scratch->reset();
  }
  registry.merge(orphan_counters());
  orphan_counters().reset();
}

const char* metric_name(Metric metric) {
  const auto index = static_cast<std::size_t>(metric);
  MW_REQUIRE(index < kMetricCount, "metric_name: bad metric id");
  return kMetricInfo[index].name;
}

MetricKind metric_kind(Metric metric) {
  const auto index = static_cast<std::size_t>(metric);
  MW_REQUIRE(index < kMetricCount, "metric_kind: bad metric id");
  return kMetricInfo[index].kind;
}

std::size_t histogram_bucket(std::uint64_t value) {
  if (value == 0) return 0;
  return static_cast<std::size_t>(std::bit_width(value));
}

double process_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

MetricsRegistry::MetricsRegistry() {
  std::size_t fixed_histograms = 0;
  for (const MetricInfo& info : kMetricInfo) {
    if (info.kind == MetricKind::kHistogram) ++fixed_histograms;
  }
  histograms_.resize(fixed_histograms);
}

void MetricsRegistry::observe(Metric metric, std::uint64_t value) {
  MW_REQUIRE(metric_kind(metric) == MetricKind::kHistogram,
             "observe() needs a histogram metric");
  // Histogram slots are assigned in enum order among histogram metrics.
  std::size_t slot = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(metric); ++i) {
    if (kMetricInfo[i].kind == MetricKind::kHistogram) ++slot;
  }
  auto& buckets = histograms_[slot];
  const std::size_t bucket = histogram_bucket(value);
  if (buckets.size() <= bucket) buckets.resize(bucket + 1, 0);
  ++buckets[bucket];
  // The counter slot doubles as the observation count so value() and the
  // manifest have a scalar to show.
  values_[static_cast<std::size_t>(metric)] += 1;
}

void MetricsRegistry::merge(const WorkerCounters& worker) {
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    if (kMetricInfo[i].kind == MetricKind::kGauge) {
      if (worker.counts_[i] > values_[i]) values_[i] = worker.counts_[i];
    } else {
      values_[i] += worker.counts_[i];
    }
  }
}

std::size_t MetricsRegistry::register_metric(std::string name,
                                             MetricKind kind) {
  dynamic_.push_back(Dynamic{std::move(name), kind, 0, {}});
  return kMetricCount + dynamic_.size() - 1;
}

void MetricsRegistry::add_id(std::size_t id, std::uint64_t delta) {
  if (id < kMetricCount) {
    values_[id] += delta;
    return;
  }
  const std::size_t slot = id - kMetricCount;
  MW_REQUIRE(slot < dynamic_.size(), "add_id: unregistered metric id");
  dynamic_[slot].value += delta;
}

std::uint64_t MetricsRegistry::value_id(std::size_t id) const {
  if (id < kMetricCount) return values_[id];
  const std::size_t slot = id - kMetricCount;
  MW_REQUIRE(slot < dynamic_.size(), "value_id: unregistered metric id");
  return dynamic_[slot].value;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(kMetricCount + dynamic_.size());
  std::size_t histogram_slot = 0;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    MetricSnapshot snap;
    snap.name = kMetricInfo[i].name;
    snap.kind = kMetricInfo[i].kind;
    snap.value = values_[i];
    if (snap.kind == MetricKind::kHistogram) {
      snap.buckets = histograms_[histogram_slot++];
    }
    out.push_back(std::move(snap));
  }
  for (const Dynamic& dynamic : dynamic_) {
    out.push_back(MetricSnapshot{dynamic.name, dynamic.kind, dynamic.value,
                                 dynamic.buckets});
  }
  return out;
}

void MetricsRegistry::reset() {
  values_ = {};
  for (auto& buckets : histograms_) buckets.clear();
  for (Dynamic& dynamic : dynamic_) {
    dynamic.value = 0;
    dynamic.buckets.clear();
  }
}

}  // namespace manywalks::obs
