// ProgressReporter: the `--progress[=SECS]` stderr heartbeat.
//
// There is deliberately NO background thread. tick() is called from points
// that are already single-threaded on the coordinating thread — the
// Monte-Carlo reduction loop, shard worker 0 (which contract v3 runs on the
// caller), and the block engine's horizon loop — and prints at most one
// line per interval. Timing decides only whether a line is printed; it can
// never alter a walk, merge, or block schedule, which keeps the reporter
// inside the observability inertness rule (see ARCHITECTURE.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>

namespace manywalks::obs {

class MetricsRegistry;

class ProgressReporter {
 public:
  /// Prints to `out` (nullptr = stderr) every `interval_seconds` at most.
  /// An interval of 0 prints on every tick (tests, very long phases).
  ProgressReporter(double interval_seconds, const MetricsRegistry* metrics,
                   std::ostream* out = nullptr);

  /// Trial total for the "done/total" fraction and the ETA; 0 hides both.
  void set_total_trials(std::uint64_t total) { total_trials_ = total; }

  /// Prints a heartbeat if at least one interval elapsed since the last.
  void tick();

  /// Prints the final summary line unconditionally.
  void finish();

  std::uint64_t lines_printed() const { return lines_; }

 private:
  void print_line(double elapsed_seconds, bool final_line);

  const MetricsRegistry* metrics_;
  std::ostream* out_;
  double interval_seconds_;
  std::uint64_t total_trials_ = 0;
  std::uint64_t lines_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_print_;
};

}  // namespace manywalks::obs
