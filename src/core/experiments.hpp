// Experiment runners shared by the bench binaries and integration tests.
// Each runner returns a structured result; render_* turns it into the
// paper-style text table.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/analyzer.hpp"
#include "core/families.hpp"
#include "mc/estimators.hpp"
#include "util/table.hpp"

namespace manywalks {

// --- structured results ------------------------------------------------------
//
// Every experiment driver returns an ExperimentResult: typed tables plus the
// surrounding prose. Cells keep raw values (not formatted strings) so the
// same result renders as the paper-style text table, as CSV, or as JSON.

/// A real-valued cell; `sig` is the significant-digit count used by the
/// text renderer (format_double).
struct RealCell {
  double value = 0.0;
  int sig = 4;
};

/// A "mean ± half-width" cell (confidence-interval estimates). `censored`
/// counts the step-cap-truncated trials behind the estimate: when nonzero
/// the mean is a lower bound, the text renderer marks the cell with "†",
/// JSON adds a "censored" key, and CSV grows a "(censored)" column.
struct MeanPmCell {
  double mean = 0.0;
  double half_width = 0.0;
  int sig = 4;
  std::uint64_t censored = 0;
};

/// One table cell: empty (renders "-"), verbatim text, an exact count, a
/// real, a mean±half-width estimate, or a boolean (JSON true/false).
using ResultCell =
    std::variant<std::monostate, std::string, std::uint64_t, RealCell,
                 MeanPmCell, bool>;

/// Renders a cell exactly as the legacy text tables did (format_count /
/// format_double / format_mean_pm; empty cells as "-").
std::string cell_text(const ResultCell& cell);

class ResultTable {
 public:
  struct Column {
    std::string name;
    bool left = false;  ///< left-aligned (labels); numbers are right-aligned
  };
  struct Row {
    std::vector<ResultCell> cells;
    bool rule_before = false;
  };

  ResultTable() = default;
  ResultTable(std::string id, std::string title)
      : id_(std::move(id)), title_(std::move(title)) {}

  ResultTable& add_column(std::string name, bool left = false);
  ResultTable& begin_row();
  /// Inserts a horizontal rule before the next row (group separators).
  ResultTable& rule();

  ResultTable& text(std::string value);
  ResultTable& count(std::uint64_t value);
  ResultTable& real(double value, int sig = 4);
  ResultTable& mean_pm(double mean, double half_width, int sig = 4,
                       std::uint64_t censored = 0);
  /// Carries result.censored into the cell, so a capped estimate can never
  /// be rendered as a clean one.
  ResultTable& mean_pm(const McResult& result, int sig = 4);
  /// Speed-up cell: carries the censored counts of both sides of the ratio.
  ResultTable& mean_pm(const SpeedupEstimate& estimate, int sig = 3);
  ResultTable& blank();

  const std::string& id() const noexcept { return id_; }
  const std::string& title() const noexcept { return title_; }
  const std::vector<Column>& columns() const noexcept { return columns_; }
  const std::vector<Row>& rows() const noexcept { return rows_; }

 private:
  ResultTable& cell(ResultCell cell);

  std::string id_;     ///< machine name (CSV file suffix, JSON key)
  std::string title_;  ///< human title (text table heading)
  std::vector<Column> columns_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// The structured outcome of one registered experiment run.
struct ExperimentResult {
  std::string name;   ///< registry name, e.g. "fig_cycle_speedup"
  std::string claim;  ///< paper claim reproduced, e.g. "Theorem 6 (§5)"
  /// Resolved parameters actually used, in display order (seed, n, ...).
  std::vector<std::pair<std::string, ResultCell>> params;
  std::vector<std::string> preamble;  ///< prose printed before the tables
  std::vector<ResultTable> tables;
  std::vector<std::string> notes;  ///< the paper-claim commentary afterwards
  bool has_verdict = false;  ///< experiment checks a rigorous inequality
  bool passed = true;        ///< verdict (true when has_verdict is false)
  /// Number of reported estimates (MeanPm cells) built from at least one
  /// step-cap-censored trial; stamped by the registry after the runner
  /// returns, rendered by every sink (JSON key, text warning).
  std::uint64_t censored_cells = 0;
  double elapsed_seconds = 0.0;
  /// Run manifest (`--metrics`): wall/CPU time, resolved parallelism, and
  /// the final metric snapshot as ordered key/cell pairs. Filled by the CLI
  /// driver, never by runners; empty means every sink's output is
  /// byte-identical to an unobserved run.
  std::vector<std::pair<std::string, ResultCell>> manifest;
};

/// Counts the MeanPm cells flagged censored across all of the result's
/// tables (the value stamped into ExperimentResult::censored_cells).
std::uint64_t count_censored_cells(const ExperimentResult& result);

/// Converts a structured table into the legacy fixed-width text table.
TextTable to_text_table(const ResultTable& table);

struct ExperimentOptions {
  std::uint64_t seed = 7;
  McOptions mc;
  /// Lane sampling mode by default (determinism contract v2) — every
  /// registered experiment runs the pipelined kernel unless a caller pins
  /// RngMode::kSharedLegacy explicitly.
  CoverOptions cover = lane_cover_options();
  std::uint64_t hmax_exact_limit = 1200;
  std::uint64_t mixing_cap = 400'000;
  unsigned threads = 0;  ///< workers for the shared pool (0 = hardware)
};

// --- Table 1 ---------------------------------------------------------------

struct Table1Row {
  std::string name;
  Vertex n = 0;
  std::uint64_t m = 0;
  GraphProfile profile;
  std::vector<SpeedupEstimate> speedups;  ///< measured at the requested ks
  TheoryProfile theory;
};

/// Measures one Table-1 row: Ĉ, h_max, t_m, and S^k for each k in `ks`.
Table1Row run_table1_row(const FamilyInstance& instance,
                         std::span<const unsigned> ks,
                         const ExperimentOptions& options,
                         ThreadPool* pool = nullptr);

/// Table 1 as a structured table; render_table1 is to_text_table of this,
/// so the CLI sinks and the legacy text rendering share one layout.
ResultTable make_table1_result_table(std::span<const Table1Row> rows,
                                     std::span<const unsigned> ks);

TextTable render_table1(std::span<const Table1Row> rows,
                        std::span<const unsigned> ks);

// --- generic speed-up curve (Thms 6, 8, 18) ---------------------------------

struct SpeedupCurveResult {
  std::string name;
  Vertex n = 0;
  Vertex start = 0;
  McResult single;  ///< Ĉ baseline
  std::vector<SpeedupEstimate> points;
};

SpeedupCurveResult run_speedup_curve(const FamilyInstance& instance,
                                     std::span<const unsigned> ks,
                                     const ExperimentOptions& options,
                                     ThreadPool* pool = nullptr);

/// Renders k, Ĉ^k, S^k plus a per-point reference column ("k", "ln k", ...)
/// computed by `reference` (may be empty).
TextTable render_speedup_curve(const SpeedupCurveResult& result,
                               const std::string& reference_header,
                               const std::vector<double>& reference_values);

// --- barbell (Figure 1 / Thm 7) ---------------------------------------------

struct BarbellPoint {
  Vertex n = 0;
  unsigned k = 0;            ///< Θ(log n) walks
  McResult single;           ///< Ĉ_{v_c}
  McResult multi;            ///< Ĉ^k_{v_c}
  double single_over_n2 = 0; ///< Ĉ / n^2 (should be ~const: Θ(n^2))
  double multi_over_n = 0;   ///< Ĉ^k / n (should be ~const: O(n))
  double speedup = 0;
};

struct BarbellResult {
  std::vector<BarbellPoint> points;
};

/// Thm 7: sweeps n, runs k = ceil(c_k · ln n) walks from the barbell
/// center, and verifies C = Θ(n^2) vs C^k = O(n).
BarbellResult run_barbell_experiment(std::span<const Vertex> ns, double c_k,
                                     const ExperimentOptions& options,
                                     ThreadPool* pool = nullptr);

/// The barbell sweep as a structured table; render_barbell is
/// to_text_table of this.
ResultTable make_barbell_result_table(const BarbellResult& result);

TextTable render_barbell(const BarbellResult& result);

}  // namespace manywalks
