// Experiment runners shared by the bench binaries and integration tests.
// Each runner returns a structured result; render_* turns it into the
// paper-style text table.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/families.hpp"
#include "mc/estimators.hpp"
#include "util/table.hpp"

namespace manywalks {

struct ExperimentOptions {
  std::uint64_t seed = 7;
  McOptions mc;
  CoverOptions cover;
  std::uint64_t hmax_exact_limit = 1200;
  std::uint64_t mixing_cap = 400'000;
  unsigned threads = 0;  ///< workers for the shared pool (0 = hardware)
};

// --- Table 1 ---------------------------------------------------------------

struct Table1Row {
  std::string name;
  Vertex n = 0;
  std::uint64_t m = 0;
  GraphProfile profile;
  std::vector<SpeedupEstimate> speedups;  ///< measured at the requested ks
  TheoryProfile theory;
};

/// Measures one Table-1 row: Ĉ, h_max, t_m, and S^k for each k in `ks`.
Table1Row run_table1_row(const FamilyInstance& instance,
                         std::span<const unsigned> ks,
                         const ExperimentOptions& options,
                         ThreadPool* pool = nullptr);

TextTable render_table1(std::span<const Table1Row> rows,
                        std::span<const unsigned> ks);

// --- generic speed-up curve (Thms 6, 8, 18) ---------------------------------

struct SpeedupCurveResult {
  std::string name;
  Vertex n = 0;
  Vertex start = 0;
  McResult single;  ///< Ĉ baseline
  std::vector<SpeedupEstimate> points;
};

SpeedupCurveResult run_speedup_curve(const FamilyInstance& instance,
                                     std::span<const unsigned> ks,
                                     const ExperimentOptions& options,
                                     ThreadPool* pool = nullptr);

/// Renders k, Ĉ^k, S^k plus a per-point reference column ("k", "ln k", ...)
/// computed by `reference` (may be empty).
TextTable render_speedup_curve(const SpeedupCurveResult& result,
                               const std::string& reference_header,
                               const std::vector<double>& reference_values);

// --- barbell (Figure 1 / Thm 7) ---------------------------------------------

struct BarbellPoint {
  Vertex n = 0;
  unsigned k = 0;            ///< Θ(log n) walks
  McResult single;           ///< Ĉ_{v_c}
  McResult multi;            ///< Ĉ^k_{v_c}
  double single_over_n2 = 0; ///< Ĉ / n^2 (should be ~const: Θ(n^2))
  double multi_over_n = 0;   ///< Ĉ^k / n (should be ~const: O(n))
  double speedup = 0;
};

struct BarbellResult {
  std::vector<BarbellPoint> points;
};

/// Thm 7: sweeps n, runs k = ceil(c_k · ln n) walks from the barbell
/// center, and verifies C = Θ(n^2) vs C^k = O(n).
BarbellResult run_barbell_experiment(std::span<const Vertex> ns, double c_k,
                                     const ExperimentOptions& options,
                                     ThreadPool* pool = nullptr);

TextTable render_barbell(const BarbellResult& result);

}  // namespace manywalks
