// Measurement of the paper's graph parameters for arbitrary instances:
// maximum hitting time h_max (exact solve below a size limit, extremal-pair
// sampling above it) and mixing time t_m (lazy chain where the plain walk
// is periodic).
#pragma once

#include <cstdint>
#include <span>

#include "core/families.hpp"
#include "mc/estimators.hpp"

namespace manywalks {

struct HmaxEstimate {
  double value = 0.0;
  bool exact = false;        ///< solved exactly vs sampled candidate pairs
  Vertex from = 0;           ///< argmax pair
  Vertex to = 0;
  double half_width = 0.0;   ///< 0 when exact
};

/// Measures h_max = max_{u,v} h(u, v). For n <= exact_limit the fundamental
/// matrix gives the exact maximum (O(n^3)); otherwise hitting times are
/// sampled on heuristic extremal pairs (double-sweep BFS endpoints, the
/// minimum-degree vertex, and a few random pairs) and the max is reported
/// as a lower-bound estimate.
HmaxEstimate measure_h_max(const Graph& g, const McOptions& mc,
                           std::uint64_t exact_limit = 1200,
                           ThreadPool* pool = nullptr);

struct MixingMeasurement {
  std::uint64_t time = 0;
  bool converged = false;
  double laziness = 0.0;  ///< laziness actually used
};

/// Measures the paper's mixing time from a small set of sources (defaults:
/// vertex 0, a max-degree vertex, and a min-degree vertex). If `force_lazy`
/// (or the graph is bipartite) the lazy(1/2) chain is measured instead —
/// the plain chain does not converge on periodic graphs.
MixingMeasurement measure_mixing_time(const Graph& g, bool force_lazy,
                                      std::uint64_t max_steps = 1'000'000,
                                      std::span<const Vertex> sources = {});

/// One-stop profile of a family instance: Ĉ (from the canonical start),
/// h_max, t_m, and the gap g(n) = Ĉ / h_max (Thm 5).
struct GraphProfile {
  McResult cover;
  HmaxEstimate h_max;
  MixingMeasurement mixing;
  double gap = 0.0;
};

struct ProfileOptions {
  McOptions mc;
  CoverOptions cover = lane_cover_options();
  std::uint64_t hmax_exact_limit = 1200;
  std::uint64_t mixing_cap = 1'000'000;
};

GraphProfile profile_graph(const FamilyInstance& instance,
                           const ProfileOptions& options,
                           ThreadPool* pool = nullptr);

}  // namespace manywalks
