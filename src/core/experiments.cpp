#include "core/experiments.hpp"

#include <cmath>
#include <sstream>

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace manywalks {

std::string cell_text(const ResultCell& cell) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "-"; }
    std::string operator()(const std::string& text) const { return text; }
    std::string operator()(std::uint64_t value) const {
      return format_count(value);
    }
    std::string operator()(const RealCell& value) const {
      return format_double(value.value, value.sig);
    }
    std::string operator()(const MeanPmCell& value) const {
      std::string text = format_mean_pm(value.mean, value.half_width, value.sig);
      if (value.censored > 0) text += "†";  // lower bound: censored trials
      return text;
    }
    std::string operator()(bool value) const {
      return value ? "true" : "false";
    }
  };
  return std::visit(Visitor{}, cell);
}

ResultTable& ResultTable::add_column(std::string name, bool left) {
  MW_REQUIRE(rows_.empty(), "declare all columns before adding rows");
  columns_.push_back(Column{std::move(name), left});
  return *this;
}

ResultTable& ResultTable::begin_row() {
  MW_REQUIRE(!columns_.empty(), "declare columns before rows");
  rows_.push_back(Row{{}, pending_rule_});
  pending_rule_ = false;
  return *this;
}

ResultTable& ResultTable::rule() {
  pending_rule_ = true;
  return *this;
}

ResultTable& ResultTable::cell(ResultCell cell) {
  MW_REQUIRE(!rows_.empty(), "begin_row before adding cells");
  MW_REQUIRE(rows_.back().cells.size() < columns_.size(),
             "row already has " << columns_.size() << " cells");
  rows_.back().cells.push_back(std::move(cell));
  return *this;
}

ResultTable& ResultTable::text(std::string value) {
  return cell(ResultCell{std::move(value)});
}

ResultTable& ResultTable::count(std::uint64_t value) {
  return cell(ResultCell{value});
}

ResultTable& ResultTable::real(double value, int sig) {
  return cell(ResultCell{RealCell{value, sig}});
}

ResultTable& ResultTable::mean_pm(double mean, double half_width, int sig,
                                  std::uint64_t censored) {
  return cell(ResultCell{MeanPmCell{mean, half_width, sig, censored}});
}

ResultTable& ResultTable::mean_pm(const McResult& result, int sig) {
  return mean_pm(result.ci.mean, result.ci.half_width, sig, result.censored);
}

ResultTable& ResultTable::mean_pm(const SpeedupEstimate& estimate, int sig) {
  return mean_pm(estimate.speedup, estimate.half_width, sig,
                 estimate.censored);
}

ResultTable& ResultTable::blank() { return cell(ResultCell{}); }

std::uint64_t count_censored_cells(const ExperimentResult& result) {
  std::uint64_t censored_cells = 0;
  for (const ResultTable& table : result.tables) {
    for (const ResultTable::Row& row : table.rows()) {
      for (const ResultCell& cell : row.cells) {
        if (const auto* pm = std::get_if<MeanPmCell>(&cell)) {
          if (pm->censored > 0) ++censored_cells;
        }
      }
    }
  }
  return censored_cells;
}

TextTable to_text_table(const ResultTable& table) {
  TextTable text(table.title());
  for (const ResultTable::Column& column : table.columns()) {
    text.add_column(column.name, column.left ? TextTable::Align::kLeft
                                             : TextTable::Align::kRight);
  }
  for (const ResultTable::Row& row : table.rows()) {
    if (row.rule_before) text.rule();
    text.begin_row();
    for (const ResultCell& cell : row.cells) text.cell(cell_text(cell));
  }
  return text;
}

Table1Row run_table1_row(const FamilyInstance& instance,
                         std::span<const unsigned> ks,
                         const ExperimentOptions& options, ThreadPool* pool) {
  Table1Row row;
  row.name = instance.name;
  row.n = instance.graph.num_vertices();
  row.m = instance.graph.num_edges();
  row.theory = instance.theory;

  ProfileOptions profile_options;
  profile_options.mc = options.mc;
  profile_options.mc.seed = mix64(options.seed ^ 0x7ab1e1ULL);
  profile_options.cover = options.cover;
  profile_options.hmax_exact_limit = options.hmax_exact_limit;
  profile_options.mixing_cap = options.mixing_cap;
  row.profile = profile_graph(instance, profile_options, pool);

  McOptions mc = options.mc;
  mc.seed = mix64(options.seed ^ 0x5eedcafeULL);
  row.speedups = estimate_speedup_curve(instance.graph, instance.start, ks, mc,
                                        options.cover, pool);
  return row;
}

ResultTable make_table1_result_table(std::span<const Table1Row> rows,
                                     std::span<const unsigned> ks) {
  ResultTable table("table1",
                    "Table 1 — measured cover/hitting/mixing times and "
                    "speed-ups (paper orders in parentheses)");
  table.add_column("graph family", /*left=*/true)
      .add_column("n")
      .add_column("cover C")
      .add_column("C theory")
      .add_column("h_max")
      .add_column("h theory")
      .add_column("t_mix")
      .add_column("gap C/h");
  for (unsigned k : ks) table.add_column("S^" + std::to_string(k));
  table.add_column("speed-up (paper)", /*left=*/true);

  for (const Table1Row& row : rows) {
    table.begin_row();
    table.text(row.name);
    table.count(row.n);
    table.mean_pm(row.profile.cover);
    table.text(format_double(row.theory.cover) + " (" +
               row.theory.cover_formula + ")");
    if (row.profile.h_max.exact) {
      table.real(row.profile.h_max.value);
    } else {
      table.text(format_mean_pm(row.profile.h_max.value,
                                row.profile.h_max.half_width) +
                 "*");
    }
    table.text(format_double(row.theory.h_max) + " (" +
               row.theory.hitting_formula + ")");
    {
      std::ostringstream os;
      if (!row.profile.mixing.converged) {
        os << "> " << format_count(row.profile.mixing.time);
      } else {
        os << format_count(row.profile.mixing.time);
      }
      if (row.profile.mixing.laziness > 0.0) os << " (lazy)";
      table.text(os.str());
    }
    table.real(row.profile.gap);
    for (const SpeedupEstimate& s : row.speedups) {
      table.mean_pm(s);
    }
    table.text(row.theory.speedup_regime);
  }
  return table;
}

TextTable render_table1(std::span<const Table1Row> rows,
                        std::span<const unsigned> ks) {
  return to_text_table(make_table1_result_table(rows, ks));
}

SpeedupCurveResult run_speedup_curve(const FamilyInstance& instance,
                                     std::span<const unsigned> ks,
                                     const ExperimentOptions& options,
                                     ThreadPool* pool) {
  SpeedupCurveResult result;
  result.name = instance.name;
  result.n = instance.graph.num_vertices();
  result.start = instance.start;
  McOptions mc = options.mc;
  mc.seed = mix64(options.seed ^ 0xc0de5eedULL);
  result.points = estimate_speedup_curve(instance.graph, instance.start, ks,
                                         mc, options.cover, pool);
  if (!result.points.empty()) result.single = result.points.front().single;
  return result;
}

TextTable render_speedup_curve(const SpeedupCurveResult& result,
                               const std::string& reference_header,
                               const std::vector<double>& reference_values) {
  std::ostringstream title;
  title << "Speed-up curve on " << result.name << " from vertex "
        << result.start << " (C = "
        << format_mean_pm(result.single.ci.mean, result.single.ci.half_width)
        << ")";
  TextTable table(title.str());
  table.add_column("k").add_column("C^k").add_column("S^k = C/C^k");
  const bool have_reference = !reference_header.empty();
  if (have_reference) {
    MW_REQUIRE(reference_values.size() == result.points.size(),
               "one reference value per point required");
    table.add_column(reference_header);
    table.add_column("S^k / ref");
  }
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const SpeedupEstimate& p = result.points[i];
    // Same dagger convention as the structured cells: a censored estimate
    // is a lower bound, never rendered as clean.
    table.begin_row();
    table.cell(static_cast<std::uint64_t>(p.k));
    table.cell(format_mean_pm(p.multi.ci.mean, p.multi.ci.half_width) +
               (p.multi.censored > 0 ? "†" : ""));
    table.cell(format_mean_pm(p.speedup, p.half_width, 3) +
               (p.censored > 0 ? "†" : ""));
    if (have_reference) {
      table.cell(format_double(reference_values[i]));
      table.cell(format_double(
          reference_values[i] > 0 ? p.speedup / reference_values[i] : 0.0, 3));
    }
  }
  return table;
}

BarbellResult run_barbell_experiment(std::span<const Vertex> ns, double c_k,
                                     const ExperimentOptions& options,
                                     ThreadPool* pool) {
  MW_REQUIRE(c_k > 0.0, "c_k must be positive");
  BarbellResult result;
  for (Vertex n : ns) {
    FamilyInstance instance =
        make_family_instance(GraphFamily::kBarbell, n, options.seed);
    const Vertex actual_n = instance.graph.num_vertices();
    BarbellPoint point;
    point.n = actual_n;
    point.k = static_cast<unsigned>(std::max(
        2.0, std::ceil(c_k * std::log(static_cast<double>(actual_n)))));

    McOptions mc = options.mc;
    mc.seed = mix64(options.seed ^ (0xbabe11ULL + actual_n));
    point.single = estimate_cover_time(instance.graph, instance.start, mc,
                                       options.cover, pool);
    mc.seed = mix64(options.seed ^ (0xbabe22ULL + actual_n));
    point.multi = estimate_k_cover_time(instance.graph, instance.start,
                                        point.k, mc, options.cover, pool);
    const double nn = static_cast<double>(actual_n);
    point.single_over_n2 = point.single.ci.mean / (nn * nn);
    point.multi_over_n = point.multi.ci.mean / nn;
    point.speedup = point.single.ci.mean / point.multi.ci.mean;
    result.points.push_back(std::move(point));
  }
  return result;
}

ResultTable make_barbell_result_table(const BarbellResult& result) {
  ResultTable table("barbell",
                    "Barbell B_n from the center (Thm 7 / Fig 1): C = Θ(n²) "
                    "vs C^k = O(n) at k = Θ(log n)");
  table.add_column("n")
      .add_column("k")
      .add_column("C (1 walk)")
      .add_column("C/n²")
      .add_column("C^k")
      .add_column("C^k/n")
      .add_column("speed-up");
  for (const BarbellPoint& p : result.points) {
    table.begin_row();
    table.count(p.n);
    table.count(p.k);
    table.mean_pm(p.single);
    table.real(p.single_over_n2, 3);
    table.mean_pm(p.multi);
    table.real(p.multi_over_n, 3);
    table.real(p.speedup, 3);
  }
  return table;
}

TextTable render_barbell(const BarbellResult& result) {
  return to_text_table(make_barbell_result_table(result));
}

}  // namespace manywalks
