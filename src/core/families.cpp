#include "core/families.hpp"

#include <cmath>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "theory/closed_forms.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace manywalks {

namespace {

struct FamilyNameEntry {
  GraphFamily family;
  std::string_view name;
};

constexpr FamilyNameEntry kFamilyNames[] = {
    {GraphFamily::kCycle, "cycle"},
    {GraphFamily::kPath, "path"},
    {GraphFamily::kComplete, "complete"},
    {GraphFamily::kCompleteLoops, "complete-loops"},
    {GraphFamily::kStar, "star"},
    {GraphFamily::kGrid2d, "grid2d"},
    {GraphFamily::kGrid3d, "grid3d"},
    {GraphFamily::kHypercube, "hypercube"},
    {GraphFamily::kBalancedTree, "balanced-tree"},
    {GraphFamily::kBarbell, "barbell"},
    {GraphFamily::kLollipop, "lollipop"},
    {GraphFamily::kMargulis, "margulis"},
    {GraphFamily::kRandomRegular, "random-regular"},
    {GraphFamily::kErdosRenyi, "erdos-renyi"},
    {GraphFamily::kRandomGeometric, "random-geometric"},
};

/// Nearest odd integer >= lo.
std::uint64_t make_odd(std::uint64_t n, std::uint64_t lo) {
  n = std::max(n, lo);
  return (n % 2 == 0) ? n + 1 : n;
}

std::string instance_name(std::string_view family, Vertex n) {
  std::ostringstream os;
  os << family << "(n=" << n << ")";
  return os.str();
}

}  // namespace

std::string_view family_name(GraphFamily family) {
  for (const auto& entry : kFamilyNames) {
    if (entry.family == family) return entry.name;
  }
  MW_REQUIRE(false, "unknown family enum value");
  return {};
}

std::optional<GraphFamily> family_from_name(std::string_view name) {
  for (const auto& entry : kFamilyNames) {
    if (entry.name == name) return entry.family;
  }
  return std::nullopt;
}

std::vector<GraphFamily> all_families() {
  std::vector<GraphFamily> out;
  for (const auto& entry : kFamilyNames) out.push_back(entry.family);
  return out;
}

std::vector<GraphFamily> table1_families() {
  return {GraphFamily::kCycle,     GraphFamily::kGrid2d,
          GraphFamily::kGrid3d,    GraphFamily::kHypercube,
          GraphFamily::kComplete,  GraphFamily::kMargulis,
          GraphFamily::kErdosRenyi};
}

FamilyInstance make_family_instance(GraphFamily family, std::uint64_t target_n,
                                    std::uint64_t seed) {
  MW_REQUIRE(target_n >= 4, "family instances need target_n >= 4");
  FamilyInstance inst;
  inst.family = family;
  Rng rng(mix64(seed ^ 0xfa311ULL));

  switch (family) {
    case GraphFamily::kCycle: {
      // Odd n keeps the plain walk aperiodic (even cycles are bipartite).
      const auto n = static_cast<Vertex>(make_odd(target_n, 5));
      inst.graph = make_cycle(n);
      inst.theory.cover = cycle_cover_time(n);
      inst.theory.cover_exact = true;
      inst.theory.cover_formula = "n(n-1)/2";
      inst.theory.h_max = cycle_max_hitting_time(n);
      inst.theory.h_max_exact = true;
      inst.theory.hitting_formula = "⌊n/2⌋⌈n/2⌉";
      inst.theory.mixing = static_cast<double>(n) * static_cast<double>(n);
      inst.theory.mixing_formula = "O(n^2)";
      inst.theory.speedup_regime = "log k";
      break;
    }
    case GraphFamily::kPath: {
      const auto n = static_cast<Vertex>(std::max<std::uint64_t>(target_n, 4));
      inst.graph = make_path(n);
      inst.needs_lazy_mixing = true;  // paths are bipartite
      inst.theory.cover = path_cover_time(n);
      inst.theory.cover_exact = true;
      inst.theory.cover_formula = "(n-1)^2";
      inst.theory.h_max = path_cover_time(n);
      inst.theory.h_max_exact = true;
      inst.theory.hitting_formula = "(n-1)^2";
      inst.theory.mixing = static_cast<double>(n) * static_cast<double>(n);
      inst.theory.mixing_formula = "O(n^2)";
      inst.theory.speedup_regime = "log k";
      break;
    }
    case GraphFamily::kComplete: {
      const auto n = static_cast<Vertex>(std::max<std::uint64_t>(target_n, 4));
      inst.graph = make_complete(n);
      inst.theory.cover = complete_cover_time(n);
      inst.theory.cover_exact = true;
      inst.theory.cover_formula = "(n-1)H_{n-1}";
      inst.theory.h_max = complete_hitting_time(n);
      inst.theory.h_max_exact = true;
      inst.theory.hitting_formula = "n-1";
      inst.theory.mixing = 1.0;
      inst.theory.mixing_formula = "O(1)";
      inst.theory.speedup_regime = "k, k < n";
      break;
    }
    case GraphFamily::kCompleteLoops: {
      const auto n = static_cast<Vertex>(std::max<std::uint64_t>(target_n, 4));
      inst.graph = make_complete(n, /*with_self_loops=*/true);
      inst.theory.cover = complete_with_loops_cover_time(n);
      inst.theory.cover_exact = true;
      inst.theory.cover_formula = "n·H_{n-1}";
      inst.theory.h_max = static_cast<double>(n);
      inst.theory.h_max_exact = true;
      inst.theory.hitting_formula = "n";
      inst.theory.mixing = 1.0;
      inst.theory.mixing_formula = "1";
      inst.theory.speedup_regime = "k, k < n";
      break;
    }
    case GraphFamily::kStar: {
      const auto n = static_cast<Vertex>(std::max<std::uint64_t>(target_n, 4));
      inst.graph = make_star(n);
      inst.start = 0;  // hub is the worst start
      inst.needs_lazy_mixing = true;  // stars are bipartite
      inst.theory.cover = star_cover_time(n);
      inst.theory.cover_exact = true;
      inst.theory.cover_formula = "2(n-1)H_{n-1}-1";
      inst.theory.h_max = star_max_hitting_time(n);
      inst.theory.h_max_exact = true;
      inst.theory.hitting_formula = "2n-2";
      inst.theory.mixing = 1.0;
      inst.theory.mixing_formula = "O(1) (lazy)";
      inst.theory.speedup_regime = "k, k ≲ log n";
      break;
    }
    case GraphFamily::kGrid2d: {
      const auto side = static_cast<Vertex>(make_odd(
          static_cast<std::uint64_t>(std::llround(
              std::sqrt(static_cast<double>(target_n)))),
          3));
      inst.graph = make_grid_2d(side, GridTopology::kTorus);
      const Vertex n = inst.graph.num_vertices();
      inst.theory.cover = torus2d_cover_time_asymptotic(n);
      inst.theory.cover_formula = "(1/π) n ln^2 n";
      inst.theory.h_max = torus2d_max_hitting_asymptotic(n);
      inst.theory.hitting_formula = "(2/π) n ln n";
      inst.theory.mixing = static_cast<double>(n);
      inst.theory.mixing_formula = "Θ(n)";
      inst.theory.speedup_regime = "k, k < log^{1-ε} n";
      break;
    }
    case GraphFamily::kGrid3d: {
      const auto side = static_cast<Vertex>(make_odd(
          static_cast<std::uint64_t>(std::llround(
              std::cbrt(static_cast<double>(target_n)))),
          3));
      inst.graph = make_torus(side, 3);
      const Vertex n = inst.graph.num_vertices();
      inst.theory.cover = torusd_cover_time_asymptotic(n, 3);
      inst.theory.cover_formula = "~1.52 n ln n";
      inst.theory.h_max = 1.516 * static_cast<double>(n);
      inst.theory.hitting_formula = "Θ(n)";
      inst.theory.mixing = std::pow(static_cast<double>(n), 2.0 / 3.0);
      inst.theory.mixing_formula = "Θ(n^{2/3})";
      inst.theory.speedup_regime = "k, k < log^{1-ε} n";
      break;
    }
    case GraphFamily::kHypercube: {
      const auto dim = static_cast<unsigned>(std::max<std::int64_t>(
          2, std::llround(std::log2(static_cast<double>(target_n)))));
      inst.graph = make_hypercube(dim);
      const Vertex n = inst.graph.num_vertices();
      inst.needs_lazy_mixing = true;  // hypercubes are bipartite
      inst.theory.cover = hypercube_cover_time_asymptotic(n);
      inst.theory.cover_formula = "n ln n";
      inst.theory.h_max = static_cast<double>(n);
      inst.theory.hitting_formula = "Θ(n)";
      inst.theory.mixing =
          std::log2(static_cast<double>(n)) *
          std::log(std::log(static_cast<double>(n)) + 1.0);
      inst.theory.mixing_formula = "log n · log log n";
      inst.theory.speedup_regime = "k, k < log^{1-ε} n";
      break;
    }
    case GraphFamily::kBalancedTree: {
      const auto height = static_cast<unsigned>(std::max<std::int64_t>(
          2,
          std::llround(std::log2(static_cast<double>(target_n) + 1.0)) - 1));
      inst.graph = make_balanced_tree(2, height);
      const Vertex n = inst.graph.num_vertices();
      inst.start = n - 1;  // deepest leaf: the worst start
      inst.needs_lazy_mixing = true;  // trees are bipartite
      const double x = static_cast<double>(n);
      inst.theory.cover = 2.0 * x * std::log2(x) * std::log(x);
      inst.theory.cover_formula = "Θ(n log^2 n)";
      inst.theory.h_max = 2.0 * x * std::log2(x);
      inst.theory.hitting_formula = "Θ(n log n)";
      inst.theory.mixing = x;
      inst.theory.mixing_formula = "Θ(n)";
      inst.theory.speedup_regime = "k, k ≲ log n";
      break;
    }
    case GraphFamily::kBarbell: {
      const auto n = static_cast<Vertex>(make_odd(target_n, 7));
      inst.graph = make_barbell(n);
      inst.start = barbell_center(n);
      const double x = static_cast<double>(n);
      inst.theory.cover = x * x / 8.0;  // order-level constant
      inst.theory.cover_formula = "Θ(n^2)";
      inst.theory.h_max = x * x / 8.0;
      inst.theory.hitting_formula = "Θ(n^2)";
      inst.theory.mixing = x * x / 8.0;
      inst.theory.mixing_formula = "Θ(n^2)";
      inst.theory.speedup_regime = "Ω(n) at k = Θ(log n) from center";
      break;
    }
    case GraphFamily::kLollipop: {
      const auto n = static_cast<Vertex>(std::max<std::uint64_t>(target_n, 6));
      inst.graph = make_lollipop(n);
      inst.start = 0;  // clique vertex: the Θ(n^3) start
      const double x = static_cast<double>(n);
      inst.theory.cover = 4.0 * x * x * x / 27.0;
      inst.theory.cover_formula = "Θ(n^3)";
      inst.theory.h_max = 4.0 * x * x * x / 27.0;
      inst.theory.hitting_formula = "Θ(n^3)";
      inst.theory.mixing = x * x;
      inst.theory.mixing_formula = "Θ(n^2)";
      inst.theory.speedup_regime = "(unstudied; gap g(n) = Θ(1))";
      break;
    }
    case GraphFamily::kMargulis: {
      const auto side = static_cast<Vertex>(std::max<std::int64_t>(
          2, std::llround(std::sqrt(static_cast<double>(target_n)))));
      inst.graph = make_margulis_expander(side);
      const Vertex n = inst.graph.num_vertices();
      inst.theory.cover = nlogn_cover_time(n);
      inst.theory.cover_formula = "Θ(n ln n)";
      inst.theory.h_max = static_cast<double>(n);
      inst.theory.hitting_formula = "Θ(n)";
      inst.theory.mixing = std::log(static_cast<double>(n));
      inst.theory.mixing_formula = "O(log n)";
      inst.theory.speedup_regime = "Ω(k), k < n";
      break;
    }
    case GraphFamily::kRandomRegular: {
      const auto n = static_cast<Vertex>(std::max<std::uint64_t>(target_n, 10));
      inst.graph = make_random_regular(n, 8, rng);
      inst.theory.cover = nlogn_cover_time(n);
      inst.theory.cover_formula = "Θ(n ln n)";
      inst.theory.h_max = static_cast<double>(n);
      inst.theory.hitting_formula = "Θ(n)";
      inst.theory.mixing = std::log(static_cast<double>(n));
      inst.theory.mixing_formula = "O(log n)";
      inst.theory.speedup_regime = "Ω(k), k < n";
      break;
    }
    case GraphFamily::kErdosRenyi: {
      const auto n = static_cast<Vertex>(std::max<std::uint64_t>(target_n, 16));
      const double p = 2.0 * std::log(static_cast<double>(n)) /
                       static_cast<double>(n);
      inst.graph = make_erdos_renyi_connected(n, p, rng);
      inst.theory.cover = nlogn_cover_time(n);
      inst.theory.cover_formula = "Θ(n ln n)";
      inst.theory.h_max = static_cast<double>(n);
      inst.theory.hitting_formula = "Θ(n)";
      inst.theory.mixing = std::log(static_cast<double>(n));
      inst.theory.mixing_formula = "O(log n)";
      inst.theory.speedup_regime = "k, k < log^{1-ε} n";
      break;
    }
    case GraphFamily::kRandomGeometric: {
      const auto n = static_cast<Vertex>(std::max<std::uint64_t>(target_n, 16));
      const double r = random_geometric_connectivity_radius(n, 3.0);
      Graph g = make_random_geometric(n, r, rng);
      if (!is_connected(g)) {
        g = extract_largest_component(g).graph;
      }
      inst.graph = std::move(g);
      const double x = static_cast<double>(inst.graph.num_vertices());
      inst.theory.cover = x * std::log(x) * std::log(x);
      inst.theory.cover_formula = "Θ(n log^2 n)";  // r at the conn. threshold
      inst.theory.h_max = x * std::log(x);
      inst.theory.hitting_formula = "O(n log n)";
      inst.theory.mixing = x;  // order-level; depends on r
      inst.theory.mixing_formula = "poly(r^{-1})";
      inst.theory.speedup_regime = "k, k ≲ log n";
      break;
    }
  }

  inst.name = instance_name(family_name(family), inst.graph.num_vertices());
  MW_REQUIRE(inst.start < inst.graph.num_vertices(),
             "canonical start out of range");
  return inst;
}

}  // namespace manywalks
