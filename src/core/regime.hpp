// Speed-up regime classification.
//
// Table 1's punchline is that different graphs sit in different speed-up
// regimes: S^k ~ k (linear), S^k ~ log k (the cycle), or even super-linear
// from special starts (the barbell). Given a measured speed-up curve, this
// module fits the power law S^k = c * k^b on the k > 1 points and maps the
// exponent b to a regime — a quantitative replacement for eyeballing the
// tables, used by tests and the fig_conjectures harness.
#pragma once

#include <span>
#include <string_view>

#include "mc/estimators.hpp"
#include "util/stats.hpp"

namespace manywalks {

enum class SpeedupRegime {
  kLogarithmic,  ///< exponent near 0: S^k grows like log k (cycle, path)
  kSublinear,    ///< between: partial dispersal (grid at mid k)
  kLinear,       ///< exponent near 1: S^k ~ k (expanders, Matthews-tight)
  kSuperLinear,  ///< exponent > 1: more than k-fold (barbell from center)
};

std::string_view regime_name(SpeedupRegime regime);

struct RegimeFit {
  /// Exponent b of the least-squares power law S^k = c·k^b over the k >= 2
  /// points (log-log OLS).
  double exponent = 0.0;
  /// Multiplier c of the power law.
  double multiplier = 1.0;
  /// R² of the log-log fit.
  double r_squared = 0.0;
  SpeedupRegime regime = SpeedupRegime::kSublinear;
};

struct RegimeThresholds {
  double logarithmic_below = 0.45;  ///< b below this -> logarithmic
  double linear_above = 0.8;        ///< b above this -> linear
  double super_linear_above = 1.25; ///< b above this -> super-linear
};

/// Fits the power law and classifies. Requires at least two points with
/// k >= 2 and positive speed-ups; k values should span at least a factor 4
/// for the exponent to mean anything.
RegimeFit classify_speedup_regime(std::span<const SpeedupEstimate> points,
                                  const RegimeThresholds& thresholds = {});

}  // namespace manywalks
