// The paper-facing family registry: every graph family from Table 1 and
// §6/§7, instantiated with canonical parameters, a canonical starting
// vertex, and the paper's predicted orders (the "theory profile") for
// side-by-side reporting.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace manywalks {

enum class GraphFamily {
  kCycle,            ///< ring L_n (Thm 6: S^k = Θ(log k))
  kPath,             ///< path P_n
  kComplete,         ///< K_n
  kCompleteLoops,    ///< K_n with one self loop per vertex (Lemma 12)
  kStar,             ///< star S_n
  kGrid2d,           ///< 2-D torus (Thm 8)
  kGrid3d,           ///< 3-D torus
  kHypercube,        ///< 2^d-vertex hypercube
  kBalancedTree,     ///< complete binary tree
  kBarbell,          ///< B_n (Thm 7: exponential speed-up from center)
  kLollipop,         ///< Θ(n^3) cover-time worst case
  kMargulis,         ///< Margulis–Gabber–Galil 8-regular expander
  kRandomRegular,    ///< random 8-regular graph (expander w.h.p.)
  kErdosRenyi,       ///< G(n, p) with p = 2 ln n / n (connected regime)
  kRandomGeometric,  ///< RGG above the connectivity radius
};

std::string_view family_name(GraphFamily family);
std::optional<GraphFamily> family_from_name(std::string_view name);
std::vector<GraphFamily> all_families();

/// The seven families of the paper's Table 1 (expander row = Margulis).
std::vector<GraphFamily> table1_families();

/// The paper's predicted orders for one family instance, evaluated at its
/// concrete n. `*_exact` marks closed-form values (test oracles); otherwise
/// the value is an order-of-magnitude reference with a literature constant.
struct TheoryProfile {
  double cover = 0.0;
  bool cover_exact = false;
  std::string cover_formula;

  double h_max = 0.0;
  bool h_max_exact = false;
  std::string hitting_formula;

  double mixing = 0.0;
  std::string mixing_formula;

  /// Table 1's speed-up column, e.g. "k, k <= log n" or "log k".
  std::string speedup_regime;
};

/// A ready-to-measure family instance.
struct FamilyInstance {
  GraphFamily family = GraphFamily::kCycle;
  std::string name;  ///< e.g. "cycle(n=1025)"
  Graph graph;
  Vertex start = 0;  ///< canonical start (worst start where known)
  /// True when the plain walk is periodic (bipartite graph) and mixing must
  /// be measured on the lazy chain.
  bool needs_lazy_mixing = false;
  TheoryProfile theory;
};

/// Builds a family instance with roughly `target_n` vertices (rounded to
/// the family's natural parameterization: squares for grids, powers of two
/// for hypercubes, odd n for barbells and cycles, ...). `seed` feeds the
/// random families.
FamilyInstance make_family_instance(GraphFamily family, std::uint64_t target_n,
                                    std::uint64_t seed = 1);

}  // namespace manywalks
