#include "core/regime.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace manywalks {

std::string_view regime_name(SpeedupRegime regime) {
  switch (regime) {
    case SpeedupRegime::kLogarithmic:
      return "logarithmic";
    case SpeedupRegime::kSublinear:
      return "sublinear";
    case SpeedupRegime::kLinear:
      return "linear";
    case SpeedupRegime::kSuperLinear:
      return "super-linear";
  }
  return "?";
}

RegimeFit classify_speedup_regime(std::span<const SpeedupEstimate> points,
                                  const RegimeThresholds& thresholds) {
  std::vector<double> log_k;
  std::vector<double> log_s;
  for (const SpeedupEstimate& p : points) {
    if (p.k < 2) continue;  // S^1 = 1 carries no slope information
    MW_REQUIRE(p.speedup > 0.0, "speed-ups must be positive");
    log_k.push_back(std::log(static_cast<double>(p.k)));
    log_s.push_back(std::log(p.speedup));
  }
  MW_REQUIRE(log_k.size() >= 2,
             "regime classification needs >= 2 points with k >= 2");

  const LinearFit fit = linear_fit(log_k, log_s);
  RegimeFit out;
  out.exponent = fit.slope;
  out.multiplier = std::exp(fit.intercept);
  out.r_squared = fit.r_squared;
  if (fit.slope >= thresholds.super_linear_above) {
    out.regime = SpeedupRegime::kSuperLinear;
  } else if (fit.slope >= thresholds.linear_above) {
    out.regime = SpeedupRegime::kLinear;
  } else if (fit.slope < thresholds.logarithmic_below) {
    out.regime = SpeedupRegime::kLogarithmic;
  } else {
    out.regime = SpeedupRegime::kSublinear;
  }
  return out;
}

}  // namespace manywalks
