#include "core/analyzer.hpp"

#include <algorithm>

#include "graph/properties.hpp"
#include "linalg/markov.hpp"
#include "theory/bounds.hpp"
#include "theory/exact.hpp"
#include "util/check.hpp"

namespace manywalks {

namespace {

/// Farthest vertex from `source` by BFS (ties: smallest id).
Vertex farthest_vertex(const Graph& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  Vertex best = source;
  std::uint32_t best_d = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] != kUnreachable && dist[v] > best_d) {
      best_d = dist[v];
      best = v;
    }
  }
  return best;
}

Vertex min_degree_vertex(const Graph& g) {
  Vertex best = 0;
  for (Vertex v = 1; v < g.num_vertices(); ++v) {
    if (g.degree(v) < g.degree(best)) best = v;
  }
  return best;
}

}  // namespace

HmaxEstimate measure_h_max(const Graph& g, const McOptions& mc,
                           std::uint64_t exact_limit, ThreadPool* pool) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(n >= 2, "h_max needs n >= 2");
  HmaxEstimate est;

  if (n <= exact_limit) {
    const DenseMatrix h = hitting_time_matrix(g);
    const HittingExtremes ext = hitting_extremes(h);
    est.value = ext.h_max;
    est.exact = true;
    est.from = ext.argmax_from;
    est.to = ext.argmax_to;
    return est;
  }

  // Candidate extremal pairs: hitting times are largest INTO hard-to-reach
  // vertices, so aim at BFS-extremal and min-degree targets from far away.
  const Vertex a = farthest_vertex(g, 0);
  const Vertex b = farthest_vertex(g, a);
  const Vertex md = min_degree_vertex(g);
  const Vertex far_from_md = farthest_vertex(g, md);
  std::vector<std::pair<Vertex, Vertex>> pairs = {
      {a, b}, {b, a}, {0, a}, {far_from_md, md}, {a, md}};
  // A couple of random pairs guard against adversarial heuristics.
  Rng rng(mix64(mc.seed ^ 0xfeedULL));
  for (int i = 0; i < 3; ++i) {
    const Vertex u = rng.uniform_below(n);
    Vertex v = rng.uniform_below(n);
    while (v == u) v = rng.uniform_below(n);
    pairs.emplace_back(u, v);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  bool first = true;
  std::uint64_t salt = 0;
  for (const auto& [from, to] : pairs) {
    if (from == to) continue;
    McOptions per_pair = mc;
    per_pair.seed = mix64(mc.seed ^ (0xabcdULL + salt++));
    const McResult r = estimate_hitting_time(g, from, to, per_pair, {}, pool);
    if (first || r.ci.mean > est.value) {
      est.value = r.ci.mean;
      est.half_width = r.ci.half_width;
      est.from = from;
      est.to = to;
      first = false;
    }
  }
  est.exact = false;
  return est;
}

MixingMeasurement measure_mixing_time(const Graph& g, bool force_lazy,
                                      std::uint64_t max_steps,
                                      std::span<const Vertex> sources) {
  MixingMeasurement out;
  const bool lazy = force_lazy || is_bipartite(g);
  out.laziness = lazy ? 0.5 : 0.0;

  MixingOptions options;
  options.laziness = out.laziness;
  options.max_steps = max_steps;
  if (sources.empty()) {
    // Default probes: vertex 0 plus degree extremes (duplicates removed).
    std::vector<Vertex> probes = {0};
    Vertex mx = 0;
    Vertex mn = 0;
    for (Vertex v = 1; v < g.num_vertices(); ++v) {
      if (g.degree(v) > g.degree(mx)) mx = v;
      if (g.degree(v) < g.degree(mn)) mn = v;
    }
    for (Vertex v : {mx, mn}) {
      if (std::find(probes.begin(), probes.end(), v) == probes.end()) {
        probes.push_back(v);
      }
    }
    options.sources = std::move(probes);
  } else {
    options.sources.assign(sources.begin(), sources.end());
  }
  const MixingResult r = mixing_time(g, options);
  out.time = r.time;
  out.converged = r.converged;
  return out;
}

GraphProfile profile_graph(const FamilyInstance& instance,
                           const ProfileOptions& options, ThreadPool* pool) {
  GraphProfile profile;
  profile.cover = estimate_cover_time(instance.graph, instance.start,
                                      options.mc, options.cover, pool);
  profile.h_max = measure_h_max(instance.graph, options.mc,
                                options.hmax_exact_limit, pool);
  profile.mixing = measure_mixing_time(
      instance.graph, instance.needs_lazy_mixing, options.mixing_cap);
  profile.gap = cover_hitting_gap(profile.cover.ci.mean, profile.h_max.value);
  return profile;
}

}  // namespace manywalks
