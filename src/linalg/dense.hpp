// Small dense linear algebra: row-major matrices and Gaussian elimination.
// Used by the exact hitting-time and exact cover-time solvers on small
// graphs; not intended for large n.
#pragma once

#include <cstddef>
#include <vector>

namespace manywalks {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// y = A x
  std::vector<double> multiply(const std::vector<double>& x) const;

  DenseMatrix multiply(const DenseMatrix& other) const;

  /// Max-norm of (A - B); matrices must have equal shape.
  double max_abs_diff(const DenseMatrix& other) const;

  std::vector<double>& data() noexcept { return data_; }
  const std::vector<double>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting; A and b are
/// taken by value (the copy is the workspace). Throws std::invalid_argument
/// if A is (numerically) singular.
std::vector<double> solve_linear(DenseMatrix a, std::vector<double> b);

/// Solves A X = B for several right-hand sides at once (B columns).
DenseMatrix solve_linear_multi(DenseMatrix a, DenseMatrix b);

}  // namespace manywalks
