// Markov-chain machinery for the simple random walk on a graph: the
// transition operator, stationary distribution, and the paper's mixing time
// (smallest t with sum_v |p^t(u,v) - pi(v)| < 1/e for all u).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/dense.hpp"

namespace manywalks {

/// Stationary distribution pi(v) = deg(v) / num_arcs of the simple walk.
/// Requires a graph with at least one arc.
std::vector<double> stationary_distribution(const Graph& g);

/// One step of distribution evolution: out(v) = sum_{u ~ v} in(u)/deg(u),
/// optionally lazified: out = laziness*in + (1-laziness)*P·in. Multi-edges
/// and loops are counted per arc. `in` and `out` must differ.
void evolve_distribution(const Graph& g, const std::vector<double>& in,
                         std::vector<double>& out, double laziness = 0.0);

/// L1 distance sum_v |a(v) - b(v)| (the paper's "statistical distance" is
/// this quantity, thresholded at 1/e).
double l1_distance(const std::vector<double>& a, const std::vector<double>& b);

/// Total variation distance = l1/2.
double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Dense row-stochastic transition matrix of the (lazy) simple walk; for
/// exact computations on small graphs.
DenseMatrix transition_matrix_dense(const Graph& g, double laziness = 0.0);

struct MixingOptions {
  /// Laziness of the walk (probability of staying put each step). The
  /// paper's chains are non-lazy; bipartite graphs then never mix — pass
  /// 0.5 to measure the standard lazy mixing time instead.
  double laziness = 0.0;
  /// Convergence threshold on the L1 distance (paper: 1/e).
  double threshold = 0.36787944117144233;
  /// Hard cap on steps; if exceeded, `converged=false`.
  std::uint64_t max_steps = 1'000'000;
  /// Sources to maximize over; empty = all vertices (use for small n or
  /// vertex-transitive graphs where one source suffices).
  std::vector<Vertex> sources;
};

struct MixingResult {
  std::uint64_t time = 0;    ///< max over sources of first t below threshold
  bool converged = false;    ///< false if any source exceeded max_steps
  Vertex worst_source = 0;   ///< source achieving the max
};

/// Measures the paper's mixing time by explicit distribution evolution,
/// O(max-over-sources t_mix · arcs) per source.
MixingResult mixing_time(const Graph& g, const MixingOptions& options = {});

}  // namespace manywalks
