// Spectral tools: second-largest eigenvalue (in absolute value) of the
// normalized adjacency operator, spectral gap, and (n,d,λ)-expander
// certification (paper §4.1).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace manywalks {

struct SpectralOptions {
  std::uint64_t max_iterations = 20'000;
  double tolerance = 1e-10;  ///< convergence threshold on eigenvalue change
  std::uint64_t seed = 0x5eed5eedULL;  ///< start-vector seed
};

struct SpectralResult {
  /// max |λ| over non-trivial eigenvalues of the normalized adjacency
  /// operator D^{-1/2} A D^{-1/2} (equivalently of the walk matrix P, which
  /// is similar). In [0, 1] for connected graphs.
  double lambda_norm = 0.0;
  /// 1 - lambda_norm.
  double spectral_gap = 0.0;
  std::uint64_t iterations = 0;
  bool converged = false;
};

/// Power iteration with deflation of the known top eigenvector
/// phi_1(v) ∝ sqrt(deg v). Converges to the largest-|λ| non-trivial
/// eigenvalue; handles multi-edges and loops (each arc is a unit weight).
SpectralResult second_eigenvalue(const Graph& g,
                                 const SpectralOptions& options = {});

struct ExpanderCertificate {
  bool is_regular = false;
  Vertex degree = 0;
  /// λ of the (n, d, λ) definition: max non-trivial |eigenvalue| of the
  /// (unnormalized) adjacency matrix = d * lambda_norm for d-regular graphs.
  double lambda = 0.0;
  /// λ / d; an expander family keeps this bounded away from 1.
  double lambda_ratio = 1.0;
  bool converged = false;
};

/// Certifies a d-regular (multi)graph as an (n, d, λ)-graph by computing λ
/// numerically. Requires a regular graph.
ExpanderCertificate certify_expander(const Graph& g,
                                     const SpectralOptions& options = {});

}  // namespace manywalks
