#include "linalg/markov.hpp"

#include <cmath>

#include "util/check.hpp"

namespace manywalks {

std::vector<double> stationary_distribution(const Graph& g) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(g.num_arcs() > 0, "stationary distribution needs edges");
  std::vector<double> pi(n);
  const double total = static_cast<double>(g.num_arcs());
  for (Vertex v = 0; v < n; ++v) {
    pi[v] = static_cast<double>(g.degree(v)) / total;
  }
  return pi;
}

void evolve_distribution(const Graph& g, const std::vector<double>& in,
                         std::vector<double>& out, double laziness) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(in.size() == n, "distribution size mismatch");
  MW_REQUIRE(&in != &out, "evolve_distribution needs distinct buffers");
  MW_REQUIRE(laziness >= 0.0 && laziness < 1.0, "laziness must be in [0,1)");
  out.assign(n, 0.0);
  // Push mass along arcs: each arc u->v carries in(u)/deg(u). Because the
  // arc multiset is symmetric we can gather over v's rows instead, which is
  // cache-friendlier: out(v) += in(u)/deg(u) for every arc (v,u).
  for (Vertex v = 0; v < n; ++v) {
    double acc = 0.0;
    for (Vertex u : g.neighbors(v)) {
      acc += in[u] / static_cast<double>(g.degree(u));
    }
    out[v] = acc;
  }
  if (laziness > 0.0) {
    for (Vertex v = 0; v < n; ++v) {
      out[v] = laziness * in[v] + (1.0 - laziness) * out[v];
    }
  }
}

double l1_distance(const std::vector<double>& a, const std::vector<double>& b) {
  MW_REQUIRE(a.size() == b.size(), "l1_distance size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  return 0.5 * l1_distance(a, b);
}

DenseMatrix transition_matrix_dense(const Graph& g, double laziness) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(laziness >= 0.0 && laziness < 1.0, "laziness must be in [0,1)");
  DenseMatrix p(n, n, 0.0);
  for (Vertex v = 0; v < n; ++v) {
    MW_REQUIRE(g.degree(v) > 0, "isolated vertex " << v << " has no transitions");
    const double w = (1.0 - laziness) / static_cast<double>(g.degree(v));
    for (Vertex u : g.neighbors(v)) p.at(v, u) += w;
    p.at(v, v) += laziness;
  }
  return p;
}

MixingResult mixing_time(const Graph& g, const MixingOptions& options) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(n >= 1 && g.num_arcs() > 0, "mixing_time needs a nonempty graph");
  const std::vector<double> pi = stationary_distribution(g);

  std::vector<Vertex> sources = options.sources;
  if (sources.empty()) {
    sources.resize(n);
    for (Vertex v = 0; v < n; ++v) sources[v] = v;
  }

  MixingResult result;
  result.converged = true;
  std::vector<double> current(n);
  std::vector<double> next(n);
  for (Vertex source : sources) {
    MW_REQUIRE(source < n, "mixing source out of range");
    current.assign(n, 0.0);
    current[source] = 1.0;
    std::uint64_t t = 0;
    bool done = l1_distance(current, pi) < options.threshold;
    while (!done && t < options.max_steps) {
      evolve_distribution(g, current, next, options.laziness);
      current.swap(next);
      ++t;
      done = l1_distance(current, pi) < options.threshold;
    }
    if (!done) {
      result.converged = false;
      result.time = options.max_steps;
      result.worst_source = source;
      return result;
    }
    if (t >= result.time) {
      result.time = t;
      result.worst_source = source;
    }
  }
  return result;
}

}  // namespace manywalks
