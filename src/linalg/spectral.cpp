#include "linalg/spectral.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace manywalks {

namespace {

/// y = M x where M = D^{-1/2} A D^{-1/2}: y(v) = sum_{arcs (v,u)}
/// x(u) / sqrt(deg(u) deg(v)).
void apply_normalized_adjacency(const Graph& g, const std::vector<double>& x,
                                std::vector<double>& y,
                                const std::vector<double>& inv_sqrt_deg) {
  const Vertex n = g.num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    double acc = 0.0;
    for (Vertex u : g.neighbors(v)) acc += x[u] * inv_sqrt_deg[u];
    y[v] = acc * inv_sqrt_deg[v];
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

SpectralResult second_eigenvalue(const Graph& g, const SpectralOptions& options) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(n >= 2, "second_eigenvalue needs n >= 2");
  MW_REQUIRE(g.min_degree() > 0, "second_eigenvalue needs min degree > 0");

  std::vector<double> inv_sqrt_deg(n);
  std::vector<double> phi1(n);  // top eigenvector of M: sqrt(deg)/||.||
  for (Vertex v = 0; v < n; ++v) {
    const double d = static_cast<double>(g.degree(v));
    inv_sqrt_deg[v] = 1.0 / std::sqrt(d);
    phi1[v] = std::sqrt(d);
  }
  const double phi1_norm = norm(phi1);
  for (Vertex v = 0; v < n; ++v) phi1[v] /= phi1_norm;

  // Random start vector, projected off phi1.
  Rng rng(options.seed);
  std::vector<double> x(n);
  for (Vertex v = 0; v < n; ++v) x[v] = rng.uniform01() - 0.5;
  const auto deflate = [&phi1](std::vector<double>& vec) {
    const double c = dot(vec, phi1);
    for (std::size_t i = 0; i < vec.size(); ++i) vec[i] -= c * phi1[i];
  };
  deflate(x);
  {
    const double nx = norm(x);
    MW_REQUIRE(nx > 0, "degenerate start vector");
    for (Vertex v = 0; v < n; ++v) x[v] /= nx;
  }

  SpectralResult result;
  std::vector<double> y(n);
  double prev_estimate = 0.0;
  for (std::uint64_t it = 0; it < options.max_iterations; ++it) {
    apply_normalized_adjacency(g, x, y, inv_sqrt_deg);
    deflate(y);  // keep numerical drift out of the top eigenspace
    const double ny = norm(y);
    result.iterations = it + 1;
    if (ny < 1e-300) {
      // x was (numerically) in the kernel; restart from a fresh vector.
      for (Vertex v = 0; v < n; ++v) y[v] = rng.uniform01() - 0.5;
      deflate(y);
    }
    const double estimate = ny;  // ||Mx|| with unit x; converges to |λ2|
    for (Vertex v = 0; v < n; ++v) x[v] = y[v] / (ny < 1e-300 ? norm(y) : ny);
    if (it > 8 && std::abs(estimate - prev_estimate) < options.tolerance) {
      result.lambda_norm = estimate;
      result.spectral_gap = 1.0 - estimate;
      result.converged = true;
      return result;
    }
    prev_estimate = estimate;
  }
  result.lambda_norm = prev_estimate;
  result.spectral_gap = 1.0 - prev_estimate;
  result.converged = false;
  return result;
}

ExpanderCertificate certify_expander(const Graph& g,
                                     const SpectralOptions& options) {
  ExpanderCertificate cert;
  cert.is_regular = g.is_regular();
  MW_REQUIRE(cert.is_regular, "certify_expander needs a regular graph");
  cert.degree = g.num_vertices() > 0 ? g.degree(0) : 0;
  const SpectralResult spec = second_eigenvalue(g, options);
  cert.lambda = spec.lambda_norm * static_cast<double>(cert.degree);
  cert.lambda_ratio = spec.lambda_norm;
  cert.converged = spec.converged;
  return cert;
}

}  // namespace manywalks
