#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace manywalks {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
  MW_REQUIRE(x.size() == cols_, "matvec dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  MW_REQUIRE(cols_ == other.rows_, "matmul dimension mismatch");
  DenseMatrix out(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += a * other.at(k, c);
      }
    }
  }
  return out;
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  MW_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
             "shape mismatch in max_abs_diff");
  double best = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::abs(data_[i] - other.data_[i]));
  }
  return best;
}

DenseMatrix solve_linear_multi(DenseMatrix a, DenseMatrix b) {
  const std::size_t n = a.rows();
  MW_REQUIRE(a.cols() == n, "solve needs a square matrix");
  MW_REQUIRE(b.rows() == n, "rhs rows must match matrix size");
  const std::size_t k = b.cols();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest |entry| in this column to the top.
    std::size_t pivot = col;
    double best = std::abs(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double candidate = std::abs(a.at(r, col));
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    MW_REQUIRE(best > 1e-12, "singular matrix in solve_linear (pivot "
                                 << best << " at column " << col << ")");
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c)
        std::swap(a.at(col, c), a.at(pivot, c));
      for (std::size_t c = 0; c < k; ++c)
        std::swap(b.at(col, c), b.at(pivot, c));
    }
    const double inv = 1.0 / a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) * inv;
      if (factor == 0.0) continue;
      a.at(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c)
        a.at(r, c) -= factor * a.at(col, c);
      for (std::size_t c = 0; c < k; ++c) b.at(r, c) -= factor * b.at(col, c);
    }
  }

  // Back substitution.
  DenseMatrix x(n, k, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    for (std::size_t c = 0; c < k; ++c) {
      double acc = b.at(r, c);
      for (std::size_t j = r + 1; j < n; ++j) acc -= a.at(r, j) * x.at(j, c);
      x.at(r, c) = acc / a.at(r, r);
    }
  }
  return x;
}

std::vector<double> solve_linear(DenseMatrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  MW_REQUIRE(b.size() == n, "rhs size must match matrix size");
  DenseMatrix rhs(n, 1);
  for (std::size_t i = 0; i < n; ++i) rhs.at(i, 0) = b[i];
  DenseMatrix x = solve_linear_multi(std::move(a), std::move(rhs));
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = x.at(i, 0);
  return out;
}

}  // namespace manywalks
