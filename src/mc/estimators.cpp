#include "mc/estimators.hpp"

#include <cmath>
#include <memory>

#include "util/check.hpp"
#include "walk/block_engine.hpp"
#include "walk/sampling.hpp"

namespace manywalks {

McResult estimate_cover_time(const Graph& g, Vertex start, const McOptions& mc,
                             const CoverOptions& cover, ThreadPool* pool) {
  McOptions mc_planned = mc;
  CoverOptions cover_planned = cover;
  apply_thread_budget(1, pool, mc_planned, cover_planned);
  return run_monte_carlo(
      [&g, start, cover_planned](std::uint64_t, Rng& rng) {
        const CoverSample sample =
            sample_cover_time(g, start, rng, cover_planned);
        return TrialOutcome{static_cast<double>(sample.steps), !sample.covered};
      },
      mc_planned, pool);
}

McResult estimate_k_cover_time(const Graph& g, Vertex start, unsigned k,
                               const McOptions& mc, const CoverOptions& cover,
                               ThreadPool* pool) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  McOptions mc_planned = mc;
  CoverOptions cover_planned = cover;
  apply_thread_budget(k, pool, mc_planned, cover_planned);
  return run_monte_carlo(
      [&g, start, k, cover_planned](std::uint64_t, Rng& rng) {
        const CoverSample sample =
            sample_k_cover_time(g, start, k, rng, cover_planned);
        return TrialOutcome{static_cast<double>(sample.steps), !sample.covered};
      },
      mc_planned, pool);
}

McResult estimate_multi_cover_time(const Graph& g,
                                   std::span<const Vertex> starts,
                                   const McOptions& mc,
                                   const CoverOptions& cover,
                                   ThreadPool* pool) {
  std::vector<Vertex> starts_copy(starts.begin(), starts.end());
  McOptions mc_planned = mc;
  CoverOptions cover_planned = cover;
  apply_thread_budget(starts_copy.size(), pool, mc_planned, cover_planned);
  return run_monte_carlo(
      [&g, starts_copy, cover_planned](std::uint64_t, Rng& rng) {
        const CoverSample sample =
            sample_multi_cover_time(g, starts_copy, rng, cover_planned);
        return TrialOutcome{static_cast<double>(sample.steps), !sample.covered};
      },
      mc_planned, pool);
}

McResult estimate_hitting_time(const Graph& g, Vertex from, Vertex to,
                               const McOptions& mc, const HitOptions& hit,
                               ThreadPool* pool) {
  return run_monte_carlo(
      [&g, from, to, &hit](std::uint64_t, Rng& rng) {
        const HitSample sample = sample_hitting_time(g, from, to, rng, hit);
        return TrialOutcome{static_cast<double>(sample.steps), !sample.hit};
      },
      mc, pool);
}

MaxCoverEstimate estimate_max_cover_time(const Graph& g,
                                         std::span<const Vertex> starts,
                                         const McOptions& mc,
                                         const CoverOptions& cover,
                                         ThreadPool* pool) {
  MW_REQUIRE(!starts.empty(), "need at least one candidate start");
  MaxCoverEstimate best;
  bool first = true;
  std::uint64_t salt = 0;
  for (Vertex start : starts) {
    McOptions per_start = mc;
    per_start.seed = mix64(mc.seed ^ (0xc0ffee + salt++));
    McResult result = estimate_cover_time(g, start, per_start, cover, pool);
    if (first || result.ci.mean > best.result.ci.mean) {
      best.result = std::move(result);
      best.argmax_start = start;
      first = false;
    }
  }
  return best;
}

SpeedupEstimate combine_speedup(unsigned k, const McResult& single,
                                const McResult& multi) {
  MW_REQUIRE(multi.ci.mean > 0.0, "k-walk cover estimate must be positive");
  MW_REQUIRE(single.ci.mean > 0.0, "1-walk cover estimate must be positive");
  SpeedupEstimate est;
  est.k = k;
  est.single = single;
  est.multi = multi;
  est.speedup = single.ci.mean / multi.ci.mean;
  const double rel1 = single.ci.half_width / single.ci.mean;
  const double relk = multi.ci.half_width / multi.ci.mean;
  est.half_width = est.speedup * std::sqrt(rel1 * rel1 + relk * relk);
  // Censored inputs mean both means are lower bounds, so their ratio is
  // biased in an unknown direction; carry the count so every renderer
  // flags the estimate instead of presenting it as clean.
  est.censored = single.censored + multi.censored;
  return est;
}

std::vector<double> collect_cover_samples(const Graph& g, Vertex start,
                                          unsigned k, std::uint64_t trials,
                                          std::uint64_t seed,
                                          const CoverOptions& cover,
                                          ThreadPool* pool) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  MW_REQUIRE(trials >= 1, "need at least one trial");
  std::unique_ptr<ThreadPool> local_pool;
  if (pool == nullptr) {
    local_pool = std::make_unique<ThreadPool>(0);
    pool = local_pool.get();
  }
  std::vector<double> samples(trials, 0.0);
  parallel_for(*pool, 0, trials, [&](std::uint64_t i) {
    Rng rng = make_trial_rng(seed, i);
    const CoverSample sample = sample_k_cover_time(g, start, k, rng, cover);
    samples[i] = static_cast<double>(sample.steps);
  });
  return samples;
}

McResult estimate_stationary_start_cover(const Graph& g, unsigned k,
                                         const McOptions& mc,
                                         const CoverOptions& cover,
                                         ThreadPool* pool) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  McOptions mc_planned = mc;
  CoverOptions cover_planned = cover;
  apply_thread_budget(k, pool, mc_planned, cover_planned);
  return run_monte_carlo(
      [&g, k, cover_planned](std::uint64_t, Rng& rng) {
        const std::vector<Vertex> starts = sample_stationary_starts(g, k, rng);
        const CoverSample sample =
            sample_multi_cover_time(g, starts, rng, cover_planned);
        return TrialOutcome{static_cast<double>(sample.steps), !sample.covered};
      },
      mc_planned, pool);
}

SpeedupEstimate estimate_speedup(const Graph& g, Vertex start, unsigned k,
                                 const McOptions& mc, const CoverOptions& cover,
                                 ThreadPool* pool) {
  const unsigned ks[1] = {k};
  return estimate_speedup_curve(g, start, ks, mc, cover, pool).front();
}

std::vector<SpeedupEstimate> estimate_speedup_curve(
    const Graph& g, Vertex start, std::span<const unsigned> ks,
    const McOptions& mc, const CoverOptions& cover, ThreadPool* pool) {
  // One implementation for both paths: the CSR substrate consumes the
  // exact draw sequence of the historical Graph path (same per-k seed
  // constants, same trial streams), so delegating changes no number —
  // proven by tests/test_substrate.cpp SpeedupCurveMatchesGraphEstimatorSeeding.
  return estimate_speedup_curve_to_target(CsrSubstrate(g), start,
                                          g.num_vertices(), ks, mc, cover,
                                          pool);
}

void BlockedRunTotals::absorb(const BlockWalkEngine& engine) {
  const ExtentCache::Stats& cache = engine.cache_stats();
  const BlockWalkEngine::Stats& run = engine.stats();
  ++trials;
  cache_loads += cache.loads;
  cache_hits += cache.hits;
  cache_evictions += cache.evictions;
  cache_bytes_loaded += cache.bytes_loaded;
  horizons += run.horizons;
  bucket_passes += run.bucket_passes;
  peak_trial_bytes_loaded =
      std::max(peak_trial_bytes_loaded, cache.bytes_loaded);
}

McResult estimate_cover_to_target_blocked(BlockWalkEngine& engine,
                                          Vertex start, unsigned k,
                                          Vertex target, const McOptions& mc,
                                          const CoverOptions& cover,
                                          BlockedRunTotals* totals) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  // The engine (and its extent cache) is shared across trials, so the
  // trial loop must stay on the caller: kLanes with no pool is
  // run_monte_carlo's serial index-ordered loop — the same per-trial
  // streams and reduction order as every other mode, so the estimate is
  // bit-identical to the in-core path.
  McOptions mc_serial = mc;
  mc_serial.parallelism = McParallelism::kLanes;
  CoverOptions cover_run = resolve_sampler_mode(cover);
  cover_run.lane_shards = 0;
  cover_run.shard_pool = nullptr;
  return run_monte_carlo(
      [&engine, start, k, target, cover_run, totals](std::uint64_t, Rng& rng) {
        const std::vector<Vertex> starts(static_cast<std::size_t>(k), start);
        engine.reset(starts);
        // Counters restart per trial so run summaries report per-trial
        // aggregates instead of one monotone series; walking never reads
        // them, so this cannot perturb the v4 schedule.
        engine.reset_stats();
        const CoverSample sample =
            engine.run_until_visited(target, rng, cover_run);
        if (totals != nullptr) totals->absorb(engine);
        return TrialOutcome{static_cast<double>(sample.steps), !sample.covered};
      },
      mc_serial, nullptr);
}

std::vector<SpeedupEstimate> estimate_speedup_curve_to_target_blocked(
    BlockWalkEngine& engine, Vertex start, Vertex target,
    std::span<const unsigned> ks, const McOptions& mc,
    const CoverOptions& cover, BlockedRunTotals* totals) {
  MW_REQUIRE(!ks.empty(), "need at least one k");
  McOptions base = mc;
  base.seed = mix64(mc.seed ^ 0x1a1cULL);  // distinct stream for the baseline
  const McResult single = estimate_cover_to_target_blocked(
      engine, start, 1, target, base, cover, totals);

  std::vector<SpeedupEstimate> curve;
  curve.reserve(ks.size());
  for (unsigned k : ks) {
    MW_REQUIRE(k >= 1, "k must be >= 1");
    McOptions per_k = mc;
    per_k.seed = mix64(mc.seed ^ (0xbeef00ULL + k));
    const McResult multi =
        k == 1 ? single
               : estimate_cover_to_target_blocked(engine, start, k, target,
                                                  per_k, cover, totals);
    SpeedupEstimate est = combine_speedup(k, single, multi);
    if (k == 1) {
      // Same convention as the in-core curve: S^1 is exactly 1 with no
      // uncertainty and never flagged.
      est.half_width = 0.0;
      est.censored = 0;
    }
    curve.push_back(est);
  }
  return curve;
}

}  // namespace manywalks
