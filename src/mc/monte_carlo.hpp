// Deterministic parallel Monte-Carlo driver.
//
// Reproducibility contract: trial i under master seed s always uses
// make_trial_rng(s, i), and results are reduced in trial-index order, so
// estimates are bit-identical regardless of thread count or scheduling.
#pragma once

#include <cstdint>
#include <functional>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace manywalks {

/// Where one estimate spends its thread budget. Neither choice changes any
/// estimated number: trials always reduce in index order under per-trial
/// streams, and lane sharding is result-invariant (determinism contract
/// v3) — the policy is purely about where the parallel speed-up comes from.
enum class McParallelism : std::uint8_t {
  /// Independent trials fan out across the pool (the classic mode); the
  /// walk engine inside each trial stays serial.
  kTrials,
  /// Trials run one at a time on the calling thread and the pool is handed
  /// DOWN to the sharded walk engine, which splits each trial's k lanes
  /// across the team — the mode for few long trials (one giant cover run
  /// saturates the machine instead of leaving it idle).
  kLanes,
};

/// The thread-budget arbitration: many short trials keep trial-level
/// parallelism (it already saturates the pool with zero synchronization);
/// few long trials at large k hand the pool to the lane-sharded engine.
/// Pure in its arguments, so call sites can report the decision.
McParallelism choose_parallelism(std::uint64_t max_trials, std::size_t lanes,
                                 unsigned pool_threads) noexcept;

/// "trials" / "lanes" — the sink-metadata spelling of the policy decision.
const char* parallelism_name(McParallelism parallelism) noexcept;

struct McOptions {
  std::uint64_t min_trials = 16;
  std::uint64_t max_trials = 512;
  /// Adaptive stop: finish once the CI half-width is below this fraction of
  /// the mean (checked batch-wise after min_trials).
  double target_rel_half_width = 0.05;
  double confidence = 0.95;
  std::uint64_t seed = 0x5eedULL;
  /// Worker threads; 0 = hardware concurrency. Only used when no external
  /// pool is supplied.
  unsigned threads = 0;
  /// Thread-budget mode (normally set by the estimators via
  /// apply_thread_budget, not by hand). Under kLanes the trial loop runs
  /// sequentially on the caller — same trial streams, same index-ordered
  /// reduction, bit-identical estimate — and the pool flows to the engine
  /// through CoverOptions::shard_pool instead.
  McParallelism parallelism = McParallelism::kTrials;
};

struct McResult {
  ConfidenceInterval ci;
  RunningStats stats;
  /// CI target reached before max_trials. NEVER true when any trial was
  /// censored: a step-cap-truncated value makes the mean a lower bound, so
  /// a tight CI around it certifies nothing.
  bool target_met = false;
  /// Trials reporting a truncated value; when nonzero, ci.mean is a lower
  /// bound and downstream consumers (combine_speedup, the CLI sinks) flag
  /// the estimate instead of treating it as unbiased.
  std::uint64_t censored = 0;
  double seconds = 0.0;          ///< wall clock spent
};

/// One trial's report: `value` enters the estimate either way; `censored`
/// marks values truncated by a step cap (the mean is then a lower bound).
struct TrialOutcome {
  double value = 0.0;
  bool censored = false;
};

using TrialFn = std::function<TrialOutcome(std::uint64_t index, Rng& rng)>;

/// Runs trials in parallel batches until the CI target or max_trials.
/// If `pool` is null a private pool with `options.threads` workers is used.
McResult run_monte_carlo(const TrialFn& trial, const McOptions& options,
                         ThreadPool* pool = nullptr);

}  // namespace manywalks
