// Monte-Carlo estimators for the paper's quantities: C_i, C^k_i, h(u,v),
// and the speed-up S^k = C / C^k with propagated uncertainty.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "mc/monte_carlo.hpp"
#include "walk/cover.hpp"
#include "walk/hitting.hpp"

namespace manywalks {

/// Estimates the single-walk expected cover time C_start.
McResult estimate_cover_time(const Graph& g, Vertex start,
                             const McOptions& mc, const CoverOptions& cover = {},
                             ThreadPool* pool = nullptr);

/// Estimates the k-walk expected cover time C^k_start (k tokens at start).
McResult estimate_k_cover_time(const Graph& g, Vertex start, unsigned k,
                               const McOptions& mc,
                               const CoverOptions& cover = {},
                               ThreadPool* pool = nullptr);

/// Estimates the cover time of a k-walk with explicit starting vertices.
McResult estimate_multi_cover_time(const Graph& g,
                                   std::span<const Vertex> starts,
                                   const McOptions& mc,
                                   const CoverOptions& cover = {},
                                   ThreadPool* pool = nullptr);

/// Estimates h(from, to) for a single walk.
McResult estimate_hitting_time(const Graph& g, Vertex from, Vertex to,
                               const McOptions& mc, const HitOptions& hit = {},
                               ThreadPool* pool = nullptr);

/// C(G) = max_i C_i over the supplied candidate starts (each estimated
/// independently; returns the max and its argmax).
struct MaxCoverEstimate {
  McResult result;
  Vertex argmax_start = 0;
};
MaxCoverEstimate estimate_max_cover_time(const Graph& g,
                                         std::span<const Vertex> starts,
                                         const McOptions& mc,
                                         const CoverOptions& cover = {},
                                         ThreadPool* pool = nullptr);

/// A measured speed-up point S^k = Ĉ / Ĉ^k.
struct SpeedupEstimate {
  unsigned k = 1;
  McResult single;  ///< Ĉ (k = 1)
  McResult multi;   ///< Ĉ^k
  double speedup = 1.0;
  /// First-order propagated half-width:
  /// S * sqrt((δC/C)^2 + (δC^k/C^k)^2).
  double half_width = 0.0;
};

/// Estimates S^k at a single k (runs both the 1-walk and the k-walk).
SpeedupEstimate estimate_speedup(const Graph& g, Vertex start, unsigned k,
                                 const McOptions& mc,
                                 const CoverOptions& cover = {},
                                 ThreadPool* pool = nullptr);

/// Estimates S^k across several k, reusing one k=1 baseline estimate.
std::vector<SpeedupEstimate> estimate_speedup_curve(
    const Graph& g, Vertex start, std::span<const unsigned> ks,
    const McOptions& mc, const CoverOptions& cover = {},
    ThreadPool* pool = nullptr);

/// Combines two cover-time estimates into a speed-up with propagated error.
SpeedupEstimate combine_speedup(unsigned k, const McResult& single,
                                const McResult& multi);

/// Raw k-walk cover-time samples (k tokens from `start`), one value per
/// trial, in trial order. For distribution/concentration studies
/// (paper Thm 17: tau/C -> 1 when C/h_max -> infinity).
std::vector<double> collect_cover_samples(const Graph& g, Vertex start,
                                          unsigned k, std::uint64_t trials,
                                          std::uint64_t seed,
                                          const CoverOptions& cover = {},
                                          ThreadPool* pool = nullptr);

/// k-walk cover time with the k starting vertices RE-DRAWN each trial from
/// the stationary distribution — the setting of the paper's §1.1
/// comparison with Broder et al. (expected O(m^2 log^3 n / k^2)) and of
/// the Lemma 19 remark (O(n log n / k) on expanders).
McResult estimate_stationary_start_cover(const Graph& g, unsigned k,
                                         const McOptions& mc,
                                         const CoverOptions& cover = {},
                                         ThreadPool* pool = nullptr);

}  // namespace manywalks
