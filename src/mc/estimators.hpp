// Monte-Carlo estimators for the paper's quantities: C_i, C^k_i, h(u,v),
// and the speed-up S^k = C / C^k with propagated uncertainty.
//
// RNG mode: every cover estimator funnels through the cover.hpp samplers,
// which resolve an unspecified CoverOptions::rng_mode to kLane
// (determinism contract v2) — so estimates are sampled by the pipelined
// lane kernel unless the caller pins RngMode::kSharedLegacy. Either way
// trial i under master seed s sees make_trial_rng(s, i) and results
// reduce in trial order, so estimates stay bit-identical across thread
// counts; lane mode additionally derives per-token streams from one draw
// of each trial stream.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/substrate.hpp"
#include "mc/monte_carlo.hpp"
#include "walk/cover.hpp"
#include "walk/hitting.hpp"

namespace manywalks {

/// The thread-budget arbitration applied by every cover estimator before it
/// enters run_monte_carlo: decides once per estimate whether the pool fans
/// out over trials (kTrials) or is handed down to the lane-sharded engine
/// (kLanes), and writes the decision into the option COPIES the estimate
/// will run with. An explicit CoverOptions::lane_shards pins lane mode;
/// otherwise choose_parallelism decides from the trial budget, the lane
/// count, and the pool width. Returns the decision so call sites can report
/// it. The estimators own CoverOptions::shard_pool — it is overwritten here
/// (pool under kLanes, null under kTrials); callers wanting manual control
/// of the engine's pool should use the cover.hpp samplers directly.
inline McParallelism apply_thread_budget(std::size_t lanes, ThreadPool* pool,
                                         McOptions& mc, CoverOptions& cover) {
  const unsigned pool_threads = pool != nullptr ? pool->size() : 0;
  const McParallelism mode =
      cover.lane_shards > 0
          ? McParallelism::kLanes
          : choose_parallelism(mc.max_trials, lanes, pool_threads);
  mc.parallelism = mode;
  cover.shard_pool = mode == McParallelism::kLanes ? pool : nullptr;
  return mode;
}

/// Estimates the single-walk expected cover time C_start.
McResult estimate_cover_time(const Graph& g, Vertex start,
                             const McOptions& mc, const CoverOptions& cover = {},
                             ThreadPool* pool = nullptr);

/// Estimates the k-walk expected cover time C^k_start (k tokens at start).
McResult estimate_k_cover_time(const Graph& g, Vertex start, unsigned k,
                               const McOptions& mc,
                               const CoverOptions& cover = {},
                               ThreadPool* pool = nullptr);

/// Estimates the cover time of a k-walk with explicit starting vertices.
McResult estimate_multi_cover_time(const Graph& g,
                                   std::span<const Vertex> starts,
                                   const McOptions& mc,
                                   const CoverOptions& cover = {},
                                   ThreadPool* pool = nullptr);

/// Estimates h(from, to) for a single walk.
McResult estimate_hitting_time(const Graph& g, Vertex from, Vertex to,
                               const McOptions& mc, const HitOptions& hit = {},
                               ThreadPool* pool = nullptr);

/// C(G) = max_i C_i over the supplied candidate starts (each estimated
/// independently; returns the max and its argmax).
struct MaxCoverEstimate {
  McResult result;
  Vertex argmax_start = 0;
};
MaxCoverEstimate estimate_max_cover_time(const Graph& g,
                                         std::span<const Vertex> starts,
                                         const McOptions& mc,
                                         const CoverOptions& cover = {},
                                         ThreadPool* pool = nullptr);

/// A measured speed-up point S^k = Ĉ / Ĉ^k.
struct SpeedupEstimate {
  unsigned k = 1;
  McResult single;  ///< Ĉ (k = 1)
  McResult multi;   ///< Ĉ^k
  double speedup = 1.0;
  /// First-order propagated half-width:
  /// S * sqrt((δC/C)^2 + (δC^k/C^k)^2).
  double half_width = 0.0;
  /// Step-cap-censored trials feeding either side. When nonzero the ratio
  /// divides biased (lower-bound) means, so it is flagged everywhere it is
  /// rendered instead of being reported as a clean estimate.
  std::uint64_t censored = 0;
};

/// Estimates S^k at a single k (runs both the 1-walk and the k-walk).
SpeedupEstimate estimate_speedup(const Graph& g, Vertex start, unsigned k,
                                 const McOptions& mc,
                                 const CoverOptions& cover = {},
                                 ThreadPool* pool = nullptr);

/// Estimates S^k across several k, reusing one k=1 baseline estimate.
std::vector<SpeedupEstimate> estimate_speedup_curve(
    const Graph& g, Vertex start, std::span<const unsigned> ks,
    const McOptions& mc, const CoverOptions& cover = {},
    ThreadPool* pool = nullptr);

/// Combines two cover-time estimates into a speed-up with propagated error.
SpeedupEstimate combine_speedup(unsigned k, const McResult& single,
                                const McResult& multi);

/// Raw k-walk cover-time samples (k tokens from `start`), one value per
/// trial, in trial order. For distribution/concentration studies
/// (paper Thm 17: tau/C -> 1 when C/h_max -> infinity).
std::vector<double> collect_cover_samples(const Graph& g, Vertex start,
                                          unsigned k, std::uint64_t trials,
                                          std::uint64_t seed,
                                          const CoverOptions& cover = {},
                                          ThreadPool* pool = nullptr);

/// k-walk cover time with the k starting vertices RE-DRAWN each trial from
/// the stationary distribution — the setting of the paper's §1.1
/// comparison with Broder et al. (expected O(m^2 log^3 n / k^2)) and of
/// the Lemma 19 remark (O(n log n / k) on expanders).
McResult estimate_stationary_start_cover(const Graph& g, unsigned k,
                                         const McOptions& mc,
                                         const CoverOptions& cover = {},
                                         ThreadPool* pool = nullptr);

// --- substrate overloads -----------------------------------------------------
//
// The same estimators over an implicit (or CSR-wrapping) substrate, plus
// the fixed-target variants the giant-graph experiments are built on:
// full cover is Θ(n²) on a 10^8-cycle, but the time for k walks to visit a
// fixed number of distinct vertices is cheap to sample and shows the same
// speed-up regimes (the paper's own cycle argument, Lemmas 21/22, bounds
// exactly the spread of the k walks).

/// Estimates the expected rounds for k tokens started at `start` to visit
/// `target` distinct vertices (target = num_vertices() → C^k_start).
template <Substrate S>
McResult estimate_cover_to_target(const S& substrate, Vertex start, unsigned k,
                                  Vertex target, const McOptions& mc,
                                  const CoverOptions& cover = {},
                                  ThreadPool* pool = nullptr) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  McOptions mc_planned = mc;
  CoverOptions cover_planned = cover;
  apply_thread_budget(k, pool, mc_planned, cover_planned);
  return run_monte_carlo(
      [substrate, start, k, target, cover_planned](std::uint64_t, Rng& rng) {
        std::vector<Vertex> starts(k, start);
        const CoverSample sample =
            sample_cover_to_target(substrate, starts, target, rng, cover_planned);
        return TrialOutcome{static_cast<double>(sample.steps), !sample.covered};
      },
      mc_planned, pool);
}

template <Substrate S>
McResult estimate_cover_time(const S& substrate, Vertex start,
                             const McOptions& mc, const CoverOptions& cover = {},
                             ThreadPool* pool = nullptr) {
  return estimate_cover_to_target(substrate, start, 1,
                                  substrate.num_vertices(), mc, cover, pool);
}

template <Substrate S>
McResult estimate_k_cover_time(const S& substrate, Vertex start, unsigned k,
                               const McOptions& mc,
                               const CoverOptions& cover = {},
                               ThreadPool* pool = nullptr) {
  return estimate_cover_to_target(substrate, start, k,
                                  substrate.num_vertices(), mc, cover, pool);
}

/// Estimates S^k = T¹(target)/T^k(target) across several k, reusing one
/// k = 1 baseline. Mirrors the Graph overload's seeding scheme exactly
/// (baseline stream mix64(seed ^ 0x1a1c), per-k mix64(seed ^ (0xbeef00+k))).
template <Substrate S>
std::vector<SpeedupEstimate> estimate_speedup_curve_to_target(
    const S& substrate, Vertex start, Vertex target,
    std::span<const unsigned> ks, const McOptions& mc,
    const CoverOptions& cover = {}, ThreadPool* pool = nullptr) {
  MW_REQUIRE(!ks.empty(), "need at least one k");
  std::unique_ptr<ThreadPool> local_pool;
  if (pool == nullptr) {
    local_pool = std::make_unique<ThreadPool>(mc.threads);
    pool = local_pool.get();
  }
  McOptions base = mc;
  base.seed = mix64(mc.seed ^ 0x1a1cULL);  // distinct stream for the baseline
  const McResult single =
      estimate_cover_to_target(substrate, start, 1, target, base, cover, pool);

  std::vector<SpeedupEstimate> curve;
  curve.reserve(ks.size());
  for (unsigned k : ks) {
    MW_REQUIRE(k >= 1, "k must be >= 1");
    McOptions per_k = mc;
    per_k.seed = mix64(mc.seed ^ (0xbeef00ULL + k));
    const McResult multi =
        k == 1 ? single
               : estimate_cover_to_target(substrate, start, k, target, per_k,
                                          cover, pool);
    SpeedupEstimate est = combine_speedup(k, single, multi);
    if (k == 1) {
      // Numerator and denominator are the same estimate: S^1 is exactly 1
      // with no uncertainty (perfectly correlated errors) — and exactly 1
      // even when the baseline was censored, so the ratio is not flagged
      // (the T^1 column still is).
      est.half_width = 0.0;
      est.censored = 0;
    }
    curve.push_back(est);
  }
  return curve;
}

template <Substrate S>
std::vector<SpeedupEstimate> estimate_speedup_curve(
    const S& substrate, Vertex start, std::span<const unsigned> ks,
    const McOptions& mc, const CoverOptions& cover = {},
    ThreadPool* pool = nullptr) {
  return estimate_speedup_curve_to_target(substrate, start,
                                          substrate.num_vertices(), ks, mc,
                                          cover, pool);
}

// --- out-of-core (block-scheduled) overloads ---------------------------------
//
// The same fixed-target estimators over a shared BlockWalkEngine
// (walk/block_engine.hpp) instead of a substrate. One engine — and so
// one extent cache — serves every trial, which forces the trial loop
// serial: the options are pinned to kLanes parallelism with no pool
// (run_monte_carlo's serial caller loop) and the per-trial streams,
// reduction order, and seeding scheme are exactly the substrate
// overloads', so for a given (graph, seed) the estimates are
// BIT-IDENTICAL to the in-core path at any memory budget (determinism
// contract v4).

class BlockWalkEngine;

/// Engine/cache activity aggregated across a blocked run. Every trial
/// starts from zeroed counters (BlockWalkEngine::reset_stats), so these
/// are sums of independent per-trial readings — not points on one
/// monotone series — and the peak field is a true per-trial maximum.
/// Counters never feed back into walking, so resetting them is inert.
struct BlockedRunTotals {
  std::uint64_t trials = 0;
  std::uint64_t cache_loads = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes_loaded = 0;
  std::uint64_t horizons = 0;
  std::uint64_t bucket_passes = 0;
  std::uint64_t peak_trial_bytes_loaded = 0;  // heaviest single trial

  /// Folds one finished trial's counters in (call before the next reset).
  void absorb(const BlockWalkEngine& engine);
};

/// Expected rounds for k tokens at `start` to visit `target` distinct
/// vertices, sampled through the out-of-core engine. Engine counters are
/// reset at each trial start; pass `totals` to collect the per-trial
/// aggregate for a run summary.
McResult estimate_cover_to_target_blocked(BlockWalkEngine& engine,
                                          Vertex start, unsigned k,
                                          Vertex target, const McOptions& mc,
                                          const CoverOptions& cover = {},
                                          BlockedRunTotals* totals = nullptr);

/// S^k curve with one reused k = 1 baseline; mirrors
/// estimate_speedup_curve_to_target's seeding exactly (baseline stream
/// mix64(seed ^ 0x1a1c), per-k mix64(seed ^ (0xbeef00+k))).
std::vector<SpeedupEstimate> estimate_speedup_curve_to_target_blocked(
    BlockWalkEngine& engine, Vertex start, Vertex target,
    std::span<const unsigned> ks, const McOptions& mc,
    const CoverOptions& cover = {}, BlockedRunTotals* totals = nullptr);

}  // namespace manywalks
