#include "mc/monte_carlo.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "walk/cover_types.hpp"

namespace manywalks {

McParallelism choose_parallelism(std::uint64_t max_trials, std::size_t lanes,
                                 unsigned pool_threads) noexcept {
  // A team of one worker plus the caller gains as much from trial
  // parallelism as from sharding, without any barrier; below that there is
  // no team at all.
  if (pool_threads <= 1) return McParallelism::kTrials;
  // Enough trials to keep every executor busy for 2+ batches: the
  // embarrassing parallelism wins.
  if (max_trials >= 2ULL * (pool_threads + 1)) return McParallelism::kTrials;
  // Few long trials: shard lanes if k warrants a real team.
  if (auto_lane_shards(lanes) >= 2) return McParallelism::kLanes;
  return McParallelism::kTrials;
}

const char* parallelism_name(McParallelism parallelism) noexcept {
  return parallelism == McParallelism::kLanes ? "lanes" : "trials";
}

McResult run_monte_carlo(const TrialFn& trial, const McOptions& options,
                         ThreadPool* pool) {
  MW_REQUIRE(trial != nullptr, "null trial function");
  MW_REQUIRE(options.min_trials >= 1, "min_trials must be >= 1");
  MW_REQUIRE(options.max_trials >= options.min_trials,
             "max_trials must be >= min_trials");
  MW_REQUIRE(options.target_rel_half_width > 0.0,
             "target_rel_half_width must be positive");

  const bool lane_mode = options.parallelism == McParallelism::kLanes;
  std::unique_ptr<ThreadPool> local_pool;
  if (pool == nullptr && !lane_mode) {
    local_pool = std::make_unique<ThreadPool>(options.threads);
    pool = local_pool.get();
  }

  Stopwatch watch;
  McResult result;
  std::vector<TrialOutcome> batch_values;

  // The Monte-Carlo loop runs on the coordinating thread; between batches
  // every worker is quiesced (parallel_for is a rendezvous), so registry
  // writes and scratch drains here are single-writer by construction.
  obs::RunObserver* const o = obs::observer();
  obs::MetricsRegistry* const metrics = o != nullptr ? o->metrics : nullptr;
  obs::TraceWriter* const trace = o != nullptr ? o->trace : nullptr;
  if (o != nullptr && o->progress != nullptr) {
    // Experiments run several Monte-Carlo estimates back to back; the
    // heartbeat's done/total is cumulative, so extend the total by this
    // run's budget on top of the trials already reduced. Early CI stops
    // leave it an upper bound until the next run resets it.
    const std::uint64_t reduced =
        metrics != nullptr ? metrics->value(obs::Metric::kTrialsDone) : 0;
    o->progress->set_total_trials(reduced + options.max_trials);
  }

  std::uint64_t done = 0;
  while (done < options.max_trials) {
    // Batch size: the first batch covers min_trials so the CI is
    // meaningful at the first check; afterwards batches grow geometrically
    // (each rendezvous doubles the completed-trial count, floored at
    // enough work to keep every worker busy, capped by the remaining
    // budget). Cheap small-n trials would otherwise pay a full
    // parallel_for submit + condition-variable rendezvous per ~8 trials.
    const std::uint64_t floor_batch =
        lane_mode ? 8
                  : std::max<std::uint64_t>(2ULL * (pool->size() + 1), 8);
    const std::uint64_t want =
        done == 0 ? options.min_trials : std::max(floor_batch, done);
    const std::uint64_t batch = std::min(want, options.max_trials - done);
    batch_values.assign(batch, TrialOutcome{});
    if (metrics != nullptr) metrics->add(obs::Metric::kTrialsStarted, batch);
    if (lane_mode) {
      // Lane mode: the pool belongs to the sharded engine inside each
      // trial; the trial loop itself stays on the caller. Same per-trial
      // streams, same order — the estimate is bit-identical to kTrials.
      for (std::uint64_t i = 0; i < batch; ++i) {
        const std::uint64_t index = done + i;
        obs::TraceSpan span(trace, "trial", "mc");
        span.set_args("\"trial\":" + std::to_string(index));
        Rng rng = make_trial_rng(options.seed, index);
        batch_values[i] = trial(index, rng);
      }
    } else {
      // Trial-parallel batches overlap on the pool; per-trial spans would
      // need cross-thread trace writes, so the span covers the batch.
      obs::TraceSpan span(trace, "batch", "mc");
      span.set_args("\"trial_begin\":" + std::to_string(done) +
                    ",\"trials\":" + std::to_string(batch));
      parallel_for(
          *pool, 0, batch,
          [&](std::uint64_t i) {
            const std::uint64_t index = done + i;
            Rng rng = make_trial_rng(options.seed, index);
            batch_values[i] = trial(index, rng);
          },
          /*grain=*/1);
    }
    // Index-ordered reduction keeps the result independent of scheduling
    // AND of batch boundaries: stats absorb trial 0, 1, 2, ... in order no
    // matter how the batches were cut.
    for (const TrialOutcome& outcome : batch_values) {
      result.stats.add(outcome.value);
      if (outcome.censored) ++result.censored;
      if (metrics != nullptr) {
        metrics->add(obs::Metric::kTrialsDone, 1);
        if (outcome.censored) metrics->add(obs::Metric::kTrialsCensored, 1);
        metrics->observe(obs::Metric::kTrialRounds,
                         static_cast<std::uint64_t>(outcome.value));
      }
    }
    done += batch;
    if (metrics != nullptr) obs::drain_thread_counters(*metrics);
    if (o != nullptr && o->progress != nullptr) o->progress->tick();

    if (done >= options.min_trials) {
      result.ci = mean_confidence_interval(result.stats, options.confidence);
      // A censored (step-cap-truncated) trial makes the mean a lower bound
      // and the CI meaningless as a precision certificate: never stop
      // early on it and never report the target as met (the old behavior
      // silently biased every estimate whose cap ever fired).
      if (result.censored == 0 &&
          result.ci.relative_half_width() <= options.target_rel_half_width) {
        result.target_met = true;
        break;
      }
    }
  }
  result.ci = mean_confidence_interval(result.stats, options.confidence);
  result.target_met =
      result.censored == 0 &&
      result.ci.relative_half_width() <= options.target_rel_half_width;
  result.seconds = watch.seconds();
  return result;
}

}  // namespace manywalks
