// Umbrella header: the public API of the manywalks library.
//
// Include this for everything, or pick the specific headers:
//   graph/…   graph type, generators, properties, I/O
//   linalg/…  Markov operators, mixing time, spectra
//   theory/…  closed forms, paper bounds, exact oracles
//   walk/…    the simulation engine
//   mc/…      Monte-Carlo estimation
//   core/…    paper-facing experiments (families, profiles, regimes)
#pragma once

#include "core/analyzer.hpp"
#include "core/experiments.hpp"
#include "core/families.hpp"
#include "core/regime.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "linalg/dense.hpp"
#include "linalg/markov.hpp"
#include "linalg/spectral.hpp"
#include "mc/estimators.hpp"
#include "mc/monte_carlo.hpp"
#include "theory/bounds.hpp"
#include "theory/closed_forms.hpp"
#include "theory/exact.hpp"
#include "theory/finite_time.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "walk/cover.hpp"
#include "walk/engine.hpp"
#include "walk/hitting.hpp"
#include "walk/sampling.hpp"
#include "walk/visit_tracker.hpp"
#include "walk/walker.hpp"
