// Exact Markov-chain computations used as ground truth: hitting times via
// linear solves, cover times via a DP over visited subsets, the exact
// k-walk cover time on tiny graphs (the oracle for the simulation engine),
// and effective resistances (commute-time identity).
//
// Everything here is dense/exponential and intended for oracle-scale
// graphs; the guards state the limits explicitly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/dense.hpp"

namespace manywalks {

/// Exact expected hitting times h(v -> target) for all v, by solving the
/// first-step system (I - Q) h = 1 on V \ {target}. O(n^3); requires a
/// connected graph.
std::vector<double> hitting_times_to(const Graph& g, Vertex target);

/// All-pairs hitting times via the fundamental matrix
/// Z = (I - P + 1 pi^T)^{-1}:  h(i, j) = (Z(j,j) - Z(i,j)) / pi(j).
/// One O(n^3) inversion for all n^2 values; valid for any connected graph
/// (including periodic chains). Entry (i,i) is 0.
DenseMatrix hitting_time_matrix(const Graph& g);

struct HittingExtremes {
  double h_max = 0.0;
  double h_min = 0.0;
  Vertex argmax_from = 0;
  Vertex argmax_to = 0;
};

/// Max/min hitting times over ordered pairs of distinct vertices.
HittingExtremes hitting_extremes(const DenseMatrix& hitting_matrix);
HittingExtremes hitting_extremes(const Graph& g);

/// Exact expected cover time of a single walk from `start`, by dynamic
/// programming over visited subsets (one |S| x |S| solve per subset).
/// Requires n <= 16 (2^n subsets); ~40M flops at the limit.
double exact_cover_time(const Graph& g, Vertex start);

/// First and second moments of the cover time.
struct CoverMoments {
  double mean = 0.0;
  double variance = 0.0;
  /// Coefficient of variation sqrt(variance)/mean (0 for deterministic
  /// cover, e.g. K_2). The Aldous concentration theorem (paper Thm 17)
  /// says this tends to 0 exactly when C/h_max -> infinity.
  double coefficient_of_variation() const;
};

/// Exact mean AND variance of the cover time from `start`, by propagating
/// second moments through the same visited-subset DP (two solves per
/// subset). Requires n <= 16.
CoverMoments exact_cover_time_moments(const Graph& g, Vertex start);

/// Exact expected cover time of a k-walk from the given starting vertices
/// (tokens move simultaneously each round; round count as in
/// sample_multi_cover_time). State space is |S|^k per visited subset S —
/// the per-subset system size is capped by `max_states_per_system`
/// (default 729 = 3^6; e.g. n=8 with k=2, or n=6 with k=3).
double exact_k_cover_time(const Graph& g, std::span<const Vertex> starts,
                          std::size_t max_states_per_system = 729);

/// Exact expected rounds for a k-walk from `starts` until ANY token stands
/// on `target` (the pursuit/search quantity of sample_multi_hitting_time).
/// One dense solve over the n^k product-chain states with the target made
/// absorbing; n^k is capped by `max_states`.
double exact_k_hitting_time(const Graph& g, std::span<const Vertex> starts,
                            Vertex target, std::size_t max_states = 729);

/// Effective resistance between u and v with every non-loop edge a unit
/// resistor (parallel edges in parallel). Satisfies the commute identity
/// h(u,v) + h(v,u) = num_arcs() * R_eff(u,v).
double effective_resistance(const Graph& g, Vertex u, Vertex v);

}  // namespace manywalks
