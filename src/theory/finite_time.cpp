#include "theory/finite_time.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace manywalks {

std::vector<double> visit_probability_within(const Graph& g, Vertex target,
                                             std::uint64_t t) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(target < n, "target out of range");
  MW_REQUIRE(g.num_vertices() > 0 && g.min_degree() > 0,
             "walk needs positive degrees");

  // survival[u] = Pr[walk from u has NOT visited target within the steps
  // evolved so far]; the target row is pinned to 0.
  std::vector<double> survival(n, 1.0);
  survival[target] = 0.0;
  std::vector<double> next(n, 0.0);
  for (std::uint64_t step = 0; step < t; ++step) {
    for (Vertex u = 0; u < n; ++u) {
      if (u == target) {
        next[u] = 0.0;
        continue;
      }
      double acc = 0.0;
      for (Vertex w : g.neighbors(u)) acc += survival[w];
      next[u] = acc / static_cast<double>(g.degree(u));
    }
    survival.swap(next);
  }
  std::vector<double> visit(n);
  for (Vertex u = 0; u < n; ++u) visit[u] = 1.0 - survival[u];
  return visit;
}

PairVisitProbability min_visit_probability_within(const Graph& g,
                                                  std::uint64_t t) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(n >= 2, "need at least two vertices");
  PairVisitProbability best;
  best.probability = 2.0;  // above any probability
  for (Vertex target = 0; target < n; ++target) {
    const auto visit = visit_probability_within(g, target, t);
    for (Vertex u = 0; u < n; ++u) {
      if (u == target) continue;
      if (visit[u] < best.probability) {
        best.probability = visit[u];
        best.from = u;
        best.to = target;
      }
    }
  }
  return best;
}

double lemma16_cover_probability(double p_c, double p_h, unsigned k,
                                 unsigned ell) {
  MW_REQUIRE(p_c >= 0.0 && p_c <= 1.0, "p_c must be a probability");
  MW_REQUIRE(p_h >= 0.0 && p_h <= 1.0, "p_h must be a probability");
  MW_REQUIRE(k >= 1, "k must be >= 1");
  MW_REQUIRE(ell >= 1, "ell must be >= 1");
  const double miss = std::pow(1.0 - p_h, static_cast<double>(ell));
  return std::clamp(p_c * (1.0 - static_cast<double>(k) * miss), 0.0, 1.0);
}

}  // namespace manywalks
