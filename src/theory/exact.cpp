#include "theory/exact.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "graph/properties.hpp"
#include "linalg/markov.hpp"
#include "util/check.hpp"

namespace manywalks {

std::vector<double> hitting_times_to(const Graph& g, Vertex target) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(target < n, "hitting target out of range");
  MW_REQUIRE(is_connected(g), "hitting times need a connected graph");
  MW_REQUIRE(n >= 2, "need at least two vertices");

  // Index map skipping the absorbing target.
  std::vector<Vertex> to_sub(n, kInvalidVertex);
  std::vector<Vertex> from_sub;
  from_sub.reserve(n - 1);
  for (Vertex v = 0; v < n; ++v) {
    if (v == target) continue;
    to_sub[v] = static_cast<Vertex>(from_sub.size());
    from_sub.push_back(v);
  }

  const std::size_t m = n - 1;
  DenseMatrix a(m, m, 0.0);
  std::vector<double> b(m, 1.0);
  for (std::size_t r = 0; r < m; ++r) {
    const Vertex v = from_sub[r];
    a.at(r, r) += 1.0;
    const double w = 1.0 / static_cast<double>(g.degree(v));
    for (Vertex u : g.neighbors(v)) {
      if (u == target) continue;
      a.at(r, to_sub[u]) -= w;
    }
  }
  const std::vector<double> h_sub = solve_linear(std::move(a), std::move(b));
  std::vector<double> h(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) h[from_sub[r]] = h_sub[r];
  return h;
}

DenseMatrix hitting_time_matrix(const Graph& g) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(is_connected(g), "hitting times need a connected graph");
  MW_REQUIRE(n >= 2, "need at least two vertices");

  const std::vector<double> pi = stationary_distribution(g);
  // M = I - P + 1 pi^T  (nonsingular for irreducible chains).
  DenseMatrix m(n, n, 0.0);
  for (Vertex v = 0; v < n; ++v) {
    m.at(v, v) += 1.0;
    const double w = 1.0 / static_cast<double>(g.degree(v));
    for (Vertex u : g.neighbors(v)) m.at(v, u) -= w;
    for (Vertex u = 0; u < n; ++u) m.at(v, u) += pi[u];
  }
  const DenseMatrix z = solve_linear_multi(std::move(m), DenseMatrix::identity(n));

  DenseMatrix h(n, n, 0.0);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) {
      if (i == j) continue;
      h.at(i, j) = (z.at(j, j) - z.at(i, j)) / pi[j];
    }
  }
  return h;
}

HittingExtremes hitting_extremes(const DenseMatrix& hitting_matrix) {
  const std::size_t n = hitting_matrix.rows();
  MW_REQUIRE(n >= 2 && hitting_matrix.cols() == n,
             "hitting matrix must be square with n >= 2");
  HittingExtremes ext;
  ext.h_min = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double h = hitting_matrix.at(i, j);
      if (h > ext.h_max) {
        ext.h_max = h;
        ext.argmax_from = static_cast<Vertex>(i);
        ext.argmax_to = static_cast<Vertex>(j);
      }
      ext.h_min = std::min(ext.h_min, h);
    }
  }
  return ext;
}

HittingExtremes hitting_extremes(const Graph& g) {
  return hitting_extremes(hitting_time_matrix(g));
}

double exact_cover_time(const Graph& g, Vertex start) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(start < n, "start out of range");
  MW_REQUIRE(n >= 1 && n <= 16, "exact_cover_time supports n <= 16");
  MW_REQUIRE(is_connected(g), "exact_cover_time needs a connected graph");
  if (n == 1) return 0.0;

  const std::uint32_t full = (std::uint32_t{1} << n) - 1;
  // expected[S * n + v] = E[additional rounds | visited = S, walk at v],
  // defined for v in S.
  std::vector<double> expected(static_cast<std::size_t>(full + 1) * n, 0.0);

  std::vector<Vertex> members;
  std::vector<Vertex> to_sub(n);
  // S = full has zero additional expectation (already initialized); walk
  // the remaining subsets in decreasing numeric order, which respects the
  // superset dependency S | {u} > S.
  for (std::uint32_t s = full - 1; s >= 1; --s) {
    members.clear();
    for (Vertex v = 0; v < n; ++v) {
      if (s & (std::uint32_t{1} << v)) {
        to_sub[v] = static_cast<Vertex>(members.size());
        members.push_back(v);
      }
    }
    const std::size_t m = members.size();
    DenseMatrix a(m, m, 0.0);
    std::vector<double> b(m, 1.0);
    for (std::size_t r = 0; r < m; ++r) {
      const Vertex v = members[r];
      a.at(r, r) += 1.0;
      const double w = 1.0 / static_cast<double>(g.degree(v));
      for (Vertex u : g.neighbors(v)) {
        if (s & (std::uint32_t{1} << u)) {
          a.at(r, to_sub[u]) -= w;
        } else {
          const std::uint32_t super = s | (std::uint32_t{1} << u);
          b[r] += w * expected[static_cast<std::size_t>(super) * n + u];
        }
      }
    }
    const std::vector<double> e = solve_linear(std::move(a), std::move(b));
    for (std::size_t r = 0; r < m; ++r) {
      expected[static_cast<std::size_t>(s) * n + members[r]] = e[r];
    }
  }
  const std::uint32_t s0 = std::uint32_t{1} << start;
  return expected[static_cast<std::size_t>(s0) * n + start];
}

double CoverMoments::coefficient_of_variation() const {
  if (mean == 0.0) return 0.0;
  return std::sqrt(std::max(0.0, variance)) / mean;
}

CoverMoments exact_cover_time_moments(const Graph& g, Vertex start) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(start < n, "start out of range");
  MW_REQUIRE(n >= 1 && n <= 16, "exact_cover_time_moments supports n <= 16");
  MW_REQUIRE(is_connected(g), "exact_cover_time_moments needs connectivity");
  if (n == 1) return {};

  const std::uint32_t full = (std::uint32_t{1} << n) - 1;
  // m1/m2: first/second moment of the remaining cover time per (S, v).
  std::vector<double> m1(static_cast<std::size_t>(full + 1) * n, 0.0);
  std::vector<double> m2(static_cast<std::size_t>(full + 1) * n, 0.0);

  std::vector<Vertex> members;
  std::vector<Vertex> to_sub(n);
  for (std::uint32_t s = full - 1; s >= 1; --s) {
    members.clear();
    for (Vertex v = 0; v < n; ++v) {
      if (s & (std::uint32_t{1} << v)) {
        to_sub[v] = static_cast<Vertex>(members.size());
        members.push_back(v);
      }
    }
    const std::size_t m = members.size();

    // First moments: (I - P_SS) m1 = 1 + sum_{u outside} p * m1(u, S+u).
    DenseMatrix a1(m, m, 0.0);
    std::vector<double> b1(m, 1.0);
    for (std::size_t r = 0; r < m; ++r) {
      const Vertex v = members[r];
      a1.at(r, r) += 1.0;
      const double w = 1.0 / static_cast<double>(g.degree(v));
      for (Vertex u : g.neighbors(v)) {
        if (s & (std::uint32_t{1} << u)) {
          a1.at(r, to_sub[u]) -= w;
        } else {
          const std::uint32_t super = s | (std::uint32_t{1} << u);
          b1[r] += w * m1[static_cast<std::size_t>(super) * n + u];
        }
      }
    }
    DenseMatrix a2 = a1;  // same linear operator for the second moments
    const std::vector<double> e1 = solve_linear(std::move(a1), std::move(b1));
    for (std::size_t r = 0; r < m; ++r) {
      m1[static_cast<std::size_t>(s) * n + members[r]] = e1[r];
    }

    // Second moments: T = 1 + T' gives E[T^2] = 1 + 2 E[T'] + E[T'^2], so
    // (I - P_SS) m2 = 1 + sum_u p * 2 m1(next) + sum_{u outside} p * m2.
    std::vector<double> b2(m, 1.0);
    for (std::size_t r = 0; r < m; ++r) {
      const Vertex v = members[r];
      const double w = 1.0 / static_cast<double>(g.degree(v));
      for (Vertex u : g.neighbors(v)) {
        if (s & (std::uint32_t{1} << u)) {
          b2[r] += w * 2.0 * m1[static_cast<std::size_t>(s) * n + u];
        } else {
          const std::uint32_t super = s | (std::uint32_t{1} << u);
          b2[r] += w * (2.0 * m1[static_cast<std::size_t>(super) * n + u] +
                        m2[static_cast<std::size_t>(super) * n + u]);
        }
      }
    }
    const std::vector<double> e2 = solve_linear(std::move(a2), std::move(b2));
    for (std::size_t r = 0; r < m; ++r) {
      m2[static_cast<std::size_t>(s) * n + members[r]] = e2[r];
    }
  }

  const std::uint32_t s0 = std::uint32_t{1} << start;
  CoverMoments out;
  out.mean = m1[static_cast<std::size_t>(s0) * n + start];
  const double second = m2[static_cast<std::size_t>(s0) * n + start];
  out.variance = second - out.mean * out.mean;
  return out;
}

namespace {

/// Enumerates the joint moves of all tokens recursively, accumulating the
/// product probability; calls sink(new_positions, probability).
template <typename Sink>
void enumerate_joint_moves(const Graph& g, const std::vector<Vertex>& pos,
                           std::size_t token, std::vector<Vertex>& next,
                           double prob, Sink&& sink) {
  if (token == pos.size()) {
    sink(next, prob);
    return;
  }
  const Vertex v = pos[token];
  const double w = prob / static_cast<double>(g.degree(v));
  for (Vertex u : g.neighbors(v)) {
    next[token] = u;
    enumerate_joint_moves(g, pos, token + 1, next, w, sink);
  }
}

}  // namespace

double exact_k_cover_time(const Graph& g, std::span<const Vertex> starts,
                          std::size_t max_states_per_system) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(!starts.empty(), "need at least one token");
  MW_REQUIRE(n >= 1 && n <= 16, "exact_k_cover_time supports n <= 16");
  MW_REQUIRE(is_connected(g), "exact_k_cover_time needs a connected graph");
  const std::size_t k = starts.size();
  for (Vertex s : starts) MW_REQUIRE(s < n, "start out of range");

  // System size for the largest subset is n^k.
  double states_d = 1.0;
  for (std::size_t i = 0; i < k; ++i) states_d *= n;
  MW_REQUIRE(states_d <= static_cast<double>(max_states_per_system),
             "state space n^k = " << states_d << " exceeds cap "
                                  << max_states_per_system);

  const std::uint32_t full = (std::uint32_t{1} << n) - 1;
  // expected[S] holds |members(S)|^k values, indexed by the mixed-radix
  // tuple of token positions within members(S).
  std::vector<std::vector<double>> expected(full + 1);

  std::vector<Vertex> members;
  std::vector<Vertex> to_sub(n);
  std::vector<Vertex> pos(k);
  std::vector<Vertex> next(k);

  const auto tuple_index = [&](const std::vector<Vertex>& tuple,
                               const std::vector<Vertex>& sub_of,
                               std::size_t base) {
    std::size_t idx = 0;
    for (Vertex v : tuple) idx = idx * base + sub_of[v];
    return idx;
  };

  for (std::uint32_t s = full; s >= 1; --s) {
    members.clear();
    for (Vertex v = 0; v < n; ++v) {
      if (s & (std::uint32_t{1} << v)) {
        to_sub[v] = static_cast<Vertex>(members.size());
        members.push_back(v);
      }
    }
    const std::size_t base = members.size();
    std::size_t num_states = 1;
    for (std::size_t i = 0; i < k; ++i) num_states *= base;
    expected[s].assign(num_states, 0.0);
    if (s == full) continue;  // everything visited: zero additional rounds

    DenseMatrix a(num_states, num_states, 0.0);
    std::vector<double> b(num_states, 1.0);
    for (std::size_t state = 0; state < num_states; ++state) {
      // Decode the mixed-radix state into token positions.
      std::size_t rem = state;
      for (std::size_t i = k; i-- > 0;) {
        pos[i] = members[rem % base];
        rem /= base;
      }
      a.at(state, state) += 1.0;
      enumerate_joint_moves(
          g, pos, 0, next, 1.0,
          [&](const std::vector<Vertex>& moved, double prob) {
            std::uint32_t super = s;
            for (Vertex v : moved) super |= std::uint32_t{1} << v;
            if (super == s) {
              a.at(state, tuple_index(moved, to_sub, base)) -= prob;
            } else {
              // expected[super] was computed earlier (super > s).
              std::vector<Vertex> sup_members;
              std::vector<Vertex> sup_sub(n);
              for (Vertex v = 0; v < n; ++v) {
                if (super & (std::uint32_t{1} << v)) {
                  sup_sub[v] = static_cast<Vertex>(sup_members.size());
                  sup_members.push_back(v);
                }
              }
              const std::size_t idx =
                  tuple_index(moved, sup_sub, sup_members.size());
              b[state] += prob * expected[super][idx];
            }
          });
    }
    expected[s] = solve_linear(std::move(a), std::move(b));
  }

  std::uint32_t s0 = 0;
  for (Vertex v : starts) s0 |= std::uint32_t{1} << v;
  members.clear();
  for (Vertex v = 0; v < n; ++v) {
    if (s0 & (std::uint32_t{1} << v)) {
      to_sub[v] = static_cast<Vertex>(members.size());
      members.push_back(v);
    }
  }
  std::vector<Vertex> start_tuple(starts.begin(), starts.end());
  return expected[s0][tuple_index(start_tuple, to_sub, members.size())];
}

double exact_k_hitting_time(const Graph& g, std::span<const Vertex> starts,
                            Vertex target, std::size_t max_states) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(!starts.empty(), "need at least one token");
  MW_REQUIRE(target < n, "target out of range");
  MW_REQUIRE(is_connected(g), "exact_k_hitting_time needs connectivity");
  const std::size_t k = starts.size();
  for (Vertex s : starts) {
    MW_REQUIRE(s < n, "start out of range");
    if (s == target) return 0.0;
  }

  std::size_t num_states = 1;
  for (std::size_t i = 0; i < k; ++i) {
    num_states *= n;
    MW_REQUIRE(num_states <= max_states,
               "state space n^k exceeds cap " << max_states);
  }

  // States are base-n tuples of token positions; any tuple containing the
  // target is absorbing (expected remaining rounds 0), so the system is
  // solved over the non-absorbing states only.
  std::vector<std::size_t> to_sub(num_states, SIZE_MAX);
  std::vector<std::size_t> from_sub;
  std::vector<Vertex> pos(k);
  for (std::size_t state = 0; state < num_states; ++state) {
    std::size_t rem = state;
    bool absorbing = false;
    for (std::size_t i = k; i-- > 0;) {
      pos[i] = static_cast<Vertex>(rem % n);
      rem /= n;
      absorbing = absorbing || pos[i] == target;
    }
    if (!absorbing) {
      to_sub[state] = from_sub.size();
      from_sub.push_back(state);
    }
  }

  const std::size_t m = from_sub.size();
  DenseMatrix a(m, m, 0.0);
  std::vector<double> b(m, 1.0);
  std::vector<Vertex> next(k);
  for (std::size_t row = 0; row < m; ++row) {
    const std::size_t state = from_sub[row];
    std::size_t rem = state;
    for (std::size_t i = k; i-- > 0;) {
      pos[i] = static_cast<Vertex>(rem % n);
      rem /= n;
    }
    a.at(row, row) += 1.0;
    enumerate_joint_moves(g, pos, 0, next, 1.0,
                          [&](const std::vector<Vertex>& moved, double prob) {
                            std::size_t idx = 0;
                            bool absorbing = false;
                            for (Vertex v : moved) {
                              idx = idx * n + v;
                              absorbing = absorbing || v == target;
                            }
                            if (!absorbing) a.at(row, to_sub[idx]) -= prob;
                          });
  }
  const std::vector<double> expected = solve_linear(std::move(a), std::move(b));

  std::size_t start_idx = 0;
  for (Vertex s : starts) start_idx = start_idx * n + s;
  MW_ASSERT(to_sub[start_idx] != SIZE_MAX);
  return expected[to_sub[start_idx]];
}

double effective_resistance(const Graph& g, Vertex u, Vertex v) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(u < n && v < n && u != v,
             "effective_resistance needs distinct vertices");
  MW_REQUIRE(is_connected(g), "effective_resistance needs a connected graph");

  // Reduced Laplacian with v grounded; unit current injected at u.
  std::vector<Vertex> to_sub(n, kInvalidVertex);
  std::vector<Vertex> from_sub;
  from_sub.reserve(n - 1);
  for (Vertex w = 0; w < n; ++w) {
    if (w == v) continue;
    to_sub[w] = static_cast<Vertex>(from_sub.size());
    from_sub.push_back(w);
  }
  const std::size_t m = n - 1;
  DenseMatrix lap(m, m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const Vertex w = from_sub[r];
    double diag = 0.0;
    for (Vertex x : g.neighbors(w)) {
      if (x == w) continue;  // loops carry no current
      diag += 1.0;
      if (x != v) lap.at(r, to_sub[x]) -= 1.0;
    }
    lap.at(r, r) += diag;
  }
  std::vector<double> rhs(m, 0.0);
  rhs[to_sub[u]] = 1.0;
  const std::vector<double> potential = solve_linear(std::move(lap), std::move(rhs));
  return potential[to_sub[u]];
}

}  // namespace manywalks
