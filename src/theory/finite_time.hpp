// Finite-time visit probabilities — the quantities of the paper's
// Lemma 16, its main technical tool: if a single walk of length T_c covers
// with probability p_c, and any vertex is visited within T_h steps from
// anywhere with probability p_h, then a k-walk of length T_c/k + ℓ·T_h
// covers with probability at least p_c (1 - k (1 - p_h)^ℓ).
//
// Visit probabilities within a deadline are computed EXACTLY by evolving
// survival vectors with the target made absorbing (O(t · arcs)).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace manywalks {

/// Pr[simple walk starting at u visits `target` within t steps], for every
/// start u at once. Entry [target] is 1 (visited at time 0).
std::vector<double> visit_probability_within(const Graph& g, Vertex target,
                                             std::uint64_t t);

struct PairVisitProbability {
  double probability = 1.0;
  Vertex from = 0;
  Vertex to = 0;
};

/// The Lemma 16 quantity p_h(T_h): the minimum over ordered pairs (u, v)
/// of Pr[walk from u visits v within t]. O(n · t · arcs) — intended for
/// oracle-scale graphs (n ≲ a few hundred).
PairVisitProbability min_visit_probability_within(const Graph& g,
                                                  std::uint64_t t);

/// Lemma 16's guaranteed k-walk cover probability for total length
/// T_c/k + ℓ·T_h:  p_c · (1 - k (1 - p_h)^ℓ). Clamped to [0, 1].
double lemma16_cover_probability(double p_c, double p_h, unsigned k,
                                 unsigned ell);

}  // namespace manywalks
