// The paper's bounds as executable formulas: Matthews' theorem (Thm 1), the
// Baby Matthews k-walk bound (Thm 13), the cover/hitting decomposition
// (Thm 14), the gap g(n) (Thm 5), the cycle bounds (Lemmas 21/22), the grid
// projection lower bound (Thm 24), and the mixing-time speed-up (Thm 9).
#pragma once

#include <cstdint>

namespace manywalks {

// --- Theorem 1 (Matthews) ------------------------------------------------

/// Upper bound C(G) <= h_max · H_n.
double matthews_upper_bound(double h_max, std::uint64_t n);

/// Lower bound C(G) >= h_min · H_n (h_min over distinct ordered pairs).
double matthews_lower_bound(double h_min, std::uint64_t n);

// --- Theorem 13 (Baby Matthews) -------------------------------------------

/// Asymptotic form of the k-walk bound: (e/k) · h_max · H_n.
double baby_matthews_asymptotic(double h_max, std::uint64_t n, unsigned k);

/// Rigorous finite-n version following the Thm 13 proof: with
/// r = ceil((ln n + 2 ln ln n)/k), a k-walk of length e·r·h_max covers G
/// with probability >= 1 - 1/ln^2 n, and restarting gives
///   C^k <= (e·r·h_max + h_max·H_n / ln^2 n) / (1 - 1/ln^2 n).
/// Valid for n >= 9 (so that ln^2 n > 1). This is an unconditional upper
/// bound used by the inequality tests.
double baby_matthews_bound(double h_max, std::uint64_t n, unsigned k);

// --- Theorem 14 -----------------------------------------------------------

/// Reference value C/k + (3 ln k + 2 f) · h_max; the paper's asymptotic
/// decomposition with the o(1) dropped. `f` plays the role of f(n) ∈ ω(1)
/// (Thm 5 instantiates f = ln g(n)).
double theorem14_reference(double cover, double h_max, unsigned k, double f);

// --- Theorem 5 (gap) --------------------------------------------------------

/// The gap g(n) = C / h_max. Linear speed-up holds for k = O(g^{1-ε}).
double cover_hitting_gap(double cover, double h_max);

/// Largest k with guaranteed near-linear speed-up per Thm 5: g^{1-ε}.
double theorem5_max_k(double gap, double epsilon);

// --- Theorem 6 / Lemmas 21, 22 (cycle) --------------------------------------

/// Lemma 22 upper bound: C^k(L_n) <= 2 n^2 / ln k (k large, k <= e^{n/4}).
double cycle_k_cover_upper(std::uint64_t n, unsigned k);

/// Lemma 21 contrapositive lower bound: C^k(L_n) >= n^2 / s(k) where
/// s(k) = 16 ln(8k) is the smallest s with k >= e^{s/16}/8.
double cycle_k_cover_lower(std::uint64_t n, unsigned k);

// --- Theorem 24 (grid projection) -------------------------------------------

/// Lower bound C^k(G_{n,d}) >= c · n^{2/d} / ln(8k); the projection onto one
/// axis must cover a cycle of length n^{1/d}.
double grid_k_cover_lower(std::uint64_t n, unsigned d, unsigned k);

// --- Theorem 9 (mixing) ------------------------------------------------------

/// Speed-up lower bound Ω(k / (t_m ln n)) — returned without the hidden
/// constant (use for shape comparisons, not strict inequalities).
double theorem9_speedup_reference(unsigned k, double mixing_time,
                                  std::uint64_t n);

/// The Thm 9 proof's k-walk cover bound O(t_m · n ln^2 n / k), constant
/// taken as the proof's explicit 6·(1 + o(1)) factor on the clique bound:
/// 6 t_m ln n · (n H_n / k + 1).
double theorem9_k_cover_reference(double mixing_time, std::uint64_t n,
                                  unsigned k);

// --- Proposition 23 (binomial band probability) -----------------------------

/// Exact Pr[(c-1)·sqrt(n) <= X - n/2 <= c·sqrt(n)] for X ~ Binomial(n, 1/2),
/// evaluated by lgamma summation (supports n up to ~10^7).
double binomial_centered_band_probability(std::uint64_t n, double c);

/// Proposition 23's lower bound e^{-3c^2 - 4} on the band probability
/// (valid for c >= 2 and even n >= 16 c^2).
double proposition23_lower(double c);

/// Proposition 23's upper bound e^{-2(c-1)^2} (Chernoff).
double proposition23_upper(double c);

// --- Lemma 19 (expander visit probability) -----------------------------------

/// Lemma 19: on an (n, d, λ)-graph, a random walk of length 2s starting
/// anywhere visits any fixed vertex with probability at least
/// s / (2n + 4s + 4bn), where s = log(2n)/log(d/λ) and b = λ/(d-λ).
struct Lemma19Bound {
  double s = 0.0;            ///< sub-walk half-length
  double b = 0.0;            ///< λ/(d-λ)
  double walk_length = 0.0;  ///< 2s
  double probability = 0.0;  ///< the visit-probability lower bound
};

Lemma19Bound lemma19_visit_bound(std::uint64_t n, double d, double lambda);

}  // namespace manywalks
