#include "theory/bounds.hpp"

#include <cmath>

#include "theory/closed_forms.hpp"
#include "util/check.hpp"

namespace manywalks {

double matthews_upper_bound(double h_max, std::uint64_t n) {
  MW_REQUIRE(h_max >= 0.0, "h_max must be nonnegative");
  MW_REQUIRE(n >= 1, "n must be >= 1");
  // The tight form of Matthews' theorem uses H_{n-1} (n-1 states left to
  // visit); the paper's H_n display is the same up to O(1/n).
  return h_max * harmonic_number(n - 1);
}

double matthews_lower_bound(double h_min, std::uint64_t n) {
  MW_REQUIRE(h_min >= 0.0, "h_min must be nonnegative");
  MW_REQUIRE(n >= 1, "n must be >= 1");
  return h_min * harmonic_number(n - 1);
}

double baby_matthews_asymptotic(double h_max, std::uint64_t n, unsigned k) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  return std::exp(1.0) * h_max * harmonic_number(n) / static_cast<double>(k);
}

double baby_matthews_bound(double h_max, std::uint64_t n, unsigned k) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  MW_REQUIRE(n >= 9, "finite Baby-Matthews bound needs n >= 9");
  const double ln_n = std::log(static_cast<double>(n));
  const double ln2_n = ln_n * ln_n;
  MW_ASSERT(ln2_n > 1.0);
  const double r =
      std::ceil((ln_n + 2.0 * std::log(ln_n)) / static_cast<double>(k));
  const double main_term = std::exp(1.0) * r * h_max;
  const double restart_term = matthews_upper_bound(h_max, n) / ln2_n;
  return (main_term + restart_term) / (1.0 - 1.0 / ln2_n);
}

double theorem14_reference(double cover, double h_max, unsigned k, double f) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  return cover / static_cast<double>(k) +
         (3.0 * std::log(static_cast<double>(k)) + 2.0 * f) * h_max;
}

double cover_hitting_gap(double cover, double h_max) {
  MW_REQUIRE(h_max > 0.0, "h_max must be positive");
  return cover / h_max;
}

double theorem5_max_k(double gap, double epsilon) {
  MW_REQUIRE(gap >= 1.0, "gap must be >= 1");
  MW_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
  return std::pow(gap, 1.0 - epsilon);
}

double cycle_k_cover_upper(std::uint64_t n, unsigned k) {
  MW_REQUIRE(n >= 3, "cycle bounds need n >= 3");
  MW_REQUIRE(k >= 2, "Lemma 22 needs k >= 2");
  MW_REQUIRE(std::log(static_cast<double>(k)) <= static_cast<double>(n) / 4.0,
             "Lemma 22 needs k <= e^{n/4}");
  const double nn = static_cast<double>(n);
  return 2.0 * nn * nn / std::log(static_cast<double>(k));
}

double cycle_k_cover_lower(std::uint64_t n, unsigned k) {
  MW_REQUIRE(n >= 3, "cycle bounds need n >= 3");
  MW_REQUIRE(k >= 1, "k must be >= 1");
  // Lemma 21: C^k <= n^2/s implies k >= e^{s/16}/8, i.e. s <= 16 ln(8k).
  // Contrapositive: C^k >= n^2 / (16 ln(8k)).
  const double nn = static_cast<double>(n);
  return nn * nn / (16.0 * std::log(8.0 * static_cast<double>(k)));
}

double grid_k_cover_lower(std::uint64_t n, unsigned d, unsigned k) {
  MW_REQUIRE(d >= 2, "grid lower bound needs d >= 2");
  const double side = std::pow(static_cast<double>(n), 1.0 / d);
  // Projection onto one axis is a (lazy) walk on a cycle of length side;
  // covering the grid requires covering that cycle (Thm 24 / Lemma 21).
  return side * side / (16.0 * std::log(8.0 * static_cast<double>(k)));
}

double theorem9_speedup_reference(unsigned k, double mixing_time,
                                  std::uint64_t n) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  MW_REQUIRE(mixing_time >= 1.0, "mixing time must be >= 1");
  return static_cast<double>(k) /
         (mixing_time * std::log(static_cast<double>(n)));
}

double theorem9_k_cover_reference(double mixing_time, std::uint64_t n,
                                  unsigned k) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  const double nn = static_cast<double>(n);
  return 6.0 * mixing_time * std::log(nn) *
         (nn * harmonic_number(n) / static_cast<double>(k) + 1.0);
}

double binomial_centered_band_probability(std::uint64_t n, double c) {
  MW_REQUIRE(n >= 1 && n <= 10'000'000, "n out of supported range");
  MW_REQUIRE(c >= 1.0, "band needs c >= 1");
  const double half = static_cast<double>(n) / 2.0;
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  // Integer k range for (c-1)√n <= k - n/2 <= c√n.
  const auto lo = static_cast<std::int64_t>(std::ceil(half + (c - 1.0) * sqrt_n));
  const auto hi = static_cast<std::int64_t>(std::floor(half + c * sqrt_n));
  const double log2n = static_cast<double>(n) * std::log(2.0);
  const double lgn = std::lgamma(static_cast<double>(n) + 1.0);
  double acc = 0.0;
  for (std::int64_t k = lo; k <= hi; ++k) {
    if (k < 0 || k > static_cast<std::int64_t>(n)) continue;
    const double kk = static_cast<double>(k);
    const double log_pmf = lgn - std::lgamma(kk + 1.0) -
                           std::lgamma(static_cast<double>(n) - kk + 1.0) -
                           log2n;
    acc += std::exp(log_pmf);
  }
  return acc;
}

double proposition23_lower(double c) {
  MW_REQUIRE(c >= 2.0, "Proposition 23 requires c >= 2");
  return std::exp(-3.0 * c * c - 4.0);
}

double proposition23_upper(double c) {
  MW_REQUIRE(c >= 2.0, "Proposition 23 requires c >= 2");
  return std::exp(-2.0 * (c - 1.0) * (c - 1.0));
}

Lemma19Bound lemma19_visit_bound(std::uint64_t n, double d, double lambda) {
  MW_REQUIRE(n >= 2, "need n >= 2");
  MW_REQUIRE(lambda > 0.0 && lambda < d, "need 0 < lambda < d");
  Lemma19Bound bound;
  bound.s = std::log(2.0 * static_cast<double>(n)) / std::log(d / lambda);
  bound.b = lambda / (d - lambda);
  bound.walk_length = 2.0 * bound.s;
  bound.probability =
      bound.s /
      (2.0 * static_cast<double>(n) + 4.0 * bound.s +
       4.0 * bound.b * static_cast<double>(n));
  return bound;
}

}  // namespace manywalks
