// Closed-form cover/hitting times for the families where they are known
// exactly, plus the asymptotic "theory profiles" the paper's Table 1 cites.
// Exact values serve as test oracles; asymptotics as comparison columns in
// the experiment tables.
#pragma once

#include <cstdint>

namespace manywalks {

/// n-th harmonic number H_n = 1 + 1/2 + ... + 1/n (H_0 = 0). Exact
/// summation up to 10^7, Euler–Maclaurin beyond.
double harmonic_number(std::uint64_t n);

/// Euler–Mascheroni constant.
inline constexpr double kEulerGamma = 0.5772156649015328606;

// --- cycle L_n ---------------------------------------------------------

/// Exact expected cover time of the n-cycle: n(n-1)/2 (start counted
/// visited at t=0; any start by symmetry).
double cycle_cover_time(std::uint64_t n);

/// Exact hitting time between vertices at ring distance d on the n-cycle:
/// d (n - d).
double cycle_hitting_time(std::uint64_t n, std::uint64_t distance);

/// Exact maximum hitting time on the n-cycle: floor(n/2)·ceil(n/2).
double cycle_max_hitting_time(std::uint64_t n);

// --- path P_n ----------------------------------------------------------

/// Exact cover time of the n-path from an endpoint: (n-1)^2. (This is the
/// BEST start — only one traversal is needed; the worst start is the
/// center, which must reach both ends.)
double path_cover_time(std::uint64_t n);

/// Exact hitting time from i to j on the path 0..n-1: |j^2 - i^2| shifted —
/// specifically for i < j it equals j^2 - i^2, by the reflection argument.
double path_hitting_time(std::uint64_t n, std::uint64_t i, std::uint64_t j);

// --- complete graph K_n -------------------------------------------------

/// Exact cover time of K_n (no self loops): (n-1) H_{n-1}.
double complete_cover_time(std::uint64_t n);

/// Exact cover time of K_n with one self loop per vertex: n H_{n-1}.
double complete_with_loops_cover_time(std::uint64_t n);

/// Exact hitting time on K_n (no loops): n - 1 for u != v.
double complete_hitting_time(std::uint64_t n);

/// k-walk cover time of K_n with self loops, k tokens from one vertex, by
/// the coupon-collector round-robin argument of Lemma 12 ("fair mom"):
/// each round contributes k independent uniform coupon draws, so
/// C^k = (n H_{n-1}) / k up to less than one round. This function returns
/// (n H_{n-1}) / k; the true value lies within [value - 1, value + 1].
double complete_with_loops_k_cover_time(std::uint64_t n, unsigned k);

// --- star S_n -----------------------------------------------------------

/// Exact worst-start (= hub) cover time of the n-star: 2(n-1)H_{n-1} - 1.
double star_cover_time(std::uint64_t n);

/// Exact max hitting time on the n-star: 2n - 2 (leaf to leaf).
double star_max_hitting_time(std::uint64_t n);

// --- asymptotic profiles (Table 1 columns) ------------------------------

/// Asymptotic cover time of the 2-D torus on n vertices:
/// (1/π) n ln^2 n (1 + o(1)) [Dembo–Peres–Rosen–Zeitouni].
double torus2d_cover_time_asymptotic(std::uint64_t n);

/// Asymptotic max hitting time of the 2-D torus: ~ (2/π) n ln n.
double torus2d_max_hitting_asymptotic(std::uint64_t n);

/// Asymptotic cover time of the d-D torus, d >= 3: c_d n ln n with
/// c_d ~ expected excursions constant; we use the leading constant
/// c_d = R_d where R_d is the escape-probability constant — order-level.
double torusd_cover_time_asymptotic(std::uint64_t n, unsigned d);

/// Asymptotic cover time of the hypercube on n = 2^d vertices: n ln n.
double hypercube_cover_time_asymptotic(std::uint64_t n);

/// Asymptotic cover time of a clique/expander-like graph: Θ(n ln n).
double nlogn_cover_time(std::uint64_t n);

/// Barbell B_n order: Θ(n^2) (constant unknown; order-level only).
double barbell_cover_time_order(std::uint64_t n);

/// Lollipop order: Θ(n^3) (the worst case over all graphs, up to const).
double lollipop_cover_time_order(std::uint64_t n);

}  // namespace manywalks
