#include "theory/closed_forms.hpp"

#include <cmath>

#include "util/check.hpp"

namespace manywalks {

double harmonic_number(std::uint64_t n) {
  if (n == 0) return 0.0;
  if (n <= 10'000'000) {
    // Sum smallest-first for accuracy.
    double acc = 0.0;
    for (std::uint64_t i = n; i >= 1; --i) acc += 1.0 / static_cast<double>(i);
    return acc;
  }
  // Euler–Maclaurin: H_n = ln n + γ + 1/(2n) - 1/(12n^2) + O(n^-4).
  const double x = static_cast<double>(n);
  return std::log(x) + kEulerGamma + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x);
}

double cycle_cover_time(std::uint64_t n) {
  MW_REQUIRE(n >= 3, "cycle closed forms need n >= 3");
  return static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
}

double cycle_hitting_time(std::uint64_t n, std::uint64_t distance) {
  MW_REQUIRE(n >= 3, "cycle closed forms need n >= 3");
  MW_REQUIRE(distance <= n / 2, "ring distance is at most n/2");
  return static_cast<double>(distance) * static_cast<double>(n - distance);
}

double cycle_max_hitting_time(std::uint64_t n) {
  return cycle_hitting_time(n, n / 2);
}

double path_cover_time(std::uint64_t n) {
  MW_REQUIRE(n >= 2, "path closed forms need n >= 2");
  const double m = static_cast<double>(n - 1);
  return m * m;
}

double path_hitting_time(std::uint64_t n, std::uint64_t i, std::uint64_t j) {
  MW_REQUIRE(n >= 2, "path closed forms need n >= 2");
  MW_REQUIRE(i < n && j < n, "path hitting endpoints out of range");
  // By the gambler's-ruin/reflection solution, for i < j the walk on
  // 0..n-1 restricted to 0..j gives h(i, j) = j^2 - i^2; the mirrored case
  // is symmetric.
  const double a = static_cast<double>(i);
  const double b = static_cast<double>(j);
  if (i <= j) return b * b - a * a;
  const double ra = static_cast<double>(n - 1 - i);
  const double rb = static_cast<double>(n - 1 - j);
  return rb * rb - ra * ra;
}

double complete_cover_time(std::uint64_t n) {
  MW_REQUIRE(n >= 2, "complete closed forms need n >= 2");
  return static_cast<double>(n - 1) * harmonic_number(n - 1);
}

double complete_with_loops_cover_time(std::uint64_t n) {
  MW_REQUIRE(n >= 2, "complete closed forms need n >= 2");
  return static_cast<double>(n) * harmonic_number(n - 1);
}

double complete_hitting_time(std::uint64_t n) {
  MW_REQUIRE(n >= 2, "complete closed forms need n >= 2");
  return static_cast<double>(n - 1);
}

double complete_with_loops_k_cover_time(std::uint64_t n, unsigned k) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  return complete_with_loops_cover_time(n) / static_cast<double>(k);
}

double star_cover_time(std::uint64_t n) {
  MW_REQUIRE(n >= 3, "star closed forms need n >= 3");
  return 2.0 * static_cast<double>(n - 1) * harmonic_number(n - 1) - 1.0;
}

double star_max_hitting_time(std::uint64_t n) {
  MW_REQUIRE(n >= 3, "star closed forms need n >= 3");
  return 2.0 * static_cast<double>(n) - 2.0;
}

double torus2d_cover_time_asymptotic(std::uint64_t n) {
  MW_REQUIRE(n >= 4, "torus closed forms need n >= 4");
  const double x = static_cast<double>(n);
  const double ln = std::log(x);
  return x * ln * ln / 3.14159265358979323846;
}

double torus2d_max_hitting_asymptotic(std::uint64_t n) {
  const double x = static_cast<double>(n);
  return 2.0 / 3.14159265358979323846 * x * std::log(x);
}

double torusd_cover_time_asymptotic(std::uint64_t n, unsigned d) {
  MW_REQUIRE(d >= 3, "use torus2d_cover_time_asymptotic for d = 2");
  // C ~ c_d n ln n where c_d -> 1 as d grows (escape probability -> 1);
  // for d = 3 the constant is about 1.52 (Green's function G_3(0) ≈ 1.516).
  const double g_d = d == 3 ? 1.516 : (d == 4 ? 1.239 : 1.0 + 1.0 / (2.0 * d));
  const double x = static_cast<double>(n);
  return g_d * x * std::log(x);
}

double hypercube_cover_time_asymptotic(std::uint64_t n) {
  const double x = static_cast<double>(n);
  return x * std::log(x);
}

double nlogn_cover_time(std::uint64_t n) {
  const double x = static_cast<double>(n);
  return x * std::log(x);
}

double barbell_cover_time_order(std::uint64_t n) {
  const double x = static_cast<double>(n);
  return x * x;
}

double lollipop_cover_time_order(std::uint64_t n) {
  const double x = static_cast<double>(n);
  return x * x * x;
}

}  // namespace manywalks
