#include "walk/sampling.hpp"

#include <queue>

namespace manywalks {

std::vector<Vertex> spread_starts(const Graph& g, unsigned k,
                                  Vertex seed_vertex) {
  const Vertex n = g.num_vertices();
  MW_REQUIRE(k >= 1, "k must be >= 1");
  MW_REQUIRE(seed_vertex < n, "seed vertex out of range");

  std::vector<Vertex> starts;
  starts.reserve(k);
  starts.push_back(seed_vertex);

  // dist[v] = hop distance from v to the chosen set; maintained
  // incrementally with a multi-source BFS restart per added center.
  std::vector<std::uint32_t> dist = bfs_distances(g, seed_vertex);
  for (unsigned i = 1; i < k; ++i) {
    // Farthest vertex from the current set (ties: smallest id). If the
    // graph is smaller than k, wrap around and reuse vertices.
    Vertex best = starts[i % starts.size()];
    std::uint32_t best_d = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (dist[v] != kUnreachable && dist[v] > best_d) {
        best_d = dist[v];
        best = v;
      }
    }
    starts.push_back(best);
    // Relax distances with the new center (BFS from `best`, keeping mins).
    std::vector<Vertex> frontier{best};
    std::vector<Vertex> next;
    dist[best] = 0;
    std::uint32_t depth = 0;
    while (!frontier.empty()) {
      ++depth;
      next.clear();
      for (Vertex v : frontier) {
        for (Vertex u : g.neighbors(v)) {
          if (dist[u] <= depth) continue;  // kUnreachable is the max value
          dist[u] = depth;
          next.push_back(u);
        }
      }
      frontier.swap(next);
    }
  }
  return starts;
}

}  // namespace manywalks
