#include "walk/cover.hpp"

#include <cmath>

#include "util/check.hpp"
#include "walk/walker.hpp"

namespace manywalks {

namespace {

/// Shared k-walk loop: advances all tokens round by round until `target`
/// distinct vertices are visited or the cap is reached.
CoverSample run_until_visited(const Graph& g, std::span<const Vertex> starts,
                              Vertex target, Rng& rng,
                              const CoverOptions& options) {
  require_walkable(g);
  MW_REQUIRE(!starts.empty(), "k-walk needs at least one token");
  MW_REQUIRE(options.laziness >= 0.0 && options.laziness < 1.0,
             "laziness must be in [0,1)");

  thread_local VisitTracker tracker(0);
  if (tracker.num_vertices() != g.num_vertices()) {
    tracker = VisitTracker(g.num_vertices());
  } else {
    tracker.reset();
  }

  std::vector<Vertex> tokens(starts.begin(), starts.end());
  for (Vertex s : tokens) {
    MW_REQUIRE(s < g.num_vertices(), "start vertex out of range");
    tracker.visit(s);
  }
  CoverSample sample;
  if (tracker.num_visited() >= target) {
    sample.covered = true;
    return sample;
  }

  const bool lazy = options.laziness > 0.0;
  std::uint64_t t = 0;
  while (t < options.step_cap) {
    ++t;
    for (Vertex& token : tokens) {
      token = lazy ? step_walk_lazy(g, token, rng, options.laziness)
                   : step_walk(g, token, rng);
      tracker.visit(token);
    }
    if (tracker.num_visited() >= target) {
      sample.steps = t;
      sample.covered = true;
      return sample;
    }
  }
  sample.steps = options.step_cap;
  sample.covered = false;
  return sample;
}

}  // namespace

CoverSample sample_cover_time(const Graph& g, Vertex start, Rng& rng,
                              const CoverOptions& options) {
  const Vertex starts[1] = {start};
  return run_until_visited(g, starts, g.num_vertices(), rng, options);
}

CoverSample sample_multi_cover_time(const Graph& g,
                                    std::span<const Vertex> starts, Rng& rng,
                                    const CoverOptions& options) {
  return run_until_visited(g, starts, g.num_vertices(), rng, options);
}

CoverSample sample_k_cover_time(const Graph& g, Vertex start, unsigned k,
                                Rng& rng, const CoverOptions& options) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  std::vector<Vertex> starts(k, start);
  return run_until_visited(g, starts, g.num_vertices(), rng, options);
}

CoverSample sample_partial_cover_time(const Graph& g,
                                      std::span<const Vertex> starts,
                                      double fraction, Rng& rng,
                                      const CoverOptions& options) {
  MW_REQUIRE(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
  const auto target = static_cast<Vertex>(
      std::ceil(fraction * static_cast<double>(g.num_vertices())));
  return run_until_visited(g, starts, std::max<Vertex>(target, 1), rng,
                           options);
}

CoverageCurve sample_coverage_curve(const Graph& g,
                                    std::span<const Vertex> starts,
                                    std::uint64_t total_steps,
                                    std::uint64_t record_every, Rng& rng,
                                    const CoverOptions& options) {
  require_walkable(g);
  MW_REQUIRE(!starts.empty(), "k-walk needs at least one token");
  MW_REQUIRE(record_every >= 1, "record_every must be >= 1");

  VisitTracker tracker(g.num_vertices());
  std::vector<Vertex> tokens(starts.begin(), starts.end());
  for (Vertex s : tokens) {
    MW_REQUIRE(s < g.num_vertices(), "start vertex out of range");
    tracker.visit(s);
  }

  CoverageCurve curve;
  curve.times.push_back(0);
  curve.visited.push_back(tracker.num_visited());
  const bool lazy = options.laziness > 0.0;
  for (std::uint64_t t = 1; t <= total_steps; ++t) {
    for (Vertex& token : tokens) {
      token = lazy ? step_walk_lazy(g, token, rng, options.laziness)
                   : step_walk(g, token, rng);
      tracker.visit(token);
    }
    if (t % record_every == 0 || t == total_steps) {
      curve.times.push_back(t);
      curve.visited.push_back(tracker.num_visited());
    }
  }
  return curve;
}

std::vector<std::uint64_t> sample_visit_counts(const Graph& g, Vertex start,
                                               std::uint64_t num_steps,
                                               Rng& rng,
                                               const CoverOptions& options) {
  require_walkable(g);
  MW_REQUIRE(start < g.num_vertices(), "start vertex out of range");
  std::vector<std::uint64_t> counts(g.num_vertices(), 0);
  Vertex v = start;
  counts[v] = 1;
  const bool lazy = options.laziness > 0.0;
  for (std::uint64_t t = 0; t < num_steps; ++t) {
    v = lazy ? step_walk_lazy(g, v, rng, options.laziness)
             : step_walk(g, v, rng);
    ++counts[v];
  }
  return counts;
}

}  // namespace manywalks
