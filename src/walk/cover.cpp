#include "walk/cover.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/check.hpp"
#include "walk/engine.hpp"
#include "walk/walker.hpp"

namespace manywalks {

namespace {

/// Reusable per-thread engine: a Monte-Carlo estimate calls these samplers
/// thousands of times on the same graph (from pool worker threads), and
/// constructing an engine per call would pay an allocation every trial.
/// The binding is verified against the graph's live CSR data pointers —
/// not the Graph's address — so a pointer match means the engine reads
/// exactly g's current arrays; walkability is still re-validated on every
/// call (O(1): Graph caches its min degree) in case the allocator handed a
/// new graph the same blocks.
WalkEngine& pooled_engine(const Graph& g) {
  thread_local std::optional<WalkEngine> engine;
  if (!engine.has_value() || !engine->bound_to(g)) {
    engine.emplace(g);
  } else {
    require_walkable(g);
  }
  return *engine;
}

/// Shared k-walk trial: one engine run until `target` distinct vertices are
/// visited or the cap is reached.
CoverSample run_until_visited(const Graph& g, std::span<const Vertex> starts,
                              Vertex target, Rng& rng,
                              const CoverOptions& options) {
  WalkEngine& engine = pooled_engine(g);
  engine.reset(starts);
  return engine.run_until_visited(target, rng, options);
}

}  // namespace

CoverSample sample_cover_time(const Graph& g, Vertex start, Rng& rng,
                              const CoverOptions& options) {
  const Vertex starts[1] = {start};
  return run_until_visited(g, starts, g.num_vertices(), rng, options);
}

CoverSample sample_multi_cover_time(const Graph& g,
                                    std::span<const Vertex> starts, Rng& rng,
                                    const CoverOptions& options) {
  return run_until_visited(g, starts, g.num_vertices(), rng, options);
}

CoverSample sample_k_cover_time(const Graph& g, Vertex start, unsigned k,
                                Rng& rng, const CoverOptions& options) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  std::vector<Vertex> starts(k, start);
  return run_until_visited(g, starts, g.num_vertices(), rng, options);
}

CoverSample sample_partial_cover_time(const Graph& g,
                                      std::span<const Vertex> starts,
                                      double fraction, Rng& rng,
                                      const CoverOptions& options) {
  MW_REQUIRE(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
  const auto target = static_cast<Vertex>(
      std::ceil(fraction * static_cast<double>(g.num_vertices())));
  return run_until_visited(g, starts, std::max<Vertex>(target, 1), rng,
                           options);
}

CoverageCurve sample_coverage_curve(const Graph& g,
                                    std::span<const Vertex> starts,
                                    std::uint64_t total_steps,
                                    std::uint64_t record_every, Rng& rng,
                                    const CoverOptions& options) {
  MW_REQUIRE(record_every >= 1, "record_every must be >= 1");
  MW_REQUIRE(options.laziness >= 0.0 && options.laziness < 1.0,
             "laziness must be in [0,1)");
  WalkEngine& engine = pooled_engine(g);
  engine.reset(starts);

  CoverageCurve curve;
  curve.truncated = options.step_cap < total_steps;
  const std::uint64_t last = std::min(total_steps, options.step_cap);
  curve.times.push_back(0);
  curve.visited.push_back(engine.num_visited());
  std::uint64_t t = 0;
  while (t < last) {
    const std::uint64_t chunk = std::min<std::uint64_t>(record_every, last - t);
    engine.run_for_steps(chunk, rng, options.laziness);
    t += chunk;
    curve.times.push_back(t);
    curve.visited.push_back(engine.num_visited());
  }
  return curve;
}

std::vector<std::uint64_t> sample_visit_counts(const Graph& g, Vertex start,
                                               std::uint64_t num_steps,
                                               Rng& rng,
                                               const CoverOptions& options) {
  WalkEngine& engine = pooled_engine(g);
  const Vertex starts[1] = {start};
  engine.reset(starts);
  std::vector<std::uint64_t> counts(g.num_vertices(), 0);
  counts[start] = 1;
  engine.run_for_steps(num_steps, rng, options.laziness, counts.data());
  return counts;
}

}  // namespace manywalks
