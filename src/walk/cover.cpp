#include "walk/cover.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "walk/engine.hpp"

namespace manywalks {

// The Graph-facing samplers are thin delegations through CsrSubstrate:
// constructing the substrate per call revalidates walkability in O(1)
// (Graph caches its min degree) — the guard against the allocator handing
// a new graph the same blocks as a cached engine's — and the per-thread
// pooled WalkEngineT<CsrSubstrate> in cover.hpp rebinds on array identity
// exactly as the historical pooled WalkEngine did. Every sampler resolves
// an unspecified rng_mode to lane (determinism contract v2); callers
// pinning the pre-lane streams pass RngMode::kSharedLegacy explicitly,
// under which the streams are unchanged (tests/test_engine.cpp,
// tests/test_substrate.cpp, tests/test_lane_rng.cpp goldens).

CoverSample sample_cover_time(const Graph& g, Vertex start, Rng& rng,
                              const CoverOptions& options) {
  const Vertex starts[1] = {start};
  return sample_cover_to_target(CsrSubstrate(g), starts, g.num_vertices(),
                                rng, options);
}

CoverSample sample_multi_cover_time(const Graph& g,
                                    std::span<const Vertex> starts, Rng& rng,
                                    const CoverOptions& options) {
  return sample_cover_to_target(CsrSubstrate(g), starts, g.num_vertices(),
                                rng, options);
}

CoverSample sample_k_cover_time(const Graph& g, Vertex start, unsigned k,
                                Rng& rng, const CoverOptions& options) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  std::vector<Vertex> starts(k, start);
  return sample_cover_to_target(CsrSubstrate(g), starts, g.num_vertices(),
                                rng, options);
}

CoverSample sample_partial_cover_time(const Graph& g,
                                      std::span<const Vertex> starts,
                                      double fraction, Rng& rng,
                                      const CoverOptions& options) {
  MW_REQUIRE(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
  const auto target = static_cast<Vertex>(
      std::ceil(fraction * static_cast<double>(g.num_vertices())));
  return sample_cover_to_target(CsrSubstrate(g), starts,
                                std::max<Vertex>(target, 1), rng, options);
}

CoverageCurve sample_coverage_curve(const Graph& g,
                                    std::span<const Vertex> starts,
                                    std::uint64_t total_steps,
                                    std::uint64_t record_every, Rng& rng,
                                    const CoverOptions& raw_options) {
  const CoverOptions options = resolve_sampler_mode(raw_options);
  MW_REQUIRE(record_every >= 1, "record_every must be >= 1");
  MW_REQUIRE(options.laziness >= 0.0 && options.laziness < 1.0,
             "laziness must be in [0,1)");
  auto& engine = pooled_substrate_engine(CsrSubstrate(g));
  engine.reset(starts);

  CoverageCurve curve;
  curve.truncated = options.step_cap < total_steps;
  const std::uint64_t last = std::min(total_steps, options.step_cap);
  curve.times.push_back(0);
  curve.visited.push_back(engine.num_visited());
  std::uint64_t t = 0;
  while (t < last) {
    const std::uint64_t chunk = std::min<std::uint64_t>(record_every, last - t);
    engine.run_for_steps(chunk, rng, options.laziness, nullptr,
                         options.rng_mode);
    t += chunk;
    curve.times.push_back(t);
    curve.visited.push_back(engine.num_visited());
  }
  return curve;
}

std::vector<std::uint64_t> sample_visit_counts(const Graph& g, Vertex start,
                                               std::uint64_t num_steps,
                                               Rng& rng,
                                               const CoverOptions& raw_options) {
  const CoverOptions options = resolve_sampler_mode(raw_options);
  auto& engine = pooled_substrate_engine(CsrSubstrate(g));
  const Vertex starts[1] = {start};
  engine.reset(starts);
  std::vector<std::uint64_t> counts(g.num_vertices(), 0);
  counts[start] = 1;
  engine.run_for_steps(num_steps, rng, options.laziness, counts.data(),
                       options.rng_mode);
  return counts;
}

}  // namespace manywalks
