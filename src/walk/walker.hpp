// Single-token stepping primitives for the simple (optionally lazy) random
// walk. Everything here is header-only: these are the innermost loops of all
// experiments.
#pragma once

#include "graph/graph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace manywalks {

/// One step of the simple random walk: uniform over the adjacency arcs of v
/// (so parallel edges weight their endpoint proportionally and a self loop
/// is a 1/deg chance of staying).
inline Vertex step_walk(const Graph& g, Vertex v, Rng& rng) {
  return g.neighbor(v, rng.uniform_below(g.degree(v)));
}

/// Lazy variant: stays put with probability `laziness`, otherwise steps.
inline Vertex step_walk_lazy(const Graph& g, Vertex v, Rng& rng,
                             double laziness) {
  if (laziness > 0.0 && rng.uniform01() < laziness) return v;
  return step_walk(g, v, rng);
}

/// Validates that a walk can run from every vertex (no isolated vertices).
inline void require_walkable(const Graph& g) {
  MW_REQUIRE(g.num_vertices() >= 1, "walk on empty graph");
  MW_REQUIRE(g.min_degree() >= 1, "graph has an isolated vertex");
}

}  // namespace manywalks
