// Deterministic walker→block bucketing for the out-of-core engine.
//
// The block scheduler repeatedly needs "which vertex blocks hold live
// walkers, and which walkers sit in each" — WalkerBuckets answers it
// with a stable counting sort: one pass counts lanes per block (and
// collects the touched blocks), one pass places lane ids grouped by
// block in ascending lane order. Touched blocks come back ascending.
// Both orders are pure functions of the walker positions, which is what
// makes the whole block schedule deterministic (contract v4): no hashes,
// no pointers, no timing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace manywalks {

class WalkerBuckets {
 public:
  /// Rebuilds the buckets from the current walker positions: lane i goes
  /// under block tokens[i] >> block_bits iff rounds_left[i] > 0.
  void rebuild(std::span<const Vertex> tokens,
               std::span<const std::uint32_t> rounds_left,
               std::uint32_t block_bits, std::uint64_t num_blocks);

  /// Blocks holding at least one live walker, ascending.
  std::span<const std::uint32_t> touched_blocks() const noexcept {
    return touched_;
  }
  /// Lane ids resident in `block`, ascending (empty for untouched blocks).
  std::span<const std::uint32_t> lanes_in(std::uint32_t block) const noexcept {
    return {lanes_.data() + begin_[block], counts_[block]};
  }
  std::size_t active_lanes() const noexcept { return lanes_.size(); }

 private:
  std::vector<std::uint32_t> counts_;   // lanes per block
  std::vector<std::uint32_t> begin_;    // per-block start into lanes_
  std::vector<std::uint32_t> cursor_;   // fill cursor (pass 2 scratch)
  std::vector<std::uint32_t> lanes_;    // lane ids grouped by block
  std::vector<std::uint32_t> touched_;  // ascending touched block ids
};

}  // namespace manywalks
