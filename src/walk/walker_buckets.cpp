#include "walk/walker_buckets.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace manywalks {

void WalkerBuckets::rebuild(std::span<const Vertex> tokens,
                            std::span<const std::uint32_t> rounds_left,
                            std::uint32_t block_bits,
                            std::uint64_t num_blocks) {
  MW_REQUIRE(tokens.size() == rounds_left.size(),
             "tokens/rounds_left size mismatch");
  counts_.assign(num_blocks, 0);
  begin_.assign(num_blocks, 0);
  touched_.clear();
  std::uint32_t active = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (rounds_left[i] == 0) continue;
    const auto b = static_cast<std::uint32_t>(tokens[i] >> block_bits);
    if (counts_[b]++ == 0) touched_.push_back(b);
    ++active;
  }
  std::sort(touched_.begin(), touched_.end());
  std::uint32_t offset = 0;
  for (const std::uint32_t b : touched_) {
    begin_[b] = offset;
    offset += counts_[b];
  }
  lanes_.resize(active);
  cursor_.assign(begin_.begin(), begin_.end());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (rounds_left[i] == 0) continue;
    const auto b = static_cast<std::uint32_t>(tokens[i] >> block_bits);
    lanes_[cursor_[b]++] = static_cast<std::uint32_t>(i);
  }
}

}  // namespace manywalks
