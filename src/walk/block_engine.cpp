#include "walk/block_engine.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace manywalks {

BlockWalkEngine::BlockWalkEngine(const BlockedGraph& graph,
                                 std::uint64_t mem_budget_bytes)
    : graph_(&graph),
      cache_(graph, mem_budget_bytes),
      tracker_(graph.num_vertices()),
      snap_tracker_(graph.num_vertices()) {
  MW_REQUIRE(graph.min_degree() >= 1,
             "graph has an isolated vertex; walks are undefined");
}

void BlockWalkEngine::reset(std::span<const Vertex> starts) {
  MW_REQUIRE(!starts.empty(), "k-walk needs at least one token");
  tracker_.reset();
  tokens_.assign(starts.begin(), starts.end());
  for (Vertex s : tokens_) {
    MW_REQUIRE(s < graph_->num_vertices(), "start vertex out of range");
    tracker_.visit(s);
  }
  lanes_seeded_ = false;
}

void BlockWalkEngine::ensure_lanes(Rng& rng) {
  if (!lanes_seeded_) {
    lane_rngs_.reseed(rng.next(), tokens_.size());
    lanes_seeded_ = true;
  }
}

CoverSample BlockWalkEngine::run_until_visited(Vertex target, Rng& rng,
                                               const CoverOptions& options) {
  MW_REQUIRE(!tokens_.empty(), "no tokens; call reset() before running");
  MW_REQUIRE(target <= graph_->num_vertices(),
             "target " << target << " exceeds num_vertices "
                       << graph_->num_vertices());
  MW_REQUIRE(options.laziness >= 0.0 && options.laziness < 1.0,
             "laziness must be in [0,1)");
  MW_REQUIRE(options.rng_mode != RngMode::kSharedLegacy,
             "block-scheduled walking needs per-lane RNG streams: the "
             "shared legacy stream draws in token order, which a block "
             "schedule reorders");
  CoverSample sample;
  if (tracker_.num_visited() >= target) {
    sample.covered = true;
    return sample;
  }
  if (options.step_cap == 0) return sample;  // no rounds, no draws
  ensure_lanes(rng);
  // Per-horizon observability flush keeps heartbeats live through a long
  // OOC cover: `last` tracks the stat state at the previous flush. kRounds
  // counts rounds EXECUTED (horizons run in full even when coverage lands
  // inside one; the exact-cover replay is tracked as kReplayedRounds).
  Stats last = stats_;
  obs::RunObserver* const o = obs::observer();
  obs::TraceWriter* const trace = o != nullptr ? o->trace : nullptr;

  std::uint64_t done = 0;
  while (done < options.step_cap) {
    const auto horizon = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        kBlockHorizon, options.step_cap - done));
    {
      obs::TraceSpan span(trace, "horizon", "block");
      span.set_args("\"round_begin\":" + std::to_string(done) +
                    ",\"rounds\":" + std::to_string(horizon));
      // Snapshot, then run the horizon asynchronously. The horizon-end
      // state is exactly the lockstep state after `horizon` rounds (lane
      // trajectories are per-lane pure, visits commute), so checking
      // coverage only here is exact; the replay below recovers the precise
      // covering round.
      snap_tokens_ = tokens_;
      snap_rngs_.assign(lane_rngs_.data(), lane_rngs_.data() + tokens_.size());
      snap_tracker_ = tracker_;
      run_rounds_bucketed(horizon, options.laziness);
      ++stats_.horizons;
      done += horizon;
    }
    note_run_observed(last, horizon);
    last = stats_;
    if (o != nullptr && o->progress != nullptr) o->progress->tick();
    if (tracker_.num_visited() >= target) {
      tokens_ = snap_tokens_;
      std::copy(snap_rngs_.begin(), snap_rngs_.end(), lane_rngs_.data());
      tracker_ = snap_tracker_;
      std::uint64_t round = 0;
      {
        obs::TraceSpan span(trace, "cover-replay", "block");
        round = replay_cover_rounds(target, horizon, options.laziness);
      }
      note_run_observed(last, 0);
      sample.steps = done - horizon + round;
      sample.covered = true;
      return sample;
    }
  }
  sample.steps = options.step_cap;
  sample.covered = false;
  return sample;
}

void BlockWalkEngine::run_for_steps(std::uint64_t rounds, Rng& rng,
                                    double laziness) {
  MW_REQUIRE(!tokens_.empty(), "no tokens; call reset() before running");
  MW_REQUIRE(laziness >= 0.0 && laziness < 1.0, "laziness must be in [0,1)");
  if (rounds == 0) return;
  ensure_lanes(rng);
  const Stats before = stats_;
  const std::uint64_t total_rounds = rounds;
  obs::RunObserver* const o = obs::observer();
  obs::TraceWriter* const trace = o != nullptr ? o->trace : nullptr;
  while (rounds > 0) {
    const auto horizon = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBlockHorizon, rounds));
    {
      obs::TraceSpan span(trace, "horizon", "block");
      run_rounds_bucketed(horizon, laziness);
    }
    ++stats_.horizons;
    rounds -= horizon;
    if (o != nullptr && o->progress != nullptr) o->progress->tick();
  }
  note_run_observed(before, total_rounds);
}

void BlockWalkEngine::run_rounds_bucketed(std::uint32_t rounds_each,
                                          double laziness) {
  rounds_left_.assign(tokens_.size(), rounds_each);
  while (true) {
    buckets_.rebuild(tokens_, rounds_left_, graph_->block_bits(),
                     graph_->num_blocks());
    const auto touched = buckets_.touched_blocks();
    if (touched.empty()) break;
    ++stats_.bucket_passes;
    for (const std::uint32_t b : touched) {
      process_block(b, laziness);
    }
  }
}

void BlockWalkEngine::process_block(std::uint32_t block, double laziness) {
  ++stats_.block_visits;
  obs::RunObserver* const o = obs::observer();
  obs::TraceSpan span(o != nullptr ? o->trace : nullptr, "block-visit",
                      "block");
  if (o != nullptr && o->trace != nullptr) {
    span.set_args("\"block\":" + std::to_string(block) + ",\"walkers\":" +
                  std::to_string(buckets_.lanes_in(block).size()));
  }
  const std::byte* raw = cache_.acquire(graph_->block_byte_begin(block),
                                        graph_->block_byte_end(block));
  // block_byte_begin is 4-aligned (targets_begin + 4*arc) by format.
  const auto* block_targets = reinterpret_cast<const Vertex*>(raw);
  const std::uint64_t arc0 = graph_->block_arc_begin(block);
  const std::uint64_t* const offsets = graph_->offsets().data();
  const std::uint32_t bits = graph_->block_bits();
  Rng* const rngs = lane_rngs_.data();

  for (const std::uint32_t lane : buckets_.lanes_in(block)) {
    Vertex v = tokens_[lane];
    std::uint32_t left = rounds_left_[lane];
    Rng rng = rngs[lane];
    // Per-step draws match the in-core lane kernels exactly (see
    // with_any_lane_draw's draw-stream invariant): an optional uniform01
    // iff laziness > 0, then lane_neighbor_index(rng, degree).
    while (left > 0) {
      if (laziness > 0.0 && rng.uniform01() < laziness) {
        --left;
        tracker_.visit(v);
        continue;
      }
      const auto degree = static_cast<Vertex>(offsets[v + 1] - offsets[v]);
      const std::uint64_t arc = offsets[v] + lane_neighbor_index(rng, degree);
      v = block_targets[arc - arc0];
      --left;
      tracker_.visit(v);
      if ((v >> bits) != block) break;  // exited: resume on a later pass
    }
    tokens_[lane] = v;
    rngs[lane] = rng;
    rounds_left_[lane] = left;
    // Round budget left means the walker exited this block and a later
    // pass resumes it elsewhere: one bucket migration.
    if (left > 0) ++stats_.bucket_migrations;
  }
}

void BlockWalkEngine::note_run_observed(const Stats& before,
                                        std::uint64_t rounds) const {
  obs::RunObserver* const o = obs::observer();
  if (o == nullptr || o->metrics == nullptr) return;
  obs::WorkerCounters& m = obs::thread_counters();
  m.add(obs::Metric::kRounds, rounds);
  m.add(obs::Metric::kSteps, rounds * tokens_.size());
  m.add(obs::Metric::kBucketPasses,
        stats_.bucket_passes - before.bucket_passes);
  m.add(obs::Metric::kBlockVisits, stats_.block_visits - before.block_visits);
  m.add(obs::Metric::kBucketMigrations,
        stats_.bucket_migrations - before.bucket_migrations);
  m.add(obs::Metric::kReplayedRounds,
        stats_.replayed_rounds - before.replayed_rounds);
}

std::uint64_t BlockWalkEngine::replay_cover_rounds(Vertex target,
                                                   std::uint32_t horizon,
                                                   double laziness) {
  // Lockstep replay from the snapshot: one round per sweep, coverage
  // checked at round granularity — exactly the in-core serial loop's
  // convention ("a round always finishes even if coverage is reached
  // mid-round").
  for (std::uint32_t round = 1; round <= horizon; ++round) {
    run_rounds_bucketed(1, laziness);
    ++stats_.replayed_rounds;
    if (tracker_.num_visited() >= target) return round;
  }
  // Unreachable: the asynchronous horizon reached coverage, and its end
  // state equals the lockstep end state.
  MW_REQUIRE(false, "cover replay did not reproduce horizon coverage");
  return horizon;
}

}  // namespace manywalks
