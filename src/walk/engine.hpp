// Batched k-walk engine: the hot path behind every cover-time sampler.
//
// The per-step helpers in walker.hpp re-derive degree and neighbor spans
// through the Graph accessors on every call. WalkEngine instead binds the
// CSR arrays (row offsets + neighbor targets) once, validates everything
// up front, and then advances ALL k tokens per round with raw-pointer
// indexing, a loop-hoisted laziness branch, and a word-level visited
// scratch that stays cache-resident on large graphs.
//
// Determinism contract (tested in tests/test_engine.cpp): for the same Rng
// stream the engine consumes random draws token by token in exactly the
// order of the walker.hpp path — one uniform_below(degree) per step, with a
// preceding uniform01 draw iff laziness > 0 — so sampled cover times are
// byte-identical to the pre-engine implementation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walk/cover.hpp"
#include "walk/visit_tracker.hpp"

namespace manywalks {

class WalkEngine {
 public:
  /// Binds to `g` and validates walkability once. The graph's CSR arrays
  /// must outlive the engine; the engine holds pointers, not a copy.
  explicit WalkEngine(const Graph& g);

  /// Re-seeds the tokens (each validated against the vertex range) and
  /// resets the visited scratch; the starts count as visited at t = 0.
  /// Cheap enough to call once per Monte-Carlo trial.
  void reset(std::span<const Vertex> starts);

  /// Advances all tokens round by round until `target` distinct vertices
  /// have been visited or `options.step_cap` rounds have run. A round
  /// always finishes even if coverage is reached mid-round, matching the
  /// round-granular timing convention in cover.hpp.
  CoverSample run_until_visited(Vertex target, Rng& rng,
                                const CoverOptions& options = {});

  /// Advances all tokens for exactly `rounds` rounds, marking visits. When
  /// `visit_counts` is non-null it must point at num_vertices() counters;
  /// each token increments its landing vertex's counter every step.
  void run_for_steps(std::uint64_t rounds, Rng& rng, double laziness = 0.0,
                     std::uint64_t* visit_counts = nullptr);

  /// True iff this engine was constructed against exactly g's live CSR
  /// arrays (compared by data pointer and size, not graph address), so a
  /// cached engine can never silently run on a different graph.
  bool bound_to(const Graph& g) const {
    return row_offsets_ == g.offsets().data() &&
           neighbors_ == g.targets().data() &&
           num_vertices_ == g.num_vertices();
  }

  std::size_t num_tokens() const { return tokens_.size(); }
  std::span<const Vertex> tokens() const { return tokens_; }
  Vertex num_vertices() const { return num_vertices_; }
  Vertex num_visited() const { return tracker_.num_visited(); }
  bool visited(Vertex v) const { return tracker_.visited(v); }

 private:
  template <bool kLazy>
  CoverSample run_until_visited_impl(Vertex target, Rng& rng,
                                     const CoverOptions& options);
  template <bool kLazy>
  void run_for_steps_impl(std::uint64_t rounds, Rng& rng, double laziness,
                          std::uint64_t* visit_counts);

  const std::uint64_t* row_offsets_;  // |V|+1 entries, from Graph::offsets()
  const Vertex* neighbors_;           // num_arcs entries, from Graph::targets()
  Vertex num_vertices_;
  std::vector<Vertex> tokens_;
  WordVisitTracker tracker_;
};

}  // namespace manywalks
