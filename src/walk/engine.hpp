// Batched k-walk engine: the hot path behind every cover-time sampler.
//
// The per-step helpers in walker.hpp re-derive degree and neighbor spans
// through the Graph accessors on every call. WalkEngineT instead binds a
// Substrate (graph/substrate.hpp) once — the CSR arrays for an explicit
// Graph, or a closed-form adjacency for the implicit families — and then
// advances ALL k tokens per round with a register-resident substrate copy,
// a loop-hoisted laziness branch, and a word-level visited scratch that
// stays cache-resident on large graphs. On an implicit substrate the
// n/8-byte scratch is the ONLY O(n) allocation, which is what lets the
// giant-graph experiments run at n = 10^7–10^8 with no CSR ever built.
//
// Determinism contract (tested in tests/test_engine.cpp and
// tests/test_substrate.cpp): for the same Rng stream the engine consumes
// random draws token by token in exactly the order of the walker.hpp path
// — one uniform_below(degree) per step, with a preceding uniform01 draw
// iff laziness > 0 — so the CSR instantiation samples cover times
// byte-identical to the pre-engine implementation, and an implicit
// substrate whose neighbor order matches CSR (cycle, torus, complete) is
// bit-identical to the CSR engine too.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/substrate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "walk/cover_types.hpp"
#include "walk/visit_tracker.hpp"

namespace manywalks {

namespace detail {

/// One token step over a substrate. Draw order matches walker.hpp: lazy
/// walks spend one uniform01 before the (possibly skipped) neighbor draw;
/// simple walks spend exactly one uniform_below(degree).
template <bool kLazy, class S>
inline Vertex advance_token(Vertex v, const S& substrate, Rng& rng,
                            double laziness) {
  if constexpr (kLazy) {
    if (rng.uniform01() < laziness) return v;
  }
  const Vertex degree = substrate.degree(v);
  return substrate.neighbor(v, rng.uniform_below(degree));
}

}  // namespace detail

template <class S>
class WalkEngineT {
  static_assert(Substrate<S>,
                "WalkEngineT requires a Substrate (wrap a Graph in "
                "CsrSubstrate, or use WalkEngine)");

 public:
  /// Binds the substrate by value. For CsrSubstrate the underlying Graph's
  /// CSR arrays must outlive the engine; implicit substrates carry no
  /// external state. Walkability is the substrate's own invariant (every
  /// substrate guarantees min degree >= 1 by construction; the Graph-facing
  /// WalkEngine validates it once at binding).
  explicit WalkEngineT(const S& substrate)
      : substrate_(substrate),
        num_vertices_(substrate.num_vertices()),
        tracker_(substrate.num_vertices()) {
    MW_REQUIRE(num_vertices_ >= 1, "walk on empty substrate");
  }

  /// Re-seeds the tokens (each validated against the vertex range) and
  /// resets the visited scratch; the starts count as visited at t = 0.
  /// Cheap enough to call once per Monte-Carlo trial.
  void reset(std::span<const Vertex> starts) {
    MW_REQUIRE(!starts.empty(), "k-walk needs at least one token");
    tracker_.reset();
    tokens_.assign(starts.begin(), starts.end());
    for (Vertex s : tokens_) {
      MW_REQUIRE(s < num_vertices_, "start vertex out of range");
      tracker_.visit(s);
    }
  }

  /// Advances all tokens round by round until `target` distinct vertices
  /// have been visited or `options.step_cap` rounds have run. A round
  /// always finishes even if coverage is reached mid-round, matching the
  /// round-granular timing convention in cover.hpp.
  CoverSample run_until_visited(Vertex target, Rng& rng,
                                const CoverOptions& options = {}) {
    MW_REQUIRE(!tokens_.empty(), "no tokens; call reset() before running");
    MW_REQUIRE(target <= num_vertices_,
               "target " << target << " exceeds num_vertices "
                         << num_vertices_);
    MW_REQUIRE(options.laziness >= 0.0 && options.laziness < 1.0,
               "laziness must be in [0,1)");
    CoverSample sample;
    if (tracker_.num_visited() >= target) {
      sample.covered = true;
      return sample;
    }
    return options.laziness > 0.0
               ? run_until_visited_impl<true>(target, rng, options)
               : run_until_visited_impl<false>(target, rng, options);
  }

  /// Advances all tokens for exactly `rounds` rounds, marking visits. When
  /// `visit_counts` is non-null it must point at num_vertices() counters;
  /// each token increments its landing vertex's counter every step.
  void run_for_steps(std::uint64_t rounds, Rng& rng, double laziness = 0.0,
                     std::uint64_t* visit_counts = nullptr) {
    MW_REQUIRE(!tokens_.empty(), "no tokens; call reset() before running");
    MW_REQUIRE(laziness >= 0.0 && laziness < 1.0, "laziness must be in [0,1)");
    if (laziness > 0.0) {
      run_for_steps_impl<true>(rounds, rng, laziness, visit_counts);
    } else {
      run_for_steps_impl<false>(rounds, rng, laziness, visit_counts);
    }
  }

  const S& substrate() const noexcept { return substrate_; }
  std::size_t num_tokens() const { return tokens_.size(); }
  std::span<const Vertex> tokens() const { return tokens_; }
  Vertex num_vertices() const { return num_vertices_; }
  Vertex num_visited() const { return tracker_.num_visited(); }
  bool visited(Vertex v) const { return tracker_.visited(v); }

 private:
  template <bool kLazy>
  CoverSample run_until_visited_impl(Vertex target, Rng& rng,
                                     const CoverOptions& options) {
    const S substrate = substrate_;  // register-resident copy for the loop
    Vertex* const toks = tokens_.data();
    std::uint64_t* const words = tracker_.words();
    const std::size_t k = tokens_.size();
    const double laziness = options.laziness;
    Vertex visited = tracker_.num_visited();

    CoverSample sample;
    std::uint64_t t = 0;
    while (t < options.step_cap) {
      ++t;
      for (std::size_t i = 0; i < k; ++i) {
        const Vertex v =
            detail::advance_token<kLazy>(toks[i], substrate, rng, laziness);
        toks[i] = v;
        std::uint64_t& word = words[v >> 6];
        const std::uint64_t bit = std::uint64_t{1} << (v & 63);
        if ((word & bit) == 0) {
          word |= bit;
          ++visited;
        }
      }
      if (visited >= target) {
        tracker_.set_num_visited(visited);
        sample.steps = t;
        sample.covered = true;
        return sample;
      }
    }
    tracker_.set_num_visited(visited);
    sample.steps = options.step_cap;
    sample.covered = false;
    return sample;
  }

  template <bool kLazy>
  void run_for_steps_impl(std::uint64_t rounds, Rng& rng, double laziness,
                          std::uint64_t* visit_counts) {
    const S substrate = substrate_;
    Vertex* const toks = tokens_.data();
    std::uint64_t* const words = tracker_.words();
    const std::size_t k = tokens_.size();
    Vertex visited = tracker_.num_visited();

    for (std::uint64_t t = 0; t < rounds; ++t) {
      for (std::size_t i = 0; i < k; ++i) {
        const Vertex v =
            detail::advance_token<kLazy>(toks[i], substrate, rng, laziness);
        toks[i] = v;
        std::uint64_t& word = words[v >> 6];
        const std::uint64_t bit = std::uint64_t{1} << (v & 63);
        if ((word & bit) == 0) {
          word |= bit;
          ++visited;
        }
        if (visit_counts != nullptr) ++visit_counts[v];
      }
    }
    tracker_.set_num_visited(visited);
  }

  S substrate_;
  Vertex num_vertices_;
  std::vector<Vertex> tokens_;
  WordVisitTracker tracker_;
};

// The instantiations every caller uses live in engine.cpp; a custom
// substrate type instantiates from this header as usual.
extern template class WalkEngineT<CsrSubstrate>;
extern template class WalkEngineT<CycleSubstrate>;
extern template class WalkEngineT<TorusSubstrate>;
extern template class WalkEngineT<HypercubeSubstrate>;
extern template class WalkEngineT<CompleteSubstrate>;

/// The historical Graph-facing engine: the CsrSubstrate instantiation plus
/// one-time walkability validation and the live-array binding check.
class WalkEngine : public WalkEngineT<CsrSubstrate> {
 public:
  /// Binds to `g` and validates walkability once. The graph's CSR arrays
  /// must outlive the engine; the engine holds pointers, not a copy.
  explicit WalkEngine(const Graph& g);

  /// True iff this engine was constructed against exactly g's live CSR
  /// arrays (compared by data pointer and size, not graph address), so a
  /// cached engine can never silently run on a different graph. A pure
  /// query: never throws, even for an unwalkable g.
  bool bound_to(const Graph& g) const noexcept {
    return substrate().reads_arrays_of(g);
  }
};

}  // namespace manywalks
