// Batched k-walk engine: the hot path behind every cover-time sampler.
//
// The per-step helpers in walker.hpp re-derive degree and neighbor spans
// through the Graph accessors on every call. WalkEngineT instead binds a
// Substrate (graph/substrate.hpp) once — the CSR arrays for an explicit
// Graph, or a closed-form adjacency for the implicit families — and then
// advances ALL k tokens per round with a register-resident substrate copy,
// a loop-hoisted laziness branch, and a word-level visited scratch that
// stays cache-resident on large graphs. On an implicit substrate the
// n/8-byte scratch is the ONLY O(n) allocation, which is what lets the
// giant-graph experiments run at n = 10^7–10^8 with no CSR ever built.
//
// Two sampling modes (CoverOptions::rng_mode; docs/ARCHITECTURE.md "RNG
// scheme" for the full determinism contract v2):
//
//   * kSharedLegacy — all k tokens consume ONE caller stream token by
//     token in exactly the walker.hpp order: one uniform_below(degree) per
//     step, with a preceding uniform01 draw iff laziness > 0. Byte-
//     identical to the pre-engine implementation (tests/test_engine.cpp,
//     tests/test_substrate.cpp) and to the pre-lane engine (golden tests
//     in tests/test_lane_rng.cpp). The shared stream serializes the round
//     loop: token i+1's draw depends on token i's rng.next().
//
//   * kLane — each token owns an independent stream derived from a single
//     64-bit lane master (drawn once from the caller's stream at the first
//     run after reset(); make_lane_rng(master, i) for lane i). Independent
//     lanes break the cross-token dependency chain, so the round loop is
//     software-pipelined: tokens are processed in blocks of kLaneBlock,
//     and while one stage computes, prefetches for the next stage's CSR
//     offset rows, neighbor words, and visit-tracker words are already in
//     flight. The neighbor draw is lane_neighbor_index(rng, degree) — a
//     pure function of (lane stream, degree), mask for power-of-two
//     degrees, full-word Lemire otherwise — so CSR and implicit engines of
//     the same CSR-ordered family stay bit-identical in lane mode too.
//     Still bit-reproducible across --threads values and schedulers.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/substrate.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/progress.hpp"
#include "util/check.hpp"
#include "util/prefetch.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "walk/cover_types.hpp"
#include "walk/visit_tracker.hpp"

namespace manywalks {

namespace detail {

/// One token step over a substrate, legacy shared stream. Draw order
/// matches walker.hpp: lazy walks spend one uniform01 before the (possibly
/// skipped) neighbor draw; simple walks spend exactly one
/// uniform_below(degree).
template <bool kLazy, class S>
inline Vertex advance_token(Vertex v, const S& substrate, Rng& rng,
                            double laziness) {
  if constexpr (kLazy) {
    if (rng.uniform01() < laziness) return v;
  }
  const Vertex degree = substrate.degree(v);
  return substrate.neighbor(v, rng.uniform_below(degree));
}

/// Lanes per pipeline block. 16 independent loads in flight comfortably
/// saturates the miss queues of current cores while the stage scratch
/// (two 16-entry arrays) stays in registers/L1.
inline constexpr std::size_t kLaneBlock = 16;

/// Stage-1 marker for a lane that drew "stay put" (lazy walks only); no
/// real arc index can be ~0 (num_arcs < 2^64).
inline constexpr std::uint64_t kStayArc = ~std::uint64_t{0};

/// Marks one landing in the visit scratch (and the optional counters).
template <bool kCounts>
inline void commit_visit(Vertex v, std::uint64_t* words, Vertex& visited,
                         [[maybe_unused]] std::uint64_t* counts) {
  std::uint64_t& word = words[v >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (v & 63);
  if ((word & bit) == 0) {
    word |= bit;
    ++visited;
  }
  if constexpr (kCounts) ++counts[v];
}

/// One pipelined lane-mode round over an arc-addressable (CSR) substrate.
/// Three stages per block, each issuing the next stage's prefetches while
/// the current one computes:
///   1. offset-row loads + per-lane draws, prefetch the neighbor words;
///   2. neighbor loads, prefetch the visit-tracker words (and the NEXT
///      block's offset rows, overlapping its stage 1);
///   3. commit tokens/bits/counters, warm the landing vertex's offset row
///      for the next round.
template <bool kLazy, bool kCounts, class S>
inline void lane_round_csr(const S& substrate, Vertex* toks, Rng* rngs,
                           std::size_t k, [[maybe_unused]] double laziness,
                           std::uint64_t* words, Vertex& visited,
                           [[maybe_unused]] std::uint64_t* counts) {
  std::uint64_t arcs[kLaneBlock];
  Vertex nexts[kLaneBlock];
  const std::size_t first = std::min(k, kLaneBlock);
  for (std::size_t j = 0; j < first; ++j) {
    substrate.prefetch_degree_row(toks[j]);
  }
  for (std::size_t base = 0; base < k; base += kLaneBlock) {
    const std::size_t nb = std::min(kLaneBlock, k - base);
    for (std::size_t j = 0; j < nb; ++j) {  // stage 1
      const std::size_t i = base + j;
      const Vertex v = toks[i];
      if constexpr (kLazy) {
        if (rngs[i].uniform01() < laziness) {
          arcs[j] = kStayArc;
          nexts[j] = v;
          continue;
        }
      }
      const auto degree = static_cast<std::uint32_t>(substrate.degree(v));
      const std::uint64_t arc = substrate.arc_index(
          v, static_cast<Vertex>(lane_neighbor_index(rngs[i], degree)));
      arcs[j] = arc;
      substrate.prefetch_arc(arc);
    }
    const std::size_t next_base = base + kLaneBlock;
    if (next_base < k) {  // overlap the next block's stage-1 row loads
      const std::size_t nn = std::min(kLaneBlock, k - next_base);
      for (std::size_t j = 0; j < nn; ++j) {
        substrate.prefetch_degree_row(toks[next_base + j]);
      }
    }
    for (std::size_t j = 0; j < nb; ++j) {  // stage 2
      if constexpr (kLazy) {
        if (arcs[j] == kStayArc) {
          mw_prefetch(&words[nexts[j] >> 6]);
          continue;
        }
      }
      const Vertex v = substrate.arc_target(arcs[j]);
      nexts[j] = v;
      mw_prefetch(&words[v >> 6]);
    }
    for (std::size_t j = 0; j < nb; ++j) {  // stage 3
      const Vertex v = nexts[j];
      toks[base + j] = v;
      commit_visit<kCounts>(v, words, visited, counts);
      substrate.prefetch_degree_row(v);
    }
  }
}

// Draw policies for the direct (non-arc-addressable) lane round. All three
// consume exactly the draws of lane_neighbor_index(rng, degree) — the
// hoisted variants just resolve its power-of-two branch outside the loop.

/// degree is a power of two: one raw word, masked.
struct LaneMaskDraw {
  std::uint64_t mask;
  template <class S>
  Vertex operator()(Rng& rng, const S&, Vertex) const noexcept {
    return static_cast<Vertex>(rng.next() & mask);
  }
};

/// Uniform degree, not a power of two: hoisted full-word Lemire.
struct LaneWideDraw {
  std::uint32_t degree;
  template <class S>
  Vertex operator()(Rng& rng, const S&, Vertex) const noexcept {
    return static_cast<Vertex>(rng.uniform_below_wide(degree));
  }
};

/// Arbitrary substrate: per-vertex degree through lane_neighbor_index.
struct LanePerVertexDraw {
  template <class S>
  Vertex operator()(Rng& rng, const S& substrate, Vertex v) const noexcept {
    return static_cast<Vertex>(lane_neighbor_index(
        rng, static_cast<std::uint32_t>(substrate.degree(v))));
  }
};

/// One lane-mode round over a closed-form substrate: the adjacency costs
/// no loads, so no staging is worth its overhead — a fused loop of k
/// independent (rng, position) chains already lets the core overlap the
/// tracker-word accesses, the only memory the implicit families touch.
template <bool kLazy, bool kCounts, class S, class Draw>
inline void lane_round_direct(const S& substrate, Draw draw, Vertex* toks,
                              Rng* rngs, std::size_t k,
                              [[maybe_unused]] double laziness,
                              std::uint64_t* words, Vertex& visited,
                              [[maybe_unused]] std::uint64_t* counts) {
  for (std::size_t i = 0; i < k; ++i) {
    Vertex v = toks[i];
    if constexpr (kLazy) {
      if (rngs[i].uniform01() < laziness) {
        commit_visit<kCounts>(v, words, visited, counts);
        continue;
      }
    }
    v = substrate.neighbor(v, draw(rngs[i], substrate, v));
    toks[i] = v;
    commit_visit<kCounts>(v, words, visited, counts);
  }
}

/// All `rounds` lane-mode steps of every lane, lane-major: with no
/// per-round coverage check to honor, each lane's whole strip runs with
/// its RNG state and position in registers (the per-step state load/store
/// tax of the round-major schedule is what keeps ALU-bound substrates at
/// legacy parity). Tracker-bit sets and visit-counter increments commute
/// and lanes never read each other's state in a fixed-rounds run, so the
/// final tokens/visited-set/counts are identical to the round-major
/// schedule. Arc-addressable substrates keep the round-major kernels:
/// their throughput comes from overlapping k independent memory chains,
/// which lane-major would serialize.
template <bool kLazy, bool kCounts, class S, class Draw>
inline void lane_steps_lane_major(const S& substrate, Draw draw,
                                  std::uint64_t rounds, Vertex* toks,
                                  Rng* rngs, std::size_t k,
                                  [[maybe_unused]] double laziness,
                                  std::uint64_t* words, Vertex& visited,
                                  [[maybe_unused]] std::uint64_t* counts) {
  const auto advance = [&](Rng& rng, Vertex v) {
    if constexpr (kLazy) {
      if (rng.uniform01() < laziness) {
        commit_visit<kCounts>(v, words, visited, counts);
        return v;
      }
    }
    v = substrate.neighbor(v, draw(rng, substrate, v));
    commit_visit<kCounts>(v, words, visited, counts);
    return v;
  };
  // Four lanes per strip: their states stay register/L1-local across all
  // rounds, and interleaving four independent chains keeps long-latency
  // neighbor math (e.g. the torus division) pipelined — the cross-lane ILP
  // a one-lane strip would forfeit.
  std::size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    Rng r0 = rngs[i], r1 = rngs[i + 1], r2 = rngs[i + 2], r3 = rngs[i + 3];
    Vertex v0 = toks[i], v1 = toks[i + 1], v2 = toks[i + 2],
           v3 = toks[i + 3];
    for (std::uint64_t t = 0; t < rounds; ++t) {
      v0 = advance(r0, v0);
      v1 = advance(r1, v1);
      v2 = advance(r2, v2);
      v3 = advance(r3, v3);
    }
    rngs[i] = r0;
    rngs[i + 1] = r1;
    rngs[i + 2] = r2;
    rngs[i + 3] = r3;
    toks[i] = v0;
    toks[i + 1] = v1;
    toks[i + 2] = v2;
    toks[i + 3] = v3;
  }
  for (; i < k; ++i) {  // tail lanes, one strip each
    Rng rng = rngs[i];
    Vertex v = toks[i];
    for (std::uint64_t t = 0; t < rounds; ++t) v = advance(rng, v);
    toks[i] = v;
    rngs[i] = rng;
  }
}

/// One lane-mode round over a REGULAR arc-addressable substrate
/// (regular_stride() != 0): arc = stride*v + draw needs no offset-row
/// load, so each lane's per-step dependency chain is exactly one memory
/// access — the neighbor word — and the loop prefetches the landing
/// vertex's adjacency row the moment it is known, a full round before the
/// next draw reads it.
template <bool kLazy, bool kCounts, class S, class Draw>
inline void lane_round_csr_regular(const S& substrate, Draw draw,
                                   std::uint64_t stride, Vertex* toks,
                                   Rng* rngs, std::size_t k,
                                   [[maybe_unused]] double laziness,
                                   std::uint64_t* words, Vertex& visited,
                                   [[maybe_unused]] std::uint64_t* counts) {
  for (std::size_t i = 0; i < k; ++i) {
    Vertex v = toks[i];
    if constexpr (kLazy) {
      if (rngs[i].uniform01() < laziness) {
        commit_visit<kCounts>(v, words, visited, counts);
        continue;
      }
    }
    const std::uint64_t arc =
        stride * v + draw(rngs[i], substrate, v);
    v = substrate.arc_target(arc);
    toks[i] = v;
    substrate.prefetch_arc(stride * v);  // next round's row, one round early
    commit_visit<kCounts>(v, words, visited, counts);
  }
}

}  // namespace detail

template <class S>
class WalkEngineT {
  static_assert(Substrate<S>,
                "WalkEngineT requires a Substrate (wrap a Graph in "
                "CsrSubstrate, or use WalkEngine)");

 public:
  /// Binds the substrate by value. For CsrSubstrate the underlying Graph's
  /// CSR arrays must outlive the engine; implicit substrates carry no
  /// external state. Walkability is the substrate's own invariant (every
  /// substrate guarantees min degree >= 1 by construction; the Graph-facing
  /// WalkEngine validates it once at binding).
  explicit WalkEngineT(const S& substrate)
      : substrate_(substrate),
        num_vertices_(substrate.num_vertices()),
        tracker_(substrate.num_vertices()) {
    MW_REQUIRE(num_vertices_ >= 1, "walk on empty substrate");
  }

  /// Re-seeds the tokens (each validated against the vertex range) and
  /// resets the visited scratch; the starts count as visited at t = 0.
  /// Cheap enough to call once per Monte-Carlo trial. Also discards any
  /// lane streams: the next lane-mode run derives fresh lanes from its
  /// caller's stream.
  void reset(std::span<const Vertex> starts) {
    MW_REQUIRE(!starts.empty(), "k-walk needs at least one token");
    tracker_.reset();
    tokens_.assign(starts.begin(), starts.end());
    for (Vertex s : tokens_) {
      MW_REQUIRE(s < num_vertices_, "start vertex out of range");
      tracker_.visit(s);
    }
    lanes_seeded_ = false;
  }

  /// Advances all tokens round by round until `target` distinct vertices
  /// have been visited or `options.step_cap` rounds have run. A round
  /// always finishes even if coverage is reached mid-round, matching the
  /// round-granular timing convention in cover.hpp.
  CoverSample run_until_visited(Vertex target, Rng& rng,
                                const CoverOptions& options = {}) {
    MW_REQUIRE(!tokens_.empty(), "no tokens; call reset() before running");
    MW_REQUIRE(target <= num_vertices_,
               "target " << target << " exceeds num_vertices "
                         << num_vertices_);
    MW_REQUIRE(options.laziness >= 0.0 && options.laziness < 1.0,
               "laziness must be in [0,1)");
    CoverSample sample;
    if (tracker_.num_visited() >= target) {
      sample.covered = true;
      return sample;
    }
    if (options.rng_mode == RngMode::kLane) {
      if (options.step_cap == 0) return sample;  // no rounds, no draws
      ensure_lanes(rng);
      if (const unsigned shards = resolved_lane_shards(options); shards > 0) {
        // Determinism contract v3: the sharded driver is byte-identical to
        // the serial lane path for every shard/thread count (lane
        // trajectories are pure functions of the per-token streams and the
        // visited set is a schedule-invariant union).
        sample = options.laziness > 0.0
                     ? run_until_visited_sharded<true>(target, options, shards)
                     : run_until_visited_sharded<false>(target, options,
                                                        shards);
      } else {
        sample = options.laziness > 0.0
                     ? run_until_visited_lane<true>(target, options)
                     : run_until_visited_lane<false>(target, options);
      }
    } else {
      sample = options.laziness > 0.0
                   ? run_until_visited_impl<true>(target, rng, options)
                   : run_until_visited_impl<false>(target, rng, options);
    }
    note_rounds_observed(sample.steps);
    return sample;
  }

  /// Advances all tokens for exactly `rounds` rounds, marking visits. When
  /// `visit_counts` is non-null it must point at num_vertices() counters;
  /// each token increments its landing vertex's counter every step.
  /// Chunked calls are equivalent to one combined call in both modes
  /// (lane mode seeds its lanes once, at the first non-empty run after
  /// reset(), consuming exactly one draw of `rng`).
  void run_for_steps(std::uint64_t rounds, Rng& rng, double laziness = 0.0,
                     std::uint64_t* visit_counts = nullptr,
                     RngMode rng_mode = RngMode::kSharedLegacy) {
    MW_REQUIRE(!tokens_.empty(), "no tokens; call reset() before running");
    MW_REQUIRE(laziness >= 0.0 && laziness < 1.0, "laziness must be in [0,1)");
    if (rng_mode == RngMode::kLane) {
      if (rounds == 0) return;
      ensure_lanes(rng);
      if (laziness > 0.0) {
        visit_counts != nullptr
            ? run_for_steps_lane<true, true>(rounds, laziness, visit_counts)
            : run_for_steps_lane<true, false>(rounds, laziness, visit_counts);
      } else {
        visit_counts != nullptr
            ? run_for_steps_lane<false, true>(rounds, laziness, visit_counts)
            : run_for_steps_lane<false, false>(rounds, laziness, visit_counts);
      }
      note_rounds_observed(rounds);
      return;
    }
    if (laziness > 0.0) {
      visit_counts != nullptr
          ? run_for_steps_impl<true, true>(rounds, rng, laziness, visit_counts)
          : run_for_steps_impl<true, false>(rounds, rng, laziness,
                                            visit_counts);
    } else {
      visit_counts != nullptr
          ? run_for_steps_impl<false, true>(rounds, rng, laziness,
                                            visit_counts)
          : run_for_steps_impl<false, false>(rounds, rng, laziness,
                                             visit_counts);
    }
    note_rounds_observed(rounds);
  }

  const S& substrate() const noexcept { return substrate_; }
  std::size_t num_tokens() const { return tokens_.size(); }
  std::span<const Vertex> tokens() const { return tokens_; }
  Vertex num_vertices() const { return num_vertices_; }
  Vertex num_visited() const { return tracker_.num_visited(); }
  bool visited(Vertex v) const { return tracker_.visited(v); }

 private:
  /// Derives the per-token lane streams on the first lane-mode run after a
  /// reset(): one 64-bit lane master off the caller's stream, then
  /// make_lane_rng(master, i) per lane. Subsequent (chunked) runs continue
  /// the same lanes and never touch `rng` again.
  void ensure_lanes(Rng& rng) {
    if (!lanes_seeded_) {
      lane_rngs_.reseed(rng.next(), tokens_.size());
      lanes_seeded_ = true;
    }
  }

  /// Observability flush, once per run_* call (never inside a round loop):
  /// one pointer test when observability is off. Writes the calling
  /// thread's scratch, never the registry — trials may run on pool workers
  /// (kTrials Monte-Carlo), and the scratch keeps that race-free.
  void note_rounds_observed(std::uint64_t rounds) const {
    obs::RunObserver* const o = obs::observer();
    if (o == nullptr || o->metrics == nullptr) return;
    obs::WorkerCounters& scratch = obs::thread_counters();
    scratch.add(obs::Metric::kRounds, rounds);
    scratch.add(obs::Metric::kSteps, rounds * tokens_.size());
  }

  /// Hands `body` the hoisted draw policy for a known uniform degree —
  /// mask for powers of two, full-word Lemire otherwise. The single place
  /// the hoisted dispatch is spelled: both the uniform-degree substrates
  /// and the regular-CSR stride path resolve through here, so the
  /// draw-stream invariant (every policy consumes exactly the draws of
  /// lane_neighbor_index(rng, degree)) cannot diverge between them.
  template <class Body>
  static auto with_hoisted_draw(std::uint32_t degree, Body&& body) {
    if (std::has_single_bit(degree)) {
      return body(detail::LaneMaskDraw{std::uint64_t{degree} - 1});
    }
    return body(detail::LaneWideDraw{degree});
  }

  /// Resolves the lane draw policy for this substrate — the hoisted mask
  /// or full-word Lemire draw for uniform-degree families (constexpr for
  /// advertised pow2_degree, one runtime has_single_bit otherwise), or the
  /// per-vertex lane_neighbor_index fallback — and hands it to `body`. All
  /// policies consume exactly the draws of lane_neighbor_index(rng,
  /// degree), so the choice never changes the stream.
  template <class Body>
  static auto with_lane_draw(const S& substrate, Body&& body) {
    if constexpr (Pow2DegreeSubstrate<S>) {
      return body(detail::LaneMaskDraw{std::uint64_t{substrate.degree(0)} - 1});
    } else if constexpr (UniformDegreeSubstrate<S>) {
      return with_hoisted_draw(static_cast<std::uint32_t>(substrate.degree(0)),
                               std::forward<Body>(body));
    } else {
      return body(detail::LanePerVertexDraw{});
    }
  }

  /// Resolves the lane ROUND kernel for this substrate — stride-addressed
  /// or staged-pipeline CSR round, fused direct round otherwise — and
  /// hands it to `body` as a nullary callable.
  template <bool kLazy, bool kCounts, class Body>
  auto with_lane_round(const S& substrate, Vertex* toks, Rng* rngs,
                       std::size_t k, double laziness, std::uint64_t* words,
                       Vertex& visited, std::uint64_t* counts, Body&& body) {
    if constexpr (ArcAddressableSubstrate<S>) {
      const auto stride =
          static_cast<std::uint64_t>(substrate.regular_stride());
      if (stride != 0) {
        // Regular graph: stride addressing + the shared hoisted draw
        // dispatch, so the stream is identical to what the general
        // (per-vertex lane_neighbor_index) path would consume.
        return with_hoisted_draw(
            static_cast<std::uint32_t>(stride), [&](auto draw) {
              return body([&, draw] {
                detail::lane_round_csr_regular<kLazy, kCounts>(
                    substrate, draw, stride, toks, rngs, k, laziness, words,
                    visited, counts);
              });
            });
      }
      return body([&] {
        detail::lane_round_csr<kLazy, kCounts>(substrate, toks, rngs, k,
                                               laziness, words, visited,
                                               counts);
      });
    } else {
      return with_lane_draw(substrate, [&](auto draw) {
        return body([&, draw] {
          detail::lane_round_direct<kLazy, kCounts>(substrate, draw, toks,
                                                    rngs, k, laziness, words,
                                                    visited, counts);
        });
      });
    }
  }

  // --- sharded round driver (determinism contract v3) -----------------------
  //
  // Lanes are cut into `shards` contiguous blocks, shard s = lanes
  // [s·k/S, (s+1)·k/S) — a pure function of (k, S), and S itself is a pure
  // function of the CoverOptions plan (never of the pool size), so the
  // schedule assigns the SAME lanes the SAME streams for every thread
  // count. Each round, every shard advances its lanes with the serial lane
  // kernels (plain trackers) or a stream-identical generic advance (atomic
  // tracker); the round barrier then publishes the per-shard counts and
  // every worker replicates the cover decision from shared state, so all
  // of them take the same branch without a coordinator.

  /// First lane of shard s when k lanes split into `shards` blocks.
  static std::size_t shard_lane_begin(std::size_t k, unsigned shards,
                                      unsigned s) {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(s) * k /
                                    shards);
  }

  /// The shard count this run uses; 0 = stay on the serial lane path.
  /// Explicit lane_shards is honored verbatim (clamped to k; 1 still
  /// exercises the sharded driver — the golden-test configuration);
  /// automatic sharding engages only when a team pool was supplied and k
  /// warrants >= 2 shards. The count is never derived from the pool SIZE
  /// (contract v3's thread-invariance), though sharding never changes
  /// results either way.
  unsigned resolved_lane_shards(const CoverOptions& options) const {
    const std::size_t k = tokens_.size();
    unsigned shards = options.lane_shards;
    if (shards == 0) {
      if (options.shard_pool == nullptr) return 0;
      shards = auto_lane_shards(k);
      if (shards <= 1) return 0;  // one shard = the serial path, minus merge
    }
    return static_cast<unsigned>(std::min<std::size_t>(shards, k));
  }

  /// The lane draw policy WITHOUT a round kernel attached: every branch
  /// consumes exactly the draws of lane_neighbor_index(rng, degree) (the
  /// same dispatch with_lane_round resolves), so the atomic tracker's
  /// generic per-lane advance stays stream-identical to the pipelined
  /// kernels on every substrate.
  template <class Body>
  static auto with_any_lane_draw(const S& substrate, Body&& body) {
    if constexpr (ArcAddressableSubstrate<S>) {
      const auto stride =
          static_cast<std::uint64_t>(substrate.regular_stride());
      if (stride != 0) {
        return with_hoisted_draw(static_cast<std::uint32_t>(stride),
                                 std::forward<Body>(body));
      }
      return body(detail::LanePerVertexDraw{});
    } else {
      return with_lane_draw(substrate, std::forward<Body>(body));
    }
  }

  ShardedVisitTracker& ensure_sharded_scratch(unsigned shards) {
    if (sharded_scratch_ == nullptr ||
        sharded_scratch_->num_shards() != shards) {
      sharded_scratch_ =
          std::make_unique<ShardedVisitTracker>(num_vertices_, shards);
    }
    return *sharded_scratch_;
  }

  AtomicVisitTracker& ensure_atomic_scratch(unsigned shards) {
    if (atomic_scratch_ == nullptr || atomic_scratch_->num_shards() != shards) {
      atomic_scratch_ =
          std::make_unique<AtomicVisitTracker>(num_vertices_, shards);
    }
    return *atomic_scratch_;
  }

  template <bool kLazy>
  CoverSample run_until_visited_sharded(Vertex target,
                                        const CoverOptions& options,
                                        unsigned shards) {
    if (options.shard_tracker == ShardTrackerKind::kAtomic) {
      return run_until_visited_sharded_atomic<kLazy>(target, options, shards);
    }
    return run_until_visited_sharded_plain<kLazy>(target, options, shards);
  }

  /// One round of shard s through the relaxed-atomic tracker: a generic
  /// per-lane advance (draws identical to the lane kernels — see
  /// with_any_lane_draw) committing via fetch_or.
  template <bool kLazy>
  void atomic_shard_round(const S& substrate, Vertex* toks, Rng* rngs,
                          std::size_t lane_begin, std::size_t lane_end,
                          [[maybe_unused]] double laziness,
                          AtomicVisitTracker& trk, unsigned s) {
    with_any_lane_draw(substrate, [&](auto draw) {
      for (std::size_t i = lane_begin; i < lane_end; ++i) {
        Vertex v = toks[i];
        if constexpr (kLazy) {
          if (rngs[i].uniform01() < laziness) {
            trk.visit(s, v);
            continue;
          }
        }
        v = substrate.neighbor(v, draw(rngs[i], substrate, v));
        toks[i] = v;
        trk.visit(s, v);
      }
    });
  }

  /// Shared scaffold of both sharded drivers: builds the worker team
  /// (caller + at most team-1 pool workers, pinned to contiguous shard
  /// blocks via parallel_for_static), runs the replicated-control worker
  /// loop, and propagates the first worker exception (the barrier is
  /// poisoned on failure so the rest of the team exits instead of
  /// deadlocking).
  template <class Worker>
  static void run_shard_team(ThreadPool* pool, unsigned team,
                             std::vector<std::exception_ptr>& errors,
                             const Worker& worker) {
    if (team == 1) {
      worker(0);
    } else {
      parallel_for_static(*pool, team, worker);
    }
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  template <bool kLazy>
  CoverSample run_until_visited_sharded_plain(Vertex target,
                                              const CoverOptions& options,
                                              unsigned shards) {
    ShardedVisitTracker& trk = ensure_sharded_scratch(shards);
    trk.reset();
    trk.seed_merged(tracker_.words(), tracker_.num_visited());

    const S substrate = substrate_;
    Vertex* const toks = tokens_.data();
    Rng* const rngs = lane_rngs_.data();
    const std::size_t k = tokens_.size();
    const double laziness = options.laziness;
    const std::size_t wps = trk.words_per_shard();

    ThreadPool* const pool = options.shard_pool;
    const auto team =
        pool == nullptr
            ? 1u
            : static_cast<unsigned>(
                  std::min<std::uint64_t>(pool->size() + 1, shards));

    SpinBarrier barrier(team);
    std::vector<Vertex> partials(team, 0);
    std::vector<std::exception_ptr> errors(team);
    struct WorkerResult {
      std::uint64_t steps = 0;
      std::uint64_t visited = 0;
      std::uint64_t merges = 0;
      std::uint64_t merge_stalls = 0;
      bool covered = false;
    };
    std::vector<WorkerResult> results(team);

    const auto worker = [&](std::uint64_t w) {
      try {
        const auto shard_begin = static_cast<unsigned>(w * shards / team);
        const auto shard_end = static_cast<unsigned>((w + 1) * shards / team);
        const std::size_t word_begin = w * wps / team;
        const std::size_t word_end = (w + 1) * wps / team;

        // Replicated control: every branch below depends only on shared
        // state that is final at the preceding barrier, so all workers
        // agree without a coordinator.
        std::uint64_t t = 0;
        std::uint64_t exact = trk.merged_count();
        std::uint64_t merges = 0;
        std::uint64_t merge_stalls = 0;
        bool covered = false;
        while (t < options.step_cap) {
          ++t;
          // Worker 0 IS the calling thread (run_shard_team/parallel_for_
          // static run chunk 0 on the caller), so the heartbeat and the
          // queue-depth sample stay single-threaded. Printing is the only
          // effect — the walk and merge schedule below never reads the
          // clock.
          if (w == 0 && (t & 255u) == 0) {
            if (obs::RunObserver* const o = obs::observer(); o != nullptr) {
              if (o->metrics != nullptr && pool != nullptr) {
                obs::thread_counters().note_max(obs::Metric::kPoolQueuePeak,
                                                pool->queue_depth());
              }
              if (o->progress != nullptr) o->progress->tick();
            }
          }
          const auto parity = static_cast<unsigned>(t & 1);
          for (unsigned s = shard_begin; s < shard_end; ++s) {
            const std::size_t lane_begin = shard_lane_begin(k, shards, s);
            const std::size_t lane_end = shard_lane_begin(k, shards, s + 1);
            Vertex shard_visited = trk.shard_visited(s);
            with_lane_round<kLazy, false>(
                substrate, toks + lane_begin, rngs + lane_begin,
                lane_end - lane_begin, laziness, trk.shard_words(s),
                shard_visited, nullptr, [](auto&& round) { round(); });
            trk.set_shard_visited(s, shard_visited);
            // Freeze this round's count BEFORE the barrier: the decision
            // below must read parity-t data only, never live counters a
            // fast worker is already bumping in round t+1.
            trk.publish_shard(parity, s);
          }
          if (!barrier.arrive_and_wait()) return;
          // The bound never undercounts the union, so a below-target bound
          // proves the exact merge can be skipped this round; the final
          // round always merges so the post-state is exact. Its inputs are
          // the frozen parity-t deltas plus this worker's OWN replica of
          // the exact count — no live shared state, so every worker takes
          // the same branch (anything less desyncs the barrier pairing:
          // the merge path arrives twice per round, the skip path once).
          const bool final_round = t >= options.step_cap;
          if (trk.upper_bound_visited(parity, exact) < target && !final_round) {
            // The skip decision is replicated, so every worker's stall
            // count is the same; the coordinator flushes worker 0's.
            ++merge_stalls;
            continue;
          }
          ++merges;
          partials[w] = trk.merge_range(word_begin, word_end);
          for (unsigned s = shard_begin; s < shard_end; ++s) {
            trk.snapshot_shard(s);
          }
          if (!barrier.arrive_and_wait()) return;
          std::uint64_t total = 0;
          for (const Vertex partial : partials) total += partial;
          exact = total;
          // Tracker bookkeeping only (post-run state): during the run no
          // peer reads merged_count_ — the replicated decision uses each
          // worker's local `exact` replica of this same reduction.
          if (w == 0) trk.set_merged_count(static_cast<Vertex>(total));
          if (total >= target) {
            covered = true;
            break;
          }
        }
        results[w] = {t, exact, merges, merge_stalls, covered};
      } catch (...) {
        errors[w] = std::current_exception();
        barrier.poison();
      }
    };
    run_shard_team(pool, team, errors, worker);

    // Observability flush on the calling thread after the team joined; the
    // merge/stall decisions are replicated so worker 0's counts are exact.
    if (obs::RunObserver* const o = obs::observer();
        o != nullptr && o->metrics != nullptr) {
      obs::WorkerCounters& scratch = obs::thread_counters();
      scratch.add(obs::Metric::kMerges, results[0].merges);
      scratch.add(obs::Metric::kMergeStalls, results[0].merge_stalls);
    }

    // Post-state identical to the serial path: the merged bitmap is the
    // run's visited set (the final round always merged).
    std::copy(trk.merged_words(), trk.merged_words() + wps, tracker_.words());
    tracker_.set_num_visited(static_cast<Vertex>(results[0].visited));
    CoverSample sample;
    sample.covered = results[0].covered;
    sample.steps = results[0].covered ? results[0].steps : options.step_cap;
    return sample;
  }

  template <bool kLazy>
  CoverSample run_until_visited_sharded_atomic(Vertex target,
                                               const CoverOptions& options,
                                               unsigned shards) {
    AtomicVisitTracker& trk = ensure_atomic_scratch(shards);
    trk.reset();
    trk.seed(tracker_.words(), tracker_.num_visited());

    const S substrate = substrate_;
    Vertex* const toks = tokens_.data();
    Rng* const rngs = lane_rngs_.data();
    const std::size_t k = tokens_.size();
    const double laziness = options.laziness;

    ThreadPool* const pool = options.shard_pool;
    const auto team =
        pool == nullptr
            ? 1u
            : static_cast<unsigned>(
                  std::min<std::uint64_t>(pool->size() + 1, shards));

    SpinBarrier barrier(team);
    std::vector<std::exception_ptr> errors(team);
    struct WorkerResult {
      std::uint64_t steps = 0;
      std::uint64_t visited = 0;
      bool covered = false;
    };
    std::vector<WorkerResult> results(team);

    const auto worker = [&](std::uint64_t w) {
      try {
        const auto shard_begin = static_cast<unsigned>(w * shards / team);
        const auto shard_end = static_cast<unsigned>((w + 1) * shards / team);
        std::uint64_t t = 0;
        std::uint64_t total = tracker_.num_visited();
        bool covered = false;
        while (t < options.step_cap) {
          ++t;
          const auto parity = static_cast<unsigned>(t & 1);
          for (unsigned s = shard_begin; s < shard_end; ++s) {
            atomic_shard_round<kLazy>(substrate, toks, rngs,
                                      shard_lane_begin(k, shards, s),
                                      shard_lane_begin(k, shards, s + 1),
                                      laziness, trk, s);
            trk.publish_shard(parity, s);
          }
          if (!barrier.arrive_and_wait()) return;
          // One winner per bit makes the published count sum exact every
          // round — no merge pass; the frozen parity-t buffer (never the
          // live counters a fast worker is already bumping in round t+1)
          // is what every worker reads, so all of them take the same
          // branch.
          total = trk.published_total(parity);
          if (total >= target) {
            covered = true;
            break;
          }
        }
        results[w] = {t, total, covered};
      } catch (...) {
        errors[w] = std::current_exception();
        barrier.poison();
      }
    };
    run_shard_team(pool, team, errors, worker);

    trk.copy_words_to(tracker_.words());
    tracker_.set_num_visited(static_cast<Vertex>(results[0].visited));
    CoverSample sample;
    sample.covered = results[0].covered;
    sample.steps = results[0].covered ? results[0].steps : options.step_cap;
    return sample;
  }

  template <bool kLazy>
  CoverSample run_until_visited_lane(Vertex target,
                                     const CoverOptions& options) {
    const S substrate = substrate_;  // register-resident copy for the loop
    Vertex* const toks = tokens_.data();
    std::uint64_t* const words = tracker_.words();
    const std::size_t k = tokens_.size();
    Rng* const rngs = lane_rngs_.data();
    const double laziness = options.laziness;
    Vertex visited = tracker_.num_visited();

    return with_lane_round<kLazy, false>(
        substrate, toks, rngs, k, laziness, words, visited, nullptr,
        [&](auto&& round) {
          CoverSample sample;
          std::uint64_t t = 0;
          while (t < options.step_cap) {
            ++t;
            round();
            if (visited >= target) {
              tracker_.set_num_visited(visited);
              sample.steps = t;
              sample.covered = true;
              return sample;
            }
          }
          tracker_.set_num_visited(visited);
          sample.steps = options.step_cap;
          sample.covered = false;
          return sample;
        });
  }

  template <bool kLazy, bool kCounts>
  void run_for_steps_lane(std::uint64_t rounds, double laziness,
                          std::uint64_t* visit_counts) {
    const S substrate = substrate_;
    Vertex* const toks = tokens_.data();
    std::uint64_t* const words = tracker_.words();
    const std::size_t k = tokens_.size();
    Rng* const rngs = lane_rngs_.data();
    Vertex visited = tracker_.num_visited();

    if constexpr (ArcAddressableSubstrate<S>) {
      with_lane_round<kLazy, kCounts>(
          substrate, toks, rngs, k, laziness, words, visited, visit_counts,
          [&](auto&& round) {
            for (std::uint64_t t = 0; t < rounds; ++t) round();
          });
    } else {
      // No per-round check to honor: run each lane's whole strip with its
      // state in registers (see lane_steps_lane_major).
      with_lane_draw(substrate, [&](auto draw) {
        detail::lane_steps_lane_major<kLazy, kCounts>(
            substrate, draw, rounds, toks, rngs, k, laziness, words, visited,
            visit_counts);
      });
    }
    tracker_.set_num_visited(visited);
  }

  template <bool kLazy>
  CoverSample run_until_visited_impl(Vertex target, Rng& rng,
                                     const CoverOptions& options) {
    const S substrate = substrate_;  // register-resident copy for the loop
    Vertex* const toks = tokens_.data();
    std::uint64_t* const words = tracker_.words();
    const std::size_t k = tokens_.size();
    const double laziness = options.laziness;
    Vertex visited = tracker_.num_visited();

    CoverSample sample;
    std::uint64_t t = 0;
    while (t < options.step_cap) {
      ++t;
      for (std::size_t i = 0; i < k; ++i) {
        const Vertex v =
            detail::advance_token<kLazy>(toks[i], substrate, rng, laziness);
        toks[i] = v;
        detail::commit_visit<false>(v, words, visited, nullptr);
      }
      if (visited >= target) {
        tracker_.set_num_visited(visited);
        sample.steps = t;
        sample.covered = true;
        return sample;
      }
    }
    tracker_.set_num_visited(visited);
    sample.steps = options.step_cap;
    sample.covered = false;
    return sample;
  }

  template <bool kLazy, bool kCounts>
  void run_for_steps_impl(std::uint64_t rounds, Rng& rng, double laziness,
                          std::uint64_t* visit_counts) {
    const S substrate = substrate_;
    Vertex* const toks = tokens_.data();
    std::uint64_t* const words = tracker_.words();
    const std::size_t k = tokens_.size();
    Vertex visited = tracker_.num_visited();

    for (std::uint64_t t = 0; t < rounds; ++t) {
      for (std::size_t i = 0; i < k; ++i) {
        const Vertex v =
            detail::advance_token<kLazy>(toks[i], substrate, rng, laziness);
        toks[i] = v;
        detail::commit_visit<kCounts>(v, words, visited, visit_counts);
      }
    }
    tracker_.set_num_visited(visited);
  }

  S substrate_;
  Vertex num_vertices_;
  std::vector<Vertex> tokens_;
  WordVisitTracker tracker_;
  LaneRngs lane_rngs_;
  bool lanes_seeded_ = false;
  // Sharded-run scratch, cached across trials (a Monte-Carlo estimate
  // reruns the same (n, shards) thousands of times; reset() is an O(S·n/64)
  // fill, reallocation is not).
  std::unique_ptr<ShardedVisitTracker> sharded_scratch_;
  std::unique_ptr<AtomicVisitTracker> atomic_scratch_;
};

// The instantiations every caller uses live in engine.cpp; a custom
// substrate type instantiates from this header as usual.
extern template class WalkEngineT<CsrSubstrate>;
extern template class WalkEngineT<CycleSubstrate>;
extern template class WalkEngineT<TorusSubstrate>;
extern template class WalkEngineT<HypercubeSubstrate>;
extern template class WalkEngineT<CompleteSubstrate>;

/// The historical Graph-facing engine: the CsrSubstrate instantiation plus
/// one-time walkability validation and the live-array binding check.
class WalkEngine : public WalkEngineT<CsrSubstrate> {
 public:
  /// Binds to `g` and validates walkability once. The graph's CSR arrays
  /// must outlive the engine; the engine holds pointers, not a copy.
  explicit WalkEngine(const Graph& g);

  /// True iff this engine was constructed against exactly g's live CSR
  /// arrays (compared by data pointer and size, not graph address), so a
  /// cached engine can never silently run on a different graph. A pure
  /// query: never throws, even for an unwalkable g.
  bool bound_to(const Graph& g) const noexcept {
    return substrate().reads_arrays_of(g);
  }
};

}  // namespace manywalks
