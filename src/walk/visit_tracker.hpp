// O(1)-reset visited-set tracking for repeated walk trials.
//
// A Monte-Carlo estimate runs thousands of cover-time trials on the same
// graph; clearing an n-bit set per trial would dominate small-graph runs.
// Instead each vertex stores the epoch of its last visit and reset() just
// bumps the epoch.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <concepts>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace manywalks {

class VisitTracker {
 public:
  explicit VisitTracker(Vertex num_vertices)
      : stamp_(num_vertices, 0), epoch_(0) {
    reset();
  }

  /// Forgets all visits in O(1) (amortized; a full clear happens only on
  /// 32-bit epoch wrap-around).
  void reset() {
    if (epoch_ == UINT32_MAX) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
    num_visited_ = 0;
  }

  /// Marks v visited; returns true on first visit this epoch.
  bool visit(Vertex v) {
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    ++num_visited_;
    return true;
  }

  bool visited(Vertex v) const { return stamp_[v] == epoch_; }

  Vertex num_visited() const { return num_visited_; }
  Vertex num_vertices() const { return static_cast<Vertex>(stamp_.size()); }
  bool all_visited() const { return num_visited_ == num_vertices(); }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_;
  Vertex num_visited_ = 0;
};

/// Word-level (one bit per vertex) visited set for the batched walk engine.
///
/// Trades VisitTracker's O(1) reset for a 32x smaller footprint: the whole
/// scratch for a 64k-vertex graph is 8 KiB and stays L1-resident while the
/// walk's visit pattern hops randomly across vertices. reset() is an
/// O(n/64) word fill — negligible next to any cover-time trial, which takes
/// Ω(n) steps on every graph.
class WordVisitTracker {
 public:
  explicit WordVisitTracker(Vertex num_vertices)
      : words_((static_cast<std::size_t>(num_vertices) + 63) / 64, 0),
        num_vertices_(num_vertices) {}

  void reset() {
    std::fill(words_.begin(), words_.end(), 0);
    num_visited_ = 0;
  }

  /// Marks v visited; returns true on first visit. The already-visited
  /// case (dominant late in a cover trial) takes no store at all, so
  /// clustered tokens never serialize on read-modify-writes of a shared
  /// word.
  bool visit(Vertex v) {
    std::uint64_t& word = words_[v >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (v & 63);
    if ((word & bit) != 0) return false;
    word |= bit;
    ++num_visited_;
    return true;
  }

  bool visited(Vertex v) const {
    return ((words_[v >> 6] >> (v & 63)) & 1) != 0;
  }

  Vertex num_visited() const { return num_visited_; }
  Vertex num_vertices() const { return num_vertices_; }
  bool all_visited() const { return num_visited_ == num_vertices_; }

 private:
  // The engine's inner loop keeps the word pointer and visit counter in
  // registers (member updates through `this` would force a reload after
  // every store) and syncs num_visited_ back on exit.
  template <class S>
  friend class WalkEngineT;
  std::uint64_t* words() { return words_.data(); }
  void set_num_visited(Vertex n) { num_visited_ = n; }

  std::vector<std::uint64_t> words_;
  Vertex num_vertices_;
  Vertex num_visited_ = 0;
};

/// What the sharded round driver needs from a visited-set shard scratch
/// (determinism contract v3, docs/ARCHITECTURE.md): bits are committed per
/// shard, per-shard distinct counts stay exact for the shard's own view,
/// and the global count is recovered by a schedule-invariant reduction.
/// Two models below: ShardedVisitTracker (private per-shard bitmaps +
/// index-ordered merge) and AtomicVisitTracker (one shared relaxed-atomic
/// bitmap).
template <class T>
concept ShardVisitTracker =
    std::constructible_from<T, Vertex, unsigned> &&
    requires(T t, const T ct, unsigned s, Vertex v) {
      { t.reset() };
      { t.visit(s, v) } -> std::same_as<bool>;
      { ct.num_shards() } -> std::same_as<unsigned>;
      { ct.num_vertices() } -> std::same_as<Vertex>;
      { ct.shard_visited(s) } -> std::same_as<Vertex>;
    };

/// Per-shard word bitmaps plus an index-ordered merge: the race-free half
/// of determinism contract v3. Each lane shard commits visits into its own
/// private bitmap (reusing the serial lane kernels unchanged — a shard's
/// words pointer is bit-compatible with WordVisitTracker's), so the round
/// loop shares no mutable state between shards. Cover detection works on
/// two levels:
///
///   * upper_bound_visited(parity, merged) — the caller's merged count +
///     Σ_s (shard bits since that shard's last snapshot) — costs
///     O(#shards) reads and never undercounts the true union (every union
///     bit is set in the merged bitmap or was counted by exactly one
///     shard-new event), so checking it each round can never miss the
///     crossing round. Every input is frozen or worker-local: the deltas
///     it sums are PUBLISHED per-round copies (publish_shard), double-
///     buffered by round parity, and the merged count is the caller's own
///     replica of the reduce result. Live counters are already mutating in
///     round t+1 while slower workers still evaluate round t's bound — a
///     decision read from any live shared state can diverge between
///     workers, desynchronizing their barrier arrivals (one worker takes
///     the two-barrier merge path, another the one-barrier skip path) and
///     deadlocking or corrupting the round count from then on. Frozen
///     parity-t data keeps the replicated cover decision identical on
///     every worker (and race-free: round t+2's writes to the parity-t
///     buffer are separated from round t's reads by the t+1 barrier).
///   * merge_range()/finish snapshot — the exact count: OR every shard's
///     words into the merged bitmap (shard index order, though OR makes
///     any order bit-identical) and popcount. Run only in rounds where the
///     upper bound reaches the target; snapshotting the shard counters
///     afterwards re-tightens the bound, so merges space out geometrically
///     as coverage saturates.
///
/// The merged bitmap is also the seed channel: seed_merged() preloads the
/// engine's pre-run visited set (the starts, or earlier chunked runs), and
/// after the final merge it IS the run's visited set, copied back verbatim.
class ShardedVisitTracker {
 public:
  ShardedVisitTracker(Vertex num_vertices, unsigned num_shards)
      : words_per_shard_((static_cast<std::size_t>(num_vertices) + 63) / 64),
        num_vertices_(num_vertices),
        num_shards_(num_shards),
        shard_words_(words_per_shard_ * num_shards),
        merged_(words_per_shard_),
        visited_(num_shards),
        baseline_(num_shards),
        published_(2 * static_cast<std::size_t>(num_shards)) {}

  void reset() {
    std::fill(shard_words_.begin(), shard_words_.end(), 0);
    std::fill(merged_.begin(), merged_.end(), 0);
    for (auto& c : visited_) c.value = 0;
    for (auto& c : baseline_) c.value = 0;
    for (auto& c : published_) c.value = 0;
    merged_count_ = 0;
  }

  unsigned num_shards() const noexcept { return num_shards_; }
  Vertex num_vertices() const noexcept { return num_vertices_; }
  std::size_t words_per_shard() const noexcept { return words_per_shard_; }

  /// Shard s's private bitmap — handed to the lane round kernels as their
  /// `words` scratch. Only shard s's executor may write it between merges.
  std::uint64_t* shard_words(unsigned s) {
    return shard_words_.data() + static_cast<std::size_t>(s) * words_per_shard_;
  }
  const std::uint64_t* shard_words(unsigned s) const {
    return shard_words_.data() + static_cast<std::size_t>(s) * words_per_shard_;
  }

  /// Bits set in shard s's own bitmap (exact for the shard, NOT global).
  Vertex shard_visited(unsigned s) const { return visited_[s].value; }
  void set_shard_visited(unsigned s, Vertex count) { visited_[s].value = count; }

  /// Commits v into shard s; true iff the bit was new TO THAT SHARD.
  bool visit(unsigned s, Vertex v) {
    std::uint64_t& word = shard_words(s)[v >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (v & 63);
    if ((word & bit) != 0) return false;
    word |= bit;
    ++visited_[s].value;
    return true;
  }

  /// Preloads the merged bitmap (and its exact count) with a pre-run
  /// visited set; shard bitmaps stay empty.
  void seed_merged(const std::uint64_t* words, Vertex visited) {
    std::copy(words, words + words_per_shard_, merged_.begin());
    merged_count_ = visited;
  }

  /// Freezes shard s's count-since-last-snapshot DELTA into the round-
  /// `parity` publish buffer. The shard's executor calls this after its
  /// round work, BEFORE the round barrier; upper_bound_visited(parity)
  /// then reads only frozen data. Publishing the delta (not the absolute
  /// count) matters: baseline_[s] is re-snapshotted by the owner DURING a
  /// merge round, between the round barrier and the reduce barrier — a
  /// window in which a slower peer may still be evaluating that round's
  /// bound. Folding the baseline in at publish time (owner-only reads of
  /// owner-only state) keeps every input of the peer-visible bound frozen.
  void publish_shard(unsigned parity, unsigned s) {
    published_[static_cast<std::size_t>(parity) * num_shards_ + s].value =
        visited_[s].value - baseline_[s].value;
  }

  /// merged + Σ_s shard-new bits since each shard's last snapshot, summed
  /// from the round-`parity` PUBLISHED deltas — an upper bound on the true
  /// union size, so `upper_bound < target` proves the target was not
  /// reached and the exact merge can be skipped. `merged` is the CALLER'S
  /// replica of the exact union count (every team worker reduces the same
  /// partials, so each holds an identical copy): the member merged_count_
  /// must not feed a replicated decision because worker 0 updates it after
  /// the reduce barrier, a window a fast peer's next-round bound read can
  /// outrun. With frozen deltas and a worker-local merged count the cover
  /// decision reads no live shared state at all, which is what keeps it
  /// identical on every worker of a team.
  std::uint64_t upper_bound_visited(unsigned parity,
                                    std::uint64_t merged) const {
    std::uint64_t bound = merged;
    const std::size_t base = static_cast<std::size_t>(parity) * num_shards_;
    for (unsigned s = 0; s < num_shards_; ++s) {
      bound += published_[base + s].value;
    }
    return bound;
  }

  /// ORs every shard's words in [word_begin, word_end) into the merged
  /// bitmap and returns the popcount of that merged range. Disjoint ranges
  /// may run concurrently; the full-range sum of returns is the exact
  /// union size.
  Vertex merge_range(std::size_t word_begin, std::size_t word_end) {
    Vertex count = 0;
    for (std::size_t w = word_begin; w < word_end; ++w) {
      std::uint64_t word = merged_[w];
      for (unsigned s = 0; s < num_shards_; ++s) {
        word |= shard_words(s)[w];
      }
      merged_[w] = word;
      count += static_cast<Vertex>(std::popcount(word));
    }
    return count;
  }

  /// Re-tightens the upper bound after a merge absorbed shard s's bits.
  void snapshot_shard(unsigned s) { baseline_[s].value = visited_[s].value; }

  Vertex merged_count() const noexcept { return merged_count_; }
  void set_merged_count(Vertex count) { merged_count_ = count; }
  const std::uint64_t* merged_words() const noexcept { return merged_.data(); }

  bool merged_visited(Vertex v) const {
    return ((merged_[v >> 6] >> (v & 63)) & 1) != 0;
  }

  /// Serial full merge: exact union count, bound re-tightened (both publish
  /// buffers refreshed so upper_bound_visited is coherent for either
  /// parity). The convenience form of the range API (tests, single-threaded
  /// callers).
  Vertex merge_exact() {
    const Vertex count = merge_range(0, words_per_shard_);
    for (unsigned s = 0; s < num_shards_; ++s) {
      snapshot_shard(s);
      publish_shard(0, s);
      publish_shard(1, s);
    }
    set_merged_count(count);
    return count;
  }

 private:
  /// Shard counters are written by different executors every round; pad to
  /// a cache line so they never false-share.
  struct alignas(64) PaddedCount {
    Vertex value = 0;
  };

  std::size_t words_per_shard_;
  Vertex num_vertices_;
  unsigned num_shards_;
  std::vector<std::uint64_t> shard_words_;
  std::vector<std::uint64_t> merged_;
  std::vector<PaddedCount> visited_;
  std::vector<PaddedCount> baseline_;
  /// Two parity-indexed rows of per-shard counts (see publish_shard).
  std::vector<PaddedCount> published_;
  Vertex merged_count_ = 0;
};

/// The relaxed-atomic model of the same concept: ONE shared bitmap of
/// std::atomic words, committed with fetch_or(relaxed). Exactly one shard
/// wins each bit (fetch_or returns the pre-set word), so the per-shard
/// winner counts are exact and their sum plus the seed IS the union size —
/// no merge pass at all, at the price of contended read-modify-writes on
/// hot words. Relaxed ordering suffices: the counts are only read after
/// the round barrier, whose acquire/release edge publishes them, and bit
/// ownership needs no ordering (any winner is the same winner).
///
/// The cover decision reads published_total(parity) over the same
/// double-buffered publish_shard counts as ShardedVisitTracker, and for
/// the same reason: live counters are already advancing in round t+1 while
/// slower workers evaluate round t, so a live sum could make workers take
/// different branches.
class AtomicVisitTracker {
 public:
  AtomicVisitTracker(Vertex num_vertices, unsigned num_shards)
      : words_((static_cast<std::size_t>(num_vertices) + 63) / 64),
        num_vertices_(num_vertices),
        num_shards_(num_shards),
        visited_(num_shards),
        published_(2 * static_cast<std::size_t>(num_shards)) {}

  void reset() {
    for (auto& word : words_) word.store(0, std::memory_order_relaxed);
    for (auto& c : visited_) c.value = 0;
    for (auto& c : published_) c.value = 0;
    seed_visited_ = 0;
  }

  unsigned num_shards() const noexcept { return num_shards_; }
  Vertex num_vertices() const noexcept { return num_vertices_; }

  /// Preloads the shared bitmap with a pre-run visited set.
  void seed(const std::uint64_t* words, Vertex visited) {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w].store(words[w], std::memory_order_relaxed);
    }
    seed_visited_ = visited;
  }

  /// Commits v on behalf of shard s; true iff this call won the bit.
  bool visit(unsigned s, Vertex v) {
    const std::uint64_t bit = std::uint64_t{1} << (v & 63);
    const std::uint64_t before =
        words_[v >> 6].fetch_or(bit, std::memory_order_relaxed);
    if ((before & bit) != 0) return false;
    ++visited_[s].value;
    return true;
  }

  /// Bits shard s won so far (exact: one winner per bit).
  Vertex shard_visited(unsigned s) const { return visited_[s].value; }

  /// Freezes shard s's live winner count into the round-`parity` publish
  /// buffer (called by the shard's executor before the round barrier).
  void publish_shard(unsigned parity, unsigned s) {
    published_[static_cast<std::size_t>(parity) * num_shards_ + s].value =
        visited_[s].value;
  }

  /// Exact union size at the round of `parity`: seed + Σ per-shard
  /// PUBLISHED winner counts. Read after the round barrier; the frozen
  /// buffer keeps every worker's copy of the decision identical.
  std::uint64_t published_total(unsigned parity) const {
    std::uint64_t total = seed_visited_;
    const std::size_t base = static_cast<std::size_t>(parity) * num_shards_;
    for (unsigned s = 0; s < num_shards_; ++s) {
      total += published_[base + s].value;
    }
    return total;
  }

  /// Exact union size from the LIVE counters: seed + Σ winner counts. Only
  /// meaningful when no executor is mutating (single-threaded use, or after
  /// the team has joined) — inside a team round loop use published_total.
  std::uint64_t total_visited() const {
    std::uint64_t total = seed_visited_;
    for (unsigned s = 0; s < num_shards_; ++s) total += visited_[s].value;
    return total;
  }

  bool visited(Vertex v) const {
    return ((words_[v >> 6].load(std::memory_order_relaxed) >> (v & 63)) & 1) !=
           0;
  }

  /// Snapshots the shared bitmap into plain words (the engine's write-back
  /// into its WordVisitTracker after the run).
  void copy_words_to(std::uint64_t* dest) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      dest[w] = words_[w].load(std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) PaddedCount {
    Vertex value = 0;
  };

  std::vector<std::atomic<std::uint64_t>> words_;
  Vertex num_vertices_;
  unsigned num_shards_;
  std::vector<PaddedCount> visited_;
  /// Two parity-indexed rows of per-shard counts (see publish_shard).
  std::vector<PaddedCount> published_;
  Vertex seed_visited_ = 0;
};

static_assert(ShardVisitTracker<ShardedVisitTracker>);
static_assert(ShardVisitTracker<AtomicVisitTracker>);

}  // namespace manywalks
