// O(1)-reset visited-set tracking for repeated walk trials.
//
// A Monte-Carlo estimate runs thousands of cover-time trials on the same
// graph; clearing an n-bit set per trial would dominate small-graph runs.
// Instead each vertex stores the epoch of its last visit and reset() just
// bumps the epoch.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace manywalks {

class VisitTracker {
 public:
  explicit VisitTracker(Vertex num_vertices)
      : stamp_(num_vertices, 0), epoch_(0) {
    reset();
  }

  /// Forgets all visits in O(1) (amortized; a full clear happens only on
  /// 32-bit epoch wrap-around).
  void reset() {
    if (epoch_ == UINT32_MAX) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
    num_visited_ = 0;
  }

  /// Marks v visited; returns true on first visit this epoch.
  bool visit(Vertex v) {
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    ++num_visited_;
    return true;
  }

  bool visited(Vertex v) const { return stamp_[v] == epoch_; }

  Vertex num_visited() const { return num_visited_; }
  Vertex num_vertices() const { return static_cast<Vertex>(stamp_.size()); }
  bool all_visited() const { return num_visited_ == num_vertices(); }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_;
  Vertex num_visited_ = 0;
};

}  // namespace manywalks
