// O(1)-reset visited-set tracking for repeated walk trials.
//
// A Monte-Carlo estimate runs thousands of cover-time trials on the same
// graph; clearing an n-bit set per trial would dominate small-graph runs.
// Instead each vertex stores the epoch of its last visit and reset() just
// bumps the epoch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace manywalks {

class VisitTracker {
 public:
  explicit VisitTracker(Vertex num_vertices)
      : stamp_(num_vertices, 0), epoch_(0) {
    reset();
  }

  /// Forgets all visits in O(1) (amortized; a full clear happens only on
  /// 32-bit epoch wrap-around).
  void reset() {
    if (epoch_ == UINT32_MAX) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
    num_visited_ = 0;
  }

  /// Marks v visited; returns true on first visit this epoch.
  bool visit(Vertex v) {
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    ++num_visited_;
    return true;
  }

  bool visited(Vertex v) const { return stamp_[v] == epoch_; }

  Vertex num_visited() const { return num_visited_; }
  Vertex num_vertices() const { return static_cast<Vertex>(stamp_.size()); }
  bool all_visited() const { return num_visited_ == num_vertices(); }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_;
  Vertex num_visited_ = 0;
};

/// Word-level (one bit per vertex) visited set for the batched walk engine.
///
/// Trades VisitTracker's O(1) reset for a 32x smaller footprint: the whole
/// scratch for a 64k-vertex graph is 8 KiB and stays L1-resident while the
/// walk's visit pattern hops randomly across vertices. reset() is an
/// O(n/64) word fill — negligible next to any cover-time trial, which takes
/// Ω(n) steps on every graph.
class WordVisitTracker {
 public:
  explicit WordVisitTracker(Vertex num_vertices)
      : words_((static_cast<std::size_t>(num_vertices) + 63) / 64, 0),
        num_vertices_(num_vertices) {}

  void reset() {
    std::fill(words_.begin(), words_.end(), 0);
    num_visited_ = 0;
  }

  /// Marks v visited; returns true on first visit. The already-visited
  /// case (dominant late in a cover trial) takes no store at all, so
  /// clustered tokens never serialize on read-modify-writes of a shared
  /// word.
  bool visit(Vertex v) {
    std::uint64_t& word = words_[v >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (v & 63);
    if ((word & bit) != 0) return false;
    word |= bit;
    ++num_visited_;
    return true;
  }

  bool visited(Vertex v) const {
    return ((words_[v >> 6] >> (v & 63)) & 1) != 0;
  }

  Vertex num_visited() const { return num_visited_; }
  Vertex num_vertices() const { return num_vertices_; }
  bool all_visited() const { return num_visited_ == num_vertices_; }

 private:
  // The engine's inner loop keeps the word pointer and visit counter in
  // registers (member updates through `this` would force a reload after
  // every store) and syncs num_visited_ back on exit.
  template <class S>
  friend class WalkEngineT;
  std::uint64_t* words() { return words_.data(); }
  void set_num_visited(Vertex n) { num_visited_ = n; }

  std::vector<std::uint64_t> words_;
  Vertex num_vertices_;
  Vertex num_visited_ = 0;
};

}  // namespace manywalks
