#include "walk/engine.hpp"

namespace manywalks {

// The hot loops (legacy shared-stream and pipelined lane-mode rounds)
// compile here once, with the substrate accessors inlined into the round
// loop, instead of in every including translation unit.
template class WalkEngineT<CsrSubstrate>;
template class WalkEngineT<CycleSubstrate>;
template class WalkEngineT<TorusSubstrate>;
template class WalkEngineT<HypercubeSubstrate>;
template class WalkEngineT<CompleteSubstrate>;

// Walkability (min degree >= 1) is validated by CsrSubstrate itself.
WalkEngine::WalkEngine(const Graph& g)
    : WalkEngineT<CsrSubstrate>(CsrSubstrate(g)) {}

}  // namespace manywalks
