#include "walk/engine.hpp"

#include "util/check.hpp"
#include "walk/walker.hpp"

namespace manywalks {

namespace {

/// One token step over raw CSR pointers. Draw order matches walker.hpp:
/// lazy walks spend one uniform01 before the (possibly skipped) neighbor
/// draw; simple walks spend exactly one uniform_below(degree).
template <bool kLazy>
inline Vertex advance_token(Vertex v, const std::uint64_t* row,
                            const Vertex* adj, Rng& rng, double laziness) {
  if constexpr (kLazy) {
    if (rng.uniform01() < laziness) return v;
  }
  const std::uint64_t off = row[v];
  const auto degree = static_cast<Vertex>(row[v + 1] - off);
  return adj[off + rng.uniform_below(degree)];
}

}  // namespace

WalkEngine::WalkEngine(const Graph& g)
    : row_offsets_(g.offsets().data()),
      neighbors_(g.targets().data()),
      num_vertices_(g.num_vertices()),
      tracker_(g.num_vertices()) {
  require_walkable(g);
}

void WalkEngine::reset(std::span<const Vertex> starts) {
  MW_REQUIRE(!starts.empty(), "k-walk needs at least one token");
  tracker_.reset();
  tokens_.assign(starts.begin(), starts.end());
  for (Vertex s : tokens_) {
    MW_REQUIRE(s < num_vertices_, "start vertex out of range");
    tracker_.visit(s);
  }
}

CoverSample WalkEngine::run_until_visited(Vertex target, Rng& rng,
                                          const CoverOptions& options) {
  MW_REQUIRE(!tokens_.empty(), "no tokens; call reset() before running");
  MW_REQUIRE(target <= num_vertices_,
             "target " << target << " exceeds num_vertices " << num_vertices_);
  MW_REQUIRE(options.laziness >= 0.0 && options.laziness < 1.0,
             "laziness must be in [0,1)");
  CoverSample sample;
  if (tracker_.num_visited() >= target) {
    sample.covered = true;
    return sample;
  }
  return options.laziness > 0.0
             ? run_until_visited_impl<true>(target, rng, options)
             : run_until_visited_impl<false>(target, rng, options);
}

template <bool kLazy>
CoverSample WalkEngine::run_until_visited_impl(Vertex target, Rng& rng,
                                               const CoverOptions& options) {
  const std::uint64_t* const row = row_offsets_;
  const Vertex* const adj = neighbors_;
  Vertex* const toks = tokens_.data();
  std::uint64_t* const words = tracker_.words();
  const std::size_t k = tokens_.size();
  const double laziness = options.laziness;
  Vertex visited = tracker_.num_visited();

  CoverSample sample;
  std::uint64_t t = 0;
  while (t < options.step_cap) {
    ++t;
    for (std::size_t i = 0; i < k; ++i) {
      const Vertex v = advance_token<kLazy>(toks[i], row, adj, rng, laziness);
      toks[i] = v;
      std::uint64_t& word = words[v >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (v & 63);
      if ((word & bit) == 0) {
        word |= bit;
        ++visited;
      }
    }
    if (visited >= target) {
      tracker_.set_num_visited(visited);
      sample.steps = t;
      sample.covered = true;
      return sample;
    }
  }
  tracker_.set_num_visited(visited);
  sample.steps = options.step_cap;
  sample.covered = false;
  return sample;
}

void WalkEngine::run_for_steps(std::uint64_t rounds, Rng& rng, double laziness,
                               std::uint64_t* visit_counts) {
  MW_REQUIRE(!tokens_.empty(), "no tokens; call reset() before running");
  MW_REQUIRE(laziness >= 0.0 && laziness < 1.0, "laziness must be in [0,1)");
  if (laziness > 0.0) {
    run_for_steps_impl<true>(rounds, rng, laziness, visit_counts);
  } else {
    run_for_steps_impl<false>(rounds, rng, laziness, visit_counts);
  }
}

template <bool kLazy>
void WalkEngine::run_for_steps_impl(std::uint64_t rounds, Rng& rng,
                                    double laziness,
                                    std::uint64_t* visit_counts) {
  const std::uint64_t* const row = row_offsets_;
  const Vertex* const adj = neighbors_;
  Vertex* const toks = tokens_.data();
  std::uint64_t* const words = tracker_.words();
  const std::size_t k = tokens_.size();
  Vertex visited = tracker_.num_visited();

  for (std::uint64_t t = 0; t < rounds; ++t) {
    for (std::size_t i = 0; i < k; ++i) {
      const Vertex v = advance_token<kLazy>(toks[i], row, adj, rng, laziness);
      toks[i] = v;
      std::uint64_t& word = words[v >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (v & 63);
      if ((word & bit) == 0) {
        word |= bit;
        ++visited;
      }
      if (visit_counts != nullptr) ++visit_counts[v];
    }
  }
  tracker_.set_num_visited(visited);
}

}  // namespace manywalks
