// The option/sample types shared by the cover samplers (walk/cover.hpp)
// and the walk engine (walk/engine.hpp). Split out so cover.hpp can build
// substrate samplers on top of the engine template without an include
// cycle.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace manywalks {

class ThreadPool;  // util/thread_pool.hpp

/// How the engine turns the caller's Rng into per-step randomness
/// (determinism contract v2, docs/ARCHITECTURE.md "RNG scheme").
enum class RngMode : std::uint8_t {
  /// "Whatever the layer's default is": the raw WalkEngineT primitives
  /// resolve kDefault to kSharedLegacy, so every pre-lane engine call site
  /// (and its golden/determinism tests) stays bit-identical; the sampling
  /// layer — cover.hpp samplers, mc/estimators, the CLI experiments —
  /// resolves it to kLane via resolve_sampler_mode().
  kDefault,
  /// One stream shared by all k tokens, consumed token by token in
  /// walker.hpp order — bit-identical to the pre-lane engine. Serializes
  /// the round loop on the stream's data dependency.
  kSharedLegacy,
  /// Per-token streams: the engine draws ONE 64-bit lane master from the
  /// caller's stream at the first run after reset(), then derives lane i's
  /// stream with make_lane_rng(master, i). Independent lanes let the round
  /// loop software-pipeline its cache misses; still bit-reproducible
  /// across thread counts and schedulers (the lane master comes from the
  /// deterministic per-trial stream). The default of every sampler above
  /// the raw engine.
  kLane,
};

/// Which ShardVisitTracker model the sharded round driver commits through
/// (determinism contract v3). Both produce byte-identical results; the
/// choice is purely a performance/contention trade.
enum class ShardTrackerKind : std::uint8_t {
  /// Per-shard private bitmaps + index-ordered merge-on-demand
  /// (ShardedVisitTracker) — the default: shards share no mutable words.
  kSharded,
  /// One shared relaxed-atomic bitmap (AtomicVisitTracker): exact counts
  /// every round, no merge pass, contended fetch_or on hot words.
  kAtomic,
};

/// The automatic shard count for a k-lane trial: a pure function of k (and
/// nothing else — NOT the thread count, NOT the pool size), so the shard
/// cut and therefore every result is invariant under --threads
/// (determinism contract v3). One shard per 256 lanes keeps per-shard
/// rounds long enough to amortize the round barrier; 32 caps the merge
/// width and the S·n/8-byte shard scratch.
constexpr unsigned auto_lane_shards(std::size_t lanes) noexcept {
  return std::clamp<unsigned>(static_cast<unsigned>(lanes / 256), 1u, 32u);
}

struct CoverOptions {
  /// Probability of a token staying put each step (0 = simple walk).
  double laziness = 0.0;
  /// Safety cap on rounds; a sample that reaches the cap reports
  /// covered=false with steps=step_cap.
  std::uint64_t step_cap = std::numeric_limits<std::uint64_t>::max();
  /// Layer-resolved (see RngMode::kDefault): legacy at the raw engine,
  /// lane in every sampler above it.
  RngMode rng_mode = RngMode::kDefault;
  /// Lane-sharding plan (determinism contract v3; lane mode only). 0 with
  /// a null shard_pool = serial unsharded (the status quo); 0 with a pool
  /// = auto_lane_shards(k); >= 1 pins the shard count (1 still routes
  /// through the sharded driver — the golden-test configuration). The
  /// RESULT is identical in every case; only the schedule changes.
  unsigned lane_shards = 0;
  /// Worker team for the sharded round driver: the engine runs shards on
  /// min(shard_pool->size()+1, shards) executors (the calling thread
  /// participates). Null = shards run inline on the caller. Not owned.
  ThreadPool* shard_pool = nullptr;
  /// Tracker model for sharded commits (see ShardTrackerKind).
  ShardTrackerKind shard_tracker = ShardTrackerKind::kSharded;
};

/// CoverOptions with lane mode requested explicitly — the spelled-out form
/// of the sampling layer's default, used where code wants to state the
/// mode rather than inherit a layer default (CLI experiments, benches).
constexpr CoverOptions lane_cover_options() noexcept {
  CoverOptions options;
  options.rng_mode = RngMode::kLane;
  return options;
}

/// The sampling layer's mode resolution: an unspecified rng_mode means
/// lane mode (determinism contract v2). Applied once at each public
/// sampler's entry; the raw engine instead treats kDefault as
/// kSharedLegacy.
constexpr CoverOptions resolve_sampler_mode(CoverOptions options) noexcept {
  if (options.rng_mode == RngMode::kDefault) {
    options.rng_mode = RngMode::kLane;
  }
  return options;
}

struct CoverSample {
  std::uint64_t steps = 0;  ///< rounds until coverage (or the cap)
  bool covered = false;     ///< false iff the cap was hit first
};

}  // namespace manywalks
