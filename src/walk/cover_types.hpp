// The option/sample types shared by the cover samplers (walk/cover.hpp)
// and the walk engine (walk/engine.hpp). Split out so cover.hpp can build
// substrate samplers on top of the engine template without an include
// cycle.
#pragma once

#include <cstdint>
#include <limits>

namespace manywalks {

struct CoverOptions {
  /// Probability of a token staying put each step (0 = simple walk).
  double laziness = 0.0;
  /// Safety cap on rounds; a sample that reaches the cap reports
  /// covered=false with steps=step_cap.
  std::uint64_t step_cap = std::numeric_limits<std::uint64_t>::max();
};

struct CoverSample {
  std::uint64_t steps = 0;  ///< rounds until coverage (or the cap)
  bool covered = false;     ///< false iff the cap was hit first
};

}  // namespace manywalks
