#include "walk/hitting.hpp"

#include <vector>

#include "util/check.hpp"
#include "walk/walker.hpp"

namespace manywalks {

HitSample sample_hitting_time(const Graph& g, Vertex from, Vertex to,
                              Rng& rng, const HitOptions& options) {
  require_walkable(g);
  MW_REQUIRE(from < g.num_vertices() && to < g.num_vertices(),
             "hitting endpoints out of range");
  HitSample sample;
  if (from == to) {
    sample.hit = true;
    return sample;
  }
  Vertex v = from;
  const bool lazy = options.laziness > 0.0;
  std::uint64_t t = 0;
  while (t < options.step_cap) {
    ++t;
    v = lazy ? step_walk_lazy(g, v, rng, options.laziness)
             : step_walk(g, v, rng);
    if (v == to) {
      sample.steps = t;
      sample.hit = true;
      return sample;
    }
  }
  sample.steps = options.step_cap;
  sample.hit = false;
  return sample;
}

HitSample sample_multi_hitting_time(const Graph& g,
                                    std::span<const Vertex> starts,
                                    Vertex target, Rng& rng,
                                    const HitOptions& options) {
  require_walkable(g);
  MW_REQUIRE(!starts.empty(), "k-walk needs at least one token");
  MW_REQUIRE(target < g.num_vertices(), "target out of range");
  HitSample sample;
  std::vector<Vertex> tokens(starts.begin(), starts.end());
  for (Vertex s : tokens) {
    MW_REQUIRE(s < g.num_vertices(), "start vertex out of range");
    if (s == target) {
      sample.hit = true;
      return sample;
    }
  }
  const bool lazy = options.laziness > 0.0;
  std::uint64_t t = 0;
  while (t < options.step_cap) {
    ++t;
    bool reached = false;
    for (Vertex& token : tokens) {
      token = lazy ? step_walk_lazy(g, token, rng, options.laziness)
                   : step_walk(g, token, rng);
      reached = reached || token == target;
    }
    if (reached) {
      sample.steps = t;
      sample.hit = true;
      return sample;
    }
  }
  sample.steps = options.step_cap;
  sample.hit = false;
  return sample;
}

HitSample sample_multi_hitting_to_set(const Graph& g,
                                      std::span<const Vertex> starts,
                                      const std::vector<bool>& in_target,
                                      Rng& rng, const HitOptions& options) {
  require_walkable(g);
  MW_REQUIRE(!starts.empty(), "k-walk needs at least one token");
  MW_REQUIRE(in_target.size() == g.num_vertices(),
             "target mask size must equal vertex count");
  HitSample sample;
  std::vector<Vertex> tokens(starts.begin(), starts.end());
  for (Vertex s : tokens) {
    MW_REQUIRE(s < g.num_vertices(), "start vertex out of range");
    if (in_target[s]) {
      sample.hit = true;
      return sample;
    }
  }
  const bool lazy = options.laziness > 0.0;
  std::uint64_t t = 0;
  while (t < options.step_cap) {
    ++t;
    bool reached = false;
    for (Vertex& token : tokens) {
      token = lazy ? step_walk_lazy(g, token, rng, options.laziness)
                   : step_walk(g, token, rng);
      reached = reached || in_target[token];
    }
    if (reached) {
      sample.steps = t;
      sample.hit = true;
      return sample;
    }
  }
  sample.steps = options.step_cap;
  sample.hit = false;
  return sample;
}

HitSample sample_return_time(const Graph& g, Vertex from, Rng& rng,
                             const HitOptions& options) {
  require_walkable(g);
  MW_REQUIRE(from < g.num_vertices(), "start vertex out of range");
  HitSample sample;
  Vertex v = from;
  const bool lazy = options.laziness > 0.0;
  std::uint64_t t = 0;
  while (t < options.step_cap) {
    ++t;
    v = lazy ? step_walk_lazy(g, v, rng, options.laziness)
             : step_walk(g, v, rng);
    if (v == from) {
      sample.steps = t;
      sample.hit = true;
      return sample;
    }
  }
  sample.steps = options.step_cap;
  sample.hit = false;
  return sample;
}

}  // namespace manywalks
