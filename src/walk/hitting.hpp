// Hitting-time sampling: h(u,v) for a single walk, and the k-walk variant
// (rounds until any token reaches the target).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace manywalks {

struct HitOptions {
  double laziness = 0.0;
  std::uint64_t step_cap = std::numeric_limits<std::uint64_t>::max();
};

struct HitSample {
  std::uint64_t steps = 0;  ///< steps until the target was reached (or cap)
  bool hit = false;         ///< false iff the cap was reached first
};

/// Steps for a single walk from `from` to first reach `to`. If from == to,
/// the sample is 0 (the walk is already there).
HitSample sample_hitting_time(const Graph& g, Vertex from, Vertex to, Rng& rng,
                              const HitOptions& options = {});

/// Rounds for a k-walk (tokens at `starts`) until any token reaches `target`.
HitSample sample_multi_hitting_time(const Graph& g,
                                    std::span<const Vertex> starts,
                                    Vertex target, Rng& rng,
                                    const HitOptions& options = {});

/// Steps for a single walk from `from` to return to `from` (first return
/// time; expectation is num_arcs/deg(from) for connected graphs).
HitSample sample_return_time(const Graph& g, Vertex from, Rng& rng,
                             const HitOptions& options = {});

/// Rounds for a k-walk until any token lands on a vertex of the target set
/// (`in_target[v]` true). Models search for replicated content (paper §1).
/// A start inside the set hits at round 0.
HitSample sample_multi_hitting_to_set(const Graph& g,
                                      std::span<const Vertex> starts,
                                      const std::vector<bool>& in_target,
                                      Rng& rng, const HitOptions& options = {});

}  // namespace manywalks
