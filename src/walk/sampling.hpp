// Sampling starting vertices for k-walks.
//
// The paper's main question starts all k walks from ONE vertex, but its
// §1.1 comparison with Broder–Karlin–Raghavan–Upfal concerns walks started
// from the stationary distribution, and the placement ablation
// (bench/fig_start_placement) needs uniform and spread placements too.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace manywalks {

/// One vertex from the stationary distribution pi(v) = deg(v)/num_arcs,
/// given only a CSR offsets array: pick a uniform arc and binary-search
/// the row containing it. This is the form a memory-mapped graph
/// (storage/mapped_graph.hpp) samples through — the offsets span views
/// the file mapping and no Graph ever exists.
inline Vertex sample_stationary_vertex_csr(
    std::span<const std::uint64_t> offsets, Rng& rng) {
  MW_REQUIRE(offsets.size() >= 2 && offsets.back() > 0,
             "stationary sampling needs edges");
  const std::uint64_t arc = rng.uniform_below64(offsets.back());
  // offsets is sorted; find the row containing `arc`.
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), arc);
  return static_cast<Vertex>((it - offsets.begin()) - 1);
}

/// One vertex from the stationary distribution pi(v) = deg(v)/num_arcs
/// (delegates to the CSR form; the draw sequence is identical).
inline Vertex sample_stationary_vertex(const Graph& g, Rng& rng) {
  return sample_stationary_vertex_csr(g.offsets(), rng);
}

/// k independent stationary starts (with repetition).
inline std::vector<Vertex> sample_stationary_starts(const Graph& g, unsigned k,
                                                    Rng& rng) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  std::vector<Vertex> starts(k);
  for (Vertex& s : starts) s = sample_stationary_vertex(g, rng);
  return starts;
}

/// k independent uniform starts (with repetition). Uses the full-word
/// Lemire draw: at giant n the legacy 32-bit path re-draws with
/// probability (2^32 mod n)/2^32 (~2.2% at n = 10^8); the wide path makes
/// rejection vanishingly rare and start placement has no legacy-stream
/// golden to preserve.
inline std::vector<Vertex> sample_uniform_starts(const Graph& g, unsigned k,
                                                 Rng& rng) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  MW_REQUIRE(g.num_vertices() > 0, "uniform sampling needs vertices");
  std::vector<Vertex> starts(k);
  for (Vertex& s : starts) s = rng.uniform_below_wide(g.num_vertices());
  return starts;
}

/// k starts spread over the graph by greedy k-center on BFS distances:
/// the first start is `seed_vertex`, each next start maximizes the hop
/// distance to the already chosen set. Deterministic. O(k (n + m)).
std::vector<Vertex> spread_starts(const Graph& g, unsigned k,
                                  Vertex seed_vertex);

}  // namespace manywalks
