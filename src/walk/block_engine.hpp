// Out-of-core, block-scheduled k-walk engine (determinism contract v4).
//
// BlockWalkEngine drives the same per-lane walks as WalkEngineT's lane
// path (engine.hpp), but against a BlockedGraph whose adjacency lives on
// disk: walkers are bucketed by the vertex block containing their
// current position (walker_buckets.hpp), blocks are visited in
// ascending id order, each block's targets extent is pulled through an
// LRU ExtentCache (one sequential read per load), and every resident
// walker advances until it exits the block or its round budget for the
// current horizon ends. With B blocks and k walkers, one horizon costs
// O(min(horizon, B)·B) block loads instead of O(horizon·k) random 4 KB
// faults — the drunkardmob trade.
//
// Determinism contract v4: the schedule — horizon boundaries, bucket
// rebuilds, block order, in-block lane order — is a pure function of
// (graph, k, seed, laziness, step_cap). The memory budget shapes ONLY
// which extents stay cached, never what is executed when, so runs are
// bit-identical at every budget; and because each lane's trajectory is a
// pure function of its own RNG stream (contract v2) and visited-set
// updates commute, the results are bit-identical to the IN-CORE lane
// engine for the same seed:
//
//   * run_for_steps: final tokens, RNG states, and visited set equal the
//     in-core lane run's after the same rounds;
//   * run_until_visited: additionally returns the same (steps, covered).
//     Cover needs round-granular coverage checks, which an asynchronous
//     schedule cannot do directly — so the engine runs horizons of
//     kBlockHorizon rounds against a snapshot, and when coverage lands
//     inside a horizon it restores the snapshot and replays that horizon
//     in lockstep (one round per bucket sweep) to find the exact
//     covering round. Exactness: the asynchronous end state equals the
//     lockstep end state, and coverage is monotone in rounds.
//
// The engine is serial by design (the workload is I/O-bound, not
// CPU-bound); kSharedLegacy rng_mode is rejected — a shared draw stream
// is order-dependent and cannot be block-scheduled.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "storage/block_store.hpp"
#include "util/rng.hpp"
#include "walk/cover_types.hpp"
#include "walk/visit_tracker.hpp"
#include "walk/walker_buckets.hpp"

namespace manywalks {

/// Rounds per asynchronous horizon between coverage checks. Part of the
/// v4 schedule contract: changing it changes nothing observable (results
/// are bit-identical to the in-core engine either way), only the
/// batching ratio.
inline constexpr std::uint32_t kBlockHorizon = 64;

class BlockWalkEngine {
 public:
  struct Stats {
    std::uint64_t horizons = 0;        ///< asynchronous horizons executed
    std::uint64_t bucket_passes = 0;   ///< bucket rebuild sweeps
    std::uint64_t block_visits = 0;    ///< per-pass block activations
    std::uint64_t replayed_rounds = 0; ///< lockstep rounds for exact cover
    std::uint64_t bucket_migrations = 0;  ///< walkers that exited a block
                                          ///< mid-budget and were rebucketed
  };

  /// Binds to a v2 graph with an explicit resident-extent budget.
  /// Requires min_degree >= 1 (walkable), like every substrate binding.
  BlockWalkEngine(const BlockedGraph& graph, std::uint64_t mem_budget_bytes);

  /// Same contract as WalkEngineT::reset: k = starts.size() walkers, all
  /// start vertices marked visited, lane streams reseeded on next run.
  void reset(std::span<const Vertex> starts);

  /// Same contract (and same results, bit for bit) as the in-core lane
  /// engine's run_until_visited. options.rng_mode must be kDefault or
  /// kLane; lane_shards/shard_pool are ignored (serial engine).
  CoverSample run_until_visited(Vertex target, Rng& rng,
                                const CoverOptions& options = {});

  /// Same contract (and same end state, bit for bit) as the in-core lane
  /// engine's run_for_steps in kLane mode. Chunked calls are equivalent
  /// to one combined call.
  void run_for_steps(std::uint64_t rounds, Rng& rng, double laziness = 0.0);

  Vertex num_vertices() const noexcept { return graph_->num_vertices(); }
  Vertex num_visited() const noexcept { return tracker_.num_visited(); }
  bool visited(Vertex v) const { return tracker_.visited(v); }
  std::span<const Vertex> tokens() const noexcept { return tokens_; }
  const Stats& stats() const noexcept { return stats_; }
  const ExtentCache::Stats& cache_stats() const noexcept {
    return cache_.stats();
  }

  /// Zeroes the engine's schedule counters and the cache's traffic
  /// counters so per-trial attribution is possible (the blocked estimators
  /// share one engine across trials). Pure bookkeeping: no cached extent
  /// is dropped, no schedule state changes.
  void reset_stats() noexcept {
    stats_ = Stats{};
    cache_.reset_stats();
  }

 private:
  void ensure_lanes(Rng& rng);
  /// One bucketed sweep epoch: every live walker advances `rounds_each`
  /// rounds (exiting walkers are rebucketed and resumed until done).
  void run_rounds_bucketed(std::uint32_t rounds_each, double laziness);
  void process_block(std::uint32_t block, double laziness);
  std::uint64_t replay_cover_rounds(Vertex target, std::uint32_t horizon,
                                    double laziness);
  /// Observability flush for one run_* call (serial calling thread):
  /// schedule-counter deltas since `before` plus the logical round count.
  void note_run_observed(const Stats& before, std::uint64_t rounds) const;

  const BlockedGraph* graph_;
  ExtentCache cache_;
  WordVisitTracker tracker_;
  std::vector<Vertex> tokens_;
  LaneRngs lane_rngs_;
  bool lanes_seeded_ = false;
  WalkerBuckets buckets_;
  std::vector<std::uint32_t> rounds_left_;
  Stats stats_;
  // Horizon snapshot for the exact-cover replay.
  std::vector<Vertex> snap_tokens_;
  std::vector<Rng> snap_rngs_;
  WordVisitTracker snap_tracker_;
};

}  // namespace manywalks
