// Cover-time sampling for single walks and k-walks (the paper's central
// random variables τ_i and τ^k_i).
//
// Timing convention: the starting vertices count as visited at t = 0, and
// in each round every token takes one step. The sampled value is the first
// round index t at which all vertices have been visited. (The paper's
// formal definition starts the visited set at X(1); the difference is a
// lower-order term and the conventional definition matches the closed forms
// we test against, e.g. C(cycle) = n(n-1)/2.)
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walk/visit_tracker.hpp"

namespace manywalks {

struct CoverOptions {
  /// Probability of a token staying put each step (0 = simple walk).
  double laziness = 0.0;
  /// Safety cap on rounds; a sample that reaches the cap reports
  /// covered=false with steps=step_cap.
  std::uint64_t step_cap = std::numeric_limits<std::uint64_t>::max();
};

struct CoverSample {
  std::uint64_t steps = 0;  ///< rounds until coverage (or the cap)
  bool covered = false;     ///< false iff the cap was hit first
};

/// One cover-time sample of a single walk from `start`. (All the samplers
/// here amortize engine construction via a per-thread WalkEngine; callers
/// needing finer control hold a WalkEngine directly.)
CoverSample sample_cover_time(const Graph& g, Vertex start, Rng& rng,
                              const CoverOptions& options = {});

/// One cover-time sample of a k-walk with explicit starting vertices (the
/// paper's walks all start at the same vertex, but Lemma 16 and the
/// stationary-start discussion need arbitrary starts).
CoverSample sample_multi_cover_time(const Graph& g,
                                    std::span<const Vertex> starts, Rng& rng,
                                    const CoverOptions& options = {});

/// One cover-time sample of k walks all starting at `start` (τ^k_start).
CoverSample sample_k_cover_time(const Graph& g, Vertex start, unsigned k,
                                Rng& rng, const CoverOptions& options = {});

/// Rounds until at least ceil(fraction * n) distinct vertices are visited.
CoverSample sample_partial_cover_time(const Graph& g,
                                      std::span<const Vertex> starts,
                                      double fraction, Rng& rng,
                                      const CoverOptions& options = {});

/// Number of distinct vertices visited after each recorded time step; used
/// for coverage-vs-time plots.
struct CoverageCurve {
  std::vector<std::uint64_t> times;
  std::vector<Vertex> visited;
  bool truncated = false;  ///< true iff options.step_cap cut the run short
};

/// Runs a k-walk for `total_steps` rounds recording coverage every
/// `record_every` rounds (and at t=0 and the final round). If
/// `options.step_cap` is smaller than `total_steps` the run stops at the
/// cap and the curve is marked truncated.
CoverageCurve sample_coverage_curve(const Graph& g,
                                    std::span<const Vertex> starts,
                                    std::uint64_t total_steps,
                                    std::uint64_t record_every, Rng& rng,
                                    const CoverOptions& options = {});

/// Per-vertex visit counts of a single walk over `num_steps` steps
/// (including the start's t=0 occupancy).
std::vector<std::uint64_t> sample_visit_counts(const Graph& g, Vertex start,
                                               std::uint64_t num_steps,
                                               Rng& rng,
                                               const CoverOptions& options = {});

}  // namespace manywalks
