// Cover-time sampling for single walks and k-walks (the paper's central
// random variables τ_i and τ^k_i), over explicit CSR graphs and over
// implicit substrates (graph/substrate.hpp).
//
// Timing convention: the starting vertices count as visited at t = 0, and
// in each round every token takes one step. The sampled value is the first
// round index t at which all vertices have been visited. (The paper's
// formal definition starts the visited set at X(1); the difference is a
// lower-order term and the conventional definition matches the closed forms
// we test against, e.g. C(cycle) = n(n-1)/2.)
//
// RNG mode: every sampler here resolves an unspecified rng_mode to kLane
// (resolve_sampler_mode — the pipelined per-token-stream kernel of
// determinism contract v2). Pass RngMode::kSharedLegacy explicitly to
// reproduce the pre-lane shared-stream samples bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/substrate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "walk/cover_types.hpp"
#include "walk/engine.hpp"
#include "walk/visit_tracker.hpp"

namespace manywalks {

/// One cover-time sample of a single walk from `start`. (All the samplers
/// here amortize engine construction via a per-thread WalkEngine; callers
/// needing finer control hold a WalkEngine directly.)
CoverSample sample_cover_time(const Graph& g, Vertex start, Rng& rng,
                              const CoverOptions& options = {});

/// One cover-time sample of a k-walk with explicit starting vertices (the
/// paper's walks all start at the same vertex, but Lemma 16 and the
/// stationary-start discussion need arbitrary starts).
CoverSample sample_multi_cover_time(const Graph& g,
                                    std::span<const Vertex> starts, Rng& rng,
                                    const CoverOptions& options = {});

/// One cover-time sample of k walks all starting at `start` (τ^k_start).
CoverSample sample_k_cover_time(const Graph& g, Vertex start, unsigned k,
                                Rng& rng, const CoverOptions& options = {});

/// Rounds until at least ceil(fraction * n) distinct vertices are visited.
CoverSample sample_partial_cover_time(const Graph& g,
                                      std::span<const Vertex> starts,
                                      double fraction, Rng& rng,
                                      const CoverOptions& options = {});

/// Number of distinct vertices visited after each recorded time step; used
/// for coverage-vs-time plots.
struct CoverageCurve {
  std::vector<std::uint64_t> times;
  std::vector<Vertex> visited;
  bool truncated = false;  ///< true iff options.step_cap cut the run short
};

/// Runs a k-walk for `total_steps` rounds recording coverage every
/// `record_every` rounds (and at t=0 and the final round). If
/// `options.step_cap` is smaller than `total_steps` the run stops at the
/// cap and the curve is marked truncated.
CoverageCurve sample_coverage_curve(const Graph& g,
                                    std::span<const Vertex> starts,
                                    std::uint64_t total_steps,
                                    std::uint64_t record_every, Rng& rng,
                                    const CoverOptions& options = {});

/// Per-vertex visit counts of a single walk over `num_steps` steps
/// (including the start's t=0 occupancy).
std::vector<std::uint64_t> sample_visit_counts(const Graph& g, Vertex start,
                                               std::uint64_t num_steps,
                                               Rng& rng,
                                               const CoverOptions& options = {});

// --- substrate overloads -----------------------------------------------------
//
// The same samplers over an implicit (or CSR-wrapping) substrate. On an
// implicit substrate no CSR is ever built: the per-thread engine's
// n/8-byte visit tracker is the only O(n) allocation, which is what lets
// the giant-graph experiments run at n = 10^7–10^8.

/// Reusable per-thread engine, one cached instance per substrate TYPE per
/// thread (cf. the pooled CSR engine in cover.cpp): a Monte-Carlo estimate
/// calls the samplers thousands of times on the same substrate from pool
/// worker threads, and rebinding is a value comparison away.
template <Substrate S>
WalkEngineT<S>& pooled_substrate_engine(const S& substrate) {
  thread_local std::optional<WalkEngineT<S>> engine;
  if (!engine.has_value() || !(engine->substrate() == substrate)) {
    engine.emplace(substrate);
  }
  return *engine;
}

/// One k-walk trial run until `target` distinct vertices are visited or
/// the cap is reached (the primitive the fixed-target giant experiments
/// sample: full cover at n = 10^8 is out of reach, partial cover is not).
/// This is the funnel every cover sampler delegates through, and the
/// sampling layer's mode-resolution point: an unspecified rng_mode becomes
/// kLane here.
template <Substrate S>
CoverSample sample_cover_to_target(const S& substrate,
                                   std::span<const Vertex> starts,
                                   Vertex target, Rng& rng,
                                   const CoverOptions& options = {}) {
  WalkEngineT<S>& engine = pooled_substrate_engine(substrate);
  engine.reset(starts);
  return engine.run_until_visited(target, rng, resolve_sampler_mode(options));
}

template <Substrate S>
CoverSample sample_cover_time(const S& substrate, Vertex start, Rng& rng,
                              const CoverOptions& options = {}) {
  const Vertex starts[1] = {start};
  return sample_cover_to_target(substrate, starts, substrate.num_vertices(),
                                rng, options);
}

template <Substrate S>
CoverSample sample_multi_cover_time(const S& substrate,
                                    std::span<const Vertex> starts, Rng& rng,
                                    const CoverOptions& options = {}) {
  return sample_cover_to_target(substrate, starts, substrate.num_vertices(),
                                rng, options);
}

template <Substrate S>
CoverSample sample_k_cover_time(const S& substrate, Vertex start, unsigned k,
                                Rng& rng, const CoverOptions& options = {}) {
  MW_REQUIRE(k >= 1, "k must be >= 1");
  std::vector<Vertex> starts(k, start);
  return sample_cover_to_target(substrate, starts, substrate.num_vertices(),
                                rng, options);
}

}  // namespace manywalks
