// Registrations for the inequality/concentration experiments: the
// Baby-Matthews bound (Thms 13/14), the mixing-time bound (Thm 9), the
// Lemma 16 cover-probability guarantee, and Aldous' concentration theorem
// (Thm 17).
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "cli/experiments_common.hpp"
#include "core/analyzer.hpp"
#include "core/experiments.hpp"
#include "theory/bounds.hpp"
#include "theory/exact.hpp"
#include "theory/finite_time.hpp"
#include "util/stats.hpp"

namespace manywalks::cli {

namespace {

// --- fig_matthews_bounds (Thms 13/14) ---------------------------------------

ExperimentResult run_matthews_bounds(const ExperimentParams& params,
                                     ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_matthews_bounds");
  const std::uint64_t seed = params.seed;
  // Exact h_max needs the O(n^3) fundamental matrix: cap n at ~1024.
  const std::uint64_t target_n = resolve_n(preset, params);
  const std::uint64_t target_trials = resolve_trials(preset, params);

  McOptions mc = preset_mc(target_trials);
  mc.seed = seed;

  const std::vector<GraphFamily> families = {
      GraphFamily::kComplete, GraphFamily::kHypercube, GraphFamily::kGrid2d,
      GraphFamily::kMargulis, GraphFamily::kCycle, GraphFamily::kBalancedTree};

  ResultTable table("matthews",
                    "Thm 13 (Baby Matthews) — C^k vs (e/k)·h_max·H_n with "
                    "exact h_max");
  table.add_column("graph", /*left=*/true)
      .add_column("h_max (exact)")
      .add_column("k")
      .add_column("C^k measured")
      .add_column("Thm13 bound")
      .add_column("C^k/bound (≤1)")
      .add_column("e/k·h·H_n")
      .add_column("Thm14 ref");

  bool all_hold = true;
  for (GraphFamily family : families) {
    const FamilyInstance instance =
        make_family_instance(family, target_n, seed);
    const double h_max = hitting_extremes(instance.graph).h_max;
    const std::uint64_t nn = instance.graph.num_vertices();
    const auto log_n = static_cast<unsigned>(
        std::max(2.0, std::floor(std::log(static_cast<double>(nn)))));
    const std::vector<unsigned> ks = {1, 2, log_n};

    McOptions local = mc;
    local.seed = mix64(seed ^ (0x1337 + static_cast<std::uint64_t>(family)));
    const auto curve = estimate_speedup_curve(instance.graph, instance.start,
                                              ks, local, lane_cover_options(), &pool);
    const double cover = curve.front().single.ci.mean;
    for (const SpeedupEstimate& p : curve) {
      const double rigorous = baby_matthews_bound(h_max, nn, p.k);
      const double asymptotic = baby_matthews_asymptotic(h_max, nn, p.k);
      const double thm14 = theorem14_reference(
          cover, h_max, p.k, std::log(std::max(2.0, cover / h_max)));
      const double ratio = p.multi.ci.mean / rigorous;
      all_hold = all_hold && ratio <= 1.0;
      table.begin_row();
      table.text(instance.name);
      table.real(h_max);
      table.count(p.k);
      table.mean_pm(p.multi);
      table.real(rigorous);
      table.real(ratio, 3);
      table.real(asymptotic);
      table.real(thm14);
    }
    table.rule();
  }

  ExperimentResult result;
  push_common_params(result, seed, params.full, target_n, target_trials,
                     pool.size());
  result.tables.push_back(std::move(table));
  result.has_verdict = true;
  result.passed = all_hold;
  result.notes = {all_hold
                      ? "All measured C^k satisfy the rigorous Thm 13 bound "
                        "(column ≤ 1). ✓"
                      : "BOUND VIOLATION — investigate! ✗"};
  return result;
}

// --- fig_mixing_bound (Thm 9) -----------------------------------------------

ExperimentResult run_mixing_bound(const ExperimentParams& params,
                                  ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_mixing_bound");
  const std::uint64_t seed = params.seed;
  const std::uint64_t target_n = resolve_n(preset, params);
  const std::uint64_t target_trials = resolve_trials(preset, params);
  const ExperimentOptions options =
      preset_experiment_options(seed, target_trials);

  // Regular families ordered by mixing speed.
  const std::vector<GraphFamily> families = {
      GraphFamily::kComplete, GraphFamily::kMargulis, GraphFamily::kHypercube,
      GraphFamily::kGrid2d, GraphFamily::kCycle};
  const std::vector<unsigned> ks = {4, 16, 64};

  ResultTable table("mixing",
                    "Thm 9 — measured speed-up vs the mixing-time bound");
  table.add_column("graph", /*left=*/true)
      .add_column("t_mix")
      .add_column("k")
      .add_column("S^k")
      .add_column("bound k/(t_m ln n)")
      .add_column("ratio (≥ Ω(1))");

  for (GraphFamily family : families) {
    const FamilyInstance instance =
        make_family_instance(family, target_n, seed);
    const MixingMeasurement mixing = measure_mixing_time(
        instance.graph, instance.needs_lazy_mixing, options.mixing_cap,
        std::vector<Vertex>{instance.start});
    const SpeedupCurveResult curve =
        run_speedup_curve(instance, ks, options, &pool);
    for (const SpeedupEstimate& p : curve.points) {
      const double t_m = mixing.converged
                             ? std::max<double>(
                                   1.0, static_cast<double>(mixing.time))
                             : static_cast<double>(options.mixing_cap);
      const double reference = theorem9_speedup_reference(
          p.k, t_m, instance.graph.num_vertices());
      table.begin_row();
      table.text(instance.name + (mixing.laziness > 0 ? " (lazy mix)" : ""));
      table.text(mixing.converged ? format_count(mixing.time)
                                  : "> " + format_count(mixing.time));
      table.count(p.k);
      table.mean_pm(p);
      table.real(reference, 3);
      table.real(p.speedup / reference, 3);
    }
    table.rule();
  }

  ExperimentResult result;
  push_common_params(result, seed, params.full, target_n, target_trials,
                     pool.size());
  result.tables.push_back(std::move(table));
  result.notes = {
      "Paper claim (Thm 9): the last column stays bounded below across "
      "families; the bound",
      "is informative (ratio near small constant · 1) only for fast-mixing "
      "graphs."};
  return result;
}

// --- fig_lemma16 ------------------------------------------------------------

/// Fraction of trials in which a k-walk from `start` covers within
/// `length` rounds.
double measure_cover_probability(const Graph& g, Vertex start, unsigned k,
                                 std::uint64_t length, std::uint64_t trials,
                                 std::uint64_t seed, ThreadPool* pool) {
  McOptions mc;
  mc.min_trials = trials;
  mc.max_trials = trials;
  mc.seed = seed;
  CoverOptions cover = lane_cover_options();
  cover.step_cap = length;
  const McResult r = run_monte_carlo(
      [&g, start, k, &cover](std::uint64_t, Rng& rng) {
        const CoverSample s = sample_k_cover_time(g, start, k, rng, cover);
        return TrialOutcome{s.covered ? 1.0 : 0.0, false};
      },
      mc, pool);
  return r.ci.mean;
}

ExperimentResult run_lemma16(const ExperimentParams& params,
                             ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_lemma16");
  const std::uint64_t seed = params.seed;
  const std::uint64_t target_n = resolve_n(preset, params);
  const std::uint64_t target_trials = resolve_trials(preset, params);

  const FamilyInstance instance =
      make_family_instance(GraphFamily::kGrid2d, target_n, seed);
  const Graph& g = instance.graph;

  // Calibrate T_c so that p_c is comfortably large: twice the estimated
  // cover time.
  McOptions mc;
  mc.min_trials = 200;
  mc.max_trials = 200;
  mc.seed = mix64(seed ^ 0xcafeULL);
  const McResult cover_est =
      estimate_cover_time(g, instance.start, mc, lane_cover_options(), &pool);
  const auto t_c = static_cast<std::uint64_t>(2.0 * cover_est.ci.mean);
  const double p_c = measure_cover_probability(
      g, instance.start, 1, t_c, target_trials, mix64(seed ^ 0x1ULL), &pool);

  // T_h = 2 h_max gives p_h >= 1/2 by Markov; compute p_h exactly.
  const double h_max = hitting_extremes(g).h_max;
  const auto t_h = static_cast<std::uint64_t>(2.0 * h_max);
  const PairVisitProbability p_h = min_visit_probability_within(g, t_h);

  ExperimentResult result;
  push_common_params(result, seed, params.full, target_n, target_trials,
                     pool.size());
  result.preamble.push_back(
      instance.name + ": T_c = " + format_count(t_c) + " with p_c ≈ " +
      format_double(p_c, 3) + ";  T_h = 2·h_max = " + format_count(t_h) +
      " with exact p_h = " + format_double(p_h.probability, 3) +
      " (worst pair " + std::to_string(p_h.from) + "→" +
      std::to_string(p_h.to) + ")");

  ResultTable table("lemma16",
                    "Lemma 16 — guaranteed vs measured k-walk cover "
                    "probability at length T_c/k + ℓ·T_h");
  table.add_column("k")
      .add_column("ℓ")
      .add_column("walk length")
      .add_column("Lemma 16 bound")
      .add_column("measured")
      .add_column("margin");

  bool all_hold = true;
  for (unsigned k : {2u, 4u, 8u}) {
    for (unsigned ell : {2u, 3u, 5u}) {
      const std::uint64_t length = t_c / k + ell * t_h;
      const double bound =
          lemma16_cover_probability(p_c, p_h.probability, k, ell);
      const double measured = measure_cover_probability(
          g, instance.start, k, length, target_trials,
          mix64(seed ^ (0x16ULL + k * 31 + ell)), &pool);
      // Allow three binomial standard errors of slack.
      const double se =
          std::sqrt(std::max(measured * (1.0 - measured), 1e-9) /
                    static_cast<double>(target_trials));
      all_hold = all_hold && (measured + 3.0 * se >= bound);
      table.begin_row();
      table.count(k);
      table.count(ell);
      table.count(length);
      table.real(bound, 3);
      table.real(measured, 3);
      table.real(measured - bound, 3);
    }
  }

  result.tables.push_back(std::move(table));
  result.has_verdict = true;
  result.passed = all_hold;
  result.notes = {all_hold ? "Measured cover probability dominates the "
                             "Lemma 16 bound everywhere. ✓"
                           : "BOUND VIOLATION — investigate! ✗"};
  return result;
}

// --- fig_aldous_concentration (Thm 17) --------------------------------------

ExperimentResult run_aldous_concentration(const ExperimentParams& params,
                                          ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_aldous_concentration");
  const std::uint64_t seed = params.seed;
  const std::uint64_t samples = resolve_trials(preset, params);

  std::vector<std::uint64_t> sizes;
  if (params.n != 0) {
    sizes = {params.n};
  } else {
    sizes = params.full ? std::vector<std::uint64_t>{256, 1024, 4096}
                        : std::vector<std::uint64_t>{64, 256, 1024};
  }
  const std::vector<GraphFamily> families = {
      GraphFamily::kComplete, GraphFamily::kHypercube, GraphFamily::kGrid2d,
      GraphFamily::kCycle};

  ResultTable table("concentration",
                    "Thm 17 — concentration of tau/C (coefficient of "
                    "variation and quantiles)");
  table.add_column("graph", /*left=*/true)
      .add_column("n")
      .add_column("mean C")
      .add_column("CV = sd/mean")
      .add_column("q10/mean")
      .add_column("q50/mean")
      .add_column("q90/mean");

  const std::vector<double> probs = {0.1, 0.5, 0.9};
  for (GraphFamily family : families) {
    for (std::uint64_t n : sizes) {
      const FamilyInstance instance = make_family_instance(family, n, seed);
      const auto values = collect_cover_samples(
          instance.graph, instance.start, 1, samples,
          mix64(seed ^ (n * 31 + static_cast<std::uint64_t>(family))),
          lane_cover_options(), &pool);
      RunningStats stats;
      for (double v : values) stats.add(v);
      const auto qs = quantiles(values, probs);
      table.begin_row();
      table.text(instance.name);
      table.count(instance.graph.num_vertices());
      table.real(stats.mean());
      table.real(stats.stddev() / stats.mean(), 3);
      table.real(qs[0] / stats.mean(), 3);
      table.real(qs[1] / stats.mean(), 3);
      table.real(qs[2] / stats.mean(), 3);
    }
    table.rule();
  }

  ExperimentResult result;
  push_common_params(result, seed, params.full, params.n, samples,
                     pool.size());
  result.tables.push_back(std::move(table));
  result.notes = {
      "Expected: CV shrinks with n and quantiles squeeze toward 1 for the "
      "Matthews-tight",
      "families (C/h_max = Θ(log n) -> ∞), but stays Θ(1) on the cycle "
      "(C/h_max ≈ 2) —",
      "exactly the dichotomy Thm 17 requires for the Thm 14 proof."};
  return result;
}

}  // namespace

void register_bounds_experiments(ExperimentRegistry& registry) {
  registry.add({"fig_matthews_bounds",
                "Baby-Matthews: C^k ≤ (e/k)·h_max·H_n with exact h_max",
                "Theorems 13 & 14 (§6)",
                /*default_seed=*/13,
                {}},
               run_matthews_bounds);
  registry.add({"fig_mixing_bound",
                "regular graphs: S^k ≥ Ω(k / (t_mix ln n))",
                "Theorem 9 (§4)",
                /*default_seed=*/9,
                {}},
               run_mixing_bound);
  registry.add({"fig_lemma16",
                "guaranteed k-walk cover probability at T_c/k + ℓ·T_h",
                "Lemma 16 (§5)",
                /*default_seed=*/16,
                {}},
               run_lemma16);
  registry.add({"fig_aldous_concentration",
                "tau/C concentrates iff C/h_max → ∞",
                "Theorem 17 (§6)",
                /*default_seed=*/17,
                {}},
               run_aldous_concentration);
}

}  // namespace manywalks::cli
