// Shared preset tables for the registered experiments.
//
// Each legacy driver hard-coded its quick/full sizes and trial counts
// inline; they now live in one table so `manywalks list`, the docs, and
// the runners agree on what "quick" and "--full" mean.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/experiments.hpp"
#include "cli/registry.hpp"

namespace manywalks::cli {

struct ExperimentPreset {
  std::string_view name;
  std::uint64_t quick_n = 0;  ///< 0 = the experiment sweeps a size list
  std::uint64_t full_n = 0;
  std::uint64_t quick_trials = 0;
  std::uint64_t full_trials = 0;
  std::uint64_t quick_kmax = 0;  ///< only k-sweep experiments
  std::uint64_t full_kmax = 0;
  std::uint64_t default_k = 0;   ///< only fixed-k experiments
  double default_ck = 0.0;       ///< only k = ck·ln n experiments
  std::uint64_t quick_target = 0;  ///< only partial-cover (giant) experiments
  std::uint64_t full_target = 0;
};

/// The preset row for `name`; nullptr when the experiment has none.
const ExperimentPreset* find_preset(std::string_view name);

/// Preset lookup that must succeed (registered experiments).
const ExperimentPreset& preset_for(std::string_view name);

// --- resolution helpers (explicit flag wins, else quick/full preset) --------

std::uint64_t resolve_n(const ExperimentPreset& preset,
                        const ExperimentParams& params);
std::uint64_t resolve_trials(const ExperimentPreset& preset,
                             const ExperimentParams& params);
std::uint64_t resolve_kmax(const ExperimentPreset& preset,
                           const ExperimentParams& params);
std::uint64_t resolve_k(const ExperimentPreset& preset,
                        const ExperimentParams& params);
double resolve_ck(const ExperimentPreset& preset,
                  const ExperimentParams& params);
std::uint64_t resolve_target(const ExperimentPreset& preset,
                             const ExperimentParams& params);

/// The drivers' common Monte-Carlo knob: max_trials = trials,
/// min_trials = max(trials / 4, 8).
McOptions preset_mc(std::uint64_t trials);

/// ExperimentOptions with the common preset_mc trial policy applied.
ExperimentOptions preset_experiment_options(std::uint64_t seed,
                                            std::uint64_t trials);

}  // namespace manywalks::cli
