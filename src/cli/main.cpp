// The `manywalks` binary: every experiment in the registry behind one CLI.
#include "cli/driver.hpp"

int main(int argc, char** argv) {
  return manywalks::cli::manywalks_main(argc, argv);
}
