// The experiment registry behind the `manywalks` CLI.
//
// Every paper experiment (the figures, Table 1, the ablations) registers a
// name, a one-line summary, the paper claim it reproduces, its extra
// parameters, and a runner returning a structured ExperimentResult. The
// CLI (`manywalks list/run`) and the legacy per-experiment shim binaries
// are both thin layers over this registry; future scenarios register here
// instead of adding binary #14.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiments.hpp"
#include "util/thread_pool.hpp"

namespace manywalks::cli {

/// The shared parameter block every experiment understands. The convention
/// (inherited from the legacy drivers) is that 0 means "use the
/// experiment's preset": quick-mode values by default, paper-scale values
/// under --full.
struct ExperimentParams {
  bool full = false;
  std::uint64_t n = 0;       ///< target graph size (0 = preset)
  std::uint64_t trials = 0;  ///< Monte-Carlo trials (0 = preset)
  /// Master seed, used verbatim (0 included). The CLI driver initializes it
  /// from ExperimentInfo::default_seed before parsing --seed.
  std::uint64_t seed = 0;
  /// Worker threads. The driver resolves 0 to default_thread_count() BEFORE
  /// invoking the runner (the one place "--threads 0 = hardware" is
  /// decided), so runners and sinks always see the real count.
  unsigned threads = 0;
  /// Lane shards per cover trial (determinism contract v3): 0 = let the
  /// thread-budget policy decide, >= 1 pins CoverOptions::lane_shards. Only
  /// experiments declaring ExtraParam::kLaneShards expose the flag.
  unsigned lane_shards = 0;
  // Extra knobs only some experiments declare (see ExperimentInfo::extras):
  std::uint64_t k = 0;    ///< number of walks (fig_start_placement)
  std::uint64_t kmax = 0; ///< largest k in a sweep (fig_cycle_speedup)
  double ck = 0.0;        ///< k = ck·ln n coefficient (fig_barbell_speedup)
  std::uint64_t target = 0;  ///< distinct-vertex coverage target (giant-*)
  std::uint64_t start = 0;   ///< start vertex on stored graphs (mwg-*)
  std::string graph;         ///< .mwg file to run on (mwg-*)
  /// Out-of-core: run the block-scheduled engine instead of mapping the
  /// whole CSR (needs an mwg v2 --graph), with an explicit resident-
  /// extent budget (parse_byte_size syntax; empty = the runner default).
  bool block_walk = false;
  std::string mem_budget;
};

/// Non-shared parameters an experiment additionally accepts; the driver
/// only exposes the matching --k/--kmax/--ck/--target/--start/--graph
/// flags when declared.
enum class ExtraParam {
  kK,
  kKmax,
  kCk,
  kTarget,
  kStart,
  kGraph,
  kLaneShards,
  kBlockWalk,
  kMemBudget,
};

struct ExperimentInfo {
  std::string name;     ///< CLI name, e.g. "fig_cycle_speedup"
  std::string summary;  ///< one line for `manywalks list`
  std::string claim;    ///< paper claim reproduced, e.g. "Theorem 6 (§5)"
  /// The seed the driver stamps into ExperimentParams::seed when --seed is
  /// not given (the legacy driver's default for the same experiment).
  std::uint64_t default_seed = 1;
  std::vector<ExtraParam> extras;
};

using ExperimentRunner =
    std::function<ExperimentResult(const ExperimentParams&, ThreadPool&)>;

struct Experiment {
  ExperimentInfo info;
  ExperimentRunner runner;

  /// Invokes the runner and stamps the registry's name/claim and the
  /// censored-cell tally onto the result, so the registration is the
  /// single source of truth and no runner can forget to surface censoring.
  ExperimentResult run(const ExperimentParams& params, ThreadPool& pool) const {
    ExperimentResult result = runner(params, pool);
    result.name = info.name;
    result.claim = info.claim;
    result.censored_cells = count_censored_cells(result);
    return result;
  }
};

class ExperimentRegistry {
 public:
  /// Registers an experiment; throws std::invalid_argument on a duplicate
  /// name or missing runner.
  void add(ExperimentInfo info, ExperimentRunner runner);

  /// Looks an experiment up by exact name; nullptr when absent.
  const Experiment* find(std::string_view name) const;

  /// All experiments in registration order (the order of `manywalks list`).
  std::vector<const Experiment*> list() const;

  std::size_t size() const noexcept { return experiments_.size(); }

 private:
  std::vector<std::unique_ptr<Experiment>> experiments_;
};

/// Registers every built-in experiment into `registry` (used by the CLI at
/// startup and by tests against a private registry).
void register_all_experiments(ExperimentRegistry& registry);

// One registration function per driver group (experiments_*.cpp).
void register_speedup_experiments(ExperimentRegistry& registry);
void register_bounds_experiments(ExperimentRegistry& registry);
void register_start_experiments(ExperimentRegistry& registry);
void register_table1_experiment(ExperimentRegistry& registry);
void register_giant_experiments(ExperimentRegistry& registry);
void register_mwg_experiments(ExperimentRegistry& registry);

/// The process-wide registry with all built-ins registered (built lazily,
/// thread-safe via static-local initialization).
const ExperimentRegistry& default_registry();

}  // namespace manywalks::cli
