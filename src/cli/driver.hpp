// Shared command-line driver for the registered experiments.
//
// `run_experiment_main` is the whole main() of every legacy fig_*/table1_*
// shim binary and the backend of `manywalks run <exp>`: it parses the
// shared flags (--full/--n/--trials/--seed/--threads/--format/--out plus
// the experiment's declared extras), resolves presets, runs the experiment
// on a shared ThreadPool, and emits the result through the selected sink.
#pragma once

#include <string_view>

namespace manywalks::cli {

/// Runs the registered experiment `name` with argv-style arguments
/// (argv[0] is ignored). Exit codes: 0 success, 1 usage error or a failed
/// rigorous-bound verdict, 2 unknown experiment.
int run_experiment_main(std::string_view name, int argc, char** argv);

/// The `manywalks` umbrella binary: list / run <exp> / table1 / help.
int manywalks_main(int argc, char** argv);

}  // namespace manywalks::cli
