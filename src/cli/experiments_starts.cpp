// Registrations for the start-placement experiments: k walks from the
// stationary distribution (the paper's §1.1 prior-work comparison) and the
// same-vertex vs dispersed placement ablation.
#include <cmath>
#include <string>
#include <vector>

#include "cli/experiments_common.hpp"
#include "core/experiments.hpp"
#include "theory/closed_forms.hpp"
#include "walk/sampling.hpp"

namespace manywalks::cli {

namespace {

// --- fig_stationary_start (§1.1) --------------------------------------------

ExperimentResult run_stationary_start(const ExperimentParams& params,
                                      ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_stationary_start");
  const std::uint64_t seed = params.seed;
  const std::uint64_t target_n = resolve_n(preset, params);
  const std::uint64_t target_trials = resolve_trials(preset, params);

  const McOptions mc = preset_mc(target_trials);
  const std::vector<GraphFamily> families = {
      GraphFamily::kMargulis, GraphFamily::kGrid2d, GraphFamily::kBarbell};
  const std::vector<unsigned> ks = {1, 4, 16, 64};

  ResultTable table("stationary",
                    "Stationary-start vs same-vertex k-walk cover times "
                    "(§1.1)");
  table.add_column("graph", /*left=*/true)
      .add_column("k")
      .add_column("C^k same-vertex")
      .add_column("C^k stationary")
      .add_column("ratio")
      .add_column("Lemma19 n·ln n/k")
      .add_column("BKRU m²ln³n/k²");

  for (GraphFamily family : families) {
    const FamilyInstance instance =
        make_family_instance(family, target_n, seed);
    const double nn = static_cast<double>(instance.graph.num_vertices());
    const double mm = static_cast<double>(instance.graph.num_edges());
    const double ln_n = std::log(nn);
    for (unsigned k : ks) {
      McOptions same = mc;
      same.seed = mix64(seed ^ (0x5a3eULL + k));
      const McResult fixed_start = estimate_k_cover_time(
          instance.graph, instance.start, k, same, lane_cover_options(), &pool);
      McOptions stat = mc;
      stat.seed = mix64(seed ^ (0x57a7ULL + k));
      const McResult stationary = estimate_stationary_start_cover(
          instance.graph, k, stat, lane_cover_options(), &pool);
      table.begin_row();
      table.text(instance.name);
      table.count(k);
      table.mean_pm(fixed_start);
      table.mean_pm(stationary);
      table.real(fixed_start.ci.mean / stationary.ci.mean, 3);
      table.real(nn * ln_n / k);
      table.real(mm * mm * ln_n * ln_n * ln_n / (k * k));
    }
    table.rule();
  }

  ExperimentResult result;
  push_common_params(result, seed, params.full, target_n, target_trials,
                     pool.size());
  result.tables.push_back(std::move(table));
  result.notes = {
      "Expected: on the expander the stationary column tracks n·ln n/k "
      "(Lemma 19), far",
      "below the BKRU 1/k² bound. On the barbell the comparison flips for "
      "k ≥ 2: center",
      "starts split into both bells AND cover the center for free (Thm 7's "
      "mechanism), while",
      "stationary starts must pay the Θ(n²) bell-to-center hitting time — "
      "the paper's",
      "remark that Thm 7 holds only from v_c is visible here."};
  return result;
}

// --- fig_start_placement (ablation) -----------------------------------------

McResult measure_uniform_starts(const Graph& g, unsigned k,
                                const McOptions& mc, ThreadPool* pool) {
  return run_monte_carlo(
      [&g, k](std::uint64_t, Rng& rng) {
        const auto starts = sample_uniform_starts(g, k, rng);
        const CoverSample s = sample_multi_cover_time(g, starts, rng);
        return TrialOutcome{static_cast<double>(s.steps), !s.covered};
      },
      mc, pool);
}

ExperimentResult run_start_placement(const ExperimentParams& params,
                                     ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_start_placement");
  const std::uint64_t seed = params.seed;
  const std::uint64_t target_n = resolve_n(preset, params);
  const std::uint64_t target_trials = resolve_trials(preset, params);
  const auto k = static_cast<unsigned>(resolve_k(preset, params));

  const McOptions mc = preset_mc(target_trials);
  const std::vector<GraphFamily> families = {
      GraphFamily::kMargulis, GraphFamily::kGrid2d, GraphFamily::kCycle,
      GraphFamily::kBarbell};

  ResultTable table("placement", "k = " + std::to_string(k) +
                                     " walks: cover time by start placement");
  table.add_column("graph", /*left=*/true)
      .add_column("same-vertex")
      .add_column("stationary")
      .add_column("uniform")
      .add_column("spread (k-center)")
      .add_column("same/spread");

  for (GraphFamily family : families) {
    const FamilyInstance instance =
        make_family_instance(family, target_n, seed);
    const Graph& g = instance.graph;

    McOptions o1 = mc;
    o1.seed = mix64(seed ^ 0xaaa1ULL);
    const McResult same =
        estimate_k_cover_time(g, instance.start, k, o1, lane_cover_options(), &pool);

    McOptions o2 = mc;
    o2.seed = mix64(seed ^ 0xaaa2ULL);
    const McResult stationary =
        estimate_stationary_start_cover(g, k, o2, lane_cover_options(), &pool);

    McOptions o3 = mc;
    o3.seed = mix64(seed ^ 0xaaa3ULL);
    const McResult uniform = measure_uniform_starts(g, k, o3, &pool);

    McOptions o4 = mc;
    o4.seed = mix64(seed ^ 0xaaa4ULL);
    const std::vector<Vertex> spread = spread_starts(g, k, instance.start);
    const McResult spread_result =
        estimate_multi_cover_time(g, spread, o4, lane_cover_options(), &pool);

    table.begin_row();
    table.text(instance.name);
    table.mean_pm(same);
    table.mean_pm(stationary);
    table.mean_pm(uniform);
    table.mean_pm(spread_result);
    table.real(same.ci.mean / spread_result.ci.mean, 3);
  }

  ExperimentResult result;
  push_common_params(result, seed, params.full, target_n, target_trials,
                     pool.size());
  push_param(result, "k", static_cast<std::uint64_t>(k));
  result.tables.push_back(std::move(table));
  result.notes = {
      "Expected: placement is nearly irrelevant on the expander (walks "
      "disperse within t_mix)",
      "and worth ~5x on the cycle. On the barbell the CENTER start wins "
      "outright: the",
      "tokens split into both bells and the bottleneck vertex is covered at "
      "t = 0, while any",
      "dispersed placement pays the Θ(n²)/k bell-to-center hitting time "
      "(Thm 7 is a",
      "statement about v_c for good reason)."};
  return result;
}

}  // namespace

void register_start_experiments(ExperimentRegistry& registry) {
  registry.add({"fig_stationary_start",
                "k walks from the stationary distribution vs one vertex",
                "§1.1 / Lemma 19 (prior-work comparison)",
                /*default_seed=*/19,
                {}},
               run_stationary_start);
  registry.add({"fig_start_placement",
                "same-vertex vs stationary/uniform/spread k-walk starts",
                "Ablation beyond the paper (§2 setting)",
                /*default_seed=*/77,
                {ExtraParam::kK}},
               run_start_placement);
}

}  // namespace manywalks::cli
