// The `manywalks graph` subcommand group: on-disk graph tooling over the
// mwg v1 store (storage/).
//
//   manywalks graph gen --family=NAME --n=N [--seed=S] --out=FILE.mwg
//       synthesize a registered family and store it
//   manywalks graph convert --in=EDGES.txt --out=FILE.mwg [cleanup flags]
//       ingest a headerless external (SNAP-style) edge list
//   manywalks graph info FILE.mwg [--deep]
//       header/degree statistics from the mapped file (the adjacency is
//       never read unless --deep validation asks for it)
#pragma once

namespace manywalks::cli {

/// argv[0] is ignored (the dispatcher passes "graph" there) and argv[1]
/// is the subcommand (gen/convert/info). Exit codes: 0 success, 1 usage
/// or runtime error.
int graph_tool_main(int argc, char** argv);

}  // namespace manywalks::cli
