// Output sinks for structured experiment results.
//
// One run, three renderings: the paper-style text tables (default), JSON
// (the whole result as one document), and CSV (one stream per table).
// `--out=DIR` redirects the machine-readable formats into files named
// after the experiment.
#pragma once

#include <iosfwd>
#include <string>

#include "core/experiments.hpp"

namespace manywalks::cli {

enum class OutputFormat { kText, kJson, kCsv };

/// Parses "text" / "json" / "csv"; returns false on anything else.
bool parse_output_format(std::string_view text, OutputFormat* format);

struct SinkOptions {
  OutputFormat format = OutputFormat::kText;
  /// When nonempty, output goes to files under this directory instead of
  /// stdout: <name>.json, <name>.<table-id>.csv, or <name>.txt.
  std::string out_dir;
};

/// The legacy drivers' stdout rendering: preamble, tables, notes, elapsed.
void render_text(const ExperimentResult& result, std::ostream& os);

/// The whole result as a single JSON document (stable key order, raw
/// numeric values with round-trip precision, NaN/Inf as null).
std::string render_json(const ExperimentResult& result);

/// One table as RFC-4180 CSV. "mean ± half-width" columns expand into
/// `<name>` and `<name> (±)`.
std::string render_csv(const ResultTable& table);

/// Renders `result` per `options`: text to `os`; json/csv to `os` or, when
/// out_dir is set, to files (paths echoed on `os`). Throws on I/O errors.
void emit_result(const ExperimentResult& result, const SinkOptions& options,
                 std::ostream& os);

}  // namespace manywalks::cli
