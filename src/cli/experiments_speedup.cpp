// Registrations for the speed-up-regime experiments: the cycle's Θ(log k)
// (Thm 6), the expander's Ω(k) up to k = n (Thms 3/18), the torus spectrum
// (Thm 8), the torus projection lower bound (Thm 24), the barbell's
// exponential speed-up (Thm 7), and the Conjecture 10/11 family sweep.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "cli/experiments_common.hpp"
#include "core/experiments.hpp"
#include "core/regime.hpp"
#include "graph/generators.hpp"
#include "linalg/spectral.hpp"
#include "theory/bounds.hpp"
#include "theory/closed_forms.hpp"

namespace manywalks::cli {

namespace {

// --- fig_cycle_speedup (Thm 6) ----------------------------------------------

ExperimentResult run_cycle_speedup(const ExperimentParams& params,
                                   ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_cycle_speedup");
  const std::uint64_t seed = params.seed;
  const auto cycle_n = static_cast<Vertex>(resolve_n(preset, params));
  const std::uint64_t k_limit = resolve_kmax(preset, params);
  const std::uint64_t target_trials = resolve_trials(preset, params);

  FamilyInstance instance;
  instance.family = GraphFamily::kCycle;
  instance.graph = make_cycle(cycle_n);
  instance.name = "cycle(n=" + std::to_string(cycle_n) + ")";
  instance.start = 0;

  const ExperimentOptions options =
      preset_experiment_options(seed, target_trials);

  const std::vector<unsigned> ks = geometric_ks(k_limit);

  const SpeedupCurveResult curve =
      run_speedup_curve(instance, ks, options, &pool);

  ResultTable table("speedup",
                    "Thm 6 — cycle " + std::to_string(cycle_n) +
                        ": speed-up vs log k  (C exact = " +
                        format_double(cycle_cover_time(cycle_n)) + ")");
  table.add_column("k")
      .add_column("C^k measured")
      .add_column("Lemma21 lower")
      .add_column("Lemma22 upper")
      .add_column("S^k")
      .add_column("S^k / ln k");
  for (const SpeedupEstimate& p : curve.points) {
    table.begin_row();
    table.count(p.k);
    table.mean_pm(p.multi);
    table.real(cycle_k_cover_lower(cycle_n, p.k));
    if (p.k >= 2) {
      table.real(cycle_k_cover_upper(cycle_n, p.k));
    } else {
      table.blank();
    }
    table.mean_pm(p);
    if (p.k >= 2) {
      table.real(p.speedup / std::log(static_cast<double>(p.k)), 3);
    } else {
      table.blank();
    }
  }

  ExperimentResult result;
  push_common_params(result, seed, params.full, cycle_n, target_trials,
                     pool.size());
  push_param(result, "kmax", k_limit);
  result.tables.push_back(std::move(table));
  result.notes = {
      "Paper claim: the last column is Θ(1) — the speed-up grows only "
      "logarithmically in k",
      "(the walks race each other around the ring). Compare "
      "fig_expander_speedup."};
  return result;
}

// --- fig_expander_speedup (Thms 3/18) ---------------------------------------

ResultTable expander_family_table(const std::string& id,
                                  const FamilyInstance& instance,
                                  std::uint64_t k_limit,
                                  const ExperimentOptions& options,
                                  ThreadPool& pool) {
  const std::vector<unsigned> ks = geometric_ks(k_limit, /*factor=*/4);
  const SpeedupCurveResult curve =
      run_speedup_curve(instance, ks, options, &pool);

  ResultTable table(id, instance.name + " — speed-up up to k ≈ n");
  table.add_column("k")
      .add_column("C^k")
      .add_column("S^k")
      .add_column("S^k / k (efficiency)");
  for (const SpeedupEstimate& p : curve.points) {
    table.begin_row();
    table.count(p.k);
    table.mean_pm(p.multi);
    table.mean_pm(p);
    table.real(p.speedup / p.k, 3);
  }
  return table;
}

ExperimentResult run_expander_speedup(const ExperimentParams& params,
                                      ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_expander_speedup");
  const std::uint64_t seed = params.seed;
  const std::uint64_t target_n = resolve_n(preset, params);
  const std::uint64_t target_trials = resolve_trials(preset, params);
  const ExperimentOptions options =
      preset_experiment_options(seed, target_trials);

  ExperimentResult result;
  push_common_params(result, seed, params.full, target_n, target_trials,
                     pool.size());

  // 1. Margulis expander, certified before measuring.
  const FamilyInstance margulis =
      make_family_instance(GraphFamily::kMargulis, target_n, seed);
  const ExpanderCertificate cert = certify_expander(margulis.graph);
  result.preamble.push_back(
      "Certificate: " + margulis.name + " is an (n, 8, " +
      format_double(cert.lambda, 4) +
      ") expander (λ/d = " + format_double(cert.lambda_ratio, 3) +
      ", Gabber–Galil bound 5√2/8 ≈ 0.884)");
  result.tables.push_back(expander_family_table(
      "margulis", margulis, margulis.graph.num_vertices(), options, pool));

  // 2. Random 8-regular graph (expander w.h.p.).
  const FamilyInstance random_regular =
      make_family_instance(GraphFamily::kRandomRegular, target_n, seed);
  result.tables.push_back(expander_family_table(
      "random_regular", random_regular, random_regular.graph.num_vertices(),
      options, pool));

  // 3. The clique (Thm 3 / Lemma 12 baseline).
  const FamilyInstance clique =
      make_family_instance(GraphFamily::kComplete, target_n, seed);
  result.tables.push_back(expander_family_table(
      "clique", clique, clique.graph.num_vertices(), options, pool));

  result.notes = {
      "Paper claim (Thm 18): the efficiency column S^k/k stays Ω(1) for "
      "every k ≤ n on",
      "expanders — contrast with fig_cycle_speedup where it collapses like "
      "log(k)/k."};
  return result;
}

// --- fig_grid_spectrum (Thm 8) ----------------------------------------------

ExperimentResult run_grid_spectrum(const ExperimentParams& params,
                                   ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_grid_spectrum");
  const std::uint64_t seed = params.seed;
  const std::uint64_t target_n = resolve_n(preset, params);
  const std::uint64_t target_trials = resolve_trials(preset, params);

  const FamilyInstance instance =
      make_family_instance(GraphFamily::kGrid2d, target_n, seed);
  const double log_n =
      std::log(static_cast<double>(instance.graph.num_vertices()));
  const double log3_n = log_n * log_n * log_n;

  const ExperimentOptions options =
      preset_experiment_options(seed, target_trials);

  const std::vector<unsigned> ks =
      geometric_ks(4 * static_cast<std::uint64_t>(log3_n));

  const SpeedupCurveResult curve =
      run_speedup_curve(instance, ks, options, &pool);

  ResultTable table("spectrum",
                    "Thm 8 — " + instance.name +
                        "  (log n = " + format_double(log_n, 3) +
                        ", log³ n = " + format_double(log3_n, 3) + ")");
  table.add_column("k")
      .add_column("regime", /*left=*/true)
      .add_column("C^k")
      .add_column("S^k")
      .add_column("S^k / k");
  for (const SpeedupEstimate& p : curve.points) {
    table.begin_row();
    table.count(p.k);
    if (p.k <= log_n) {
      table.text("k ≤ log n: Ω(k)");
    } else if (p.k >= log3_n) {
      table.text("k ≥ log³ n: o(k)");
    } else {
      table.text("(between)");
    }
    table.mean_pm(p.multi);
    table.mean_pm(p);
    table.real(p.speedup / p.k, 3);
  }

  ExperimentResult result;
  push_common_params(result, seed, params.full, target_n, target_trials,
                     pool.size());
  result.tables.push_back(std::move(table));
  result.notes = {
      "Paper claim (Thm 8): efficiency ≈ 1 in the first regime, collapsing "
      "toward 0 in the",
      "last — one graph shows the whole speed-up spectrum."};
  return result;
}

// --- fig_grid_lower_bound (Thm 24) ------------------------------------------

ExperimentResult run_grid_lower_bound(const ExperimentParams& params,
                                      ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_grid_lower_bound");
  const std::uint64_t seed = params.seed;
  const std::uint64_t target_n = resolve_n(preset, params);
  const std::uint64_t target_trials = resolve_trials(preset, params);
  const ExperimentOptions options =
      preset_experiment_options(seed, target_trials);

  const std::vector<unsigned> ks = {2, 8, 32, 128};

  ResultTable table("projection",
                    "Thm 24 — torus k-cover vs the projection lower bound");
  table.add_column("graph", /*left=*/true)
      .add_column("d")
      .add_column("k")
      .add_column("C^k measured")
      .add_column("bound n^{2/d}/(16 ln 8k)")
      .add_column("measured/bound (≥1)");

  bool all_hold = true;
  for (const auto& [family, d] :
       std::vector<std::pair<GraphFamily, unsigned>>{
           {GraphFamily::kGrid2d, 2u}, {GraphFamily::kGrid3d, 3u}}) {
    const FamilyInstance instance =
        make_family_instance(family, target_n, seed);
    const SpeedupCurveResult curve =
        run_speedup_curve(instance, ks, options, &pool);
    for (const SpeedupEstimate& p : curve.points) {
      const double bound =
          grid_k_cover_lower(instance.graph.num_vertices(), d, p.k);
      const double ratio = p.multi.ci.mean / bound;
      all_hold = all_hold && ratio >= 1.0;
      table.begin_row();
      table.text(instance.name);
      table.count(d);
      table.count(p.k);
      table.mean_pm(p.multi);
      table.real(bound);
      table.real(ratio, 3);
    }
    table.rule();
  }

  ExperimentResult result;
  push_common_params(result, seed, params.full, target_n, target_trials,
                     pool.size());
  result.tables.push_back(std::move(table));
  result.has_verdict = true;
  result.passed = all_hold;
  result.notes = {
      all_hold ? "All measured C^k respect the projection lower bound "
                 "(column ≥ 1). ✓"
               : "BOUND VIOLATION — investigate! ✗",
      "Note: covering the torus requires the projected walk to cover a "
      "cycle of length n^{1/d}",
      "(Lemma 21 applied to the projection)."};
  return result;
}

// --- fig_barbell_speedup (Thm 7 / Figure 1) ---------------------------------

ExperimentResult run_barbell_speedup(const ExperimentParams& params,
                                     ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_barbell_speedup");
  const std::uint64_t seed = params.seed;
  const std::uint64_t target_trials = resolve_trials(preset, params);
  const double c_k = resolve_ck(preset, params);

  std::vector<Vertex> ns;
  if (params.n != 0) {
    ns = {static_cast<Vertex>(params.n)};
  } else {
    ns = params.full ? std::vector<Vertex>{101, 201, 401, 801, 1601}
                     : std::vector<Vertex>{51, 101, 201, 401};
  }

  const ExperimentOptions options =
      preset_experiment_options(seed, target_trials);
  const BarbellResult barbell =
      run_barbell_experiment(ns, c_k, options, &pool);
  ResultTable table = make_barbell_result_table(barbell);

  ExperimentResult result;
  push_common_params(result, seed, params.full, params.n, target_trials,
                     pool.size());
  push_param(result, "ck", c_k);
  result.tables.push_back(std::move(table));
  result.notes = {
      "Paper claim (Thm 7): C/n² stays Θ(1) while C^k/n stays O(1) at k = " +
          format_double(c_k, 4) + "·ln n —",
      "the speed-up column therefore grows ~ n, exponential in k."};
  return result;
}

// --- fig_conjectures (Conjectures 10 & 11) ----------------------------------

ExperimentResult run_conjectures(const ExperimentParams& params,
                                 ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("fig_conjectures");
  const std::uint64_t seed = params.seed;
  const std::uint64_t target_n = resolve_n(preset, params);
  const std::uint64_t target_trials = resolve_trials(preset, params);

  const McOptions mc = preset_mc(target_trials);
  const std::vector<unsigned> ks = {4, 16, 64};

  ResultTable table("conjectures",
                    "Conjectures 10 & 11 — S^k across every implemented "
                    "family");
  table.add_column("graph", /*left=*/true);
  for (unsigned k : ks) table.add_column("S^" + std::to_string(k));
  for (unsigned k : ks) table.add_column("S^" + std::to_string(k) + "/k");
  table.add_column("min S^k/ln k");
  table.add_column("fit S~k^b");
  table.add_column("regime", /*left=*/true);
  table.add_column("verdict", /*left=*/true);

  // The lollipop's cover time from the clique is Θ(n³); cap its size so the
  // quick mode stays quick.
  for (GraphFamily family : all_families()) {
    std::uint64_t family_n = target_n;
    if (family == GraphFamily::kLollipop) {
      family_n = std::min<std::uint64_t>(family_n, 96);
    }
    const FamilyInstance instance =
        make_family_instance(family, family_n, seed);
    McOptions local = mc;
    local.seed = mix64(seed ^ (0xc0371ULL + static_cast<unsigned>(family)));
    const auto curve = estimate_speedup_curve(instance.graph, instance.start,
                                              ks, local, lane_cover_options(), &pool);
    table.begin_row();
    table.text(instance.name);
    double min_log_ratio = 1e300;
    double max_lin_ratio = 0.0;
    for (const SpeedupEstimate& p : curve) {
      table.mean_pm(p);
      min_log_ratio = std::min(
          min_log_ratio, p.speedup / std::log(static_cast<double>(p.k)));
      max_lin_ratio = std::max(max_lin_ratio, p.speedup / p.k);
    }
    for (const SpeedupEstimate& p : curve) {
      table.real(p.speedup / p.k, 3);
    }
    table.real(min_log_ratio, 3);
    const RegimeFit fit = classify_speedup_regime(curve);
    table.text("b=" + format_double(fit.exponent, 2));
    table.text(std::string(regime_name(fit.regime)));
    const bool super_linear = max_lin_ratio > 1.5;
    const bool sub_log = min_log_ratio < 0.3;
    if (family == GraphFamily::kBarbell && super_linear) {
      table.text("super-linear (Thm 7 start!)");
    } else if (super_linear) {
      table.text("C10 counterexample?!");
    } else if (sub_log) {
      table.text("C11 counterexample?!");
    } else {
      table.text("consistent");
    }
  }

  ExperimentResult result;
  push_common_params(result, seed, params.full, target_n, target_trials,
                     pool.size());
  result.tables.push_back(std::move(table));
  result.notes = {
      "Conjecture 10 (S^k = O(k)) and Conjecture 11 (S^k = Ω(log k)) should "
      "hold on every row;",
      "the barbell from its center is the paper's own known super-linear "
      "exception (Thm 7)."};
  return result;
}

}  // namespace

void register_speedup_experiments(ExperimentRegistry& registry) {
  registry.add({"fig_cycle_speedup",
                "cycle: S^k = Θ(log k), with the Lemma 21/22 envelope",
                "Theorem 6 (§5)",
                /*default_seed=*/6,
                {ExtraParam::kKmax}},
               run_cycle_speedup);
  registry.add({"fig_expander_speedup",
                "expanders and the clique: Ω(k) speed-up up to k = n",
                "Theorems 3 & 18 (§3, §6)",
                /*default_seed=*/18,
                {}},
               run_expander_speedup);
  registry.add({"fig_grid_spectrum",
                "2-D torus: linear at k ≤ log n, sub-linear past log³ n",
                "Theorem 8 (§4)",
                /*default_seed=*/8,
                {}},
               run_grid_spectrum);
  registry.add({"fig_grid_lower_bound",
                "tori: C^k ≥ n^{2/d}/(16 ln 8k), the projection bound",
                "Theorem 24 / Corollary 25 (§7)",
                /*default_seed=*/24,
                {}},
               run_grid_lower_bound);
  registry.add({"fig_barbell_speedup",
                "barbell from the center: C = Θ(n²) vs C^k = O(n)",
                "Theorem 7 / Figure 1 (§3)",
                /*default_seed=*/3,
                {ExtraParam::kCk}},
               run_barbell_speedup);
  registry.add({"fig_conjectures",
                "log k ≤ S^k ≤ k sweep over all fifteen families",
                "Conjectures 10 & 11 (§8)",
                /*default_seed=*/1011,
                {}},
               run_conjectures);
}

}  // namespace manywalks::cli
