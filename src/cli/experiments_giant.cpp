// Giant-graph speed-up experiments on implicit substrates (no CSR).
//
// Every other experiment materializes a CSR Graph, which caps n at the
// memory of an explicit edge list (a 10^8-vertex cycle is ~1.6 GB of CSR)
// long before the paper's asymptotic regimes separate. These two run the
// walk engine directly on closed-form substrates at n = 10^7 (quick) to
// 10^8 (--full), where the only O(n) allocation is the n/8-byte visit
// tracker of each worker thread's pooled engine.
//
// Full cover is out of reach at that scale (Θ(n²) on the cycle, Θ(n log²n)
// on the torus), so both experiments measure the PARTIAL-cover speed-up
// S^k(d) = T¹(d) / T^k(d), the expected rounds for k walks from one vertex
// to visit d distinct vertices. On the cycle that is exactly the quantity
// the paper's own Lemmas 21/22 bound — the spread of k walks racing around
// the ring — and it reproduces the Θ(log k) shape of Theorem 6; on the
// torus small k give the near-linear regime of Theorem 8.
#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "cli/experiments_common.hpp"
#include "graph/substrate.hpp"
#include "mc/estimators.hpp"

namespace manywalks::cli {

namespace {

std::string memory_model_line(std::uint64_t n, std::uint64_t degree) {
  // CSR cost: (n+1) 8-byte offsets + degree*n 4-byte targets.
  const double csr_mib = (8.0 * (static_cast<double>(n) + 1.0) +
                          4.0 * static_cast<double>(degree * n)) /
                         (1024.0 * 1024.0);
  const double tracker_mib = static_cast<double>(n) / 8.0 / (1024.0 * 1024.0);
  return "implicit substrate at n = " + format_count(n) +
         ": no CSR built (an explicit graph would hold ~" +
         format_double(csr_mib, 3) + " MiB of CSR); the only O(n) state is "
         "each worker's n/8-byte visit tracker (" +
         format_double(tracker_mib, 3) + " MiB).";
}

/// Saturating step cap from a double estimate (a user-supplied --target
/// near the Vertex limit would overflow 64 * target² in uint64).
std::uint64_t saturating_cap(double cap) {
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  if (!(cap < static_cast<double>(kMax))) return kMax;
  return static_cast<std::uint64_t>(cap);
}

ResultTable speedup_table(const std::string& id, const std::string& title,
                          const std::vector<SpeedupEstimate>& curve,
                          bool log_reference) {
  ResultTable table(id, title);
  table.add_column("k")
      .add_column("T^k(target)")
      .add_column("S^k")
      .add_column(log_reference ? "S^k / ln k" : "S^k / k");
  for (const SpeedupEstimate& p : curve) {
    table.begin_row();
    table.count(p.k);
    table.mean_pm(p.multi);
    table.mean_pm(p);
    if (log_reference) {
      if (p.k >= 2) {
        table.real(p.speedup / std::log(static_cast<double>(p.k)), 3);
      } else {
        table.blank();
      }
    } else {
      table.real(p.speedup / p.k, 3);
    }
  }
  return table;
}

// --- giant-cycle-speedup (Thm 6 at n = 10^7–10^8) ---------------------------

ExperimentResult run_giant_cycle(const ExperimentParams& params,
                                 ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("giant-cycle-speedup");
  const std::uint64_t seed = params.seed;
  const std::uint64_t n64 = std::max<std::uint64_t>(resolve_n(preset, params), 3);
  MW_REQUIRE(n64 <= std::numeric_limits<Vertex>::max(),
             "giant-cycle-speedup: n " << n64 << " exceeds the 32-bit vertex "
             "limit " << std::numeric_limits<Vertex>::max());
  const auto n = static_cast<Vertex>(n64);
  const std::uint64_t trials = resolve_trials(preset, params);
  const std::uint64_t k_limit =
      checked_walk_count("giant-cycle-speedup", resolve_kmax(preset, params));
  const Vertex target = clamp_cover_target(resolve_target(preset, params), n);

  const CycleSubstrate substrate(n);
  const std::vector<unsigned> ks = geometric_ks(k_limit);

  // A single walk reaches d distinct vertices (range d on the ring) in
  // ~d²/2 expected rounds; 64x headroom keeps censoring out of healthy
  // runs, and a pathological draw that does hit the cap is now flagged in
  // every sink rather than silently averaged.
  CoverOptions cover = lane_cover_options();
  cover.step_cap = saturating_cap(
      64.0 * static_cast<double>(target) * static_cast<double>(target));
  cover.lane_shards = params.lane_shards;

  McOptions mc = preset_mc(trials);
  mc.seed = mix64(seed ^ 0x61a27c1eULL);
  const std::vector<SpeedupEstimate> curve = estimate_speedup_curve_to_target(
      substrate, /*start=*/0, target, ks, mc, cover, &pool);

  ExperimentResult result;
  push_common_params(result, seed, params.full, n64, trials, pool.size());
  push_param(result, "kmax", k_limit);
  push_param(result, "target", static_cast<std::uint64_t>(target));
  push_parallelism_params(result, cover, mc.max_trials, k_limit, pool.size());
  result.preamble.push_back(memory_model_line(n64, /*degree=*/2));
  result.tables.push_back(speedup_table(
      "speedup",
      "Thm 6 at scale — cycle n = " + format_count(n64) + ", rounds to visit " +
          format_count(target) + " distinct vertices",
      curve, /*log_reference=*/true));
  result.notes = {
      "Paper claim (Thm 6 / Lemmas 21–22): k walks from one vertex spread "
      "only Θ(log k) faster",
      "than one, so the last column is Θ(1). No CSR exists at this n; the "
      "implicit substrate",
      "is RNG-stream-identical to the CSR engine (tests/test_substrate.cpp), "
      "so these numbers",
      "are exactly what an (infeasible) explicit graph would produce."};
  return result;
}

// --- giant-torus-speedup (Thm 8 at n = 10^7–10^8) ---------------------------

ExperimentResult run_giant_torus(const ExperimentParams& params,
                                 ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("giant-torus-speedup");
  const std::uint64_t seed = params.seed;
  const std::uint64_t requested_n =
      std::max<std::uint64_t>(resolve_n(preset, params), 9);
  const auto side = static_cast<Vertex>(std::max<std::uint64_t>(
      3, static_cast<std::uint64_t>(
             std::llround(std::sqrt(static_cast<double>(requested_n))))));
  const TorusSubstrate substrate(side);
  const Vertex n = substrate.num_vertices();
  const std::uint64_t trials = resolve_trials(preset, params);
  const std::uint64_t k_limit =
      checked_walk_count("giant-torus-speedup", resolve_kmax(preset, params));
  const Vertex target = clamp_cover_target(resolve_target(preset, params), n);

  const std::vector<unsigned> ks = geometric_ks(k_limit);

  // A single 2-d torus walk visits ~πt/ln t distinct vertices in t rounds,
  // so d distinct take ~(d/π)·ln d rounds; 64x headroom as on the cycle.
  const double d = static_cast<double>(target);
  CoverOptions cover = lane_cover_options();
  cover.step_cap = saturating_cap(64.0 * d * std::max(std::log(d), 1.0));
  cover.lane_shards = params.lane_shards;

  McOptions mc = preset_mc(trials);
  mc.seed = mix64(seed ^ 0x9a7052e5ULL);
  const std::vector<SpeedupEstimate> curve = estimate_speedup_curve_to_target(
      substrate, /*start=*/0, target, ks, mc, cover, &pool);

  ExperimentResult result;
  push_common_params(result, seed, params.full,
                     static_cast<std::uint64_t>(n), trials, pool.size());
  push_param(result, "side", static_cast<std::uint64_t>(side));
  push_param(result, "kmax", k_limit);
  push_param(result, "target", static_cast<std::uint64_t>(target));
  push_parallelism_params(result, cover, mc.max_trials, k_limit, pool.size());
  result.preamble.push_back(memory_model_line(n, /*degree=*/4));
  result.tables.push_back(speedup_table(
      "speedup",
      "Thm 8 at scale — torus " + format_count(side) + "x" +
          format_count(side) + ", rounds to visit " + format_count(target) +
          " distinct vertices",
      curve, /*log_reference=*/false));
  result.notes = {
      "Paper claim (Thm 8): on the 2-d torus the speed-up is near-linear "
      "(efficiency S^k/k ≈ 1)",
      "while k stays small against log n, and collapses once k outruns the "
      "polylog regime.",
      "At n = 10^7–10^8 the regimes separate visibly — sizes no CSR graph "
      "reaches."};
  return result;
}

}  // namespace

void register_giant_experiments(ExperimentRegistry& registry) {
  registry.add({"giant-cycle-speedup",
                "implicit 10^7–10^8 cycle: partial-cover S^k = Θ(log k)",
                "Theorem 6 (§5) at giant n",
                /*default_seed=*/621,
                {ExtraParam::kKmax, ExtraParam::kTarget,
                 ExtraParam::kLaneShards}},
               run_giant_cycle);
  registry.add({"giant-torus-speedup",
                "implicit 10^7–10^8 torus: near-linear partial-cover S^k",
                "Theorem 8 (§4) at giant n",
                /*default_seed=*/824,
                {ExtraParam::kKmax, ExtraParam::kTarget,
                 ExtraParam::kLaneShards}},
               run_giant_torus);
}

}  // namespace manywalks::cli
