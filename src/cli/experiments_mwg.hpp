// The stored-graph (--graph=FILE.mwg) experiments: the paper's k-walk
// speed-up and start-placement measurements on arbitrary graphs loaded
// zero-copy from disk (storage/mapped_graph.hpp).
//
// The experiment bodies are exposed on a bound CsrSubstrate so the
// acceptance contract is testable: the registered runners map the file
// and call these, and the tests call them again with the same graph built
// in memory — same seed, both rng modes — and require byte-identical
// results (tests/test_storage.cpp).
#pragma once

#include <string>

#include "cli/registry.hpp"
#include "graph/substrate.hpp"
#include "walk/cover_types.hpp"

namespace manywalks::cli {

/// The mwg-speedup body: S^k curve (optionally to a partial-cover
/// --target) from --start on an already-bound substrate. `source` labels
/// the graph in the output; `cover` pins the rng mode (the registered
/// runner passes lane_cover_options()).
ExperimentResult run_mwg_speedup_on_substrate(const CsrSubstrate& substrate,
                                              const std::string& source,
                                              const ExperimentParams& params,
                                              ThreadPool& pool,
                                              const CoverOptions& cover);

/// The mwg-starts body: C^k under same-vertex / stationary / uniform
/// start placements on an already-bound substrate.
ExperimentResult run_mwg_starts_on_substrate(const CsrSubstrate& substrate,
                                             const std::string& source,
                                             const ExperimentParams& params,
                                             ThreadPool& pool,
                                             const CoverOptions& cover);

}  // namespace manywalks::cli
