// Registrations for the stored-graph experiments: `--graph=FILE.mwg`
// versions of the paper's speed-up and start-placement measurements,
// running the walk engine zero-copy off a memory-mapped mwg file. This is
// how the k-walk results get measured on real-world graphs (SNAP dumps
// via `manywalks graph convert`) instead of only the synthetic families.
//
// `--block-walk` switches both experiments to the out-of-core
// block-scheduled engine (walk/block_engine.hpp) with an explicit
// `--mem-budget`: the graph must be mwg v2, only its metadata stays
// resident, and — determinism contract v4 — every number in the tables
// is bit-identical to the in-core run at any budget.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cli/experiments_common.hpp"
#include "cli/experiments_mwg.hpp"
#include "mc/estimators.hpp"
#include "storage/block_store.hpp"
#include "storage/mapped_graph.hpp"
#include "util/options.hpp"
#include "walk/block_engine.hpp"
#include "walk/sampling.hpp"

namespace manywalks::cli {

namespace {

Vertex checked_start(const char* name, const ExperimentParams& params,
                     Vertex n) {
  MW_REQUIRE(params.start < n, name << ": --start " << params.start
                                    << " out of range (n=" << n << ")");
  return static_cast<Vertex>(params.start);
}

std::string substrate_preamble(const CsrSubstrate& substrate,
                               const std::string& source) {
  return "stored graph " + source + ": n = " +
         format_count(substrate.num_vertices()) + ", arcs = " +
         format_count(substrate.offsets().back()) +
         " — adjacency memory-mapped read-only; the engine binds the "
         "mapped arrays through the same CsrSubstrate as an in-core graph, "
         "so the streams are bit-identical.";
}

MappedGraph open_mapped(const char* name, const ExperimentParams& params) {
  MW_REQUIRE(!params.graph.empty(),
             name << " needs --graph=FILE.mwg (create one with `manywalks "
                     "graph gen` or `manywalks graph convert`)");
  return MappedGraph(params.graph);
}

// --- shared table/notes builders (in-core and blocked paths emit the
// same rows, which is how the v4 bit-identity contract stays visible in
// the output, not just in the goldens) ---------------------------------

ResultTable speedup_table(const std::string& source, Vertex start,
                          Vertex target, Vertex n,
                          const std::vector<SpeedupEstimate>& curve) {
  ResultTable table("speedup",
                    source + " — S^k from vertex " + format_count(start) +
                        (target == n ? " (full cover)"
                                     : ", rounds to visit " +
                                           format_count(target) +
                                           " distinct vertices"));
  table.add_column("k")
      .add_column("C^k")
      .add_column("S^k")
      .add_column("S^k / k")
      .add_column("S^k / ln k");
  for (const SpeedupEstimate& p : curve) {
    table.begin_row();
    table.count(p.k);
    table.mean_pm(p.multi);
    table.mean_pm(p);
    table.real(p.speedup / p.k, 3);
    if (p.k >= 2) {
      table.real(p.speedup / std::log(static_cast<double>(p.k)), 3);
    } else {
      table.blank();
    }
  }
  return table;
}

std::vector<std::string> speedup_notes() {
  return {
      "Conjectures 10/11 predict log k ≲ S^k ≲ k on ANY graph: the last "
      "two columns bracket",
      "where this graph falls between the cycle's Θ(log k) and the "
      "expander's Θ(k) regimes."};
}

ResultTable starts_table(const std::string& source, unsigned k, Vertex start,
                         const McResult& same, const McResult& stationary,
                         const McResult& uniform) {
  ResultTable table("starts", source + " — C^k (k = " + format_count(k) +
                                  ") by start placement");
  table.add_column("placement", /*left=*/true)
      .add_column("C^k")
      .add_column("vs same-vertex");
  table.begin_row();
  table.text("same-vertex (" + format_count(start) + ")");
  table.mean_pm(same);
  table.real(1.0, 3);
  table.begin_row();
  table.text("stationary");
  table.mean_pm(stationary);
  table.real(same.ci.mean / stationary.ci.mean, 3);
  table.begin_row();
  table.text("uniform");
  table.mean_pm(uniform);
  table.real(same.ci.mean / uniform.ci.mean, 3);
  return table;
}

std::vector<std::string> starts_notes() {
  return {
      "Placement sensitivity locates the graph on the paper's map: "
      "irrelevant on expanders",
      "(walks disperse within t_mix), ~constant-factor on tori, decisive "
      "around bottlenecks",
      "(Thm 7's barbell center). Stationary starts are re-drawn per trial "
      "(§1.1 setting)."};
}

// --- out-of-core (--block-walk) runners -------------------------------

constexpr std::uint64_t kDefaultMemBudget = std::uint64_t{256} << 20;

std::uint64_t resolve_mem_budget(const ExperimentParams& params) {
  return params.mem_budget.empty() ? kDefaultMemBudget
                                   : parse_byte_size(params.mem_budget);
}

BlockedGraph open_blocked(const char* name, const ExperimentParams& params) {
  MW_REQUIRE(!params.graph.empty(),
             name << " needs --graph=FILE.mwg (create one with `manywalks "
                     "graph gen` or `manywalks graph convert`)");
  return BlockedGraph(params.graph);
}

std::string blocked_preamble(const BlockedGraph& graph,
                             const std::string& source,
                             std::uint64_t budget) {
  return "stored graph " + source + ": n = " +
         format_count(graph.num_vertices()) + ", arcs = " +
         format_count(graph.num_arcs()) + " — mwg v2, " +
         format_count(graph.num_blocks()) + " blocks of 2^" +
         std::to_string(graph.block_bits()) +
         " vertices; block-scheduled out-of-core engine with a " +
         format_count(budget) +
         "-byte resident-extent budget (only graph metadata stays mapped). "
         "Results are bit-identical to the in-core run at any budget "
         "(determinism contract v4).";
}

std::string blocked_cache_note(const BlockedRunTotals& totals) {
  // Counters reset per trial (see estimate_cover_to_target_blocked), so
  // these are per-trial aggregates: totals are sums of independent trial
  // readings and the peak is a true heaviest-trial figure.
  std::string note =
      "block engine (" + format_count(totals.trials) +
      " trials, counters reset per trial): " +
      format_count(totals.cache_loads) + " extent loads (" +
      format_count(totals.cache_hits) + " cache hits";
  const std::uint64_t lookups = totals.cache_loads + totals.cache_hits;
  if (lookups > 0) {
    char rate[32];
    std::snprintf(rate, sizeof(rate), ", %.1f%%",
                  100.0 * static_cast<double>(totals.cache_hits) /
                      static_cast<double>(lookups));
    note += rate;
  }
  note += ", " + format_count(totals.cache_evictions) + " evictions), " +
          format_count(totals.cache_bytes_loaded) + " bytes streamed (peak " +
          format_count(totals.peak_trial_bytes_loaded) + "/trial) across " +
          format_count(totals.horizons) + " horizons / " +
          format_count(totals.bucket_passes) + " bucket passes.";
  return note;
}

ExperimentResult run_mwg_speedup_blocked(const ExperimentParams& params,
                                         ThreadPool& pool) {
  const BlockedGraph graph = open_blocked("mwg-speedup", params);
  const std::uint64_t budget = resolve_mem_budget(params);
  BlockWalkEngine engine(graph, budget);

  const ExperimentPreset& preset = preset_for("mwg-speedup");
  const std::uint64_t seed = params.seed;
  const std::uint64_t trials = resolve_trials(preset, params);
  const std::uint64_t k_limit =
      checked_walk_count("mwg-speedup", resolve_kmax(preset, params));
  const Vertex n = graph.num_vertices();
  const Vertex start = checked_start("mwg-speedup", params, n);
  const Vertex target = clamp_cover_target(resolve_target(preset, params), n);
  const std::vector<unsigned> ks = geometric_ks(k_limit);

  McOptions mc = preset_mc(trials);
  mc.seed = mix64(seed ^ 0x3396a1ULL);
  BlockedRunTotals totals;
  const std::vector<SpeedupEstimate> curve =
      estimate_speedup_curve_to_target_blocked(engine, start, target, ks, mc,
                                               lane_cover_options(), &totals);

  ExperimentResult result;
  push_common_params(result, seed, params.full,
                     static_cast<std::uint64_t>(n), trials, pool.size());
  push_param(result, "graph", params.graph);
  push_param(result, "start", static_cast<std::uint64_t>(start));
  push_param(result, "kmax", k_limit);
  push_param(result, "target", static_cast<std::uint64_t>(target));
  push_param(result, "parallelism", std::string("blocked"));
  push_param(result, "mem_budget", budget);
  result.preamble.push_back(blocked_preamble(graph, params.graph, budget));
  result.tables.push_back(speedup_table(params.graph, start, target, n, curve));
  result.notes = speedup_notes();
  result.notes.push_back(blocked_cache_note(totals));
  return result;
}

ExperimentResult run_mwg_starts_blocked(const ExperimentParams& params,
                                        ThreadPool& pool) {
  const BlockedGraph graph = open_blocked("mwg-starts", params);
  const std::uint64_t budget = resolve_mem_budget(params);
  BlockWalkEngine engine(graph, budget);

  const ExperimentPreset& preset = preset_for("mwg-starts");
  const std::uint64_t seed = params.seed;
  const std::uint64_t trials = resolve_trials(preset, params);
  const auto k = static_cast<unsigned>(checked_walk_count(
      "mwg-starts", std::max<std::uint64_t>(resolve_k(preset, params), 1)));
  const Vertex n = graph.num_vertices();
  const Vertex start = checked_start("mwg-starts", params, n);

  // The shared engine forces serial trials (see
  // estimate_cover_to_target_blocked); the raw run_monte_carlo calls
  // below pin the same mode so all three placements reduce identically
  // to the in-core path.
  const CoverOptions cover_run = lane_cover_options();
  McOptions mc = preset_mc(trials);
  mc.parallelism = McParallelism::kLanes;

  BlockedRunTotals totals;
  McOptions same_mc = mc;
  same_mc.seed = mix64(seed ^ 0x3a11ULL);
  const McResult same = estimate_cover_to_target_blocked(
      engine, start, k, n, same_mc, cover_run, &totals);

  const std::span<const std::uint64_t> offsets = graph.offsets();
  McOptions stationary_mc = mc;
  stationary_mc.seed = mix64(seed ^ 0x3a22ULL);
  const McResult stationary = run_monte_carlo(
      [&engine, &totals, offsets, k, cover_run, n](std::uint64_t, Rng& rng) {
        std::vector<Vertex> starts(k);
        for (Vertex& s : starts) {
          s = sample_stationary_vertex_csr(offsets, rng);
        }
        engine.reset(starts);
        engine.reset_stats();
        const CoverSample sample = engine.run_until_visited(n, rng, cover_run);
        totals.absorb(engine);
        return TrialOutcome{static_cast<double>(sample.steps), !sample.covered};
      },
      stationary_mc, nullptr);

  McOptions uniform_mc = mc;
  uniform_mc.seed = mix64(seed ^ 0x3a33ULL);
  const McResult uniform = run_monte_carlo(
      [&engine, &totals, k, cover_run, n](std::uint64_t, Rng& rng) {
        std::vector<Vertex> starts(k);
        for (Vertex& s : starts) s = rng.uniform_below_wide(n);
        engine.reset(starts);
        engine.reset_stats();
        const CoverSample sample = engine.run_until_visited(n, rng, cover_run);
        totals.absorb(engine);
        return TrialOutcome{static_cast<double>(sample.steps), !sample.covered};
      },
      uniform_mc, nullptr);

  ExperimentResult result;
  push_common_params(result, seed, params.full,
                     static_cast<std::uint64_t>(n), trials, pool.size());
  push_param(result, "graph", params.graph);
  push_param(result, "start", static_cast<std::uint64_t>(start));
  push_param(result, "k", static_cast<std::uint64_t>(k));
  push_param(result, "parallelism", std::string("blocked"));
  push_param(result, "mem_budget", budget);
  result.preamble.push_back(blocked_preamble(graph, params.graph, budget));
  result.tables.push_back(
      starts_table(params.graph, k, start, same, stationary, uniform));
  result.notes = starts_notes();
  result.notes.push_back(blocked_cache_note(totals));
  return result;
}

ExperimentResult run_mwg_speedup(const ExperimentParams& params,
                                 ThreadPool& pool) {
  MW_REQUIRE(params.mem_budget.empty() || params.block_walk,
             "--mem-budget only applies with --block-walk");
  if (params.block_walk) return run_mwg_speedup_blocked(params, pool);
  const MappedGraph mapped = open_mapped("mwg-speedup", params);
  return run_mwg_speedup_on_substrate(mapped.substrate(), params.graph,
                                      params, pool, lane_cover_options());
}

ExperimentResult run_mwg_starts(const ExperimentParams& params,
                                ThreadPool& pool) {
  MW_REQUIRE(params.mem_budget.empty() || params.block_walk,
             "--mem-budget only applies with --block-walk");
  if (params.block_walk) return run_mwg_starts_blocked(params, pool);
  const MappedGraph mapped = open_mapped("mwg-starts", params);
  return run_mwg_starts_on_substrate(mapped.substrate(), params.graph, params,
                                     pool, lane_cover_options());
}

}  // namespace

ExperimentResult run_mwg_speedup_on_substrate(const CsrSubstrate& substrate,
                                              const std::string& source,
                                              const ExperimentParams& params,
                                              ThreadPool& pool,
                                              const CoverOptions& cover) {
  const ExperimentPreset& preset = preset_for("mwg-speedup");
  const std::uint64_t seed = params.seed;
  const std::uint64_t trials = resolve_trials(preset, params);
  const std::uint64_t k_limit =
      checked_walk_count("mwg-speedup", resolve_kmax(preset, params));
  const Vertex n = substrate.num_vertices();
  const Vertex start = checked_start("mwg-speedup", params, n);
  const Vertex target = clamp_cover_target(resolve_target(preset, params), n);
  const std::vector<unsigned> ks = geometric_ks(k_limit);

  CoverOptions cover_run = cover;
  cover_run.lane_shards = params.lane_shards;
  McOptions mc = preset_mc(trials);
  mc.seed = mix64(seed ^ 0x3396a1ULL);
  const std::vector<SpeedupEstimate> curve = estimate_speedup_curve_to_target(
      substrate, start, target, ks, mc, cover_run, &pool);

  ExperimentResult result;
  push_common_params(result, seed, params.full,
                     static_cast<std::uint64_t>(n), trials, pool.size());
  push_param(result, "graph", source);
  push_param(result, "start", static_cast<std::uint64_t>(start));
  push_param(result, "kmax", k_limit);
  push_param(result, "target", static_cast<std::uint64_t>(target));
  push_parallelism_params(result, cover_run, mc.max_trials, k_limit,
                          pool.size());
  result.preamble.push_back(substrate_preamble(substrate, source));
  result.tables.push_back(speedup_table(source, start, target, n, curve));
  result.notes = speedup_notes();
  return result;
}

ExperimentResult run_mwg_starts_on_substrate(const CsrSubstrate& substrate,
                                             const std::string& source,
                                             const ExperimentParams& params,
                                             ThreadPool& pool,
                                             const CoverOptions& cover) {
  const ExperimentPreset& preset = preset_for("mwg-starts");
  const std::uint64_t seed = params.seed;
  const std::uint64_t trials = resolve_trials(preset, params);
  const auto k = static_cast<unsigned>(checked_walk_count(
      "mwg-starts", std::max<std::uint64_t>(resolve_k(preset, params), 1)));
  const Vertex n = substrate.num_vertices();
  const Vertex start = checked_start("mwg-starts", params, n);
  // The two raw run_monte_carlo calls below bypass the estimators, so the
  // thread-budget policy is applied here once (lanes = k for all three
  // placements); estimate_k_cover_time re-applies it idempotently.
  CoverOptions cover_run = cover;
  cover_run.lane_shards = params.lane_shards;
  McOptions mc = preset_mc(trials);
  apply_thread_budget(k, &pool, mc, cover_run);

  McOptions same_mc = mc;
  same_mc.seed = mix64(seed ^ 0x3a11ULL);
  const McResult same =
      estimate_k_cover_time(substrate, start, k, same_mc, cover_run, &pool);

  McOptions stationary_mc = mc;
  stationary_mc.seed = mix64(seed ^ 0x3a22ULL);
  const McResult stationary = run_monte_carlo(
      [substrate, k, cover_run](std::uint64_t, Rng& rng) {
        std::vector<Vertex> starts(k);
        for (Vertex& s : starts) {
          s = sample_stationary_vertex_csr(substrate.offsets(), rng);
        }
        const CoverSample sample = sample_cover_to_target(
            substrate, starts, substrate.num_vertices(), rng, cover_run);
        return TrialOutcome{static_cast<double>(sample.steps), !sample.covered};
      },
      stationary_mc, &pool);

  McOptions uniform_mc = mc;
  uniform_mc.seed = mix64(seed ^ 0x3a33ULL);
  const McResult uniform = run_monte_carlo(
      [substrate, k, cover_run, n](std::uint64_t, Rng& rng) {
        std::vector<Vertex> starts(k);
        for (Vertex& s : starts) s = rng.uniform_below_wide(n);
        const CoverSample sample = sample_cover_to_target(
            substrate, starts, substrate.num_vertices(), rng, cover_run);
        return TrialOutcome{static_cast<double>(sample.steps), !sample.covered};
      },
      uniform_mc, &pool);

  ExperimentResult result;
  push_common_params(result, seed, params.full,
                     static_cast<std::uint64_t>(n), trials, pool.size());
  push_param(result, "graph", source);
  push_param(result, "start", static_cast<std::uint64_t>(start));
  push_param(result, "k", static_cast<std::uint64_t>(k));
  push_parallelism_params(result, cover_run, mc.max_trials, k, pool.size());
  result.preamble.push_back(substrate_preamble(substrate, source));
  result.tables.push_back(
      starts_table(source, k, start, same, stationary, uniform));
  result.notes = starts_notes();
  return result;
}

void register_mwg_experiments(ExperimentRegistry& registry) {
  registry.add({"mwg-speedup",
                "stored .mwg graph via mmap: the paper's S^k curve",
                "Thms 6/8/18 machinery on stored graphs",
                /*default_seed=*/51,
                {ExtraParam::kGraph, ExtraParam::kKmax, ExtraParam::kTarget,
                 ExtraParam::kStart, ExtraParam::kLaneShards,
                 ExtraParam::kBlockWalk, ExtraParam::kMemBudget}},
               run_mwg_speedup);
  registry.add({"mwg-starts",
                "stored .mwg graph via mmap: C^k by start placement",
                "§1.1 / Lemma 19 setting on stored graphs",
                /*default_seed=*/52,
                {ExtraParam::kGraph, ExtraParam::kK, ExtraParam::kStart,
                 ExtraParam::kLaneShards, ExtraParam::kBlockWalk,
                 ExtraParam::kMemBudget}},
               run_mwg_starts);
}

}  // namespace manywalks::cli
