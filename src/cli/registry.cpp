#include "cli/registry.hpp"

#include "util/check.hpp"

namespace manywalks::cli {

void ExperimentRegistry::add(ExperimentInfo info, ExperimentRunner runner) {
  MW_REQUIRE(!info.name.empty(), "experiment name must be nonempty");
  MW_REQUIRE(runner != nullptr,
             "experiment '" << info.name << "' needs a runner");
  MW_REQUIRE(find(info.name) == nullptr,
             "duplicate experiment name '" << info.name << "'");
  auto experiment = std::make_unique<Experiment>();
  experiment->info = std::move(info);
  experiment->runner = std::move(runner);
  experiments_.push_back(std::move(experiment));
}

const Experiment* ExperimentRegistry::find(std::string_view name) const {
  for (const auto& experiment : experiments_) {
    if (experiment->info.name == name) return experiment.get();
  }
  return nullptr;
}

std::vector<const Experiment*> ExperimentRegistry::list() const {
  std::vector<const Experiment*> result;
  result.reserve(experiments_.size());
  for (const auto& experiment : experiments_) result.push_back(experiment.get());
  return result;
}

void register_all_experiments(ExperimentRegistry& registry) {
  register_table1_experiment(registry);
  register_speedup_experiments(registry);
  register_bounds_experiments(registry);
  register_start_experiments(registry);
  register_giant_experiments(registry);
  register_mwg_experiments(registry);
}

const ExperimentRegistry& default_registry() {
  static const ExperimentRegistry registry = [] {
    ExperimentRegistry r;
    register_all_experiments(r);
    return r;
  }();
  return registry;
}

}  // namespace manywalks::cli
