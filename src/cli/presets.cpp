#include "cli/presets.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"

namespace manywalks::cli {

namespace {

// Quick presets target ~a minute on one core; --full targets the paper's
// scales (the values are the ones the standalone drivers shipped with).
// The giant-* experiments run on implicit substrates: their n is the
// 10^7–10^8 range no CSR graph reaches, and `target` is the distinct-vertex
// partial-cover goal (full cover is Θ(n²) on the cycle — infeasible there).
constexpr std::array<ExperimentPreset, 17> kPresets{{
    {"table1_summary", 256, 4096, 120, 400},
    {"fig_cycle_speedup", 257, 1025, 150, 400, /*kmax=*/256, 4096},
    {"fig_expander_speedup", 256, 1024, 120, 300},
    {"fig_grid_spectrum", 441, 4096, 150, 300},
    {"fig_grid_lower_bound", 441, 4096, 120, 300},
    {"fig_barbell_speedup", 0, 0, 150, 400, 0, 0, 0, /*ck=*/20.0},
    {"fig_conjectures", 128, 512, 100, 250},
    {"fig_matthews_bounds", 225, 900, 120, 300},
    {"fig_mixing_bound", 256, 1024, 120, 300},
    {"fig_lemma16", 100, 256, 1500, 4000},
    {"fig_aldous_concentration", 0, 0, 600, 3000},
    {"fig_stationary_start", 256, 1024, 120, 300},
    {"fig_start_placement", 256, 1024, 120, 300, 0, 0, /*k=*/16},
    {"giant-cycle-speedup", 10'000'000, 100'000'000, 8, 16,
     /*kmax=*/64, 256, 0, 0.0, /*target=*/4000, 20'000},
    {"giant-torus-speedup", 10'000'000, 100'000'000, 8, 16,
     /*kmax=*/64, 256, 0, 0.0, /*target=*/1'000'000, 4'000'000},
    // Stored-graph (--graph=FILE.mwg) experiments: n comes from the file,
    // so the size presets stay 0 and only trial/k budgets differ.
    {"mwg-speedup", 0, 0, 24, 100, /*kmax=*/16, 64},
    {"mwg-starts", 0, 0, 24, 100, 0, 0, /*k=*/8},
}};

}  // namespace

const ExperimentPreset* find_preset(std::string_view name) {
  for (const ExperimentPreset& preset : kPresets) {
    if (preset.name == name) return &preset;
  }
  return nullptr;
}

const ExperimentPreset& preset_for(std::string_view name) {
  const ExperimentPreset* preset = find_preset(name);
  MW_REQUIRE(preset != nullptr, "no preset for experiment '" << name << "'");
  return *preset;
}

std::uint64_t resolve_n(const ExperimentPreset& preset,
                        const ExperimentParams& params) {
  if (params.n != 0) return params.n;
  return params.full ? preset.full_n : preset.quick_n;
}

std::uint64_t resolve_trials(const ExperimentPreset& preset,
                             const ExperimentParams& params) {
  if (params.trials != 0) return params.trials;
  return params.full ? preset.full_trials : preset.quick_trials;
}

std::uint64_t resolve_kmax(const ExperimentPreset& preset,
                           const ExperimentParams& params) {
  if (params.kmax != 0) return params.kmax;
  return params.full ? preset.full_kmax : preset.quick_kmax;
}

std::uint64_t resolve_k(const ExperimentPreset& preset,
                        const ExperimentParams& params) {
  return params.k != 0 ? params.k : preset.default_k;
}

double resolve_ck(const ExperimentPreset& preset,
                  const ExperimentParams& params) {
  return params.ck != 0.0 ? params.ck : preset.default_ck;
}

std::uint64_t resolve_target(const ExperimentPreset& preset,
                             const ExperimentParams& params) {
  if (params.target != 0) return params.target;
  return params.full ? preset.full_target : preset.quick_target;
}

McOptions preset_mc(std::uint64_t trials) {
  McOptions mc;
  mc.min_trials = std::max<std::uint64_t>(trials / 4, 8);
  mc.max_trials = trials;
  return mc;
}

ExperimentOptions preset_experiment_options(std::uint64_t seed,
                                            std::uint64_t trials) {
  ExperimentOptions options;
  options.seed = seed;
  options.mc = preset_mc(trials);
  return options;
}

}  // namespace manywalks::cli
