#include "cli/sinks.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace manywalks::cli {

namespace {

/// Shortest round-trip decimal representation of a double.
std::string number_repr(double value) {
  char buffer[64];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  MW_REQUIRE(ec == std::errc{}, "double formatting failed");
  return std::string(buffer, ptr);
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON numbers cannot be NaN/Inf; those render as null.
void json_number(std::ostream& os, double value) {
  if (std::isfinite(value)) {
    os << number_repr(value);
  } else {
    os << "null";
  }
}

void json_cell(std::ostream& os, const ResultCell& cell) {
  struct Visitor {
    std::ostream& os;
    void operator()(std::monostate) const { os << "null"; }
    void operator()(const std::string& text) const {
      os << '"' << json_escape(text) << '"';
    }
    void operator()(std::uint64_t value) const { os << value; }
    void operator()(const RealCell& value) const {
      json_number(os, value.value);
    }
    void operator()(const MeanPmCell& value) const {
      os << "{\"mean\": ";
      json_number(os, value.mean);
      os << ", \"half_width\": ";
      json_number(os, value.half_width);
      if (value.censored > 0) os << ", \"censored\": " << value.censored;
      os << '}';
    }
    void operator()(bool value) const { os << (value ? "true" : "false"); }
  };
  std::visit(Visitor{os}, cell);
}

void json_string_array(std::ostream& os,
                       const std::vector<std::string>& lines) {
  os << '[';
  for (std::size_t i = 0; i < lines.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(lines[i]) << '"';
  }
  if (!lines.empty()) os << "\n  ";
  os << ']';
}

bool csv_needs_quoting(std::string_view text) {
  return text.find_first_of(",\"\r\n") != std::string_view::npos;
}

std::string csv_escape(std::string_view text) {
  if (!csv_needs_quoting(text)) return std::string(text);
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// CSV value of the non-± part of a cell; empty for monostate.
std::string csv_value(const ResultCell& cell) {
  struct Visitor {
    std::string operator()(std::monostate) const { return {}; }
    std::string operator()(const std::string& text) const {
      return csv_escape(text);
    }
    std::string operator()(std::uint64_t value) const {
      return std::to_string(value);
    }
    std::string operator()(const RealCell& value) const {
      return number_repr(value.value);
    }
    std::string operator()(const MeanPmCell& value) const {
      return number_repr(value.mean);
    }
    std::string operator()(bool value) const {
      return value ? "true" : "false";
    }
  };
  return std::visit(Visitor{}, cell);
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  MW_REQUIRE(os.good(), "cannot open " << path.string() << " for writing");
  os << content;
  MW_REQUIRE(os.good(), "write to " << path.string() << " failed");
}

}  // namespace

bool parse_output_format(std::string_view text, OutputFormat* format) {
  if (text == "text") {
    *format = OutputFormat::kText;
  } else if (text == "json") {
    *format = OutputFormat::kJson;
  } else if (text == "csv") {
    *format = OutputFormat::kCsv;
  } else {
    return false;
  }
  return true;
}

void render_text(const ExperimentResult& result, std::ostream& os) {
  for (const std::string& line : result.preamble) os << line << '\n';
  if (!result.preamble.empty()) os << '\n';
  for (const ResultTable& table : result.tables) {
    os << to_text_table(table) << '\n';
  }
  if (result.censored_cells > 0) {
    os << "WARNING: " << result.censored_cells
       << " estimate(s) marked † include step-cap-censored trials; their "
          "means are lower bounds.\n";
  }
  for (const std::string& line : result.notes) os << line << '\n';
  // Manifest lines start at column 0 on purpose: CI's budget-invariance
  // check diffs the table rows (`grep '^ '`), and manifest values carry
  // wall-clock timings that legitimately differ between runs.
  if (!result.manifest.empty()) {
    os << "run manifest:\n";
    for (const auto& [key, cell] : result.manifest) {
      os << "manifest " << key << " = " << cell_text(cell) << '\n';
    }
  }
  os << "Elapsed: " << format_double(result.elapsed_seconds, 3) << " s\n";
}

std::string render_json(const ExperimentResult& result) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"experiment\": \"" << json_escape(result.name) << "\",\n";
  os << "  \"claim\": \"" << json_escape(result.claim) << "\",\n";
  os << "  \"params\": {";
  for (std::size_t i = 0; i < result.params.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << json_escape(result.params[i].first) << "\": ";
    json_cell(os, result.params[i].second);
  }
  if (!result.params.empty()) os << "\n  ";
  os << "},\n";
  os << "  \"preamble\": ";
  json_string_array(os, result.preamble);
  os << ",\n  \"tables\": [";
  for (std::size_t t = 0; t < result.tables.size(); ++t) {
    const ResultTable& table = result.tables[t];
    os << (t == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"id\": \"" << json_escape(table.id()) << "\",\n";
    os << "      \"title\": \"" << json_escape(table.title()) << "\",\n";
    os << "      \"columns\": [";
    const auto& columns = table.columns();
    for (std::size_t c = 0; c < columns.size(); ++c) {
      os << (c == 0 ? "" : ", ") << '"' << json_escape(columns[c].name) << '"';
    }
    os << "],\n";
    os << "      \"rows\": [";
    const auto& rows = table.rows();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      os << (r == 0 ? "\n" : ",\n") << "        [";
      for (std::size_t c = 0; c < rows[r].cells.size(); ++c) {
        if (c != 0) os << ", ";
        json_cell(os, rows[r].cells[c]);
      }
      os << ']';
    }
    if (!rows.empty()) os << "\n      ";
    os << "]\n    }";
  }
  if (!result.tables.empty()) os << "\n  ";
  os << "],\n";
  os << "  \"notes\": ";
  json_string_array(os, result.notes);
  os << ",\n";
  os << "  \"censored_cells\": " << result.censored_cells << ",\n";
  // Only present under --metrics: an absent manifest keeps the document
  // byte-identical to what every pre-observability run produced.
  if (!result.manifest.empty()) {
    os << "  \"manifest\": {";
    for (std::size_t i = 0; i < result.manifest.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "    \""
         << json_escape(result.manifest[i].first) << "\": ";
      json_cell(os, result.manifest[i].second);
    }
    os << "\n  },\n";
  }
  if (result.has_verdict) {
    os << "  \"passed\": " << (result.passed ? "true" : "false") << ",\n";
  }
  os << "  \"elapsed_seconds\": ";
  json_number(os, result.elapsed_seconds);
  os << "\n}\n";
  return os.str();
}

std::string render_csv(const ResultTable& table) {
  const auto& columns = table.columns();
  const auto& rows = table.rows();

  // A column holding any mean±half cell expands into two CSV columns; a
  // column with any censored estimate additionally grows a count column so
  // lower-bound means are never machine-read as clean ones.
  std::vector<bool> has_half(columns.size(), false);
  std::vector<bool> has_censored(columns.size(), false);
  for (const ResultTable::Row& row : rows) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (const auto* pm = std::get_if<MeanPmCell>(&row.cells[c])) {
        has_half[c] = true;
        if (pm->censored > 0) has_censored[c] = true;
      }
    }
  }

  std::ostringstream os;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c != 0) os << ',';
    os << csv_escape(columns[c].name);
    if (has_half[c]) os << ',' << csv_escape(columns[c].name + " (±)");
    if (has_censored[c]) {
      os << ',' << csv_escape(columns[c].name + " (censored)");
    }
  }
  os << '\n';
  for (const ResultTable::Row& row : rows) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c != 0) os << ',';
      const ResultCell* cell = c < row.cells.size() ? &row.cells[c] : nullptr;
      if (cell != nullptr) os << csv_value(*cell);
      const auto* pm =
          cell != nullptr ? std::get_if<MeanPmCell>(cell) : nullptr;
      if (has_half[c]) {
        os << ',';
        if (pm != nullptr) os << number_repr(pm->half_width);
      }
      if (has_censored[c]) {
        os << ',';
        if (pm != nullptr) os << pm->censored;
      }
    }
    os << '\n';
  }
  return os.str();
}

void emit_result(const ExperimentResult& result, const SinkOptions& options,
                 std::ostream& os) {
  switch (options.format) {
    case OutputFormat::kText: {
      if (options.out_dir.empty()) {
        render_text(result, os);
      } else {
        std::ostringstream text;
        render_text(result, text);
        std::filesystem::create_directories(options.out_dir);
        const auto path =
            std::filesystem::path(options.out_dir) / (result.name + ".txt");
        write_file(path, text.str());
        os << "wrote " << path.string() << '\n';
      }
      return;
    }
    case OutputFormat::kJson: {
      const std::string json = render_json(result);
      if (options.out_dir.empty()) {
        os << json;
      } else {
        std::filesystem::create_directories(options.out_dir);
        const auto path =
            std::filesystem::path(options.out_dir) / (result.name + ".json");
        write_file(path, json);
        os << "wrote " << path.string() << '\n';
      }
      return;
    }
    case OutputFormat::kCsv: {
      if (!options.out_dir.empty()) {
        std::filesystem::create_directories(options.out_dir);
      }
      for (const ResultTable& table : result.tables) {
        const std::string csv = render_csv(table);
        if (options.out_dir.empty()) {
          os << "# table " << table.id() << " — " << table.title() << '\n'
             << csv << '\n';
        } else {
          const auto path = std::filesystem::path(options.out_dir) /
                            (result.name + "." + table.id() + ".csv");
          write_file(path, csv);
          os << "wrote " << path.string() << '\n';
        }
      }
      if (!result.manifest.empty()) {
        std::ostringstream manifest;
        manifest << "key,value\n";
        for (const auto& [key, cell] : result.manifest) {
          manifest << csv_escape(key) << ',' << csv_value(cell) << '\n';
        }
        if (options.out_dir.empty()) {
          os << "# manifest\n" << manifest.str() << '\n';
        } else {
          const auto path = std::filesystem::path(options.out_dir) /
                            (result.name + ".manifest.csv");
          write_file(path, manifest.str());
          os << "wrote " << path.string() << '\n';
        }
      }
      return;
    }
  }
}

}  // namespace manywalks::cli
