#include "cli/driver.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "cli/graph_tool.hpp"
#include "cli/presets.hpp"
#include "cli/registry.hpp"
#include "cli/sinks.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace manywalks::cli {

namespace {

bool has_extra(const ExperimentInfo& info, ExtraParam extra) {
  return std::find(info.extras.begin(), info.extras.end(), extra) !=
         info.extras.end();
}

/// Fills ExperimentResult::manifest for `--metrics`: timings, resolved
/// parallelism, then the full metric snapshot (stable enum-then-
/// registration order, zeros included, so two runs produce comparable
/// key sets).
void fill_manifest(ExperimentResult& result,
                   const obs::MetricsRegistry& registry, double wall_seconds,
                   double cpu_seconds, unsigned lane_shards,
                   std::size_t pool_threads) {
  auto& manifest = result.manifest;
  manifest.emplace_back("wall_seconds", RealCell{wall_seconds, 4});
  manifest.emplace_back("cpu_seconds", RealCell{cpu_seconds, 4});
  manifest.emplace_back("threads", static_cast<std::uint64_t>(pool_threads));
  manifest.emplace_back("lane_shards", static_cast<std::uint64_t>(lane_shards));
  for (const obs::MetricSnapshot& snap : registry.snapshot()) {
    if (snap.kind == obs::MetricKind::kHistogram) {
      manifest.emplace_back("metrics." + snap.name + ".count", snap.value);
      std::size_t last = snap.buckets.size();
      while (last > 0 && snap.buckets[last - 1] == 0) --last;
      std::string buckets;
      for (std::size_t i = 0; i < last; ++i) {
        if (i != 0) buckets += ',';
        buckets += std::to_string(snap.buckets[i]);
      }
      manifest.emplace_back("metrics." + snap.name + ".log2_buckets",
                            std::move(buckets));
    } else {
      manifest.emplace_back("metrics." + snap.name, snap.value);
    }
  }
}

void print_usage(std::ostream& os) {
  os << "manywalks — unified experiment CLI for the SPAA 2008 reproduction\n"
        "\n"
        "Usage:\n"
        "  manywalks list [--plain]     all registered experiments and the\n"
        "                               paper claims they reproduce\n"
        "                               (--plain: names only, for scripts)\n"
        "  manywalks run <exp> [opts]   run one experiment; common options:\n"
        "                               --full --n=<n> --trials=<t>\n"
        "                               --seed=<s> --threads=<w>\n"
        "                               --format=text|json|csv --out=<dir>\n"
        "  manywalks table1 [opts]      shorthand for `run table1_summary`\n"
        "  manywalks graph <cmd>        on-disk graph tooling: gen/convert\n"
        "                               edge lists to .mwg binary CSR files\n"
        "                               and inspect them (`graph help`);\n"
        "                               run them via `run mwg-speedup\n"
        "                               --graph=FILE.mwg`\n"
        "  manywalks help               this message\n"
        "\n"
        "`manywalks run <exp> --help` lists the experiment's own options.\n"
        "See docs/REPRODUCING.md for the claim-by-claim reproduction guide.\n";
}

int list_experiments(int argc, char** argv) {
  bool plain = false;
  ArgParser parser("manywalks list", "list the registered experiments");
  parser.add_flag("plain", &plain, "print bare names only (for scripts)");
  if (!parser.parse(argc, argv)) return 1;

  const auto experiments = default_registry().list();
  if (plain) {
    for (const Experiment* experiment : experiments) {
      std::cout << experiment->info.name << '\n';
    }
    return 0;
  }
  TextTable table("Registered experiments (run with `manywalks run <name>`)");
  table.add_column("name", TextTable::Align::kLeft)
      .add_column("paper claim", TextTable::Align::kLeft)
      .add_column("summary", TextTable::Align::kLeft);
  for (const Experiment* experiment : experiments) {
    table.begin_row();
    table.cell(experiment->info.name);
    table.cell(experiment->info.claim);
    table.cell(experiment->info.summary);
  }
  std::cout << table;
  return 0;
}

}  // namespace

int run_experiment_main(std::string_view name, int argc, char** argv) {
  const Experiment* experiment = default_registry().find(name);
  if (experiment == nullptr) {
    std::cerr << "manywalks: unknown experiment '" << name
              << "' (see `manywalks list`)\n";
    return 2;
  }
  const ExperimentInfo& info = experiment->info;

  ExperimentParams params;
  // The registration's default seed is the parser default, so --help shows
  // the real value and an explicit --seed=0 is honored verbatim.
  params.seed = info.default_seed;
  std::string format_text = "text";
  SinkOptions sink;
  bool progress_flag = false;
  std::string progress_secs = "2";
  std::string trace_out;
  bool metrics_flag = false;
  ArgParser parser(info.name, info.summary + " [" + info.claim + "]");
  parser.add_flag("full", &params.full, "paper-scale presets")
      .add_option("n", &params.n, "target graph size (0 = preset)")
      .add_option("trials", &params.trials, "Monte-Carlo trials (0 = preset)")
      .add_option("seed", &params.seed, "master seed")
      .add_option("threads", &params.threads, "worker threads (0 = hardware)")
      .add_option("format", &format_text, "output format: text, json, csv")
      .add_option("out", &sink.out_dir,
                  "directory for json/csv files (default: stdout)")
      .add_optional_value_flag(
          "progress", &progress_flag, &progress_secs,
          "stderr heartbeat (trials, rounds, steps/s, cache hit-rate, ETA); "
          "--progress=SECS sets the interval in seconds")
      .add_option("trace-out", &trace_out,
                  "write a Chrome trace-event JSON file of the run "
                  "(view in Perfetto / chrome://tracing)")
      .add_flag("metrics", &metrics_flag,
                "append a run manifest (wall/CPU time, resolved "
                "parallelism, metric snapshot) to the output");
  if (has_extra(info, ExtraParam::kK)) {
    parser.add_option("k", &params.k, "number of walks (0 = preset)");
  }
  if (has_extra(info, ExtraParam::kKmax)) {
    parser.add_option("kmax", &params.kmax,
                      "largest k in the sweep (0 = preset)");
  }
  if (has_extra(info, ExtraParam::kCk)) {
    parser.add_option("ck", &params.ck, "k = ck * ln n (0 = preset)");
  }
  if (has_extra(info, ExtraParam::kTarget)) {
    parser.add_option("target", &params.target,
                      "distinct-vertex coverage target (0 = preset, "
                      "clamped to n)");
  }
  if (has_extra(info, ExtraParam::kStart)) {
    parser.add_option("start", &params.start, "start vertex");
  }
  if (has_extra(info, ExtraParam::kGraph)) {
    parser.add_option("graph", &params.graph,
                      "stored .mwg graph file (see `manywalks graph`)");
  }
  if (has_extra(info, ExtraParam::kLaneShards)) {
    parser.add_option("lane-shards", &params.lane_shards,
                      "lane shards per cover trial (0 = thread-budget "
                      "policy; any value yields identical results)");
  }
  if (has_extra(info, ExtraParam::kBlockWalk)) {
    parser.add_flag("block-walk", &params.block_walk,
                    "out-of-core block-scheduled engine (needs an mwg v2 "
                    "--graph; results identical to the in-core run)");
  }
  if (has_extra(info, ExtraParam::kMemBudget)) {
    parser.add_option("mem-budget", &params.mem_budget,
                      "resident-extent budget for --block-walk, e.g. 64M "
                      "(default 256M; any budget yields identical results)");
  }
  if (!parser.parse(argc, argv)) return 1;
  if (!parse_output_format(format_text, &sink.format)) {
    std::cerr << info.name << ": unknown --format '" << format_text
              << "' (expected text, json, or csv)\n";
    return 1;
  }

  double progress_interval = 0.0;
  if (progress_flag) {
    char* end = nullptr;
    progress_interval = std::strtod(progress_secs.c_str(), &end);
    if (end == progress_secs.c_str() || *end != '\0' ||
        !(progress_interval >= 0.0)) {
      std::cerr << info.name << ": bad --progress interval '" << progress_secs
                << "' (want seconds, e.g. --progress=5)\n";
      return 1;
    }
  }

  // THE place "--threads 0 = hardware" is resolved: runners and sinks
  // downstream always see the real worker count, never the 0 sentinel.
  if (params.threads == 0) params.threads = default_thread_count();
  ThreadPool pool(params.threads);

  // Observability is strictly additive: with none of --progress /
  // --trace-out / --metrics given, no observer is installed and every
  // engine sees the same null pointer it always has.
  const bool observe = progress_flag || metrics_flag || !trace_out.empty();
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::TraceWriter> trace;
  if (!trace_out.empty()) trace = std::make_unique<obs::TraceWriter>(trace_out);
  std::unique_ptr<obs::ProgressReporter> progress;
  if (progress_flag) {
    progress = std::make_unique<obs::ProgressReporter>(progress_interval,
                                                       &registry);
  }
  obs::RunObserver run_observer{&registry, trace.get(), progress.get()};

  Stopwatch watch;
  const double cpu_start = obs::process_cpu_seconds();
  ExperimentResult result;
  try {
    {
      std::optional<obs::ScopedObserver> scoped;
      if (observe) scoped.emplace(&run_observer);
      obs::TraceSpan span(trace.get(), "experiment", "cli");
      span.set_args("\"name\":\"" + info.name + "\"");
      result = experiment->run(params, pool);
    }
    result.elapsed_seconds = watch.seconds();
    if (observe) {
      // run() has returned and the observer is uninstalled: the pool is
      // idle, so this drain is at a quiesced point and catches counters
      // flushed after the last in-run drain (e.g. a final sharded cover).
      obs::drain_thread_counters(registry);
    }
    if (progress != nullptr) progress->finish();
    if (metrics_flag) {
      fill_manifest(result, registry, result.elapsed_seconds,
                    obs::process_cpu_seconds() - cpu_start, params.lane_shards,
                    pool.size());
    }
    emit_result(result, sink, std::cout);
    if (trace != nullptr) {
      if (trace->write()) {
        std::cerr << "wrote trace " << trace->path() << " ("
                  << trace->event_count() << " events";
        if (trace->dropped() > 0) {
          std::cerr << ", " << trace->dropped() << " dropped at the "
                    << "buffer cap";
        }
        std::cerr << ")\n";
      } else {
        std::cerr << info.name << ": cannot write --trace-out file '"
                  << trace->path() << "'\n";
        return 1;
      }
    }
  } catch (const std::exception& error) {
    std::cerr << info.name << ": " << error.what() << '\n';
    return 1;
  }
  return result.has_verdict && !result.passed ? 1 : 0;
}

int manywalks_main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 1;
  }
  const std::string_view command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    print_usage(std::cout);
    return 0;
  }
  if (command == "list") {
    return list_experiments(argc - 1, argv + 1);
  }
  if (command == "table1") {
    return run_experiment_main("table1_summary", argc - 1, argv + 1);
  }
  if (command == "graph") {
    return graph_tool_main(argc - 1, argv + 1);
  }
  if (command == "run") {
    if (argc < 3 || std::string_view(argv[2]).rfind("--", 0) == 0) {
      std::cerr << "manywalks run: missing experiment name (see `manywalks "
                   "list`)\n";
      return 1;
    }
    return run_experiment_main(argv[2], argc - 2, argv + 2);
  }
  // Convenience: `manywalks fig_cycle_speedup ...` works too.
  if (default_registry().find(command) != nullptr) {
    return run_experiment_main(command, argc - 1, argv + 1);
  }
  std::cerr << "manywalks: unknown command '" << command << "'\n\n";
  print_usage(std::cerr);
  return 1;
}

}  // namespace manywalks::cli
