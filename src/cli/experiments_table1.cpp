// Registration for the paper's Table 1 summary (experiment T1): for each
// of the seven graph families, the measured cover time, maximum hitting
// time, mixing time, the Matthews gap, and the speed-up S^k at small k,
// side by side with the paper's predicted orders.
#include <cmath>
#include <iostream>
#include <sstream>
#include <vector>

#include "cli/experiments_common.hpp"
#include "core/experiments.hpp"

namespace manywalks::cli {

namespace {

ExperimentResult run_table1(const ExperimentParams& params, ThreadPool& pool) {
  const ExperimentPreset& preset = preset_for("table1_summary");
  const std::uint64_t seed = params.seed;
  const std::uint64_t target_n = resolve_n(preset, params);
  const std::uint64_t target_trials = resolve_trials(preset, params);

  ExperimentOptions options = preset_experiment_options(seed, target_trials);
  options.mc.target_rel_half_width = 0.04;
  options.hmax_exact_limit = params.full ? 2048 : 1200;
  // At n ≈ 4096 the cycle's t_mix = Θ(n²) ≈ 17M steps, each O(arcs) — the
  // exact measurement would dominate the whole table. Cap it and let the
  // row report "> cap", which is the Θ(n²) prediction's signature anyway.
  options.mixing_cap = params.full ? 2'000'000 : 1'000'000;

  // Speed-up columns: k = 2 and k = floor(ln n) (the Thm 4 regime).
  const auto log_n = static_cast<unsigned>(std::max(
      3.0, std::floor(std::log(static_cast<double>(target_n)))));
  const std::vector<unsigned> ks = {2, log_n};

  std::vector<Table1Row> rows;
  for (GraphFamily family : table1_families()) {
    const FamilyInstance instance =
        make_family_instance(family, target_n, seed);
    std::cerr << "[table1] measuring " << instance.name << "...\n";
    rows.push_back(run_table1_row(instance, ks, options, &pool));
  }

  ExperimentResult result;
  push_common_params(result, seed, params.full, target_n, target_trials,
                     pool.size());
  result.tables.push_back(make_table1_result_table(rows, ks));
  result.notes = {
      "h_max marked * is a sampled extremal-pair estimate (exact solve above "
      "the size cap).",
      "Mixing time uses the paper's definition (L1 < 1/e); (lazy) marks "
      "bipartite families",
      "measured on the 1/2-lazy chain."};
  return result;
}

}  // namespace

void register_table1_experiment(ExperimentRegistry& registry) {
  registry.add({"table1_summary",
                "reproduce Table 1 of the paper across the seven families",
                "Table 1 (§1, results summary)",
                /*default_seed=*/1,
                {}},
               run_table1);
}

}  // namespace manywalks::cli
