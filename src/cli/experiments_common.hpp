// Internal helpers shared by the experiments_*.cpp registration files.
#pragma once

#include <string>
#include <utility>

#include "cli/presets.hpp"
#include "cli/registry.hpp"

namespace manywalks::cli {

inline void push_param(ExperimentResult& result, std::string name,
                       std::uint64_t value) {
  result.params.emplace_back(std::move(name), ResultCell{value});
}

inline void push_param(ExperimentResult& result, std::string name,
                       double value) {
  result.params.emplace_back(std::move(name), ResultCell{RealCell{value, 4}});
}

inline void push_param(ExperimentResult& result, std::string name,
                       std::string value) {
  result.params.emplace_back(std::move(name), ResultCell{std::move(value)});
}

inline void push_param(ExperimentResult& result, std::string name,
                       bool value) {
  result.params.emplace_back(std::move(name), ResultCell{value});
}

/// The shared (seed, full, n, trials, threads) parameter echo.
inline void push_common_params(ExperimentResult& result, std::uint64_t seed,
                               bool full, std::uint64_t n,
                               std::uint64_t trials, unsigned threads) {
  push_param(result, "seed", seed);
  push_param(result, "full", full);
  if (n != 0) push_param(result, "n", n);
  push_param(result, "trials", trials);
  push_param(result, "threads", static_cast<std::uint64_t>(threads));
}

}  // namespace manywalks::cli
