// Internal helpers shared by the experiments_*.cpp registration files.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "cli/presets.hpp"
#include "cli/registry.hpp"
#include "mc/monte_carlo.hpp"
#include "util/check.hpp"
#include "walk/cover_types.hpp"

namespace manywalks::cli {

/// The k-sweep every speed-up experiment uses: 1, factor, factor², ... up
/// to k_limit. Overflow-safe for any 64-bit --kmax (the limit is clamped
/// to the unsigned range and the loop stops before k * factor can wrap).
inline std::vector<unsigned> geometric_ks(std::uint64_t k_limit,
                                          std::uint64_t factor = 2) {
  MW_REQUIRE(factor >= 2, "geometric_ks needs factor >= 2, got " << factor);
  std::vector<unsigned> ks;
  const std::uint64_t bound = std::min<std::uint64_t>(
      std::max<std::uint64_t>(k_limit, 1),
      std::numeric_limits<unsigned>::max());
  for (std::uint64_t k = 1; k <= bound; k *= factor) {
    ks.push_back(static_cast<unsigned>(k));
    if (k > bound / factor) break;  // k * factor would overflow past bound
  }
  return ks;
}

/// Guard on --kmax/--k style walk counts: a sweep point allocates 4k bytes
/// of tokens and does k token-steps per round, so reject absurd values up
/// front instead of grinding into an OOM (2^20 walks is already far past
/// every regime the paper discusses).
inline std::uint64_t checked_walk_count(const char* name,
                                        std::uint64_t k_limit) {
  constexpr std::uint64_t kMaxWalks = 1ULL << 20;
  MW_REQUIRE(k_limit <= kMaxWalks,
             name << ": walk count " << k_limit << " exceeds the supported "
                  << kMaxWalks << " walks");
  return k_limit;
}

/// Clamps a --target coverage goal into [2, n]: 0 (and anything past n)
/// means full cover, and a target of 1 is degenerate — the start vertex
/// alone covers it at t = 0. Shared by the giant-* and mwg-* experiments
/// so the clamping policy cannot drift between them.
inline std::uint32_t clamp_cover_target(std::uint64_t target,
                                        std::uint32_t n) {
  if (target == 0 || target > n) return n;
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(target, 2));
}

inline void push_param(ExperimentResult& result, std::string name,
                       std::uint64_t value) {
  result.params.emplace_back(std::move(name), ResultCell{value});
}

inline void push_param(ExperimentResult& result, std::string name,
                       double value) {
  result.params.emplace_back(std::move(name), ResultCell{RealCell{value, 4}});
}

inline void push_param(ExperimentResult& result, std::string name,
                       std::string value) {
  result.params.emplace_back(std::move(name), ResultCell{std::move(value)});
}

inline void push_param(ExperimentResult& result, std::string name,
                       bool value) {
  result.params.emplace_back(std::move(name), ResultCell{value});
}

/// Echoes the thread-budget decision for the experiment's headline
/// (largest-k) estimate: the resolved "parallelism" mode ("trials" or
/// "lanes") and the "lane_shards" count the sharded engine uses there
/// (0 = serial lane kernel). Applies the same pure rules as
/// apply_thread_budget / auto_lane_shards, so the echo matches what the
/// estimators actually do for that estimate.
inline void push_parallelism_params(ExperimentResult& result,
                                    const CoverOptions& cover,
                                    std::uint64_t max_trials,
                                    std::size_t lanes, unsigned pool_threads) {
  const McParallelism mode =
      cover.lane_shards > 0
          ? McParallelism::kLanes
          : choose_parallelism(max_trials, lanes, pool_threads);
  const unsigned shards =
      cover.lane_shards > 0
          ? static_cast<unsigned>(std::min<std::size_t>(
                cover.lane_shards, std::max<std::size_t>(lanes, 1)))
          : (mode == McParallelism::kLanes ? auto_lane_shards(lanes) : 0);
  push_param(result, "parallelism", std::string(parallelism_name(mode)));
  push_param(result, "lane_shards", static_cast<std::uint64_t>(shards));
}

/// The shared (seed, full, n, trials, threads) parameter echo.
inline void push_common_params(ExperimentResult& result, std::uint64_t seed,
                               bool full, std::uint64_t n,
                               std::uint64_t trials, unsigned threads) {
  push_param(result, "seed", seed);
  push_param(result, "full", full);
  if (n != 0) push_param(result, "n", n);
  push_param(result, "trials", trials);
  push_param(result, "threads", static_cast<std::uint64_t>(threads));
}

}  // namespace manywalks::cli
