// Internal helpers shared by the experiments_*.cpp registration files.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "cli/presets.hpp"
#include "cli/registry.hpp"
#include "util/check.hpp"

namespace manywalks::cli {

/// The k-sweep every speed-up experiment uses: 1, factor, factor², ... up
/// to k_limit. Overflow-safe for any 64-bit --kmax (the limit is clamped
/// to the unsigned range and the loop stops before k * factor can wrap).
inline std::vector<unsigned> geometric_ks(std::uint64_t k_limit,
                                          std::uint64_t factor = 2) {
  MW_REQUIRE(factor >= 2, "geometric_ks needs factor >= 2, got " << factor);
  std::vector<unsigned> ks;
  const std::uint64_t bound = std::min<std::uint64_t>(
      std::max<std::uint64_t>(k_limit, 1),
      std::numeric_limits<unsigned>::max());
  for (std::uint64_t k = 1; k <= bound; k *= factor) {
    ks.push_back(static_cast<unsigned>(k));
    if (k > bound / factor) break;  // k * factor would overflow past bound
  }
  return ks;
}

inline void push_param(ExperimentResult& result, std::string name,
                       std::uint64_t value) {
  result.params.emplace_back(std::move(name), ResultCell{value});
}

inline void push_param(ExperimentResult& result, std::string name,
                       double value) {
  result.params.emplace_back(std::move(name), ResultCell{RealCell{value, 4}});
}

inline void push_param(ExperimentResult& result, std::string name,
                       std::string value) {
  result.params.emplace_back(std::move(name), ResultCell{std::move(value)});
}

inline void push_param(ExperimentResult& result, std::string name,
                       bool value) {
  result.params.emplace_back(std::move(name), ResultCell{value});
}

/// The shared (seed, full, n, trials, threads) parameter echo.
inline void push_common_params(ExperimentResult& result, std::uint64_t seed,
                               bool full, std::uint64_t n,
                               std::uint64_t trials, unsigned threads) {
  push_param(result, "seed", seed);
  push_param(result, "full", full);
  if (n != 0) push_param(result, "n", n);
  push_param(result, "trials", trials);
  push_param(result, "threads", static_cast<std::uint64_t>(threads));
}

}  // namespace manywalks::cli
