#include "cli/graph_tool.hpp"

#include <iostream>
#include <string>
#include <vector>

#include "core/families.hpp"
#include "storage/ingest.hpp"
#include "storage/mapped_graph.hpp"
#include "storage/mwg.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace manywalks::cli {

namespace {

void print_graph_usage(std::ostream& os) {
  os << "manywalks graph — on-disk graph tooling (mwg v1 binary CSR)\n"
        "\n"
        "Usage:\n"
        "  manywalks graph gen --family=NAME --n=N [--seed=S] --out=F.mwg\n"
        "                               synthesize a family and store it\n"
        "                               (families: cycle, grid2d, margulis,\n"
        "                               random-regular, ... — see docs)\n"
        "  manywalks graph convert --in=EDGES.txt --out=F.mwg\n"
        "                               [--keep-duplicates]\n"
        "                               [--keep-self-loops]\n"
        "                               [--largest-component]\n"
        "                               ingest a headerless (SNAP-style)\n"
        "                               edge list: whitespace pairs, #/%\n"
        "                               comments, arbitrary vertex ids\n"
        "  manywalks graph info FILE.mwg [--deep]\n"
        "                               header + degree statistics from the\n"
        "                               mapped file; --deep also validates\n"
        "                               the full adjacency\n"
        "\n"
        "Run experiments on a stored graph with\n"
        "  manywalks run mwg-speedup --graph=F.mwg\n"
        "  manywalks run mwg-starts  --graph=F.mwg\n";
}

/// Pulls a LEADING positional argument (the input path) out of argv so
/// `manywalks graph info FILE.mwg --deep` works alongside `--in=`. Only
/// the first argument can be positional: a bare word later in the line is
/// ambiguous with the `--opt value` form (it would be some option's
/// value), so it is left for ArgParser to handle.
std::vector<char*> take_positional(int argc, char** argv, std::string* in) {
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  int i = 1;
  if (argc > 1 && argv[1][0] != '\0' && argv[1][0] != '-') {
    *in = argv[1];
    i = 2;
  }
  for (; i < argc; ++i) rest.push_back(argv[i]);
  return rest;
}

int run_gen(int argc, char** argv) {
  std::string family_text;
  std::uint64_t n = 1024;
  std::uint64_t seed = 1;
  std::string out;
  ArgParser parser("manywalks graph gen",
                   "synthesize a graph family into an mwg file");
  parser.add_option("family", &family_text,
                    "family name (cycle, grid2d, hypercube, barbell, "
                    "margulis, random-regular, erdos-renyi, ...)")
      .add_option("n", &n, "target vertex count (rounded to the family's "
                           "natural parameterization)")
      .add_option("seed", &seed, "seed for the random families")
      .add_option("out", &out, "output .mwg path");
  if (!parser.parse(argc, argv)) return 1;
  if (family_text.empty() || out.empty()) {
    std::cerr << "manywalks graph gen: --family and --out are required\n";
    return 1;
  }
  const auto family = family_from_name(family_text);
  if (!family.has_value()) {
    std::cerr << "manywalks graph gen: unknown family '" << family_text
              << "'; known families:";
    for (GraphFamily f : all_families()) std::cerr << ' ' << family_name(f);
    std::cerr << '\n';
    return 1;
  }
  try {
    const FamilyInstance instance = make_family_instance(*family, n, seed);
    write_mwg(out, instance.graph);
    std::cout << "wrote " << out << ": " << instance.name << " — n "
              << format_count(instance.graph.num_vertices()) << ", edges "
              << format_count(instance.graph.num_edges()) << ", arcs "
              << format_count(instance.graph.num_arcs()) << ", "
              << format_count(mwg_file_bytes(instance.graph.num_vertices(),
                                             instance.graph.num_arcs()))
              << " bytes (canonical start vertex " << instance.start << ")\n";
  } catch (const std::exception& error) {
    std::cerr << "manywalks graph gen: " << error.what() << '\n';
    return 1;
  }
  return 0;
}

int run_convert(int argc, char** argv) {
  std::string in;
  std::string out;
  bool keep_duplicates = false;
  bool keep_self_loops = false;
  bool largest_component = false;
  std::vector<char*> args = take_positional(argc, argv, &in);
  ArgParser parser("manywalks graph convert",
                   "ingest an external edge list into an mwg file");
  parser.add_option("in", &in, "input edge list (headerless '<u> <v>' "
                               "rows, #/% comments, arbitrary ids)")
      .add_option("out", &out, "output .mwg path")
      .add_flag("keep-duplicates", &keep_duplicates,
                "keep duplicate edges as parallel edges (default: collapse)")
      .add_flag("keep-self-loops", &keep_self_loops,
                "keep self loops (default: drop)")
      .add_flag("largest-component", &largest_component,
                "keep only the largest connected component");
  if (!parser.parse(static_cast<int>(args.size()), args.data())) return 1;
  if (in.empty() || out.empty()) {
    std::cerr << "manywalks graph convert: --in and --out are required\n";
    return 1;
  }
  EdgeListIngestOptions options;
  options.dedup = !keep_duplicates;
  options.drop_self_loops = !keep_self_loops;
  options.largest_component = largest_component;
  try {
    const EdgeListIngestResult result = ingest_edge_list_file(in, options);
    write_mwg(out, result.graph);
    const EdgeListIngestStats& stats = result.stats;
    std::cout << "read " << in << ": " << format_count(stats.lines)
              << " lines, " << format_count(stats.edges_parsed) << " edges ("
              << format_count(stats.comment_lines) << " comments/blank, "
              << format_count(stats.self_loops_dropped)
              << " self loops dropped, "
              << format_count(stats.duplicates_dropped)
              << " duplicates collapsed)\n"
              << "relabeled " << format_count(stats.distinct_ids)
              << " distinct ids -> dense 0.." << format_count(stats.distinct_ids - 1)
              << "; " << format_count(stats.num_components) << " component(s)";
    if (stats.vertices_outside_largest > 0) {
      std::cout << ", " << format_count(stats.vertices_outside_largest)
                << " vertices outside the largest"
                << (largest_component ? " (dropped)" : " (kept)");
    }
    std::cout << "\nwrote " << out << ": n "
              << format_count(result.graph.num_vertices()) << ", edges "
              << format_count(result.graph.num_edges()) << ", deg ∈ ["
              << result.graph.min_degree() << ","
              << result.graph.max_degree() << "], "
              << format_count(mwg_file_bytes(result.graph.num_vertices(),
                                             result.graph.num_arcs()))
              << " bytes\n";
    if (result.graph.min_degree() == 0) {
      std::cout << "note: the graph has isolated vertices; the walk engine "
                   "needs min degree >= 1 (re-run with --largest-component "
                   "or clean the input)\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "manywalks graph convert: " << error.what() << '\n';
    return 1;
  }
  return 0;
}

int run_info(int argc, char** argv) {
  std::string in;
  bool deep = false;
  std::vector<char*> args = take_positional(argc, argv, &in);
  ArgParser parser("manywalks graph info",
                   "print header and degree statistics of an mwg file");
  parser.add_option("in", &in, "input .mwg path (also accepted positionally)")
      .add_flag("deep", &deep,
                "additionally validate the full adjacency (pages in the "
                "whole file)");
  if (!parser.parse(static_cast<int>(args.size()), args.data())) return 1;
  if (in.empty()) {
    std::cerr << "manywalks graph info: missing input file\n";
    return 1;
  }
  try {
    // Shallow loading validates the header and scans only the offsets
    // array; the adjacency region stays untouched on disk.
    const MappedGraph mapped(in, deep ? MappedGraph::Validate::kDeep
                                      : MappedGraph::Validate::kStructure);
    const double mean_degree =
        mapped.num_vertices() > 0
            ? static_cast<double>(mapped.num_arcs()) /
                  static_cast<double>(mapped.num_vertices())
            : 0.0;
    std::cout << "file:        " << in << " (" << format_count(mapped.file_bytes())
              << " bytes; mwg v" << kMwgVersion << ", native byte order)\n"
              << "vertices:    " << format_count(mapped.num_vertices()) << '\n'
              << "edges:       " << format_count(mapped.num_edges()) << " ("
              << format_count(mapped.num_arcs()) << " arcs, "
              << format_count(mapped.num_loops()) << " self loops)\n"
              << "degree:      min " << mapped.min_degree() << ", max "
              << mapped.max_degree() << ", mean " << format_double(mean_degree, 4)
              << (mapped.is_regular() ? " (regular)" : "") << '\n'
              << "layout:      "
              << format_count(mwg_targets_begin(mapped.num_vertices()) -
                              kMwgHeaderBytes)
              << " offset bytes + "
              << format_count(mapped.num_arcs() * sizeof(Vertex))
              << " adjacency bytes, memory-mapped\n"
              << "walkable:    " << (mapped.min_degree() >= 1 ? "yes" : "NO "
                 "(isolated vertices; the walk engine will refuse to bind)")
              << '\n'
              << "validation:  " << (deep ? "deep (full adjacency checked)"
                                          : "structure (header + offsets)")
              << '\n';
  } catch (const std::exception& error) {
    std::cerr << "manywalks graph info: " << error.what() << '\n';
    return 1;
  }
  return 0;
}

}  // namespace

int graph_tool_main(int argc, char** argv) {
  if (argc < 2) {
    print_graph_usage(std::cerr);
    return 1;
  }
  const std::string_view command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    print_graph_usage(std::cout);
    return 0;
  }
  if (command == "gen") return run_gen(argc - 1, argv + 1);
  if (command == "convert") return run_convert(argc - 1, argv + 1);
  if (command == "info") return run_info(argc - 1, argv + 1);
  std::cerr << "manywalks graph: unknown subcommand '" << command << "'\n\n";
  print_graph_usage(std::cerr);
  return 1;
}

}  // namespace manywalks::cli
