#include "cli/graph_tool.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/families.hpp"
#include "storage/ingest.hpp"
#include "storage/mapped_graph.hpp"
#include "storage/mwg.hpp"
#include "util/json.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace manywalks::cli {

namespace {

void print_graph_usage(std::ostream& os) {
  os << "manywalks graph — on-disk graph tooling (mwg binary CSR, v1/v2)\n"
        "\n"
        "Usage:\n"
        "  manywalks graph gen --family=NAME --n=N [--seed=S] --out=F.mwg\n"
        "                               [--block-bits=B] [--stream]\n"
        "                               synthesize a family and store it\n"
        "                               (families: cycle, grid2d, margulis,\n"
        "                               random-regular, ... — see docs).\n"
        "                               --stream writes cycle/complete/\n"
        "                               grid2d/hypercube row by row, so the\n"
        "                               file can exceed RAM\n"
        "  manywalks graph convert --in=EDGES.txt --out=F.mwg\n"
        "                               [--block-bits=B]\n"
        "                               [--keep-duplicates]\n"
        "                               [--keep-self-loops]\n"
        "                               [--largest-component]\n"
        "                               ingest a headerless (SNAP-style)\n"
        "                               edge list: whitespace pairs, #/%\n"
        "                               comments, arbitrary vertex ids.\n"
        "                               An .mwg --in is rewritten instead\n"
        "                               (the v1 -> v2 block-index upgrade)\n"
        "  manywalks graph info FILE.mwg [--deep] [--json]\n"
        "                               header + degree statistics from the\n"
        "                               mapped file; --deep also validates\n"
        "                               the full adjacency; --json emits\n"
        "                               the same facts as JSON\n"
        "\n"
        "--block-bits: 2^B vertices per index block (v2); 0 forces v1, the\n"
        "default -1 auto-sizes (>= 4096 vertices, <= 1024 blocks). The v2\n"
        "index is what `run mwg-speedup --block-walk` schedules from.\n"
        "\n"
        "Run experiments on a stored graph with\n"
        "  manywalks run mwg-speedup --graph=F.mwg\n"
        "  manywalks run mwg-starts  --graph=F.mwg\n";
}

/// Nearest odd integer >= lo — the same rounding make_family_instance
/// applies, so `gen --stream` and plain `gen` produce identical graphs.
std::uint64_t round_odd(std::uint64_t n, std::uint64_t lo) {
  n = std::max(n, lo);
  return (n % 2 == 0) ? n + 1 : n;
}

/// Resolves the --block-bits flag against the vertex count: <0 auto-sizes
/// (the mwg_default_block_bits policy), 0 keeps v1, 1..31 is explicit.
std::uint32_t resolve_block_bits(std::int64_t flag, std::uint64_t n) {
  if (flag < 0) return mwg_default_block_bits(n);
  MW_REQUIRE(flag <= kMwgMaxBlockBits,
             "--block-bits " << flag << " out of range (0.." << kMwgMaxBlockBits
                             << ")");
  return static_cast<std::uint32_t>(flag);
}

std::string format_version(std::uint64_t n, std::uint64_t arcs,
                           std::uint32_t block_bits) {
  if (block_bits == 0) {
    return format_count(mwg_file_bytes(n, arcs)) +
           " bytes (mwg v1, no block index)";
  }
  return format_count(mwg_file_bytes_v2(n, arcs, block_bits)) +
         " bytes (mwg v2, " + format_count(mwg_num_blocks(n, block_bits)) +
         " blocks of 2^" + std::to_string(block_bits) + " vertices)";
}

/// True when `path` starts with the mwg magic — `graph convert` then
/// rewrites the stored graph (v1 -> v2 upgrade or re-blocking) instead of
/// parsing it as an edge list.
bool sniff_mwg(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[sizeof(kMwgMagic)] = {};
  if (!in.read(magic, sizeof(magic))) return false;
  return std::memcmp(magic, kMwgMagic, sizeof(kMwgMagic)) == 0;
}

/// Pulls a LEADING positional argument (the input path) out of argv so
/// `manywalks graph info FILE.mwg --deep` works alongside `--in=`. Only
/// the first argument can be positional: a bare word later in the line is
/// ambiguous with the `--opt value` form (it would be some option's
/// value), so it is left for ArgParser to handle.
std::vector<char*> take_positional(int argc, char** argv, std::string* in) {
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  int i = 1;
  if (argc > 1 && argv[1][0] != '\0' && argv[1][0] != '-') {
    *in = argv[1];
    i = 2;
  }
  for (; i < argc; ++i) rest.push_back(argv[i]);
  return rest;
}

/// The `gen --stream` path: materializes nothing — an implicit substrate
/// streams rows straight into MwgWriter, so the file can be far bigger
/// than an in-core Graph. Returns the (n, arcs) actually written.
std::pair<std::uint64_t, std::uint64_t> stream_family(
    GraphFamily family, std::uint64_t target_n, const std::string& out,
    std::int64_t block_bits_flag, std::uint32_t* block_bits_out) {
  // Parameter rounding mirrors make_family_instance case by case, so a
  // streamed file is byte-identical to `gen` without --stream (the
  // hypercube's rows are sorted by the substrate write_mwg).
  switch (family) {
    case GraphFamily::kCycle: {
      const auto n = static_cast<Vertex>(round_odd(target_n, 5));
      const std::uint32_t bits = resolve_block_bits(block_bits_flag, n);
      write_mwg(out, CycleSubstrate(n), bits);
      *block_bits_out = bits;
      return {n, 2ull * n};
    }
    case GraphFamily::kComplete: {
      const auto n =
          static_cast<Vertex>(std::max<std::uint64_t>(target_n, 4));
      const std::uint32_t bits = resolve_block_bits(block_bits_flag, n);
      write_mwg(out, CompleteSubstrate(n), bits);
      *block_bits_out = bits;
      return {n, static_cast<std::uint64_t>(n) * (n - 1)};
    }
    case GraphFamily::kGrid2d: {
      const auto side = static_cast<Vertex>(round_odd(
          static_cast<std::uint64_t>(
              std::llround(std::sqrt(static_cast<double>(target_n)))),
          3));
      const TorusSubstrate torus(side);
      const std::uint32_t bits =
          resolve_block_bits(block_bits_flag, torus.num_vertices());
      write_mwg(out, torus, bits);
      *block_bits_out = bits;
      return {torus.num_vertices(), 4ull * torus.num_vertices()};
    }
    case GraphFamily::kHypercube: {
      const auto dim = static_cast<unsigned>(std::max<std::int64_t>(
          2, std::llround(std::log2(static_cast<double>(target_n)))));
      const HypercubeSubstrate cube(dim);
      const std::uint32_t bits =
          resolve_block_bits(block_bits_flag, cube.num_vertices());
      write_mwg(out, cube, bits);
      *block_bits_out = bits;
      return {cube.num_vertices(),
              static_cast<std::uint64_t>(cube.num_vertices()) * dim};
    }
    default:
      MW_REQUIRE(false, "--stream supports the implicit families only "
                        "(cycle, complete, grid2d, hypercube); '"
                            << family_name(family)
                            << "' needs an in-core build — drop --stream");
      return {0, 0};  // unreachable: MW_REQUIRE(false) always throws
  }
}

int run_gen(int argc, char** argv) {
  std::string family_text;
  std::uint64_t n = 1024;
  std::uint64_t seed = 1;
  std::string out;
  std::int64_t block_bits = -1;
  bool stream = false;
  ArgParser parser("manywalks graph gen",
                   "synthesize a graph family into an mwg file");
  parser.add_option("family", &family_text,
                    "family name (cycle, grid2d, hypercube, barbell, "
                    "margulis, random-regular, erdos-renyi, ...)")
      .add_option("n", &n, "target vertex count (rounded to the family's "
                           "natural parameterization)")
      .add_option("seed", &seed, "seed for the random families")
      .add_option("out", &out, "output .mwg path")
      .add_option("block-bits", &block_bits,
                  "2^B vertices per v2 index block; 0 = v1, -1 = auto")
      .add_flag("stream", &stream,
                "stream rows from an implicit substrate (cycle, complete, "
                "grid2d, hypercube): the file can exceed RAM");
  if (!parser.parse(argc, argv)) return 1;
  if (family_text.empty() || out.empty()) {
    std::cerr << "manywalks graph gen: --family and --out are required\n";
    return 1;
  }
  const auto family = family_from_name(family_text);
  if (!family.has_value()) {
    std::cerr << "manywalks graph gen: unknown family '" << family_text
              << "'; known families:";
    for (GraphFamily f : all_families()) std::cerr << ' ' << family_name(f);
    std::cerr << '\n';
    return 1;
  }
  try {
    if (stream) {
      std::uint32_t bits = 0;
      const auto [vertices, arcs] =
          stream_family(*family, n, out, block_bits, &bits);
      std::cout << "wrote " << out << ": " << family_text
                << "(n=" << vertices << ") — n " << format_count(vertices)
                << ", arcs " << format_count(arcs) << ", "
                << format_version(vertices, arcs, bits) << ", streamed\n";
      return 0;
    }
    const FamilyInstance instance = make_family_instance(*family, n, seed);
    const std::uint32_t bits =
        resolve_block_bits(block_bits, instance.graph.num_vertices());
    write_mwg(out, instance.graph, bits);
    std::cout << "wrote " << out << ": " << instance.name << " — n "
              << format_count(instance.graph.num_vertices()) << ", edges "
              << format_count(instance.graph.num_edges()) << ", arcs "
              << format_count(instance.graph.num_arcs()) << ", "
              << format_version(instance.graph.num_vertices(),
                                instance.graph.num_arcs(), bits)
              << " (canonical start vertex " << instance.start << ")\n";
  } catch (const std::exception& error) {
    std::cerr << "manywalks graph gen: " << error.what() << '\n';
    return 1;
  }
  return 0;
}

/// The `convert` path for an .mwg input: re-streams the stored rows into
/// a fresh file at the requested block granularity — the v1 -> v2
/// upgrade, a v2 re-blocking, or a v2 -> v1 downgrade (--block-bits=0).
/// Only the O(n) metadata is resident; the adjacency streams through the
/// mapping sequentially.
int rewrite_mwg(const std::string& in, const std::string& out,
                std::int64_t block_bits_flag) {
  const MappedGraph mapped(in);
  const std::uint32_t bits =
      resolve_block_bits(block_bits_flag, mapped.num_vertices());
  MwgWriter writer(out, mapped.num_vertices(), bits);
  const std::span<const std::uint64_t> offsets = mapped.offsets();
  const std::span<const Vertex> targets = mapped.targets();
  for (Vertex v = 0; v < mapped.num_vertices(); ++v) {
    writer.append_row(targets.subspan(
        offsets[v], static_cast<std::size_t>(offsets[v + 1] - offsets[v])));
  }
  writer.finish();
  std::cout << "rewrote " << in << " (mwg v" << mapped.version() << ") -> "
            << out << ": n " << format_count(mapped.num_vertices())
            << ", arcs " << format_count(mapped.num_arcs()) << ", "
            << format_version(mapped.num_vertices(), mapped.num_arcs(), bits)
            << '\n';
  return 0;
}

int run_convert(int argc, char** argv) {
  std::string in;
  std::string out;
  std::int64_t block_bits = -1;
  bool keep_duplicates = false;
  bool keep_self_loops = false;
  bool largest_component = false;
  std::vector<char*> args = take_positional(argc, argv, &in);
  ArgParser parser("manywalks graph convert",
                   "ingest an external edge list into an mwg file");
  parser.add_option("in", &in, "input edge list (headerless '<u> <v>' "
                               "rows, #/% comments, arbitrary ids) or an "
                               ".mwg file to re-block")
      .add_option("out", &out, "output .mwg path")
      .add_option("block-bits", &block_bits,
                  "2^B vertices per v2 index block; 0 = v1, -1 = auto")
      .add_flag("keep-duplicates", &keep_duplicates,
                "keep duplicate edges as parallel edges (default: collapse)")
      .add_flag("keep-self-loops", &keep_self_loops,
                "keep self loops (default: drop)")
      .add_flag("largest-component", &largest_component,
                "keep only the largest connected component");
  if (!parser.parse(static_cast<int>(args.size()), args.data())) return 1;
  if (in.empty() || out.empty()) {
    std::cerr << "manywalks graph convert: --in and --out are required\n";
    return 1;
  }
  if (sniff_mwg(in)) {
    if (keep_duplicates || keep_self_loops || largest_component) {
      std::cerr << "manywalks graph convert: '" << in
                << "' is an .mwg file (block-index rewrite); the edge-list "
                   "cleanup flags do not apply\n";
      return 1;
    }
    try {
      return rewrite_mwg(in, out, block_bits);
    } catch (const std::exception& error) {
      std::cerr << "manywalks graph convert: " << error.what() << '\n';
      return 1;
    }
  }
  EdgeListIngestOptions options;
  options.dedup = !keep_duplicates;
  options.drop_self_loops = !keep_self_loops;
  options.largest_component = largest_component;
  try {
    const EdgeListIngestResult result = ingest_edge_list_file(in, options);
    const std::uint32_t bits =
        resolve_block_bits(block_bits, result.graph.num_vertices());
    write_mwg(out, result.graph, bits);
    const EdgeListIngestStats& stats = result.stats;
    std::cout << "read " << in << ": " << format_count(stats.lines)
              << " lines, " << format_count(stats.edges_parsed) << " edges ("
              << format_count(stats.comment_lines) << " comments/blank, "
              << format_count(stats.self_loops_dropped)
              << " self loops dropped, "
              << format_count(stats.duplicates_dropped)
              << " duplicates collapsed)\n"
              << "relabeled " << format_count(stats.distinct_ids)
              << " distinct ids -> dense 0.." << format_count(stats.distinct_ids - 1)
              << "; " << format_count(stats.num_components) << " component(s)";
    if (stats.vertices_outside_largest > 0) {
      std::cout << ", " << format_count(stats.vertices_outside_largest)
                << " vertices outside the largest"
                << (largest_component ? " (dropped)" : " (kept)");
    }
    std::cout << "\nwrote " << out << ": n "
              << format_count(result.graph.num_vertices()) << ", edges "
              << format_count(result.graph.num_edges()) << ", deg ∈ ["
              << result.graph.min_degree() << ","
              << result.graph.max_degree() << "], "
              << format_version(result.graph.num_vertices(),
                                result.graph.num_arcs(), bits)
              << '\n';
    if (result.graph.min_degree() == 0) {
      std::cout << "note: the graph has isolated vertices; the walk engine "
                   "needs min degree >= 1 (re-run with --largest-component "
                   "or clean the input)\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "manywalks graph convert: " << error.what() << '\n';
    return 1;
  }
  return 0;
}

int run_info(int argc, char** argv) {
  std::string in;
  bool deep = false;
  bool json = false;
  std::vector<char*> args = take_positional(argc, argv, &in);
  ArgParser parser("manywalks graph info",
                   "print header and degree statistics of an mwg file");
  parser.add_option("in", &in, "input .mwg path (also accepted positionally)")
      .add_flag("deep", &deep,
                "additionally validate the full adjacency (pages in the "
                "whole file)")
      .add_flag("json", &json,
                "emit the same facts as a JSON document on stdout");
  if (!parser.parse(static_cast<int>(args.size()), args.data())) return 1;
  if (in.empty()) {
    std::cerr << "manywalks graph info: missing input file\n";
    return 1;
  }
  try {
    // Shallow loading validates the header and scans only the offsets
    // array; the adjacency region stays untouched on disk.
    const MappedGraph mapped(in, deep ? MappedGraph::Validate::kDeep
                                      : MappedGraph::Validate::kStructure);
    const double mean_degree =
        mapped.num_vertices() > 0
            ? static_cast<double>(mapped.num_arcs()) /
                  static_cast<double>(mapped.num_vertices())
            : 0.0;
    std::uint64_t largest_extent = 0;
    if (mapped.has_block_index()) {
      // The largest extent is what an out-of-core scheduler must fit in
      // its budget; worth surfacing next to the block count.
      const std::span<const std::uint64_t> begins = mapped.block_arc_begin();
      for (std::size_t b = 0; b + 1 < begins.size(); ++b) {
        largest_extent = std::max(largest_extent, begins[b + 1] - begins[b]);
      }
      largest_extent *= sizeof(Vertex);
    }
    if (json) {
      JsonWriter writer(/*pretty=*/true);
      writer.begin_object();
      writer.key("file").value_str(in);
      writer.key("file_bytes").value_u64(mapped.file_bytes());
      writer.key("version").value_u64(mapped.version());
      writer.key("vertices").value_u64(mapped.num_vertices());
      writer.key("edges").value_u64(mapped.num_edges());
      writer.key("arcs").value_u64(mapped.num_arcs());
      writer.key("self_loops").value_u64(mapped.num_loops());
      writer.key("degree").begin_object();
      writer.key("min").value_u64(mapped.min_degree());
      writer.key("max").value_u64(mapped.max_degree());
      writer.key("mean").value_num(mean_degree);
      writer.key("regular").value_bool(mapped.is_regular());
      writer.end_object();
      writer.key("layout").begin_object();
      writer.key("offset_bytes")
          .value_u64(mwg_targets_begin(mapped.num_vertices()) -
                     kMwgHeaderBytes);
      writer.key("adjacency_bytes")
          .value_u64(mapped.num_arcs() * sizeof(Vertex));
      writer.end_object();
      if (mapped.has_block_index()) {
        writer.key("blocks").begin_object();
        writer.key("count").value_u64(mapped.num_blocks());
        writer.key("block_bits").value_u64(mapped.block_bits());
        writer.key("largest_extent_bytes").value_u64(largest_extent);
        writer.end_object();
      } else {
        writer.key("blocks").value_null();
      }
      writer.key("walkable").value_bool(mapped.min_degree() >= 1);
      writer.key("validation").value_str(deep ? "deep" : "structure");
      writer.end_object();
      std::cout << writer.take() << '\n';
      return 0;
    }
    std::cout << "file:        " << in << " (" << format_count(mapped.file_bytes())
              << " bytes; mwg v" << mapped.version() << ", native byte order)\n"
              << "vertices:    " << format_count(mapped.num_vertices()) << '\n'
              << "edges:       " << format_count(mapped.num_edges()) << " ("
              << format_count(mapped.num_arcs()) << " arcs, "
              << format_count(mapped.num_loops()) << " self loops)\n"
              << "degree:      min " << mapped.min_degree() << ", max "
              << mapped.max_degree() << ", mean " << format_double(mean_degree, 4)
              << (mapped.is_regular() ? " (regular)" : "") << '\n'
              << "layout:      "
              << format_count(mwg_targets_begin(mapped.num_vertices()) -
                              kMwgHeaderBytes)
              << " offset bytes + "
              << format_count(mapped.num_arcs() * sizeof(Vertex))
              << " adjacency bytes, memory-mapped\n";
    if (mapped.has_block_index()) {
      std::cout << "blocks:      " << format_count(mapped.num_blocks())
                << " of 2^" << mapped.block_bits()
                << " vertices; largest extent " << format_count(largest_extent)
                << " bytes (schedulable via --block-walk)\n";
    } else {
      std::cout << "blocks:      none (v1 — no block index; upgrade with "
                   "`manywalks graph convert --in="
                << in << " --out=...`)\n";
    }
    std::cout << "walkable:    " << (mapped.min_degree() >= 1 ? "yes" : "NO "
                 "(isolated vertices; the walk engine will refuse to bind)")
              << '\n'
              << "validation:  " << (deep ? "deep (full adjacency checked)"
                                          : "structure (header + offsets)")
              << '\n';
  } catch (const std::exception& error) {
    std::cerr << "manywalks graph info: " << error.what() << '\n';
    return 1;
  }
  return 0;
}

}  // namespace

int graph_tool_main(int argc, char** argv) {
  if (argc < 2) {
    print_graph_usage(std::cerr);
    return 1;
  }
  const std::string_view command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    print_graph_usage(std::cout);
    return 0;
  }
  if (command == "gen") return run_gen(argc - 1, argv + 1);
  if (command == "convert") return run_convert(argc - 1, argv + 1);
  if (command == "info") return run_info(argc - 1, argv + 1);
  std::cerr << "manywalks graph: unknown subcommand '" << command << "'\n\n";
  print_graph_usage(std::cerr);
  return 1;
}

}  // namespace manywalks::cli
