// Minimal ordered JSON writer shared by the CLI sinks (the run-manifest
// block), `manywalks graph info --json`, and the observability tests.
//
// Emission order is exactly call order: deterministic, byte-stable output
// is part of the sink contract, so there is no map-backed reordering here.
// Numbers render via std::to_chars (shortest round-trip form), matching the
// experiment sinks; NaN/Inf render as null because JSON has no spelling for
// them.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace manywalks {

/// Escaped JSON string contents (no surrounding quotes).
inline std::string json_escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip decimal representation of a finite double.
inline std::string json_number_repr(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  MW_REQUIRE(ec == std::errc{}, "double formatting failed");
  return std::string(buffer, ptr);
}

class JsonWriter {
 public:
  /// pretty = true indents nested containers by two spaces per level.
  explicit JsonWriter(bool pretty = false) : pretty_(pretty) {}

  JsonWriter& begin_object() {
    separator();
    out_ += '{';
    push('}');
    return *this;
  }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() {
    separator();
    out_ += '[';
    push(']');
    return *this;
  }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view name) {
    separator();
    out_ += '"';
    out_ += json_escaped(name);
    out_ += pretty_ ? "\": " : "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value_str(std::string_view text) {
    separator();
    out_ += '"';
    out_ += json_escaped(text);
    out_ += '"';
    return *this;
  }
  JsonWriter& value_u64(std::uint64_t value) {
    separator();
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& value_i64(std::int64_t value) {
    separator();
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& value_num(double value) {
    separator();
    out_ += json_number_repr(value);
    return *this;
  }
  JsonWriter& value_bool(bool value) {
    separator();
    out_ += value ? "true" : "false";
    return *this;
  }
  JsonWriter& value_null() {
    separator();
    out_ += "null";
    return *this;
  }
  /// Splices a pre-rendered JSON fragment as one value.
  JsonWriter& value_raw(std::string_view fragment) {
    separator();
    out_ += fragment;
    return *this;
  }

  /// The finished document. Requires every container to be closed.
  std::string take() {
    MW_REQUIRE(stack_.empty(), "JsonWriter: unclosed container");
    std::string out = std::move(out_);
    out_.clear();
    return out;
  }

 private:
  void push(char closer) {
    stack_.push_back(closer);
    first_.push_back(true);
  }
  JsonWriter& close(char closer) {
    MW_REQUIRE(!stack_.empty() && stack_.back() == closer,
               "JsonWriter: mismatched container close");
    const bool was_empty = first_.back();
    stack_.pop_back();
    first_.pop_back();
    if (pretty_ && !was_empty) newline_indent();
    out_ += closer;
    return *this;
  }
  /// Comma/newline bookkeeping before any element (key or value).
  void separator() {
    if (pending_value_) {  // the value right after a key: stay on the line
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (!first_.back()) out_ += ',';
    first_.back() = false;
    if (pretty_) newline_indent();
  }
  void newline_indent() {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }

  std::string out_;
  std::vector<char> stack_;   // expected closers, innermost last
  std::vector<bool> first_;   // per container: no element emitted yet
  bool pretty_ = false;
  bool pending_value_ = false;
};

}  // namespace manywalks
