// A small fixed-size thread pool plus a blocking parallel_for.
//
// The Monte-Carlo harness schedules independent trials; determinism is
// achieved at a higher level (per-trial seeding + index-ordered reduction),
// so the pool itself can hand out work dynamically for load balance.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace manywalks {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. Tasks should not throw; if
  /// one does, the worker survives and the first exception is captured and
  /// rethrown from the next wait_idle() instead of terminating the process.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle. Rethrows the
  /// first exception that escaped a submitted task since the last wait_idle()
  /// (later ones are dropped). An exception still pending at destruction is
  /// discarded — the destructor only drains and joins.
  void wait_idle();

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Tasks queued but not yet claimed by a worker. Mutex-guarded sample for
  /// the observability layer's queue-depth gauge — an instantaneous reading,
  /// already stale by the time the caller sees it.
  std::size_t queue_depth() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::uint64_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_task_error_;
};

/// Runs `body(i)` for every i in [begin, end) across the pool, blocking the
/// caller until all iterations finish. Work is pulled dynamically in chunks
/// of `grain` for load balance; exceptions from the body propagate to the
/// caller (the first one observed). Never submits more helper tasks than
/// there are grain-sized chunks beyond the caller's own share, so a short
/// range does not flood the queue with tasks that wake up to no work.
void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  const std::function<void(std::uint64_t)>& body,
                  std::uint64_t grain = 1);

/// Deterministic static partition: runs `body(i)` for every i in
/// [0, count), cutting the range into at most pool.size()+1 contiguous
/// chunks, each executed in index order by one fixed executor (the caller
/// runs chunk 0). Unlike parallel_for there is no dynamic work stealing:
/// which indices share an executor is a pure function of (count,
/// pool.size()), which is what the sharded walk engine needs to pin one
/// long-lived worker per lane shard. Exceptions from the body propagate to
/// the caller (the first one in chunk order).
void parallel_for_static(ThreadPool& pool, std::uint64_t count,
                         const std::function<void(std::uint64_t)>& body);

/// A sense-reversing spin barrier for a fixed set of participants.
///
/// The sharded walk engine synchronizes its worker team once per walk
/// round; a condition-variable rendezvous costs ~10µs per round, which
/// would swallow the speed-up on the ~µs rounds the strong-scaling gate
/// measures. Spinning participants re-check an acquire-loaded generation
/// counter (yielding periodically), so a round barrier costs well under a
/// microsecond when the team is running.
///
/// poison() aborts the protocol: every current and future arrive_and_wait()
/// returns false without waiting, so a worker that failed can release the
/// rest of the team instead of deadlocking it. A poisoned barrier stays
/// poisoned.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned participants);

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all participants arrive (or the barrier is poisoned).
  /// Returns true on a normal rendezvous, false once poisoned. Establishes
  /// acquire/release ordering: writes made by any participant before
  /// arriving are visible to every participant after the barrier.
  bool arrive_and_wait() noexcept;

  /// Releases all waiters, now and forever, with a false return.
  void poison() noexcept;

  unsigned participants() const noexcept { return participants_; }

 private:
  const unsigned participants_;
  std::atomic<unsigned> arrived_{0};
  std::atomic<std::uint32_t> generation_{0};
  std::atomic<bool> poisoned_{false};
};

/// Number of worker threads to use by default (hardware concurrency,
/// clamped to at least 1).
unsigned default_thread_count() noexcept;

}  // namespace manywalks
