// A small fixed-size thread pool plus a blocking parallel_for.
//
// The Monte-Carlo harness schedules independent trials; determinism is
// achieved at a higher level (per-trial seeding + index-ordered reduction),
// so the pool itself can hand out work dynamically for load balance.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace manywalks {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. Tasks should not throw; if
  /// one does, the worker survives and the first exception is captured and
  /// rethrown from the next wait_idle() instead of terminating the process.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle. Rethrows the
  /// first exception that escaped a submitted task since the last wait_idle()
  /// (later ones are dropped). An exception still pending at destruction is
  /// discarded — the destructor only drains and joins.
  void wait_idle();

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::uint64_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_task_error_;
};

/// Runs `body(i)` for every i in [begin, end) across the pool, blocking the
/// caller until all iterations finish. Work is pulled dynamically in chunks
/// of `grain` for load balance; exceptions from the body propagate to the
/// caller (the first one observed).
void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  const std::function<void(std::uint64_t)>& body,
                  std::uint64_t grain = 1);

/// Number of worker threads to use by default (hardware concurrency,
/// clamped to at least 1).
unsigned default_thread_count() noexcept;

}  // namespace manywalks
