#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "util/check.hpp"

namespace manywalks {

unsigned default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = num_threads == 0 ? default_thread_count() : num_threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MW_REQUIRE(task != nullptr, "null task submitted to ThreadPool");
  {
    std::lock_guard lock(mutex_);
    MW_REQUIRE(!shutting_down_, "submit after ThreadPool shutdown");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_task_error_) {
    std::exception_ptr error = std::exchange(first_task_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_task_error_) first_task_error_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  const std::function<void(std::uint64_t)>& body,
                  std::uint64_t grain) {
  MW_REQUIRE(grain >= 1, "parallel_for grain must be >= 1");
  if (begin >= end) return;

  // Shared cursor: workers grab [next, next+grain) slices until exhausted.
  auto next = std::make_shared<std::atomic<std::uint64_t>>(begin);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  auto drain = [next, end, grain, &body, first_error, error, error_mutex] {
    for (;;) {
      const std::uint64_t lo = next->fetch_add(grain);
      if (lo >= end) return;
      const std::uint64_t hi = std::min(end, lo + grain);
      for (std::uint64_t i = lo; i < hi; ++i) {
        if (first_error->load(std::memory_order_relaxed)) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard lock(*error_mutex);
          if (!first_error->exchange(true)) *error = std::current_exception();
          return;
        }
      }
    }
  };

  // The calling thread participates too, so a pool of size 1 still makes
  // progress even if all workers are busy with unrelated tasks. Helpers are
  // capped at chunks-1: with C grain-sized chunks there are at most C
  // executors worth of work, and the caller claims one share, so submitting
  // more tasks than that only queues wakeups that find the cursor drained.
  const std::uint64_t chunks = (end - begin + grain - 1) / grain;
  const unsigned helpers = static_cast<unsigned>(
      std::min<std::uint64_t>(pool.size(), chunks - 1));
  unsigned done = 0;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (unsigned t = 0; t < helpers; ++t) {
    pool.submit([&, drain] {
      drain();
      // Notify while still holding the lock: done_cv and done_mutex live on
      // the caller's stack, and the caller can only observe done == helpers
      // (and destroy them) after we release the mutex — notifying after the
      // unlock would race a straggler's notify_one against the destruction.
      std::lock_guard lock(done_mutex);
      ++done;
      done_cv.notify_one();
    });
  }
  drain();
  {
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return done == helpers; });
  }
  if (first_error->load()) std::rethrow_exception(*error);
}

void parallel_for_static(ThreadPool& pool, std::uint64_t count,
                         const std::function<void(std::uint64_t)>& body) {
  if (count == 0) return;
  // P executors (caller + helpers); executor p owns the contiguous chunk
  // [p*count/P, (p+1)*count/P) — a pure function of (count, pool.size()).
  const auto executors =
      static_cast<std::uint64_t>(std::min<std::uint64_t>(pool.size() + 1, count));
  const auto chunk_begin = [count, executors](std::uint64_t p) {
    return p * count / executors;
  };

  std::vector<std::exception_ptr> errors(executors);
  const auto run_chunk = [&body, &errors, chunk_begin](std::uint64_t p,
                                                       std::uint64_t end) {
    try {
      for (std::uint64_t i = chunk_begin(p); i < end; ++i) body(i);
    } catch (...) {
      errors[p] = std::current_exception();
    }
  };

  unsigned done = 0;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (std::uint64_t p = 1; p < executors; ++p) {
    pool.submit([&run_chunk, &done, &done_mutex, &done_cv, chunk_begin, p] {
      run_chunk(p, chunk_begin(p + 1));
      // Notify under the lock: the caller's stack owns done/done_cv (see
      // parallel_for for the destruction race this avoids).
      std::lock_guard lock(done_mutex);
      ++done;
      done_cv.notify_one();
    });
  }
  run_chunk(0, chunk_begin(1));
  {
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return done == executors - 1; });
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

SpinBarrier::SpinBarrier(unsigned participants) : participants_(participants) {
  MW_REQUIRE(participants >= 1, "SpinBarrier needs at least one participant");
}

bool SpinBarrier::arrive_and_wait() noexcept {
  if (poisoned_.load(std::memory_order_acquire)) return false;
  const std::uint32_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
    // Last arrival: reset the count for the next generation, then flip the
    // generation to release everyone spinning on it.
    arrived_.store(0, std::memory_order_relaxed);
    generation_.store(gen + 1, std::memory_order_release);
    return !poisoned_.load(std::memory_order_acquire);
  }
  unsigned spins = 0;
  while (generation_.load(std::memory_order_acquire) == gen) {
    if (poisoned_.load(std::memory_order_acquire)) return false;
    if (++spins >= 1024) {
      spins = 0;
      std::this_thread::yield();
    }
  }
  return !poisoned_.load(std::memory_order_acquire);
}

void SpinBarrier::poison() noexcept {
  poisoned_.store(true, std::memory_order_release);
}

}  // namespace manywalks
