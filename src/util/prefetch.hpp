// Portable software-prefetch shim for the walk kernels.
//
// The lane-mode round loop (walk/engine.hpp) is a classic pointer-chasing
// workload: CSR offset row -> neighbor word -> visit-tracker word, with no
// spatial locality once the graph outgrows the LLC. With per-lane RNG
// streams the lanes are independent, so the kernel stages each block of
// lanes and issues prefetches for the next stage's cache lines while the
// current stage computes — that is where the engine's memory-level
// parallelism comes from, and this header is the one place the compiler
// intrinsic is spelled.
#pragma once

namespace manywalks {

/// Hints the prefetcher to pull `addr`'s line toward L1 for a read. A
/// no-op on compilers without __builtin_prefetch; never faults (the
/// intrinsic ignores invalid addresses), so callers may pass one-past-end
/// style speculative addresses.
inline void mw_prefetch(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace manywalks
