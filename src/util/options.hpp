// Minimal command-line option parsing for the bench/example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag`. Unknown
// options are an error; `--help` prints usage and reports "do not run".
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace manywalks {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers a boolean flag (presence sets *target = true).
  ArgParser& add_flag(std::string name, bool* target, std::string help);

  /// Registers a flag with an optional inline value: `--name` sets
  /// *present and leaves *value untouched (caller's default); `--name=V`
  /// sets both. The two-token `--name V` form is NOT accepted — the next
  /// token is an unrelated argument (that ambiguity is why plain options
  /// can't be optional).
  ArgParser& add_optional_value_flag(std::string name, bool* present,
                                     std::string* value, std::string help);

  /// Registers typed options; *target keeps its prior value as the default
  /// shown in --help.
  ArgParser& add_option(std::string name, std::int64_t* target, std::string help);
  ArgParser& add_option(std::string name, std::uint64_t* target, std::string help);
  ArgParser& add_option(std::string name, unsigned* target, std::string help);
  ArgParser& add_option(std::string name, double* target, std::string help);
  ArgParser& add_option(std::string name, std::string* target, std::string help);

  /// Parses argv. Returns true if the program should proceed; false if
  /// --help was requested or a parse error occurred (message on stderr).
  bool parse(int argc, char** argv);

  std::string usage() const;

 private:
  struct OptionalValue {
    bool* present;
    std::string* value;
  };
  using Target = std::variant<bool*, std::int64_t*, std::uint64_t*, unsigned*,
                              double*, std::string*, OptionalValue>;
  struct Spec {
    std::string name;  // without leading dashes
    Target target;
    std::string help;
    std::string default_repr;
  };

  const Spec* find(const std::string& name) const;
  static std::string default_repr(const Target& target);

  std::string program_;
  std::string description_;
  std::vector<Spec> specs_;
};

/// Parses a human byte size: a non-negative integer with an optional
/// binary suffix K/M/G/T (case-insensitive, optional trailing B), e.g.
/// "4096", "64K", "2g", "512MB". Throws std::invalid_argument on
/// anything else — the `--mem-budget` flag's parser.
std::uint64_t parse_byte_size(const std::string& text);

}  // namespace manywalks
