#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace manywalks {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::std_error() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double ConfidenceInterval::relative_half_width() const noexcept {
  if (mean == 0.0) {
    return half_width == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return half_width / std::abs(mean);
}

double normal_quantile(double p) {
  MW_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1), got " << p);
  // Acklam's piecewise rational approximation to the inverse normal CDF.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  return x;
}

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Continued fraction for the regularized incomplete beta function
/// (modified Lentz; the classic betacf of Numerical Recipes). Converges in
/// a handful of iterations for x < (a+1)/(a+b+2).
double incomplete_beta_cf(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-15;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double dm = static_cast<double>(m);
    const double m2 = 2.0 * dm;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

/// Regularized incomplete beta I_x(a, b), accurate to ~1e-14.
double regularized_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * incomplete_beta_cf(a, b, x) / a;
  }
  return 1.0 - front * incomplete_beta_cf(b, a, 1.0 - x) / b;
}

double student_t_pdf(double t, double v) {
  return std::exp(std::lgamma((v + 1.0) / 2.0) - std::lgamma(v / 2.0)) /
         std::sqrt(v * kPi) * std::pow(1.0 + t * t / v, -(v + 1.0) / 2.0);
}

}  // namespace

double student_t_cdf(double t, std::uint64_t dof) {
  MW_REQUIRE(dof >= 1, "student_t_cdf requires dof >= 1");
  const double v = static_cast<double>(dof);
  const double x = v / (v + t * t);
  const double tail = 0.5 * regularized_incomplete_beta(v / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double student_t_quantile(double p, std::uint64_t dof) {
  MW_REQUIRE(p > 0.0 && p < 1.0, "student_t_quantile requires p in (0,1)");
  MW_REQUIRE(dof >= 1, "student_t_quantile requires dof >= 1");
  if (dof == 1) {
    // Cauchy quantile.
    return std::tan(kPi * (p - 0.5));
  }
  if (dof == 2) {
    const double a = 2.0 * p - 1.0;
    return a * std::sqrt(2.0 / (1.0 - a * a));
  }
  // Starting point: the Cornish–Fisher style expansion (Abramowitz &
  // Stegun 26.7.5). It is off by up to ~2% at dof 3–10, so it is only the
  // seed for Newton on the exact CDF below.
  const double z = normal_quantile(p);
  const double v = static_cast<double>(dof);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  const double z9 = z7 * z * z;
  double t = z;
  t += (z3 + z) / (4.0 * v);
  t += (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * v * v);
  t += (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * v * v * v);
  t += (79.0 * z9 + 776.0 * z7 + 1482.0 * z5 - 1920.0 * z3 - 945.0 * z) /
       (92160.0 * v * v * v * v);

  // Newton polish against the exact CDF: the CDF is smooth and monotone
  // and the seed is within a few percent, so this converges to ~1e-12 in
  // 2–4 iterations.
  for (int iteration = 0; iteration < 32; ++iteration) {
    const double error = student_t_cdf(t, dof) - p;
    if (std::abs(error) < 1e-14) break;
    const double density = student_t_pdf(t, v);
    if (!(density > 0.0)) break;
    const double step = error / density;
    t -= step;
    if (std::abs(step) < 1e-12 * std::max(1.0, std::abs(t))) break;
  }
  return t;
}

ConfidenceInterval mean_confidence_interval(const RunningStats& stats,
                                            double confidence) {
  MW_REQUIRE(confidence > 0.0 && confidence < 1.0,
             "confidence must be in (0,1)");
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  ci.confidence = confidence;
  ci.count = stats.count();
  if (stats.count() < 2) {
    ci.half_width = std::numeric_limits<double>::infinity();
    if (stats.count() == 0) ci.half_width = 0.0;
    return ci;
  }
  const double p = 0.5 + confidence / 2.0;
  const std::uint64_t dof = stats.count() - 1;
  const double q = dof >= 200 ? normal_quantile(p) : student_t_quantile(p, dof);
  ci.half_width = q * stats.std_error();
  return ci;
}

double quantile_sorted(std::span<const double> sorted, double p) {
  MW_REQUIRE(!sorted.empty(), "quantile of empty sample");
  MW_REQUIRE(p >= 0.0 && p <= 1.0, "quantile probability must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

std::vector<double> quantiles(std::vector<double> sample,
                              std::span<const double> probs) {
  std::sort(sample.begin(), sample.end());
  std::vector<double> out;
  out.reserve(probs.size());
  for (double p : probs) out.push_back(quantile_sorted(sample, p));
  return out;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  MW_REQUIRE(x.size() == y.size(), "linear_fit needs matching sizes");
  MW_REQUIRE(x.size() >= 2, "linear_fit needs at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  MW_REQUIRE(sxx > 0.0, "linear_fit needs non-constant x");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy == 0.0) {
    fit.r_squared = 1.0;  // constant y fitted exactly by slope ~ 0
  } else {
    fit.r_squared = (sxy * sxy) / (sxx * syy);
  }
  return fit;
}

}  // namespace manywalks
