#include "util/options.hpp"

#include <charconv>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace manywalks {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

std::string ArgParser::default_repr(const Target& target) {
  return std::visit(
      [](auto&& t) -> std::string {
        using T = std::decay_t<decltype(t)>;
        if constexpr (std::is_same_v<T, OptionalValue>) {
          return *t.value;
        } else {
          using P = std::remove_pointer_t<T>;
          if constexpr (std::is_same_v<P, bool>) {
            return *t ? "true" : "false";
          } else if constexpr (std::is_same_v<P, std::string>) {
            return *t;
          } else {
            std::ostringstream os;
            os << *t;
            return os.str();
          }
        }
      },
      target);
}

ArgParser& ArgParser::add_flag(std::string name, bool* target, std::string help) {
  MW_REQUIRE(target != nullptr, "null flag target");
  MW_REQUIRE(find(name) == nullptr, "duplicate option --" << name);
  specs_.push_back({std::move(name), target, std::move(help), default_repr(target)});
  return *this;
}

ArgParser& ArgParser::add_optional_value_flag(std::string name, bool* present,
                                              std::string* value,
                                              std::string help) {
  MW_REQUIRE(present != nullptr && value != nullptr,
             "null optional-value flag target");
  MW_REQUIRE(find(name) == nullptr, "duplicate option --" << name);
  const OptionalValue target{present, value};
  specs_.push_back(
      {std::move(name), target, std::move(help), default_repr(target)});
  return *this;
}

namespace {
template <typename T>
bool parse_number(const std::string& text, T* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  if constexpr (std::is_floating_point_v<T>) {
    // std::from_chars for double is available in GCC 12.
    auto [ptr, ec] = std::from_chars(begin, end, *out);
    return ec == std::errc{} && ptr == end;
  } else {
    auto [ptr, ec] = std::from_chars(begin, end, *out);
    return ec == std::errc{} && ptr == end;
  }
}
}  // namespace

#define MANYWALKS_DEFINE_ADD_OPTION(TYPE)                                      \
  ArgParser& ArgParser::add_option(std::string name, TYPE* target,             \
                                   std::string help) {                         \
    MW_REQUIRE(target != nullptr, "null option target");                       \
    MW_REQUIRE(find(name) == nullptr, "duplicate option --" << name);          \
    specs_.push_back(                                                          \
        {std::move(name), target, std::move(help), default_repr(target)});     \
    return *this;                                                              \
  }

MANYWALKS_DEFINE_ADD_OPTION(std::int64_t)
MANYWALKS_DEFINE_ADD_OPTION(std::uint64_t)
MANYWALKS_DEFINE_ADD_OPTION(unsigned)
MANYWALKS_DEFINE_ADD_OPTION(double)
MANYWALKS_DEFINE_ADD_OPTION(std::string)
#undef MANYWALKS_DEFINE_ADD_OPTION

const ArgParser::Spec* ArgParser::find(const std::string& name) const {
  for (const Spec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const Spec& spec : specs_) {
    os << "  --" << spec.name;
    if (std::holds_alternative<OptionalValue>(spec.target)) {
      os << "[=value]";
    } else if (!std::holds_alternative<bool*>(spec.target)) {
      os << " <value>";
    }
    os << "\n      " << spec.help << " (default: " << spec.default_repr << ")\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

bool ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << program_ << ": unexpected positional argument '" << arg
                << "'\n"
                << usage();
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const Spec* spec = find(name);
    if (spec == nullptr) {
      std::cerr << program_ << ": unknown option --" << name << "\n" << usage();
      return false;
    }
    if (std::holds_alternative<bool*>(spec->target)) {
      if (has_value) {
        std::cerr << program_ << ": flag --" << name << " takes no value\n";
        return false;
      }
      *std::get<bool*>(spec->target) = true;
      continue;
    }
    if (const auto* optional = std::get_if<OptionalValue>(&spec->target)) {
      *optional->present = true;
      if (has_value) *optional->value = value;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::cerr << program_ << ": option --" << name << " needs a value\n";
        return false;
      }
      value = argv[++i];
    }
    const bool ok = std::visit(
        [&value](auto&& t) -> bool {
          using T = std::decay_t<decltype(t)>;
          if constexpr (std::is_same_v<T, OptionalValue> ||
                        std::is_same_v<T, bool*>) {
            return false;  // handled above
          } else if constexpr (std::is_same_v<T, std::string*>) {
            *t = value;
            return true;
          } else {
            return parse_number(value, t);
          }
        },
        spec->target);
    if (!ok) {
      std::cerr << program_ << ": bad value '" << value << "' for --" << name
                << "\n";
      return false;
    }
  }
  return true;
}

std::uint64_t parse_byte_size(const std::string& text) {
  MW_REQUIRE(!text.empty(), "empty byte size");
  std::size_t pos = 0;
  std::uint64_t value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[pos] - '0');
    MW_REQUIRE(value <= (UINT64_MAX - digit) / 10,
               "byte size '" << text << "' overflows");
    value = value * 10 + digit;
    ++pos;
  }
  MW_REQUIRE(pos > 0, "byte size '" << text << "' has no digits");
  std::uint32_t shift = 0;
  if (pos < text.size()) {
    switch (text[pos]) {
      case 'k': case 'K': shift = 10; break;
      case 'm': case 'M': shift = 20; break;
      case 'g': case 'G': shift = 30; break;
      case 't': case 'T': shift = 40; break;
      default:
        MW_REQUIRE(false, "byte size '" << text
                                        << "': unknown suffix '" << text[pos]
                                        << "' (use K/M/G/T)");
    }
    ++pos;
    if (pos < text.size() && (text[pos] == 'b' || text[pos] == 'B')) ++pos;
  }
  MW_REQUIRE(pos == text.size(),
             "byte size '" << text << "' has trailing characters");
  MW_REQUIRE(shift == 0 || value <= (UINT64_MAX >> shift),
             "byte size '" << text << "' overflows");
  return value << shift;
}

}  // namespace manywalks
