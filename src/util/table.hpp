// Fixed-width text tables for the experiment harnesses — every bench binary
// prints paper-style rows through this formatter.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

namespace manywalks {

/// Formats a double with `sig` significant digits, switching to scientific
/// notation outside [1e-4, 1e7). "nan"/"inf" render as-is.
std::string format_double(double value, int sig = 4);

/// Formats a nonnegative integer with thousands separators (1234567 -> "1,234,567").
std::string format_count(std::uint64_t value);

/// Formats "mean ± half" compactly, e.g. "1234 ± 56".
std::string format_mean_pm(double mean, double half_width, int sig = 4);

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Declares the next column; call once per column before adding rows.
  TextTable& add_column(std::string header, Align align = Align::kRight);

  /// Starts a new row. Cells are added with `cell`.
  TextTable& begin_row();

  /// Appends one cell to the current row (strings verbatim, numbers via the
  /// formatters above).
  TextTable& cell(std::string text);
  TextTable& cell(const char* text) { return cell(std::string(text)); }
  TextTable& cell(double value) { return cell(format_double(value)); }
  TextTable& cell(std::uint64_t value) { return cell(format_count(value)); }
  TextTable& cell(std::int64_t value);
  TextTable& cell(int value) { return cell(static_cast<std::int64_t>(value)); }
  TextTable& cell(unsigned value) { return cell(static_cast<std::uint64_t>(value)); }

  /// Inserts a horizontal rule before the next row.
  TextTable& rule();

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_columns() const noexcept { return headers_.size(); }

  /// Renders the table (title, header, rules, rows).
  std::string str() const;
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace manywalks
