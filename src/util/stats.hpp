// Streaming statistics and confidence intervals for Monte-Carlo estimates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace manywalks {

/// Numerically stable streaming mean/variance (Welford), mergeable so that
/// per-thread partial aggregates can be combined deterministically.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator into this one (Chan's parallel update).
  void merge(const RunningStats& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two observations.
  double std_error() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }
  bool empty() const noexcept { return count_ == 0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A symmetric confidence interval for a mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double confidence = 0.95;
  std::uint64_t count = 0;

  double lo() const noexcept { return mean - half_width; }
  double hi() const noexcept { return mean + half_width; }
  /// half_width / |mean|; infinity for mean == 0 with positive half width.
  double relative_half_width() const noexcept;
};

/// Quantile of the standard normal distribution (Acklam's rational
/// approximation; |error| < 1.2e-9). Requires 0 < p < 1.
double normal_quantile(double p);

/// CDF of Student's t distribution with `dof` degrees of freedom, computed
/// from the regularized incomplete beta function (accurate to ~1e-14).
double student_t_cdf(double t, std::uint64_t dof);

/// Quantile of Student's t distribution with `dof` degrees of freedom.
/// Exact closed forms for dof in {1, 2}; otherwise the A&S 26.7.5
/// expansion is used only as the starting point and polished by Newton
/// iteration on the exact CDF to ~1e-12. (The raw expansion is off by
/// up to ~2% at dof 3–10 — and dof 7 confidence intervals are routine,
/// because preset_mc floors min_trials at 8.)
double student_t_quantile(double p, std::uint64_t dof);

/// Two-sided CI for the mean using Student's t (normal for count >= 200).
ConfidenceInterval mean_confidence_interval(const RunningStats& stats,
                                            double confidence = 0.95);

/// Empirical quantile with linear interpolation (type-7, as in R/NumPy).
/// `sorted` must be ascending and non-empty; `p` in [0, 1].
double quantile_sorted(std::span<const double> sorted, double p);

/// Convenience: copies, sorts, and evaluates several quantiles at once.
std::vector<double> quantiles(std::vector<double> sample,
                              std::span<const double> probs);

/// Ordinary least squares y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1] (1 when x has no variance and
  /// y is constant; 0 when y has variance but the fit explains none).
  double r_squared = 0.0;
};

/// Fits a least-squares line through (x[i], y[i]); needs >= 2 points and
/// non-constant x.
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace manywalks
