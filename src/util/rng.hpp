// Pseudo-random number generation for Monte-Carlo walk simulation.
//
// The inner loop of every experiment in this library is "pick a uniformly
// random neighbor", so the generator must be fast, high quality, and support
// cheap independent streams so that trial i of a Monte-Carlo estimate is
// reproducible regardless of how trials are scheduled across threads.
//
// We implement:
//   * SplitMix64  — tiny 64-bit generator, used for seeding and hashing.
//   * Xoshiro256PlusPlus — the main generator (Blackman & Vigna), with
//     jump() / long_jump() for 2^128 / 2^192 step stream separation.
//   * Lemire's nearly-divisionless bounded sampling (uniform_below).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <limits>

namespace manywalks {

/// SplitMix64: statistically strong 64-bit mixer. Primarily used to expand a
/// single user seed into full generator state and to derive per-trial seeds.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Returns the next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Stateless one-shot mix of a 64-bit value; handy for combining seeds
/// (e.g. `mix64(master_seed ^ trial_index)`).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  return SplitMix64(x).next();
}

/// xoshiro256++ (Blackman & Vigna, 2019). Period 2^256 - 1. This is the
/// workhorse generator for all walk simulation.
class Xoshiro256PlusPlus {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors.
  explicit constexpr Xoshiro256PlusPlus(std::uint64_t seed = 0x9fe72810d2f4a1bcULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = std::rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Advances the state by 2^128 steps; 2^128 non-overlapping subsequences.
  constexpr void jump() noexcept {
    apply_jump({0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL});
  }

  /// Advances the state by 2^192 steps; for top-level stream separation.
  constexpr void long_jump() noexcept {
    apply_jump({0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                0x77710069854ee241ULL, 0x39109bb02acbe635ULL});
  }

  /// Uniform value in [0, bound), bound >= 1. Lemire's nearly-divisionless
  /// method: one multiply in the common case, unbiased.
  std::uint32_t uniform_below(std::uint32_t bound) noexcept {
    std::uint64_t x = next() & 0xffffffffULL;
    std::uint64_t m = x * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        x = next() & 0xffffffffULL;
        m = x * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform 64-bit value in [0, bound).
  std::uint64_t uniform_below64(std::uint64_t bound) noexcept {
    // Bitmask-with-rejection; branch-light and unbiased.
    const int bits = static_cast<int>(std::bit_width(bound - 1));
    const std::uint64_t mask =
        bits >= 64 ? ~0ULL : ((std::uint64_t{1} << bits) - 1);
    std::uint64_t v = next() & mask;
    while (v >= bound) v = next() & mask;
    return v;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) sample.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exposes raw state for tests.
  constexpr const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }

 private:
  constexpr void apply_jump(const std::array<std::uint64_t, 4>& table) noexcept {
    std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
    for (std::uint64_t word : table) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        next();
      }
    }
    state_ = acc;
  }

  std::array<std::uint64_t, 4> state_{};
};

/// The library-wide default generator type.
using Rng = Xoshiro256PlusPlus;

/// Derives a reproducible per-trial generator: independent of thread count
/// and scheduling order, trial `index` under `master_seed` always sees the
/// same stream.
inline Rng make_trial_rng(std::uint64_t master_seed, std::uint64_t index) noexcept {
  // Mix the pair (seed, index) into a single 64-bit seed. The golden-ratio
  // constant decorrelates consecutive indices before the SplitMix64 expander.
  return Rng(mix64(master_seed ^ (index * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL)));
}

}  // namespace manywalks
