// Pseudo-random number generation for Monte-Carlo walk simulation.
//
// The inner loop of every experiment in this library is "pick a uniformly
// random neighbor", so the generator must be fast, high quality, and support
// cheap independent streams so that trial i of a Monte-Carlo estimate is
// reproducible regardless of how trials are scheduled across threads.
//
// We implement:
//   * SplitMix64  — tiny 64-bit generator, used for seeding and hashing.
//   * Xoshiro256PlusPlus — the main generator (Blackman & Vigna), with
//     jump() / long_jump() for 2^128 / 2^192 step stream separation.
//   * Lemire's nearly-divisionless bounded sampling (uniform_below, plus
//     the full-word uniform_below_wide used by lane-mode walk kernels).
//   * LaneRngs — a bank of per-lane streams derived from one master seed,
//     the basis of the walk engine's lane sampling mode (determinism
//     contract v2, docs/ARCHITECTURE.md).
//
// This header is the only place allowed to construct raw generators: the
// manywalks-raw-rng lint rule (tools/lint/manywalks_lint.py) rejects
// std::mt19937 / rand() / std::random_device everywhere else, so all
// randomness flows through these seeded, stream-separable types.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <vector>

namespace manywalks {

/// SplitMix64: statistically strong 64-bit mixer. Primarily used to expand a
/// single user seed into full generator state and to derive per-trial seeds.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Returns the next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Stateless one-shot mix of a 64-bit value; handy for combining seeds
/// (e.g. `mix64(master_seed ^ trial_index)`).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  return SplitMix64(x).next();
}

/// xoshiro256++ (Blackman & Vigna, 2019). Period 2^256 - 1. This is the
/// workhorse generator for all walk simulation.
class Xoshiro256PlusPlus {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors.
  explicit constexpr Xoshiro256PlusPlus(std::uint64_t seed = 0x9fe72810d2f4a1bcULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = std::rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Advances the state by 2^128 steps; 2^128 non-overlapping subsequences.
  constexpr void jump() noexcept {
    apply_jump({0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL});
  }

  /// Advances the state by 2^192 steps; for top-level stream separation.
  constexpr void long_jump() noexcept {
    apply_jump({0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                0x77710069854ee241ULL, 0x39109bb02acbe635ULL});
  }

  /// Uniform value in [0, bound), bound >= 1. Lemire's nearly-divisionless
  /// method: one multiply in the common case, unbiased.
  ///
  /// Deliberately consumes only the LOW 32 bits of each 64-bit draw: this
  /// is the draw the shared_legacy walk streams are pinned to (golden tests
  /// in tests/test_lane_rng.cpp), so its mapping can never change. New code
  /// that is free to pick its own stream should prefer uniform_below_wide,
  /// whose rejection re-draws are ~2^32x rarer at large bounds.
  std::uint32_t uniform_below(std::uint32_t bound) noexcept {
    std::uint64_t x = next() & 0xffffffffULL;
    std::uint64_t m = x * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        x = next() & 0xffffffffULL;
        m = x * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform value in [0, bound), bound >= 1, consuming the FULL 64-bit
  /// word in Lemire's multiply (64x32 -> 96-bit product; a single widening
  /// multiply where __int128 exists, two 64-bit halves otherwise — both
  /// reject on exactly the same lo64 < threshold condition, so the draw
  /// sequence is identical across implementations). Rejection probability
  /// drops from (2^32 mod bound)/2^32 — ~2.2% at bound = 10^8 — to
  /// bound/2^64, i.e. essentially never. This is the bounded draw of the
  /// lane-mode walk kernel (and of any stream with no legacy bit-compat
  /// obligation).
  std::uint32_t uniform_below_wide(std::uint32_t bound) noexcept {
#if defined(__SIZEOF_INT128__)
    __extension__ using u128 = unsigned __int128;
    u128 m = static_cast<u128>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold =
          (0ULL - std::uint64_t{bound}) % bound;  // 2^64 mod bound
      while (lo < threshold) {
        m = static_cast<u128>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 64);
#else
    std::uint64_t x = next();
    std::uint64_t p_lo = (x & 0xffffffffULL) * bound;  // low  32 bits x bound
    std::uint64_t p_hi = (x >> 32) * bound;            // high 32 bits x bound
    // Low 64 bits of the 96-bit product x*bound (shift + add wrap mod 2^64).
    std::uint64_t lo = (p_hi << 32) + p_lo;
    if (lo < bound) {
      const std::uint64_t threshold =
          (0ULL - std::uint64_t{bound}) % bound;  // 2^64 mod bound
      while (lo < threshold) {
        x = next();
        p_lo = (x & 0xffffffffULL) * bound;
        p_hi = (x >> 32) * bound;
        lo = (p_hi << 32) + p_lo;
      }
    }
    // Top 32 bits of the 96-bit product: (p_hi + carry from p_lo) >> 32.
    return static_cast<std::uint32_t>((p_hi + (p_lo >> 32)) >> 32);
#endif
  }

  /// Uniform 64-bit value in [0, bound).
  std::uint64_t uniform_below64(std::uint64_t bound) noexcept {
    // Bitmask-with-rejection; branch-light and unbiased.
    const int bits = static_cast<int>(std::bit_width(bound - 1));
    const std::uint64_t mask =
        bits >= 64 ? ~0ULL : ((std::uint64_t{1} << bits) - 1);
    std::uint64_t v = next() & mask;
    while (v >= bound) v = next() & mask;
    return v;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) sample.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exposes raw state for tests.
  constexpr const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }

 private:
  constexpr void apply_jump(const std::array<std::uint64_t, 4>& table) noexcept {
    std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
    for (std::uint64_t word : table) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        next();
      }
    }
    state_ = acc;
  }

  std::array<std::uint64_t, 4> state_{};
};

/// The library-wide default generator type.
using Rng = Xoshiro256PlusPlus;

/// Derives a reproducible per-trial generator: independent of thread count
/// and scheduling order, trial `index` under `master_seed` always sees the
/// same stream.
inline Rng make_trial_rng(std::uint64_t master_seed, std::uint64_t index) noexcept {
  // Mix the pair (seed, index) into a single 64-bit seed. The golden-ratio
  // constant decorrelates consecutive indices before the SplitMix64 expander.
  return Rng(mix64(master_seed ^ (index * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL)));
}

/// Derives the reproducible per-lane generator of the walk engine's lane
/// sampling mode: lane `lane` under lane master `master` always sees the
/// same stream, independent of thread count and scheduling (determinism
/// contract v2). Same mixing shape as make_trial_rng but with a distinct
/// additive salt, so a lane stream can never alias a trial stream derived
/// from the same 64-bit value.
inline Rng make_lane_rng(std::uint64_t master, std::uint64_t lane) noexcept {
  return Rng(mix64(master ^ (lane * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL)));
}

/// A bank of per-lane generators, one independent stream per walk token.
/// Breaking the k tokens' shared-stream data dependency is what lets the
/// engine's round loop be software-pipelined: lane i+1's draw no longer
/// waits on lane i's next().
class LaneRngs {
 public:
  LaneRngs() = default;

  /// Re-derives `lanes` streams from `master` (cheap: one mix64 + four
  /// SplitMix64 steps per lane; called once per engine reset).
  void reseed(std::uint64_t master, std::size_t lanes) {
    lanes_.clear();
    lanes_.reserve(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      lanes_.push_back(make_lane_rng(master, lane));
    }
  }

  Rng& operator[](std::size_t lane) noexcept { return lanes_[lane]; }
  const Rng& operator[](std::size_t lane) const noexcept {
    return lanes_[lane];
  }
  Rng* data() noexcept { return lanes_.data(); }
  std::size_t size() const noexcept { return lanes_.size(); }

 private:
  std::vector<Rng> lanes_;
};

/// Lane-mode neighbor-index draw: one masked word for power-of-two degrees,
/// Lemire's full-word path otherwise. A pure function of (rng, degree) — so
/// every substrate representation of the same graph consumes identical
/// draws, and lane mode preserves the CSR-vs-implicit bit-identity of the
/// CSR-ordered families exactly like the legacy stream does. (xoshiro256++
/// low bits are full quality, unlike the + variant, so the mask is sound.)
inline std::uint32_t lane_neighbor_index(Rng& rng,
                                         std::uint32_t degree) noexcept {
  if (std::has_single_bit(degree)) {
    return static_cast<std::uint32_t>(rng.next()) & (degree - 1);
  }
  return rng.uniform_below_wide(degree);
}

}  // namespace manywalks
