// Minimal from_chars-based field scanning for the text graph readers.
//
// The per-line istringstream parse the edge-list readers shipped with
// costs a heap allocation and locale-aware extraction per line — ~20x the
// work of scanning the digits. These helpers are the whole scanner: skip
// ASCII whitespace, parse an unsigned decimal field, and report what is
// left so callers can keep their exact error-message contracts.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

namespace manywalks {

/// ASCII whitespace as the edge-list formats use it (space, tab, CR — a
/// CRLF line read by getline keeps its '\r', which must count as blank).
constexpr bool is_field_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

/// Advances past whitespace; returns the first non-space position (== end
/// when the rest of the line is blank).
constexpr const char* skip_field_space(const char* p, const char* end) noexcept {
  while (p != end && is_field_space(*p)) ++p;
  return p;
}

/// Parses one unsigned decimal field at *p (no leading sign, no leading
/// whitespace — call skip_field_space first). On success stores the value,
/// advances p past the digits, and returns true. Overflow or a non-digit
/// first character fail without advancing.
inline bool parse_u64_field(const char*& p, const char* end,
                            std::uint64_t& value) noexcept {
  const auto [next, ec] = std::from_chars(p, end, value, 10);
  if (ec != std::errc{} || next == p) return false;
  p = next;
  return true;
}

/// The rest of the line from `p` up to the next whitespace — the "trailing
/// garbage" token the error messages quote.
inline std::string first_field_token(const char* p, const char* end) {
  const char* q = p;
  while (q != end && !is_field_space(*q)) ++q;
  return std::string(p, q);
}

}  // namespace manywalks
