#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "util/check.hpp"

namespace manywalks {

std::string format_double(double value, int sig) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream os;
  const double mag = std::abs(value);
  if (value != 0.0 && (mag < 1e-4 || mag >= 1e7)) {
    os << std::scientific << std::setprecision(std::max(0, sig - 1)) << value;
  } else {
    // std::defaultfloat with `sig` significant digits.
    os << std::setprecision(sig) << value;
  }
  return os.str();
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_mean_pm(double mean, double half_width, int sig) {
  return format_double(mean, sig) + " ± " + format_double(half_width, 2);
}

TextTable& TextTable::add_column(std::string header, Align align) {
  MW_REQUIRE(rows_.empty(), "columns must be declared before rows");
  headers_.push_back(std::move(header));
  aligns_.push_back(align);
  return *this;
}

TextTable& TextTable::begin_row() {
  MW_REQUIRE(!headers_.empty(), "declare columns before rows");
  MW_REQUIRE(rows_.empty() || rows_.back().cells.size() == headers_.size(),
             "previous row incomplete: " << rows_.back().cells.size() << "/"
                                         << headers_.size() << " cells");
  Row row;
  row.rule_before = pending_rule_;
  pending_rule_ = false;
  rows_.push_back(std::move(row));
  return *this;
}

TextTable& TextTable::cell(std::string text) {
  MW_REQUIRE(!rows_.empty(), "begin_row before adding cells");
  MW_REQUIRE(rows_.back().cells.size() < headers_.size(),
             "too many cells in row");
  rows_.back().cells.push_back(std::move(text));
  return *this;
}

TextTable& TextTable::cell(std::int64_t value) {
  // Negate in unsigned space (INT64_MIN-safe) and build the string by
  // append: prepending via operator+(const char*, string&&) trips GCC 12's
  // bogus -Wrestrict (PR 105651) under -O2.
  if (value < 0) {
    std::string text = "-";
    text += format_count(0u - static_cast<std::uint64_t>(value));
    return cell(std::move(text));
  }
  return cell(format_count(static_cast<std::uint64_t>(value)));
}

TextTable& TextTable::rule() {
  pending_rule_ = true;
  return *this;
}

namespace {

// Width in display columns; counts UTF-8 code points (good enough for our
// ASCII + "±" usage).
std::size_t display_width(const std::string& s) {
  std::size_t width = 0;
  for (char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    if ((c & 0xC0) != 0x80) ++width;  // skip UTF-8 continuation bytes
  }
  return width;
}

void append_padded(std::string& out, const std::string& text, std::size_t width,
                   TextTable::Align align) {
  const std::size_t w = display_width(text);
  const std::size_t pad = width > w ? width - w : 0;
  if (align == TextTable::Align::kRight) out.append(pad, ' ');
  out += text;
  if (align == TextTable::Align::kLeft) out.append(pad, ' ');
}

}  // namespace

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = display_width(headers_[c]);
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], display_width(row.cells[c]));
  }

  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += headers_.empty() ? 0 : 3 * (headers_.size() - 1);

  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  std::string hrule(total, '-');
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += " | ";
    append_padded(out, headers_[c], widths[c], aligns_[c]);
  }
  out += '\n';
  out += hrule;
  out += '\n';
  for (const Row& row : rows_) {
    if (row.rule_before) {
      out += hrule;
      out += '\n';
    }
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) out += " | ";
      const std::string empty;
      append_padded(out, c < row.cells.size() ? row.cells[c] : empty, widths[c],
                    aligns_[c]);
    }
    out += '\n';
  }
  return out;
}

void TextTable::print(std::ostream& os) const { os << str(); }

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  table.print(os);
  return os;
}

}  // namespace manywalks
