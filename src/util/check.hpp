// Lightweight precondition / invariant checking.
//
// Library entry points validate their arguments with MW_REQUIRE (always on,
// throws std::invalid_argument) so misuse fails loudly; internal invariants
// use MW_ASSERT which compiles to nothing in release builds. Bare `assert`
// in library code is rejected by the manywalks-bare-assert lint rule
// (tools/lint/manywalks_lint.py): it vanishes under NDEBUG, so release
// builds would silently skip the check.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace manywalks::detail {

[[noreturn]] inline void throw_requirement_failure(const char* expr,
                                                   const char* file, int line,
                                                   const std::string& message) {
  std::ostringstream os;
  os << "requirement violated: " << expr;
  if (!message.empty()) os << " — " << message;
  os << " [" << file << ':' << line << ']';
  throw std::invalid_argument(os.str());
}

}  // namespace manywalks::detail

/// Argument/precondition check that is always active. `msg` is any
/// expression streamable into std::ostringstream.
#define MW_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream mw_require_os_;                                   \
      mw_require_os_ << msg;                                               \
      ::manywalks::detail::throw_requirement_failure(#cond, __FILE__,      \
                                                     __LINE__,             \
                                                     mw_require_os_.str()); \
    }                                                                      \
  } while (false)

/// Internal invariant; active only in debug builds.
#ifndef NDEBUG
#define MW_ASSERT(cond) MW_REQUIRE(cond, "internal invariant")
#else
#define MW_ASSERT(cond) ((void)0)
#endif
