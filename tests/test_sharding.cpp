// Units for the lane-sharded execution layer (determinism contract v3,
// docs/ARCHITECTURE.md): the two ShardVisitTracker models, the round
// barrier, the static team partitioner, and the thread-budget policy.
// End-to-end shard/thread invariance of the engine itself lives in
// tests/test_engine.cpp.
#include "walk/visit_tracker.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mc/monte_carlo.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "walk/cover_types.hpp"

namespace manywalks {
namespace {

// --- ShardedVisitTracker ----------------------------------------------------

TEST(ShardedVisitTracker, VisitIsPerShardExact) {
  ShardedVisitTracker trk(128, 3);
  EXPECT_TRUE(trk.visit(0, 5));
  EXPECT_FALSE(trk.visit(0, 5));  // repeat within a shard: not new
  EXPECT_TRUE(trk.visit(1, 5));   // same vertex, other shard: new TO IT
  EXPECT_TRUE(trk.visit(1, 64));
  EXPECT_EQ(trk.shard_visited(0), 1u);
  EXPECT_EQ(trk.shard_visited(1), 2u);
  EXPECT_EQ(trk.shard_visited(2), 0u);
}

TEST(ShardedVisitTracker, MergeCountsUnionNotSum) {
  ShardedVisitTracker trk(256, 4);
  // Overlapping visit sets: shard s marks multiples of s+1 below 100.
  std::set<Vertex> expected;
  for (unsigned s = 0; s < 4; ++s) {
    for (Vertex v = 0; v < 100; v += s + 1) {
      trk.visit(s, v);
      expected.insert(v);
    }
  }
  EXPECT_EQ(trk.merge_exact(), static_cast<Vertex>(expected.size()));
  for (Vertex v = 0; v < 256; ++v) {
    EXPECT_EQ(trk.merged_visited(v), expected.count(v) == 1) << "v=" << v;
  }
  // Idempotent: re-merging with no new visits is the same union.
  EXPECT_EQ(trk.merge_exact(), static_cast<Vertex>(expected.size()));
}

TEST(ShardedVisitTracker, RangeMergePartialsSumToExactCount) {
  const Vertex n = 1000;  // 16 words: an uneven split exercises tiling
  ShardedVisitTracker trk(n, 2);
  Rng rng(7);
  std::set<Vertex> expected;
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<Vertex>(rng.uniform_below_wide(n));
    trk.visit(i % 2 == 0 ? 0u : 1u, v);
    expected.insert(v);
  }
  const std::size_t wps = trk.words_per_shard();
  std::uint64_t total = 0;
  // Three deliberately uneven ranges tile [0, wps).
  total += trk.merge_range(0, wps / 3);
  total += trk.merge_range(wps / 3, wps - 1);
  total += trk.merge_range(wps - 1, wps);
  EXPECT_EQ(total, expected.size());
}

TEST(ShardedVisitTracker, SeededBitsSurviveMerge) {
  ShardedVisitTracker trk(128, 2);
  const std::uint64_t words[2] = {(1ull << 3), (1ull << (100 - 64))};
  trk.seed_merged(words, 2);
  trk.visit(0, 3);    // already in the seed
  trk.visit(1, 42);   // genuinely new
  EXPECT_EQ(trk.merge_exact(), 3u);
  EXPECT_TRUE(trk.merged_visited(3));
  EXPECT_TRUE(trk.merged_visited(100));
  EXPECT_TRUE(trk.merged_visited(42));
}

TEST(ShardedVisitTracker, PublishedBoundNeverUndercountsUnion) {
  const Vertex n = 512;
  ShardedVisitTracker trk(n, 3);
  Rng rng(21);
  std::set<Vertex> expected;
  std::uint64_t merged = 0;  // worker-local replica, as the engine keeps it
  for (int round = 1; round <= 40; ++round) {
    for (unsigned s = 0; s < 3; ++s) {
      for (int i = 0; i < 5; ++i) {
        const auto v = static_cast<Vertex>(rng.uniform_below_wide(n));
        trk.visit(s, v);
        expected.insert(v);
      }
      trk.publish_shard(round & 1, s);
    }
    const std::uint64_t bound =
        trk.upper_bound_visited(static_cast<unsigned>(round & 1), merged);
    EXPECT_GE(bound, expected.size()) << "round=" << round;
    if (round % 7 == 0) {
      merged = trk.merge_exact();
      EXPECT_EQ(merged, expected.size());
      // merge_exact snapshots every shard and republishes both parities,
      // so the re-tightened bound collapses to the exact count.
      EXPECT_EQ(trk.upper_bound_visited(0, merged), expected.size());
      EXPECT_EQ(trk.upper_bound_visited(1, merged), expected.size());
    }
  }
}

TEST(ShardedVisitTracker, PublishFreezesDeltasPerParity) {
  ShardedVisitTracker trk(128, 1);
  trk.visit(0, 1);
  trk.visit(0, 2);
  trk.publish_shard(0, 0);
  // Later visits must not leak into the already-published parity-0 row.
  trk.visit(0, 3);
  trk.publish_shard(1, 0);
  EXPECT_EQ(trk.upper_bound_visited(0, 0), 2u);
  EXPECT_EQ(trk.upper_bound_visited(1, 0), 3u);
  // Snapshot re-bases the delta; a fresh publish reports only post-snapshot
  // visits while the frozen row is untouched.
  trk.merge_range(0, trk.words_per_shard());
  trk.snapshot_shard(0);
  trk.visit(0, 4);
  trk.publish_shard(1, 0);
  EXPECT_EQ(trk.upper_bound_visited(1, 3), 4u);
  EXPECT_EQ(trk.upper_bound_visited(0, 3), 5u);  // stale parity-0 row: 3+2
}

TEST(ShardedVisitTracker, ResetClearsEverything) {
  ShardedVisitTracker trk(128, 2);
  trk.visit(0, 1);
  trk.visit(1, 2);
  trk.publish_shard(0, 0);
  trk.publish_shard(0, 1);
  trk.merge_exact();
  trk.reset();
  EXPECT_EQ(trk.shard_visited(0), 0u);
  EXPECT_EQ(trk.shard_visited(1), 0u);
  EXPECT_EQ(trk.merged_count(), 0u);
  EXPECT_EQ(trk.upper_bound_visited(0, 0), 0u);
  EXPECT_EQ(trk.upper_bound_visited(1, 0), 0u);
  EXPECT_EQ(trk.merge_exact(), 0u);
}

// --- AtomicVisitTracker -----------------------------------------------------

TEST(AtomicVisitTracker, OneWinnerPerBitMakesCountsExact) {
  const Vertex n = 4096;
  const unsigned shards = 4;
  AtomicVisitTracker trk(n, shards);
  // All shards hammer overlapping ranges concurrently; every bit must be
  // won exactly once, so the winner counts sum to the union size.
  std::vector<std::thread> team;
  for (unsigned s = 0; s < shards; ++s) {
    team.emplace_back([&trk, s, n] {
      Rng rng(1000 + s);
      for (int i = 0; i < 20000; ++i) {
        trk.visit(s, static_cast<Vertex>(rng.uniform_below_wide(n / 2)));
      }
    });
  }
  for (auto& t : team) t.join();
  std::uint64_t winners = 0;
  std::uint64_t union_size = 0;
  for (unsigned s = 0; s < shards; ++s) winners += trk.shard_visited(s);
  for (Vertex v = 0; v < n; ++v) union_size += trk.visited(v) ? 1 : 0;
  EXPECT_EQ(winners, union_size);
  EXPECT_EQ(trk.total_visited(), union_size);
}

TEST(AtomicVisitTracker, SeedBitsAreNotReWon) {
  AtomicVisitTracker trk(128, 2);
  std::uint64_t words[2] = {(1ull << 7), 0};
  trk.seed(words, 1);
  EXPECT_FALSE(trk.visit(0, 7));  // seeded bit: never won by a shard
  EXPECT_TRUE(trk.visit(1, 8));
  EXPECT_EQ(trk.total_visited(), 2u);
  trk.publish_shard(0, 0);
  trk.publish_shard(0, 1);
  EXPECT_EQ(trk.published_total(0), 2u);
  EXPECT_EQ(trk.published_total(1), 1u);  // unpublished parity: seed only
  std::uint64_t out[2] = {0, 0};
  trk.copy_words_to(out);
  EXPECT_EQ(out[0], (1ull << 7) | (1ull << 8));
}

// --- SpinBarrier ------------------------------------------------------------

TEST(SpinBarrier, LockStepsARoundLoop) {
  const unsigned team = 4;
  const int rounds = 2000;
  SpinBarrier barrier(team);
  std::vector<std::uint64_t> counts(team * 16, 0);  // padded slots
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < team; ++w) {
    threads.emplace_back([&, w] {
      for (int r = 0; r < rounds; ++r) {
        counts[w * 16] = static_cast<std::uint64_t>(r + 1);
        if (!barrier.arrive_and_wait()) return;
        // Between the two barriers everyone must observe everyone at r+1.
        for (unsigned o = 0; o < team; ++o) {
          if (counts[o * 16] != static_cast<std::uint64_t>(r + 1)) {
            ok.store(false);
          }
        }
        if (!barrier.arrive_and_wait()) return;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
}

TEST(SpinBarrier, PoisonReleasesWaiters) {
  SpinBarrier barrier(2);
  std::atomic<int> released{0};
  std::thread waiter([&] {
    // Spins alone (participants=2, nobody else arrives) until poison
    // frees it with a false return.
    EXPECT_FALSE(barrier.arrive_and_wait());
    released.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  barrier.poison();
  waiter.join();
  EXPECT_EQ(released.load(), 1);
  // Poison is sticky: later arrivals fail immediately.
  EXPECT_FALSE(barrier.arrive_and_wait());
}

// --- parallel_for_static ----------------------------------------------------

TEST(ParallelForStatic, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (std::uint64_t count : {1ull, 2ull, 4ull, 7ull, 64ull}) {
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h.store(0);
    parallel_for_static(pool, count,
                        [&](std::uint64_t i) { hits[i].fetch_add(1); });
    for (std::uint64_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "count=" << count << " i=" << i;
    }
  }
}

TEST(ParallelForStatic, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for_static(
                   pool, 8,
                   [&](std::uint64_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

// --- thread-budget policy ---------------------------------------------------

TEST(ThreadBudget, AutoLaneShardsIsAPureFunctionOfK) {
  EXPECT_EQ(auto_lane_shards(1), 1u);
  EXPECT_EQ(auto_lane_shards(255), 1u);
  EXPECT_EQ(auto_lane_shards(512), 2u);
  EXPECT_EQ(auto_lane_shards(4096), 16u);
  EXPECT_EQ(auto_lane_shards(1u << 20), 32u);  // clamped
}

TEST(ThreadBudget, ChoosesTrialsWhenTheySaturate) {
  // No pool: nothing to shard over.
  EXPECT_EQ(choose_parallelism(1000, 4096, 0), McParallelism::kTrials);
  EXPECT_EQ(choose_parallelism(1000, 4096, 1), McParallelism::kTrials);
  // Plenty of trials per executor: trial-parallel wins regardless of k.
  EXPECT_EQ(choose_parallelism(1000, 1u << 16, 4), McParallelism::kTrials);
}

TEST(ThreadBudget, ChoosesLanesForFewLongWideTrials) {
  // Few trials, wide k: shard the lanes inside each trial.
  EXPECT_EQ(choose_parallelism(8, 4096, 8), McParallelism::kLanes);
  // Few trials but k too narrow to shard: stay trial-parallel.
  EXPECT_EQ(choose_parallelism(8, 16, 8), McParallelism::kTrials);
}

}  // namespace
}  // namespace manywalks
