// Integration tests: miniature versions of the paper's theorems. Each test
// runs the actual experiment pipeline at reduced scale and asserts the
// qualitative claim (and, where the paper gives explicit constants, the
// quantitative bound). Seeds are fixed — results are deterministic.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiments.hpp"
#include "graph/generators.hpp"
#include "linalg/markov.hpp"
#include "linalg/spectral.hpp"
#include "theory/bounds.hpp"
#include "theory/closed_forms.hpp"
#include "theory/exact.hpp"

namespace manywalks {
namespace {

McOptions mc_with(std::uint64_t trials, std::uint64_t seed) {
  McOptions mc;
  mc.min_trials = trials;
  mc.max_trials = trials;
  mc.seed = seed;
  return mc;
}

// --- Theorem 6: cycle speed-up is Θ(log k) ---------------------------------

TEST(Theorem6, CycleSpeedupIsLogarithmic) {
  const Vertex n = 65;
  const Graph g = make_cycle(n);
  const std::vector<unsigned> ks = {4, 16, 64};
  const auto curve = estimate_speedup_curve(g, 0, ks, mc_with(800, 600));

  for (const auto& point : curve) {
    // Lemma 22 ⇒ S^k ≥ ln(k)/4; Lemma 21 ⇒ S^k ≤ 8 ln(8k).
    EXPECT_GE(point.speedup, std::log(static_cast<double>(point.k)) / 4.0)
        << "k=" << point.k;
    EXPECT_LE(point.speedup, 8.0 * std::log(8.0 * point.k)) << "k=" << point.k;
  }
  // Decidedly sub-linear: S^64 must be far below 64 (log 64 ≈ 4.2).
  EXPECT_LT(curve.back().speedup, 16.0);
  // But still increasing in k.
  EXPECT_GT(curve[2].speedup, curve[0].speedup);
}

TEST(Theorem6, Lemma21And22SandwichMeasuredKCover) {
  const Vertex n = 65;
  const Graph g = make_cycle(n);
  for (unsigned k : {16u, 64u}) {
    const auto ck = estimate_k_cover_time(g, 0, k, mc_with(800, 601 + k));
    EXPECT_GE(ck.ci.mean, cycle_k_cover_lower(n, k)) << "k=" << k;
    // Lemma 22 is asymptotic in k; allow 25% slack at these sizes.
    EXPECT_LE(ck.ci.mean, 1.25 * cycle_k_cover_upper(n, k)) << "k=" << k;
  }
}

// --- Theorem 7 / Figure 1: barbell exponential speed-up ---------------------

TEST(Theorem7, BarbellCollapsesWithLogNWalks) {
  const Vertex n = 101;
  const Graph g = make_barbell(n);
  const Vertex center = barbell_center(n);
  const auto k = static_cast<unsigned>(
      std::ceil(20.0 * std::log(static_cast<double>(n))));

  const auto single = estimate_cover_time(g, center, mc_with(400, 700));
  const auto multi = estimate_k_cover_time(g, center, k, mc_with(400, 701));

  const double nn = static_cast<double>(n);
  // C = Θ(n²): between n²/40 and n².
  EXPECT_GT(single.ci.mean, nn * nn / 40.0);
  EXPECT_LT(single.ci.mean, nn * nn);
  // C^k = O(n) with a modest constant.
  EXPECT_LT(multi.ci.mean, 40.0 * nn);
  // Exponential speed-up: k = 20 ln n walks beat the single walk by >> k...
  // at n=101 the speed-up must already exceed 10.
  EXPECT_GT(single.ci.mean / multi.ci.mean, 10.0);
}

TEST(Theorem7, SpeedupGrowsFasterThanLinearInN) {
  // C/n² stays ~constant while C^k/n stays ~constant ⇒ speed-up ~ n.
  const std::vector<Vertex> ns = {41, 81};
  ExperimentOptions options;
  options.mc = mc_with(300, 702);
  const auto result = run_barbell_experiment(ns, 20.0, options);
  ASSERT_EQ(result.points.size(), 2u);
  const double growth = result.points[1].speedup / result.points[0].speedup;
  // n roughly doubled; speed-up should grow noticeably (≥1.3x), far beyond
  // what a k-bounded speed-up would allow if it were capped at constant.
  EXPECT_GT(growth, 1.3);
}

// --- Lemma 12: clique speed-up is exactly linear ----------------------------

TEST(Lemma12, CliqueWithLoopsSpeedupIsK) {
  const Vertex n = 64;
  const Graph g = make_complete(n, /*with_self_loops=*/true);
  const std::vector<unsigned> ks = {2, 4, 8};
  const auto curve = estimate_speedup_curve(g, 0, ks, mc_with(1500, 703));
  for (const auto& point : curve) {
    EXPECT_NEAR(point.speedup, static_cast<double>(point.k),
                0.2 * point.k + 0.3)
        << "k=" << point.k;
  }
}

// --- Theorems 3/18: expanders give Ω(k) up to k = n --------------------------

TEST(Theorem18, MargulisExpanderLinearSpeedup) {
  const Graph g = make_margulis_expander(12);  // n = 144
  // Certify the instance is a genuine (n, 8, λ) expander first.
  const auto cert = certify_expander(g);
  ASSERT_TRUE(cert.converged);
  ASSERT_LT(cert.lambda_ratio, 0.89);

  const std::vector<unsigned> ks = {4, 16, 64};
  const auto curve = estimate_speedup_curve(g, 0, ks, mc_with(700, 704));
  for (const auto& point : curve) {
    EXPECT_GE(point.speedup, 0.25 * point.k) << "k=" << point.k;
    // Conjecture 10 direction: speed-up should not exceed ~k either.
    EXPECT_LE(point.speedup, 1.6 * point.k) << "k=" << point.k;
  }
}

TEST(Theorem18, RandomRegularExpanderLinearSpeedup) {
  Rng rng(705);
  const Graph g = make_random_regular(128, 8, rng);
  const auto curve =
      estimate_speedup_curve(g, 0, std::vector<unsigned>{8, 32},
                             mc_with(700, 706));
  for (const auto& point : curve) {
    EXPECT_GE(point.speedup, 0.25 * point.k) << "k=" << point.k;
  }
}

// --- Theorem 4: Matthews-tight families, linear for k <= log n ---------------

TEST(Theorem4, HypercubeLinearForSmallK) {
  const Graph g = make_hypercube(8);  // n = 256, log n ≈ 5.5
  const std::vector<unsigned> ks = {2, 4};
  const auto curve = estimate_speedup_curve(g, 0, ks, mc_with(900, 707));
  for (const auto& point : curve) {
    EXPECT_GE(point.speedup, 0.6 * point.k) << "k=" << point.k;
  }
}

TEST(Theorem4, Torus2dLinearForSmallK) {
  const Graph g = make_grid_2d(15);  // n = 225, log n ≈ 5.4
  const std::vector<unsigned> ks = {2, 4};
  const auto curve = estimate_speedup_curve(g, 0, ks, mc_with(900, 708));
  for (const auto& point : curve) {
    EXPECT_GE(point.speedup, 0.6 * point.k) << "k=" << point.k;
  }
}

// --- Theorem 8: the 2-D grid has both regimes --------------------------------

TEST(Theorem8, GridSpeedupDegradesAtLargeK) {
  const Graph g = make_grid_2d(15);  // n = 225; log n ≈ 5.4, log³n ≈ 160
  const std::vector<unsigned> ks = {4, 160};
  const auto curve = estimate_speedup_curve(g, 0, ks, mc_with(900, 709));
  const double small_k_eff = curve[0].speedup / 4.0;
  const double large_k_eff = curve[1].speedup / 160.0;
  // Per-walk efficiency must collapse at k >= log³ n.
  EXPECT_GT(small_k_eff, 0.6);
  EXPECT_LT(large_k_eff, 0.45);
  EXPECT_LT(large_k_eff, 0.6 * small_k_eff);
}

// --- Theorem 13 (Baby Matthews) ----------------------------------------------

TEST(Theorem13, MeasuredKCoverRespectsBound) {
  struct Case {
    Graph graph;
    Vertex start;
    const char* name;
  };
  const Case cases[] = {
      {make_cycle(33), 0, "cycle33"},
      {make_complete(64), 0, "complete64"},
      {make_grid_2d(7), 0, "grid7x7"},
      {make_hypercube(6), 0, "hypercube64"},
  };
  std::uint64_t seed = 710;
  for (const Case& c : cases) {
    const double h_max = hitting_extremes(c.graph).h_max;
    const std::uint64_t n = c.graph.num_vertices();
    const auto max_k = static_cast<unsigned>(
        std::max(2.0, std::floor(std::log(static_cast<double>(n)))));
    for (unsigned k : {2u, max_k}) {
      const auto ck =
          estimate_k_cover_time(c.graph, c.start, k, mc_with(500, seed++));
      EXPECT_LE(ck.ci.mean, baby_matthews_bound(h_max, n, k))
          << c.name << " k=" << k;
    }
  }
}

// --- Theorem 24 / Corollary 25: grid lower bound -----------------------------

TEST(Theorem24, TorusKCoverAboveProjectionBound) {
  const Vertex side = 15;
  const Graph g = make_grid_2d(side);
  const std::uint64_t n = g.num_vertices();
  std::uint64_t seed = 720;
  for (unsigned k : {2u, 8u, 32u}) {
    const auto ck = estimate_k_cover_time(g, 0, k, mc_with(400, seed++));
    EXPECT_GE(ck.ci.mean, grid_k_cover_lower(n, 2, k)) << "k=" << k;
  }
}

// --- Theorem 9: mixing-time bound --------------------------------------------

TEST(Theorem9, SpeedupBeatsMixingReference) {
  const Graph g = make_margulis_expander(10);  // n = 100
  MixingOptions mix_options;
  mix_options.sources = {0};
  mix_options.max_steps = 100000;
  const auto mixing = mixing_time(g, mix_options);
  ASSERT_TRUE(mixing.converged);

  std::uint64_t seed = 730;
  for (unsigned k : {8u, 32u}) {
    const auto s = estimate_speedup(g, 0, k, mc_with(600, seed++));
    const double reference = theorem9_speedup_reference(
        k, static_cast<double>(mixing.time), g.num_vertices());
    EXPECT_GE(s.speedup, reference) << "k=" << k;
  }
}

// --- Theorem 5: the gap predicts the linear regime ----------------------------

TEST(Theorem5, GapBoundedFamiliesKeepNearLinearSpeedup) {
  // On the complete graph g(n) = H_{n-1} ≈ ln n; for k ≤ g^(1-ε) the
  // speed-up must stay ≥ k - o(k). Use k = 2 ≤ g^0.7 with n = 256 (g ≈ 6.1).
  const Graph g = make_complete(256);
  const double gap = cover_hitting_gap(complete_cover_time(256),
                                       complete_hitting_time(256));
  ASSERT_GT(theorem5_max_k(gap, 0.3), 2.0);
  const auto s = estimate_speedup(g, 0, 2, mc_with(1200, 740));
  EXPECT_GT(s.speedup, 1.7);
}

// --- Conjecture 11: S^k ≥ Ω(log k) everywhere we look -------------------------

TEST(Conjecture11, LogKLowerBoundAcrossFamilies) {
  std::uint64_t seed = 750;
  const unsigned k = 16;
  const double log_k = std::log(16.0);
  struct Case {
    Graph graph;
    Vertex start;
    const char* name;
  };
  const Case cases[] = {
      {make_cycle(65), 0, "cycle"},
      {make_path(40), 0, "path"},
      {make_star(64), 0, "star"},
      {make_lollipop(36), 0, "lollipop"},
      {make_balanced_tree(2, 5), 32, "tree"},
  };
  for (const Case& c : cases) {
    const auto s = estimate_speedup(c.graph, c.start, k, mc_with(500, seed++));
    EXPECT_GE(s.speedup, log_k / 4.0) << c.name;
  }
}

}  // namespace
}  // namespace manywalks
