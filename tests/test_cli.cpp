// The experiment registry + sinks behind the `manywalks` CLI: registration
// invariants, golden JSON/CSV serialization, reproducibility of a runner,
// a minimal-size smoke run of every registered experiment, and the
// docs/REPRODUCING.md coverage contract enforced in CI.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cli/experiments_common.hpp"
#include "cli/presets.hpp"
#include "cli/registry.hpp"
#include "cli/sinks.hpp"
#include "graph/generators.hpp"
#include "storage/mwg.hpp"

namespace manywalks::cli {
namespace {

ExperimentResult empty_runner(const ExperimentParams&, ThreadPool&) {
  return {};
}

// --- registry ---------------------------------------------------------------

TEST(Registry, DefaultRegistryHasAllExperiments) {
  const ExperimentRegistry& registry = default_registry();
  EXPECT_GE(registry.size(), 17u);
  for (const Experiment* experiment : registry.list()) {
    SCOPED_TRACE(experiment->info.name);
    EXPECT_FALSE(experiment->info.summary.empty());
    EXPECT_FALSE(experiment->info.claim.empty());
    EXPECT_NE(experiment->runner, nullptr);
    // Every registered experiment has a preset row (shared quick/--full
    // sizes) so docs and the CLI agree on the defaults.
    EXPECT_NE(find_preset(experiment->info.name), nullptr);
  }
  for (const char* name :
       {"table1_summary", "fig_cycle_speedup", "fig_expander_speedup",
        "fig_grid_spectrum", "fig_grid_lower_bound", "fig_barbell_speedup",
        "fig_conjectures", "fig_matthews_bounds", "fig_mixing_bound",
        "fig_lemma16", "fig_aldous_concentration", "fig_stationary_start",
        "fig_start_placement", "giant-cycle-speedup", "giant-torus-speedup",
        "mwg-speedup", "mwg-starts"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(Registry, FindUnknownReturnsNull) {
  EXPECT_EQ(default_registry().find("fig_does_not_exist"), nullptr);
  EXPECT_EQ(default_registry().find(""), nullptr);
}

TEST(Registry, DuplicateNameRejected) {
  ExperimentRegistry registry;
  registry.add({"exp", "summary", "claim", 1, {}}, empty_runner);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_THROW(registry.add({"exp", "other", "other", 2, {}}, empty_runner),
               std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, RejectsEmptyNameAndNullRunner) {
  ExperimentRegistry registry;
  EXPECT_THROW(registry.add({"", "s", "c", 1, {}}, empty_runner),
               std::invalid_argument);
  EXPECT_THROW(registry.add({"ok", "s", "c", 1, {}}, ExperimentRunner{}),
               std::invalid_argument);
}

TEST(Registry, RunStampsCensoredCellTally) {
  // Runners don't have to remember to surface censoring: the registry
  // counts flagged cells after the runner returns.
  ExperimentRegistry registry;
  registry.add({"exp", "summary", "claim", 1, {}},
               [](const ExperimentParams&, ThreadPool&) {
                 ExperimentResult result;
                 McResult capped;
                 capped.ci.mean = 100.0;
                 capped.ci.half_width = 1.0;
                 capped.censored = 3;
                 ResultTable table("tbl", "Title");
                 table.add_column("est").add_column("clean");
                 table.begin_row();
                 table.mean_pm(capped);
                 table.mean_pm(5.0, 0.5);
                 result.tables.push_back(std::move(table));
                 return result;
               });
  ThreadPool pool(1);
  const ExperimentResult result =
      registry.find("exp")->run(ExperimentParams{}, pool);
  EXPECT_EQ(result.censored_cells, 1u);
  EXPECT_NE(render_json(result).find("\"censored\": 3"), std::string::npos);
}

TEST(Registry, GeometricKsIsOverflowSafe) {
  const std::vector<unsigned> doubling = geometric_ks(64);
  EXPECT_EQ(doubling, (std::vector<unsigned>{1, 2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(geometric_ks(1), std::vector<unsigned>{1});
  EXPECT_EQ(geometric_ks(0), std::vector<unsigned>{1});
  EXPECT_EQ(geometric_ks(256, 4), (std::vector<unsigned>{1, 4, 16, 64, 256}));
  // A 64-bit --kmax must terminate (no wrap-around loop) and stay within
  // the unsigned range.
  const auto huge =
      geometric_ks(std::numeric_limits<std::uint64_t>::max());
  ASSERT_FALSE(huge.empty());
  EXPECT_LE(huge.size(), 32u);
  EXPECT_EQ(huge.back(), 1u << 31);
}

TEST(Registry, GiantExperimentsHandleDegenerateTargets) {
  // --target 1 is degenerate (the start vertex covers it at t = 0); the
  // runner clamps to 2 instead of aborting inside combine_speedup.
  const Experiment* experiment =
      default_registry().find("giant-cycle-speedup");
  ASSERT_NE(experiment, nullptr);
  ExperimentParams params;
  params.seed = experiment->info.default_seed;
  params.n = 48;
  params.trials = 8;
  params.kmax = 2;
  params.target = 1;
  ThreadPool pool(2);
  const ExperimentResult result = experiment->run(params, pool);
  ASSERT_FALSE(result.tables.empty());
  EXPECT_FALSE(result.tables.front().rows().empty());
}

TEST(Registry, PresetResolutionPrefersExplicitFlags) {
  const ExperimentPreset& preset = preset_for("fig_cycle_speedup");
  ExperimentParams params;
  EXPECT_EQ(resolve_n(preset, params), preset.quick_n);
  params.full = true;
  EXPECT_EQ(resolve_n(preset, params), preset.full_n);
  params.n = 99;
  EXPECT_EQ(resolve_n(preset, params), 99u);

  const McOptions mc = preset_mc(100);
  EXPECT_EQ(mc.min_trials, 25u);
  EXPECT_EQ(mc.max_trials, 100u);
  EXPECT_EQ(preset_mc(8).min_trials, 8u);  // floor at 8
}

// --- sinks ------------------------------------------------------------------

ExperimentResult golden_result() {
  ExperimentResult result;
  result.name = "golden";
  result.claim = "claim";
  result.params.emplace_back("seed", ResultCell{std::uint64_t{7}});
  result.params.emplace_back("full", ResultCell{false});
  result.preamble = {"pre line"};
  ResultTable table("tbl", "Title");
  table.add_column("name", /*left=*/true)
      .add_column("count")
      .add_column("value")
      .add_column("est");
  table.begin_row();
  table.text("a,b \"q\"");
  table.count(1234567);
  table.real(1.5, 3);
  table.mean_pm(2.25, 0.5, 3, /*censored=*/2);
  table.rule();
  table.begin_row();
  table.text("line\nbreak");
  table.count(0);
  table.blank();
  table.real(0.1, 4);
  result.tables.push_back(std::move(table));
  result.notes = {"note 1", "note 2"};
  result.has_verdict = true;
  result.passed = false;
  result.censored_cells = count_censored_cells(result);
  result.elapsed_seconds = 0.5;
  return result;
}

TEST(Sinks, JsonGolden) {
  const std::string expected = R"json({
  "experiment": "golden",
  "claim": "claim",
  "params": {
    "seed": 7,
    "full": false
  },
  "preamble": [
    "pre line"
  ],
  "tables": [
    {
      "id": "tbl",
      "title": "Title",
      "columns": ["name", "count", "value", "est"],
      "rows": [
        ["a,b \"q\"", 1234567, 1.5, {"mean": 2.25, "half_width": 0.5, "censored": 2}],
        ["line\nbreak", 0, null, 0.1]
      ]
    }
  ],
  "notes": [
    "note 1",
    "note 2"
  ],
  "censored_cells": 1,
  "passed": false,
  "elapsed_seconds": 0.5
}
)json";
  EXPECT_EQ(render_json(golden_result()), expected);
}

TEST(Sinks, CsvGoldenWithMeanPmExpansionAndQuoting) {
  const std::string expected =
      "name,count,value,est,est (±),est (censored)\n"
      "\"a,b \"\"q\"\"\",1234567,1.5,2.25,0.5,2\n"
      "\"line\nbreak\",0,,0.1,,\n";
  EXPECT_EQ(render_csv(golden_result().tables.front()), expected);
}

TEST(Sinks, UncensoredEstimatesRenderWithoutCensoredArtifacts) {
  // The pre-fix shapes are preserved exactly when nothing was censored:
  // no "censored" JSON key, no "(censored)" CSV column, no "†" marker.
  ExperimentResult result;
  result.name = "clean";
  result.claim = "claim";
  ResultTable table("tbl", "Title");
  table.add_column("est");
  table.begin_row();
  table.mean_pm(10.0, 2.0, 3);
  result.tables.push_back(std::move(table));
  const std::string json = render_json(result);
  EXPECT_EQ(json.find("\"censored\":"), std::string::npos);
  EXPECT_NE(json.find("\"censored_cells\": 0"), std::string::npos);
  EXPECT_EQ(render_csv(result.tables.front()),
            "est,est (±)\n10,2\n");
  EXPECT_EQ(cell_text(ResultCell{MeanPmCell{10.0, 2.0, 3}}),
            format_mean_pm(10.0, 2.0, 3));
}

TEST(Sinks, TextRenderMatchesLegacyLayout) {
  std::ostringstream os;
  render_text(golden_result(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("pre line\n"), std::string::npos);
  EXPECT_NE(text.find("Title"), std::string::npos);
  EXPECT_NE(text.find("1,234,567"), std::string::npos);  // thousands separator
  EXPECT_NE(text.find("note 2\n"), std::string::npos);
  EXPECT_NE(text.find("Elapsed: 0.5 s\n"), std::string::npos);
  // Censored estimates carry the dagger and trigger the lower-bound
  // warning line.
  EXPECT_NE(text.find("†"), std::string::npos);
  EXPECT_NE(text.find("WARNING: 1 estimate(s)"), std::string::npos);
}

TEST(Sinks, ParseOutputFormat) {
  OutputFormat format = OutputFormat::kText;
  EXPECT_TRUE(parse_output_format("json", &format));
  EXPECT_EQ(format, OutputFormat::kJson);
  EXPECT_TRUE(parse_output_format("csv", &format));
  EXPECT_EQ(format, OutputFormat::kCsv);
  EXPECT_TRUE(parse_output_format("text", &format));
  EXPECT_EQ(format, OutputFormat::kText);
  EXPECT_FALSE(parse_output_format("yaml", &format));
}

TEST(Sinks, CellTextFormatting) {
  EXPECT_EQ(cell_text(ResultCell{}), "-");
  EXPECT_EQ(cell_text(ResultCell{std::string("x")}), "x");
  EXPECT_EQ(cell_text(ResultCell{std::uint64_t{1234567}}),
            format_count(1234567));
  EXPECT_EQ(cell_text(ResultCell{RealCell{3.14159, 3}}),
            format_double(3.14159, 3));
  EXPECT_EQ(cell_text(ResultCell{MeanPmCell{10.0, 2.0, 3}}),
            format_mean_pm(10.0, 2.0, 3));
}

// --- end-to-end: runners ----------------------------------------------------

/// Small stored-graph fixture for the mwg-* experiments (written once; the
/// smoke test must exercise the registered runners' real mmap load path).
const std::string& mwg_smoke_fixture() {
  static const std::string path = [] {
    const std::string p =
        (std::filesystem::temp_directory_path() / "manywalks_test_cli.mwg")
            .string();
    write_mwg(p, make_grid_2d(6));
    return p;
  }();
  return path;
}

ExperimentParams smoke_params(const Experiment& experiment) {
  const std::string& name = experiment.info.name;
  ExperimentParams params;
  params.seed = experiment.info.default_seed;  // as the CLI driver does
  params.trials = 8;
  params.threads = 2;
  params.n = 48;
  if (name == "fig_cycle_speedup") {
    params.n = 33;
    params.kmax = 8;
  } else if (name == "fig_lemma16" || name == "fig_grid_lower_bound" ||
             name == "fig_grid_spectrum") {
    params.n = 36;
  } else if (name == "fig_conjectures") {
    params.n = 32;
  } else if (name == "fig_barbell_speedup") {
    params.n = 31;
  } else if (name == "mwg-speedup" || name == "mwg-starts") {
    params.graph = mwg_smoke_fixture();
    params.kmax = 4;
    params.k = 2;
  }
  return params;
}

TEST(Runners, JsonIsDeterministicForFixedSeed) {
  const Experiment* experiment =
      default_registry().find("fig_cycle_speedup");
  ASSERT_NE(experiment, nullptr);
  const ExperimentParams params = smoke_params(*experiment);
  ThreadPool pool(2);
  const std::string first = render_json(experiment->run(params, pool));
  const std::string second = render_json(experiment->run(params, pool));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"experiment\": \"fig_cycle_speedup\""),
            std::string::npos);
}

TEST(Runners, EveryRegisteredExperimentSmokesAtMinimalSize) {
  ThreadPool pool(2);
  for (const Experiment* experiment : default_registry().list()) {
    const std::string& name = experiment->info.name;
    SCOPED_TRACE(name);
    const ExperimentResult result =
        experiment->run(smoke_params(*experiment), pool);
    EXPECT_EQ(result.name, name);
    EXPECT_EQ(result.claim, experiment->info.claim);
    ASSERT_FALSE(result.tables.empty());
    for (const ResultTable& table : result.tables) {
      SCOPED_TRACE(table.id());
      EXPECT_FALSE(table.id().empty());
      EXPECT_FALSE(table.columns().empty());
      EXPECT_FALSE(table.rows().empty());
      for (const ResultTable::Row& row : table.rows()) {
        EXPECT_LE(row.cells.size(), table.columns().size());
      }
      // Each table serializes through both machine sinks.
      EXPECT_NE(render_csv(table).find('\n'), std::string::npos);
    }
    EXPECT_FALSE(render_json(result).empty());
  }
}

// --- docs contract ----------------------------------------------------------

TEST(Docs, ReproducingGuideListsEveryExperiment) {
  const std::string path =
      std::string(MANYWALKS_SOURCE_DIR) + "/docs/REPRODUCING.md";
  std::ifstream file(path);
  ASSERT_TRUE(file.good()) << "missing " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string doc = buffer.str();
  for (const Experiment* experiment : default_registry().list()) {
    EXPECT_NE(doc.find(experiment->info.name), std::string::npos)
        << experiment->info.name
        << " is registered but undocumented in docs/REPRODUCING.md";
  }
}

}  // namespace
}  // namespace manywalks::cli
