#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace manywalks {
namespace {

TEST(RunningStats, EmptyState) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 4.0, 9.0, 16.0, 25.0, 36.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-9);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 36.0);
  EXPECT_NEAR(s.sum(), 91.0, 1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-8);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(normal_quantile(0.841344746), 1.0, 1e-5);
}

TEST(NormalQuantile, RejectsOutOfRange) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(-0.5), std::invalid_argument);
}

TEST(StudentT, ExactSmallDof) {
  // dof=1 (Cauchy): t_{0.975} = tan(pi * 0.475) = 12.7062.
  EXPECT_NEAR(student_t_quantile(0.975, 1), 12.7062, 1e-3);
  // dof=2: 4.30265.
  EXPECT_NEAR(student_t_quantile(0.975, 2), 4.30265, 1e-4);
}

TEST(StudentT, TableValues) {
  EXPECT_NEAR(student_t_quantile(0.975, 5), 2.5706, 2e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 10), 2.2281, 2e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 30), 2.0423, 2e-3);
  EXPECT_NEAR(student_t_quantile(0.95, 10), 1.8125, 2e-3);
}

TEST(StudentT, SmallDofMatchesReferenceQuantiles) {
  // Regression for the A&S 26.7.5 expansion being visibly off at dof
  // 3–10 (2.2% at dof 3 — and preset_mc makes dof 7 CIs routine).
  // References are R's qt(p, dof) to full double precision.
  EXPECT_NEAR(student_t_quantile(0.975, 3), 3.182446305284263, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.975, 4), 2.776445105198654, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.975, 5), 2.570581835636197, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.975, 7), 2.364624251592785, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.975, 10), 2.228138851986273, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.975, 30), 2.042272456301238, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.995, 3), 5.840909309732899, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.995, 7), 3.499483297350494, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.95, 5), 2.015048372669157, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.95, 10), 1.812461122811676, 1e-6);
}

TEST(StudentT, CdfMatchesReferenceAndRoundTrips) {
  EXPECT_DOUBLE_EQ(student_t_cdf(0.0, 7), 0.5);
  EXPECT_NEAR(student_t_cdf(2.364624251592785, 7), 0.975, 1e-10);
  EXPECT_NEAR(student_t_cdf(-2.364624251592785, 7), 0.025, 1e-10);
  for (std::uint64_t dof : {3ull, 7ull, 15ull, 50ull}) {
    for (double p : {0.01, 0.2, 0.5, 0.9, 0.975, 0.999}) {
      EXPECT_NEAR(student_t_cdf(student_t_quantile(p, dof), dof), p, 1e-10)
          << "dof=" << dof << " p=" << p;
    }
  }
}

TEST(StudentT, ConvergesToNormal) {
  EXPECT_NEAR(student_t_quantile(0.975, 100000), normal_quantile(0.975), 1e-3);
}

TEST(StudentT, SymmetricAroundHalf) {
  EXPECT_NEAR(student_t_quantile(0.3, 7), -student_t_quantile(0.7, 7), 1e-9);
}

TEST(ConfidenceIntervalTest, ZeroVarianceGivesZeroWidth) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.add(4.0);
  const auto ci = mean_confidence_interval(s);
  EXPECT_EQ(ci.mean, 4.0);
  EXPECT_EQ(ci.half_width, 0.0);
  EXPECT_EQ(ci.relative_half_width(), 0.0);
}

TEST(ConfidenceIntervalTest, MatchesHandComputedT) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  const auto ci = mean_confidence_interval(s, 0.95);
  // mean 3, sd sqrt(2.5), se sqrt(0.5), t_{0.975,4} = 2.7764.
  EXPECT_NEAR(ci.mean, 3.0, 1e-12);
  EXPECT_NEAR(ci.half_width, 2.7764 * std::sqrt(0.5), 5e-3);
  EXPECT_NEAR(ci.lo(), ci.mean - ci.half_width, 1e-12);
  EXPECT_NEAR(ci.hi(), ci.mean + ci.half_width, 1e-12);
}

TEST(ConfidenceIntervalTest, SingleObservationIsInfinite) {
  RunningStats s;
  s.add(1.0);
  const auto ci = mean_confidence_interval(s);
  EXPECT_TRUE(std::isinf(ci.half_width));
}

TEST(ConfidenceIntervalTest, WidthShrinksWithMoreData) {
  RunningStats small;
  RunningStats big;
  for (int i = 0; i < 2000; ++i) {
    const double x = (i % 2 == 0) ? 1.0 : 2.0;
    if (i < 20) small.add(x);
    big.add(x);
  }
  EXPECT_LT(mean_confidence_interval(big).half_width,
            mean_confidence_interval(small).half_width);
}

TEST(QuantileSorted, Endpoints) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(quantile_sorted(xs, 0.0), 1.0);
  EXPECT_EQ(quantile_sorted(xs, 1.0), 4.0);
}

TEST(QuantileSorted, LinearInterpolation) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_NEAR(quantile_sorted(xs, 0.25), 2.5, 1e-12);
  EXPECT_NEAR(quantile_sorted(xs, 0.5), 5.0, 1e-12);
}

TEST(QuantileSorted, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_EQ(quantile_sorted(xs, 0.5), 7.0);
}

TEST(Quantiles, SortsInput) {
  const std::vector<double> probs = {0.0, 0.5, 1.0};
  const auto qs = quantiles({3.0, 1.0, 2.0}, probs);
  ASSERT_EQ(qs.size(), 3u);
  EXPECT_EQ(qs[0], 1.0);
  EXPECT_EQ(qs[1], 2.0);
  EXPECT_EQ(qs[2], 3.0);
}

}  // namespace
}  // namespace manywalks
