#include "core/experiments.hpp"

#include <gtest/gtest.h>

namespace manywalks {
namespace {

ExperimentOptions quick_options(std::uint64_t trials) {
  ExperimentOptions options;
  options.mc.min_trials = trials;
  options.mc.max_trials = trials;
  options.mc.seed = 33;
  options.mixing_cap = 100'000;
  return options;
}

TEST(Table1Experiment, RowIsFullyPopulated) {
  const FamilyInstance inst = make_family_instance(GraphFamily::kComplete, 64);
  const std::vector<unsigned> ks = {2, 4};
  const Table1Row row = run_table1_row(inst, ks, quick_options(200));
  EXPECT_EQ(row.name, inst.name);
  EXPECT_EQ(row.n, 64u);
  EXPECT_GT(row.m, 0u);
  EXPECT_GT(row.profile.cover.ci.mean, 0.0);
  EXPECT_GT(row.profile.h_max.value, 0.0);
  EXPECT_TRUE(row.profile.mixing.converged);
  ASSERT_EQ(row.speedups.size(), 2u);
  EXPECT_EQ(row.speedups[0].k, 2u);
  EXPECT_EQ(row.speedups[1].k, 4u);
  EXPECT_GT(row.speedups[1].speedup, row.speedups[0].speedup * 0.9);
}

TEST(Table1Experiment, RenderContainsFamilyAndColumns) {
  const FamilyInstance inst = make_family_instance(GraphFamily::kCycle, 33);
  const std::vector<unsigned> ks = {2};
  const Table1Row row = run_table1_row(inst, ks, quick_options(100));
  const TextTable table = render_table1(std::vector<Table1Row>{row}, ks);
  const std::string text = table.str();
  EXPECT_NE(text.find("cycle"), std::string::npos);
  EXPECT_NE(text.find("S^2"), std::string::npos);
  EXPECT_NE(text.find("t_mix"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(SpeedupCurveExperiment, PointsOrderedAsRequested) {
  const FamilyInstance inst = make_family_instance(GraphFamily::kCycle, 21);
  const std::vector<unsigned> ks = {1, 2, 8};
  const auto result = run_speedup_curve(inst, ks, quick_options(200));
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_EQ(result.points[0].k, 1u);
  EXPECT_EQ(result.points[2].k, 8u);
  EXPECT_GT(result.single.ci.mean, 0.0);
}

TEST(SpeedupCurveExperiment, RenderWithReference) {
  const FamilyInstance inst = make_family_instance(GraphFamily::kComplete, 32);
  const std::vector<unsigned> ks = {2, 4};
  const auto result = run_speedup_curve(inst, ks, quick_options(150));
  const TextTable table =
      render_speedup_curve(result, "k (linear ref)", {2.0, 4.0});
  const std::string text = table.str();
  EXPECT_NE(text.find("k (linear ref)"), std::string::npos);
  EXPECT_NE(text.find("S^k"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(SpeedupCurveExperiment, RenderWithoutReference) {
  const FamilyInstance inst = make_family_instance(GraphFamily::kComplete, 32);
  const std::vector<unsigned> ks = {2};
  const auto result = run_speedup_curve(inst, ks, quick_options(100));
  const TextTable table = render_speedup_curve(result, "", {});
  EXPECT_EQ(table.num_columns(), 3u);
}

TEST(SpeedupCurveExperiment, ReferenceSizeMismatchThrows) {
  const FamilyInstance inst = make_family_instance(GraphFamily::kComplete, 32);
  const std::vector<unsigned> ks = {2};
  const auto result = run_speedup_curve(inst, ks, quick_options(100));
  EXPECT_THROW(render_speedup_curve(result, "ref", {1.0, 2.0}),
               std::invalid_argument);
}

TEST(BarbellExperiment, ProducesPointPerSize) {
  const std::vector<Vertex> ns = {31, 61};
  const auto result = run_barbell_experiment(ns, 3.0, quick_options(100));
  ASSERT_EQ(result.points.size(), 2u);
  for (const auto& p : result.points) {
    EXPECT_GT(p.k, 2u);
    EXPECT_GT(p.single.ci.mean, 0.0);
    EXPECT_GT(p.speedup, 1.0);
  }
  // Larger barbells have larger speed-up at k = Θ(log n).
  EXPECT_GT(result.points[1].speedup, result.points[0].speedup);
}

TEST(BarbellExperiment, RenderSmokes) {
  const std::vector<Vertex> ns = {31};
  const auto result = run_barbell_experiment(ns, 3.0, quick_options(60));
  const std::string text = render_barbell(result).str();
  EXPECT_NE(text.find("C^k/n"), std::string::npos);
  EXPECT_NE(text.find("31"), std::string::npos);
}

TEST(Experiments, DeterministicWithSameSeed) {
  const FamilyInstance inst = make_family_instance(GraphFamily::kCycle, 15);
  const std::vector<unsigned> ks = {2};
  const auto a = run_speedup_curve(inst, ks, quick_options(100));
  const auto b = run_speedup_curve(inst, ks, quick_options(100));
  EXPECT_DOUBLE_EQ(a.points[0].speedup, b.points[0].speedup);
}

}  // namespace
}  // namespace manywalks
