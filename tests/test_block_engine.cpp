// Out-of-core block-scheduled walking (determinism contract v4): mwg v2
// round-trips and index validation, BlockedGraph/ExtentCache mechanics,
// and — the heart of the contract — bit-identity of BlockWalkEngine
// against the in-core lane engine at every budget, on cover runs,
// fixed-round runs, chunked runs, lazy walks, and through the blocked
// Monte-Carlo estimators.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/families.hpp"
#include "graph/generators.hpp"
#include "mc/estimators.hpp"
#include "storage/block_store.hpp"
#include "storage/mapped_graph.hpp"
#include "storage/mwg.hpp"
#include "walk/block_engine.hpp"
#include "walk/engine.hpp"
#include "walk/walker_buckets.hpp"

namespace manywalks {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("manywalks_test_block_" + name))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CoverOptions lane_options() {
  CoverOptions options;
  options.rng_mode = RngMode::kLane;
  return options;
}

// --- mwg v2 format -----------------------------------------------------------

TEST(MwgV2, RoundTripPreservesArraysAndIndex) {
  TempFile file("v2_roundtrip.mwg");
  const Graph g = make_grid_2d(31, GridTopology::kTorus);  // n = 961
  const std::uint32_t bits = 8;  // 4 blocks of 256 vertices
  write_mwg(file.path(), g, bits);

  const MappedGraph mapped(file.path(), MappedGraph::Validate::kDeep);
  EXPECT_EQ(mapped.version(), kMwgVersionBlockIndex);
  ASSERT_TRUE(mapped.has_block_index());
  EXPECT_EQ(mapped.block_bits(), bits);
  ASSERT_EQ(mapped.num_blocks(), mwg_num_blocks(g.num_vertices(), bits));
  EXPECT_EQ(mapped.file_bytes(),
            mwg_file_bytes_v2(g.num_vertices(), g.num_arcs(), bits));

  // The index is derivable from the offsets: check it entry by entry.
  const auto offsets = g.offsets();
  const auto begins = mapped.block_arc_begin();
  const auto max_deg = mapped.block_max_degree();
  ASSERT_EQ(begins.size(), mapped.num_blocks() + 1);
  ASSERT_EQ(max_deg.size(), mapped.num_blocks());
  for (std::uint64_t b = 0; b < mapped.num_blocks(); ++b) {
    EXPECT_EQ(begins[b], offsets[b << bits]);
    Vertex expect_max = 0;
    const Vertex first = static_cast<Vertex>(b << bits);
    const Vertex last =
        std::min<Vertex>(g.num_vertices(), static_cast<Vertex>(first + (Vertex{1} << bits)));
    for (Vertex v = first; v < last; ++v) {
      expect_max = std::max(expect_max, g.degree(v));
    }
    EXPECT_EQ(max_deg[b], expect_max) << "block " << b;
  }
  EXPECT_EQ(begins[mapped.num_blocks()], g.num_arcs());

  // And the CSR arrays are exactly the v1 arrays.
  const auto mo = mapped.offsets();
  for (std::size_t i = 0; i < mo.size(); ++i) ASSERT_EQ(mo[i], offsets[i]);
  const auto gt = g.targets();
  const auto mt = mapped.targets();
  for (std::size_t i = 0; i < mt.size(); ++i) ASSERT_EQ(mt[i], gt[i]);
}

TEST(MwgV2, DefaultLibraryWriteStaysV1) {
  TempFile file("v1_default.mwg");
  write_mwg(file.path(), make_cycle(64));
  const MappedGraph mapped(file.path());
  EXPECT_EQ(mapped.version(), kMwgVersion);
  EXPECT_FALSE(mapped.has_block_index());
  EXPECT_EQ(mapped.num_blocks(), 0u);
}

TEST(MwgV2, BlockedGraphRejectsV1WithUpgradeHint) {
  TempFile file("v1_reject.mwg");
  write_mwg(file.path(), make_cycle(64));
  try {
    const BlockedGraph blocked(file.path());
    FAIL() << "BlockedGraph accepted a v1 file";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("graph convert"),
              std::string::npos)
        << "rejection should tell the user how to upgrade: " << error.what();
  }
}

TEST(MwgV2, CorruptIndexEntryRejected) {
  TempFile file("v2_corrupt.mwg");
  const Graph g = make_grid_2d(31, GridTopology::kTorus);
  write_mwg(file.path(), g, 8);
  // Flip a block_arc_begin entry (the second one) in place.
  {
    std::fstream f(file.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    const std::uint64_t pos =
        mwg_block_index_begin(g.num_vertices(), g.num_arcs()) +
        sizeof(std::uint64_t);
    f.seekp(static_cast<std::streamoff>(pos));
    const std::uint64_t bogus = 7;
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_THROW(MappedGraph{file.path()}, std::invalid_argument);
  EXPECT_THROW(BlockedGraph{file.path()}, std::invalid_argument);
}

TEST(MwgV2, CorruptMaxDegreeRejected) {
  TempFile file("v2_corrupt_deg.mwg");
  const Graph g = make_grid_2d(31, GridTopology::kTorus);
  write_mwg(file.path(), g, 8);
  {
    std::fstream f(file.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    const std::uint64_t blocks = mwg_num_blocks(g.num_vertices(), 8);
    const std::uint64_t pos =
        mwg_block_index_begin(g.num_vertices(), g.num_arcs()) +
        (blocks + 1) * sizeof(std::uint64_t);
    f.seekp(static_cast<std::streamoff>(pos));
    const Vertex bogus = 999;
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_THROW(MappedGraph{file.path()}, std::invalid_argument);
  EXPECT_THROW(BlockedGraph{file.path()}, std::invalid_argument);
}

TEST(MwgV2, TruncatedIndexRejected) {
  TempFile file("v2_trunc.mwg");
  const Graph g = make_grid_2d(31, GridTopology::kTorus);
  write_mwg(file.path(), g, 8);
  std::filesystem::resize_file(
      file.path(),
      mwg_file_bytes_v2(g.num_vertices(), g.num_arcs(), 8) - 4);
  EXPECT_THROW(MappedGraph{file.path()}, std::invalid_argument);
  EXPECT_THROW(BlockedGraph{file.path()}, std::invalid_argument);
}

TEST(MwgV2, BadBlockBitsRejected) {
  TempFile file("v2_badbits.mwg");
  const Graph g = make_cycle(64);
  write_mwg(file.path(), g, 4);
  {
    // reserved[0] (block_bits) sits at byte 48 of the header.
    std::fstream f(file.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(48);
    const std::uint64_t bogus = 0;  // version 2 with block_bits 0
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_THROW(MappedGraph{file.path()}, std::invalid_argument);
}

TEST(MwgV2, DefaultBlockBitsPolicy) {
  EXPECT_EQ(mwg_default_block_bits(0), 12u);
  EXPECT_EQ(mwg_default_block_bits(4096), 12u);
  EXPECT_EQ(mwg_default_block_bits(1024 * 4096), 12u);
  EXPECT_EQ(mwg_default_block_bits(1024 * 4096 + 1), 13u);
  // Never exceeds the format cap, however big n gets.
  EXPECT_LE(mwg_default_block_bits(~std::uint64_t{0}), kMwgMaxBlockBits);
}

// --- BlockedGraph / ExtentCache ---------------------------------------------

TEST(BlockedGraph, GeometryMatchesMappedGraph) {
  TempFile file("geometry.mwg");
  const Graph g = make_margulis_expander(16);  // n = 256, 8-regular
  write_mwg(file.path(), g, 6);                // 4 blocks of 64 vertices
  const BlockedGraph blocked(file.path());
  const MappedGraph mapped(file.path());
  ASSERT_EQ(blocked.num_vertices(), mapped.num_vertices());
  ASSERT_EQ(blocked.num_arcs(), mapped.num_arcs());
  ASSERT_EQ(blocked.num_blocks(), mapped.num_blocks());
  for (Vertex v = 0; v < blocked.num_vertices(); ++v) {
    ASSERT_EQ(blocked.degree(v), mapped.degree(v));
  }
  for (std::uint64_t b = 0; b < blocked.num_blocks(); ++b) {
    EXPECT_EQ(blocked.block_arc_begin(b), mapped.block_arc_begin()[b]);
    EXPECT_EQ(blocked.block_max_degree(b), mapped.block_max_degree()[b]);
    EXPECT_EQ(blocked.block_of(blocked.block_first_vertex(b)), b);
  }
  // An extent read through the cache sees the same bytes as the full map.
  ExtentCache cache(blocked, 1 << 20);
  for (std::uint64_t b = 0; b < blocked.num_blocks(); ++b) {
    const std::byte* raw =
        cache.acquire(blocked.block_byte_begin(b), blocked.block_byte_end(b));
    const auto* arcs = reinterpret_cast<const Vertex*>(raw);
    const std::uint64_t arc0 = blocked.block_arc_begin(b);
    const std::uint64_t arc1 = blocked.block_arc_begin(b + 1);
    for (std::uint64_t a = arc0; a < arc1; ++a) {
      ASSERT_EQ(arcs[a - arc0], mapped.targets()[a]);
    }
  }
}

TEST(ExtentCache, LruAccountingAndEviction) {
  TempFile file("cache.mwg");
  const Graph g = make_margulis_expander(16);  // 2048 arcs, 8 KiB targets
  write_mwg(file.path(), g, 6);                // 4 blocks of 2 KiB extents
  const BlockedGraph blocked(file.path());
  const std::uint64_t extent = blocked.block_byte_end(0) -
                               blocked.block_byte_begin(0);  // 2 KiB, regular

  // Budget for exactly two extents: the third load evicts the oldest.
  ExtentCache cache(blocked, 2 * extent);
  auto get = [&](std::uint64_t b) {
    return cache.acquire(blocked.block_byte_begin(b),
                         blocked.block_byte_end(b));
  };
  get(0);
  get(1);
  EXPECT_EQ(cache.stats().loads, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  get(0);  // hit, refreshes LRU position
  EXPECT_EQ(cache.stats().hits, 1u);
  get(2);  // evicts block 1 (block 0 was refreshed)
  EXPECT_EQ(cache.stats().evictions, 1u);
  get(0);  // still resident
  EXPECT_EQ(cache.stats().hits, 2u);
  get(1);  // reload
  EXPECT_EQ(cache.stats().loads, 4u);
  EXPECT_LE(cache.stats().resident_bytes, 2 * extent);
  EXPECT_EQ(cache.stats().peak_resident_bytes, 2 * extent);
}

TEST(ExtentCache, OversizedExtentStaysResident) {
  TempFile file("cache_big.mwg");
  const Graph g = make_margulis_expander(16);
  write_mwg(file.path(), g, 6);
  const BlockedGraph blocked(file.path());
  // Budget of 1 byte: every extent exceeds it, yet each acquire must
  // still serve a live mapping (the newest extent never self-evicts).
  ExtentCache cache(blocked, 1);
  for (std::uint64_t b = 0; b < blocked.num_blocks(); ++b) {
    const std::byte* raw =
        cache.acquire(blocked.block_byte_begin(b), blocked.block_byte_end(b));
    ASSERT_NE(raw, nullptr);
  }
  EXPECT_EQ(cache.stats().loads, blocked.num_blocks());
  EXPECT_EQ(cache.stats().evictions, blocked.num_blocks() - 1);
}

TEST(WalkerBuckets, StableAscendingOrder) {
  // Tokens across 3 of 4 blocks (bits = 2, 4 vertices per block); lanes
  // with no rounds left are skipped entirely.
  const std::vector<Vertex> tokens = {13, 2, 5, 1, 13, 6};
  const std::vector<std::uint32_t> rounds = {1, 1, 1, 0, 2, 3};
  WalkerBuckets buckets;
  buckets.rebuild(tokens, rounds, /*block_bits=*/2, /*num_blocks=*/4);
  const auto touched = buckets.touched_blocks();
  ASSERT_EQ(touched.size(), 3u);
  EXPECT_EQ(touched[0], 0u);  // vertex 2 (lane 1); lane 3 is spent
  EXPECT_EQ(touched[1], 1u);  // vertices 5, 6
  EXPECT_EQ(touched[2], 3u);  // vertex 13 twice
  const auto b0 = buckets.lanes_in(0);
  ASSERT_EQ(b0.size(), 1u);
  EXPECT_EQ(b0[0], 1u);
  const auto b1 = buckets.lanes_in(1);
  ASSERT_EQ(b1.size(), 2u);
  EXPECT_EQ(b1[0], 2u);
  EXPECT_EQ(b1[1], 5u);
  const auto b3 = buckets.lanes_in(3);
  ASSERT_EQ(b3.size(), 2u);
  EXPECT_EQ(b3[0], 0u);
  EXPECT_EQ(b3[1], 4u);
  EXPECT_EQ(buckets.active_lanes(), 5u);
}

// --- the v4 contract: out-of-core == in-core, bit for bit --------------------

struct Instance {
  const char* name;
  Graph graph;
  std::uint32_t block_bits;
};

std::vector<Instance> contract_instances() {
  std::vector<Instance> instances;
  instances.push_back({"torus31", make_grid_2d(31, GridTopology::kTorus), 7});
  instances.push_back({"margulis16", make_margulis_expander(16), 5});
  instances.push_back({"cycle1000", make_cycle(1001), 8});
  return instances;
}

/// Budgets spanning the cache regimes: thrash (every extent oversized),
/// partial residency, and everything-resident. Contract v4 says the walk
/// results cannot depend on which one is used.
const std::uint64_t kBudgets[] = {1, 4096, 1ull << 30};

void expect_same_end_state(const WalkEngine& in_core,
                           const BlockWalkEngine& blocked) {
  ASSERT_EQ(in_core.num_visited(), blocked.num_visited());
  const auto a = in_core.tokens();
  const auto b = blocked.tokens();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  for (Vertex v = 0; v < in_core.num_visited(); ++v) {
    ASSERT_EQ(in_core.visited(v), blocked.visited(v)) << "vertex " << v;
  }
}

TEST(BlockEngineContract, CoverBitIdenticalAtEveryBudget) {
  for (auto& [name, graph, bits] : contract_instances()) {
    SCOPED_TRACE(name);
    TempFile file(std::string("cover_") + name + ".mwg");
    write_mwg(file.path(), graph, bits);
    const BlockedGraph blocked(file.path());
    WalkEngine in_core(graph);
    const auto target = static_cast<Vertex>(graph.num_vertices() * 9 / 10);
    for (unsigned k : {1u, 8u, 64u}) {
      const std::vector<Vertex> starts(k, 0);
      for (std::uint64_t trial = 0; trial < 4; ++trial) {
        Rng rng_a = make_trial_rng(0xb10cULL, trial);
        in_core.reset(starts);
        const CoverSample expect =
            in_core.run_until_visited(target, rng_a, lane_options());
        for (const std::uint64_t budget : kBudgets) {
          BlockWalkEngine engine(blocked, budget);
          Rng rng_b = make_trial_rng(0xb10cULL, trial);
          engine.reset(starts);
          const CoverSample got =
              engine.run_until_visited(target, rng_b, lane_options());
          ASSERT_EQ(expect.steps, got.steps)
              << "k=" << k << " trial=" << trial << " budget=" << budget;
          ASSERT_EQ(expect.covered, got.covered);
          ASSERT_EQ(rng_a.state(), rng_b.state())
              << "master RNG must advance identically";
          expect_same_end_state(in_core, engine);
        }
      }
    }
  }
}

TEST(BlockEngineContract, StepCapTruncation) {
  // Caps below, at, just past, and beyond one horizon: sample.steps and
  // the end state must match the in-core run under the same cap.
  const Graph graph = make_grid_2d(31, GridTopology::kTorus);
  TempFile file("cap.mwg");
  write_mwg(file.path(), graph, 7);
  const BlockedGraph blocked(file.path());
  WalkEngine in_core(graph);
  const std::vector<Vertex> starts(8, 0);
  for (const std::uint64_t cap : {0ull, 3ull, 64ull, 65ull, 100ull}) {
    SCOPED_TRACE(cap);
    CoverOptions options = lane_options();
    options.step_cap = cap;
    Rng rng_a(99);
    in_core.reset(starts);
    const CoverSample expect =
        in_core.run_until_visited(graph.num_vertices(), rng_a, options);
    BlockWalkEngine engine(blocked, 4096);
    Rng rng_b(99);
    engine.reset(starts);
    const CoverSample got =
        engine.run_until_visited(graph.num_vertices(), rng_b, options);
    EXPECT_EQ(expect.steps, got.steps);
    EXPECT_EQ(expect.covered, got.covered);
    expect_same_end_state(in_core, engine);
  }
}

TEST(BlockEngineContract, TargetHitMidHorizon) {
  // A tiny target is covered in the first few rounds — inside the first
  // asynchronous horizon — so the replay path must recover the exact
  // covering round.
  const Graph graph = make_margulis_expander(16);
  TempFile file("midblock.mwg");
  write_mwg(file.path(), graph, 5);
  const BlockedGraph blocked(file.path());
  WalkEngine in_core(graph);
  const std::vector<Vertex> starts(4, 0);
  for (Vertex target = 5; target <= 45; target += 10) {
    SCOPED_TRACE(target);
    Rng rng_a(7);
    in_core.reset(starts);
    const CoverSample expect =
        in_core.run_until_visited(target, rng_a, lane_options());
    BlockWalkEngine engine(blocked, 1 << 20);
    Rng rng_b(7);
    engine.reset(starts);
    const CoverSample got =
        engine.run_until_visited(target, rng_b, lane_options());
    EXPECT_EQ(expect.steps, got.steps);
    EXPECT_EQ(expect.covered, got.covered);
    EXPECT_LT(got.steps, kBlockHorizon) << "test wants a mid-horizon hit";
  }
}

TEST(BlockEngineContract, BlockBoundaryStarts) {
  // Walkers starting on the first and last vertex of each block — the
  // bucketing corner where off-by-one block assignment would show.
  const Graph graph = make_grid_2d(31, GridTopology::kTorus);
  TempFile file("boundary.mwg");
  write_mwg(file.path(), graph, 7);  // 128-vertex blocks, n = 961
  const BlockedGraph blocked(file.path());
  std::vector<Vertex> starts;
  for (std::uint64_t b = 0; b < blocked.num_blocks(); ++b) {
    const Vertex first = blocked.block_first_vertex(b);
    const Vertex last = std::min<Vertex>(
        graph.num_vertices() - 1,
        static_cast<Vertex>(first + (Vertex{1} << 7) - 1));
    starts.push_back(first);
    starts.push_back(last);
  }
  WalkEngine in_core(graph);
  Rng rng_a(3);
  in_core.reset(starts);
  in_core.run_for_steps(200, rng_a, 0.0, nullptr, RngMode::kLane);
  BlockWalkEngine engine(blocked, 4096);
  Rng rng_b(3);
  engine.reset(starts);
  engine.run_for_steps(200, rng_b);
  expect_same_end_state(in_core, engine);
}

TEST(BlockEngineContract, RunForStepsChunkingEquivalent) {
  const Graph graph = make_margulis_expander(16);
  TempFile file("chunks.mwg");
  write_mwg(file.path(), graph, 5);
  const BlockedGraph blocked(file.path());
  const std::vector<Vertex> starts(16, 3);

  BlockWalkEngine combined(blocked, 1 << 16);
  Rng rng_a(11);
  combined.reset(starts);
  combined.run_for_steps(100, rng_a);

  BlockWalkEngine chunked(blocked, 1 << 16);
  Rng rng_b(11);
  chunked.reset(starts);
  chunked.run_for_steps(1, rng_b);
  chunked.run_for_steps(63, rng_b);
  chunked.run_for_steps(0, rng_b);  // no-op, consumes no draws
  chunked.run_for_steps(36, rng_b);

  ASSERT_EQ(combined.num_visited(), chunked.num_visited());
  const auto a = combined.tokens();
  const auto b = chunked.tokens();
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  EXPECT_EQ(rng_a.state(), rng_b.state());
}

TEST(BlockEngineContract, LazyWalkBitIdentical) {
  const Graph graph = make_grid_2d(31, GridTopology::kTorus);
  TempFile file("lazy.mwg");
  write_mwg(file.path(), graph, 7);
  const BlockedGraph blocked(file.path());
  WalkEngine in_core(graph);
  const std::vector<Vertex> starts(8, 0);
  CoverOptions options = lane_options();
  options.laziness = 0.3;
  options.step_cap = 500;
  Rng rng_a(21);
  in_core.reset(starts);
  const CoverSample expect =
      in_core.run_until_visited(graph.num_vertices(), rng_a, options);
  BlockWalkEngine engine(blocked, 4096);
  Rng rng_b(21);
  engine.reset(starts);
  const CoverSample got =
      engine.run_until_visited(graph.num_vertices(), rng_b, options);
  EXPECT_EQ(expect.steps, got.steps);
  EXPECT_EQ(expect.covered, got.covered);
  expect_same_end_state(in_core, engine);
}

TEST(BlockEngineContract, SharedLegacyModeRejected) {
  const Graph graph = make_cycle(64);
  TempFile file("legacy.mwg");
  write_mwg(file.path(), graph, 4);
  const BlockedGraph blocked(file.path());
  BlockWalkEngine engine(blocked, 4096);
  engine.reset(std::vector<Vertex>{0});
  Rng rng(1);
  CoverOptions options;
  options.rng_mode = RngMode::kSharedLegacy;
  EXPECT_THROW(engine.run_until_visited(10, rng, options),
               std::invalid_argument);
}

// --- blocked estimators ------------------------------------------------------

TEST(BlockedEstimators, CoverEstimateMatchesInCore) {
  const Graph graph = make_margulis_expander(16);
  TempFile file("est_cover.mwg");
  write_mwg(file.path(), graph, 5);
  const BlockedGraph blocked(file.path());

  McOptions mc;
  mc.min_trials = 8;
  mc.max_trials = 12;
  mc.seed = 0xabcdULL;
  const McResult expect = estimate_k_cover_time(
      graph, /*start=*/0, /*k=*/8, mc, lane_options(), nullptr);

  BlockWalkEngine engine(blocked, 4096);
  const McResult got = estimate_cover_to_target_blocked(
      engine, /*start=*/0, /*k=*/8, graph.num_vertices(), mc, lane_options());
  EXPECT_EQ(expect.ci.count, got.ci.count);
  EXPECT_EQ(expect.ci.mean, got.ci.mean);
  EXPECT_EQ(expect.ci.half_width, got.ci.half_width);
  EXPECT_EQ(expect.censored, got.censored);
}

TEST(BlockedEstimators, SpeedupCurveMatchesInCore) {
  const Graph graph = make_margulis_expander(16);
  TempFile file("est_curve.mwg");
  write_mwg(file.path(), graph, 5);
  const BlockedGraph blocked(file.path());
  const CsrSubstrate substrate(graph);
  const auto target = static_cast<Vertex>(graph.num_vertices() * 9 / 10);
  const std::vector<unsigned> ks = {1, 2, 4, 8};

  McOptions mc;
  mc.min_trials = 8;
  mc.max_trials = 8;
  mc.seed = 0x5eedULL;
  const auto expect = estimate_speedup_curve_to_target(
      substrate, 0, target, ks, mc, lane_options(), nullptr);

  BlockWalkEngine engine(blocked, 1 << 14);
  const auto got = estimate_speedup_curve_to_target_blocked(
      engine, 0, target, ks, mc, lane_options());
  ASSERT_EQ(expect.size(), got.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    SCOPED_TRACE(ks[i]);
    EXPECT_EQ(expect[i].k, got[i].k);
    EXPECT_EQ(expect[i].multi.ci.mean, got[i].multi.ci.mean);
    EXPECT_EQ(expect[i].speedup, got[i].speedup);
    EXPECT_EQ(expect[i].half_width, got[i].half_width);
  }
}

}  // namespace
}  // namespace manywalks
