// The lane-RNG layer of determinism contract v2 (util/rng.hpp LaneRngs /
// make_lane_rng / uniform_below_wide / lane_neighbor_index, and the walk
// engine's RngMode::kLane kernels):
//   * lane streams are deterministic, pairwise distinct across 10^4 lanes,
//     and never alias trial streams;
//   * the full-word Lemire draw and the pow2 mask draw are in-range and
//     pass chi-square uniformity;
//   * lane mode is pinned by goldens, bit-identical between CSR and
//     CSR-ordered implicit engines, chunk-consistent, thread-invariant,
//     and statistically indistinguishable from legacy mode (cycle mean
//     within CI of the closed form n(n-1)/2);
//   * legacy mode remains byte-identical to the pre-lane streams (goldens
//     generated from the pre-PR build).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "graph/generators.hpp"
#include "graph/substrate.hpp"
#include "mc/estimators.hpp"
#include "walk/cover.hpp"
#include "walk/engine.hpp"

namespace manywalks {
namespace {

// --- lane stream derivation --------------------------------------------------

TEST(LaneRng, SameInputsSameStream) {
  Rng a = make_lane_rng(42, 7);
  Rng b = make_lane_rng(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(LaneRng, TenThousandLanesNoPairwiseStateCollisions) {
  constexpr std::size_t kLanes = 10'000;
  LaneRngs lanes;
  lanes.reseed(0xfeedULL, kLanes);
  ASSERT_EQ(lanes.size(), kLanes);
  std::set<std::array<std::uint64_t, 4>> states;
  for (std::size_t i = 0; i < kLanes; ++i) {
    states.insert(lanes[i].state());
  }
  EXPECT_EQ(states.size(), kLanes);  // all 256-bit states distinct
}

TEST(LaneRng, LaneStreamsNeverAliasTrialStreams) {
  // The additive salt separates the two derivations: the same 64-bit
  // (seed, index) pair must yield different streams.
  for (std::uint64_t i = 0; i < 256; ++i) {
    Rng lane = make_lane_rng(5, i);
    Rng trial = make_trial_rng(5, i);
    EXPECT_NE(lane.state(), trial.state()) << i;
  }
}

TEST(LaneRng, ReseedReplacesAllLanes) {
  LaneRngs lanes;
  lanes.reseed(1, 4);
  const auto before = lanes[2].state();
  lanes.reseed(2, 4);
  EXPECT_NE(lanes[2].state(), before);
  lanes.reseed(1, 4);
  EXPECT_EQ(lanes[2].state(), before);
}

// --- full-word Lemire + mask draws -------------------------------------------

TEST(UniformBelowWide, RespectsBound) {
  Rng rng(11);
  for (std::uint32_t bound : {1u, 2u, 3u, 7u, 100u, 100'000'000u, 1u << 30}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_below_wide(bound), bound);
    }
  }
}

TEST(UniformBelowWide, BoundOneIsAlwaysZeroWithOneDraw) {
  Rng rng(11);
  Rng shadow(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_below_wide(1), 0u);
    shadow.next();
  }
  EXPECT_EQ(rng.state(), shadow.state());  // exactly one word per draw
}

TEST(UniformBelowWide, IsRoughlyUniform) {
  Rng rng(13);
  constexpr std::uint32_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform_below_wide(kBuckets)];
  // Chi-square with 9 dof: 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(LaneNeighborIndex, Pow2DegreeIsMaskOfOneWord) {
  Rng rng(17);
  Rng shadow(17);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t draw = lane_neighbor_index(rng, 8);
    const auto expected = static_cast<std::uint32_t>(shadow.next()) & 7u;
    EXPECT_EQ(draw, expected);
  }
  EXPECT_EQ(rng.state(), shadow.state());
}

TEST(LaneNeighborIndex, ChiSquareUniformMaskAndWidePaths) {
  // degree 4 exercises the mask path, degree 7 the full-word Lemire path.
  for (std::uint32_t degree : {4u, 7u}) {
    SCOPED_TRACE(degree);
    Rng rng(19);
    constexpr int kSamples = 140000;
    std::vector<int> counts(degree, 0);
    for (int i = 0; i < kSamples; ++i) ++counts[lane_neighbor_index(rng, degree)];
    double chi2 = 0.0;
    const double expected = static_cast<double>(kSamples) / degree;
    for (int c : counts) {
      const double d = c - expected;
      chi2 += d * d / expected;
    }
    // 99.9th percentile: dof 3 ~ 16.3, dof 6 ~ 22.5.
    EXPECT_LT(chi2, degree == 4 ? 16.3 : 22.5);
  }
}

// --- substrate fast-path advertisements --------------------------------------

TEST(SubstrateTraits, RegularStrideDetectsRegularCsrGraphs) {
  const Graph cycle = make_cycle(16);
  EXPECT_EQ(CsrSubstrate(cycle).regular_stride(), 2u);
  const Graph expander = make_margulis_expander(8);
  EXPECT_EQ(CsrSubstrate(expander).regular_stride(), 8u);
  const Graph star = make_star(5);  // hub degree 4, leaves degree 1
  EXPECT_EQ(CsrSubstrate(star).regular_stride(), 0u);
}

// --- lane-mode engine goldens ------------------------------------------------

constexpr CoverOptions legacy_cover_options() {
  CoverOptions options;
  options.rng_mode = RngMode::kSharedLegacy;
  return options;
}

TEST(LaneMode, GoldenSamplesPinned) {
  // Fixed-seed lane-mode samples; any change to the lane derivation, the
  // draw policies, or the kernel's draw ORDER shows up here first.
  const CycleSubstrate sub64(64);
  const std::uint64_t expected_k3[6] = {683, 1227, 1594, 253, 1655, 619};
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng = make_trial_rng(0xfacadeULL, trial);
    EXPECT_EQ(sample_k_cover_time(sub64, 0, 3, rng).steps,
              expected_k3[trial])
        << trial;
  }
  const CycleSubstrate sub96(96);
  const std::uint64_t expected_target[6] = {398, 186, 497, 136, 322, 343};
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng = make_trial_rng(0xfacadeULL, trial);
    const std::vector<Vertex> starts(4, 0);
    EXPECT_EQ(sample_cover_to_target(sub96, starts, 48, rng).steps,
              expected_target[trial])
        << trial;
  }
}

TEST(LegacyMode, GoldenSamplesByteIdenticalToPrePrStreams) {
  // Values generated with the pre-lane build (PR 3 head): the raw engine's
  // default options and an explicit kSharedLegacy must keep reproducing
  // them forever.
  const Graph g = make_cycle(64);
  WalkEngine engine(g);
  const std::uint64_t expected_k1[6] = {1360, 3617, 1786, 1944, 1700, 4686};
  const std::uint64_t expected_k3[6] = {1196, 689, 260, 755, 398, 692};
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    for (unsigned k : {1u, 3u}) {
      const std::vector<Vertex> starts(k, 0);
      Rng rng = make_trial_rng(0xfacadeULL, trial);
      engine.reset(starts);
      const CoverSample sample =
          engine.run_until_visited(g.num_vertices(), rng);  // default = legacy
      EXPECT_EQ(sample.steps,
                (k == 1 ? expected_k1 : expected_k3)[trial])
          << "k=" << k << " trial=" << trial;
    }
  }
  // The substrate SAMPLER defaults to lane now, so legacy there needs the
  // explicit mode — under which it still matches the pre-PR sampler.
  const CycleSubstrate sub96(96);
  const std::uint64_t expected_sub[6] = {350, 234, 321, 214, 337, 275};
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng = make_trial_rng(0xfacadeULL, trial);
    const std::vector<Vertex> starts(4, 0);
    EXPECT_EQ(sample_cover_to_target(sub96, starts, 48, rng,
                                     legacy_cover_options())
                  .steps,
              expected_sub[trial])
        << trial;
  }
}

// --- lane-mode structural contracts ------------------------------------------

TEST(LaneMode, CsrEngineBitIdenticalToImplicitEngine) {
  // lane_neighbor_index is a pure function of (lane stream, degree), so the
  // CSR and implicit engines of a CSR-ordered family consume identical
  // draws in lane mode too — stride fast path, mask fast path and all.
  const CoverOptions lane = lane_cover_options();
  {
    const Vertex n = 96;
    const Graph g = make_cycle(n);
    WalkEngine csr(g);
    WalkEngineT<CycleSubstrate> impl{CycleSubstrate(n)};
    for (unsigned k : {1u, 3u, 16u}) {
      const std::vector<Vertex> starts(k, 0);
      for (std::uint64_t trial = 0; trial < 16; ++trial) {
        Rng rng_a = make_trial_rng(0xabcdULL, trial);
        Rng rng_b = make_trial_rng(0xabcdULL, trial);
        csr.reset(starts);
        impl.reset(starts);
        const CoverSample a = csr.run_until_visited(n, rng_a, lane);
        const CoverSample b = impl.run_until_visited(n, rng_b, lane);
        ASSERT_EQ(a.steps, b.steps) << "k=" << k << " trial=" << trial;
        ASSERT_EQ(rng_a.state(), rng_b.state())
            << "k=" << k << " trial=" << trial;
      }
    }
  }
  {
    const Vertex side = 8;
    const Graph g = make_grid_2d(side);
    WalkEngine csr(g);
    WalkEngineT<TorusSubstrate> impl{TorusSubstrate(side)};
    const std::vector<Vertex> starts(4, 0);
    for (std::uint64_t trial = 0; trial < 12; ++trial) {
      Rng rng_a = make_trial_rng(0x7e57ULL, trial);
      Rng rng_b = make_trial_rng(0x7e57ULL, trial);
      csr.reset(starts);
      impl.reset(starts);
      const CoverSample a = csr.run_until_visited(side * side, rng_a, lane);
      const CoverSample b = impl.run_until_visited(side * side, rng_b, lane);
      ASSERT_EQ(a.steps, b.steps) << trial;
    }
  }
}

TEST(LaneMode, ChunkedRunForStepsMatchesOneRunAndConsumesOneDraw) {
  const TorusSubstrate substrate(8);
  const std::vector<Vertex> starts = {0, 5, 9};
  WalkEngineT<TorusSubstrate> a(substrate);
  WalkEngineT<TorusSubstrate> b(substrate);
  Rng rng_a(7);
  Rng rng_b(7);
  a.reset(starts);
  a.run_for_steps(10, rng_a, 0.0, nullptr, RngMode::kLane);
  a.run_for_steps(6, rng_a, 0.0, nullptr, RngMode::kLane);
  b.reset(starts);
  b.run_for_steps(16, rng_b, 0.0, nullptr, RngMode::kLane);
  EXPECT_EQ(rng_a.state(), rng_b.state());
  ASSERT_EQ(a.tokens().size(), b.tokens().size());
  for (std::size_t i = 0; i < a.tokens().size(); ++i) {
    EXPECT_EQ(a.tokens()[i], b.tokens()[i]);
  }
  EXPECT_EQ(a.num_visited(), b.num_visited());

  // The caller's stream moved by exactly the one lane-master draw.
  Rng reference(7);
  reference.next();
  EXPECT_EQ(rng_b.state(), reference.state());

  // A zero-round call neither seeds lanes nor consumes anything.
  WalkEngineT<TorusSubstrate> c(substrate);
  Rng rng_c(7);
  c.reset(starts);
  c.run_for_steps(0, rng_c, 0.0, nullptr, RngMode::kLane);
  EXPECT_EQ(rng_c.state(), Rng(7).state());
  c.run_for_steps(16, rng_c, 0.0, nullptr, RngMode::kLane);
  for (std::size_t i = 0; i < c.tokens().size(); ++i) {
    EXPECT_EQ(c.tokens()[i], b.tokens()[i]);
  }
}

TEST(LaneMode, RunForStepsAgreesWithRunUntilVisitedSchedule) {
  // run_for_steps uses the lane-major strip schedule on implicit
  // substrates, run_until_visited the round-major kernel; for the same
  // lane master both must produce the same final tokens and visited set.
  const CycleSubstrate substrate(512);
  const std::vector<Vertex> starts(8, 0);
  WalkEngineT<CycleSubstrate> via_steps(substrate);
  WalkEngineT<CycleSubstrate> via_cover(substrate);
  Rng rng_a(31);
  Rng rng_b(31);
  via_steps.reset(starts);
  via_steps.run_for_steps(200, rng_a, 0.0, nullptr, RngMode::kLane);

  CoverOptions options = lane_cover_options();
  options.step_cap = 200;
  via_cover.reset(starts);
  const CoverSample sample =
      via_cover.run_until_visited(substrate.num_vertices(), rng_b, options);
  EXPECT_FALSE(sample.covered);  // 512-cycle needs far more than 200 rounds
  EXPECT_EQ(rng_a.state(), rng_b.state());
  EXPECT_EQ(via_steps.num_visited(), via_cover.num_visited());
  ASSERT_EQ(via_steps.tokens().size(), via_cover.tokens().size());
  for (std::size_t i = 0; i < via_steps.tokens().size(); ++i) {
    EXPECT_EQ(via_steps.tokens()[i], via_cover.tokens()[i]) << i;
  }
}

TEST(LaneMode, LazyChunksStayConsistent) {
  const CycleSubstrate substrate(64);
  const std::vector<Vertex> starts = {0, 32};
  WalkEngineT<CycleSubstrate> a(substrate);
  WalkEngineT<CycleSubstrate> b(substrate);
  Rng rng_a(3);
  Rng rng_b(3);
  a.reset(starts);
  a.run_for_steps(7, rng_a, 0.25, nullptr, RngMode::kLane);
  a.run_for_steps(9, rng_a, 0.25, nullptr, RngMode::kLane);
  b.reset(starts);
  b.run_for_steps(16, rng_b, 0.25, nullptr, RngMode::kLane);
  for (std::size_t i = 0; i < a.tokens().size(); ++i) {
    EXPECT_EQ(a.tokens()[i], b.tokens()[i]);
  }
}

TEST(LaneMode, BitReproducibleAcrossThreadCounts) {
  const CycleSubstrate substrate(1024);
  McOptions mc;
  mc.min_trials = 12;
  mc.max_trials = 12;
  mc.seed = 99;

  mc.threads = 1;
  const McResult serial =
      estimate_cover_to_target(substrate, 0, 4, /*target=*/256, mc,
                               lane_cover_options());
  mc.threads = 8;
  const McResult parallel =
      estimate_cover_to_target(substrate, 0, 4, /*target=*/256, mc,
                               lane_cover_options());
  EXPECT_DOUBLE_EQ(serial.ci.mean, parallel.ci.mean);
  EXPECT_EQ(serial.stats.count(), parallel.stats.count());
}

TEST(LaneMode, VisitCountsSumToTokenSteps) {
  const Graph g = make_cycle(32);
  WalkEngine engine(g);
  const std::vector<Vertex> starts = {0, 16};
  engine.reset(starts);
  std::vector<std::uint64_t> counts(g.num_vertices(), 0);
  Rng rng(11);
  engine.run_for_steps(100, rng, 0.0, counts.data(), RngMode::kLane);
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  EXPECT_EQ(total, 200u);  // 2 tokens x 100 rounds
}

// --- lane-mode distributions -------------------------------------------------

TEST(LaneMode, CycleCoverMeanWithinCiOfClosedForm) {
  // E[tau] on the n-cycle is exactly n(n-1)/2 for a single walk from any
  // start; the lane-mode sampler's mean must agree within its own CI.
  const Vertex n = 33;
  const double closed_form = 33.0 * 32.0 / 2.0;  // 528
  const CycleSubstrate substrate(n);
  constexpr std::uint64_t kTrials = 3000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    Rng rng = make_trial_rng(0xc10ULL, trial);
    const auto steps =
        static_cast<double>(sample_cover_time(substrate, 0, rng).steps);
    sum += steps;
    sum_sq += steps * steps;
  }
  const double mean = sum / kTrials;
  const double var = (sum_sq - sum * sum / kTrials) / (kTrials - 1);
  const double se = std::sqrt(var / kTrials);
  EXPECT_NEAR(mean, closed_form, 5.0 * se);
}

TEST(LaneMode, CoverDistributionIndistinguishableFromLegacy) {
  // Same family, same trial budget, the two modes' means must agree within
  // combined standard errors (they sample the same distribution from
  // different streams).
  const CycleSubstrate substrate(32);
  constexpr std::uint64_t kTrials = 1500;
  auto run = [&](const CoverOptions& options) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      Rng rng = make_trial_rng(0xd157ULL, trial);
      const auto steps = static_cast<double>(
          sample_k_cover_time(substrate, 0, 4, rng, options).steps);
      sum += steps;
      sum_sq += steps * steps;
    }
    const double mean = sum / kTrials;
    const double var = (sum_sq - sum * sum / kTrials) / (kTrials - 1);
    return std::pair<double, double>(mean, std::sqrt(var / kTrials));
  };
  const auto [lane_mean, lane_se] = run(lane_cover_options());
  const auto [legacy_mean, legacy_se] = run(legacy_cover_options());
  const double combined =
      std::sqrt(lane_se * lane_se + legacy_se * legacy_se);
  EXPECT_NEAR(lane_mean, legacy_mean, 5.0 * combined);
}

TEST(LaneMode, CompleteGraphOccupancyUniform) {
  // K_9 (degree 8: mask path) and K_8 (degree 7: wide path): long-run
  // occupancy of the complete graph is uniform; 2% tolerance at 160k
  // token-steps is ~ 5 sigma.
  for (Vertex n : {9u, 8u}) {
    SCOPED_TRACE(n);
    const CompleteSubstrate substrate(n);
    WalkEngineT<CompleteSubstrate> engine(substrate);
    const std::vector<Vertex> starts(8, 0);
    engine.reset(starts);
    std::vector<std::uint64_t> counts(n, 0);
    Rng rng(5);
    constexpr std::uint64_t kRounds = 20000;
    engine.run_for_steps(kRounds, rng, 0.0, counts.data(), RngMode::kLane);
    const double expected =
        static_cast<double>(8 * kRounds) / static_cast<double>(n);
    for (Vertex v = 0; v < n; ++v) {
      EXPECT_NEAR(static_cast<double>(counts[v]) / expected, 1.0, 0.02)
          << "v=" << v;
    }
  }
}

}  // namespace
}  // namespace manywalks
