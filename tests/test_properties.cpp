#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace manywalks {
namespace {

TEST(BfsDistances, PathDistances) {
  const Graph g = make_path(6);
  const auto dist = bfs_distances(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsDistances, CycleDistancesWrap) {
  const Graph g = make_cycle(8);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[7], 1u);
  EXPECT_EQ(dist[5], 3u);
}

TEST(BfsDistances, DisconnectedIsUnreachable) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(IsConnected, Families) {
  EXPECT_TRUE(is_connected(make_cycle(9)));
  EXPECT_TRUE(is_connected(make_hypercube(3)));
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_FALSE(is_connected(b.build()));
}

TEST(ConnectedComponents, CountsAndSizes) {
  GraphBuilder b(7);
  b.add_edge(0, 1).add_edge(1, 2);     // component of size 3
  b.add_edge(3, 4);                    // size 2
  // 5 and 6 isolated.
  const Graph g = b.build();
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.num_components, 4u);
  EXPECT_EQ(comps.sizes[comps.largest], 3u);
  EXPECT_EQ(comps.component_of[0], comps.component_of[2]);
  EXPECT_NE(comps.component_of[0], comps.component_of[3]);
}

TEST(ExtractLargestComponent, KeepsStructure) {
  GraphBuilder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);  // triangle
  b.add_edge(4, 5);
  const Graph g = b.build();
  const auto sub = extract_largest_component(g);
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  EXPECT_TRUE(is_connected(sub.graph));
  // Mapping roundtrip.
  for (Vertex new_v = 0; new_v < 3; ++new_v) {
    EXPECT_EQ(sub.old_to_new[sub.new_to_old[new_v]], new_v);
  }
  EXPECT_EQ(sub.old_to_new[4], kInvalidVertex);
}

TEST(ExtractLargestComponent, PreservesLoopsAndMultiEdges) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(0, 1).add_edge(1, 1);
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kKeep;
  options.loops = GraphBuilder::LoopPolicy::kKeep;
  const Graph g = b.build(options);
  const auto sub = extract_largest_component(g);
  EXPECT_EQ(sub.graph.num_vertices(), 2u);
  EXPECT_EQ(sub.graph.num_loops(), 1u);
  EXPECT_EQ(sub.graph.edge_multiplicity(0, 1), 2u);
}

TEST(Eccentricity, CycleAndPath) {
  EXPECT_EQ(eccentricity(make_cycle(10), 0), 5u);
  EXPECT_EQ(eccentricity(make_path(10), 0), 9u);
  EXPECT_EQ(eccentricity(make_path(9), 4), 4u);
}

TEST(DiameterExact, KnownValues) {
  EXPECT_EQ(diameter_exact(make_cycle(10)), 5u);
  EXPECT_EQ(diameter_exact(make_cycle(11)), 5u);
  EXPECT_EQ(diameter_exact(make_path(10)), 9u);
  EXPECT_EQ(diameter_exact(make_complete(10)), 1u);
  EXPECT_EQ(diameter_exact(make_hypercube(5)), 5u);
  EXPECT_EQ(diameter_exact(make_grid_2d(4, GridTopology::kOpen)), 6u);
  EXPECT_EQ(diameter_exact(make_grid_2d(5, GridTopology::kTorus)), 4u);
  EXPECT_EQ(diameter_exact(make_star(17)), 2u);
}

TEST(DiameterExact, DisconnectedReturnsSentinel) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_EQ(diameter_exact(b.build()), kUnreachable);
}

TEST(DiameterLowerBound, NeverExceedsExact) {
  Rng rng(4);
  for (const Graph& g : {make_cycle(30), make_path(17), make_hypercube(4)}) {
    const auto exact = diameter_exact(g);
    Rng local = rng;
    EXPECT_LE(diameter_lower_bound(g, local), exact);
  }
}

TEST(DiameterLowerBound, TightOnPath) {
  // Double sweep is exact on trees.
  const Graph g = make_path(40);
  Rng rng(8);
  EXPECT_EQ(diameter_lower_bound(g, rng), 39u);
}

TEST(IsBipartite, KnownFamilies) {
  EXPECT_TRUE(is_bipartite(make_cycle(8)));
  EXPECT_FALSE(is_bipartite(make_cycle(9)));
  EXPECT_TRUE(is_bipartite(make_path(5)));
  EXPECT_TRUE(is_bipartite(make_hypercube(4)));
  EXPECT_TRUE(is_bipartite(make_star(10)));
  EXPECT_FALSE(is_bipartite(make_complete(3)));
  EXPECT_TRUE(is_bipartite(make_complete_bipartite(3, 5)));
  EXPECT_FALSE(is_bipartite(make_barbell(9)));
}

TEST(IsBipartite, SelfLoopBreaksBipartiteness) {
  GraphBuilder b(2);
  b.add_edge(0, 1).add_edge(0, 0);
  GraphBuilder::BuildOptions options;
  options.loops = GraphBuilder::LoopPolicy::kKeep;
  EXPECT_FALSE(is_bipartite(b.build(options)));
}

TEST(DegreeStatsTest, MeanAndRegularity) {
  const auto stats = degree_stats(make_star(5));
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 4u);
  EXPECT_DOUBLE_EQ(stats.mean, 8.0 / 5.0);
  EXPECT_FALSE(stats.regular);
  EXPECT_TRUE(degree_stats(make_cycle(6)).regular);
}

}  // namespace
}  // namespace manywalks
