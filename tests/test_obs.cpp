// The observability layer (ISSUE 10): MetricsRegistry arithmetic and
// snapshots, the thread-scratch drain pipeline under a real worker team
// (the TSan target for the no-atomics design), TraceWriter document
// structure, ProgressReporter heartbeat lines, and — the load-bearing
// contract — byte-identity goldens proving an installed observer leaves
// every engine's results bit-for-bit unchanged (lane serial, lane sharded,
// and the out-of-core block engine through the registered experiments).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/registry.hpp"
#include "cli/sinks.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "storage/mwg.hpp"
#include "util/thread_pool.hpp"
#include "walk/engine.hpp"

namespace manywalks {
namespace {

using obs::Metric;
using obs::MetricKind;
using obs::MetricsRegistry;
using obs::WorkerCounters;

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("manywalks_test_obs_" + name))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Tests share the process-wide thread-local scratch with everything that
/// ran before them; flushing into a throwaway registry isolates each test.
void discard_pending_scratch() {
  MetricsRegistry junk;
  obs::drain_thread_counters(junk);
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, CountersSumAndGaugesKeepHighWaterMark) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.value(Metric::kSteps), 0u);
  registry.add(Metric::kSteps, 5);
  registry.add(Metric::kSteps, 7);
  EXPECT_EQ(registry.value(Metric::kSteps), 12u);
  registry.gauge_max(Metric::kPoolQueuePeak, 3);
  registry.gauge_max(Metric::kPoolQueuePeak, 9);
  registry.gauge_max(Metric::kPoolQueuePeak, 4);
  EXPECT_EQ(registry.value(Metric::kPoolQueuePeak), 9u);
}

TEST(MetricsRegistry, HistogramUsesLog2BucketsAndCountsObservations) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(1u << 10), 11u);

  MetricsRegistry registry;
  registry.observe(Metric::kTrialRounds, 0);
  registry.observe(Metric::kTrialRounds, 3);
  registry.observe(Metric::kTrialRounds, 3);
  registry.observe(Metric::kTrialRounds, 1000);
  // The counter slot of a histogram is its observation count.
  EXPECT_EQ(registry.value(Metric::kTrialRounds), 4u);
  for (const obs::MetricSnapshot& snap : registry.snapshot()) {
    if (snap.name != obs::metric_name(Metric::kTrialRounds)) continue;
    EXPECT_EQ(snap.kind, MetricKind::kHistogram);
    ASSERT_GT(snap.buckets.size(), 10u);
    EXPECT_EQ(snap.buckets[0], 1u);
    EXPECT_EQ(snap.buckets[2], 2u);
    EXPECT_EQ(snap.buckets[10], 1u);  // 1000 in [512, 1024)
    return;
  }
  FAIL() << "no mc.trial_rounds snapshot";
}

TEST(MetricsRegistry, SnapshotKeepsFixedEnumOrderThenDynamic) {
  MetricsRegistry registry;
  const std::size_t id =
      registry.register_metric("test.extension", MetricKind::kCounter);
  registry.add_id(id, 17);
  EXPECT_EQ(registry.value_id(id), 17u);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), obs::kMetricCount + 1);
  for (std::size_t i = 0; i < obs::kMetricCount; ++i) {
    EXPECT_EQ(snapshot[i].name,
              obs::metric_name(static_cast<Metric>(i)));
  }
  EXPECT_EQ(snapshot.front().name, "walk.steps");
  EXPECT_EQ(snapshot.back().name, "test.extension");
  EXPECT_EQ(snapshot.back().value, 17u);
}

TEST(MetricsRegistry, ResetClearsEverything) {
  MetricsRegistry registry;
  registry.add(Metric::kSteps, 3);
  registry.observe(Metric::kTrialRounds, 8);
  registry.reset();
  EXPECT_EQ(registry.value(Metric::kSteps), 0u);
  EXPECT_EQ(registry.value(Metric::kTrialRounds), 0u);
}

TEST(MetricsRegistry, MergeSumsCountersAndMaxMergesGauges) {
  WorkerCounters a;
  WorkerCounters b;
  a.add(Metric::kRounds, 10);
  b.add(Metric::kRounds, 4);
  a.note_max(Metric::kPoolQueuePeak, 6);
  b.note_max(Metric::kPoolQueuePeak, 2);
  MetricsRegistry registry;
  registry.merge(a);
  registry.merge(b);
  EXPECT_EQ(registry.value(Metric::kRounds), 14u);
  EXPECT_EQ(registry.value(Metric::kPoolQueuePeak), 6u);
}

// --- the thread-scratch drain pipeline ---------------------------------------

// The TSan target: many workers write their own thread-local scratch with
// plain (non-atomic) increments while the team runs; the coordinator
// drains after the parallel_for rendezvous. Any missing synchronization in
// that design is a data race TSan flags here.
TEST(ThreadScratch, ConcurrentFillThenDrainIsExactAndRaceFree) {
  discard_pending_scratch();
  constexpr std::uint64_t kItems = 4096;
  ThreadPool pool(3);
  parallel_for(
      pool, 0, kItems,
      [](std::uint64_t i) {
        WorkerCounters& scratch = obs::thread_counters();
        scratch.add(Metric::kSteps, i + 1);
        scratch.add(Metric::kRounds, 1);
        scratch.note_max(Metric::kPoolQueuePeak, i);
      },
      /*grain=*/16);
  MetricsRegistry registry;
  obs::drain_thread_counters(registry);
  EXPECT_EQ(registry.value(Metric::kSteps), kItems * (kItems + 1) / 2);
  EXPECT_EQ(registry.value(Metric::kRounds), kItems);
  EXPECT_EQ(registry.value(Metric::kPoolQueuePeak), kItems - 1);
  // The drain zeroes every scratch: a second drain adds nothing.
  obs::drain_thread_counters(registry);
  EXPECT_EQ(registry.value(Metric::kRounds), kItems);
}

TEST(ThreadScratch, CountersFromExitedThreadsSurviveIntoTheDrain) {
  discard_pending_scratch();
  {
    ThreadPool pool(2);
    parallel_for(
        pool, 0, 64,
        [](std::uint64_t) { obs::thread_counters().add(Metric::kMerges, 1); },
        /*grain=*/1);
  }  // pool joined and destroyed: worker scratches fold into the orphan bucket
  MetricsRegistry registry;
  obs::drain_thread_counters(registry);
  EXPECT_EQ(registry.value(Metric::kMerges), 64u);
}

// --- observer install discipline --------------------------------------------

TEST(Observer, NullByDefaultAndScopedInstallRestores) {
  EXPECT_EQ(obs::observer(), nullptr);
  MetricsRegistry registry;
  obs::RunObserver o{&registry, nullptr, nullptr};
  {
    obs::ScopedObserver scoped(&o);
    ASSERT_EQ(obs::observer(), &o);
    EXPECT_EQ(obs::observer()->metrics, &registry);
  }
  EXPECT_EQ(obs::observer(), nullptr);
}

// --- TraceWriter -------------------------------------------------------------

bool brackets_balanced(const std::string& text) {
  std::int64_t braces = 0;
  std::int64_t squares = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++squares;
    else if (c == ']') --squares;
    if (braces < 0 || squares < 0) return false;
  }
  return braces == 0 && squares == 0 && !in_string;
}

TEST(TraceWriter, RendersAWellFormedTraceDocument) {
  obs::TraceWriter writer("unused.json");
  writer.complete("trial", "mc", 0, 10, 25, "\"trial\":3");
  writer.instant("extent-load", "cache", 0, "\"bytes\":4096");
  writer.counter("resident_bytes", 12345);
  EXPECT_EQ(writer.event_count(), 3u);
  EXPECT_EQ(writer.dropped(), 0u);
  const std::string doc = writer.render();
  EXPECT_TRUE(brackets_balanced(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"trial\""), std::string::npos);
  EXPECT_NE(doc.find("\"extent-load\""), std::string::npos);
  EXPECT_NE(doc.find("\"resident_bytes\""), std::string::npos);
  EXPECT_EQ(doc.find(",]"), std::string::npos);
  EXPECT_EQ(doc.find(",}"), std::string::npos);
}

TEST(TraceWriter, EventCapDropsOnlyHighFrequencyCategories) {
  obs::TraceWriter writer("unused.json", /*max_events=*/2);
  writer.instant("extent-load", "cache", 0);
  writer.instant("block-visit", "block", 0);
  // At the cap: block/cache churn is dropped and counted...
  writer.instant("extent-load", "cache", 0);
  writer.instant("block-visit", "block", 0);
  EXPECT_EQ(writer.event_count(), 2u);
  EXPECT_EQ(writer.dropped(), 2u);
  // ...but structural spans still land — they close last (RAII), and a
  // blind cap would hollow out exactly the outer trace hierarchy.
  writer.complete("trial", "mc", 0, 0, 5);
  writer.complete("experiment", "cli", 0, 0, 9);
  EXPECT_EQ(writer.event_count(), 4u);
  EXPECT_EQ(writer.dropped(), 2u);
  const std::string doc = writer.render();
  EXPECT_NE(doc.find("\"experiment\""), std::string::npos);
  EXPECT_NE(doc.find("\"dropped_events\":2"), std::string::npos);
  EXPECT_TRUE(brackets_balanced(doc));
}

TEST(TraceWriter, WriteEmitsRenderToPath) {
  TempFile file("trace.json");
  obs::TraceWriter writer(file.path());
  writer.instant("mark", "test", 0);
  ASSERT_TRUE(writer.write());
  std::ifstream in(file.path(), std::ios::binary);
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), writer.render());
}

TEST(TraceSpan, NullWriterIsANoOpAndLiveWriterEmitsOneComplete) {
  {
    obs::TraceSpan span(nullptr, "quiet", "test");
    span.set_args("\"x\":1");
  }  // must not crash, nothing to observe
  obs::TraceWriter writer("unused.json");
  {
    obs::TraceSpan span(&writer, "work", "test");
    span.set_args("\"x\":1");
  }
  EXPECT_EQ(writer.event_count(), 1u);
  EXPECT_NE(writer.render().find("\"work\""), std::string::npos);
  EXPECT_NE(writer.render().find("\"x\":1"), std::string::npos);
}

// --- ProgressReporter --------------------------------------------------------

TEST(ProgressReporter, StaysQuietUntilTheFirstIntervalElapses) {
  std::ostringstream out;
  obs::ProgressReporter progress(/*interval_seconds=*/3600, nullptr, &out);
  progress.tick();
  progress.tick();
  EXPECT_EQ(progress.lines_printed(), 0u);
  EXPECT_TRUE(out.str().empty());
}

TEST(ProgressReporter, ZeroIntervalPrintsEveryTickAndFinishSummarizes) {
  discard_pending_scratch();
  MetricsRegistry registry;
  registry.add(Metric::kTrialsDone, 5);
  registry.add(Metric::kRounds, 100);
  registry.add(Metric::kSteps, 400);
  registry.add(Metric::kCacheHits, 3);
  registry.add(Metric::kCacheLoads, 1);
  std::ostringstream out;
  obs::ProgressReporter progress(/*interval_seconds=*/0, &registry, &out);
  progress.set_total_trials(5);
  progress.tick();
  progress.tick();
  progress.finish();
  EXPECT_EQ(progress.lines_printed(), 3u);
  const std::string text = out.str();
  EXPECT_NE(text.find("[manywalks]"), std::string::npos);
  EXPECT_NE(text.find("done:"), std::string::npos);
  EXPECT_NE(text.find("5/5 trials"), std::string::npos);
  EXPECT_NE(text.find("100 rounds"), std::string::npos);
  EXPECT_NE(text.find("cache 75.0%"), std::string::npos);
  EXPECT_NE(text.find("elapsed"), std::string::npos);
}

TEST(ProgressReporter, FinalLineHidesTheTotalWhenARunStoppedEarly) {
  MetricsRegistry registry;
  registry.add(Metric::kTrialsDone, 3);
  std::ostringstream out;
  obs::ProgressReporter progress(/*interval_seconds=*/0, &registry, &out);
  progress.set_total_trials(10);
  progress.finish();
  EXPECT_NE(out.str().find(" 3 trials"), std::string::npos);
  EXPECT_EQ(out.str().find("3/10"), std::string::npos);
}

// --- byte-identity goldens: an observer is observably inert ------------------

/// Runs a registered experiment and renders it with the run-dependent wall
/// time zeroed: everything left must be bit-identical across observed and
/// unobserved runs (the manifest is filled by the CLI driver, not the
/// runner, so it is empty on both sides here).
std::string run_rendered(const char* name, const cli::ExperimentParams& params,
                         ThreadPool& pool) {
  const cli::Experiment* experiment = cli::default_registry().find(name);
  EXPECT_NE(experiment, nullptr) << name;
  ExperimentResult result = experiment->run(params, pool);
  result.elapsed_seconds = 0.0;
  return cli::render_json(result);
}

struct ObservedRun {
  std::string json;
  MetricsRegistry registry;
  std::string trace;
  std::string progress;
};

ObservedRun run_observed(const char* name, const cli::ExperimentParams& params,
                         ThreadPool& pool) {
  ObservedRun run;
  obs::TraceWriter trace("unused.json");
  std::ostringstream progress_out;
  obs::ProgressReporter progress(/*interval_seconds=*/0, &run.registry,
                                 &progress_out);
  obs::RunObserver observer{&run.registry, &trace, &progress};
  {
    obs::ScopedObserver scoped(&observer);
    run.json = run_rendered(name, params, pool);
  }
  obs::drain_thread_counters(run.registry);
  run.trace = trace.render();
  run.progress = progress_out.str();
  return run;
}

TEST(ObsGolden, LaneEngineExperimentIsByteIdenticalUnderFullObservation) {
  discard_pending_scratch();
  cli::ExperimentParams params;
  params.seed = 3;
  params.n = 64;
  params.trials = 8;
  params.kmax = 4;
  params.threads = 3;
  ThreadPool pool(2);
  const std::string unobserved = run_rendered("fig_cycle_speedup", params, pool);
  const ObservedRun observed = run_observed("fig_cycle_speedup", params, pool);
  EXPECT_EQ(observed.json, unobserved);
  EXPECT_GT(observed.registry.value(Metric::kTrialsDone), 0u);
  EXPECT_GT(observed.registry.value(Metric::kSteps), 0u);
  EXPECT_NE(observed.trace.find("\"batch\""), std::string::npos);
  EXPECT_NE(observed.progress.find("trials"), std::string::npos);
  // And the observed run perturbed nothing for LATER runs either.
  EXPECT_EQ(run_rendered("fig_cycle_speedup", params, pool), unobserved);
}

TEST(ObsGolden, ShardedCoverRunIsBitIdenticalUnderFullObservation) {
  discard_pending_scratch();
  const Graph g = make_margulis_expander(16);  // n = 256, 8-regular
  constexpr unsigned kK = 32;
  const std::vector<Vertex> starts(kK, 0);
  ThreadPool pool(3);
  CoverOptions opt;
  opt.rng_mode = RngMode::kLane;
  opt.lane_shards = 4;
  opt.shard_pool = &pool;
  WalkEngine engine(g);

  Rng baseline_rng(99);
  engine.reset(starts);
  const CoverSample baseline =
      engine.run_until_visited(g.num_vertices(), baseline_rng, opt);

  MetricsRegistry registry;
  obs::TraceWriter trace("unused.json");
  std::ostringstream progress_out;
  obs::ProgressReporter progress(0, &registry, &progress_out);
  obs::RunObserver observer{&registry, &trace, &progress};
  Rng observed_rng(99);
  CoverSample observed;
  {
    obs::ScopedObserver scoped(&observer);
    engine.reset(starts);
    observed = engine.run_until_visited(g.num_vertices(), observed_rng, opt);
  }
  obs::drain_thread_counters(registry);

  EXPECT_EQ(observed.steps, baseline.steps);
  EXPECT_EQ(observed.covered, baseline.covered);
  // Inertness includes the RNG stream: identical draws, identical state.
  EXPECT_EQ(observed_rng.state(), baseline_rng.state());
  // The sharded run accounted its rounds and steps exactly.
  EXPECT_EQ(registry.value(Metric::kRounds), observed.steps);
  EXPECT_EQ(registry.value(Metric::kSteps), observed.steps * kK);
  EXPECT_GT(registry.value(Metric::kMerges) +
                registry.value(Metric::kMergeStalls),
            0u);
}

TEST(ObsGolden, BlockEngineExperimentIsByteIdenticalAndTracesTheSchedule) {
  discard_pending_scratch();
  const Graph g = make_grid_2d(24);
  TempFile file("block.mwg");
  write_mwg(file.path(), g, /*block_bits=*/7);  // mwg v2: 2^7-vertex blocks

  cli::ExperimentParams params;
  params.seed = 7;
  params.trials = 8;
  params.kmax = 4;
  params.graph = file.path();
  params.block_walk = true;
  params.mem_budget = "64K";
  ThreadPool pool(2);

  const std::string unobserved = run_rendered("mwg-speedup", params, pool);
  const ObservedRun observed = run_observed("mwg-speedup", params, pool);
  EXPECT_EQ(observed.json, unobserved);
  // The OOC schedule surfaced: block visits counted, extent-cache traffic
  // counted, and the trace holds the acceptance spans.
  EXPECT_GT(observed.registry.value(Metric::kBlockVisits), 0u);
  EXPECT_GT(observed.registry.value(Metric::kRounds), 0u);
  EXPECT_GT(observed.registry.value(Metric::kCacheLoads), 0u);
  EXPECT_GT(observed.registry.value(Metric::kCacheBytesLoaded), 0u);
  EXPECT_NE(observed.trace.find("\"block-visit\""), std::string::npos);
  EXPECT_NE(observed.trace.find("\"horizon\""), std::string::npos);
  EXPECT_NE(observed.trace.find("\"extent-load\""), std::string::npos);
  EXPECT_TRUE(brackets_balanced(observed.trace));
}

}  // namespace
}  // namespace manywalks
