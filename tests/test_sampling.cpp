#include "walk/sampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "walk/hitting.hpp"

namespace manywalks {
namespace {

TEST(StationarySampling, FrequencyProportionalToDegree) {
  // Star: pi(hub) = 1/2, pi(leaf) = 1/(2(n-1)).
  const Graph g = make_star(5);
  Rng rng(1);
  int hub_hits = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    if (sample_stationary_vertex(g, rng) == 0) ++hub_hits;
  }
  EXPECT_NEAR(static_cast<double>(hub_hits) / trials, 0.5, 0.02);
}

TEST(StationarySampling, UniformOnRegularGraphs) {
  const Graph g = make_cycle(8);
  Rng rng(2);
  std::vector<int> counts(8, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[sample_stationary_vertex(g, rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.125, 0.015);
  }
}

TEST(StationarySampling, HandlesLoops) {
  // Vertex with the loop has degree 2 vs 1: probabilities 1/2, 1/4, 1/4.
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(0, 2).add_edge(0, 0);
  GraphBuilder::BuildOptions options;
  options.loops = GraphBuilder::LoopPolicy::kKeep;
  const Graph g = b.build(options);
  Rng rng(3);
  int v0 = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    if (sample_stationary_vertex(g, rng) == 0) ++v0;
  }
  EXPECT_NEAR(static_cast<double>(v0) / trials, 0.6, 0.02);  // 3/5 arcs
}

TEST(StationarySampling, StartsVectorHasSizeK) {
  const Graph g = make_cycle(6);
  Rng rng(4);
  EXPECT_EQ(sample_stationary_starts(g, 7, rng).size(), 7u);
  EXPECT_EQ(sample_uniform_starts(g, 3, rng).size(), 3u);
}

TEST(UniformSampling, CoversAllVertices) {
  const Graph g = make_cycle(5);
  Rng rng(5);
  std::set<Vertex> seen;
  for (int i = 0; i < 500; ++i) {
    for (Vertex v : sample_uniform_starts(g, 2, rng)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(SpreadStarts, FirstIsSeed) {
  const Graph g = make_cycle(16);
  const auto starts = spread_starts(g, 4, 3);
  ASSERT_EQ(starts.size(), 4u);
  EXPECT_EQ(starts[0], 3u);
}

TEST(SpreadStarts, DistinctOnLargeEnoughGraph) {
  const Graph g = make_grid_2d(8, GridTopology::kOpen);
  const auto starts = spread_starts(g, 6, 0);
  const std::set<Vertex> unique(starts.begin(), starts.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(SpreadStarts, SecondCenterIsAntipodalOnCycle) {
  const Graph g = make_cycle(20);
  const auto starts = spread_starts(g, 2, 0);
  EXPECT_EQ(starts[1], 10u);
}

TEST(SpreadStarts, PathPicksBothEnds) {
  const Graph g = make_path(30);
  const auto starts = spread_starts(g, 2, 0);
  EXPECT_EQ(starts[1], 29u);
}

TEST(SpreadStarts, PairwiseDistancesAreLarge) {
  // Greedy k-center on the 2-D torus: min pairwise distance should be a
  // decent fraction of the diameter.
  const Graph g = make_grid_2d(12);
  const auto starts = spread_starts(g, 4, 0);
  std::uint32_t min_pairwise = kUnreachable;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const auto dist = bfs_distances(g, starts[i]);
    for (std::size_t j = 0; j < starts.size(); ++j) {
      if (i != j) min_pairwise = std::min(min_pairwise, dist[starts[j]]);
    }
  }
  EXPECT_GE(min_pairwise, 6u);  // diameter is 12
}

TEST(SpreadStarts, MoreStartsThanVerticesWraps) {
  const Graph g = make_cycle(3);
  const auto starts = spread_starts(g, 7, 0);
  EXPECT_EQ(starts.size(), 7u);
  for (Vertex v : starts) EXPECT_LT(v, 3u);
}

TEST(SpreadStarts, WrapAroundReusesTheSeedDeterministically) {
  // Once every vertex is a center all distances are 0, so each further
  // start falls back to starts[i % size] — which is always the seed. The
  // exact sequence is part of the deterministic contract.
  const Graph g = make_cycle(3);
  const auto starts = spread_starts(g, 7, 0);
  const std::vector<Vertex> expected = {0, 1, 2, 0, 0, 0, 0};
  EXPECT_EQ(starts, expected);

  // Same wrap pattern from a different seed vertex.
  const auto from_two = spread_starts(g, 5, 2);
  EXPECT_EQ(from_two[0], 2u);
  const std::set<Vertex> first_three(from_two.begin(), from_two.begin() + 3);
  EXPECT_EQ(first_three.size(), 3u);
  EXPECT_EQ(from_two[3], 2u);
  EXPECT_EQ(from_two[4], 2u);
}

TEST(SpreadStarts, DisconnectedGraphStaysInSeedComponent) {
  // Two disjoint triangles {0,1,2} and {3,4,5}: bfs_distances reports
  // kUnreachable for the far component, and the greedy selection must skip
  // those vertices instead of choosing an unreachable (infinite-distance)
  // center.
  GraphBuilder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  b.add_edge(3, 4).add_edge(4, 5).add_edge(5, 3);
  const Graph g = b.build();

  const auto starts = spread_starts(g, 4, 0);
  ASSERT_EQ(starts.size(), 4u);
  for (Vertex v : starts) EXPECT_LT(v, 3u) << "left component only";

  const auto right = spread_starts(g, 4, 4);
  for (Vertex v : right) {
    EXPECT_GE(v, 3u) << "right component only";
    EXPECT_LT(v, 6u);
  }
}

TEST(HittingToSet, StartInsideSetIsZero) {
  const Graph g = make_cycle(6);
  std::vector<bool> target(6, false);
  target[2] = true;
  const std::vector<Vertex> starts = {2};
  Rng rng(6);
  const auto s = sample_multi_hitting_to_set(g, starts, target, rng);
  EXPECT_TRUE(s.hit);
  EXPECT_EQ(s.steps, 0u);
}

TEST(HittingToSet, SingletonMatchesPlainHitting) {
  const Graph g = make_cycle(21);
  std::vector<bool> target(21, false);
  target[10] = true;
  const std::vector<Vertex> starts = {0};
  double set_total = 0;
  double plain_total = 0;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    set_total += static_cast<double>(
        sample_multi_hitting_to_set(g, starts, target, rng).steps);
    plain_total +=
        static_cast<double>(sample_hitting_time(g, 0, 10, rng).steps);
  }
  EXPECT_NEAR(set_total / plain_total, 1.0, 0.25);
}

TEST(HittingToSet, BiggerSetIsFaster) {
  const Graph g = make_cycle(41);
  std::vector<bool> small(41, false);
  small[20] = true;
  std::vector<bool> large = small;
  large[10] = large[30] = true;
  const std::vector<Vertex> starts = {0, 0};
  Rng rng(8);
  double small_total = 0;
  double large_total = 0;
  for (int i = 0; i < 300; ++i) {
    small_total += static_cast<double>(
        sample_multi_hitting_to_set(g, starts, small, rng).steps);
    large_total += static_cast<double>(
        sample_multi_hitting_to_set(g, starts, large, rng).steps);
  }
  EXPECT_LT(large_total, small_total);
}

TEST(HittingToSet, MaskSizeMismatchThrows) {
  const Graph g = make_cycle(5);
  const std::vector<Vertex> starts = {0};
  std::vector<bool> wrong(4, false);
  Rng rng(9);
  EXPECT_THROW(sample_multi_hitting_to_set(g, starts, wrong, rng),
               std::invalid_argument);
}

TEST(HittingToSet, CapCensors) {
  const Graph g = make_cycle(101);
  std::vector<bool> target(101, false);
  target[50] = true;
  const std::vector<Vertex> starts = {0};
  HitOptions options;
  options.step_cap = 3;
  Rng rng(10);
  const auto s = sample_multi_hitting_to_set(g, starts, target, rng, options);
  EXPECT_FALSE(s.hit);
  EXPECT_EQ(s.steps, 3u);
}

}  // namespace
}  // namespace manywalks
