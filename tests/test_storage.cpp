// The storage/ subsystem: mwg round-trips across every generator family,
// malformed-file rejection, mmap-vs-in-core walk-engine bit identity in
// both rng modes (including the registered mwg experiments), external
// edge-list ingestion corner cases, and the zero-adjacency-read contract
// of the shallow (info) load path at 10^6 vertices.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "cli/experiments_mwg.hpp"
#include "cli/graph_tool.hpp"
#include "cli/sinks.hpp"
#include "core/families.hpp"
#include "graph/generators.hpp"
#include "storage/ingest.hpp"
#include "storage/mapped_graph.hpp"
#include "storage/mwg.hpp"
#include "walk/engine.hpp"
#include "walk/sampling.hpp"

namespace manywalks {
namespace {

/// Unique-per-name scratch path, removed by the fixture-free helper's
/// destructor so failed tests don't leave multi-MB files behind.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("manywalks_test_storage_" + name))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void expect_same_arrays(const Graph& g, const MappedGraph& mapped) {
  ASSERT_EQ(g.num_vertices(), mapped.num_vertices());
  ASSERT_EQ(g.num_arcs(), mapped.num_arcs());
  EXPECT_EQ(g.num_edges(), mapped.num_edges());
  EXPECT_EQ(g.num_loops(), mapped.num_loops());
  if (g.num_vertices() > 0) {
    EXPECT_EQ(g.min_degree(), mapped.min_degree());
    EXPECT_EQ(g.max_degree(), mapped.max_degree());
  }
  const auto go = g.offsets();
  const auto mo = mapped.offsets();
  ASSERT_EQ(go.size(), mo.size());
  for (std::size_t i = 0; i < go.size(); ++i) ASSERT_EQ(go[i], mo[i]);
  const auto gt = g.targets();
  const auto mt = mapped.targets();
  ASSERT_EQ(gt.size(), mt.size());
  for (std::size_t i = 0; i < gt.size(); ++i) ASSERT_EQ(gt[i], mt[i]);
}

// --- round trips -------------------------------------------------------------

TEST(MwgRoundtrip, EveryGeneratorFamily) {
  TempFile file("family.mwg");
  for (GraphFamily family : all_families()) {
    SCOPED_TRACE(family_name(family));
    const FamilyInstance instance = make_family_instance(family, 64, /*seed=*/3);
    write_mwg(file.path(), instance.graph);
    const MappedGraph mapped(file.path(), MappedGraph::Validate::kDeep);
    expect_same_arrays(instance.graph, mapped);
  }
}

TEST(MwgRoundtrip, LoopsAndParallelEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 0).add_edge(0, 1).add_edge(0, 1).add_edge(1, 2);
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kKeep;
  options.loops = GraphBuilder::LoopPolicy::kKeep;
  const Graph g = b.build(options);
  TempFile file("multi.mwg");
  write_mwg(file.path(), g);
  const MappedGraph mapped(file.path(), MappedGraph::Validate::kDeep);
  expect_same_arrays(g, mapped);
  EXPECT_EQ(mapped.num_loops(), 1u);
}

TEST(MwgRoundtrip, ToGraphMaterializesIdenticalGraph) {
  const Graph g = make_barbell(21);
  TempFile file("tograph.mwg");
  write_mwg(file.path(), g);
  const MappedGraph mapped(file.path());
  const Graph back = to_graph(mapped);
  expect_same_arrays(back, mapped);
}

TEST(MwgRoundtrip, SubstrateWriterMatchesGraphWriterByteForByte) {
  // The streaming substrate writer must produce the canonical CSR file —
  // including the hypercube, whose substrate enumerates rows in bit order
  // (unsorted) and so exercises the per-row sort.
  struct Case {
    const char* name;
    Graph graph;
    std::function<void(const std::string&)> write_substrate;
  };
  const Case cases[] = {
      {"cycle", make_cycle(33),
       [](const std::string& p) { write_mwg(p, CycleSubstrate(33)); }},
      {"hypercube", make_hypercube(4),
       [](const std::string& p) { write_mwg(p, HypercubeSubstrate(4)); }},
      {"complete", make_complete(9),
       [](const std::string& p) { write_mwg(p, CompleteSubstrate(9)); }},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    TempFile from_graph("w_graph.mwg");
    TempFile from_substrate("w_substrate.mwg");
    write_mwg(from_graph.path(), c.graph);
    c.write_substrate(from_substrate.path());
    std::ifstream a(from_graph.path(), std::ios::binary);
    std::ifstream b(from_substrate.path(), std::ios::binary);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sa.str(), sb.str());
  }
}

TEST(MwgRoundtrip, EmptyAndIsolatedGraphs) {
  TempFile file("empty.mwg");
  GraphBuilder lonely(5);  // 5 isolated vertices, no edges
  const Graph g = lonely.build();
  write_mwg(file.path(), g);
  const MappedGraph mapped(file.path(), MappedGraph::Validate::kDeep);
  EXPECT_EQ(mapped.num_vertices(), 5u);
  EXPECT_EQ(mapped.num_arcs(), 0u);
  EXPECT_EQ(mapped.min_degree(), 0u);
  // Unwalkable: the substrate binding refuses, load/info do not.
  EXPECT_THROW(mapped.substrate(), std::invalid_argument);
}

// --- malformed-file rejection ------------------------------------------------

class CorruptFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = make_margulis_expander(8);
    write_mwg(file_.path(), graph_);
  }

  /// Overwrites `count` bytes at `offset` with `value`.
  void stomp(std::uint64_t offset, std::size_t count, char value) {
    std::fstream f(file_.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(offset));
    const std::string bytes(count, value);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  void truncate_to(std::uint64_t bytes) {
    std::filesystem::resize_file(file_.path(), bytes);
  }

  Graph graph_;
  TempFile file_{"corrupt.mwg"};
};

TEST_F(CorruptFixture, RejectsBadMagic) {
  stomp(0, 1, 'X');
  EXPECT_THROW(MappedGraph{file_.path()}, std::invalid_argument);
}

TEST_F(CorruptFixture, RejectsWrongEndianness) {
  // Byte-swap the endianness tag: 0x01020304 stored little-endian is
  // 04 03 02 01 on disk; reversing those bytes simulates a big-endian
  // producer. The error must name the byte order, not a generic failure.
  std::fstream f(file_.path(), std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(8);
  char tag[4];
  f.read(tag, 4);
  std::swap(tag[0], tag[3]);
  std::swap(tag[1], tag[2]);
  f.seekp(8);
  f.write(tag, 4);
  f.close();
  try {
    const MappedGraph mapped(file_.path());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("byte order"), std::string::npos)
        << e.what();
  }
}

TEST_F(CorruptFixture, RejectsUnknownVersion) {
  stomp(12, 1, 9);
  EXPECT_THROW(MappedGraph{file_.path()}, std::invalid_argument);
}

TEST_F(CorruptFixture, RejectsTruncatedFile) {
  const std::uint64_t full =
      mwg_file_bytes(graph_.num_vertices(), graph_.num_arcs());
  truncate_to(full - 4);  // one missing target
  EXPECT_THROW(MappedGraph{file_.path()}, std::invalid_argument);
  truncate_to(kMwgHeaderBytes - 1);  // not even a header
  EXPECT_THROW(MappedGraph{file_.path()}, std::invalid_argument);
}

TEST_F(CorruptFixture, RejectsHeaderDegreeMismatch) {
  // min_degree lives at byte 40; lying about it must be caught by the
  // structure scan (a wrong cached degree range would mis-bind engines).
  stomp(40, 1, 3);
  EXPECT_THROW(MappedGraph{file_.path()}, std::invalid_argument);
}

TEST_F(CorruptFixture, DeepValidationCatchesGarbageTargets) {
  stomp(mwg_targets_begin(graph_.num_vertices()), 4, '\xff');
  // Shallow load never reads targets, so it accepts the file...
  EXPECT_NO_THROW(MappedGraph{file_.path()});
  // ...and deep validation rejects it.
  EXPECT_THROW(MappedGraph(file_.path(), MappedGraph::Validate::kDeep),
               std::invalid_argument);
}

TEST_F(CorruptFixture, RejectsAbandonedWrite) {
  // A writer that never finish()ed leaves a zeroed header.
  TempFile unfinished("unfinished.mwg");
  {
    MwgWriter writer(unfinished.path(), 3);
    const Vertex row[] = {1};
    writer.append_row(row);
    // no finish()
  }
  EXPECT_THROW(MappedGraph{unfinished.path()}, std::invalid_argument);
}

// Environmental I/O failures are MwgIoError with a user-facing message —
// no "requirement violated"/file:line diagnostics noise — so the CLI can
// print what() verbatim (`manywalks graph info missing.mwg`).
TEST(MwgIoErrors, MissingPathThrowsCleanIoError) {
  const std::string missing = "/nonexistent-dir/manywalks-missing.mwg";
  try {
    const MappedGraph mapped(missing);
    FAIL() << "expected MwgIoError";
  } catch (const MwgIoError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("cannot open"), std::string::npos) << what;
    EXPECT_NE(what.find(missing), std::string::npos) << what;
    EXPECT_EQ(what.find("requirement violated"), std::string::npos) << what;
  }
}

TEST(MwgIoErrors, UnwritableWriterPathThrowsCleanIoError) {
  try {
    MwgWriter writer("/nonexistent-dir/out.mwg", 3);
    FAIL() << "expected MwgIoError";
  } catch (const MwgIoError& error) {
    EXPECT_NE(std::string(error.what()).find("for writing"),
              std::string::npos)
        << error.what();
  }
}

// MwgIoError still lands in generic std::exception handlers (it must never
// bypass the CLI's catch).
TEST(MwgIoErrors, IsARuntimeError) {
  EXPECT_THROW(MappedGraph{"/nonexistent-dir/x.mwg"}, std::runtime_error);
}

// --- mmap-vs-in-core engine bit identity -------------------------------------

std::vector<std::uint64_t> sample_steps(WalkEngineT<CsrSubstrate>& engine,
                                        Vertex n, RngMode mode,
                                        std::uint64_t seed) {
  CoverOptions options;
  options.rng_mode = mode;
  std::vector<std::uint64_t> steps;
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng = make_trial_rng(seed, trial);
    const std::vector<Vertex> starts(4, static_cast<Vertex>(trial % n));
    engine.reset(starts);
    const CoverSample sample = engine.run_until_visited(n, rng, options);
    EXPECT_TRUE(sample.covered);
    steps.push_back(sample.steps);
  }
  return steps;
}

TEST(MappedEngine, BitIdenticalToInCoreBothRngModes) {
  // One regular graph (margulis — lane mode takes the stride path) and one
  // irregular (barbell — lane mode takes the staged pipeline), in both rng
  // modes: the mapped file must reproduce the in-core engine byte for byte.
  const Graph graphs[] = {make_margulis_expander(6), make_barbell(31)};
  for (const Graph& g : graphs) {
    TempFile file("identity.mwg");
    write_mwg(file.path(), g);
    const MappedGraph mapped(file.path());
    WalkEngineT<CsrSubstrate> in_core{CsrSubstrate(g)};
    WalkEngineT<CsrSubstrate> off_disk{mapped.substrate()};
    for (RngMode mode : {RngMode::kSharedLegacy, RngMode::kLane}) {
      SCOPED_TRACE(static_cast<int>(mode));
      EXPECT_EQ(sample_steps(in_core, g.num_vertices(), mode, 99),
                sample_steps(off_disk, g.num_vertices(), mode, 99));
    }
  }
}

TEST(MappedEngine, RunForStepsTokensMatch) {
  const Graph g = make_grid_2d(7);
  TempFile file("tokens.mwg");
  write_mwg(file.path(), g);
  const MappedGraph mapped(file.path());
  for (RngMode mode : {RngMode::kSharedLegacy, RngMode::kLane}) {
    WalkEngineT<CsrSubstrate> in_core{CsrSubstrate(g)};
    WalkEngineT<CsrSubstrate> off_disk{mapped.substrate()};
    const std::vector<Vertex> starts(8, 3);
    Rng rng_a(5), rng_b(5);
    in_core.reset(starts);
    off_disk.reset(starts);
    in_core.run_for_steps(200, rng_a, 0.0, nullptr, mode);
    off_disk.run_for_steps(200, rng_b, 0.0, nullptr, mode);
    const auto ta = in_core.tokens();
    const auto tb = off_disk.tokens();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
    EXPECT_EQ(in_core.num_visited(), off_disk.num_visited());
  }
}

TEST(MappedEngine, StationaryCsrSamplingMatchesGraphSampling) {
  const Graph g = make_barbell(21);
  TempFile file("stationary.mwg");
  write_mwg(file.path(), g);
  const MappedGraph mapped(file.path());
  Rng rng_a(11), rng_b(11);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sample_stationary_vertex(g, rng_a),
              sample_stationary_vertex_csr(mapped.offsets(), rng_b));
  }
}

// --- the registered experiments off a file -----------------------------------

TEST(MwgExperiments, SpeedupByteIdenticalMappedVsInCoreBothModes) {
  // The ISSUE acceptance contract: the mwg-speedup experiment body run
  // from the file produces byte-identical results to the same graph built
  // in memory — same seed, both rng modes.
  const Graph g = make_margulis_expander(6);
  TempFile file("exp.mwg");
  write_mwg(file.path(), g);
  const MappedGraph mapped(file.path());

  cli::ExperimentParams params;
  params.seed = 51;
  params.trials = 10;
  params.kmax = 4;
  ThreadPool pool(2);

  for (RngMode mode : {RngMode::kLane, RngMode::kSharedLegacy}) {
    SCOPED_TRACE(static_cast<int>(mode));
    CoverOptions cover;
    cover.rng_mode = mode;
    const ExperimentResult from_file = cli::run_mwg_speedup_on_substrate(
        mapped.substrate(), "graph", params, pool, cover);
    const ExperimentResult in_core = cli::run_mwg_speedup_on_substrate(
        CsrSubstrate(g), "graph", params, pool, cover);
    EXPECT_EQ(cli::render_json(from_file), cli::render_json(in_core));
  }
}

TEST(MwgExperiments, StartsByteIdenticalMappedVsInCore) {
  const Graph g = make_grid_2d(6);
  TempFile file("starts.mwg");
  write_mwg(file.path(), g);
  const MappedGraph mapped(file.path());

  cli::ExperimentParams params;
  params.seed = 52;
  params.trials = 10;
  params.k = 4;
  ThreadPool pool(2);
  for (RngMode mode : {RngMode::kLane, RngMode::kSharedLegacy}) {
    SCOPED_TRACE(static_cast<int>(mode));
    CoverOptions cover;
    cover.rng_mode = mode;
    const ExperimentResult from_file = cli::run_mwg_starts_on_substrate(
        mapped.substrate(), "graph", params, pool, cover);
    const ExperimentResult in_core = cli::run_mwg_starts_on_substrate(
        CsrSubstrate(g), "graph", params, pool, cover);
    EXPECT_EQ(cli::render_json(from_file), cli::render_json(in_core));
  }
}

TEST(MwgExperiments, RegisteredRunnersWorkEndToEnd) {
  const Graph g = make_grid_2d(6);
  TempFile file("registered.mwg");
  write_mwg(file.path(), g);
  ThreadPool pool(2);
  for (const char* name : {"mwg-speedup", "mwg-starts"}) {
    SCOPED_TRACE(name);
    const cli::Experiment* experiment = cli::default_registry().find(name);
    ASSERT_NE(experiment, nullptr);
    cli::ExperimentParams params;
    params.seed = experiment->info.default_seed;
    params.trials = 8;
    params.kmax = 4;
    params.k = 2;
    params.graph = file.path();
    const ExperimentResult result = experiment->run(params, pool);
    EXPECT_EQ(result.name, name);
    ASSERT_FALSE(result.tables.empty());
    EXPECT_FALSE(result.tables.front().rows().empty());
  }
}

TEST(MwgExperiments, MissingGraphFlagIsAClearError) {
  ThreadPool pool(1);
  cli::ExperimentParams params;
  params.trials = 4;
  try {
    cli::default_registry().find("mwg-speedup")->run(params, pool);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--graph"), std::string::npos)
        << e.what();
  }
}

// --- external edge-list ingestion --------------------------------------------

EdgeListIngestResult ingest_text(const std::string& text,
                                 const EdgeListIngestOptions& options = {}) {
  std::istringstream is(text);
  return ingest_edge_list(is, options);
}

TEST(Ingest, RelabelsNonContiguousIdsDeterministically) {
  const auto result = ingest_text("# comment\n500 7\n7 1000000007\n");
  EXPECT_EQ(result.graph.num_vertices(), 3u);
  EXPECT_EQ(result.graph.num_edges(), 2u);
  // Dense ids by ascending original id, independent of edge order.
  EXPECT_EQ(result.original_ids,
            (std::vector<std::uint64_t>{7, 500, 1000000007}));
  EXPECT_TRUE(result.graph.has_edge(1, 0));
  EXPECT_TRUE(result.graph.has_edge(0, 2));
  EXPECT_FALSE(result.graph.has_edge(1, 2));
}

TEST(Ingest, DedupCollapsesBothDirectionsAndRepeats) {
  const auto result = ingest_text("1 2\n2 1\n1 2\n2 3\n");
  EXPECT_EQ(result.graph.num_edges(), 2u);
  EXPECT_EQ(result.stats.duplicates_dropped, 2u);
  EXPECT_TRUE(result.graph.is_simple());
}

TEST(Ingest, KeepDuplicatesBuildsParallelEdges) {
  EdgeListIngestOptions options;
  options.dedup = false;
  const auto result = ingest_text("1 2\n2 1\n", options);
  EXPECT_EQ(result.graph.num_edges(), 2u);  // parallel pair
  EXPECT_EQ(result.graph.edge_multiplicity(0, 1), 2u);
}

TEST(Ingest, SelfLoopPolicies) {
  const auto dropped = ingest_text("1 1\n1 2\n");
  EXPECT_EQ(dropped.stats.self_loops_dropped, 1u);
  EXPECT_EQ(dropped.graph.num_loops(), 0u);

  EdgeListIngestOptions keep;
  keep.drop_self_loops = false;
  const auto kept = ingest_text("1 1\n1 2\n", keep);
  EXPECT_EQ(kept.graph.num_loops(), 1u);
  EXPECT_EQ(kept.graph.degree(0), 2u);  // loop adds one arc
}

TEST(Ingest, LargestComponentExtractionRemapsOriginalIds) {
  // Components {10,11,12} (triangle) and {20,21} (edge).
  const std::string text = "10 11\n11 12\n12 10\n20 21\n";
  const auto whole = ingest_text(text);
  EXPECT_EQ(whole.stats.num_components, 2u);
  EXPECT_EQ(whole.stats.vertices_outside_largest, 2u);
  EXPECT_EQ(whole.graph.num_vertices(), 5u);

  EdgeListIngestOptions lcc;
  lcc.largest_component = true;
  const auto largest = ingest_text(text, lcc);
  EXPECT_EQ(largest.graph.num_vertices(), 3u);
  EXPECT_EQ(largest.graph.num_edges(), 3u);
  EXPECT_EQ(largest.original_ids, (std::vector<std::uint64_t>{10, 11, 12}));
}

TEST(Ingest, CommentsWhitespaceAndCrlf) {
  const auto result =
      ingest_text("% matrix-market style comment\n"
                  "# snap style comment\n"
                  "\n"
                  "   \t\n"
                  "1\t2\r\n"
                  "  2   3  \n");
  EXPECT_EQ(result.graph.num_edges(), 2u);
  EXPECT_EQ(result.stats.comment_lines, 4u);
}

TEST(Ingest, MalformedRowsNameTheLine) {
  for (const char* text : {"1 2\nfish 3\n", "1 2\n3\n", "1 2\n1 2 0.5\n",
                           "1 2\n-1 3\n"}) {
    SCOPED_TRACE(text);
    try {
      ingest_text(text);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Ingest, EmptyInputIsAnError) {
  EXPECT_THROW(ingest_text("# nothing\n"), std::invalid_argument);
  EXPECT_THROW(ingest_text("5 5\n"), std::invalid_argument);  // only a loop
}

TEST(Ingest, RoundTripsThroughMwg) {
  const auto result = ingest_text("0 1\n1 2\n2 0\n2 3\n");
  TempFile file("ingested.mwg");
  write_mwg(file.path(), result.graph);
  const MappedGraph mapped(file.path(), MappedGraph::Validate::kDeep);
  expect_same_arrays(result.graph, mapped);
}

// --- the graph tool CLI ------------------------------------------------------

int run_graph_tool(std::vector<std::string> args) {
  args.insert(args.begin(), "graph");  // argv[0] slot, as manywalks_main passes
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  return cli::graph_tool_main(static_cast<int>(argv.size()), argv.data());
}

TEST(GraphTool, ConvertAcceptsAllOptionSpellings) {
  TempFile edges("cli_edges.txt");
  {
    std::ofstream out(edges.path());
    out << "# comment\n1 2\n2 3\n3 1\n";
  }
  TempFile mwg("cli_out.mwg");
  // --in=V, --in V (space-separated values must not be eaten by the
  // positional scan), and the leading positional form.
  EXPECT_EQ(run_graph_tool({"convert", "--in=" + edges.path(),
                            "--out=" + mwg.path()}),
            0);
  EXPECT_EQ(run_graph_tool({"convert", "--in", edges.path(),
                            "--largest-component", "--out", mwg.path()}),
            0);
  EXPECT_EQ(run_graph_tool({"convert", edges.path(), "--out=" + mwg.path()}),
            0);
  const MappedGraph mapped(mwg.path(), MappedGraph::Validate::kDeep);
  EXPECT_EQ(mapped.num_vertices(), 3u);
  EXPECT_EQ(run_graph_tool({"info", mwg.path(), "--deep"}), 0);
  EXPECT_EQ(run_graph_tool({"info", "--in=" + mwg.path()}), 0);
}

TEST(GraphTool, GenInfoRoundTrip) {
  TempFile mwg("cli_gen.mwg");
  EXPECT_EQ(run_graph_tool({"gen", "--family=cycle", "--n=64",
                            "--out=" + mwg.path()}),
            0);
  const MappedGraph mapped(mwg.path(), MappedGraph::Validate::kDeep);
  // The family registry rounds to its natural parameterization (odd n
  // for cycles), so only the rough size is pinned here.
  EXPECT_GE(mapped.num_vertices(), 64u);
  EXPECT_TRUE(mapped.is_regular());
  EXPECT_EQ(mapped.min_degree(), 2u);
  EXPECT_EQ(run_graph_tool({"info", mwg.path()}), 0);
  // Errors are exit codes, not exceptions, at the tool boundary.
  EXPECT_EQ(run_graph_tool({"gen", "--family=nope", "--out=" + mwg.path()}), 1);
  EXPECT_EQ(run_graph_tool({"info", "/nonexistent.mwg"}), 1);
  EXPECT_EQ(run_graph_tool({"frobnicate"}), 1);
}

// --- the zero-adjacency-read contract at 10^6 vertices -----------------------

TEST(MwgInfoScale, MillionVertexShallowLoadNeverTouchesAdjacency) {
  // A 10^6-vertex cycle streamed from the implicit substrate (no CSR graph
  // is ever built), then the entire adjacency region is overwritten with
  // garbage. The shallow (info) load still succeeds with correct stats —
  // proof it reads only the header and the offsets array — while deep
  // validation, which does read the adjacency, rejects the file.
  constexpr Vertex kN = 1'000'000;
  TempFile file("million.mwg");
  write_mwg(file.path(), CycleSubstrate(kN));
  {
    std::fstream f(file.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(mwg_targets_begin(kN)));
    const std::string garbage(4096, '\xff');
    std::uint64_t remaining = static_cast<std::uint64_t>(kN) * 2 * sizeof(Vertex);
    while (remaining > 0) {
      const auto chunk = std::min<std::uint64_t>(remaining, garbage.size());
      f.write(garbage.data(), static_cast<std::streamsize>(chunk));
      remaining -= chunk;
    }
  }
  const MappedGraph mapped(file.path());  // structure validation only
  EXPECT_EQ(mapped.num_vertices(), kN);
  EXPECT_EQ(mapped.num_arcs(), static_cast<std::uint64_t>(kN) * 2);
  EXPECT_EQ(mapped.num_edges(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(mapped.min_degree(), 2u);
  EXPECT_EQ(mapped.max_degree(), 2u);
  EXPECT_TRUE(mapped.is_regular());
  EXPECT_THROW(MappedGraph(file.path(), MappedGraph::Validate::kDeep),
               std::invalid_argument);
}

}  // namespace
}  // namespace manywalks
