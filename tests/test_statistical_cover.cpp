// Statistical cross-checks: the Monte-Carlo engine against the exact
// Markov-chain oracles. All seeds are fixed, so these "statistical" tests
// are fully deterministic; tolerances are multiples of the measured CI
// half-width.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "mc/estimators.hpp"
#include "theory/closed_forms.hpp"
#include "theory/exact.hpp"

namespace manywalks {
namespace {

McOptions mc_with(std::uint64_t trials, std::uint64_t seed) {
  McOptions mc;
  mc.min_trials = trials;
  mc.max_trials = trials;
  mc.seed = seed;
  return mc;
}

void expect_ci_contains(const McResult& result, double exact, double sigmas,
                        const std::string& label) {
  EXPECT_NEAR(result.ci.mean, exact, sigmas * result.ci.half_width + 1e-9)
      << label << ": measured " << result.ci.mean << " ± "
      << result.ci.half_width << " vs exact " << exact;
}

struct SingleWalkCase {
  std::string name;
  Graph graph;
  Vertex start;
};

class SingleWalkOracle : public ::testing::TestWithParam<SingleWalkCase> {};

TEST_P(SingleWalkOracle, CoverTimeMatchesSubsetDp) {
  const auto& param = GetParam();
  const double exact = exact_cover_time(param.graph, param.start);
  const auto result = estimate_cover_time(param.graph, param.start,
                                          mc_with(4000, 101));
  expect_ci_contains(result, exact, 5.0, param.name);
}

TEST_P(SingleWalkOracle, HittingTimeMatchesLinearSolve) {
  const auto& param = GetParam();
  const Vertex target = param.graph.num_vertices() - 1;
  if (param.start == target) GTEST_SKIP();
  const auto exact_h = hitting_times_to(param.graph, target);
  const auto result = estimate_hitting_time(param.graph, param.start, target,
                                            mc_with(4000, 102));
  expect_ci_contains(result, exact_h[param.start], 5.0, param.name);
}

INSTANTIATE_TEST_SUITE_P(
    SmallGraphs, SingleWalkOracle,
    ::testing::Values(
        SingleWalkCase{"cycle5", make_cycle(5), 0},
        SingleWalkCase{"cycle8", make_cycle(8), 0},
        SingleWalkCase{"cycle12", make_cycle(12), 3},
        SingleWalkCase{"path6_end", make_path(6), 0},
        SingleWalkCase{"path6_mid", make_path(6), 3},
        SingleWalkCase{"complete6", make_complete(6), 0},
        SingleWalkCase{"complete5_loops", make_complete(5, true), 0},
        SingleWalkCase{"star7_hub", make_star(7), 0},
        SingleWalkCase{"star7_leaf", make_star(7), 2},
        SingleWalkCase{"barbell9_center", make_barbell(9), 4},
        SingleWalkCase{"barbell9_bell", make_barbell(9), 0},
        SingleWalkCase{"grid3x3", make_grid_2d(3, GridTopology::kOpen), 0},
        SingleWalkCase{"hypercube3", make_hypercube(3), 0},
        SingleWalkCase{"tree_2_2", make_balanced_tree(2, 2), 3},
        SingleWalkCase{"lollipop8", make_lollipop(8), 0},
        SingleWalkCase{"bipartite34", make_complete_bipartite(3, 4), 0}),
    [](const ::testing::TestParamInfo<SingleWalkCase>& param_info) {
      return param_info.param.name;
    });

struct KWalkCase {
  std::string name;
  Graph graph;
  std::vector<Vertex> starts;
};

class KWalkOracle : public ::testing::TestWithParam<KWalkCase> {};

TEST_P(KWalkOracle, KCoverTimeMatchesProductChainDp) {
  const auto& param = GetParam();
  const double exact = exact_k_cover_time(param.graph, param.starts, 4096);
  const auto result =
      estimate_multi_cover_time(param.graph, param.starts, mc_with(6000, 103));
  expect_ci_contains(result, exact, 5.0, param.name);
}

INSTANTIATE_TEST_SUITE_P(
    TinyGraphs, KWalkOracle,
    ::testing::Values(
        KWalkCase{"cycle3_k2", make_cycle(3), {0, 0}},
        KWalkCase{"cycle5_k2", make_cycle(5), {0, 0}},
        KWalkCase{"cycle5_k2_split", make_cycle(5), {0, 2}},
        KWalkCase{"cycle5_k3", make_cycle(5), {0, 0, 0}},
        KWalkCase{"path4_k2", make_path(4), {0, 0}},
        KWalkCase{"complete4_k2", make_complete(4), {0, 0}},
        KWalkCase{"complete4_k3", make_complete(4), {0, 0, 0}},
        KWalkCase{"star5_k2", make_star(5), {0, 0}},
        KWalkCase{"k4loops_k2", make_complete(4, true), {0, 0}},
        KWalkCase{"barbell7_k2", make_barbell(7), {3, 3}}),
    [](const ::testing::TestParamInfo<KWalkCase>& param_info) {
      return param_info.param.name;
    });

TEST(StatisticalIdentities, KacReturnTimeOnBarbell) {
  // E[return to v] = num_arcs / deg(v).
  const Graph g = make_barbell(9);
  const Vertex center = barbell_center(9);
  const double expected =
      static_cast<double>(g.num_arcs()) / g.degree(center);
  Rng rng(904);
  RunningStats stats;
  for (int i = 0; i < 30000; ++i) {
    stats.add(static_cast<double>(sample_return_time(g, center, rng).steps));
  }
  const auto ci = mean_confidence_interval(stats);
  EXPECT_NEAR(ci.mean, expected, 5.0 * ci.half_width);
}

TEST(StatisticalIdentities, CommuteTimeViaSampling) {
  // h(u,v) + h(v,u) == num_arcs * R_eff(u,v), sampled on the barbell
  // between the two bell interiors.
  const Graph g = make_barbell(9);
  const Vertex u = 0;
  const Vertex v = 8;
  const double expected = static_cast<double>(g.num_arcs()) *
                          effective_resistance(g, u, v);
  const auto there = estimate_hitting_time(g, u, v, mc_with(6000, 905));
  const auto back = estimate_hitting_time(g, v, u, mc_with(6000, 906));
  const double commute = there.ci.mean + back.ci.mean;
  const double tolerance =
      5.0 * (there.ci.half_width + back.ci.half_width) + 1e-9;
  EXPECT_NEAR(commute, expected, tolerance);
}

TEST(StatisticalIdentities, CycleCoverAtScale) {
  // The subset-DP oracle is limited to n <= 16; at larger n we still have
  // the closed form n(n-1)/2.
  const Vertex n = 129;
  const Graph g = make_cycle(n);
  const auto result = estimate_cover_time(g, 0, mc_with(1500, 907));
  expect_ci_contains(result, cycle_cover_time(n), 5.0, "cycle129");
}

TEST(StatisticalIdentities, CompleteCoverAtScale) {
  const Vertex n = 200;
  const Graph g = make_complete(n);
  const auto result = estimate_cover_time(g, 0, mc_with(1500, 908));
  expect_ci_contains(result, complete_cover_time(n), 5.0, "complete200");
}

TEST(StatisticalIdentities, PathCoverAtScale) {
  const Vertex n = 80;
  const Graph g = make_path(n);
  const auto result = estimate_cover_time(g, 0, mc_with(1500, 909));
  expect_ci_contains(result, path_cover_time(n), 5.0, "path80");
}

TEST(StatisticalIdentities, StarCoverAtScale) {
  const Vertex n = 120;
  const Graph g = make_star(n);
  const auto result = estimate_cover_time(g, 0, mc_with(1500, 910));
  expect_ci_contains(result, star_cover_time(n), 5.0, "star120");
}

TEST(StatisticalIdentities, LemmaTwelveCouponArgumentAtScale) {
  // K_n with loops, k walks: C^k ≈ n H_{n-1} / k within one round.
  const Vertex n = 128;
  const unsigned k = 8;
  const Graph g = make_complete(n, true);
  const auto result = estimate_k_cover_time(g, 0, k, mc_with(2000, 911));
  const double predicted = complete_with_loops_k_cover_time(n, k);
  EXPECT_NEAR(result.ci.mean, predicted,
              5.0 * result.ci.half_width + 1.0);  // +1: rounding to rounds
}

TEST(StatisticalIdentities, LazyWalkDoublesCoverTime) {
  // A 1/2-lazy walk takes ~2x the steps of the plain walk to cover.
  const Graph g = make_cycle(33);
  CoverOptions lazy;
  lazy.laziness = 0.5;
  const auto plain = estimate_cover_time(g, 0, mc_with(1500, 912));
  const auto slowed = estimate_cover_time(g, 0, mc_with(1500, 913), lazy);
  const double ratio = slowed.ci.mean / plain.ci.mean;
  EXPECT_NEAR(ratio, 2.0, 0.15);
}

}  // namespace
}  // namespace manywalks
