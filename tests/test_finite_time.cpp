#include "theory/finite_time.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "theory/exact.hpp"
#include "util/rng.hpp"
#include "walk/cover.hpp"
#include "walk/walker.hpp"

namespace manywalks {
namespace {

TEST(VisitProbabilityWithin, ZeroStepsOnlyTargetVisited) {
  const Graph g = make_cycle(5);
  const auto p = visit_probability_within(g, 2, 0);
  for (Vertex u = 0; u < 5; ++u) {
    EXPECT_DOUBLE_EQ(p[u], u == 2 ? 1.0 : 0.0);
  }
}

TEST(VisitProbabilityWithin, OneStepIsTransitionProbability) {
  const Graph g = make_star(5);  // hub 0, leaves 1..4
  const auto to_hub = visit_probability_within(g, 0, 1);
  EXPECT_DOUBLE_EQ(to_hub[1], 1.0);  // leaf -> hub deterministically
  const auto to_leaf = visit_probability_within(g, 1, 1);
  EXPECT_NEAR(to_leaf[0], 0.25, 1e-12);   // hub -> that leaf w.p. 1/4
  EXPECT_NEAR(to_leaf[2], 0.0, 1e-12);    // leaf -> other leaf impossible in 1
}

TEST(VisitProbabilityWithin, MonotoneInT) {
  const Graph g = make_cycle(9);
  const auto p2 = visit_probability_within(g, 4, 2);
  const auto p8 = visit_probability_within(g, 4, 8);
  for (Vertex u = 0; u < 9; ++u) {
    EXPECT_LE(p2[u], p8[u] + 1e-12);
  }
}

TEST(VisitProbabilityWithin, ConvergesToOneOnConnectedGraphs) {
  const Graph g = make_barbell(9);
  const auto p = visit_probability_within(g, 0, 100000);
  for (Vertex u = 0; u < 9; ++u) EXPECT_NEAR(p[u], 1.0, 1e-6);
}

TEST(VisitProbabilityWithin, MatchesMonteCarlo) {
  const Graph g = make_grid_2d(4, GridTopology::kOpen);
  const Vertex target = 15;
  const std::uint64_t t = 12;
  const auto exact = visit_probability_within(g, target, t);

  Rng rng(88);
  const int trials = 40000;
  int hits = 0;
  for (int i = 0; i < trials; ++i) {
    Vertex v = 0;
    for (std::uint64_t step = 0; step < t; ++step) {
      v = step_walk(g, v, rng);
      if (v == target) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, exact[0], 0.01);
}

TEST(VisitProbabilityWithin, MarkovBoundAtTwiceHmax) {
  // By Markov, a walk of length 2 h_max reaches any vertex with
  // probability >= 1/2 — the paper's Thm 14 step.
  for (const Graph& g : {make_cycle(11), make_star(8), make_barbell(9)}) {
    const double h_max = hitting_extremes(g).h_max;
    const auto t = static_cast<std::uint64_t>(std::ceil(2.0 * h_max));
    const PairVisitProbability worst = min_visit_probability_within(g, t);
    EXPECT_GE(worst.probability, 0.5) << describe(g);
  }
}

TEST(MinVisitProbabilityWithin, FindsTheHardPair) {
  // On the lollipop the hardest visit within a short budget is into the
  // far end of the stick.
  const Graph g = make_lollipop(10);
  const PairVisitProbability worst = min_visit_probability_within(g, 20);
  EXPECT_EQ(worst.to, 9u);
  EXPECT_LT(worst.probability, 0.5);
}

TEST(Lemma16Probability, FormulaAndClamping) {
  EXPECT_NEAR(lemma16_cover_probability(0.9, 0.5, 2, 3),
              0.9 * (1.0 - 2.0 * 0.125), 1e-12);
  // Large k with tiny ell can make the parenthesis negative: clamp to 0.
  EXPECT_DOUBLE_EQ(lemma16_cover_probability(0.9, 0.1, 100, 1), 0.0);
  EXPECT_DOUBLE_EQ(lemma16_cover_probability(1.0, 1.0, 5, 2), 1.0);
  EXPECT_THROW(lemma16_cover_probability(1.5, 0.5, 2, 2),
               std::invalid_argument);
}

TEST(Lemma16Probability, MeasuredKWalkDominatesBoundOnCycle) {
  // End-to-end miniature of bench/fig_lemma16 on the 17-cycle.
  const Graph g = make_cycle(17);
  const std::uint64_t t_c = 2 * 136;  // 2 * C(17) = 2 * (17·16/2)
  const double h_max = 8.0 * 9.0;     // floor(17/2)*ceil(17/2)
  const auto t_h = static_cast<std::uint64_t>(2.0 * h_max);
  const PairVisitProbability p_h = min_visit_probability_within(g, t_h);
  ASSERT_GE(p_h.probability, 0.5);

  // p_c: cover probability of a single walk within t_c.
  Rng rng(99);
  int covered = 0;
  const int trials = 4000;
  CoverOptions cap;
  cap.step_cap = t_c;
  for (int i = 0; i < trials; ++i) {
    if (sample_cover_time(g, 0, rng, cap).covered) ++covered;
  }
  const double p_c = static_cast<double>(covered) / trials;

  const unsigned k = 3;
  const unsigned ell = 3;
  const double bound = lemma16_cover_probability(p_c, p_h.probability, k, ell);
  const std::uint64_t length = t_c / k + ell * t_h;
  int k_covered = 0;
  CoverOptions k_cap;
  k_cap.step_cap = length;
  for (int i = 0; i < trials; ++i) {
    if (sample_k_cover_time(g, 0, k, rng, k_cap).covered) ++k_covered;
  }
  const double measured = static_cast<double>(k_covered) / trials;
  const double se = std::sqrt(measured * (1.0 - measured) / trials);
  EXPECT_GE(measured + 3.0 * se, bound);
}

}  // namespace
}  // namespace manywalks
