// Compile-and-run check of the umbrella header: a downstream user's
// end-to-end flow using only #include "manywalks.hpp".
#include "manywalks.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace manywalks {
namespace {

TEST(Umbrella, EndToEndFlow) {
  // Build a family instance, profile it, measure a speed-up, classify the
  // regime, serialize the graph, and read it back.
  const FamilyInstance inst = make_family_instance(GraphFamily::kComplete, 48);
  EXPECT_TRUE(is_connected(inst.graph));

  McOptions mc;
  mc.min_trials = 60;
  mc.max_trials = 60;
  mc.seed = 123;
  const std::vector<unsigned> ks = {2, 4, 8};
  const auto curve = estimate_speedup_curve(inst.graph, inst.start, ks, mc);
  const RegimeFit fit = classify_speedup_regime(curve);
  EXPECT_EQ(fit.regime, SpeedupRegime::kLinear);

  const auto h = hitting_extremes(inst.graph);
  EXPECT_NEAR(h.h_max, complete_hitting_time(48), 1e-6);
  EXPECT_LE(curve[0].single.ci.mean,
            matthews_upper_bound(h.h_max, 48) * 1.2);

  std::stringstream ss;
  write_edge_list(ss, inst.graph);
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(back.num_edges(), inst.graph.num_edges());

  TextTable table("smoke");
  table.add_column("k").add_column("S");
  for (const auto& p : curve) {
    table.begin_row().cell(static_cast<std::uint64_t>(p.k)).cell(p.speedup);
  }
  EXPECT_EQ(table.num_rows(), 3u);
}

}  // namespace
}  // namespace manywalks
