#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/properties.hpp"

namespace manywalks {
namespace {

TEST(CycleGen, Structure) {
  const Graph g = make_cycle(7);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.has_edge(6, 0));
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(PathGen, Structure) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_FALSE(g.has_edge(0, 4));
}

TEST(CompleteGen, Structure) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_TRUE(g.is_simple());
}

TEST(CompleteGen, WithSelfLoops) {
  const Graph g = make_complete(4, /*with_self_loops=*/true);
  EXPECT_EQ(g.num_loops(), 4u);
  EXPECT_EQ(g.degree(0), 4u);  // 3 neighbors + 1 loop arc
  EXPECT_EQ(g.num_edges(), 6u + 4u);
}

TEST(CompleteBipartiteGen, Structure) {
  const Graph g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(3), 3u);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_FALSE(g.has_edge(0, 1));  // same side
}

TEST(StarGen, Structure) {
  const Graph g = make_star(9);
  EXPECT_EQ(g.degree(0), 8u);
  for (Vertex v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Grid2dTorusGen, Structure) {
  const Graph g = make_grid_2d(5, GridTopology::kTorus);
  EXPECT_EQ(g.num_vertices(), 25u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.num_edges(), 50u);
  // Wrap edges: (0,0) ~ (0,4) and (0,0) ~ (4,0) in row-major indexing.
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(g.has_edge(0, 20));
}

TEST(Grid2dOpenGen, BoundaryDegrees) {
  const Graph g = make_grid_2d(4, GridTopology::kOpen);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(1), 3u);   // edge
  EXPECT_EQ(g.degree(5), 4u);   // interior
  EXPECT_EQ(g.num_edges(), 24u);
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(GridGen, SideTwoTorusHasNoDuplicateWrap) {
  const Graph g = make_grid({2, 2}, GridTopology::kTorus);
  EXPECT_EQ(g.num_edges(), 4u);  // plain C4, no parallel wrap edges
  EXPECT_TRUE(g.is_simple());
}

TEST(GridGen, ThreeDimensionalTorus) {
  const Graph g = make_torus(3, 3);
  EXPECT_EQ(g.num_vertices(), 27u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_TRUE(is_connected(g));
}

TEST(GridGen, MixedDimensions) {
  const Graph g = make_grid({2, 3, 4}, GridTopology::kOpen);
  EXPECT_EQ(g.num_vertices(), 24u);
  EXPECT_TRUE(is_connected(g));
}

TEST(HypercubeGen, Structure) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.num_edges(), 32u);
  EXPECT_TRUE(g.has_edge(0b0000, 0b1000));
  EXPECT_FALSE(g.has_edge(0b0000, 0b0011));
  EXPECT_TRUE(is_bipartite(g));
}

TEST(BalancedTreeGen, BinaryTree) {
  const Graph g = make_balanced_tree(2, 3);
  EXPECT_EQ(g.num_vertices(), 15u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_EQ(g.degree(0), 2u);    // root
  EXPECT_EQ(g.degree(1), 3u);    // internal
  EXPECT_EQ(g.degree(14), 1u);   // leaf
  EXPECT_TRUE(is_connected(g));
}

TEST(BalancedTreeGen, TernaryTree) {
  const Graph g = make_balanced_tree(3, 2);
  EXPECT_EQ(g.num_vertices(), 13u);
  EXPECT_EQ(g.degree(0), 3u);
}

TEST(BalancedTreeGen, HeightZeroIsSingleVertex) {
  const Graph g = make_balanced_tree(2, 0);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(BarbellGen, Structure) {
  const Graph g = make_barbell(13);
  EXPECT_EQ(g.num_vertices(), 13u);
  const Vertex center = barbell_center(13);
  EXPECT_EQ(center, 6u);
  EXPECT_EQ(g.degree(center), 2u);
  // Bells are cliques of size 6: interior bell vertices have degree 5,
  // ports have degree 6.
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(g.degree(5), 6u);   // left port
  EXPECT_EQ(g.degree(7), 6u);   // right port
  EXPECT_EQ(g.degree(12), 5u);
  EXPECT_TRUE(g.has_edge(5, center));
  EXPECT_TRUE(g.has_edge(center, 7));
  EXPECT_FALSE(g.has_edge(0, 12));
  EXPECT_TRUE(is_connected(g));
  // Edges: 2 * C(6,2) + 2 = 32.
  EXPECT_EQ(g.num_edges(), 32u);
  EXPECT_THROW(make_barbell(12), std::invalid_argument);
}

TEST(GeneralizedBarbellGen, PathInterior) {
  const Graph g = make_generalized_barbell(4, 3);
  EXPECT_EQ(g.num_vertices(), 11u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(4), 2u);  // interior path vertex
  // 2 cliques K4 (6 edges each) + bridge of 4 edges.
  EXPECT_EQ(g.num_edges(), 16u);
}

TEST(GeneralizedBarbellGen, ZeroInteriorJoinsPortsDirectly) {
  const Graph g = make_generalized_barbell(3, 0);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(is_connected(g));
}

TEST(LollipopGen, Structure) {
  const Graph g = make_lollipop(12);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(11), 1u);  // end of the stick
  // Clique is on 2n/3 = 8 vertices.
  EXPECT_EQ(g.degree(0), 7u);
}

TEST(MargulisGen, ExactlyEightRegular) {
  for (Vertex side : {2u, 3u, 5u, 8u}) {
    const Graph g = make_margulis_expander(side);
    EXPECT_EQ(g.num_vertices(), side * side);
    EXPECT_TRUE(g.is_regular()) << "side=" << side;
    EXPECT_EQ(g.degree(0), 8u);
    EXPECT_EQ(g.num_arcs(), std::uint64_t{side} * side * 8);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(ErdosRenyiGen, EdgeCountNearExpectation) {
  Rng rng(123);
  const Vertex n = 400;
  const double p = 0.05;
  const Graph g = make_erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  const double sd = std::sqrt(expected * (1 - p));
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 6 * sd);
  EXPECT_TRUE(g.is_simple());
}

TEST(ErdosRenyiGen, ExtremeProbabilities) {
  Rng rng(5);
  EXPECT_EQ(make_erdos_renyi(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(make_erdos_renyi(10, 1.0, rng).num_edges(), 45u);
}

TEST(ErdosRenyiGen, Deterministic) {
  Rng a(9);
  Rng b(9);
  const Graph g1 = make_erdos_renyi(100, 0.05, a);
  const Graph g2 = make_erdos_renyi(100, 0.05, b);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  ASSERT_EQ(g1.num_arcs(), g2.num_arcs());
  for (Vertex v = 0; v < 100; ++v) {
    const auto r1 = g1.neighbors(v);
    const auto r2 = g2.neighbors(v);
    ASSERT_EQ(r1.size(), r2.size());
    for (std::size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i], r2[i]);
  }
}

TEST(ErdosRenyiConnectedGen, ProducesConnectedGraph) {
  Rng rng(77);
  const Vertex n = 200;
  const double p = 2.0 * std::log(static_cast<double>(n)) / n;
  const Graph g = make_erdos_renyi_connected(n, p, rng);
  EXPECT_TRUE(is_connected(g));
}

TEST(ErdosRenyiConnectedGen, FailureDiagnosticReportsObservedComponents) {
  // Far below the connectivity threshold every draw fragments; the error
  // must report what the last attempt actually looked like (component
  // count and largest size), not just the generic "raise p" advice.
  Rng rng(5);
  try {
    make_erdos_renyi_connected(64, 0.005, rng, /*max_attempts=*/2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("components, largest"), std::string::npos) << what;
    EXPECT_NE(what.find("of 64 vertices"), std::string::npos) << what;
    EXPECT_NE(what.find("raise p"), std::string::npos) << what;
  }
}

TEST(RandomRegularGen, IsSimpleAndRegular) {
  Rng rng(31);
  for (Vertex d : {3u, 4u, 8u}) {
    const Graph g = make_random_regular(60, d, rng);
    EXPECT_TRUE(g.is_regular()) << "d=" << d;
    EXPECT_EQ(g.degree(0), d);
    EXPECT_TRUE(g.is_simple());
  }
}

TEST(RandomRegularGen, RejectsOddProduct) {
  Rng rng(1);
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);
}

TEST(RandomRegularGen, TypicallyConnected) {
  Rng rng(41);
  const Graph g = make_random_regular(200, 4, rng);
  EXPECT_TRUE(is_connected(g));  // w.h.p. for d >= 3
}

TEST(RandomGeometricGen, RadiusControlsEdges) {
  Rng rng1(55);
  Rng rng2(55);
  const Graph sparse = make_random_geometric(300, 0.05, rng1);
  const Graph dense = make_random_geometric(300, 0.2, rng2);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
  EXPECT_TRUE(dense.is_simple());
}

TEST(RandomGeometricGen, FullRadiusIsComplete) {
  Rng rng(3);
  const Graph g = make_random_geometric(20, std::sqrt(2.0), rng);
  EXPECT_EQ(g.num_edges(), 190u);
}

TEST(RandomGeometricGen, ConnectivityRadiusConnectsWhp) {
  Rng rng(99);
  const Vertex n = 500;
  const Graph g =
      make_random_geometric(n, random_geometric_connectivity_radius(n, 3.0), rng);
  EXPECT_TRUE(is_connected(g));
}

// Property sweep: every deterministic family is connected with the expected
// vertex count.
class DeterministicFamilySweep : public ::testing::TestWithParam<Vertex> {};

TEST_P(DeterministicFamilySweep, AllConnected) {
  const Vertex n = GetParam();
  EXPECT_TRUE(is_connected(make_cycle(n)));
  EXPECT_TRUE(is_connected(make_path(n)));
  EXPECT_TRUE(is_connected(make_complete(n)));
  EXPECT_TRUE(is_connected(make_star(n)));
  if (n % 2 == 1 && n >= 7) {
    EXPECT_TRUE(is_connected(make_barbell(n)));
  }
}

TEST_P(DeterministicFamilySweep, HandshakeLemma) {
  const Vertex n = GetParam();
  for (const Graph& g :
       {make_cycle(n), make_path(n), make_complete(n), make_star(n)}) {
    std::uint64_t degree_sum = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) degree_sum += g.degree(v);
    EXPECT_EQ(degree_sum, g.num_arcs());
    EXPECT_EQ(degree_sum, 2 * g.num_edges() - g.num_loops());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeterministicFamilySweep,
                         ::testing::Values(4, 7, 9, 16, 33, 64));

}  // namespace
}  // namespace manywalks
