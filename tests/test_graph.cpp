#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace manywalks {
namespace {

TEST(GraphBuilderTest, TriangleStructure) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  EXPECT_EQ(g.num_loops(), 0u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_TRUE(g.is_simple());
  EXPECT_TRUE(g.is_regular());
}

TEST(GraphBuilderTest, NeighborsAreSorted) {
  GraphBuilder b(5);
  b.add_edge(2, 4).add_edge(2, 0).add_edge(2, 3).add_edge(2, 1);
  const Graph g = b.build();
  const auto row = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  EXPECT_EQ(row.size(), 4u);
}

TEST(GraphBuilderTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(GraphBuilderTest, IsolatedVerticesHaveDegreeZero) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_EQ(g.min_degree(), 0u);
  EXPECT_EQ(g.max_degree(), 1u);
  EXPECT_FALSE(g.is_regular());
}

TEST(GraphBuilderTest, RejectsOutOfRangeEdges) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(b.add_edge(7, 0), std::invalid_argument);
}

TEST(GraphBuilderTest, RejectsSelfLoopByDefault) {
  GraphBuilder b(3);
  b.add_edge(1, 1);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(GraphBuilderTest, KeepsSelfLoopWhenAllowed) {
  GraphBuilder b(3);
  b.add_edge(1, 1).add_edge(0, 1);
  GraphBuilder::BuildOptions options;
  options.loops = GraphBuilder::LoopPolicy::kKeep;
  const Graph g = b.build(options);
  EXPECT_EQ(g.num_loops(), 1u);
  EXPECT_EQ(g.num_edges(), 2u);
  // Loop contributes one arc: degree(1) = loop + edge to 0 = 2.
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.edge_multiplicity(1, 1), 1u);
  EXPECT_FALSE(g.is_simple());
}

TEST(GraphBuilderTest, RejectsParallelEdgesByDefault) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 0);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(GraphBuilderTest, DedupesParallelEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1);
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kDedupe;
  const Graph g = b.build(options);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_multiplicity(0, 1), 1u);
}

TEST(GraphBuilderTest, KeepsParallelEdges) {
  GraphBuilder b(2);
  b.add_edge(0, 1).add_edge(0, 1).add_edge(0, 1);
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kKeep;
  const Graph g = b.build(options);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.edge_multiplicity(0, 1), 3u);
  EXPECT_FALSE(g.is_simple());
}

TEST(GraphBuilderTest, AddArcMustBeSymmetric) {
  GraphBuilder b(3);
  b.add_arc(0, 1);  // no matching (1, 0) arc
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kKeep;
  EXPECT_THROW(b.build(options), std::invalid_argument);
}

TEST(GraphBuilderTest, SymmetricArcsBuild) {
  GraphBuilder b(3);
  b.add_arc(0, 1).add_arc(1, 0).add_arc(1, 2).add_arc(2, 1);
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kKeep;
  const Graph g = b.build(options);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphFromCsr, ValidatesOffsets) {
  EXPECT_THROW(Graph::from_csr({1, 2}, {0, 0}), std::invalid_argument);
  EXPECT_THROW(Graph::from_csr({0, 3}, {0}), std::invalid_argument);
}

TEST(GraphFromCsr, ValidatesSortedRows) {
  // Vertex 0 row: [1, 0] unsorted.
  EXPECT_THROW(Graph::from_csr({0, 2, 3, 4}, {1, 0, 0, 0}, true),
               std::invalid_argument);
}

TEST(GraphFromCsr, ValidatesSymmetry) {
  // Arc 0->1 without 1->0.
  EXPECT_THROW(Graph::from_csr({0, 1, 1}, {1}, true), std::invalid_argument);
}

TEST(GraphFromCsr, AcceptsValidCsr) {
  const Graph g = Graph::from_csr({0, 1, 2}, {1, 0}, true);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphAccessors, NeighborIndexing) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(0, 2).add_edge(0, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.neighbor(0, 0), 1u);
  EXPECT_EQ(g.neighbor(0, 1), 2u);
  EXPECT_EQ(g.neighbor(0, 2), 3u);
}

TEST(GraphAccessors, HasEdgeChecksRange) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_THROW((void)g.has_edge(0, 5), std::invalid_argument);
}

TEST(Describe, MentionsSizeAndDegrees) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2);
  const Graph g = b.build();
  const std::string d = describe(g);
  EXPECT_NE(d.find("n=3"), std::string::npos);
  EXPECT_NE(d.find("m=2"), std::string::npos);
}

}  // namespace
}  // namespace manywalks
