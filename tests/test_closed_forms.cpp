#include "theory/closed_forms.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace manywalks {
namespace {

TEST(Harmonic, SmallValues) {
  EXPECT_DOUBLE_EQ(harmonic_number(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_number(1), 1.0);
  EXPECT_NEAR(harmonic_number(2), 1.5, 1e-14);
  EXPECT_NEAR(harmonic_number(4), 25.0 / 12.0, 1e-14);
  EXPECT_NEAR(harmonic_number(10), 2.9289682539682538, 1e-12);
}

TEST(Harmonic, AsymptoticAgreesWithSummation) {
  // H_n ~ ln n + gamma; check the two regimes agree at large n.
  const double direct = harmonic_number(10'000'000);
  const double asym = std::log(1e7) + kEulerGamma + 1.0 / (2e7);
  EXPECT_NEAR(direct, asym, 1e-9);
}

TEST(Harmonic, Monotone) {
  for (std::uint64_t n = 1; n < 100; ++n) {
    EXPECT_GT(harmonic_number(n + 1), harmonic_number(n));
  }
}

TEST(CycleForms, CoverTime) {
  EXPECT_DOUBLE_EQ(cycle_cover_time(3), 3.0);
  EXPECT_DOUBLE_EQ(cycle_cover_time(5), 10.0);
  EXPECT_DOUBLE_EQ(cycle_cover_time(100), 4950.0);
}

TEST(CycleForms, HittingTime) {
  EXPECT_DOUBLE_EQ(cycle_hitting_time(10, 1), 9.0);
  EXPECT_DOUBLE_EQ(cycle_hitting_time(10, 5), 25.0);
  EXPECT_DOUBLE_EQ(cycle_max_hitting_time(10), 25.0);
  EXPECT_DOUBLE_EQ(cycle_max_hitting_time(9), 4.0 * 5.0);
  EXPECT_THROW(cycle_hitting_time(10, 6), std::invalid_argument);
}

TEST(PathForms, CoverAndHitting) {
  EXPECT_DOUBLE_EQ(path_cover_time(3), 4.0);
  EXPECT_DOUBLE_EQ(path_cover_time(10), 81.0);
  EXPECT_DOUBLE_EQ(path_hitting_time(5, 0, 4), 16.0);
  EXPECT_DOUBLE_EQ(path_hitting_time(5, 1, 3), 8.0);
  // Mirrored direction.
  EXPECT_DOUBLE_EQ(path_hitting_time(3, 1, 0), 3.0);
  EXPECT_DOUBLE_EQ(path_hitting_time(5, 4, 0), 16.0);
}

TEST(CompleteForms, CoverHitting) {
  EXPECT_DOUBLE_EQ(complete_hitting_time(5), 4.0);
  EXPECT_NEAR(complete_cover_time(3), 3.0, 1e-12);          // 2 * H_2
  EXPECT_NEAR(complete_cover_time(5), 4.0 * (25.0 / 12.0), 1e-12);
  EXPECT_NEAR(complete_with_loops_cover_time(4), 4.0 * harmonic_number(3),
              1e-12);
  EXPECT_NEAR(complete_with_loops_k_cover_time(4, 2),
              2.0 * harmonic_number(3), 1e-12);
}

TEST(StarForms, CoverAndHitting) {
  EXPECT_NEAR(star_cover_time(3), 5.0, 1e-12);  // 2*2*H_2 - 1
  EXPECT_DOUBLE_EQ(star_max_hitting_time(5), 8.0);
  EXPECT_DOUBLE_EQ(star_max_hitting_time(3), 4.0);
}

TEST(AsymptoticForms, PositiveAndMonotone) {
  EXPECT_GT(torus2d_cover_time_asymptotic(100), 0.0);
  EXPECT_GT(torus2d_cover_time_asymptotic(400),
            torus2d_cover_time_asymptotic(100));
  EXPECT_GT(torusd_cover_time_asymptotic(1000, 3), 0.0);
  EXPECT_GT(hypercube_cover_time_asymptotic(256), 0.0);
  EXPECT_GT(nlogn_cover_time(64), 0.0);
  EXPECT_DOUBLE_EQ(barbell_cover_time_order(10), 100.0);
  EXPECT_DOUBLE_EQ(lollipop_cover_time_order(10), 1000.0);
}

TEST(AsymptoticForms, Torus2dMatchesDprzConstant) {
  // (1/pi) n ln^2 n at n = e^2: (1/pi) e^2 * 4.
  const double n = std::exp(2.0);
  EXPECT_NEAR(torus2d_cover_time_asymptotic(static_cast<std::uint64_t>(n + 0.5)),
              4.0 * 7.0 / 3.14159, 4.0);  // loose: integer rounding of n
}

}  // namespace
}  // namespace manywalks
