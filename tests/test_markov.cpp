#include "linalg/markov.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace manywalks {
namespace {

TEST(StationaryDistribution, ProportionalToDegree) {
  const Graph g = make_star(5);  // hub degree 4, leaves degree 1
  const auto pi = stationary_distribution(g);
  EXPECT_DOUBLE_EQ(pi[0], 0.5);
  for (Vertex v = 1; v < 5; ++v) EXPECT_DOUBLE_EQ(pi[v], 0.125);
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-12);
}

TEST(StationaryDistribution, UniformOnRegularGraphs) {
  for (const Graph& g : {make_cycle(6), make_hypercube(3), make_complete(5)}) {
    const auto pi = stationary_distribution(g);
    for (double p : pi) {
      EXPECT_NEAR(p, 1.0 / g.num_vertices(), 1e-12);
    }
  }
}

TEST(StationaryDistribution, LoopsCountOnce) {
  const Graph g = make_complete(4, /*with_self_loops=*/true);
  const auto pi = stationary_distribution(g);
  for (double p : pi) EXPECT_NEAR(p, 0.25, 1e-12);
}

TEST(EvolveDistribution, PreservesMass) {
  const Graph g = make_barbell(9);
  std::vector<double> p(g.num_vertices(), 0.0);
  p[0] = 1.0;
  std::vector<double> q;
  for (int t = 0; t < 20; ++t) {
    evolve_distribution(g, p, q);
    p.swap(q);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
  }
}

TEST(EvolveDistribution, OneStepOnTriangle) {
  const Graph g = make_cycle(3);
  std::vector<double> p = {1.0, 0.0, 0.0};
  std::vector<double> q;
  evolve_distribution(g, p, q);
  EXPECT_NEAR(q[0], 0.0, 1e-15);
  EXPECT_NEAR(q[1], 0.5, 1e-15);
  EXPECT_NEAR(q[2], 0.5, 1e-15);
}

TEST(EvolveDistribution, StationaryIsFixedPoint) {
  const Graph g = make_star(7);
  const auto pi = stationary_distribution(g);
  std::vector<double> next;
  evolve_distribution(g, pi, next);
  EXPECT_NEAR(l1_distance(pi, next), 0.0, 1e-12);
}

TEST(EvolveDistribution, LazyHalvesMotion) {
  const Graph g = make_cycle(3);
  std::vector<double> p = {1.0, 0.0, 0.0};
  std::vector<double> q;
  evolve_distribution(g, p, q, /*laziness=*/0.5);
  EXPECT_NEAR(q[0], 0.5, 1e-15);
  EXPECT_NEAR(q[1], 0.25, 1e-15);
  EXPECT_NEAR(q[2], 0.25, 1e-15);
}

TEST(L1Distance, BasicProperties) {
  const std::vector<double> a = {0.5, 0.5, 0.0};
  const std::vector<double> b = {0.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(l1_distance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(l1_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(total_variation(a, b), 0.5);
}

TEST(TransitionMatrixDense, RowsAreStochastic) {
  const Graph g = make_barbell(9);
  const DenseMatrix p = transition_matrix_dense(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    double row_sum = 0.0;
    for (Vertex u = 0; u < g.num_vertices(); ++u) row_sum += p.at(v, u);
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
}

TEST(TransitionMatrixDense, EntriesMatchDegrees) {
  const Graph g = make_star(4);
  const DenseMatrix p = transition_matrix_dense(g);
  EXPECT_NEAR(p.at(0, 1), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(p.at(1, 0), 1.0, 1e-15);
  EXPECT_NEAR(p.at(1, 2), 0.0, 1e-15);
}

TEST(TransitionMatrixDense, SelfLoopWeight) {
  const Graph g = make_complete(3, /*with_self_loops=*/true);
  const DenseMatrix p = transition_matrix_dense(g);
  EXPECT_NEAR(p.at(0, 0), 1.0 / 3.0, 1e-15);
}

TEST(TransitionMatrixDense, LazinessAddsDiagonal) {
  const Graph g = make_cycle(4);
  const DenseMatrix p = transition_matrix_dense(g, 0.5);
  EXPECT_NEAR(p.at(0, 0), 0.5, 1e-15);
  EXPECT_NEAR(p.at(0, 1), 0.25, 1e-15);
}

TEST(MixingTime, CompleteWithLoopsMixesInOneStep) {
  const Graph g = make_complete(16, /*with_self_loops=*/true);
  const auto result = mixing_time(g);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.time, 1u);
}

TEST(MixingTime, EvenCycleNeverConverges) {
  const Graph g = make_cycle(8);  // bipartite: plain walk is periodic
  MixingOptions options;
  options.max_steps = 2000;
  const auto result = mixing_time(g, options);
  EXPECT_FALSE(result.converged);
}

TEST(MixingTime, LazyWalkConvergesOnEvenCycle) {
  const Graph g = make_cycle(8);
  MixingOptions options;
  options.laziness = 0.5;
  options.max_steps = 100000;
  const auto result = mixing_time(g, options);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.time, 0u);
}

TEST(MixingTime, GrowsQuadraticallyOnOddCycles) {
  MixingOptions options;
  options.max_steps = 1'000'000;
  options.sources = {0};  // vertex-transitive: one source suffices
  const auto small = mixing_time(make_cycle(17), options);
  const auto large = mixing_time(make_cycle(51), options);
  ASSERT_TRUE(small.converged);
  ASSERT_TRUE(large.converged);
  const double ratio = static_cast<double>(large.time) /
                       static_cast<double>(small.time);
  // n tripled => t_mix should grow ~9x (allow (2, 20) for slack).
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(MixingTime, MargulisMixesFast) {
  const Graph g = make_margulis_expander(8);  // n = 64, aperiodic (loops)
  MixingOptions options;
  options.max_steps = 10000;
  const auto result = mixing_time(g, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.time, 40u);  // O(log n) with a small constant
}

TEST(MixingTime, SubsetOfSourcesRuns) {
  const Graph g = make_cycle(9);
  MixingOptions options;
  options.sources = {0, 4};
  options.max_steps = 100000;
  const auto result = mixing_time(g, options);
  EXPECT_TRUE(result.converged);
}

}  // namespace
}  // namespace manywalks
