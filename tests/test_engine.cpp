#include "walk/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "util/thread_pool.hpp"
#include "walk/cover.hpp"
#include "walk/visit_tracker.hpp"
#include "walk/walker.hpp"

namespace manywalks {
namespace {

/// Reference implementation: the seed's per-step k-walk loop, kept here as
/// the oracle for the engine's determinism contract (monte_carlo.hpp: trial
/// i under master seed s always uses make_trial_rng(s, i) and must see the
/// same stream regardless of which code path advances the tokens).
CoverSample reference_cover(const Graph& g, std::span<const Vertex> starts,
                            Vertex target, Rng& rng,
                            const CoverOptions& options = {}) {
  VisitTracker tracker(g.num_vertices());
  std::vector<Vertex> tokens(starts.begin(), starts.end());
  for (Vertex s : tokens) tracker.visit(s);
  CoverSample sample;
  if (tracker.num_visited() >= target) {
    sample.covered = true;
    return sample;
  }
  const bool lazy = options.laziness > 0.0;
  std::uint64_t t = 0;
  while (t < options.step_cap) {
    ++t;
    for (Vertex& token : tokens) {
      token = lazy ? step_walk_lazy(g, token, rng, options.laziness)
                   : step_walk(g, token, rng);
      tracker.visit(token);
    }
    if (tracker.num_visited() >= target) {
      sample.steps = t;
      sample.covered = true;
      return sample;
    }
  }
  sample.steps = options.step_cap;
  sample.covered = false;
  return sample;
}

struct Instance {
  const char* name;
  Graph g;
};

std::vector<Instance> test_instances() {
  std::vector<Instance> instances;
  instances.push_back({"cycle", make_cycle(64)});
  instances.push_back({"grid2d", make_grid_2d(8)});
  instances.push_back({"hypercube", make_hypercube(6)});
  instances.push_back({"complete", make_complete(32)});
  instances.push_back({"margulis", make_margulis_expander(8)});
  return instances;
}

TEST(WalkEngine, ByteIdenticalToReferenceAcrossTrialStreams) {
  constexpr std::uint64_t kMasterSeed = 0x5eedULL;
  constexpr std::uint64_t kTrials = 24;
  for (const auto& [name, g] : test_instances()) {
    WalkEngine engine(g);
    for (unsigned k : {1u, 3u, 16u}) {
      const std::vector<Vertex> starts(k, 0);
      for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
        Rng ref_rng = make_trial_rng(kMasterSeed, trial);
        Rng eng_rng = make_trial_rng(kMasterSeed, trial);
        const CoverSample expected =
            reference_cover(g, starts, g.num_vertices(), ref_rng);
        engine.reset(starts);
        const CoverSample actual =
            engine.run_until_visited(g.num_vertices(), eng_rng);
        ASSERT_EQ(expected.steps, actual.steps)
            << name << " k=" << k << " trial=" << trial;
        ASSERT_EQ(expected.covered, actual.covered)
            << name << " k=" << k << " trial=" << trial;
        // Same draws consumed, not just same result.
        ASSERT_EQ(ref_rng.state(), eng_rng.state())
            << name << " k=" << k << " trial=" << trial;
      }
    }
  }
}

TEST(WalkEngine, ByteIdenticalToReferenceWithLaziness) {
  const Graph g = make_grid_2d(8);
  WalkEngine engine(g);
  CoverOptions options;
  options.laziness = 0.3;
  const std::vector<Vertex> starts(4, 2);
  for (std::uint64_t trial = 0; trial < 16; ++trial) {
    Rng ref_rng = make_trial_rng(99, trial);
    Rng eng_rng = make_trial_rng(99, trial);
    const CoverSample expected =
        reference_cover(g, starts, g.num_vertices(), ref_rng, options);
    engine.reset(starts);
    const CoverSample actual =
        engine.run_until_visited(g.num_vertices(), eng_rng, options);
    EXPECT_EQ(expected.steps, actual.steps) << "trial=" << trial;
    EXPECT_EQ(ref_rng.state(), eng_rng.state()) << "trial=" << trial;
  }
}

TEST(WalkEngine, StepCapTruncates) {
  const Graph g = make_cycle(1024);  // cover needs ~n^2/2 steps, cap first
  WalkEngine engine(g);
  const Vertex starts[1] = {0};
  CoverOptions options;
  options.step_cap = 10;
  Rng rng(1);
  engine.reset(starts);
  const CoverSample sample = engine.run_until_visited(g.num_vertices(), rng, options);
  EXPECT_FALSE(sample.covered);
  EXPECT_EQ(sample.steps, 10u);

  // A zero cap runs no rounds at all.
  Rng rng2(1);
  options.step_cap = 0;
  engine.reset(starts);
  const CoverSample none = engine.run_until_visited(g.num_vertices(), rng2, options);
  EXPECT_FALSE(none.covered);
  EXPECT_EQ(none.steps, 0u);
  EXPECT_EQ(rng2.state(), Rng(1).state());  // no draws consumed
}

TEST(WalkEngine, AlreadyCoveredStartsAgreeAcrossK) {
  // target <= #distinct starts: covered at t=0 with zero steps and zero RNG
  // draws, for k = 1 and k > 1 alike.
  const Graph g = make_complete(8);
  WalkEngine engine(g);
  for (unsigned k : {1u, 5u}) {
    const std::vector<Vertex> starts(k, 3);
    Rng rng(42);
    engine.reset(starts);
    const CoverSample sample = engine.run_until_visited(1, rng);
    EXPECT_TRUE(sample.covered) << "k=" << k;
    EXPECT_EQ(sample.steps, 0u) << "k=" << k;
    EXPECT_EQ(rng.state(), Rng(42).state()) << "k=" << k;
  }
}

TEST(WalkEngine, RunForStepsMatchesRoundGranularity) {
  const Graph g = make_grid_2d(8);
  const std::vector<Vertex> starts = {0, 5, 9};
  // Advancing in two chunks must equal one combined run (same RNG stream).
  WalkEngine a(g);
  WalkEngine b(g);
  Rng rng_a(7);
  Rng rng_b(7);
  a.reset(starts);
  a.run_for_steps(10, rng_a);
  a.run_for_steps(6, rng_a);
  b.reset(starts);
  b.run_for_steps(16, rng_b);
  EXPECT_EQ(rng_a.state(), rng_b.state());
  ASSERT_EQ(a.tokens().size(), b.tokens().size());
  for (std::size_t i = 0; i < a.tokens().size(); ++i) {
    EXPECT_EQ(a.tokens()[i], b.tokens()[i]);
  }
  EXPECT_EQ(a.num_visited(), b.num_visited());
}

TEST(WalkEngine, VisitCountsSumToTokenSteps) {
  const Graph g = make_cycle(32);
  WalkEngine engine(g);
  const std::vector<Vertex> starts = {0, 16};
  engine.reset(starts);
  std::vector<std::uint64_t> counts(g.num_vertices(), 0);
  Rng rng(11);
  engine.run_for_steps(100, rng, 0.0, counts.data());
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  EXPECT_EQ(total, 200u);  // 2 tokens x 100 rounds
}

TEST(WalkEngine, ValidatesArguments) {
  const Graph g = make_cycle(8);
  WalkEngine engine(g);
  // Running a never-reset engine must throw, not spin forever on zero
  // tokens.
  {
    Rng rng(3);
    WalkEngine unseeded(g);
    EXPECT_THROW(unseeded.run_until_visited(1, rng), std::invalid_argument);
    EXPECT_THROW(unseeded.run_for_steps(1, rng), std::invalid_argument);
  }
  EXPECT_THROW(engine.reset({}), std::invalid_argument);
  const Vertex bad[1] = {8};
  EXPECT_THROW(engine.reset(bad), std::invalid_argument);

  const Vertex ok[1] = {0};
  engine.reset(ok);
  Rng rng(1);
  CoverOptions options;
  options.laziness = 1.0;
  EXPECT_THROW(engine.run_until_visited(g.num_vertices(), rng, options),
               std::invalid_argument);
  EXPECT_THROW(engine.run_for_steps(1, rng, -0.1), std::invalid_argument);
}

TEST(WalkEngine, CsrSubstrateInstantiationIsTheGraphEngine) {
  // WalkEngine IS WalkEngineT<CsrSubstrate>: a bare template instantiation
  // over the wrapped CSR arrays must consume the same draws and sample the
  // same cover times as both the Graph-facing engine and the reference
  // per-step walker (the RNG-stream contract the substrate refactor must
  // not break).
  for (const auto& [name, g] : test_instances()) {
    WalkEngineT<CsrSubstrate> substrate_engine{CsrSubstrate(g)};
    const std::vector<Vertex> starts(3, 0);
    for (std::uint64_t trial = 0; trial < 12; ++trial) {
      Rng ref_rng = make_trial_rng(0xabcULL, trial);
      Rng eng_rng = make_trial_rng(0xabcULL, trial);
      const CoverSample expected =
          reference_cover(g, starts, g.num_vertices(), ref_rng);
      substrate_engine.reset(starts);
      const CoverSample actual =
          substrate_engine.run_until_visited(g.num_vertices(), eng_rng);
      ASSERT_EQ(expected.steps, actual.steps) << name << " trial=" << trial;
      ASSERT_EQ(ref_rng.state(), eng_rng.state()) << name << " trial=" << trial;
    }
  }
}

TEST(WalkEngine, BoundToTracksLiveCsrArrays) {
  const Graph a = make_cycle(16);
  const Graph b = make_cycle(16);  // same shape, different arrays
  WalkEngine engine(a);
  EXPECT_TRUE(engine.bound_to(a));
  EXPECT_FALSE(engine.bound_to(b));

  // bound_to is a pure query: an unwalkable graph yields false, it does
  // not throw (only *binding* to such a graph does).
  GraphBuilder builder(3);
  builder.add_edge(0, 1);  // vertex 2 isolated
  const Graph unwalkable = builder.build();
  EXPECT_FALSE(engine.bound_to(unwalkable));
}

TEST(CoverSamplers, InterleavedGraphsStayDeterministic) {
  // The free samplers reuse a per-thread engine; alternating between two
  // graphs must rebind correctly and reproduce the single-graph sequences.
  const Graph a = make_cycle(32);
  const Graph b = make_grid_2d(6);
  std::vector<std::uint64_t> lone_a, lone_b;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    Rng rng = make_trial_rng(1, trial);
    lone_a.push_back(sample_cover_time(a, 0, rng).steps);
  }
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    Rng rng = make_trial_rng(2, trial);
    lone_b.push_back(sample_k_cover_time(b, 0, 3, rng).steps);
  }
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    Rng rng_a = make_trial_rng(1, trial);
    EXPECT_EQ(sample_cover_time(a, 0, rng_a).steps, lone_a[trial]);
    Rng rng_b = make_trial_rng(2, trial);
    EXPECT_EQ(sample_k_cover_time(b, 0, 3, rng_b).steps, lone_b[trial]);
  }
}

TEST(WalkEngine, ShardCountAndThreadCountAreInvisible) {
  // Determinism contract v3: for a fixed seed, the sharded round driver
  // must be BIT-identical to the serial lane path — same steps, same
  // visited count, same visited set — for every shard count, with and
  // without a worker team, for both tracker models.
  constexpr std::uint64_t kMasterSeed = 0xc3ULL;
  ThreadPool pool1(1);
  ThreadPool pool3(3);
  for (const auto& [name, g] : test_instances()) {
    WalkEngine serial(g);
    WalkEngine sharded(g);
    const std::vector<Vertex> starts(16, 0);
    const auto target = static_cast<Vertex>(g.num_vertices());
    for (std::uint64_t trial = 0; trial < 8; ++trial) {
      CoverOptions lane;
      lane.rng_mode = RngMode::kLane;
      Rng ref_rng = make_trial_rng(kMasterSeed, trial);
      serial.reset(starts);
      const CoverSample expected = serial.run_until_visited(target, ref_rng, lane);
      for (const ShardTrackerKind kind :
           {ShardTrackerKind::kSharded, ShardTrackerKind::kAtomic}) {
        for (const unsigned shards : {1u, 2u, 8u}) {
          for (ThreadPool* pool : {(ThreadPool*)nullptr, &pool1, &pool3}) {
            CoverOptions opt = lane;
            opt.lane_shards = shards;
            opt.shard_pool = pool;
            opt.shard_tracker = kind;
            Rng rng = make_trial_rng(kMasterSeed, trial);
            sharded.reset(starts);
            const CoverSample actual = sharded.run_until_visited(target, rng, opt);
            const char* kind_name =
                kind == ShardTrackerKind::kSharded ? "sharded" : "atomic";
            ASSERT_EQ(expected.steps, actual.steps)
                << name << " trial=" << trial << " shards=" << shards
                << " tracker=" << kind_name << " pool=" << (pool != nullptr);
            ASSERT_EQ(expected.covered, actual.covered) << name;
            ASSERT_EQ(serial.num_visited(), sharded.num_visited()) << name;
            for (Vertex v = 0; v < g.num_vertices(); ++v) {
              ASSERT_EQ(serial.visited(v), sharded.visited(v))
                  << name << " v=" << v << " shards=" << shards;
            }
          }
        }
      }
    }
  }
}

TEST(WalkEngine, ShardedPartialTargetsMatchSerial) {
  // Partial-cover targets exercise the merge-on-demand bound: the sharded
  // driver must stop at exactly the serial crossing round, never one late
  // (a late stop means the cover decision diverged or the bound missed).
  const Graph g = make_cycle(512);
  WalkEngine serial(g);
  WalkEngine sharded(g);
  ThreadPool pool(2);
  const std::vector<Vertex> starts(8, 0);
  for (const Vertex target : {Vertex{9}, Vertex{64}, Vertex{256}}) {
    for (std::uint64_t trial = 0; trial < 12; ++trial) {
      CoverOptions lane;
      lane.rng_mode = RngMode::kLane;
      Rng ref_rng = make_trial_rng(0xeeULL, trial);
      serial.reset(starts);
      const CoverSample expected = serial.run_until_visited(target, ref_rng, lane);
      CoverOptions opt = lane;
      opt.lane_shards = 4;
      opt.shard_pool = &pool;
      Rng rng = make_trial_rng(0xeeULL, trial);
      sharded.reset(starts);
      const CoverSample actual = sharded.run_until_visited(target, rng, opt);
      ASSERT_EQ(expected.steps, actual.steps)
          << "target=" << target << " trial=" << trial;
      ASSERT_EQ(serial.num_visited(), sharded.num_visited());
    }
  }
}

TEST(WalkEngine, ShardedStepCapTruncatesLikeSerial) {
  const Graph g = make_cycle(1024);
  ThreadPool pool(2);
  WalkEngine engine(g);
  const std::vector<Vertex> starts(4, 0);
  CoverOptions opt;
  opt.rng_mode = RngMode::kLane;
  opt.step_cap = 10;
  opt.lane_shards = 2;
  opt.shard_pool = &pool;
  Rng rng(5);
  engine.reset(starts);
  const CoverSample sample =
      engine.run_until_visited(g.num_vertices(), rng, opt);
  EXPECT_FALSE(sample.covered);
  EXPECT_EQ(sample.steps, 10u);
  // The capped run's visited set is still exact (the final round merges).
  Vertex bits = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) bits += engine.visited(v);
  EXPECT_EQ(bits, engine.num_visited());
}

TEST(WalkEngine, LaneAndSharedStreamDistributionsAgree) {
  // The sharded lane path and the legacy shared-stream path draw from
  // different streams, so their samples differ trial by trial — but they
  // sample the SAME cover-time distribution. A two-sample mean test with a
  // generous gate catches gross distributional drift (e.g. a shard losing
  // or double-counting visits) without flaking.
  const Graph g = make_margulis_expander(8);
  ThreadPool pool(2);
  WalkEngine engine(g);
  const std::vector<Vertex> starts(8, 0);
  const auto target = static_cast<Vertex>(g.num_vertices());
  constexpr int kTrials = 300;
  double sum_lane = 0, sum_legacy = 0, sq_lane = 0, sq_legacy = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    CoverOptions sharded;
    sharded.rng_mode = RngMode::kLane;
    sharded.lane_shards = 4;
    sharded.shard_pool = &pool;
    Rng rng_lane = make_trial_rng(0x10, trial);
    engine.reset(starts);
    const auto lane =
        static_cast<double>(engine.run_until_visited(target, rng_lane, sharded).steps);
    CoverOptions legacy;
    legacy.rng_mode = RngMode::kSharedLegacy;
    Rng rng_legacy = make_trial_rng(0x20, trial);
    engine.reset(starts);
    const auto shared =
        static_cast<double>(engine.run_until_visited(target, rng_legacy, legacy).steps);
    sum_lane += lane;
    sum_legacy += shared;
    sq_lane += lane * lane;
    sq_legacy += shared * shared;
  }
  const double mean_lane = sum_lane / kTrials;
  const double mean_legacy = sum_legacy / kTrials;
  const double var_lane = sq_lane / kTrials - mean_lane * mean_lane;
  const double var_legacy = sq_legacy / kTrials - mean_legacy * mean_legacy;
  const double se = std::sqrt((var_lane + var_legacy) / kTrials);
  // ~5.5 sigma two-sample z gate: false-positive odds are negligible while
  // any systematic visit-accounting bug shifts the mean far beyond it.
  EXPECT_LT(std::abs(mean_lane - mean_legacy), 5.5 * se + 1e-9)
      << "lane mean " << mean_lane << " vs legacy mean " << mean_legacy;
}

TEST(WalkEngine, RejectsImpossibleTarget) {
  const Graph g = make_cycle(8);
  WalkEngine engine(g);
  const Vertex starts[1] = {0};
  engine.reset(starts);
  Rng rng(9);
  EXPECT_THROW(engine.run_until_visited(9, rng), std::invalid_argument);
}

TEST(WalkEngine, RejectsUnwalkableGraph) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);  // vertex 2 isolated
  const Graph g = builder.build();
  EXPECT_THROW(WalkEngine{g}, std::invalid_argument);
}

}  // namespace
}  // namespace manywalks
