// Exact k-walk hitting-time oracle and its cross-check against the
// multi-token hitting sampler (the pursuit quantity from examples/hunting).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "theory/exact.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "walk/hitting.hpp"

namespace manywalks {
namespace {

TEST(ExactKHitting, KOneMatchesLinearSolve) {
  for (const Graph& g : {make_cycle(9), make_star(7), make_barbell(9)}) {
    const Vertex target = g.num_vertices() / 2;
    const auto h = hitting_times_to(g, target);
    for (Vertex u = 0; u < g.num_vertices(); u += 2) {
      const std::vector<Vertex> starts = {u};
      EXPECT_NEAR(exact_k_hitting_time(g, starts, target, 4096), h[u], 1e-7)
          << describe(g) << " u=" << u;
    }
  }
}

TEST(ExactKHitting, TokenOnTargetIsZero) {
  const Graph g = make_cycle(5);
  const std::vector<Vertex> starts = {0, 3};
  EXPECT_DOUBLE_EQ(exact_k_hitting_time(g, starts, 3), 0.0);
}

TEST(ExactKHitting, TriangleTwoTokensHandComputed) {
  // Two tokens at vertex 0 of C_3, target 1: per round each token hits 1
  // with probability 1/2 independently while both sit on the same
  // non-target vertex, so P[hit] = 3/4 per round: E = 4/3... except after
  // a miss both tokens are at {0,2}\{1} — possibly split. Compute by
  // oracle and check against first-step arithmetic:
  //   From (0,0): P(hit) = 3/4, else lands on (2,2) — symmetric to (0,0).
  //   E = 1 + (1/4) E  =>  E = 4/3.
  const Graph g = make_cycle(3);
  const std::vector<Vertex> starts = {0, 0};
  EXPECT_NEAR(exact_k_hitting_time(g, starts, 1), 4.0 / 3.0, 1e-10);
}

TEST(ExactKHitting, MoreTokensNeverSlower) {
  const Graph g = make_cycle(7);
  const Vertex target = 3;
  const std::vector<Vertex> one = {0};
  const std::vector<Vertex> two = {0, 0};
  const std::vector<Vertex> three = {0, 0, 0};
  const double h1 = exact_k_hitting_time(g, one, target);
  const double h2 = exact_k_hitting_time(g, two, target);
  const double h3 = exact_k_hitting_time(g, three, target, 4096);
  EXPECT_LT(h2, h1);
  EXPECT_LT(h3, h2);
}

TEST(ExactKHitting, IndependenceMakesSymmetricSplitsEquivalent) {
  // Unlike the cover time, the k-walk HITTING time depends only on each
  // token's marginal hitting distribution (tokens are independent and the
  // event is a minimum). On C_9 with target 4, starts {0,8} are both at
  // ring distance 4, so the split placement exactly equals the pack.
  const Graph g = make_cycle(9);
  const Vertex target = 4;
  const std::vector<Vertex> pack = {0, 0};
  const std::vector<Vertex> split = {0, 8};
  EXPECT_NEAR(exact_k_hitting_time(g, split, target),
              exact_k_hitting_time(g, pack, target), 1e-9);
}

TEST(ExactKHitting, CloserTokensHitFaster) {
  const Graph g = make_cycle(9);
  const Vertex target = 4;
  const std::vector<Vertex> far_pack = {0, 0};
  const std::vector<Vertex> close_split = {3, 5};  // distance 1 each
  EXPECT_LT(exact_k_hitting_time(g, close_split, target),
            exact_k_hitting_time(g, far_pack, target));
}

TEST(ExactKHitting, CoverTimeDoesDependOnSplitting) {
  // Contrast with the cover time, where splitting the pack DOES matter
  // (the union of trajectories, not a minimum, is what counts).
  const Graph g = make_cycle(9);
  const std::vector<Vertex> pack = {0, 0};
  const std::vector<Vertex> split = {0, 4};
  EXPECT_LT(exact_k_cover_time(g, split, 4096),
            exact_k_cover_time(g, pack, 4096));
}

TEST(ExactKHitting, MatchesMultiHittingSampler) {
  const Graph g = make_star(6);
  const std::vector<Vertex> starts = {1, 2};
  const Vertex target = 5;
  const double exact = exact_k_hitting_time(g, starts, target, 4096);

  Rng rng(314);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(
        sample_multi_hitting_time(g, starts, target, rng).steps));
  }
  const auto ci = mean_confidence_interval(stats);
  EXPECT_NEAR(ci.mean, exact, 5.0 * ci.half_width);
}

TEST(ExactKHitting, MatchesSamplerOnBarbellAcrossBells) {
  const Graph g = make_barbell(7);
  const std::vector<Vertex> starts = {0, 0};
  const Vertex target = 6;
  const double exact = exact_k_hitting_time(g, starts, target, 4096);

  Rng rng(315);
  RunningStats stats;
  for (int i = 0; i < 8000; ++i) {
    stats.add(static_cast<double>(
        sample_multi_hitting_time(g, starts, target, rng).steps));
  }
  const auto ci = mean_confidence_interval(stats);
  EXPECT_NEAR(ci.mean, exact, 5.0 * ci.half_width);
}

TEST(ExactKHitting, RejectsOversizedStateSpace) {
  const Graph g = make_cycle(10);
  const std::vector<Vertex> starts = {0, 0, 0};
  EXPECT_THROW(exact_k_hitting_time(g, starts, 5, 729),
               std::invalid_argument);
}

}  // namespace
}  // namespace manywalks
