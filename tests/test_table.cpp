#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace manywalks {
namespace {

TEST(FormatDouble, PlainRange) {
  EXPECT_EQ(format_double(1234.5), "1234");  // 4 significant digits
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(3.14159, 3), "3.14");
  EXPECT_EQ(format_double(0.0), "0");
}

TEST(FormatDouble, ScientificOutsideRange) {
  EXPECT_EQ(format_double(1e9, 3), "1.00e+09");
  EXPECT_EQ(format_double(1e-6, 3), "1.00e-06");
}

TEST(FormatDouble, SpecialValues) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(FormatCount, InsertsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(1000000000ULL), "1,000,000,000");
}

TEST(FormatMeanPm, CombinesBoth) {
  EXPECT_EQ(format_mean_pm(100.0, 5.0), "100 ± 5");
}

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t("My title");
  t.add_column("name", TextTable::Align::kLeft).add_column("value");
  t.begin_row().cell("alpha").cell(std::uint64_t{42});
  t.begin_row().cell("b").cell(std::uint64_t{7});
  const std::string out = t.str();
  EXPECT_NE(out.find("My title"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(TextTableTest, RightAlignmentPadsLeft) {
  TextTable t;
  t.add_column("v");  // right-aligned by default
  t.begin_row().cell(std::uint64_t{1});
  t.begin_row().cell(std::uint64_t{100});
  const std::string out = t.str();
  // The shorter value must be right-aligned under the longer one.
  EXPECT_NE(out.find("  1\n"), std::string::npos);
}

TEST(TextTableTest, NegativeNumbersFormatted) {
  TextTable t;
  t.add_column("v");
  t.begin_row().cell(std::int64_t{-1234});
  EXPECT_NE(t.str().find("-1,234"), std::string::npos);
}

TEST(TextTableTest, RuleInsertsSeparator) {
  TextTable t;
  t.add_column("v");
  t.begin_row().cell("a");
  t.rule();
  t.begin_row().cell("b");
  const std::string out = t.str();
  // Header rule + mid rule = at least two dashed lines.
  std::size_t dashes = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos)
      ++dashes;
  }
  EXPECT_GE(dashes, 2u);
}

TEST(TextTableTest, TooManyCellsThrows) {
  TextTable t;
  t.add_column("v");
  t.begin_row().cell("x");
  EXPECT_THROW(t.cell("y"), std::invalid_argument);
}

TEST(TextTableTest, CellBeforeRowThrows) {
  TextTable t;
  t.add_column("v");
  EXPECT_THROW(t.cell("x"), std::invalid_argument);
}

TEST(TextTableTest, ColumnsAfterRowsThrow) {
  TextTable t;
  t.add_column("v");
  t.begin_row().cell("x");
  EXPECT_THROW(t.add_column("w"), std::invalid_argument);
}

TEST(TextTableTest, StreamOperator) {
  TextTable t;
  t.add_column("v");
  t.begin_row().cell("z");
  std::ostringstream os;
  os << t;
  EXPECT_NE(os.str().find('z'), std::string::npos);
}

}  // namespace
}  // namespace manywalks
