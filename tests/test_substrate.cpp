// The substrate layer's contracts (graph/substrate.hpp):
//   * each implicit substrate enumerates exactly the CSR graph's arc
//     multiset (same walk law), and cycle/torus/complete in exactly CSR
//     order (bit-identical RNG streams);
//   * WalkEngineT over an implicit substrate reproduces the CSR engine /
//     reference-walker samples where the order matches, and is itself
//     deterministic and chunk-consistent everywhere;
//   * the substrate samplers/estimators are deterministic, honor the
//     partial-cover target, and run at giant n with no CSR allocation.
#include "graph/substrate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "mc/estimators.hpp"
#include "walk/cover.hpp"
#include "walk/engine.hpp"

namespace manywalks {
namespace {

// --- concept + accessor contracts -------------------------------------------

static_assert(Substrate<CsrSubstrate>);
static_assert(Substrate<CycleSubstrate>);
static_assert(Substrate<TorusSubstrate>);
static_assert(Substrate<HypercubeSubstrate>);
static_assert(Substrate<CompleteSubstrate>);
static_assert(!Substrate<Graph>);

/// Asserts substrate.neighbor(v, i) == g.neighbor(v, i) for every arc —
/// the strict (order-preserving) binding that makes RNG streams
/// bit-identical between the substrate and CSR engines.
template <Substrate S>
void expect_csr_ordered(const S& substrate, const Graph& g) {
  ASSERT_EQ(substrate.num_vertices(), g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(substrate.degree(v), g.degree(v)) << "v=" << v;
    for (Vertex i = 0; i < g.degree(v); ++i) {
      ASSERT_EQ(substrate.neighbor(v, i), g.neighbor(v, i))
          << "v=" << v << " i=" << i;
    }
  }
}

/// Weaker binding: same neighbor multiset per vertex (same walk law; the
/// hypercube's bit order is a per-vertex permutation of the CSR row).
template <Substrate S>
void expect_same_multiset(const S& substrate, const Graph& g) {
  ASSERT_EQ(substrate.num_vertices(), g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(substrate.degree(v), g.degree(v)) << "v=" << v;
    std::vector<Vertex> from_substrate;
    for (Vertex i = 0; i < substrate.degree(v); ++i) {
      from_substrate.push_back(substrate.neighbor(v, i));
    }
    std::sort(from_substrate.begin(), from_substrate.end());
    const auto row = g.neighbors(v);
    const std::vector<Vertex> from_csr(row.begin(), row.end());
    ASSERT_EQ(from_substrate, from_csr) << "v=" << v;
  }
}

TEST(Substrates, CycleMatchesCsrOrder) {
  for (Vertex n : {3u, 4u, 5u, 64u, 257u}) {
    SCOPED_TRACE(n);
    expect_csr_ordered(CycleSubstrate(n), make_cycle(n));
  }
}

TEST(Substrates, TorusMatchesCsrOrder) {
  for (Vertex side : {3u, 4u, 5u, 8u, 13u}) {
    SCOPED_TRACE(side);
    expect_csr_ordered(TorusSubstrate(side), make_grid_2d(side));
  }
}

TEST(Substrates, CompleteMatchesCsrOrder) {
  for (Vertex n : {2u, 3u, 5u, 32u}) {
    SCOPED_TRACE(n);
    expect_csr_ordered(CompleteSubstrate(n), make_complete(n));
  }
}

TEST(Substrates, HypercubeMatchesCsrMultiset) {
  for (unsigned d : {1u, 3u, 6u}) {
    SCOPED_TRACE(d);
    expect_same_multiset(HypercubeSubstrate(d), make_hypercube(d));
  }
}

TEST(Substrates, CsrSubstrateReadsTheGraphArrays) {
  const Graph g = make_margulis_expander(4);  // loops + parallel edges
  expect_csr_ordered(CsrSubstrate(g), g);
}

TEST(Substrates, EqualityTracksParameters) {
  EXPECT_EQ(CycleSubstrate(10), CycleSubstrate(10));
  EXPECT_NE(CycleSubstrate(10), CycleSubstrate(11));
  EXPECT_EQ(TorusSubstrate(5), TorusSubstrate(5));
  EXPECT_NE(TorusSubstrate(5), TorusSubstrate(6));
  const Graph a = make_cycle(16);
  const Graph b = make_cycle(16);  // same shape, different arrays
  EXPECT_EQ(CsrSubstrate(a), CsrSubstrate(a));
  EXPECT_NE(CsrSubstrate(a), CsrSubstrate(b));
}

TEST(Substrates, ConstructorsValidate) {
  EXPECT_THROW(CycleSubstrate(2), std::invalid_argument);
  EXPECT_THROW(TorusSubstrate(2), std::invalid_argument);
  EXPECT_THROW(TorusSubstrate(1u << 17), std::invalid_argument);  // n overflow
  EXPECT_THROW(HypercubeSubstrate(0), std::invalid_argument);
  EXPECT_THROW(HypercubeSubstrate(32), std::invalid_argument);
  EXPECT_THROW(CompleteSubstrate(1), std::invalid_argument);

  // CsrSubstrate upholds the walkable-by-construction invariant too: a
  // degree-0 vertex would make neighbor() read past its empty row, so a
  // bare WalkEngineT<CsrSubstrate> must be as safe as WalkEngine.
  GraphBuilder builder(3);
  builder.add_edge(0, 1);  // vertex 2 isolated
  const Graph unwalkable = builder.build();
  EXPECT_THROW(CsrSubstrate{unwalkable}, std::invalid_argument);
}

// --- engine equivalence -------------------------------------------------------

/// Runs the same trials through the Graph-facing CSR engine and through
/// WalkEngineT<S>; with a CSR-ordered substrate both the sampled cover
/// times and the RNG states must match draw for draw.
template <Substrate S>
void expect_engine_bit_identical(const S& substrate, const Graph& g,
                                 unsigned k, Vertex target) {
  WalkEngine csr_engine(g);
  WalkEngineT<S> sub_engine(substrate);
  const std::vector<Vertex> starts(k, 0);
  for (std::uint64_t trial = 0; trial < 24; ++trial) {
    Rng csr_rng = make_trial_rng(0x5eedULL, trial);
    Rng sub_rng = make_trial_rng(0x5eedULL, trial);
    csr_engine.reset(starts);
    sub_engine.reset(starts);
    const CoverSample expected = csr_engine.run_until_visited(target, csr_rng);
    const CoverSample actual = sub_engine.run_until_visited(target, sub_rng);
    ASSERT_EQ(expected.steps, actual.steps) << "trial=" << trial;
    ASSERT_EQ(expected.covered, actual.covered) << "trial=" << trial;
    ASSERT_EQ(csr_rng.state(), sub_rng.state()) << "trial=" << trial;
  }
}

TEST(SubstrateEngine, CycleBitIdenticalToCsrEngine) {
  const Vertex n = 96;
  for (unsigned k : {1u, 3u, 16u}) {
    SCOPED_TRACE(k);
    expect_engine_bit_identical(CycleSubstrate(n), make_cycle(n), k, n);
  }
}

TEST(SubstrateEngine, TorusBitIdenticalToCsrEngine) {
  const Vertex side = 8;
  for (unsigned k : {1u, 4u}) {
    SCOPED_TRACE(k);
    expect_engine_bit_identical(TorusSubstrate(side), make_grid_2d(side), k,
                                side * side);
  }
}

TEST(SubstrateEngine, CompleteBitIdenticalToCsrEngine) {
  expect_engine_bit_identical(CompleteSubstrate(32), make_complete(32), 2, 32);
}

TEST(SubstrateEngine, PartialTargetsBitIdenticalToo) {
  const Vertex n = 512;
  expect_engine_bit_identical(CycleSubstrate(n), make_cycle(n), 8,
                              /*target=*/n / 4);
}

TEST(SubstrateEngine, HypercubeMatchesSubstrateReferenceWalk) {
  // The hypercube's neighbor order is a permutation of the CSR row, so
  // streams are not CSR-comparable; instead check the engine against a
  // plain per-step reference over the SAME substrate accessors.
  const HypercubeSubstrate substrate(6);
  const Vertex n = substrate.num_vertices();
  WalkEngineT<HypercubeSubstrate> engine(substrate);
  const std::vector<Vertex> starts(4, 0);
  for (std::uint64_t trial = 0; trial < 16; ++trial) {
    Rng ref_rng = make_trial_rng(11, trial);
    Rng eng_rng = make_trial_rng(11, trial);

    std::vector<bool> visited(n, false);
    std::vector<Vertex> tokens = starts;
    Vertex distinct = 0;
    for (Vertex s : tokens) {
      if (!visited[s]) { visited[s] = true; ++distinct; }
    }
    std::uint64_t steps = 0;
    while (distinct < n) {
      ++steps;
      for (Vertex& token : tokens) {
        token = substrate.neighbor(
            token, ref_rng.uniform_below(substrate.degree(token)));
        if (!visited[token]) { visited[token] = true; ++distinct; }
      }
    }

    engine.reset(starts);
    const CoverSample sample = engine.run_until_visited(n, eng_rng);
    ASSERT_EQ(sample.steps, steps) << "trial=" << trial;
    ASSERT_EQ(ref_rng.state(), eng_rng.state()) << "trial=" << trial;
  }
}

TEST(SubstrateEngine, RunForStepsChunksMatchOneRun) {
  const TorusSubstrate substrate(8);
  const std::vector<Vertex> starts = {0, 5, 9};
  WalkEngineT<TorusSubstrate> a(substrate);
  WalkEngineT<TorusSubstrate> b(substrate);
  Rng rng_a(7);
  Rng rng_b(7);
  a.reset(starts);
  a.run_for_steps(10, rng_a);
  a.run_for_steps(6, rng_a);
  b.reset(starts);
  b.run_for_steps(16, rng_b);
  EXPECT_EQ(rng_a.state(), rng_b.state());
  ASSERT_EQ(a.tokens().size(), b.tokens().size());
  for (std::size_t i = 0; i < a.tokens().size(); ++i) {
    EXPECT_EQ(a.tokens()[i], b.tokens()[i]);
  }
  EXPECT_EQ(a.num_visited(), b.num_visited());
}

// --- samplers + estimators ----------------------------------------------------

TEST(SubstrateSamplers, MatchGraphSamplersOnOrderedFamilies) {
  const Vertex n = 128;
  const Graph g = make_cycle(n);
  const CycleSubstrate substrate(n);
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    Rng graph_rng = make_trial_rng(3, trial);
    Rng sub_rng = make_trial_rng(3, trial);
    const CoverSample expected = sample_k_cover_time(g, 0, 4, graph_rng);
    const CoverSample actual = sample_k_cover_time(substrate, 0, 4, sub_rng);
    EXPECT_EQ(expected.steps, actual.steps) << "trial=" << trial;
  }
}

TEST(SubstrateSamplers, PooledEngineRebindsAcrossSubstrates) {
  // Alternating between two substrates of the same type must rebind the
  // per-thread engine and reproduce the single-substrate sequences.
  const CycleSubstrate small(64);
  const CycleSubstrate large(96);
  std::vector<std::uint64_t> lone_small, lone_large;
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng = make_trial_rng(1, trial);
    lone_small.push_back(sample_cover_time(small, 0, rng).steps);
  }
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng = make_trial_rng(2, trial);
    lone_large.push_back(sample_k_cover_time(large, 0, 3, rng).steps);
  }
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng_small = make_trial_rng(1, trial);
    EXPECT_EQ(sample_cover_time(small, 0, rng_small).steps, lone_small[trial]);
    Rng rng_large = make_trial_rng(2, trial);
    EXPECT_EQ(sample_k_cover_time(large, 0, 3, rng_large).steps,
              lone_large[trial]);
  }
}

TEST(SubstrateEstimators, DeterministicAcrossThreadCounts) {
  const CycleSubstrate substrate(1024);
  McOptions mc;
  mc.min_trials = 12;
  mc.max_trials = 12;
  mc.seed = 99;

  mc.threads = 1;
  const McResult serial =
      estimate_cover_to_target(substrate, 0, 4, /*target=*/256, mc);
  mc.threads = 8;
  const McResult parallel =
      estimate_cover_to_target(substrate, 0, 4, /*target=*/256, mc);
  EXPECT_DOUBLE_EQ(serial.ci.mean, parallel.ci.mean);
  EXPECT_EQ(serial.stats.count(), parallel.stats.count());
  EXPECT_GT(serial.ci.mean, 0.0);
}

TEST(SubstrateEstimators, SpeedupCurveMatchesGraphEstimatorSeeding) {
  // Same seeds, CSR-ordered substrate → the substrate curve must equal the
  // Graph-based estimator's numbers exactly.
  const Vertex n = 128;
  const Graph g = make_cycle(n);
  const CycleSubstrate substrate(n);
  const std::vector<unsigned> ks = {1, 2, 8};
  McOptions mc;
  mc.min_trials = 8;
  mc.max_trials = 8;
  mc.seed = 7;
  ThreadPool pool(2);
  const auto from_graph = estimate_speedup_curve(g, 0, ks, mc, {}, &pool);
  const auto from_substrate =
      estimate_speedup_curve(substrate, 0, ks, mc, {}, &pool);
  ASSERT_EQ(from_graph.size(), from_substrate.size());
  for (std::size_t i = 0; i < from_graph.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_graph[i].speedup, from_substrate[i].speedup) << i;
    EXPECT_DOUBLE_EQ(from_graph[i].multi.ci.mean,
                     from_substrate[i].multi.ci.mean)
        << i;
  }
}

TEST(SubstrateEstimators, CensoredPartialCoverIsFlagged) {
  // A step cap below the target's reach censors every trial; the estimate
  // must say so and never certify the CI target.
  const CycleSubstrate substrate(4096);
  CoverOptions cover;
  cover.step_cap = 4;  // nowhere near covering 1024 vertices
  McOptions mc;
  mc.min_trials = 8;
  mc.max_trials = 8;
  const McResult result =
      estimate_cover_to_target(substrate, 0, 1, /*target=*/1024, mc, cover);
  EXPECT_EQ(result.censored, 8u);
  EXPECT_FALSE(result.target_met);
  EXPECT_DOUBLE_EQ(result.ci.mean, 4.0);  // the cap, an explicit lower bound

  const SpeedupEstimate est = combine_speedup(2, result, result);
  EXPECT_EQ(est.censored, 16u);

  // In a curve, the k = 1 point is the ratio of the baseline with itself:
  // exactly 1 even under censoring, so only the k > 1 ratios are flagged.
  const std::vector<unsigned> ks = {1, 2};
  const auto curve = estimate_speedup_curve_to_target(
      substrate, 0, /*target=*/1024, ks, mc, cover);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_EQ(curve[0].censored, 0u);
  EXPECT_DOUBLE_EQ(curve[0].speedup, 1.0);
  EXPECT_GT(curve[1].censored, 0u);
}

TEST(SubstrateEstimators, GiantImplicitCycleRunsWithoutCsr) {
  // n = 10^7: a CSR graph would be ~160 MB; the substrate trial allocates
  // only the pooled engine's n/8-byte tracker and finishes a partial-cover
  // estimate quickly.
  const Vertex n = 10'000'000;
  const CycleSubstrate substrate(n);
  CoverOptions cover;
  cover.step_cap = 64ULL * 2000 * 2000;
  McOptions mc;
  mc.min_trials = 2;
  mc.max_trials = 2;
  mc.threads = 2;
  const McResult result =
      estimate_cover_to_target(substrate, 0, 8, /*target=*/2000, mc, cover);
  EXPECT_EQ(result.censored, 0u);
  // k walks spread ~ sqrt(t): visiting 2000 distinct vertices needs at
  // least ~(d/2)² / k... sanity-check the order of magnitude only.
  EXPECT_GT(result.ci.mean, 1000.0);
  EXPECT_LT(result.ci.mean, 4e6);
}

}  // namespace
}  // namespace manywalks
