// Proposition 23 (binomial band sandwich) and Lemma 19 (expander visit
// probability) — the paper's two standalone probabilistic lemmas, checked
// against exact binomial arithmetic and Monte-Carlo walks respectively.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "linalg/spectral.hpp"
#include "theory/bounds.hpp"
#include "util/rng.hpp"
#include "walk/walker.hpp"

namespace manywalks {
namespace {

TEST(BinomialBand, ExactProbabilityIsSane) {
  // Band [(c-1)√n, c√n] with c = 2: a thin right-tail slice.
  const double p = binomial_centered_band_probability(1024, 2.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 0.5);
}

TEST(BinomialBand, MatchesNormalApproximation) {
  // For large n the band probability approaches
  // Phi(2c) - Phi(2(c-1)) (X - n/2 ~ Normal(0, n/4)).
  const double c = 2.0;
  const double p = binomial_centered_band_probability(1'000'000, c);
  const auto phi = [](double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); };
  const double normal = phi(2.0 * c) - phi(2.0 * (c - 1.0));
  EXPECT_NEAR(p, normal, 0.1 * normal);
}

class Proposition23Sweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(Proposition23Sweep, SandwichHolds) {
  const auto [n, c] = GetParam();
  ASSERT_GE(static_cast<double>(n), 16.0 * c * c);
  ASSERT_EQ(n % 2, 0u);
  const double p = binomial_centered_band_probability(n, c);
  EXPECT_GE(p, proposition23_lower(c)) << "n=" << n << " c=" << c;
  EXPECT_LE(p, proposition23_upper(c)) << "n=" << n << " c=" << c;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Proposition23Sweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(256, 1024, 4096,
                                                        65536),
                       ::testing::Values(2.0, 2.5, 3.0)));

TEST(BinomialBand, Validation) {
  EXPECT_THROW(proposition23_lower(1.0), std::invalid_argument);
  EXPECT_THROW(binomial_centered_band_probability(0, 2.0),
               std::invalid_argument);
}

TEST(Lemma19, BoundFieldsAreConsistent) {
  const auto bound = lemma19_visit_bound(256, 8.0, 5.0 * std::sqrt(2.0));
  EXPECT_GT(bound.s, 0.0);
  EXPECT_GT(bound.b, 0.0);
  EXPECT_DOUBLE_EQ(bound.walk_length, 2.0 * bound.s);
  EXPECT_GT(bound.probability, 0.0);
  EXPECT_LT(bound.probability, 1.0);
  EXPECT_THROW(lemma19_visit_bound(256, 8.0, 9.0), std::invalid_argument);
}

TEST(Lemma19, VisitProbabilityHoldsOnCertifiedMargulis) {
  // Measure Pr[a walk of length 2s from u visits v] on a certified
  // (n, 8, λ) Margulis expander and check Lemma 19's lower bound.
  const Graph g = make_margulis_expander(16);  // n = 256
  const auto cert = certify_expander(g);
  ASSERT_TRUE(cert.converged);
  const auto bound =
      lemma19_visit_bound(g.num_vertices(), 8.0, cert.lambda);
  const auto walk_len = static_cast<std::uint64_t>(std::ceil(bound.walk_length));

  Rng rng(1919);
  const Vertex u = 0;
  const Vertex v = g.num_vertices() / 2 + 7;  // arbitrary distant target
  const int trials = 60000;
  int hits = 0;
  for (int i = 0; i < trials; ++i) {
    Vertex w = u;
    for (std::uint64_t t = 0; t < walk_len; ++t) {
      w = step_walk(g, w, rng);
      if (w == v) {
        ++hits;
        break;
      }
    }
  }
  const double measured = static_cast<double>(hits) / trials;
  // Allow 3 standard errors of slack below the point estimate.
  const double se = std::sqrt(measured * (1.0 - measured) / trials);
  EXPECT_GE(measured + 3.0 * se, bound.probability)
      << "measured " << measured << " vs bound " << bound.probability;
}

TEST(Lemma19, PerStepVisitRateImprovesWithSmallerLambda) {
  // The raw bound is NOT monotone in λ (a smaller λ also shortens the
  // 2s-step sub-walk), but the guaranteed visit probability PER STEP,
  // probability / (2s) = 1 / (2(2n + 4s + 4bn)), strictly improves as the
  // expander gets better.
  const auto strong = lemma19_visit_bound(256, 8.0, 3.0);
  const auto weak = lemma19_visit_bound(256, 8.0, 7.0);
  EXPECT_GT(strong.probability / strong.walk_length,
            weak.probability / weak.walk_length);
  // A better expander needs a shorter sub-walk.
  EXPECT_LT(strong.walk_length, weak.walk_length);
}

}  // namespace
}  // namespace manywalks
