#include "mc/estimators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "theory/closed_forms.hpp"
#include "theory/exact.hpp"

namespace manywalks {
namespace {

McOptions quick_mc(std::uint64_t trials, std::uint64_t seed = 11) {
  McOptions mc;
  mc.min_trials = trials;
  mc.max_trials = trials;
  mc.seed = seed;
  return mc;
}

TEST(EstimateCoverTime, ExactOnK2) {
  const Graph g = make_path(2);
  const auto result = estimate_cover_time(g, 0, quick_mc(32));
  EXPECT_DOUBLE_EQ(result.ci.mean, 1.0);
  EXPECT_DOUBLE_EQ(result.ci.half_width, 0.0);
}

TEST(EstimateCoverTime, MatchesExactOracleOnCycle) {
  const Vertex n = 9;
  const Graph g = make_cycle(n);
  const auto result = estimate_cover_time(g, 0, quick_mc(3000));
  const double exact = cycle_cover_time(n);  // 36
  // 3000 trials: CI should comfortably contain the exact value.
  EXPECT_NEAR(result.ci.mean, exact, 4.0 * result.ci.half_width + 1e-9);
}

TEST(EstimateKCoverTime, MatchesExactKOracleOnTriangle) {
  const Graph g = make_cycle(3);
  const auto result = estimate_k_cover_time(g, 0, 2, quick_mc(4000));
  EXPECT_NEAR(result.ci.mean, 5.0 / 3.0, 4.0 * result.ci.half_width + 1e-9);
}

TEST(EstimateKCoverTime, MatchesExactKOracleOnK4) {
  const Graph g = make_complete(4);
  const std::vector<Vertex> starts = {0, 0};
  const double exact = exact_k_cover_time(g, starts);
  const auto result = estimate_k_cover_time(g, 0, 2, quick_mc(4000));
  EXPECT_NEAR(result.ci.mean, exact, 4.0 * result.ci.half_width + 1e-9);
}

TEST(EstimateMultiCoverTime, DistinctStartsMatchExactOracle) {
  const Graph g = make_cycle(5);
  const std::vector<Vertex> starts = {0, 2};
  const double exact = exact_k_cover_time(g, starts);
  const auto result = estimate_multi_cover_time(g, starts, quick_mc(4000));
  EXPECT_NEAR(result.ci.mean, exact, 4.0 * result.ci.half_width + 1e-9);
}

TEST(EstimateHittingTime, MatchesExactOnCycle) {
  const Vertex n = 11;
  const Graph g = make_cycle(n);
  const auto result = estimate_hitting_time(g, 0, 3, quick_mc(4000));
  EXPECT_NEAR(result.ci.mean, cycle_hitting_time(n, 3),
              4.0 * result.ci.half_width + 1e-9);
}

TEST(EstimateMaxCoverTime, PicksWorstStartOnBarbell) {
  const Graph g = make_barbell(11);
  const std::vector<Vertex> starts = {0, barbell_center(11)};
  const auto best = estimate_max_cover_time(g, starts, quick_mc(600));
  EXPECT_EQ(best.argmax_start, barbell_center(11));
}

TEST(EstimateSpeedup, KOneIsExactlyOne) {
  const Graph g = make_cycle(9);
  const auto s = estimate_speedup(g, 0, 1, quick_mc(64));
  EXPECT_DOUBLE_EQ(s.speedup, 1.0);
  EXPECT_DOUBLE_EQ(s.half_width, 0.0);
}

TEST(EstimateSpeedup, CliqueNearLinear) {
  const Graph g = make_complete(64);
  const auto s = estimate_speedup(g, 0, 8, quick_mc(800));
  EXPECT_GT(s.speedup, 5.0);
  EXPECT_LT(s.speedup, 11.0);
}

TEST(EstimateSpeedupCurve, ReusesBaseline) {
  const Graph g = make_cycle(15);
  const std::vector<unsigned> ks = {1, 2, 4};
  const auto curve = estimate_speedup_curve(g, 0, ks, quick_mc(300));
  ASSERT_EQ(curve.size(), 3u);
  for (const auto& point : curve) {
    EXPECT_DOUBLE_EQ(point.single.ci.mean, curve[0].single.ci.mean);
  }
  EXPECT_EQ(curve[0].k, 1u);
  EXPECT_DOUBLE_EQ(curve[0].speedup, 1.0);
}

TEST(EstimateSpeedupCurve, MonotoneOnCycle) {
  const Graph g = make_cycle(21);
  const std::vector<unsigned> ks = {1, 4, 16};
  const auto curve = estimate_speedup_curve(g, 0, ks, quick_mc(600));
  EXPECT_LT(curve[0].speedup, curve[1].speedup);
  EXPECT_LT(curve[1].speedup, curve[2].speedup);
}

TEST(CombineSpeedup, ErrorPropagation) {
  McResult single;
  single.stats.add(99.0);
  single.stats.add(101.0);
  single.ci = mean_confidence_interval(single.stats);
  McResult multi;
  multi.stats.add(49.0);
  multi.stats.add(51.0);
  multi.ci = mean_confidence_interval(multi.stats);
  const auto s = combine_speedup(4, single, multi);
  EXPECT_EQ(s.k, 4u);
  EXPECT_DOUBLE_EQ(s.speedup, 2.0);
  const double rel1 = single.ci.half_width / 100.0;
  const double rel2 = multi.ci.half_width / 50.0;
  EXPECT_NEAR(s.half_width, 2.0 * std::sqrt(rel1 * rel1 + rel2 * rel2), 1e-12);
}

TEST(Estimators, DeterministicAcrossRuns) {
  const Graph g = make_cycle(11);
  const auto a = estimate_cover_time(g, 0, quick_mc(100, 42));
  const auto b = estimate_cover_time(g, 0, quick_mc(100, 42));
  EXPECT_DOUBLE_EQ(a.ci.mean, b.ci.mean);
}

TEST(Estimators, CensoredSamplesReported) {
  const Graph g = make_cycle(51);
  CoverOptions cover;
  cover.step_cap = 3;
  const auto result = estimate_cover_time(g, 0, quick_mc(50), cover);
  EXPECT_EQ(result.censored, 50u);
  EXPECT_DOUBLE_EQ(result.ci.mean, 3.0);
}

}  // namespace
}  // namespace manywalks
