#include "theory/exact.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "theory/closed_forms.hpp"

namespace manywalks {
namespace {

TEST(HittingTimesTo, CycleClosedForm) {
  const Vertex n = 10;
  const Graph g = make_cycle(n);
  const auto h = hitting_times_to(g, 0);
  for (Vertex v = 1; v < n; ++v) {
    const std::uint64_t d = std::min<std::uint64_t>(v, n - v);
    EXPECT_NEAR(h[v], cycle_hitting_time(n, d), 1e-8) << "v=" << v;
  }
  EXPECT_DOUBLE_EQ(h[0], 0.0);
}

TEST(HittingTimesTo, PathClosedForm) {
  const Vertex n = 7;
  const Graph g = make_path(n);
  const auto h = hitting_times_to(g, n - 1);
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_NEAR(h[v], path_hitting_time(n, v, n - 1), 1e-8);
  }
}

TEST(HittingTimesTo, CompleteClosedForm) {
  const Graph g = make_complete(8);
  const auto h = hitting_times_to(g, 3);
  for (Vertex v = 0; v < 8; ++v) {
    if (v == 3) continue;
    EXPECT_NEAR(h[v], 7.0, 1e-9);
  }
}

TEST(HittingTimesTo, StarClosedForm) {
  const Vertex n = 9;
  const Graph g = make_star(n);
  const auto to_hub = hitting_times_to(g, 0);
  for (Vertex v = 1; v < n; ++v) EXPECT_NEAR(to_hub[v], 1.0, 1e-10);
  const auto to_leaf = hitting_times_to(g, 1);
  EXPECT_NEAR(to_leaf[0], 2.0 * n - 3.0, 1e-8);
  EXPECT_NEAR(to_leaf[2], 2.0 * n - 2.0, 1e-8);
}

TEST(HittingTimeMatrix, AgreesWithSingleTargetSolves) {
  for (const Graph& g : {make_cycle(8), make_barbell(9), make_star(6),
                         make_grid_2d(3, GridTopology::kOpen)}) {
    const DenseMatrix h = hitting_time_matrix(g);
    for (Vertex target : {Vertex{0}, static_cast<Vertex>(g.num_vertices() / 2)}) {
      const auto column = hitting_times_to(g, target);
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        EXPECT_NEAR(h.at(v, target), column[v], 1e-6)
            << "v=" << v << " target=" << target;
      }
    }
  }
}

TEST(HittingTimeMatrix, WorksOnPeriodicChains) {
  // Even cycle: the chain is periodic, but the fundamental-matrix formula
  // must still produce the d(n-d) values.
  const Vertex n = 8;
  const DenseMatrix h = hitting_time_matrix(make_cycle(n));
  for (Vertex v = 1; v < n; ++v) {
    const std::uint64_t d = std::min<std::uint64_t>(v, n - v);
    EXPECT_NEAR(h.at(0, v), cycle_hitting_time(n, d), 1e-7);
  }
}

TEST(HittingExtremesTest, CycleMax) {
  const auto ext = hitting_extremes(make_cycle(10));
  EXPECT_NEAR(ext.h_max, 25.0, 1e-8);
  EXPECT_NEAR(ext.h_min, 9.0, 1e-8);
}

TEST(HittingExtremesTest, StarMinIsLeafToHub) {
  const auto ext = hitting_extremes(make_star(7));
  EXPECT_NEAR(ext.h_min, 1.0, 1e-10);
  EXPECT_NEAR(ext.h_max, 12.0, 1e-8);  // 2n-2
}

TEST(ExactCoverTime, TwoVertices) {
  EXPECT_NEAR(exact_cover_time(make_path(2), 0), 1.0, 1e-12);
}

TEST(ExactCoverTime, TriangleMatchesCoupon) {
  EXPECT_NEAR(exact_cover_time(make_cycle(3), 0), complete_cover_time(3),
              1e-10);
}

TEST(ExactCoverTime, CycleClosedForm) {
  for (Vertex n : {4u, 5u, 8u, 11u}) {
    EXPECT_NEAR(exact_cover_time(make_cycle(n), 0), cycle_cover_time(n), 1e-8)
        << "n=" << n;
  }
}

TEST(ExactCoverTime, PathFromEndpoint) {
  for (Vertex n : {3u, 5u, 9u}) {
    EXPECT_NEAR(exact_cover_time(make_path(n), 0), path_cover_time(n), 1e-8);
  }
}

TEST(ExactCoverTime, PathBestStartIsEndpointWorstIsCenter) {
  // From an endpoint the walk only has to reach the far end once:
  // C_0 = (n-1)^2 is the MINIMUM over starts. From the center it must
  // reach both ends, which is strictly slower.
  const Graph g = make_path(7);
  const double from_end = exact_cover_time(g, 0);
  const double from_center = exact_cover_time(g, 3);
  EXPECT_GT(from_center, from_end);
  for (Vertex v = 1; v < 6; ++v) {
    const double c = exact_cover_time(g, v);
    EXPECT_GE(c, from_end - 1e-9) << "v=" << v;
    EXPECT_LE(c, from_center + 1e-9) << "v=" << v;
  }
}

TEST(ExactCoverTime, CompleteClosedForm) {
  for (Vertex n : {3u, 5u, 8u}) {
    EXPECT_NEAR(exact_cover_time(make_complete(n), 0), complete_cover_time(n),
                1e-8);
  }
}

TEST(ExactCoverTime, CompleteWithLoopsClosedForm) {
  for (Vertex n : {3u, 6u}) {
    EXPECT_NEAR(exact_cover_time(make_complete(n, true), 0),
                complete_with_loops_cover_time(n), 1e-8);
  }
}

TEST(ExactCoverTime, StarFromHub) {
  for (Vertex n : {3u, 5u, 9u}) {
    EXPECT_NEAR(exact_cover_time(make_star(n), 0), star_cover_time(n), 1e-8);
  }
}

TEST(ExactCoverTime, StarHubIsWorstStart) {
  const Graph g = make_star(8);
  EXPECT_GT(exact_cover_time(g, 0), exact_cover_time(g, 1));
}

TEST(ExactCoverTime, BarbellCenterIsWorstStart) {
  const Graph g = make_barbell(11);
  const double from_center = exact_cover_time(g, barbell_center(11));
  for (Vertex v = 0; v < 11; ++v) {
    EXPECT_LE(exact_cover_time(g, v), from_center + 1e-9) << "v=" << v;
  }
}

TEST(ExactCoverTime, RejectsLargeGraphs) {
  EXPECT_THROW(exact_cover_time(make_cycle(17), 0), std::invalid_argument);
}

TEST(ExactKCoverTime, KOneMatchesSingleWalkOracle) {
  for (const Graph& g : {make_cycle(5), make_star(5), make_path(4)}) {
    const std::vector<Vertex> starts = {0};
    EXPECT_NEAR(exact_k_cover_time(g, starts), exact_cover_time(g, 0), 1e-8);
  }
}

TEST(ExactKCoverTime, TriangleTwoTokensHandComputed) {
  // From (0,0) on C_3: round 1 covers with prob 1/2 (tokens split);
  // otherwise both tokens share a vertex and each round covers with
  // probability 3/4: E = 1 + (1/2)(4/3) = 5/3.
  const std::vector<Vertex> starts = {0, 0};
  EXPECT_NEAR(exact_k_cover_time(make_cycle(3), starts), 5.0 / 3.0, 1e-10);
}

TEST(ExactKCoverTime, TwoTokensOnK2CoverInOneRound) {
  const std::vector<Vertex> starts = {0, 0};
  EXPECT_NEAR(exact_k_cover_time(make_path(2), starts), 1.0, 1e-12);
}

TEST(ExactKCoverTime, StartsCoveringEverythingIsZero) {
  const std::vector<Vertex> starts = {0, 1, 2};
  EXPECT_NEAR(exact_k_cover_time(make_cycle(3), starts), 0.0, 1e-12);
}

TEST(ExactKCoverTime, MoreTokensNeverSlower) {
  const Graph g = make_cycle(5);
  const std::vector<Vertex> one = {0};
  const std::vector<Vertex> two = {0, 0};
  const std::vector<Vertex> three = {0, 0, 0};
  const double c1 = exact_k_cover_time(g, one);
  const double c2 = exact_k_cover_time(g, two);
  const double c3 = exact_k_cover_time(g, three, 2000);
  EXPECT_LT(c2, c1);
  EXPECT_LT(c3, c2);
}

TEST(ExactKCoverTime, SpeedupOnCliqueIsNearLinear) {
  // Lemma 12: on K_n with loops the speed-up is exactly k up to rounding.
  const Graph g = make_complete(6, /*with_self_loops=*/true);
  const std::vector<Vertex> one = {0};
  const std::vector<Vertex> two = {0, 0};
  const double c1 = exact_k_cover_time(g, one);
  const double c2 = exact_k_cover_time(g, two);
  const double speedup = c1 / c2;
  EXPECT_GT(speedup, 1.65);
  EXPECT_LT(speedup, 2.1);
}

TEST(ExactKCoverTime, RejectsOversizedStateSpace) {
  const std::vector<Vertex> starts = {0, 0, 0};
  EXPECT_THROW(exact_k_cover_time(make_cycle(10), starts, 729),
               std::invalid_argument);
}

TEST(EffectiveResistance, SeriesAndParallel) {
  // Path 0-1-2: R(0,2) = 2 (two unit resistors in series).
  EXPECT_NEAR(effective_resistance(make_path(3), 0, 2), 2.0, 1e-10);
  // Parallel edges halve the resistance.
  GraphBuilder b(2);
  b.add_edge(0, 1).add_edge(0, 1);
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kKeep;
  EXPECT_NEAR(effective_resistance(b.build(options), 0, 1), 0.5, 1e-10);
}

TEST(EffectiveResistance, CycleClosedForm) {
  // R(0, d) on C_n = d(n-d)/n.
  const Vertex n = 12;
  const Graph g = make_cycle(n);
  for (Vertex d : {1u, 3u, 6u}) {
    EXPECT_NEAR(effective_resistance(g, 0, d),
                static_cast<double>(d) * (n - d) / n, 1e-9);
  }
}

TEST(EffectiveResistance, CommuteTimeIdentity) {
  // h(u,v) + h(v,u) = num_arcs * R_eff(u,v) on arbitrary graphs.
  for (const Graph& g : {make_barbell(9), make_star(6), make_cycle(7),
                         make_grid_2d(3, GridTopology::kOpen)}) {
    const DenseMatrix h = hitting_time_matrix(g);
    const double arcs = static_cast<double>(g.num_arcs());
    for (Vertex u = 0; u < g.num_vertices(); u += 2) {
      for (Vertex v = u + 1; v < g.num_vertices(); v += 3) {
        const double commute = h.at(u, v) + h.at(v, u);
        EXPECT_NEAR(commute, arcs * effective_resistance(g, u, v),
                    1e-6 * commute + 1e-8)
            << "u=" << u << " v=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace manywalks
