#include "linalg/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace manywalks {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(SecondEigenvalue, CycleMatchesClosedForm) {
  // Walk matrix eigenvalues of C_n: cos(2 pi j / n). For odd n the largest
  // non-trivial |λ| is cos(2 pi / n) ... but the most negative is
  // cos(pi (n-1)/n) ≈ -cos(pi/n), which has larger modulus for odd n?
  // |cos(pi (n-1)/n)| = cos(pi/n) > cos(2 pi/n); so λ_norm = cos(pi/n).
  const Vertex n = 9;
  const auto result = second_eigenvalue(make_cycle(n));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.lambda_norm, std::cos(kPi / n), 1e-6);
}

TEST(SecondEigenvalue, EvenCycleIsBipartite) {
  // Bipartite graphs have eigenvalue -1: lambda_norm = 1, gap = 0.
  const auto result = second_eigenvalue(make_cycle(8));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.lambda_norm, 1.0, 1e-8);
  EXPECT_NEAR(result.spectral_gap, 0.0, 1e-8);
}

TEST(SecondEigenvalue, CompleteGraph) {
  // K_n walk spectrum: {1, -1/(n-1)}.
  const Vertex n = 12;
  const auto result = second_eigenvalue(make_complete(n));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.lambda_norm, 1.0 / (n - 1), 1e-8);
}

TEST(SecondEigenvalue, CompleteWithLoops) {
  // Adding one loop per vertex: P = (A + I)/n, spectrum {1, 0}.
  const auto result = second_eigenvalue(make_complete(8, true));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.lambda_norm, 0.0, 1e-6);
}

TEST(SecondEigenvalue, HypercubeIsBipartite) {
  const auto result = second_eigenvalue(make_hypercube(4));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.lambda_norm, 1.0, 1e-8);
}

TEST(SecondEigenvalue, StarIsBipartite) {
  const auto result = second_eigenvalue(make_star(10));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.lambda_norm, 1.0, 1e-8);
}

TEST(SecondEigenvalue, BarbellHasTinyGap) {
  const auto result = second_eigenvalue(make_barbell(21));
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.lambda_norm, 0.95);  // bottleneck => λ2 near 1
  EXPECT_LT(result.lambda_norm, 1.0);
}

TEST(CertifyExpander, MargulisBound) {
  // Gabber–Galil: all non-trivial |λ(A)| <= 5 sqrt(2) ≈ 7.071 < 8.
  for (Vertex side : {4u, 8u, 12u}) {
    const auto cert = certify_expander(make_margulis_expander(side));
    ASSERT_TRUE(cert.converged) << "side=" << side;
    EXPECT_EQ(cert.degree, 8u);
    EXPECT_LE(cert.lambda, 5.0 * std::sqrt(2.0) + 1e-6) << "side=" << side;
    EXPECT_LT(cert.lambda_ratio, 0.89);
  }
}

TEST(CertifyExpander, RandomRegularNearRamanujan) {
  Rng rng(2024);
  const Graph g = make_random_regular(300, 8, rng);
  const auto cert = certify_expander(g);
  ASSERT_TRUE(cert.converged);
  // Friedman: λ ≈ 2 sqrt(d-1) ≈ 5.29 w.h.p.; allow generous slack.
  EXPECT_LT(cert.lambda, 6.5);
  EXPECT_GT(cert.lambda, 3.0);  // can't beat the Ramanujan bound by much
}

TEST(CertifyExpander, RejectsIrregularGraphs) {
  EXPECT_THROW(certify_expander(make_star(5)), std::invalid_argument);
}

TEST(SecondEigenvalue, TorusMatchesClosedForm) {
  // 2-D torus C_n x C_n walk eigenvalues: (cos(2πa/n) + cos(2πb/n))/2.
  // For odd n the positive extreme is (1 + cos(2π/n))/2, but the negative
  // end a = b = (n-1)/2 gives cos(π(n-1)/n) = -cos(π/n), whose modulus is
  // larger; hence λ_norm = cos(π/n), same as the odd cycle.
  const Vertex side = 7;
  const auto result = second_eigenvalue(make_grid_2d(side));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.lambda_norm, std::cos(kPi / side), 1e-6);
}

TEST(SecondEigenvalue, GapOrdersFamiliesCorrectly) {
  // Expander gap >> torus gap >> cycle gap at comparable sizes.
  const auto expander = second_eigenvalue(make_margulis_expander(7));   // n=49
  const auto torus = second_eigenvalue(make_grid_2d(7));                 // n=49
  const auto cycle = second_eigenvalue(make_cycle(49));
  EXPECT_GT(expander.spectral_gap, torus.spectral_gap);
  EXPECT_GT(torus.spectral_gap, cycle.spectral_gap);
}

}  // namespace
}  // namespace manywalks
