#include "core/families.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace manywalks {
namespace {

TEST(FamilyNames, RoundTrip) {
  for (GraphFamily family : all_families()) {
    const auto name = family_name(family);
    const auto parsed = family_from_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, family);
  }
}

TEST(FamilyNames, UnknownNameIsNullopt) {
  EXPECT_FALSE(family_from_name("petersen").has_value());
}

TEST(FamilyRegistry, Table1HasSevenFamilies) {
  EXPECT_EQ(table1_families().size(), 7u);
}

TEST(FamilyRegistry, AllFamiliesCount) {
  EXPECT_EQ(all_families().size(), 15u);
}

class FamilyInstanceSweep : public ::testing::TestWithParam<GraphFamily> {};

TEST_P(FamilyInstanceSweep, InstancesAreWellFormed) {
  const FamilyInstance inst = make_family_instance(GetParam(), 128, 3);
  EXPECT_GT(inst.graph.num_vertices(), 0u);
  EXPECT_TRUE(is_connected(inst.graph)) << inst.name;
  EXPECT_LT(inst.start, inst.graph.num_vertices());
  EXPECT_GT(inst.graph.min_degree(), 0u);
  EXPECT_FALSE(inst.name.empty());
  EXPECT_GT(inst.theory.cover, 0.0) << inst.name;
  EXPECT_GT(inst.theory.h_max, 0.0);
  EXPECT_FALSE(inst.theory.speedup_regime.empty());
  // n should be within a factor ~3 of the request despite rounding.
  EXPECT_GE(inst.graph.num_vertices(), 32u) << inst.name;
  EXPECT_LE(inst.graph.num_vertices(), 512u) << inst.name;
}

TEST_P(FamilyInstanceSweep, BipartiteInstancesDeclareLazyMixing) {
  const FamilyInstance inst = make_family_instance(GetParam(), 64, 3);
  if (is_bipartite(inst.graph)) {
    EXPECT_TRUE(inst.needs_lazy_mixing) << inst.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyInstanceSweep,
    ::testing::ValuesIn(all_families()),
    [](const ::testing::TestParamInfo<GraphFamily>& param_info) {
      std::string name{family_name(param_info.param)};
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FamilyInstances, CycleIsOdd) {
  const auto inst = make_family_instance(GraphFamily::kCycle, 100);
  EXPECT_EQ(inst.graph.num_vertices() % 2, 1u);
  EXPECT_EQ(inst.graph.num_vertices(), 101u);
}

TEST(FamilyInstances, HypercubeIsPowerOfTwo) {
  const auto inst = make_family_instance(GraphFamily::kHypercube, 200);
  EXPECT_TRUE(std::has_single_bit(inst.graph.num_vertices()));
  EXPECT_EQ(inst.graph.num_vertices(), 256u);
}

TEST(FamilyInstances, Grid2dIsOddSquare) {
  const auto inst = make_family_instance(GraphFamily::kGrid2d, 100);
  EXPECT_EQ(inst.graph.num_vertices(), 121u);  // 11^2 (nearest odd side)
  EXPECT_TRUE(inst.graph.is_regular());
}

TEST(FamilyInstances, BarbellStartsAtCenter) {
  const auto inst = make_family_instance(GraphFamily::kBarbell, 64);
  EXPECT_EQ(inst.graph.num_vertices() % 2, 1u);
  EXPECT_EQ(inst.start, barbell_center(inst.graph.num_vertices()));
  EXPECT_EQ(inst.graph.degree(inst.start), 2u);
}

TEST(FamilyInstances, MargulisKeepsDegreeEight) {
  const auto inst = make_family_instance(GraphFamily::kMargulis, 120);
  EXPECT_TRUE(inst.graph.is_regular());
  EXPECT_EQ(inst.graph.degree(0), 8u);
}

TEST(FamilyInstances, RandomFamiliesAreSeedDeterministic) {
  const auto a = make_family_instance(GraphFamily::kErdosRenyi, 128, 5);
  const auto b = make_family_instance(GraphFamily::kErdosRenyi, 128, 5);
  const auto c = make_family_instance(GraphFamily::kErdosRenyi, 128, 6);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  // Different seeds should (almost surely) give different graphs.
  EXPECT_NE(a.graph.num_edges(), c.graph.num_edges());
}

TEST(FamilyInstances, BalancedTreeStartsAtDeepestLeaf) {
  const auto inst = make_family_instance(GraphFamily::kBalancedTree, 63);
  EXPECT_EQ(inst.start, inst.graph.num_vertices() - 1);
  EXPECT_EQ(inst.graph.degree(inst.start), 1u);
}

TEST(FamilyInstances, ExactTheoryValuesForClosedFormFamilies) {
  EXPECT_TRUE(make_family_instance(GraphFamily::kCycle, 64).theory.cover_exact);
  EXPECT_TRUE(
      make_family_instance(GraphFamily::kComplete, 64).theory.cover_exact);
  EXPECT_FALSE(
      make_family_instance(GraphFamily::kGrid2d, 64).theory.cover_exact);
}

TEST(FamilyInstances, RejectsTinyTargets) {
  EXPECT_THROW(make_family_instance(GraphFamily::kCycle, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace manywalks
