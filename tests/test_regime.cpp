// Tests for the least-squares utilities and the speed-up regime classifier.
#include "core/regime.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/generators.hpp"

namespace manywalks {
namespace {

TEST(LinearFitTest, ExactLine) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineHasGoodR2) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + 2.0 + ((i % 3) - 1) * 0.1);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFitTest, ConstantYIsFlatLine) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {4.0, 4.0, 4.0};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, UncorrelatedHasLowR2) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {0.0, 1.0, 0.0, 1.0};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_LT(fit.r_squared, 0.5);
}

TEST(LinearFitTest, Validation) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(linear_fit(one, one), std::invalid_argument);
  const std::vector<double> x = {2.0, 2.0};
  const std::vector<double> y = {1.0, 3.0};
  EXPECT_THROW(linear_fit(x, y), std::invalid_argument);
  const std::vector<double> short_y = {1.0};
  const std::vector<double> x2 = {1.0, 2.0};
  EXPECT_THROW(linear_fit(x2, short_y), std::invalid_argument);
}

namespace {

SpeedupEstimate synthetic_point(unsigned k, double speedup) {
  SpeedupEstimate p;
  p.k = k;
  p.speedup = speedup;
  return p;
}

std::vector<SpeedupEstimate> synthetic_curve(double (*f)(double)) {
  // Span a wide k range: a log curve over a narrow range is locally
  // indistinguishable from a small power law.
  std::vector<SpeedupEstimate> out;
  for (unsigned k : {2u, 8u, 32u, 128u, 512u, 2048u}) {
    out.push_back(synthetic_point(k, f(static_cast<double>(k))));
  }
  return out;
}

}  // namespace

TEST(RegimeClassifier, LinearCurve) {
  const auto curve = synthetic_curve(+[](double k) { return 0.9 * k; });
  const RegimeFit fit = classify_speedup_regime(curve);
  EXPECT_NEAR(fit.exponent, 1.0, 1e-9);
  EXPECT_NEAR(fit.multiplier, 0.9, 1e-9);
  EXPECT_EQ(fit.regime, SpeedupRegime::kLinear);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(RegimeClassifier, LogarithmicCurve) {
  const auto curve = synthetic_curve(+[](double k) { return 3.0 * std::log(k); });
  const RegimeFit fit = classify_speedup_regime(curve);
  EXPECT_LT(fit.exponent, 0.45);
  EXPECT_EQ(fit.regime, SpeedupRegime::kLogarithmic);
}

TEST(RegimeClassifier, SuperLinearCurve) {
  const auto curve = synthetic_curve(+[](double k) { return std::pow(k, 1.5); });
  const RegimeFit fit = classify_speedup_regime(curve);
  EXPECT_NEAR(fit.exponent, 1.5, 1e-9);
  EXPECT_EQ(fit.regime, SpeedupRegime::kSuperLinear);
}

TEST(RegimeClassifier, SublinearCurve) {
  const auto curve = synthetic_curve(+[](double k) { return std::pow(k, 0.6); });
  const RegimeFit fit = classify_speedup_regime(curve);
  EXPECT_EQ(fit.regime, SpeedupRegime::kSublinear);
}

TEST(RegimeClassifier, IgnoresKOne) {
  std::vector<SpeedupEstimate> curve = {synthetic_point(1, 1.0),
                                        synthetic_point(4, 4.0),
                                        synthetic_point(16, 16.0)};
  const RegimeFit fit = classify_speedup_regime(curve);
  EXPECT_NEAR(fit.exponent, 1.0, 1e-9);
}

TEST(RegimeClassifier, NeedsTwoUsablePoints) {
  std::vector<SpeedupEstimate> curve = {synthetic_point(1, 1.0),
                                        synthetic_point(4, 4.0)};
  EXPECT_THROW(classify_speedup_regime(curve), std::invalid_argument);
}

TEST(RegimeClassifier, NamesAreStable) {
  EXPECT_EQ(regime_name(SpeedupRegime::kLinear), "linear");
  EXPECT_EQ(regime_name(SpeedupRegime::kLogarithmic), "logarithmic");
  EXPECT_EQ(regime_name(SpeedupRegime::kSuperLinear), "super-linear");
  EXPECT_EQ(regime_name(SpeedupRegime::kSublinear), "sublinear");
}

// End-to-end: measured curves land in the regimes Table 1 predicts.
TEST(RegimeClassifier, MeasuredCycleIsLogarithmic) {
  const Graph g = make_cycle(129);
  McOptions mc;
  mc.min_trials = 300;
  mc.max_trials = 300;
  mc.seed = 42;
  const std::vector<unsigned> ks = {4, 16, 64, 256};
  const auto curve = estimate_speedup_curve(g, 0, ks, mc);
  const RegimeFit fit = classify_speedup_regime(curve);
  EXPECT_EQ(fit.regime, SpeedupRegime::kLogarithmic)
      << "exponent " << fit.exponent;
}

TEST(RegimeClassifier, MeasuredExpanderIsLinear) {
  const Graph g = make_margulis_expander(11);  // n = 121
  McOptions mc;
  mc.min_trials = 300;
  mc.max_trials = 300;
  mc.seed = 43;
  const std::vector<unsigned> ks = {2, 8, 32};
  const auto curve = estimate_speedup_curve(g, 0, ks, mc);
  const RegimeFit fit = classify_speedup_regime(curve);
  EXPECT_EQ(fit.regime, SpeedupRegime::kLinear) << "exponent " << fit.exponent;
}

TEST(RegimeClassifier, MeasuredBarbellFromCenterIsSuperLinearInflection) {
  // From the center, going from k=1-ish to k=Θ(log n) multiplies the
  // speed-up far faster than k itself: the fitted exponent must exceed 1.
  const Graph g = make_barbell(101);
  McOptions mc;
  mc.min_trials = 200;
  mc.max_trials = 200;
  mc.seed = 44;
  const std::vector<unsigned> ks = {2, 8, 32};
  const auto curve = estimate_speedup_curve(g, barbell_center(101), ks, mc);
  const RegimeFit fit = classify_speedup_regime(curve);
  EXPECT_GT(fit.exponent, 1.25) << "exponent " << fit.exponent;
  EXPECT_EQ(fit.regime, SpeedupRegime::kSuperLinear);
}

}  // namespace
}  // namespace manywalks
