#include "walk/cover.hpp"
#include "walk/hitting.hpp"
#include "walk/visit_tracker.hpp"
#include "walk/walker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"

namespace manywalks {
namespace {

TEST(VisitTrackerTest, TracksAndResets) {
  VisitTracker t(4);
  EXPECT_EQ(t.num_visited(), 0u);
  EXPECT_TRUE(t.visit(2));
  EXPECT_FALSE(t.visit(2));
  EXPECT_TRUE(t.visited(2));
  EXPECT_FALSE(t.visited(1));
  EXPECT_EQ(t.num_visited(), 1u);
  t.visit(0);
  t.visit(1);
  t.visit(3);
  EXPECT_TRUE(t.all_visited());
  t.reset();
  EXPECT_EQ(t.num_visited(), 0u);
  EXPECT_FALSE(t.visited(2));
}

TEST(VisitTrackerTest, ManyResetsStayCorrect) {
  VisitTracker t(3);
  for (int round = 0; round < 10000; ++round) {
    t.reset();
    EXPECT_TRUE(t.visit(static_cast<Vertex>(round % 3)));
    EXPECT_EQ(t.num_visited(), 1u);
  }
}

TEST(StepWalk, StaysOnNeighbors) {
  const Graph g = make_cycle(6);
  Rng rng(1);
  Vertex v = 0;
  for (int i = 0; i < 1000; ++i) {
    const Vertex u = step_walk(g, v, rng);
    EXPECT_TRUE(g.has_edge(v, u));
    v = u;
  }
}

TEST(StepWalk, UniformOverNeighbors) {
  const Graph g = make_star(5);  // hub 0 with 4 leaves
  Rng rng(2);
  std::vector<int> counts(5, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[step_walk(g, 0, rng)];
  EXPECT_EQ(counts[0], 0);
  for (Vertex leaf = 1; leaf < 5; ++leaf) {
    EXPECT_NEAR(static_cast<double>(counts[leaf]) / trials, 0.25, 0.02);
  }
}

TEST(StepWalk, SelfLoopProbability) {
  const Graph g = make_complete(4, /*with_self_loops=*/true);
  Rng rng(3);
  int stays = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    if (step_walk(g, 0, rng) == 0) ++stays;
  }
  EXPECT_NEAR(static_cast<double>(stays) / trials, 0.25, 0.02);
}

TEST(StepWalkLazy, ZeroLazinessNeverStays) {
  const Graph g = make_cycle(5);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) EXPECT_NE(step_walk_lazy(g, 0, rng, 0.0), 0u);
}

TEST(StepWalkLazy, LazinessFrequency) {
  const Graph g = make_cycle(5);
  Rng rng(5);
  int stays = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    if (step_walk_lazy(g, 0, rng, 0.3) == 0) ++stays;
  }
  EXPECT_NEAR(static_cast<double>(stays) / trials, 0.3, 0.02);
}

TEST(SampleCoverTime, TwoVerticesAlwaysOneStep) {
  const Graph g = make_path(2);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const auto s = sample_cover_time(g, 0, rng);
    EXPECT_TRUE(s.covered);
    EXPECT_EQ(s.steps, 1u);
  }
}

TEST(SampleCoverTime, DeterministicGivenRng) {
  const Graph g = make_cycle(9);
  Rng a(7);
  Rng b(7);
  const auto s1 = sample_cover_time(g, 0, a);
  const auto s2 = sample_cover_time(g, 0, b);
  EXPECT_EQ(s1.steps, s2.steps);
}

TEST(SampleCoverTime, CapCensorsSample) {
  const Graph g = make_cycle(101);
  Rng rng(8);
  CoverOptions options;
  options.step_cap = 10;  // far below the ~5000-step cover time
  const auto s = sample_cover_time(g, 0, rng, options);
  EXPECT_FALSE(s.covered);
  EXPECT_EQ(s.steps, 10u);
}

TEST(SampleCoverTime, SingleVertexGraphIsZero) {
  const Graph g = make_balanced_tree(2, 0);  // one vertex, no edges
  Rng rng(9);
  EXPECT_THROW(sample_cover_time(g, 0, rng), std::invalid_argument);
}

TEST(SampleKCoverTime, AllVerticesAsStartsCoverInstantly) {
  const Graph g = make_cycle(4);
  const std::vector<Vertex> starts = {0, 1, 2, 3};
  Rng rng(10);
  const auto s = sample_multi_cover_time(g, starts, rng);
  EXPECT_TRUE(s.covered);
  EXPECT_EQ(s.steps, 0u);
}

TEST(SampleKCoverTime, TokensFasterOnAverage) {
  const Graph g = make_cycle(31);
  Rng rng(11);
  double single_total = 0;
  double multi_total = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    single_total += static_cast<double>(sample_cover_time(g, 0, rng).steps);
    multi_total +=
        static_cast<double>(sample_k_cover_time(g, 0, 4, rng).steps);
  }
  EXPECT_LT(multi_total, single_total);
}

TEST(SampleKCoverTime, RejectsEmptyStartList) {
  const Graph g = make_cycle(4);
  Rng rng(12);
  const std::vector<Vertex> none;
  EXPECT_THROW(sample_multi_cover_time(g, none, rng), std::invalid_argument);
}

TEST(SamplePartialCoverTime, FullFractionMatchesCover) {
  const Graph g = make_cycle(9);
  const std::vector<Vertex> starts = {0};
  Rng a(13);
  Rng b(13);
  const auto full = sample_partial_cover_time(g, starts, 1.0, a);
  const auto cover = sample_cover_time(g, 0, b);
  EXPECT_EQ(full.steps, cover.steps);
}

TEST(SamplePartialCoverTime, SmallFractionIsFaster) {
  const Graph g = make_cycle(51);
  const std::vector<Vertex> starts = {0};
  Rng rng(14);
  double half_total = 0;
  double full_total = 0;
  for (int i = 0; i < 100; ++i) {
    half_total += static_cast<double>(
        sample_partial_cover_time(g, starts, 0.5, rng).steps);
    full_total += static_cast<double>(sample_cover_time(g, 0, rng).steps);
  }
  EXPECT_LT(half_total, full_total * 0.6);
}

TEST(CoverageCurveTest, MonotoneAndBounded) {
  const Graph g = make_grid_2d(5);
  const std::vector<Vertex> starts = {0, 0};
  Rng rng(15);
  const auto curve = sample_coverage_curve(g, starts, 500, 50, rng);
  ASSERT_GE(curve.times.size(), 2u);
  EXPECT_EQ(curve.times.front(), 0u);
  EXPECT_EQ(curve.visited.front(), 1u);  // both tokens on the same vertex
  for (std::size_t i = 1; i < curve.visited.size(); ++i) {
    EXPECT_GE(curve.visited[i], curve.visited[i - 1]);
    EXPECT_LE(curve.visited[i], g.num_vertices());
  }
}

TEST(CoverageCurveTest, HonorsStepCap) {
  const Graph g = make_grid_2d(5);
  const std::vector<Vertex> starts = {0};
  CoverOptions options;
  options.step_cap = 120;
  Rng rng(20);
  const auto curve = sample_coverage_curve(g, starts, 500, 50, rng, options);
  EXPECT_TRUE(curve.truncated);
  EXPECT_EQ(curve.times.back(), 120u);  // stopped at the cap, not at 500
  // Record points: t=0, the record_every multiples, and the cap itself.
  const std::vector<std::uint64_t> expected_times = {0, 50, 100, 120};
  EXPECT_EQ(curve.times, expected_times);

  // An identical run whose cap is not binding is not truncated and consumes
  // the same RNG stream up to the cap.
  Rng rng2(20);
  const auto full = sample_coverage_curve(g, starts, 500, 50, rng2);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(full.times.back(), 500u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(full.visited[i], curve.visited[i]);
  }
}

TEST(VisitCounts, SumEqualsStepsPlusOne) {
  const Graph g = make_cycle(7);
  Rng rng(16);
  const auto counts = sample_visit_counts(g, 3, 1000, rng);
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, 1001u);
  EXPECT_GE(counts[3], 1u);
}

TEST(VisitCounts, LongRunApproachesStationary) {
  const Graph g = make_star(5);  // pi(hub) = 1/2
  Rng rng(17);
  const std::uint64_t steps = 200000;
  const auto counts = sample_visit_counts(g, 0, steps, rng);
  EXPECT_NEAR(static_cast<double>(counts[0]) / static_cast<double>(steps),
              0.5, 0.02);
}

TEST(SampleHittingTime, SameVertexIsZero) {
  const Graph g = make_cycle(5);
  Rng rng(18);
  const auto s = sample_hitting_time(g, 2, 2, rng);
  EXPECT_TRUE(s.hit);
  EXPECT_EQ(s.steps, 0u);
}

TEST(SampleHittingTime, NeighborOnK2IsOneStep) {
  const Graph g = make_path(2);
  Rng rng(19);
  for (int i = 0; i < 20; ++i) {
    const auto s = sample_hitting_time(g, 0, 1, rng);
    EXPECT_EQ(s.steps, 1u);
  }
}

TEST(SampleHittingTime, CapCensors) {
  const Graph g = make_cycle(101);
  Rng rng(20);
  HitOptions options;
  options.step_cap = 5;
  const auto s = sample_hitting_time(g, 0, 50, rng, options);
  EXPECT_FALSE(s.hit);
  EXPECT_EQ(s.steps, 5u);
}

TEST(SampleMultiHittingTime, TokenOnTargetIsZero) {
  const Graph g = make_cycle(6);
  const std::vector<Vertex> starts = {0, 3};
  Rng rng(21);
  const auto s = sample_multi_hitting_time(g, starts, 3, rng);
  EXPECT_TRUE(s.hit);
  EXPECT_EQ(s.steps, 0u);
}

TEST(SampleMultiHittingTime, MoreTokensHitFaster) {
  const Graph g = make_cycle(41);
  Rng rng(22);
  double one_total = 0;
  double many_total = 0;
  const std::vector<Vertex> one = {0};
  const std::vector<Vertex> many = {0, 0, 0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 150; ++i) {
    one_total +=
        static_cast<double>(sample_multi_hitting_time(g, one, 20, rng).steps);
    many_total +=
        static_cast<double>(sample_multi_hitting_time(g, many, 20, rng).steps);
  }
  EXPECT_LT(many_total, one_total);
}

TEST(SampleReturnTime, K2AlwaysTwo) {
  const Graph g = make_path(2);
  Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sample_return_time(g, 0, rng).steps, 2u);
  }
}

TEST(SampleReturnTime, MeanMatchesKacFormula) {
  // E[return to v] = num_arcs / deg(v); star hub: 8/4 = 2, leaf: 8/1 = 8.
  const Graph g = make_star(5);
  Rng rng(24);
  double hub_total = 0;
  double leaf_total = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    hub_total += static_cast<double>(sample_return_time(g, 0, rng).steps);
    leaf_total += static_cast<double>(sample_return_time(g, 1, rng).steps);
  }
  EXPECT_NEAR(hub_total / trials, 2.0, 0.05);
  EXPECT_NEAR(leaf_total / trials, 8.0, 0.4);
}

}  // namespace
}  // namespace manywalks
