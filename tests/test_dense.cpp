#include "linalg/dense.hpp"

#include <gtest/gtest.h>

namespace manywalks {
namespace {

TEST(DenseMatrixTest, ConstructionAndAccess) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), 1.5);
  m.at(0, 0) = -2.0;
  EXPECT_EQ(m.at(0, 0), -2.0);
}

TEST(DenseMatrixTest, Identity) {
  const DenseMatrix id = DenseMatrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(id.at(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrixTest, MatVec) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 3;
  m.at(1, 1) = 4;
  const auto y = m.multiply(std::vector<double>{1.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(DenseMatrixTest, MatMul) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  const DenseMatrix b = a.multiply(a);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(b.at(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(b.at(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(b.at(1, 1), 22.0);
}

TEST(DenseMatrixTest, MaxAbsDiff) {
  DenseMatrix a(1, 2);
  DenseMatrix b(1, 2);
  a.at(0, 1) = 3.0;
  b.at(0, 1) = -1.0;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 4.0);
}

TEST(SolveLinear, TwoByTwo) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  // Zero top-left pivot: fails without partial pivoting.
  DenseMatrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  const auto x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(SolveLinear, LargerSystemAgainstMultiply) {
  // Random-ish well-conditioned system: verify A * x == b.
  const std::size_t n = 12;
  DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a.at(r, c) = static_cast<double>((r * 7 + c * 13) % 5) - 2.0;
    }
    a.at(r, r) += 10.0;  // diagonal dominance
  }
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i) - 4.0;
  const auto x = solve_linear(a, b);
  const auto back = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(SolveLinearMulti, InverseTimesMatrixIsIdentity) {
  DenseMatrix a(3, 3);
  a.at(0, 0) = 4;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  a.at(1, 2) = 1;
  a.at(2, 1) = 1;
  a.at(2, 2) = 5;
  const DenseMatrix inv = solve_linear_multi(a, DenseMatrix::identity(3));
  const DenseMatrix prod = a.multiply(inv);
  EXPECT_LT(prod.max_abs_diff(DenseMatrix::identity(3)), 1e-10);
}

TEST(SolveLinear, DimensionMismatchThrows) {
  DenseMatrix a(2, 2, 1.0);
  EXPECT_THROW(solve_linear(a, {1.0}), std::invalid_argument);
  DenseMatrix rect(2, 3, 1.0);
  EXPECT_THROW(solve_linear(rect, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace manywalks
