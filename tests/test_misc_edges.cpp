// Edge cases and less-traveled paths across modules.
#include <gtest/gtest.h>

#include <sstream>

#include "core/families.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "linalg/markov.hpp"
#include "mc/estimators.hpp"
#include "util/timer.hpp"
#include "walk/cover.hpp"
#include "walk/hitting.hpp"

namespace manywalks {
namespace {

TEST(MiscGraph, FromCsrCountsLoops) {
  // One loop arc at vertex 0 plus edge 0-1.
  const Graph g = Graph::from_csr({0, 2, 3}, {0, 1, 0}, true);
  EXPECT_EQ(g.num_loops(), 1u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(MiscGraph, BuilderReportsArcCount) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  EXPECT_EQ(b.num_arcs_added(), 2u);
  b.add_edge(2, 2);
  EXPECT_EQ(b.num_arcs_added(), 3u);  // loop adds a single arc
  EXPECT_EQ(b.num_vertices(), 4u);
}

TEST(MiscGraph, DescribeMentionsLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 0).add_edge(0, 1);
  GraphBuilder::BuildOptions options;
  options.loops = GraphBuilder::LoopPolicy::kKeep;
  const Graph g = b.build(options);
  EXPECT_NE(describe(g).find("loops=1"), std::string::npos);
}

TEST(MiscGraph, MargulisSideTwoIsWalkable) {
  const Graph g = make_margulis_expander(2);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_TRUE(g.is_regular());
  Rng rng(1);
  const auto sample = sample_cover_time(g, 0, rng);
  EXPECT_TRUE(sample.covered);
}

TEST(MiscFamilies, LargeTargetRoundsSensibly) {
  const auto hyper = make_family_instance(GraphFamily::kHypercube, 5000);
  EXPECT_EQ(hyper.graph.num_vertices(), 4096u);
  const auto grid = make_family_instance(GraphFamily::kGrid2d, 5000, 2);
  EXPECT_EQ(grid.graph.num_vertices(), 71u * 71u);
}

TEST(MiscMarkov, EvolveRejectsBadArguments) {
  const Graph g = make_cycle(4);
  std::vector<double> p(4, 0.25);
  std::vector<double> out;
  EXPECT_THROW(evolve_distribution(g, p, p), std::invalid_argument);
  EXPECT_THROW(evolve_distribution(g, p, out, 1.0), std::invalid_argument);
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(evolve_distribution(g, wrong, out), std::invalid_argument);
}

TEST(MiscMarkov, MixingReportsWorstSource) {
  // The star mixes slowest from a leaf (lazy chain); from the hub the
  // distribution is closer to stationary after one step.
  const Graph g = make_star(16);
  MixingOptions options;
  options.laziness = 0.5;
  options.max_steps = 100000;
  const auto result = mixing_time(g, options);
  ASSERT_TRUE(result.converged);
  EXPECT_NE(result.worst_source, 0u);  // some leaf, not the hub
}

TEST(MiscWalk, LazyKWalkCoversEventually) {
  const Graph g = make_cycle(9);
  CoverOptions options;
  options.laziness = 0.6;
  Rng rng(5);
  const auto sample = sample_k_cover_time(g, 0, 3, rng, options);
  EXPECT_TRUE(sample.covered);
  EXPECT_GT(sample.steps, 0u);
}

TEST(MiscWalk, LazyHittingIsSlower) {
  const Graph g = make_cycle(21);
  Rng rng(6);
  double plain_total = 0;
  double lazy_total = 0;
  HitOptions lazy;
  lazy.laziness = 0.5;
  for (int i = 0; i < 400; ++i) {
    plain_total +=
        static_cast<double>(sample_hitting_time(g, 0, 10, rng).steps);
    lazy_total +=
        static_cast<double>(sample_hitting_time(g, 0, 10, rng, lazy).steps);
  }
  EXPECT_GT(lazy_total, 1.5 * plain_total);
}

TEST(MiscWalk, PartialCoverTinyFractionIsZeroRounds) {
  // A fraction that rounds to covering just the start: 0 rounds.
  const Graph g = make_cycle(100);
  const std::vector<Vertex> starts = {0};
  Rng rng(7);
  const auto sample = sample_partial_cover_time(g, starts, 0.01, rng);
  EXPECT_TRUE(sample.covered);
  EXPECT_EQ(sample.steps, 0u);
}

TEST(MiscUtil, StopwatchAdvances) {
  Stopwatch watch;
  double x = 0.0;
  for (int i = 0; i < 100000; ++i) x += static_cast<double>(i) * 1e-9;
  EXPECT_GE(watch.seconds() + x * 0.0, 0.0);
  watch.reset();
  EXPECT_GE(watch.milliseconds(), 0.0);
}

TEST(MiscEstimates, ConfidenceIntervalCountsTrials) {
  const Graph g = make_cycle(9);
  McOptions mc;
  mc.min_trials = 37;
  mc.max_trials = 37;
  mc.seed = 8;
  const auto r = estimate_cover_time(g, 0, mc);
  EXPECT_EQ(r.ci.count, 37u);
  EXPECT_EQ(r.stats.count(), 37u);
}

}  // namespace
}  // namespace manywalks
