#include "theory/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "theory/closed_forms.hpp"
#include "theory/exact.hpp"

namespace manywalks {
namespace {

TEST(Matthews, BoundValues) {
  EXPECT_NEAR(matthews_upper_bound(10.0, 5), 10.0 * harmonic_number(4), 1e-12);
  EXPECT_NEAR(matthews_lower_bound(2.0, 5), 2.0 * harmonic_number(4), 1e-12);
}

// Matthews' sandwich checked with exact cover and hitting times — the
// strongest correctness cross-check between the exact solvers.
class MatthewsSandwich : public ::testing::TestWithParam<Graph> {};

TEST_P(MatthewsSandwich, HoldsExactly) {
  const Graph& g = GetParam();
  const Vertex n = g.num_vertices();
  const auto ext = hitting_extremes(g);
  double cover = 0.0;  // C(G) = max_i C_i
  for (Vertex v = 0; v < n; ++v) {
    cover = std::max(cover, exact_cover_time(g, v));
  }
  EXPECT_LE(cover, matthews_upper_bound(ext.h_max, n) + 1e-8);
  EXPECT_GE(cover, matthews_lower_bound(ext.h_min, n) - 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    SmallGraphs, MatthewsSandwich,
    ::testing::Values(make_cycle(5), make_cycle(8), make_path(6), make_star(7),
                      make_complete(6), make_complete(5, true),
                      make_barbell(9), make_grid_2d(3, GridTopology::kOpen),
                      make_hypercube(3), make_balanced_tree(2, 2),
                      make_lollipop(8), make_complete_bipartite(3, 4)));

TEST(Matthews, TightOnCompleteGraph) {
  // C(K_n) = (n-1) H_{n-1} = h_max H_{n-1}: the bound is exactly attained.
  const Vertex n = 9;
  EXPECT_NEAR(complete_cover_time(n),
              matthews_upper_bound(complete_hitting_time(n), n), 1e-9);
}

TEST(BabyMatthews, AsymptoticScalesAsOneOverK) {
  const double b1 = baby_matthews_asymptotic(100.0, 1000, 1);
  const double b4 = baby_matthews_asymptotic(100.0, 1000, 4);
  EXPECT_NEAR(b1 / b4, 4.0, 1e-9);
  EXPECT_NEAR(b1, std::exp(1.0) * 100.0 * harmonic_number(1000), 1e-9);
}

TEST(BabyMatthews, FiniteBoundDominatesAsymptoticShape) {
  // The rigorous finite bound is weaker (larger) than the clean asymptotic
  // form at moderate n.
  for (unsigned k : {1u, 2u, 8u}) {
    EXPECT_GT(baby_matthews_bound(50.0, 512, k),
              0.5 * baby_matthews_asymptotic(50.0, 512, k));
  }
}

TEST(BabyMatthews, AtKEqualLogNBoundIsOrderHmax) {
  // With k = ln n the walk-length term is e * ceil(...) * h_max ≈ e·h_max
  // up to the restart term.
  const std::uint64_t n = 1024;
  const auto k = static_cast<unsigned>(std::log(static_cast<double>(n)));
  const double bound = baby_matthews_bound(1000.0, n, k);
  EXPECT_LT(bound, 12'000.0);
  EXPECT_GT(bound, 2'000.0);
}

TEST(BabyMatthews, RequiresMinimumSize) {
  EXPECT_THROW(baby_matthews_bound(10.0, 4, 2), std::invalid_argument);
}

TEST(Theorem14, ReferenceDecomposition) {
  // C/k dominates for small k; the h_max term grows with log k.
  const double c = 1e6;
  const double h = 1e3;
  EXPECT_NEAR(theorem14_reference(c, h, 1, 1.0), c + 2.0 * h, 1e-9);
  const double at4 = theorem14_reference(c, h, 4, 1.0);
  EXPECT_NEAR(at4, c / 4 + (3 * std::log(4.0) + 2) * h, 1e-9);
}

TEST(Gap, ValuesAndTheorem5Cap) {
  EXPECT_DOUBLE_EQ(cover_hitting_gap(1000.0, 100.0), 10.0);
  EXPECT_NEAR(theorem5_max_k(100.0, 0.5), 10.0, 1e-9);
  EXPECT_THROW(cover_hitting_gap(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(theorem5_max_k(10.0, 1.5), std::invalid_argument);
}

TEST(CycleBounds, UpperAboveLower) {
  for (unsigned k : {2u, 4u, 16u, 256u}) {
    EXPECT_GT(cycle_k_cover_upper(1000, k), cycle_k_cover_lower(1000, k));
  }
}

TEST(CycleBounds, UpperScalesAsOneOverLogK) {
  const double at2 = cycle_k_cover_upper(1000, 2);
  const double at16 = cycle_k_cover_upper(1000, 16);
  EXPECT_NEAR(at2 / at16, std::log(16.0) / std::log(2.0), 1e-9);
}

TEST(CycleBounds, LowerBoundSandwichesSingleWalkCover) {
  // k = 1: C^1 = n(n-1)/2 must respect the Lemma 21 lower bound.
  const std::uint64_t n = 500;
  EXPECT_GE(cycle_cover_time(n), cycle_k_cover_lower(n, 1));
}

TEST(CycleBounds, Lemma22RejectsHugeK) {
  EXPECT_THROW(cycle_k_cover_upper(10, 1u << 30), std::invalid_argument);
}

TEST(GridBounds, LowerBoundShrinksWithK) {
  EXPECT_GT(grid_k_cover_lower(10000, 2, 2), grid_k_cover_lower(10000, 2, 64));
}

TEST(GridBounds, HigherDimensionLowersBound) {
  EXPECT_GT(grid_k_cover_lower(1u << 12, 2, 4),
            grid_k_cover_lower(1u << 12, 3, 4));
}

TEST(Theorem9, SpeedupReferenceShape) {
  EXPECT_NEAR(theorem9_speedup_reference(10, 5.0, 1024),
              10.0 / (5.0 * std::log(1024.0)), 1e-12);
  // k-cover reference decreases in k.
  EXPECT_GT(theorem9_k_cover_reference(5.0, 1024, 2),
            theorem9_k_cover_reference(5.0, 1024, 64));
}

}  // namespace
}  // namespace manywalks
