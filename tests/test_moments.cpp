// Tests for the exact cover-time moment oracle and the concentration /
// stationary-start estimators built on it.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "mc/estimators.hpp"
#include "theory/exact.hpp"

namespace manywalks {
namespace {

TEST(CoverMomentsTest, DeterministicCoverHasZeroVariance) {
  // K_2: the cover time is exactly 1.
  const auto m = exact_cover_time_moments(make_path(2), 0);
  EXPECT_NEAR(m.mean, 1.0, 1e-12);
  EXPECT_NEAR(m.variance, 0.0, 1e-10);
  EXPECT_NEAR(m.coefficient_of_variation(), 0.0, 1e-9);
}

TEST(CoverMomentsTest, TriangleHandComputed) {
  // Triangle from any vertex: T = 1 + X with X ~ Geometric(1/2) on
  // {1,2,...}: mean 1 + 2 = 3, variance = (1-p)/p^2 = 2.
  const auto m = exact_cover_time_moments(make_cycle(3), 0);
  EXPECT_NEAR(m.mean, 3.0, 1e-10);
  EXPECT_NEAR(m.variance, 2.0, 1e-10);
}

TEST(CoverMomentsTest, MeanMatchesPlainOracle) {
  for (const Graph& g : {make_cycle(7), make_star(6), make_barbell(9),
                         make_complete(5), make_path(6)}) {
    const double mean_only = exact_cover_time(g, 0);
    const auto m = exact_cover_time_moments(g, 0);
    EXPECT_NEAR(m.mean, mean_only, 1e-7);
    EXPECT_GE(m.variance, -1e-8);
  }
}

TEST(CoverMomentsTest, MatchesMonteCarloVariance) {
  const Graph g = make_cycle(9);
  const auto m = exact_cover_time_moments(g, 0);
  const auto samples = collect_cover_samples(g, 0, 1, 6000, 404);
  RunningStats stats;
  for (double v : samples) stats.add(v);
  EXPECT_NEAR(stats.mean(), m.mean, 0.05 * m.mean);
  // Sample variance of the variance is large; allow 15%.
  EXPECT_NEAR(stats.variance(), m.variance, 0.15 * m.variance);
}

TEST(CoverMomentsTest, AldousDirectionOnSmallGraphs) {
  // C/h_max is larger on K_n than on the cycle; the coefficient of
  // variation must order the other way (more concentration on K_n).
  const auto clique = exact_cover_time_moments(make_complete(12), 0);
  const auto cycle = exact_cover_time_moments(make_cycle(12), 0);
  EXPECT_LT(clique.coefficient_of_variation(),
            cycle.coefficient_of_variation());
}

TEST(CoverMomentsTest, RejectsLargeGraphs) {
  EXPECT_THROW(exact_cover_time_moments(make_cycle(17), 0),
               std::invalid_argument);
}

TEST(CollectCoverSamples, DeterministicAndSized) {
  const Graph g = make_cycle(11);
  const auto a = collect_cover_samples(g, 0, 2, 50, 99);
  const auto b = collect_cover_samples(g, 0, 2, 50, 99);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(a, b);
  const auto c = collect_cover_samples(g, 0, 2, 50, 100);
  EXPECT_NE(a, c);
}

TEST(CollectCoverSamples, AgreesWithEstimator) {
  const Graph g = make_cycle(15);
  const auto samples = collect_cover_samples(g, 0, 2, 2000, 7);
  RunningStats stats;
  for (double v : samples) stats.add(v);
  McOptions mc;
  mc.min_trials = 2000;
  mc.max_trials = 2000;
  mc.seed = 8;
  const auto est = estimate_k_cover_time(g, 0, 2, mc);
  EXPECT_NEAR(stats.mean(), est.ci.mean, 0.1 * est.ci.mean);
}

TEST(StationaryStartCover, MatchesFixedStartOnVertexTransitiveGraphs) {
  // On the complete graph every start is equivalent, so stationary starts
  // change nothing (k = 1).
  const Graph g = make_complete(32);
  McOptions mc;
  mc.min_trials = 1500;
  mc.max_trials = 1500;
  mc.seed = 11;
  const auto stationary = estimate_stationary_start_cover(g, 1, mc);
  mc.seed = 12;
  const auto fixed = estimate_cover_time(g, 0, mc);
  EXPECT_NEAR(stationary.ci.mean, fixed.ci.mean,
              4.0 * (stationary.ci.half_width + fixed.ci.half_width));
}

TEST(StationaryStartCover, BarbellCenterStartBeatsStationaryForKAtLeast2) {
  // Thm 7's mechanism cuts both ways: from the CENTER with k >= 2 the
  // tokens split into both bells w.h.p. and the center itself is covered
  // at t = 0, so the cover is fast. Stationary starts land inside the
  // bells, and covering the center then costs a Θ(n²) bell-to-center
  // hitting time (divided by k) — strictly slower.
  const Graph g = make_barbell(41);
  McOptions mc;
  mc.min_trials = 300;
  mc.max_trials = 300;
  mc.seed = 13;
  const auto stationary = estimate_stationary_start_cover(g, 4, mc);
  mc.seed = 14;
  const auto center = estimate_k_cover_time(g, barbell_center(41), 4, mc);
  EXPECT_GT(stationary.ci.mean, 1.2 * center.ci.mean);

  // Both k = 4 placements still crush the single walk from the center,
  // which must escape a bell: Θ(n²).
  mc.seed = 15;
  const auto single = estimate_cover_time(g, barbell_center(41), mc);
  EXPECT_GT(single.ci.mean, 2.0 * stationary.ci.mean);
}

TEST(StationaryStartCover, ImprovesWithK) {
  const Graph g = make_grid_2d(9);
  McOptions mc;
  mc.min_trials = 400;
  mc.max_trials = 400;
  mc.seed = 15;
  const auto k1 = estimate_stationary_start_cover(g, 1, mc);
  mc.seed = 16;
  const auto k8 = estimate_stationary_start_cover(g, 8, mc);
  EXPECT_LT(k8.ci.mean, k1.ci.mean / 4.0);
}

}  // namespace
}  // namespace manywalks
