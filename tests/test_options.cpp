#include "util/options.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

namespace manywalks {
namespace {

/// argv helper: builds a mutable char** from strings.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(ArgParserTest, ParsesTypedOptions) {
  std::uint64_t n = 10;
  double p = 0.5;
  std::string name = "x";
  unsigned k = 1;
  ArgParser parser("prog", "test");
  parser.add_option("n", &n, "count")
      .add_option("p", &p, "prob")
      .add_option("name", &name, "label")
      .add_option("k", &k, "walks");
  Argv args({"prog", "--n", "42", "--p", "0.25", "--name", "cycle", "--k", "8"});
  ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
  EXPECT_EQ(n, 42u);
  EXPECT_DOUBLE_EQ(p, 0.25);
  EXPECT_EQ(name, "cycle");
  EXPECT_EQ(k, 8u);
}

TEST(ArgParserTest, EqualsSyntax) {
  std::int64_t v = 0;
  ArgParser parser("prog", "test");
  parser.add_option("v", &v, "value");
  Argv args({"prog", "--v=-17"});
  ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
  EXPECT_EQ(v, -17);
}

TEST(ArgParserTest, FlagsDefaultFalse) {
  bool full = false;
  ArgParser parser("prog", "test");
  parser.add_flag("full", &full, "run full scale");
  {
    Argv args({"prog"});
    ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
    EXPECT_FALSE(full);
  }
  {
    Argv args({"prog", "--full"});
    ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
    EXPECT_TRUE(full);
  }
}

TEST(ArgParserTest, UnknownOptionFails) {
  ArgParser parser("prog", "test");
  Argv args({"prog", "--bogus", "1"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

TEST(ArgParserTest, MissingValueFails) {
  std::uint64_t n = 0;
  ArgParser parser("prog", "test");
  parser.add_option("n", &n, "count");
  Argv args({"prog", "--n"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

TEST(ArgParserTest, BadNumberFails) {
  std::uint64_t n = 0;
  ArgParser parser("prog", "test");
  parser.add_option("n", &n, "count");
  Argv args({"prog", "--n", "soup"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

TEST(ArgParserTest, HelpReturnsFalse) {
  ArgParser parser("prog", "test");
  Argv args({"prog", "--help"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

TEST(ArgParserTest, PositionalArgumentFails) {
  ArgParser parser("prog", "test");
  Argv args({"prog", "stray"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

TEST(ArgParserTest, UsageMentionsOptionsAndDefaults) {
  std::uint64_t n = 123;
  ArgParser parser("prog", "does things");
  parser.add_option("n", &n, "the count");
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("the count"), std::string::npos);
  EXPECT_NE(usage.find("123"), std::string::npos);
  EXPECT_NE(usage.find("does things"), std::string::npos);
}

TEST(ArgParserTest, DuplicateRegistrationThrows) {
  std::uint64_t n = 0;
  ArgParser parser("prog", "test");
  parser.add_option("n", &n, "count");
  EXPECT_THROW(parser.add_option("n", &n, "again"), std::invalid_argument);
}

TEST(ArgParserTest, FlagWithValueFails) {
  bool f = false;
  ArgParser parser("prog", "test");
  parser.add_flag("f", &f, "flag");
  Argv args({"prog", "--f=true"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

}  // namespace
}  // namespace manywalks
