#include "util/options.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

namespace manywalks {
namespace {

/// argv helper: builds a mutable char** from strings.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(ArgParserTest, ParsesTypedOptions) {
  std::uint64_t n = 10;
  double p = 0.5;
  std::string name = "x";
  unsigned k = 1;
  ArgParser parser("prog", "test");
  parser.add_option("n", &n, "count")
      .add_option("p", &p, "prob")
      .add_option("name", &name, "label")
      .add_option("k", &k, "walks");
  Argv args({"prog", "--n", "42", "--p", "0.25", "--name", "cycle", "--k", "8"});
  ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
  EXPECT_EQ(n, 42u);
  EXPECT_DOUBLE_EQ(p, 0.25);
  EXPECT_EQ(name, "cycle");
  EXPECT_EQ(k, 8u);
}

TEST(ArgParserTest, EqualsSyntax) {
  std::int64_t v = 0;
  ArgParser parser("prog", "test");
  parser.add_option("v", &v, "value");
  Argv args({"prog", "--v=-17"});
  ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
  EXPECT_EQ(v, -17);
}

TEST(ArgParserTest, FlagsDefaultFalse) {
  bool full = false;
  ArgParser parser("prog", "test");
  parser.add_flag("full", &full, "run full scale");
  {
    Argv args({"prog"});
    ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
    EXPECT_FALSE(full);
  }
  {
    Argv args({"prog", "--full"});
    ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
    EXPECT_TRUE(full);
  }
}

TEST(ArgParserTest, UnknownOptionFails) {
  ArgParser parser("prog", "test");
  Argv args({"prog", "--bogus", "1"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

TEST(ArgParserTest, MissingValueFails) {
  std::uint64_t n = 0;
  ArgParser parser("prog", "test");
  parser.add_option("n", &n, "count");
  Argv args({"prog", "--n"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

TEST(ArgParserTest, BadNumberFails) {
  std::uint64_t n = 0;
  ArgParser parser("prog", "test");
  parser.add_option("n", &n, "count");
  Argv args({"prog", "--n", "soup"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

TEST(ArgParserTest, HelpReturnsFalse) {
  ArgParser parser("prog", "test");
  Argv args({"prog", "--help"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

TEST(ArgParserTest, PositionalArgumentFails) {
  ArgParser parser("prog", "test");
  Argv args({"prog", "stray"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

TEST(ArgParserTest, UsageMentionsOptionsAndDefaults) {
  std::uint64_t n = 123;
  ArgParser parser("prog", "does things");
  parser.add_option("n", &n, "the count");
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("the count"), std::string::npos);
  EXPECT_NE(usage.find("123"), std::string::npos);
  EXPECT_NE(usage.find("does things"), std::string::npos);
}

TEST(ArgParserTest, DuplicateRegistrationThrows) {
  std::uint64_t n = 0;
  ArgParser parser("prog", "test");
  parser.add_option("n", &n, "count");
  EXPECT_THROW(parser.add_option("n", &n, "again"), std::invalid_argument);
}

TEST(ArgParserTest, FlagWithValueFails) {
  bool f = false;
  ArgParser parser("prog", "test");
  parser.add_flag("f", &f, "flag");
  Argv args({"prog", "--f=true"});
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
}

TEST(ParseByteSize, PlainDigitsAreBytes) {
  EXPECT_EQ(parse_byte_size("0"), 0u);
  EXPECT_EQ(parse_byte_size("1"), 1u);
  EXPECT_EQ(parse_byte_size("4096"), 4096u);
}

TEST(ParseByteSize, BinarySuffixes) {
  EXPECT_EQ(parse_byte_size("1K"), std::uint64_t{1} << 10);
  EXPECT_EQ(parse_byte_size("2k"), std::uint64_t{2} << 10);
  EXPECT_EQ(parse_byte_size("3M"), std::uint64_t{3} << 20);
  EXPECT_EQ(parse_byte_size("256m"), std::uint64_t{256} << 20);
  EXPECT_EQ(parse_byte_size("7G"), std::uint64_t{7} << 30);
  EXPECT_EQ(parse_byte_size("2T"), std::uint64_t{2} << 40);
}

TEST(ParseByteSize, OptionalTrailingB) {
  EXPECT_EQ(parse_byte_size("64KB"), std::uint64_t{64} << 10);
  EXPECT_EQ(parse_byte_size("64Kb"), std::uint64_t{64} << 10);
  EXPECT_EQ(parse_byte_size("1gb"), std::uint64_t{1} << 30);
}

TEST(ParseByteSize, RejectsMalformedInput) {
  EXPECT_THROW(parse_byte_size(""), std::invalid_argument);
  EXPECT_THROW(parse_byte_size("K"), std::invalid_argument);
  EXPECT_THROW(parse_byte_size("12Q"), std::invalid_argument);
  // 'B' alone is not a size: the grammar is digits [K|M|G|T [B]].
  EXPECT_THROW(parse_byte_size("512B"), std::invalid_argument);
  EXPECT_THROW(parse_byte_size("12MBextra"), std::invalid_argument);
  EXPECT_THROW(parse_byte_size("-1"), std::invalid_argument);
  EXPECT_THROW(parse_byte_size("1.5G"), std::invalid_argument);
}

TEST(ParseByteSize, RejectsOverflow) {
  // 2^64 bytes exactly, and a shift that overflows.
  EXPECT_THROW(parse_byte_size("18446744073709551616"), std::invalid_argument);
  EXPECT_THROW(parse_byte_size("16777216T"), std::invalid_argument);
  // The largest representable T value still parses.
  EXPECT_EQ(parse_byte_size("16777215T"), std::uint64_t{16777215} << 40);
}

}  // namespace
}  // namespace manywalks
