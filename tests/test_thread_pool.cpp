#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace manywalks {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesAtWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  pool.submit([&counter] { counter.fetch_add(1); });
  try {
    pool.wait_idle();
    FAIL() << "expected the task's exception from wait_idle";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task boom");
  }
  // The exception is consumed: other tasks still ran, the pool is idle, and
  // a second wait does not rethrow.
  EXPECT_EQ(counter.load(), 1);
  pool.wait_idle();
}

TEST(ThreadPoolTest, OnlyFirstTaskExceptionIsKept) {
  ThreadPool pool(1);
  for (int i = 0; i < 3; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // later exceptions were dropped, not queued
}

TEST(ThreadPoolTest, ReusableAfterTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::invalid_argument("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::invalid_argument);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedWork) {
  // The destructor drains the queue before joining: every task submitted
  // before shutdown runs, even with far more tasks than workers.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // No wait_idle: destruction itself must flush the queue.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DestructionWithPendingExceptionDoesNotTerminate) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("unobserved"); });
    pool.submit([&counter] { counter.fetch_add(1); });
    // Destructor discards the captured exception instead of rethrowing.
  }
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SubmitNullTaskIsRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), std::invalid_argument);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&hits](std::uint64_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  parallel_for(pool, 5, 5, [&counter](std::uint64_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ParallelFor, RespectsGrain) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  parallel_for(
      pool, 0, 100, [&sum](std::uint64_t i) { sum.fetch_add(i); },
      /*grain=*/16);
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::uint64_t i) {
                     if (i == 42) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Pool must still be usable afterwards.
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 10, [&counter](std::uint64_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, WorksWithSingleWorker) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex m;
  parallel_for(pool, 0, 50, [&](std::uint64_t i) {
    std::lock_guard lock(m);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order.size(), 50u);
}

TEST(ParallelFor, LargeRangeSumsCorrectly) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  const std::uint64_t n = 100000;
  parallel_for(
      pool, 0, n, [&sum](std::uint64_t i) { sum.fetch_add(i); },
      /*grain=*/512);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(DefaultThreadCount, IsPositive) { EXPECT_GE(default_thread_count(), 1u); }

}  // namespace
}  // namespace manywalks
