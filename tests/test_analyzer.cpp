#include "core/analyzer.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "theory/closed_forms.hpp"

namespace manywalks {
namespace {

McOptions quick_mc(std::uint64_t trials, std::uint64_t seed = 21) {
  McOptions mc;
  mc.min_trials = trials;
  mc.max_trials = trials;
  mc.seed = seed;
  return mc;
}

TEST(MeasureHmax, ExactBranchMatchesClosedForm) {
  const Vertex n = 12;
  const auto est = measure_h_max(make_cycle(n), quick_mc(16));
  EXPECT_TRUE(est.exact);
  EXPECT_NEAR(est.value, cycle_max_hitting_time(n), 1e-8);
  EXPECT_EQ(est.half_width, 0.0);
}

TEST(MeasureHmax, SampledBranchApproximatesCycle) {
  // Force sampling with exact_limit = 0; the double-sweep heuristic finds
  // the antipodal pair on a cycle.
  const Vertex n = 41;
  const auto est = measure_h_max(make_cycle(n), quick_mc(600), 0);
  EXPECT_FALSE(est.exact);
  const double truth = cycle_max_hitting_time(n);
  EXPECT_NEAR(est.value, truth, 0.25 * truth);
}

TEST(MeasureHmax, SampledBranchFindsLollipopTail) {
  const auto est = measure_h_max(make_lollipop(18), quick_mc(300), 0);
  // The hard target is the end of the stick (last vertex).
  EXPECT_EQ(est.to, 17u);
}

TEST(MeasureMixing, CompleteWithLoopsIsOne) {
  const auto m = measure_mixing_time(make_complete(12, true), false);
  EXPECT_TRUE(m.converged);
  EXPECT_EQ(m.time, 1u);
  EXPECT_EQ(m.laziness, 0.0);
}

TEST(MeasureMixing, BipartiteAutomaticallyLazy) {
  const auto m = measure_mixing_time(make_hypercube(4), false, 100000);
  EXPECT_TRUE(m.converged);
  EXPECT_EQ(m.laziness, 0.5);
}

TEST(MeasureMixing, ForceLazyOnOddCycle) {
  const auto m = measure_mixing_time(make_cycle(9), true, 100000);
  EXPECT_TRUE(m.converged);
  EXPECT_EQ(m.laziness, 0.5);
}

TEST(MeasureMixing, CapReportsNotConverged) {
  const auto m = measure_mixing_time(make_cycle(201), false, 50);
  EXPECT_FALSE(m.converged);
  EXPECT_EQ(m.time, 50u);
}

TEST(MeasureMixing, ExplicitSources) {
  const std::vector<Vertex> sources = {0};
  const auto m =
      measure_mixing_time(make_cycle(9), false, 100000, sources);
  EXPECT_TRUE(m.converged);
}

TEST(ProfileGraph, CycleProfileMatchesTheory) {
  FamilyInstance inst = make_family_instance(GraphFamily::kCycle, 33);
  ProfileOptions options;
  options.mc = quick_mc(1200);
  const auto profile = profile_graph(inst, options);
  const double exact_cover = cycle_cover_time(inst.graph.num_vertices());
  EXPECT_NEAR(profile.cover.ci.mean, exact_cover, 0.1 * exact_cover);
  EXPECT_TRUE(profile.h_max.exact);
  EXPECT_NEAR(profile.h_max.value,
              cycle_max_hitting_time(inst.graph.num_vertices()), 1e-8);
  EXPECT_TRUE(profile.mixing.converged);
  // Gap C/h_max ≈ n(n-1)/2 / (n²/4) ≈ 2.
  EXPECT_NEAR(profile.gap, 2.0, 0.4);
}

TEST(ProfileGraph, ExpanderHasLargeGap) {
  FamilyInstance inst = make_family_instance(GraphFamily::kMargulis, 100);
  ProfileOptions options;
  options.mc = quick_mc(200);
  const auto profile = profile_graph(inst, options);
  // Expander: C ≈ Θ(n log n), h_max ≈ Θ(n) => gap ≈ Θ(log n) > 2.
  EXPECT_GT(profile.gap, 2.0);
  EXPECT_TRUE(profile.mixing.converged);
  EXPECT_LT(profile.mixing.time, 60u);
}

}  // namespace
}  // namespace manywalks
