#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace manywalks {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Mix64, IsAPureFunction) {
  EXPECT_EQ(mix64(99), mix64(99));
  EXPECT_NE(mix64(99), mix64(100));
}

TEST(Xoshiro, IsDeterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, SeedsProduceDistinctStreams) {
  Rng a(7);
  Rng b(8);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GE(differing, 63);
}

TEST(Xoshiro, JumpChangesState) {
  Rng a(7);
  Rng b(7);
  b.jump();
  EXPECT_NE(a.state(), b.state());
  // The jumped stream should not collide with the original in a short
  // window.
  std::set<std::uint64_t> seen;
  Rng c(7);
  for (int i = 0; i < 1000; ++i) seen.insert(c.next());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(seen.contains(b.next()));
}

TEST(Xoshiro, LongJumpDiffersFromJump) {
  Rng a(7);
  Rng b(7);
  a.jump();
  b.long_jump();
  EXPECT_NE(a.state(), b.state());
}

TEST(Xoshiro, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro, Uniform01MeanIsHalf) {
  Rng rng(3);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform01();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Xoshiro, UniformBelowRespectsBound) {
  Rng rng(11);
  for (std::uint32_t bound : {1u, 2u, 3u, 7u, 100u, 1u << 30}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Xoshiro, UniformBelowOneIsAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Xoshiro, UniformBelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr std::uint32_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform_below(kBuckets)];
  // Chi-square with 9 dof: 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Xoshiro, UniformBelow64RespectsBound) {
  Rng rng(17);
  for (std::uint64_t bound : {1ULL, 5ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_below64(bound), bound);
    }
  }
}

TEST(Xoshiro, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(TrialRng, SameInputsSameStream) {
  Rng a = make_trial_rng(5, 17);
  Rng b = make_trial_rng(5, 17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(TrialRng, DifferentTrialsDiffer) {
  Rng a = make_trial_rng(5, 17);
  Rng b = make_trial_rng(5, 18);
  EXPECT_NE(a.next(), b.next());
}

TEST(TrialRng, DifferentSeedsDiffer) {
  Rng a = make_trial_rng(5, 17);
  Rng b = make_trial_rng(6, 17);
  EXPECT_NE(a.next(), b.next());
}

TEST(TrialRng, ConsecutiveTrialsLookIndependent) {
  // Means of consecutive trial streams should not correlate.
  double corr_acc = 0.0;
  const int pairs = 2000;
  for (int i = 0; i < pairs; ++i) {
    Rng a = make_trial_rng(1, static_cast<std::uint64_t>(i));
    Rng b = make_trial_rng(1, static_cast<std::uint64_t>(i) + 1);
    corr_acc += (a.uniform01() - 0.5) * (b.uniform01() - 0.5);
  }
  EXPECT_NEAR(corr_acc / pairs, 0.0, 0.01);
}

}  // namespace
}  // namespace manywalks
