#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace manywalks {
namespace {

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_EQ(a.num_loops(), b.num_loops());
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    const auto ra = a.neighbors(v);
    const auto rb = b.neighbors(v);
    ASSERT_EQ(ra.size(), rb.size()) << "vertex " << v;
    for (std::size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
  }
}

TEST(GraphIo, RoundtripSimpleFamilies) {
  for (const Graph& g :
       {make_cycle(9), make_complete(6), make_hypercube(3), make_barbell(11)}) {
    std::stringstream ss;
    write_edge_list(ss, g);
    const Graph back = read_edge_list(ss);
    expect_same_graph(g, back);
  }
}

TEST(GraphIo, RoundtripLoopsAndMultiEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 0).add_edge(0, 1).add_edge(0, 1).add_edge(1, 2);
  GraphBuilder::BuildOptions options;
  options.duplicates = GraphBuilder::DuplicatePolicy::kKeep;
  options.loops = GraphBuilder::LoopPolicy::kKeep;
  const Graph g = b.build(options);
  std::stringstream ss;
  write_edge_list(ss, g);
  expect_same_graph(g, read_edge_list(ss));
}

TEST(GraphIo, RoundtripMargulisMultigraph) {
  const Graph g = make_margulis_expander(4);
  std::stringstream ss;
  write_edge_list(ss, g);
  expect_same_graph(g, read_edge_list(ss));
}

TEST(GraphIo, HeaderIsWritten) {
  std::stringstream ss;
  write_edge_list(ss, make_path(3));
  std::string first_line;
  std::getline(ss, first_line);
  EXPECT_EQ(first_line, "# manywalks-graph 1");
}

TEST(GraphIo, RejectsMissingHeader) {
  std::stringstream ss("3\n0 1\n");
  EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
}

TEST(GraphIo, RejectsBadEdgeLine) {
  std::stringstream ss("# manywalks-graph 1\n3\n0 soup\n");
  EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
}

TEST(GraphIo, RejectsOutOfRangeVertex) {
  std::stringstream ss("# manywalks-graph 1\n3\n0 5\n");
  EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
}

TEST(GraphIo, RejectsTrailingGarbageOnEdgeLine) {
  std::stringstream ss("# manywalks-graph 1\n3\n0 1 junk\n");
  EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
}

TEST(GraphIo, TrailingGarbageErrorNamesTheLine) {
  std::stringstream ss("# manywalks-graph 1\n3\n0 1\n1 2 0\n");
  try {
    read_edge_list(ss);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(GraphIo, RejectsTrailingGarbageAfterVertexCount) {
  // '3 7' must not silently parse as n=3 (the common "<n> <m>" header of
  // other edge-list formats is not ours).
  std::stringstream ss("# manywalks-graph 1\n3 7\n0 1\n");
  EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
}

TEST(GraphIo, RejectsExtraNumericColumn) {
  // A third numeric field is garbage too — weighted formats are not ours.
  std::stringstream ss("# manywalks-graph 1\n4\n0 1 2\n");
  EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
}

TEST(GraphIo, AcceptsTrailingWhitespace) {
  std::stringstream ss("# manywalks-graph 1\n3\n0 1   \n1 2\t\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, RoundtripSurvivesRereading) {
  // write -> read -> write -> read is a fixed point.
  const Graph g = make_grid_2d(4);
  std::stringstream first;
  write_edge_list(first, g);
  const Graph once = read_edge_list(first);
  std::stringstream second;
  write_edge_list(second, once);
  expect_same_graph(g, read_edge_list(second));
}

TEST(GraphIo, FromCharsScannerRejectsNonDecimalFields) {
  // The scanner is std::from_chars on plain decimal digits: signs, hex,
  // floats, and overflow must all fail as "bad edge", never silently wrap
  // (istream extraction used to accept "+1" and wrap "-1" to 2^64-1).
  for (const char* body :
       {"+1 2\n", "-1 2\n", "0x1 2\n", "1.5 2\n",
        "18446744073709551616 0\n"}) {
    SCOPED_TRACE(body);
    std::stringstream ss(std::string("# manywalks-graph 1\n3\n") + body);
    EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
  }
}

TEST(GraphIo, AcceptsCrlfAndTabSeparators) {
  std::stringstream ss("# manywalks-graph 1\n3\n0\t1\r\n1 2\r\n");
  EXPECT_EQ(read_edge_list(ss).num_edges(), 2u);
}

TEST(GraphIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# manywalks-graph 1\n3\n\n# a comment\n0 1\n1 2\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, EmptyEdgeSetRoundtrips) {
  GraphBuilder b(5);
  const Graph g = b.build();
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(back.num_vertices(), 5u);
  EXPECT_EQ(back.num_edges(), 0u);
}

}  // namespace
}  // namespace manywalks
