#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace manywalks {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  MW_REQUIRE(1 + 1 == 2, "arithmetic works");
  SUCCEED();
}

TEST(Check, FailingConditionThrowsInvalidArgument) {
  EXPECT_THROW(MW_REQUIRE(false, "always fails"), std::invalid_argument);
}

TEST(Check, MessageContainsExpressionAndDetail) {
  try {
    const int x = 3;
    MW_REQUIRE(x > 5, "x was " << x);
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x > 5"), std::string::npos);
    EXPECT_NE(what.find("x was 3"), std::string::npos);
  }
}

TEST(Check, SideEffectsEvaluatedOnce) {
  int calls = 0;
  const auto count = [&calls] {
    ++calls;
    return true;
  };
  MW_REQUIRE(count(), "");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace manywalks
