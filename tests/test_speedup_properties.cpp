// Property-based sweeps over the speed-up itself: invariants that must
// hold on every family (monotonicity, trivial floors, linearity caps).
#include <gtest/gtest.h>

#include <cmath>

#include "core/families.hpp"
#include "mc/estimators.hpp"

namespace manywalks {
namespace {

McOptions mc_with(std::uint64_t trials, std::uint64_t seed) {
  McOptions mc;
  mc.min_trials = trials;
  mc.max_trials = trials;
  mc.seed = seed;
  return mc;
}

class SpeedupPropertySweep : public ::testing::TestWithParam<GraphFamily> {
 protected:
  static constexpr std::uint64_t kTargetN = 96;
  static constexpr std::uint64_t kTrials = 220;
};

TEST_P(SpeedupPropertySweep, KCoverTimeIsMonotoneNonIncreasingInK) {
  const FamilyInstance inst = make_family_instance(GetParam(), kTargetN, 5);
  const std::vector<unsigned> ks = {1, 2, 4, 8, 16};
  const auto curve = estimate_speedup_curve(inst.graph, inst.start, ks,
                                            mc_with(kTrials, 61));
  for (std::size_t i = 1; i < curve.size(); ++i) {
    // Allow CI-width slack: more walks can never make covering slower.
    const double slack = curve[i - 1].multi.ci.half_width +
                         curve[i].multi.ci.half_width;
    EXPECT_LE(curve[i].multi.ci.mean, curve[i - 1].multi.ci.mean + slack)
        << inst.name << " k=" << curve[i].k;
  }
}

TEST_P(SpeedupPropertySweep, SpeedupIsAtLeastOne) {
  const FamilyInstance inst = make_family_instance(GetParam(), kTargetN, 6);
  const auto s = estimate_speedup(inst.graph, inst.start, 8,
                                  mc_with(kTrials, 62));
  EXPECT_GT(s.speedup + s.half_width, 1.0) << inst.name;
}

TEST_P(SpeedupPropertySweep, KCoverRespectsPerRoundInformationFloor) {
  // k tokens visit at most k new vertices per round, so
  // C^k >= (n - 1) / k always (the k starts share one vertex).
  const FamilyInstance inst = make_family_instance(GetParam(), kTargetN, 7);
  const unsigned k = 16;
  const auto r = estimate_k_cover_time(inst.graph, inst.start, k,
                                       mc_with(kTrials, 63));
  const double floor_rounds =
      (static_cast<double>(inst.graph.num_vertices()) - 1.0) / k;
  EXPECT_GE(r.ci.mean + r.ci.half_width, floor_rounds) << inst.name;
}

TEST_P(SpeedupPropertySweep, NoSuperLinearSpeedupExceptBarbell) {
  // Conjecture 10 on worst-ish starts: S^k <= ~k everywhere except the
  // barbell's center start (Thm 7).
  if (GetParam() == GraphFamily::kBarbell) GTEST_SKIP();
  const FamilyInstance inst = make_family_instance(GetParam(), kTargetN, 8);
  const auto s = estimate_speedup(inst.graph, inst.start, 8,
                                  mc_with(kTrials, 64));
  EXPECT_LE(s.speedup - 2.0 * s.half_width, 1.5 * 8.0) << inst.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SpeedupPropertySweep, ::testing::ValuesIn(all_families()),
    [](const ::testing::TestParamInfo<GraphFamily>& param_info) {
      std::string name{family_name(param_info.param)};
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SpeedupProperties, BarbellIsTheSuperLinearException) {
  const FamilyInstance inst =
      make_family_instance(GraphFamily::kBarbell, 129, 9);
  const auto s = estimate_speedup(inst.graph, inst.start, 16,
                                  mc_with(260, 65));
  EXPECT_GT(s.speedup, 2.0 * 16.0) << "barbell center start should be "
                                      "super-linear at k = 16";
}

TEST(SpeedupProperties, SpeedupCurveSharedBaselineIsConsistent) {
  // S^k * C^k must equal C for every point (internal consistency of the
  // shared-baseline implementation).
  const FamilyInstance inst = make_family_instance(GraphFamily::kGrid2d, 81, 10);
  const std::vector<unsigned> ks = {2, 4, 8};
  const auto curve = estimate_speedup_curve(inst.graph, inst.start, ks,
                                            mc_with(120, 66));
  for (const auto& p : curve) {
    EXPECT_NEAR(p.speedup * p.multi.ci.mean, p.single.ci.mean,
                1e-9 * p.single.ci.mean);
  }
}

}  // namespace
}  // namespace manywalks
