#include "mc/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

namespace manywalks {
namespace {

TEST(MonteCarloRunner, ConstantTrialGivesExactMean) {
  McOptions options;
  options.min_trials = 8;
  options.max_trials = 64;
  const auto result = run_monte_carlo(
      [](std::uint64_t, Rng&) { return TrialOutcome{7.0, false}; }, options);
  EXPECT_DOUBLE_EQ(result.ci.mean, 7.0);
  EXPECT_DOUBLE_EQ(result.ci.half_width, 0.0);
  EXPECT_TRUE(result.target_met);
  EXPECT_EQ(result.censored, 0u);
  // Zero variance: stops right after the first batch (min_trials).
  EXPECT_EQ(result.stats.count(), 8u);
}

TEST(MonteCarloRunner, DeterministicAcrossThreadCounts) {
  const auto trial = [](std::uint64_t, Rng& rng) {
    double acc = 0.0;
    for (int i = 0; i < 100; ++i) acc += rng.uniform01();
    return TrialOutcome{acc, false};
  };
  McOptions options;
  options.min_trials = 40;
  options.max_trials = 40;
  options.seed = 99;

  options.threads = 1;
  const auto serial = run_monte_carlo(trial, options);
  options.threads = 8;
  const auto parallel = run_monte_carlo(trial, options);
  EXPECT_DOUBLE_EQ(serial.ci.mean, parallel.ci.mean);
  EXPECT_DOUBLE_EQ(serial.stats.variance(), parallel.stats.variance());
  EXPECT_EQ(serial.stats.count(), parallel.stats.count());
}

TEST(MonteCarloRunner, SeedChangesResults) {
  const auto trial = [](std::uint64_t, Rng& rng) {
    return TrialOutcome{rng.uniform01(), false};
  };
  McOptions options;
  options.min_trials = 16;
  options.max_trials = 16;
  options.seed = 1;
  const auto r1 = run_monte_carlo(trial, options);
  options.seed = 2;
  const auto r2 = run_monte_carlo(trial, options);
  EXPECT_NE(r1.ci.mean, r2.ci.mean);
}

TEST(MonteCarloRunner, TrialIndexIsPassedThrough) {
  std::atomic<std::uint64_t> index_sum{0};
  McOptions options;
  options.min_trials = 10;
  options.max_trials = 10;
  run_monte_carlo(
      [&index_sum](std::uint64_t index, Rng&) {
        index_sum.fetch_add(index);
        return TrialOutcome{0.0, false};
      },
      options);
  EXPECT_EQ(index_sum.load(), 45u);  // 0 + 1 + ... + 9
}

TEST(MonteCarloRunner, StopsAtTargetPrecision) {
  // Low-variance trial: should stop well before max_trials.
  const auto trial = [](std::uint64_t, Rng& rng) {
    return TrialOutcome{100.0 + rng.uniform01(), false};
  };
  McOptions options;
  options.min_trials = 16;
  options.max_trials = 100000;
  options.target_rel_half_width = 0.01;
  const auto result = run_monte_carlo(trial, options);
  EXPECT_TRUE(result.target_met);
  EXPECT_LT(result.stats.count(), 1000u);
}

TEST(MonteCarloRunner, RespectsMaxTrials) {
  // High-variance trial with an unreachable precision target.
  const auto trial = [](std::uint64_t, Rng& rng) {
    return TrialOutcome{rng.uniform01() < 0.5 ? 0.0 : 1000.0, false};
  };
  McOptions options;
  options.min_trials = 8;
  options.max_trials = 64;
  options.target_rel_half_width = 1e-6;
  const auto result = run_monte_carlo(trial, options);
  EXPECT_FALSE(result.target_met);
  EXPECT_EQ(result.stats.count(), 64u);
}

TEST(MonteCarloRunner, CountsCensoredTrials) {
  McOptions options;
  options.min_trials = 10;
  options.max_trials = 10;
  const auto result = run_monte_carlo(
      [](std::uint64_t index, Rng&) {
        return TrialOutcome{1.0, index % 2 == 0};
      },
      options);
  EXPECT_EQ(result.censored, 5u);
  EXPECT_FALSE(result.target_met);
}

TEST(MonteCarloRunner, CensoredTrialsNeverMeetTheTarget) {
  // Regression for the censored-trial bias: every trial hits the step cap
  // at the same value, so the CI has zero width and the OLD harness
  // declared target_met on purely censored (lower-bound) data. The mean
  // must still be reported (it is a valid lower bound) but never
  // certified.
  McOptions options;
  options.min_trials = 8;
  options.max_trials = 64;
  const auto result = run_monte_carlo(
      [](std::uint64_t, Rng&) {
        return TrialOutcome{100000.0, /*censored=*/true};  // cap value
      },
      options);
  EXPECT_FALSE(result.target_met);
  EXPECT_EQ(result.censored, result.stats.count());
  EXPECT_DOUBLE_EQ(result.ci.mean, 100000.0);
  // And it cannot stop early on the (meaningless) tight CI: the whole
  // budget runs.
  EXPECT_EQ(result.stats.count(), 64u);
}

TEST(MonteCarloRunner, MixedCensoredTrialsAlsoBlockTarget) {
  McOptions options;
  options.min_trials = 8;
  options.max_trials = 32;
  const auto result = run_monte_carlo(
      [](std::uint64_t index, Rng&) {
        return TrialOutcome{50.0, index == 3};  // one censored trial
      },
      options);
  EXPECT_EQ(result.censored, 1u);
  EXPECT_FALSE(result.target_met);
  EXPECT_EQ(result.stats.count(), 32u);
}

TEST(MonteCarloRunner, GeometricBatchesKeepIndexOrderedReduction) {
  // The growing batch schedule must not change WHAT is computed: the
  // stats absorb trial 0, 1, 2, ... in index order no matter how batches
  // are cut, so the result equals a serial replay and is independent of
  // the thread count.
  const auto trial = [](std::uint64_t index, Rng&) {
    return TrialOutcome{static_cast<double>((index * 7919) % 101), false};
  };
  McOptions options;
  options.min_trials = 10;
  options.max_trials = 200;
  options.target_rel_half_width = 1e-12;  // unreachable: all batches run

  options.threads = 1;
  const auto serial = run_monte_carlo(trial, options);
  options.threads = 8;
  const auto parallel = run_monte_carlo(trial, options);
  EXPECT_EQ(serial.stats.count(), 200u);
  EXPECT_EQ(parallel.stats.count(), 200u);
  EXPECT_DOUBLE_EQ(serial.ci.mean, parallel.ci.mean);
  EXPECT_DOUBLE_EQ(serial.stats.variance(), parallel.stats.variance());

  RunningStats replay;
  Rng unused(0);
  for (std::uint64_t i = 0; i < 200; ++i) replay.add(trial(i, unused).value);
  EXPECT_DOUBLE_EQ(serial.ci.mean, replay.mean());
  EXPECT_DOUBLE_EQ(serial.stats.variance(), replay.variance());
}

TEST(MonteCarloRunner, MeanOfUniformIsHalf) {
  McOptions options;
  options.min_trials = 4000;
  options.max_trials = 4000;
  const auto result = run_monte_carlo(
      [](std::uint64_t, Rng& rng) { return TrialOutcome{rng.uniform01(), false}; },
      options);
  EXPECT_NEAR(result.ci.mean, 0.5, 0.02);
  // 95% CI half-width for 4000 uniform samples ≈ 1.96 * 0.2887/63.2 ≈ 0.009.
  EXPECT_NEAR(result.ci.half_width, 0.009, 0.003);
}

TEST(MonteCarloRunner, UsesExternalPool) {
  ThreadPool pool(2);
  McOptions options;
  options.min_trials = 16;
  options.max_trials = 16;
  const auto result = run_monte_carlo(
      [](std::uint64_t, Rng& rng) { return TrialOutcome{rng.uniform01(), false}; },
      options, &pool);
  EXPECT_EQ(result.stats.count(), 16u);
  // The pool must remain usable.
  pool.wait_idle();
}

TEST(MonteCarloRunner, ValidatesOptions) {
  const auto trial = [](std::uint64_t, Rng&) { return TrialOutcome{}; };
  McOptions bad;
  bad.min_trials = 10;
  bad.max_trials = 5;
  EXPECT_THROW(run_monte_carlo(trial, bad), std::invalid_argument);
  McOptions zero;
  zero.min_trials = 0;
  EXPECT_THROW(run_monte_carlo(trial, zero), std::invalid_argument);
}

TEST(MonteCarloRunner, TimingIsPopulated) {
  McOptions options;
  options.min_trials = 4;
  options.max_trials = 4;
  const auto result = run_monte_carlo(
      [](std::uint64_t, Rng&) { return TrialOutcome{1.0, false}; }, options);
  EXPECT_GE(result.seconds, 0.0);
}

}  // namespace
}  // namespace manywalks
