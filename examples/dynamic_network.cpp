// Robustness to churn — the property the paper's introduction credits for
// random walks' popularity in ad-hoc / P2P networks: the algorithm needs no
// topology knowledge, so it keeps working while the network rewires under
// it.
//
// This example covers a random 8-regular network with k walks while, every
// round, a fraction of the edges is rewired by degree-preserving double
// edge swaps. A BFS-style sweep (represented here by its cost lower bound:
// a spanning traversal recomputed after every churn event) would have to
// restart; the k-walk cover time barely moves.
//
//   ./dynamic_network [--n 1024] [--k 8] [--churn 0.01] [--trials 60]
#include <cstdint>
#include <iostream>
#include <vector>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace manywalks;

/// Mutable adjacency-list multigraph supporting uniform random stepping and
/// degree-preserving double edge swaps. (The immutable CSR Graph is the
/// fast path for static experiments; this structure is the dynamic
/// substrate.)
class DynamicGraph {
 public:
  explicit DynamicGraph(const Graph& g) {
    adjacency_.resize(g.num_vertices());
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const auto row = g.neighbors(v);
      adjacency_[v].assign(row.begin(), row.end());
    }
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      for (Vertex u : adjacency_[v]) {
        if (v < u) edges_.emplace_back(v, u);
      }
    }
  }

  Vertex num_vertices() const { return static_cast<Vertex>(adjacency_.size()); }
  std::size_t num_edges() const { return edges_.size(); }

  Vertex step(Vertex v, Rng& rng) const {
    const auto& row = adjacency_[v];
    return row[rng.uniform_below(static_cast<std::uint32_t>(row.size()))];
  }

  /// One degree-preserving double edge swap: picks edges (a,b), (c,d) and
  /// rewires to (a,d), (c,b) if that creates no loop or duplicate.
  /// Returns false (no change) when the sampled pair is incompatible.
  bool try_swap(Rng& rng) {
    const auto e1 = rng.uniform_below(static_cast<std::uint32_t>(edges_.size()));
    auto e2 = rng.uniform_below(static_cast<std::uint32_t>(edges_.size()));
    if (e1 == e2) return false;
    auto [a, b] = edges_[e1];
    auto [c, d] = edges_[e2];
    if (rng.bernoulli(0.5)) std::swap(c, d);
    // New edges: (a,d) and (c,b).
    if (a == d || c == b) return false;
    if (has_edge(a, d) || has_edge(c, b)) return false;
    remove_arc(a, b);
    remove_arc(b, a);
    remove_arc(c, d);
    remove_arc(d, c);
    adjacency_[a].push_back(d);
    adjacency_[d].push_back(a);
    adjacency_[c].push_back(b);
    adjacency_[b].push_back(c);
    edges_[e1] = {std::min(a, d), std::max(a, d)};
    edges_[e2] = {std::min(c, b), std::max(c, b)};
    return true;
  }

 private:
  bool has_edge(Vertex u, Vertex v) const {
    for (Vertex w : adjacency_[u]) {
      if (w == v) return true;
    }
    return false;
  }

  void remove_arc(Vertex u, Vertex v) {
    auto& row = adjacency_[u];
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] == v) {
        row[i] = row.back();
        row.pop_back();
        return;
      }
    }
  }

  std::vector<std::vector<Vertex>> adjacency_;
  std::vector<std::pair<Vertex, Vertex>> edges_;
};

/// k-walk cover time under churn: every round, `swaps_per_round` double
/// edge swaps are applied before the tokens move.
std::uint64_t cover_under_churn(DynamicGraph graph, Vertex start, unsigned k,
                                unsigned swaps_per_round, Rng& rng,
                                std::uint64_t cap) {
  std::vector<Vertex> tokens(k, start);
  std::vector<bool> visited(graph.num_vertices(), false);
  visited[start] = true;
  Vertex covered = 1;
  for (std::uint64_t t = 1; t <= cap; ++t) {
    for (unsigned s = 0; s < swaps_per_round; ++s) graph.try_swap(rng);
    for (Vertex& token : tokens) {
      token = graph.step(token, rng);
      if (!visited[token]) {
        visited[token] = true;
        ++covered;
      }
    }
    if (covered == graph.num_vertices()) return t;
  }
  return cap;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t n = 1024;
  std::uint64_t k64 = 8;
  double churn = 0.01;
  std::uint64_t trials = 60;
  std::uint64_t seed = 23;

  ArgParser parser("dynamic_network",
                   "k-walk cover time under degree-preserving edge churn");
  parser.add_option("n", &n, "network size")
      .add_option("k", &k64, "number of walks")
      .add_option("churn", &churn,
                  "fraction of edges rewired per round (0 = static)")
      .add_option("trials", &trials, "trials per configuration")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const auto k = static_cast<unsigned>(k64);
  Rng graph_rng(mix64(seed));
  const Graph base = make_random_regular(static_cast<Vertex>(n), 8, graph_rng);
  const DynamicGraph dynamic_base(base);

  std::cout << "Network: " << describe(base) << ", k = " << k
            << " walks, churn sweep around " << churn << "\n\n";

  TextTable table("Cover time under churn (rounds; swaps/round = churn · m)");
  table.add_column("churn/round")
      .add_column("swaps/round")
      .add_column("cover time")
      .add_column("vs static");

  double static_mean = 0.0;
  for (const double rate : {0.0, churn / 10, churn, churn * 10}) {
    const auto swaps = static_cast<unsigned>(rate * static_cast<double>(base.num_edges()));
    RunningStats stats;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      Rng rng = make_trial_rng(mix64(seed ^ (0xd1aULL + swaps)), trial);
      stats.add(static_cast<double>(cover_under_churn(
          dynamic_base, 0, k, swaps, rng, 1'000'000)));
    }
    const auto ci = mean_confidence_interval(stats);
    if (rate == 0.0) static_mean = ci.mean;
    table.begin_row();
    table.cell(format_double(rate, 3));
    table.cell(static_cast<std::uint64_t>(swaps));
    table.cell(format_mean_pm(ci.mean, ci.half_width));
    table.cell(format_double(ci.mean / static_mean, 3));
  }
  std::cout << table
            << "\nExpected: the cover time is essentially flat in the churn "
               "rate — the walkers never\nneeded the topology to hold still "
               "(the intro's robustness argument). Any\nstructure-dependent "
               "traversal would restart after every swap.\n";
  return 0;
}
